package seep

import (
	"fmt"
	"sync"
	"time"

	"seep/internal/dist"
	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/transport"
	"seep/internal/wirecodec"
)

// Distributed returns the distributed runtime: a coordinator owning the
// plan, the authoritative checkpoint store and the scaling decisions,
// plus workers — separate hosts — each running a subset of the operator
// instances on a live engine, exchanging tuple batches over TCP. This is
// the deployment substrate the paper assumes: instances on real VMs,
// heartbeat failure detection (§5), and recovery/scale-out through the
// same state-management primitives as the in-process runtimes.
//
// Two modes:
//
//   - In-process loopback (default, WithWorkers(n)): the runtime spawns
//     n workers inside this process, each with its own TCP listener.
//     Every byte still crosses real sockets, failure detection is real
//     heartbeats, and Job.Fail kills a whole worker — development and
//     test mode.
//   - External daemons (WithWorkerAddrs + WithTopologyName): workers are
//     cmd/seep-worker processes (possibly on other hosts) whose
//     registries have the topology compiled in; the coordinator runs in
//     this process.
//
// Job.Fail models a VM failure: the worker hosting the instance is
// crash-stopped and everything it hosted is recovered by the heartbeat
// detector feeding the coordinator's event loop. Tuple payloads cross
// the wire gob-encoded by default — register payload types with
// RegisterPayloadType (library operator outputs are pre-registered).
func Distributed(opts ...Option) Runtime { return &distRuntime{cfg: buildConfig(opts)} }

type distRuntime struct{ cfg *runtimeConfig }

func (r *distRuntime) Name() string { return "dist" }

func (r *distRuntime) Deploy(t *Topology) (Job, error) {
	cfg := r.cfg
	if err := cfg.checkSubstrate("dist"); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.workersSet && len(cfg.workerAddrs) > 0 {
		return nil, fmt.Errorf("seep: WithWorkers and WithWorkerAddrs are mutually exclusive")
	}
	q, _, err := t.built()
	if err != nil {
		return nil, err
	}
	codec := cfg.payloadCodec
	if codec == nil {
		codec = state.GobPayloadCodec{}
	}
	name := cfg.topoName
	if name == "" {
		name = "topology"
	}
	checkpoint := defaultLiveCheckpoint
	if cfg.checkpointSet {
		checkpoint = cfg.checkpoint
	}
	detect := defaultDetectDelay
	if cfg.detect > 0 {
		detect = cfg.detect
	}
	coordAddr := cfg.coordAddr
	if coordAddr == "" {
		coordAddr = "127.0.0.1:0"
	}
	// Incremental checkpoints ship over the wire whenever a delta policy
	// is armed: WithIncrementalCheckpoints supplies an explicit one, and
	// WithDeltaCheckpoints falls back to the default epoch (full snapshot
	// every 10th checkpoint, deltas capped at half the base).
	deltaPolicy := cfg.delta
	if cfg.deltaWireSet && !cfg.deltaSet {
		deltaPolicy = state.DeltaPolicy{FullEvery: 10, MaxDeltaFraction: 0.5}
	}
	coordCfg := dist.Config{
		Addr:               coordAddr,
		Codec:              codec,
		Topology:           name,
		CheckpointInterval: checkpoint,
		TimerInterval:      cfg.timer,
		BatchSize:          cfg.batchSize,
		BatchLinger:        cfg.batchLinger,
		ChannelBuffer:      cfg.channelBuffer,
		QueueBound:         cfg.queueBound,
		MemoryLimit:        cfg.memoryLimit,
		WireCodec:          cfg.wireCodec,
		Delta:              deltaPolicy,
		DeltaCompress:      cfg.deltaCompress,
		DetectDelay:        detect,
		RecoveryPi:         cfg.recoveryPi,
		Policy:             cfg.policy,
		ScaleIn:            cfg.scaleIn,
		ControlPlaneDir:    cfg.controlPlaneDir,
		StandbyAddr:        cfg.standbyAddr,
	}

	j := &distJob{}
	addrs := cfg.workerAddrs
	if len(addrs) == 0 {
		n := cfg.workers
		if n == 0 {
			n = 3
		}
		reg := topoRegistry{t: t}
		for i := 0; i < n; i++ {
			w, err := dist.NewWorker("127.0.0.1:0", reg, codec)
			if err != nil {
				j.killWorkers()
				return nil, err
			}
			j.workers = append(j.workers, w)
			addrs = append(addrs, w.Addr())
		}
	}
	coord, err := dist.NewCoordinator(coordCfg)
	if err != nil {
		j.killWorkers()
		return nil, err
	}
	if err := coord.Deploy(q, addrs); err != nil {
		coord.Close()
		j.killWorkers()
		return nil, err
	}
	j.coord = coord
	j.q = q
	j.coordCfg = coordCfg
	j.coordAddr = coord.Addr()
	return j, nil
}

// topoRegistry serves the deployed topology to in-process workers
// regardless of the requested name.
type topoRegistry struct{ t *Topology }

func (r topoRegistry) Lookup(string) (*plan.Query, map[plan.OpID]operator.Factory, []dist.SourceBinding, error) {
	q, f, err := r.t.built()
	return q, f, nil, err
}

// distJob adapts the coordinator + workers to the Job interface.
type distJob struct {
	workers []*dist.Worker // empty for external deployments

	// What a coordinator restart needs: the built query, the deploy-time
	// config and the original coordinator's concrete listen address
	// (restart-in-place — orphaned workers redial exactly there).
	q         *plan.Query
	coordCfg  dist.Config
	coordAddr string

	mu      sync.Mutex
	coord   *dist.Coordinator // replaced by RestartCoordinator
	started time.Time
	stopped bool
	faulted map[string]struct{} // worker addrs with an armed link fault
}

// co returns the current coordinator (RestartCoordinator swaps it).
func (j *distJob) co() *dist.Coordinator {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.coord
}

func (j *distJob) killWorkers() {
	for _, w := range j.workers {
		w.Kill()
	}
}

// KillCoordinator crash-stops the coordinator — kill -9, no goodbye:
// workers keep streaming worker-to-worker, go orphan on heartbeat loss
// and buffer their checkpoint ships until a coordinator resumes them.
func (j *distJob) KillCoordinator() error {
	if j.coordCfg.ControlPlaneDir == "" {
		return fmt.Errorf("seep: KillCoordinator requires WithControlPlaneDir (without a journal the coordinator cannot be restarted)")
	}
	j.co().Close()
	return nil
}

// RestartCoordinator rebuilds the coordinator from its journal on the
// dead one's address, reattaches the still-running workers without
// restarting them, and rolls back any transition caught in flight.
func (j *distJob) RestartCoordinator() error {
	if j.coordCfg.ControlPlaneDir == "" {
		return fmt.Errorf("seep: RestartCoordinator requires WithControlPlaneDir (without a journal there is no state to recover from)")
	}
	cfg := j.coordCfg
	cfg.Addr = j.coordAddr
	coord, err := dist.RecoverCoordinator(cfg, j.q)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.coord = coord
	j.mu.Unlock()
	return nil
}

func (j *distJob) Start() {
	j.mu.Lock()
	j.started = time.Now()
	j.mu.Unlock()
	_ = j.co().StartJob()
}

func (j *distJob) Stop() {
	j.mu.Lock()
	if j.stopped {
		j.mu.Unlock()
		return
	}
	j.stopped = true
	j.mu.Unlock()
	j.HealLinks()
	// Let in-flight recoveries settle before tearing the cluster down.
	deadline := time.Now().Add(5 * time.Second)
	for j.co().Pending() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	j.co().StopJob()
	j.co().Close()
	j.killWorkers()
}

func (j *distJob) Run(d time.Duration) {
	deadline := time.Now().Add(d)
	for j.co().Pending() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	rem := time.Until(deadline)
	if rem < 250*time.Millisecond {
		// Recoveries consumed the span: still give cross-worker replay a
		// moment to settle so post-Run assertions see restored state.
		rem = 250 * time.Millisecond
	}
	if len(j.workers) == 0 {
		// External workers: no processed-counter visibility; run the span.
		time.Sleep(rem)
		return
	}
	j.quiesce(100*time.Millisecond, rem)
}

// quiesce waits until no worker engine processes tuples for the settle
// window and no transition is pending.
func (j *distJob) quiesce(settle, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	last := j.totalProcessed()
	lastChange := time.Now()
	for time.Now().Before(deadline) {
		if j.co().Pending() > 0 {
			lastChange = time.Now()
		}
		time.Sleep(settle / 4)
		cur := j.totalProcessed()
		if cur != last {
			last = cur
			lastChange = time.Now()
			continue
		}
		if time.Since(lastChange) >= settle {
			return
		}
	}
}

func (j *distJob) totalProcessed() uint64 {
	var n uint64
	for _, w := range j.workers {
		if eng := w.Engine(); eng != nil {
			n += eng.TotalProcessed()
		}
	}
	return n
}

// workerHosting returns the in-process worker currently hosting inst.
func (j *distJob) workerHosting(inst InstanceID) *dist.Worker {
	addr := j.co().PlacementOf(inst)
	for _, w := range j.workers {
		if w.Addr() == addr {
			return w
		}
	}
	return nil
}

func (j *distJob) sourceInstance(op OpID) (InstanceID, error) {
	insts := j.co().Manager().Instances(op)
	if len(insts) == 0 {
		return InstanceID{}, fmt.Errorf("seep: no instances of operator %q", op)
	}
	return insts[0], nil
}

func (j *distJob) AddSource(op OpID, rate RateFunc, gen Generator) error {
	inst, err := j.sourceInstance(op)
	if err != nil {
		return err
	}
	w := j.workerHosting(inst)
	if w == nil || w.Engine() == nil {
		return fmt.Errorf("seep: %s is hosted by an external worker; bind sources in its registry (WorkerRegistry.RegisterSource)", inst)
	}
	return w.Engine().AddSourceFunc(inst, rate, gen)
}

func (j *distJob) InjectBatch(op OpID, count int, gen Generator) error {
	inst, err := j.sourceInstance(op)
	if err != nil {
		return err
	}
	w := j.workerHosting(inst)
	if w == nil || w.Engine() == nil {
		return fmt.Errorf("seep: %s is hosted by an external worker; bind sources in its registry (WorkerRegistry.RegisterSource)", inst)
	}
	return w.Engine().InjectBatch(inst, count, gen)
}

func (j *distJob) Fail(inst InstanceID) error { return j.co().Fail(inst) }

// hostAddrs returns the distinct worker addresses hosting op's live
// instances.
func (j *distJob) hostAddrs(op OpID) ([]string, error) {
	insts := j.co().Manager().Instances(op)
	if len(insts) == 0 {
		return nil, fmt.Errorf("seep: no instances of operator %q", op)
	}
	seen := make(map[string]struct{})
	var addrs []string
	for _, inst := range insts {
		addr := j.co().PlacementOf(inst)
		if addr == "" {
			continue
		}
		if _, dup := seen[addr]; dup {
			continue
		}
		seen[addr] = struct{}{}
		addrs = append(addrs, addr)
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("seep: operator %q has no placed instances", op)
	}
	return addrs, nil
}

func (j *distJob) armLinkFault(op OpID, f transport.LinkFault) error {
	addrs, err := j.hostAddrs(op)
	if err != nil {
		return err
	}
	j.mu.Lock()
	if j.faulted == nil {
		j.faulted = make(map[string]struct{})
	}
	for _, addr := range addrs {
		transport.SetLinkFault(addr, f)
		j.faulted[addr] = struct{}{}
	}
	j.mu.Unlock()
	return nil
}

// SlowLink delays every frame toward the workers hosting op's
// instances — data batches, acks and heartbeat probes alike. Keep the
// delay below the failure-detection horizon or the hosts will
// (correctly) be declared down.
func (j *distJob) SlowLink(op OpID, delay time.Duration) error {
	return j.armLinkFault(op, transport.LinkFault{Delay: delay})
}

// PartitionLink black-holes every frame toward the workers hosting
// op's instances. The coordinator's heartbeat probes starve, the
// detector declares the hosts down, and the ordinary recovery path
// replaces everything they ran — a partition costs detection time,
// never data (dropped batches sit in upstream output buffers and
// replay).
func (j *distJob) PartitionLink(op OpID) error {
	return j.armLinkFault(op, transport.LinkFault{Drop: true})
}

// HealLinks removes every link fault this job armed.
func (j *distJob) HealLinks() {
	j.mu.Lock()
	addrs := j.faulted
	j.faulted = nil
	j.mu.Unlock()
	for addr := range addrs {
		transport.ClearLinkFault(addr)
	}
}

func (j *distJob) ScaleOut(victim InstanceID, pi int) error {
	return j.co().ScaleOut(victim, pi)
}

func (j *distJob) ScaleIn(victims []InstanceID) error {
	return j.co().ScaleIn(victims)
}

func (j *distJob) Instances(op OpID) []InstanceID { return j.co().Manager().Instances(op) }

func (j *distJob) OperatorOf(inst InstanceID) any {
	w := j.workerHosting(inst)
	if w == nil {
		return nil
	}
	eng := w.Engine()
	if eng == nil {
		return nil
	}
	return eng.OperatorOf(inst)
}

func (j *distJob) OnSink(fn func(t Tuple)) {
	for _, w := range j.workers {
		if eng := w.Engine(); eng != nil {
			eng.OnSink = fn
		}
	}
}

func (j *distJob) MetricsSnapshot() Metrics {
	j.mu.Lock()
	var elapsed int64
	if !j.started.IsZero() {
		elapsed = time.Since(j.started).Milliseconds()
	}
	j.mu.Unlock()

	recs := j.co().Records()
	out := make([]RecoveryRecord, len(recs))
	for i, r := range recs {
		out[i] = RecoveryRecord{
			Victim:         r.Victim,
			Pi:             r.Pi,
			Failure:        r.Failure,
			StartedAt:      r.StartedAt,
			CompletedAt:    r.CompletedAt,
			ReplayedTuples: r.ReplayedTuples,
			Merge:          r.Merge,
		}
	}
	m := Metrics{
		ElapsedMillis: elapsed,
		Parallelism:   parallelismOf(j.co().Manager().Query(), func(op OpID) int { return j.co().Manager().Parallelism(op) }),
		Recoveries:    out,
		Merges:        j.co().Merges(),
		Checkpoints:   j.co().Manager().Backups().ShipStats(),
		Errors:        j.co().Errors(),
		Transport:     j.co().TransportStats(),
		ControlPlane:  j.co().ControlPlaneStats(),
	}
	if len(j.workers) > 0 {
		// In-process workers: read engine counters directly. Latency is
		// reported by the worker hosting the most sink samples (sink
		// instances are pinned, so in practice that is THE sink host).
		var bestCount uint64
		for _, w := range j.workers {
			m.Transport = m.Transport.Add(w.TransportStats())
			m.OrphanCheckpointsDropped += w.OrphanDropped()
			eng := w.Engine()
			if eng == nil {
				continue
			}
			m.SinkTuples += eng.SinkCount.Value()
			m.DuplicatesDropped += eng.DupDropped.Value()
			m.Backpressure.Add(eng.BackpressureSnapshot())
			if s := eng.Latency.Summarize(); s.Count > bestCount {
				bestCount = s.Count
				m.Latency = s
			}
		}
		return m
	}
	// External workers: aggregate the counters piggybacked on their
	// utilisation reports (requires WithPolicy to stream reports).
	for _, s := range j.co().WorkerStatsSnapshot() {
		m.SinkTuples += s.SinkTuples
		m.DuplicatesDropped += s.DupDropped
		m.Transport = m.Transport.Add(s.Transport)
		m.Backpressure.Add(s.Backpressure)
		m.OrphanCheckpointsDropped += s.OrphanDropped
	}
	return m
}

// RegisterPayloadType registers a concrete tuple-payload type for the
// distributed runtime's wire codecs: the type gets a tag in the binary
// framing's payload registry (encoded as a gob blob under that tag) and
// is registered with encoding/gob for the legacy framing and the tag-0
// fallback. It returns the assigned wire tag. Registering the same type
// twice returns the original tag and an error (instead of gob.Register's
// panic on conflicting names). Every binary in the cluster (coordinator
// and workers) must register the same types in the same order; the
// library operators' output types are pre-registered. The return values
// may be ignored by callers that registered correctly at init time.
func RegisterPayloadType(v any) (uint8, error) { return wirecodec.Register(v) }

// GobPayloadCodec is the distributed runtime's default payload codec.
type GobPayloadCodec = state.GobPayloadCodec

// DistWorker is a worker daemon host (see RunWorker).
type DistWorker = dist.Worker

// SourceSpec binds a generator to a source operator in a worker
// registry.
type SourceSpec = dist.SourceBinding

// WorkerRegistry holds the topologies a worker daemon can host,
// instantiated by name on the coordinator's assignment. Register every
// topology (and its source bindings) before RunWorker.
type WorkerRegistry struct {
	mu      sync.Mutex
	topos   map[string]*Topology
	sources map[string][]SourceSpec
}

// NewWorkerRegistry returns an empty registry.
func NewWorkerRegistry() *WorkerRegistry {
	return &WorkerRegistry{
		topos:   make(map[string]*Topology),
		sources: make(map[string][]SourceSpec),
	}
}

// Register adds a topology under a name.
func (r *WorkerRegistry) Register(name string, t *Topology) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.topos[name] = t
}

// RegisterSource binds a generator to a source operator of a registered
// topology: the worker hosting that source attaches it at Start. This is
// how external deployments inject data — the coordinator cannot ship Go
// functions.
func (r *WorkerRegistry) RegisterSource(name string, op OpID, rate RateFunc, gen Generator) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources[name] = append(r.sources[name], SourceSpec{Op: op, Rate: rate, Gen: gen})
}

// Lookup implements the worker registry contract.
func (r *WorkerRegistry) Lookup(name string) (*plan.Query, map[plan.OpID]operator.Factory, []dist.SourceBinding, error) {
	r.mu.Lock()
	t := r.topos[name]
	sources := r.sources[name]
	r.mu.Unlock()
	if t == nil {
		return nil, nil, nil, fmt.Errorf("seep: topology %q is not in this worker's registry", name)
	}
	q, f, err := t.built()
	return q, f, sources, err
}

// RunWorker starts a worker daemon listening on addr, serving the
// registry's topologies. It returns immediately; call Wait on the
// returned worker to block until the coordinator kills it.
func RunWorker(addr string, reg *WorkerRegistry) (*DistWorker, error) {
	return dist.NewWorker(addr, reg, nil)
}
