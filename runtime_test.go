package seep_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"seep"
)

// parityVocab is 10 words; each InjectBatch of 300 tuples contributes
// exactly 30 observations per word.
func parityGen(i uint64) (seep.Key, any) {
	w := fmt.Sprintf("w%02d", i%10)
	return seep.KeyOfString(w), w
}

func wordcountTopology() *seep.Topology {
	return seep.NewTopology().
		Source("src").
		Stateless("split", splitFactory).
		Stateful("count", countFactory).
		Sink("sink")
}

// TestRuntimeParityWordCount runs one identical scenario — inject a
// batch, crash the stateful counter, let the runtime detect and recover
// it, inject a second batch — against BOTH substrates through the shared
// Runtime/Job interface, and asserts they converge to the same managed
// state: every tuple reflected exactly once, before and after the
// failure. This is the paper's central claim (recovery is scale out with
// π=1, driven by the same state-management primitives) holding
// regardless of the substrate.
func TestRuntimeParityWordCount(t *testing.T) {
	runtimes := []struct {
		name string
		rt   seep.Runtime
	}{
		{"live", seep.Live(
			seep.WithCheckpointInterval(100*time.Millisecond),
			seep.WithDetectDelay(200*time.Millisecond),
		)},
		{"sim", seep.Simulated(
			seep.WithSeed(42),
			seep.WithFTMode(seep.FTRSM),
			seep.WithCheckpointInterval(500*time.Millisecond),
		)},
	}

	type outcome struct {
		counts     map[string]int64
		recoveries int
	}
	results := make(map[string]outcome)

	for _, r := range runtimes {
		t.Run(r.rt.Name(), func(t *testing.T) {
			if r.rt.Name() != r.name {
				t.Fatalf("Name() = %q, want %q", r.rt.Name(), r.name)
			}
			job, err := r.rt.Deploy(wordcountTopology())
			if err != nil {
				t.Fatal(err)
			}
			job.Start()
			defer job.Stop()

			// Phase 1: 300 tuples processed and periodically
			// checkpointed to the upstream backup.
			if err := job.InjectBatch("src", 300, parityGen); err != nil {
				t.Fatal(err)
			}
			job.Run(2 * time.Second)

			// Crash the counter. The runtime must detect the failure
			// and recover state via the integrated scale-out algorithm.
			victims := job.Instances("count")
			if len(victims) != 1 {
				t.Fatalf("Instances(count) = %v", victims)
			}
			if err := job.Fail(victims[0]); err != nil {
				t.Fatal(err)
			}
			job.Run(3 * time.Second)

			// Phase 2: the recovered instance keeps counting.
			if err := job.InjectBatch("src", 300, parityGen); err != nil {
				t.Fatal(err)
			}
			job.Run(2 * time.Second)

			insts := job.Instances("count")
			if len(insts) != 1 {
				t.Fatalf("Instances(count) after recovery = %v", insts)
			}
			if insts[0] == victims[0] {
				t.Fatalf("failed instance %v still live", victims[0])
			}
			counter, ok := job.OperatorOf(insts[0]).(*seep.WordCounter)
			if !ok {
				t.Fatalf("OperatorOf(%v) = %T", insts[0], job.OperatorOf(insts[0]))
			}
			counts := make(map[string]int64, 10)
			for i := 0; i < 10; i++ {
				w := fmt.Sprintf("w%02d", i)
				counts[w] = counter.Count(w)
				if counts[w] != 60 {
					t.Errorf("Count(%s) = %d, want 60 (exactly once across the failure)", w, counts[w])
				}
			}
			m := job.MetricsSnapshot()
			if len(m.Recoveries) != 1 {
				t.Errorf("Recoveries = %v, want exactly one", m.Recoveries)
			}
			for _, rec := range m.Recoveries {
				if !rec.Failure || rec.Victim != victims[0] || rec.Pi != 1 {
					t.Errorf("recovery record = %+v", rec)
				}
			}
			if m.Parallelism["count"] != 1 {
				t.Errorf("Parallelism[count] = %d", m.Parallelism["count"])
			}
			if m.SinkTuples == 0 {
				t.Error("no tuples reached the sink")
			}
			results[r.name] = outcome{counts: counts, recoveries: len(m.Recoveries)}
		})
	}

	live, sim := results["live"], results["sim"]
	if live.counts == nil || sim.counts == nil {
		t.Fatal("missing results from one runtime")
	}
	if !reflect.DeepEqual(live.counts, sim.counts) {
		t.Errorf("behavioural divergence: live counts %v != sim counts %v", live.counts, sim.counts)
	}
	if live.recoveries != sim.recoveries {
		t.Errorf("recoveries: live %d != sim %d", live.recoveries, sim.recoveries)
	}
}

// TestRuntimeRejectsForeignOptions: options restricted to one substrate
// are a deploy error on the other, never a silent no-op.
func TestRuntimeRejectsForeignOptions(t *testing.T) {
	if _, err := seep.Live(seep.WithNetDelay(time.Millisecond)).Deploy(wordcountTopology()); err == nil {
		t.Error("Live accepted WithNetDelay")
	}
	if _, err := seep.Live(seep.WithFTMode(seep.FTUpstreamBackup)).Deploy(wordcountTopology()); err == nil {
		t.Error("Live accepted WithFTMode")
	}
	if _, err := seep.Simulated(seep.WithChannelBuffer(64)).Deploy(wordcountTopology()); err == nil {
		t.Error("Simulated accepted WithChannelBuffer")
	}
	// Elasticity without a scaling policy is meaningless.
	if _, err := seep.Simulated(seep.WithElasticity(seep.DefaultScaleInPolicy())).Deploy(wordcountTopology()); err == nil {
		t.Error("Simulated accepted WithElasticity without WithPolicy")
	}
	// Out-of-range option values are errors, not silent coercions to
	// the substrate default.
	if _, err := seep.Live(seep.WithDetectDelay(0)).Deploy(wordcountTopology()); err == nil {
		t.Error("Live accepted WithDetectDelay(0)")
	}
	if _, err := seep.Simulated(seep.WithRecoveryParallelism(0)).Deploy(wordcountTopology()); err == nil {
		t.Error("Simulated accepted WithRecoveryParallelism(0)")
	}
	if _, err := seep.Live(seep.WithCheckpointInterval(-time.Second)).Deploy(wordcountTopology()); err == nil {
		t.Error("Live accepted a negative checkpoint interval")
	}
}

// TestLiveRecoveryFailureSurfacesInMetrics: an automatic recovery that
// cannot complete (π beyond the operator's max parallelism) reports
// through Metrics.Errors instead of disappearing.
func TestLiveRecoveryFailureSurfacesInMetrics(t *testing.T) {
	topo := seep.NewTopology().
		Source("src").
		Stateless("split", splitFactory).
		Stateful("count", countFactory, seep.MaxParallelism(1)).
		Sink("sink")
	job, err := seep.Live(
		seep.WithCheckpointInterval(50*time.Millisecond),
		seep.WithDetectDelay(100*time.Millisecond),
		seep.WithRecoveryParallelism(2),
	).Deploy(topo)
	if err != nil {
		t.Fatal(err)
	}
	job.Start()
	defer job.Stop()
	if err := job.InjectBatch("src", 100, parityGen); err != nil {
		t.Fatal(err)
	}
	job.Run(time.Second)
	if err := job.Fail(job.Instances("count")[0]); err != nil {
		t.Fatal(err)
	}
	job.Run(2 * time.Second)
	m := job.MetricsSnapshot()
	if len(m.Recoveries) != 0 {
		t.Errorf("Recoveries = %v, want none (recovery must fail)", m.Recoveries)
	}
	if len(m.Errors) != 1 {
		t.Fatalf("Errors = %v, want the failed recovery reported", m.Errors)
	}
}

// TestRuntimeDeployRejectsInvalidTopology: Deploy surfaces Build errors
// for topologies not built explicitly.
func TestRuntimeDeployRejectsInvalidTopology(t *testing.T) {
	bad := seep.NewTopology().Source("src").Sink("sink").Connect("src", "ghost")
	if _, err := seep.Live().Deploy(bad); err == nil {
		t.Error("Live deployed a topology with a dangling edge")
	}
	if _, err := seep.Simulated().Deploy(bad); err == nil {
		t.Error("Simulated deployed a topology with a dangling edge")
	}
	if _, err := seep.Live().Deploy(nil); err == nil {
		t.Error("Live deployed a nil topology")
	}
}

// TestConcurrentDeployOfOneTopology: one unbuilt topology deployed on
// both runtimes concurrently is an advertised usage; Build must be safe
// to race (run under -race in CI).
func TestConcurrentDeployOfOneTopology(t *testing.T) {
	topo := wordcountTopology()
	errc := make(chan error, 2)
	go func() { _, err := seep.Live().Deploy(topo); errc <- err }()
	go func() { _, err := seep.Simulated(seep.WithSeed(1)).Deploy(topo); errc <- err }()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSimulatedScaleOutThroughJob exercises explicit scale out through
// the shared interface on the simulated substrate.
func TestSimulatedScaleOutThroughJob(t *testing.T) {
	job, err := seep.Simulated(seep.WithSeed(3)).Deploy(wordcountTopology())
	if err != nil {
		t.Fatal(err)
	}
	job.Start()
	defer job.Stop()
	if err := job.AddSource("src", seep.ConstantRate(500), parityGen); err != nil {
		t.Fatal(err)
	}
	job.Run(5 * time.Second)
	if err := job.ScaleOut(job.Instances("count")[0], 2); err != nil {
		t.Fatal(err)
	}
	job.Run(10 * time.Second)
	m := job.MetricsSnapshot()
	if m.Parallelism["count"] != 2 {
		t.Errorf("Parallelism[count] = %d, want 2", m.Parallelism["count"])
	}
	if len(m.Recoveries) != 1 || m.Recoveries[0].Failure {
		t.Errorf("Recoveries = %v, want one scale-out record", m.Recoveries)
	}
	if m.ElapsedMillis != 15_000 {
		t.Errorf("ElapsedMillis = %d, want 15000 (virtual)", m.ElapsedMillis)
	}
}
