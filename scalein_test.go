package seep_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"seep"
)

// sumCounts totals per-key counts across every live count partition.
func sumCounts(t *testing.T, job seep.Job) map[string]int64 {
	t.Helper()
	totals := make(map[string]int64, 10)
	for _, inst := range job.Instances("count") {
		c, ok := job.OperatorOf(inst).(*seep.WordCounter)
		if !ok {
			t.Fatalf("OperatorOf(%v) = %T", inst, job.OperatorOf(inst))
		}
		for i := 0; i < 10; i++ {
			w := fmt.Sprintf("w%02d", i)
			totals[w] += c.Count(w)
		}
	}
	return totals
}

// TestRuntimeParityGrowThenShrink runs one identical grow-then-shrink
// scenario — inject, split the counter in two, inject through both
// halves, merge them back, inject again — on all THREE substrates
// through the shared Runtime/Job interface, and asserts exact per-key
// counts (every tuple reflected exactly once across the split AND the
// merge), a parallelism that returns to one, and a recorded merge.
func TestRuntimeParityGrowThenShrink(t *testing.T) {
	runtimes := []struct {
		name string
		rt   seep.Runtime
	}{
		{"live", seep.Live(
			seep.WithCheckpointInterval(100 * time.Millisecond),
		)},
		{"sim", seep.Simulated(
			seep.WithSeed(42),
			seep.WithCheckpointInterval(500*time.Millisecond),
			// The grow consumes two pooled VMs and the shrink a third;
			// raw provisioning would cost 90 virtual seconds each.
			seep.WithVMPool(seep.PoolConfig{Size: 4}),
		)},
		{"dist", seep.Distributed(
			seep.WithWorkers(3),
			seep.WithCheckpointInterval(100*time.Millisecond),
		)},
	}

	results := make(map[string]map[string]int64)
	for _, r := range runtimes {
		t.Run(r.name, func(t *testing.T) {
			job, err := r.rt.Deploy(wordcountTopology())
			if err != nil {
				t.Fatal(err)
			}
			job.Start()
			defer job.Stop()

			// Phase 1: single counter.
			if err := job.InjectBatch("src", 300, parityGen); err != nil {
				t.Fatal(err)
			}
			job.Run(2 * time.Second)

			// Grow.
			if err := job.ScaleOut(job.Instances("count")[0], 2); err != nil {
				t.Fatal(err)
			}
			// Long spans cost nothing where they are not needed: virtual
			// on sim (the VM pool provisions in virtual time), early
			// return on quiesce on live/dist.
			job.Run(10 * time.Second)
			if err := job.InjectBatch("src", 300, parityGen); err != nil {
				t.Fatal(err)
			}
			job.Run(2 * time.Second)

			// Shrink: merge the two partitions back.
			siblings := job.Instances("count")
			if len(siblings) != 2 {
				t.Fatalf("Instances(count) before merge = %v, want 2", siblings)
			}
			if err := job.ScaleIn(siblings); err != nil {
				t.Fatal(err)
			}
			job.Run(10 * time.Second)
			if got := job.Instances("count"); len(got) != 1 {
				t.Fatalf("Instances(count) after merge = %v, want 1", got)
			}

			// Phase 3: the merged counter keeps counting.
			if err := job.InjectBatch("src", 300, parityGen); err != nil {
				t.Fatal(err)
			}
			job.Run(2 * time.Second)

			totals := sumCounts(t, job)
			for w, n := range totals {
				if n != 90 {
					t.Errorf("count[%s] = %d, want 90 (exactly once across grow+shrink)", w, n)
				}
			}
			m := job.MetricsSnapshot()
			if m.Merges != 1 {
				t.Errorf("Metrics.Merges = %d, want 1", m.Merges)
			}
			if m.Parallelism["count"] != 1 {
				t.Errorf("Parallelism[count] = %d, want 1", m.Parallelism["count"])
			}
			var mergeRecs int
			for _, rec := range m.Recoveries {
				if rec.Merge {
					mergeRecs++
					if rec.Pi != 1 || rec.Failure {
						t.Errorf("merge record = %+v", rec)
					}
				}
			}
			if mergeRecs != 1 {
				t.Errorf("merge records in Recoveries = %d, want 1", mergeRecs)
			}
			if len(m.Errors) != 0 {
				t.Errorf("Errors = %v", m.Errors)
			}
			results[r.name] = totals
		})
	}

	live, sim, dst := results["live"], results["sim"], results["dist"]
	if live == nil || sim == nil || dst == nil {
		t.Fatal("missing results from one runtime")
	}
	if !reflect.DeepEqual(live, sim) || !reflect.DeepEqual(live, dst) {
		t.Errorf("behavioural divergence: live %v, sim %v, dist %v", live, sim, dst)
	}
}

// TestDistributedMidShrinkWorkerKill races a worker kill against the
// shrink: ScaleIn runs concurrently with Job.Fail on one of the merge
// victims, which crash-stops the whole worker VM hosting it. Whatever
// stage the kill lands in — before the victims retire, between retire
// and plan, or racing the deploy — the coordinator must fall back to
// the normal recovery path and the totals must stay exact.
func TestDistributedMidShrinkWorkerKill(t *testing.T) {
	job, err := seep.Distributed(
		seep.WithWorkers(3),
		seep.WithCheckpointInterval(100*time.Millisecond),
		seep.WithDetectDelay(200*time.Millisecond),
	).Deploy(wordcountTopology())
	if err != nil {
		t.Fatal(err)
	}
	job.Start()
	defer job.Stop()

	if err := job.InjectBatch("src", 300, parityGen); err != nil {
		t.Fatal(err)
	}
	job.Run(2 * time.Second)
	if err := job.ScaleOut(job.Instances("count")[0], 2); err != nil {
		t.Fatal(err)
	}
	job.Run(2 * time.Second)
	if err := job.InjectBatch("src", 300, parityGen); err != nil {
		t.Fatal(err)
	}
	job.Run(2 * time.Second)

	siblings := job.Instances("count")
	if len(siblings) != 2 {
		t.Fatalf("Instances(count) = %v, want 2", siblings)
	}
	// Shrink and kill concurrently. The kill may land at any merge
	// stage; Fail may also error if the merge already retired the victim
	// — both interleavings are valid, exactness is not negotiable.
	scaleInDone := make(chan error, 1)
	go func() { scaleInDone <- job.ScaleIn(siblings) }()
	_ = job.Fail(siblings[1])
	<-scaleInDone
	job.Run(4 * time.Second)

	if err := job.InjectBatch("src", 300, parityGen); err != nil {
		t.Fatal(err)
	}
	job.Run(2 * time.Second)

	totals := sumCounts(t, job)
	for w, n := range totals {
		if n != 90 {
			t.Errorf("count[%s] = %d, want 90 (exactly once across a mid-shrink worker kill)", w, n)
		}
	}
}

// TestScaleInOptionAcceptedEverywhere: WithScaleIn deploys on all three
// substrates (it used to be Simulated-only as WithElasticity).
func TestScaleInOptionAcceptedEverywhere(t *testing.T) {
	opts := func() []seep.Option {
		return []seep.Option{
			seep.WithPolicy(seep.DefaultPolicy()),
			seep.WithScaleIn(seep.DefaultScaleInPolicy()),
		}
	}
	if job, err := seep.Live(opts()...).Deploy(wordcountTopology()); err != nil {
		t.Errorf("Live rejected WithScaleIn: %v", err)
	} else {
		job.Start()
		job.Stop()
	}
	if _, err := seep.Simulated(append(opts(), seep.WithSeed(1))...).Deploy(wordcountTopology()); err != nil {
		t.Errorf("Simulated rejected WithScaleIn: %v", err)
	}
	if job, err := seep.Distributed(append(opts(), seep.WithWorkers(2))...).Deploy(wordcountTopology()); err != nil {
		t.Errorf("Distributed rejected WithScaleIn: %v", err)
	} else {
		job.Start()
		job.Stop()
	}
}

// TestScaleInOptionValidation: scale in needs the policy's reports, and
// the low watermark must leave a hysteresis band below the scale-out
// threshold.
func TestScaleInOptionValidation(t *testing.T) {
	if _, err := seep.Live(seep.WithScaleIn(seep.DefaultScaleInPolicy())).Deploy(wordcountTopology()); err == nil {
		t.Error("WithScaleIn without WithPolicy accepted")
	}
	// 2*0.40 >= 0.70: a merged pair would land above the threshold and
	// immediately re-split.
	osc := seep.ScaleInPolicy{LowWatermark: 0.40, ConsecutiveReports: 2}
	if _, err := seep.Live(seep.WithPolicy(seep.DefaultPolicy()), seep.WithScaleIn(osc)).Deploy(wordcountTopology()); err == nil {
		t.Error("oscillating watermark combination accepted")
	} else if !strings.Contains(err.Error(), "hysteresis") {
		t.Errorf("oscillation rejection does not explain hysteresis: %v", err)
	}
}

// TestOptionErrorsNameOptionAndSubstrates: a substrate rejecting an
// option must name BOTH the offending option and every substrate that
// does accept it.
func TestOptionErrorsNameOptionAndSubstrates(t *testing.T) {
	cases := []struct {
		deploy  func() error
		wantAll []string
	}{
		{
			deploy: func() error {
				_, err := seep.Live(seep.WithFTMode(seep.FTUpstreamBackup)).Deploy(wordcountTopology())
				return err
			},
			wantAll: []string{"WithFTMode", "Simulated"},
		},
		{
			// WithChannelBuffer applies to Live AND Distributed (workers
			// run live engines); the old message claimed Live only.
			deploy: func() error {
				_, err := seep.Simulated(seep.WithChannelBuffer(64)).Deploy(wordcountTopology())
				return err
			},
			wantAll: []string{"WithChannelBuffer", "Live", "Distributed"},
		},
		{
			deploy: func() error {
				_, err := seep.Live(seep.WithWorkers(2)).Deploy(wordcountTopology())
				return err
			},
			wantAll: []string{"WithWorkers", "Distributed"},
		},
		{
			deploy: func() error {
				_, err := seep.Live(seep.WithWireCodec("gob")).Deploy(wordcountTopology())
				return err
			},
			wantAll: []string{"WithWireCodec", "Distributed"},
		},
		{
			deploy: func() error {
				_, err := seep.Distributed(seep.WithFTMode(seep.FTNone), seep.WithVMPool(seep.PoolConfig{Size: 2})).Deploy(wordcountTopology())
				return err
			},
			wantAll: []string{"WithFTMode", "WithVMPool", "Simulated"},
		},
	}
	for i, c := range cases {
		err := c.deploy()
		if err == nil {
			t.Errorf("case %d: deploy accepted a foreign option", i)
			continue
		}
		for _, want := range c.wantAll {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("case %d: error %q does not name %q", i, err, want)
			}
		}
	}
}
