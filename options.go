package seep

import (
	"fmt"
	"strings"
	"time"

	"seep/internal/state"
)

// Option configures a Runtime built by Live, Simulated or Distributed.
// Options apply to one substrate or several; deploying a topology with
// an option the substrate does not support is an error (reported by
// Runtime.Deploy) naming both the option and the substrates that do
// accept it — never a silent no-op.
type Option func(*runtimeConfig)

// runtimeConfig is the merged option set. Zero values mean "use the
// substrate default".
type runtimeConfig struct {
	// Shared.
	checkpoint    time.Duration
	checkpointSet bool
	delta         state.DeltaPolicy
	deltaSet      bool
	timer         time.Duration
	policy        *Policy
	scaleIn       *ScaleInPolicy
	detect        time.Duration
	detectSet     bool
	recoveryPi    int
	recoveryPiSet bool

	// Shared, but only effective on the live engine (the simulator's
	// virtual time has no channel operations to amortise).
	batchSize   int
	batchLinger time.Duration
	batchSet    bool

	// Live engine and Distributed workers (which run live engines).
	channelBuffer  int
	queueBound     int
	queueBoundSet  bool
	memoryLimit    int64
	memoryLimitSet bool

	// Simulated cluster only.
	seed       int64
	ftMode     FTMode
	ftModeSet  bool
	pool       *PoolConfig
	netDelay   time.Duration
	window     time.Duration
	vmCapacity float64

	// Distributed runtime only.
	workers         int
	workersSet      bool
	workerAddrs     []string
	topoName        string
	payloadCodec    PayloadCodec
	coordAddr       string
	controlPlaneDir string
	standbyAddr     string
	wireCodec       string
	deltaWire       bool
	deltaWireSet    bool
	deltaCompress   bool

	// restricted records every substrate-restricted option that was
	// set, with the substrates that DO accept it, so the wrong substrate
	// rejects it naming both (never a silent no-op).
	restricted []restrictedOption
}

// restrictedOption names one set option and the substrates accepting it.
type restrictedOption struct {
	name    string
	accepts []string // runtime names: "live", "sim", "dist"
	note    string   // optional clarification appended to the error
}

func (c *runtimeConfig) restrict(name string, note string, accepts ...string) {
	c.restricted = append(c.restricted, restrictedOption{name: name, accepts: accepts, note: note})
}

// universalOptions lists every exported option accepted by all three
// substrates. Together with the c.restrict calls inside the restricted
// options it forms the closed option/substrate matrix: the optmatrix
// analyzer (seep-lint) verifies that each exported With* constructor
// appears in exactly one of the two registries, and TestUniversalOptions
// verifies the entries here really do deploy without restriction.
var universalOptions = []string{
	"WithBatching",
	"WithCheckpointInterval",
	"WithDetectDelay",
	"WithElasticity",
	"WithIncrementalCheckpoints",
	"WithPolicy",
	"WithRecoveryParallelism",
	"WithScaleIn",
	"WithSeed",
	"WithTimerInterval",
}

// substrateName maps a runtime name to its constructor's name.
func substrateName(runtime string) string {
	switch runtime {
	case "live":
		return "Live"
	case "sim":
		return "Simulated"
	case "dist":
		return "Distributed"
	}
	return runtime
}

// checkSubstrate rejects every set option the given substrate does not
// accept, naming the offending option and the substrates that do.
func (c *runtimeConfig) checkSubstrate(runtime string) error {
	var msgs []string
	for _, r := range c.restricted {
		ok := false
		for _, a := range r.accepts {
			if a == runtime {
				ok = true
				break
			}
		}
		if ok {
			continue
		}
		supported := make([]string, len(r.accepts))
		for i, a := range r.accepts {
			supported[i] = substrateName(a)
		}
		msg := fmt.Sprintf("option %s is not supported by the %s runtime (supported on: %s)",
			r.name, substrateName(runtime), strings.Join(supported, ", "))
		if r.note != "" {
			msg += " — " + r.note
		}
		msgs = append(msgs, msg)
	}
	if len(msgs) == 0 {
		return nil
	}
	return fmt.Errorf("seep: %s", strings.Join(msgs, "; "))
}

func buildConfig(opts []Option) *runtimeConfig {
	cfg := &runtimeConfig{}
	for _, o := range opts {
		o(cfg)
	}
	return cfg
}

// validate rejects option values that would otherwise be silently
// coerced to a substrate default.
func (c *runtimeConfig) validate() error {
	if c.detectSet && c.detect <= 0 {
		return fmt.Errorf("seep: WithDetectDelay requires a positive duration, got %v", c.detect)
	}
	if c.recoveryPiSet && c.recoveryPi < 1 {
		return fmt.Errorf("seep: WithRecoveryParallelism requires pi >= 1, got %d", c.recoveryPi)
	}
	if c.checkpointSet && c.checkpoint < 0 {
		return fmt.Errorf("seep: WithCheckpointInterval requires a non-negative duration, got %v", c.checkpoint)
	}
	if c.deltaSet {
		if c.delta.FullEvery < 2 {
			return fmt.Errorf("seep: WithIncrementalCheckpoints requires fullEvery >= 2, got %d", c.delta.FullEvery)
		}
		if f := c.delta.MaxDeltaFraction; f <= 0 || f > 1 {
			return fmt.Errorf("seep: WithIncrementalCheckpoints requires 0 < maxDeltaFraction <= 1, got %v", f)
		}
	}
	if c.workersSet && c.workers < 1 {
		return fmt.Errorf("seep: WithWorkers requires n >= 1, got %d", c.workers)
	}
	if c.wireCodec != "" && c.wireCodec != "binary" && c.wireCodec != "gob" {
		return fmt.Errorf("seep: WithWireCodec accepts \"binary\" or \"gob\", got %q", c.wireCodec)
	}
	if c.standbyAddr != "" && c.controlPlaneDir == "" {
		return fmt.Errorf("seep: WithStandbyAddr requires WithControlPlaneDir (without a journal there is no state to resume from)")
	}
	if len(c.workerAddrs) > 0 && c.topoName == "" {
		return fmt.Errorf("seep: WithWorkerAddrs requires WithTopologyName (external workers instantiate topologies from their registry by name)")
	}
	if c.batchSet {
		if c.batchSize < 1 {
			return fmt.Errorf("seep: WithBatching requires size >= 1, got %d", c.batchSize)
		}
		// A ticker-driven source cannot flush with zero delay, so a 0
		// linger would be silently coerced to the engine default —
		// reject it instead (the options contract: no silent coercion).
		if c.batchLinger <= 0 {
			return fmt.Errorf("seep: WithBatching requires a positive linger, got %v", c.batchLinger)
		}
	}
	if c.queueBoundSet && c.queueBound < 1 {
		return fmt.Errorf("seep: WithQueueBound requires n >= 1 tuples, got %d", c.queueBound)
	}
	if c.memoryLimitSet && c.memoryLimit < 1 {
		return fmt.Errorf("seep: WithMemoryLimit requires a positive byte ceiling, got %d", c.memoryLimit)
	}
	if c.scaleIn != nil {
		// Scale in rides the scaling policy's utilisation reports.
		if c.policy == nil {
			return fmt.Errorf("seep: WithScaleIn requires WithPolicy")
		}
		p := *c.scaleIn
		if p.LowWatermark <= 0 {
			return fmt.Errorf("seep: WithScaleIn requires a positive low watermark, got %v", p.LowWatermark)
		}
		// Hysteresis: a merged pair's combined load is about the sum of
		// its halves, so the low watermark must sit below half the
		// scale-out threshold δ — otherwise a merge could land above δ
		// and immediately re-split, oscillating forever at steady load.
		if hi := c.policy.Threshold; hi > 0 && 2*p.LowWatermark >= hi {
			return fmt.Errorf("seep: WithScaleIn low watermark %v would oscillate against the scale-out threshold %v: require 2*low < threshold (hysteresis)",
				p.LowWatermark, hi)
		}
	}
	return nil
}

// WithCheckpointInterval sets c, the checkpointing interval of §3.2. On
// the live engine an interval of 0 disables checkpointing and output
// buffering; on the simulated cluster checkpointing is governed by the
// fault-tolerance mode (WithFTMode) and this sets its period.
func WithCheckpointInterval(d time.Duration) Option {
	return func(c *runtimeConfig) { c.checkpoint = d; c.checkpointSet = true }
}

// WithIncrementalCheckpoints enables §3.2's incremental checkpoints for
// operators on the managed keyed-state API: between full checkpoints the
// runtime ships only the keys dirtied since the previous checkpoint (a
// state.Delta) and the backup host folds them into the stored base. A
// full checkpoint is forced every fullEvery-th checkpoint, and whenever
// a delta's size would exceed maxDeltaFraction of the last full
// snapshot — both guards bound recovery-time fold work. Applies to all
// three substrates (Simulated: FTRSM mode only; combining with another
// FT mode is a Deploy error). On the Distributed runtime the deltas
// travel the wire as delta-checkpoint frames and the coordinator folds
// them into its authoritative store; fullEvery is the epoch boundary
// that bounds every delta chain. Operators on the deprecated Stateful
// contract always checkpoint fully. Observe the effect via
// Metrics.Checkpoints.
func WithIncrementalCheckpoints(fullEvery int, maxDeltaFraction float64) Option {
	return func(c *runtimeConfig) {
		c.delta = state.DeltaPolicy{FullEvery: fullEvery, MaxDeltaFraction: maxDeltaFraction}
		c.deltaSet = true
	}
}

// WithWireCodec selects the Distributed runtime's data-path batch
// framing: "binary" (the default) ships tuples as compact tag-dispatched
// records (varint timestamps and keys, the RegisterPayloadType tag
// registry for payloads), "gob" pins workers to the legacy gob framing —
// the escape hatch while a mixed-version fleet drains, since listeners
// of either vintage decode both framings. Distributed runtime only.
func WithWireCodec(name string) Option {
	return func(c *runtimeConfig) {
		c.wireCodec = name
		c.restrict("WithWireCodec", "the in-process runtimes have no wire", "dist")
	}
}

// WithDeltaCheckpoints enables incremental checkpoints over the network
// with the default policy (a full snapshot every 10th checkpoint, deltas
// capped at half the base size) unless WithIncrementalCheckpoints set an
// explicit one. compress flate-compresses each delta frame — worth it on
// real networks with compressible state, pure overhead on loopback.
// Distributed runtime only; the in-process substrates take
// WithIncrementalCheckpoints directly.
func WithDeltaCheckpoints(compress bool) Option {
	return func(c *runtimeConfig) {
		c.deltaWire = true
		c.deltaWireSet = true
		c.deltaCompress = compress
		c.restrict("WithDeltaCheckpoints",
			"use WithIncrementalCheckpoints on the in-process runtimes",
			"dist")
	}
}

// WithBatching sets the live engine's micro-batch parameters: up to
// size tuples are coalesced into one channel delivery, amortising
// channel operations, duplicate detection and ack-watermark updates,
// and linger bounds how long a source holds a partial batch before
// flushing (operator nodes never linger — staged output flushes at the
// end of each input batch). size 1 disables batching; linger must be
// positive (sources flush on a ticker, so zero delay does not exist);
// the engine default is 128 tuples with a 10 ms source linger.
//
// Larger batches raise throughput but add up to one linger of latency
// at the source and coarsen checkpoint-barrier granularity (a barrier
// waits for the in-progress batch). The Simulated runtime accepts the
// option as a documented no-op: virtual time processes events
// point-to-point, so there is nothing to coalesce and results are
// identical with or without it.
func WithBatching(size int, linger time.Duration) Option {
	return func(c *runtimeConfig) {
		c.batchSize = size
		c.batchLinger = linger
		c.batchSet = true
	}
}

// WithTimerInterval sets the period at which TimeDriven operators
// (windows) are ticked.
func WithTimerInterval(d time.Duration) Option {
	return func(c *runtimeConfig) { c.timer = d }
}

// WithPolicy enables the bottleneck-driven scaling policy of §5.1:
// operators whose utilisation stays above the threshold are split. The
// simulated cluster reports VM CPU utilisation; the live engine reports
// input-queue backpressure.
func WithPolicy(p Policy) Option {
	return func(c *runtimeConfig) { c.policy = &p }
}

// WithDetectDelay sets the failure-detection delay: the time between
// Job.Fail crash-stopping an instance and the runtime starting its
// recovery (default 500 ms). Must be positive.
func WithDetectDelay(d time.Duration) Option {
	return func(c *runtimeConfig) { c.detect = d; c.detectSet = true }
}

// WithRecoveryParallelism sets π used when recovering failed operators
// (1 = serial recovery; ≥2 = parallel recovery, §4.2).
func WithRecoveryParallelism(pi int) Option {
	return func(c *runtimeConfig) { c.recoveryPi = pi; c.recoveryPiSet = true }
}

// WithChannelBuffer sets the per-node input channel capacity of the
// live engine. Live and Distributed runtimes (distributed workers run
// live engines); the simulator's virtual time has no channels.
func WithChannelBuffer(n int) Option {
	return func(c *runtimeConfig) {
		c.channelBuffer = n
		c.restrict("WithChannelBuffer", "", "live", "dist")
	}
}

// WithQueueBound bounds every operator node's input queue to n tuples
// and sizes the credit ledgers of the end-to-end flow control: a sender
// whose downstream queue is out of credits blocks (locally) or stalls
// its per-link budget (across workers) instead of growing the queue, and
// sources adaptively stretch their batch linger while credits are
// scarce. 0 (the default) sizes the ledgers from the channel buffer.
// Stalls surface in Metrics.Backpressure. Live and Distributed runtimes;
// the simulator's virtual time has no queues to bound.
func WithQueueBound(n int) Option {
	return func(c *runtimeConfig) {
		c.queueBound = n
		c.queueBoundSet = true
		c.restrict("WithQueueBound", "", "live", "dist")
	}
}

// WithMemoryLimit caps the resident bytes of each stateful instance's
// managed state store: past the ceiling, cold key ranges spill to disk
// via the §3.3 spill primitive and materialise transparently on access.
// Checkpoints, partition and merge see the full state regardless of what
// is spilled. Spill activity surfaces in Metrics.Backpressure.Spill.
// Live and Distributed runtimes; simulated state never leaves memory.
func WithMemoryLimit(bytes int64) Option {
	return func(c *runtimeConfig) {
		c.memoryLimit = bytes
		c.memoryLimitSet = true
		c.restrict("WithMemoryLimit", "", "live", "dist")
	}
}

// WithSeed fixes the pseudo-random seed of a run. Accepted on every
// substrate: the Simulated runtime seeds its discrete-event kernel (two
// runs with the same seed replay event-for-event), while Live and
// Distributed have no runtime randomness of their own — there the seed
// is carried for reproducibility tooling (the scenario runner derives
// its deterministic workloads from it and echoes it in output and
// failures, so any reported run can be replayed exactly).
func WithSeed(seed int64) Option {
	return func(c *runtimeConfig) {
		c.seed = seed
	}
}

// WithFTMode selects the fault-tolerance mechanism under evaluation
// (§6.2): FTRSM (the paper's recovery with state management), FTNone,
// FTUpstreamBackup or FTSourceReplay. Simulated runtime only — the live
// engine always runs the paper's state-management protocol.
func WithFTMode(m FTMode) Option {
	return func(c *runtimeConfig) {
		c.ftMode = m
		c.ftModeSet = true
		c.restrict("WithFTMode", "", "sim")
	}
}

// WithVMPool configures the pre-allocated VM pool that masks IaaS
// provisioning delays (§5.2). Simulated runtime only.
func WithVMPool(p PoolConfig) Option {
	return func(c *runtimeConfig) {
		c.pool = &p
		c.restrict("WithVMPool", "", "sim")
	}
}

// WithNetDelay sets the one-way network latency between simulated VMs.
// Simulated runtime only.
func WithNetDelay(d time.Duration) Option {
	return func(c *runtimeConfig) {
		c.netDelay = d
		c.restrict("WithNetDelay", "", "sim")
	}
}

// WithWindow bounds how long the upstream-backup and source-replay
// baselines retain tuples. Simulated runtime only.
func WithWindow(d time.Duration) Option {
	return func(c *runtimeConfig) {
		c.window = d
		c.restrict("WithWindow", "", "sim")
	}
}

// WithVMCapacity sets the CPU capacity of statically deployed simulated
// VMs. Simulated runtime only.
func WithVMCapacity(capacity float64) Option {
	return func(c *runtimeConfig) {
		c.vmCapacity = capacity
		c.restrict("WithVMCapacity", "", "sim")
	}
}

// WithScaleIn enables elastic scale in (§8 future work, the dual of the
// scale-out policy) on every substrate: when EVERY partition of an
// operator reports utilisation below the low watermark for the
// configured number of consecutive rounds, the adjacent pair with the
// lowest combined load is merged back into one instance — partitioned
// state merged via the checkpoint merge primitive (§3.3), buffers
// repartitioned and replayed exactly-once. Requires WithPolicy, and the
// low watermark must satisfy 2*LowWatermark < Policy.Threshold so a
// merged pair cannot immediately re-trigger a split (hysteresis; a
// violating combination is a Deploy error). Completed merges surface in
// Metrics.Merges and Metrics.Recoveries (Merge records). Jobs can also
// merge explicitly with Job.ScaleIn.
func WithScaleIn(p ScaleInPolicy) Option {
	return func(c *runtimeConfig) { c.scaleIn = &p }
}

// WithElasticity enables scale in.
//
// Deprecated: use WithScaleIn, which is accepted by all three
// substrates (WithElasticity historically applied to the Simulated
// runtime only; it is now an exact alias).
func WithElasticity(p ScaleInPolicy) Option { return WithScaleIn(p) }

// WithWorkers sets how many in-process loopback workers the Distributed
// runtime spawns (default 3). Each worker is a full coordinator-managed
// host with its own TCP listener — real frames, real failure detection —
// inside one process, which is the test and development mode. Mutually
// exclusive with WithWorkerAddrs. Distributed runtime only.
func WithWorkers(n int) Option {
	return func(c *runtimeConfig) {
		c.workers = n
		c.workersSet = true
		c.restrict("WithWorkers", "", "dist")
	}
}

// WithWorkerAddrs connects the Distributed runtime to external
// seep-worker daemons (cmd/seep-worker) instead of spawning in-process
// workers. Requires WithTopologyName, since Go cannot ship operator code:
// every daemon's registry must have the topology registered under that
// name. Distributed runtime only.
func WithWorkerAddrs(addrs ...string) Option {
	return func(c *runtimeConfig) {
		c.workerAddrs = append(c.workerAddrs, addrs...)
		c.restrict("WithWorkerAddrs", "", "dist")
	}
}

// WithTopologyName names the topology for worker registries (external
// deployments). Distributed runtime only.
func WithTopologyName(name string) Option {
	return func(c *runtimeConfig) {
		c.topoName = name
		c.restrict("WithTopologyName", "", "dist")
	}
}

// WithPayloadCodec sets the codec serialising tuple payloads on the
// wire (default: gob over registered concrete types, see
// RegisterPayloadType). Distributed runtime only.
func WithPayloadCodec(codec PayloadCodec) Option {
	return func(c *runtimeConfig) {
		c.payloadCodec = codec
		c.restrict("WithPayloadCodec", "", "dist")
	}
}

// WithCoordinatorAddr sets the coordinator's listen address (default
// "127.0.0.1:0"). External workers dial back to it, so for multi-host
// deployments it must be reachable from every worker. Distributed
// runtime only.
func WithCoordinatorAddr(addr string) Option {
	return func(c *runtimeConfig) {
		c.coordAddr = addr
		c.restrict("WithCoordinatorAddr", "", "dist")
	}
}

// WithControlPlaneDir makes the coordinator's control plane durable:
// every control-plane mutation (deploy, start, placement change,
// scale-out/in and recovery stage boundaries, checkpoint-ship metadata)
// is journaled to an fsynced write-ahead log in dir, and shipped
// checkpoints are persisted beside it. A coordinator killed mid-job can
// then be rebuilt from dir — replaying the journal, reattaching the
// still-running workers without restarting them, and rolling back any
// transition caught without a commit record — via
// Job.RestartCoordinator (see CoordinatorFaulter). Journaling is on the
// control path only; the tuple data path is untouched. Distributed
// runtime only.
func WithControlPlaneDir(dir string) Option {
	return func(c *runtimeConfig) {
		c.controlPlaneDir = dir
		c.restrict("WithControlPlaneDir",
			"the in-process runtimes have no coordinator process to lose",
			"dist")
	}
}

// WithStandbyAddr names the address orphaned workers re-dial when their
// coordinator dies (a cold standby, or a supervisor that will restart
// the coordinator elsewhere). Without it, workers with a durable
// control plane redial the dead coordinator's own address — the
// restart-in-place default. Distributed runtime only.
func WithStandbyAddr(addr string) Option {
	return func(c *runtimeConfig) {
		c.standbyAddr = addr
		c.restrict("WithStandbyAddr", "requires WithControlPlaneDir", "dist")
	}
}
