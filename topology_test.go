package seep_test

import (
	"strings"
	"testing"

	"seep"
)

func splitFactory() seep.Operator { return seep.WordSplitter() }
func countFactory() seep.Operator { return seep.NewWordCounter(0) }

// TestTopologyBuildValidation drives the declarative surface through
// every class of construction mistake Build must reject.
func TestTopologyBuildValidation(t *testing.T) {
	cases := []struct {
		name  string
		build func() *seep.Topology
		// wantErr is a substring of the expected Build error; "" means
		// Build must succeed.
		wantErr string
	}{
		{
			name: "valid linear chain",
			build: func() *seep.Topology {
				return seep.NewTopology().
					Source("src").
					Stateless("split", splitFactory).
					Stateful("count", countFactory).
					Sink("sink")
			},
		},
		{
			name: "valid diamond with explicit connects",
			build: func() *seep.Topology {
				return seep.NewTopology().
					Source("src").
					Stateless("left", splitFactory).
					Stateless("right", splitFactory).
					Sink("sink").
					Connect("src", "left").
					Connect("src", "right").
					Connect("left", "sink").
					Connect("right", "sink")
			},
		},
		{
			name: "dangling edge to undeclared operator",
			build: func() *seep.Topology {
				return seep.NewTopology().
					Source("src").
					Stateless("split", splitFactory).
					Sink("sink").
					Connect("src", "split").
					Connect("split", "ghost").
					Connect("split", "sink")
			},
			wantErr: `"ghost" is not declared`,
		},
		{
			name: "duplicate operator ID",
			build: func() *seep.Topology {
				return seep.NewTopology().
					Source("src").
					Stateless("split", splitFactory).
					Stateless("split", splitFactory).
					Sink("sink")
			},
			wantErr: "duplicate",
		},
		{
			name: "empty operator ID",
			build: func() *seep.Topology {
				return seep.NewTopology().
					Source("src").
					Stateless("", splitFactory).
					Sink("sink")
			},
			wantErr: "empty ID",
		},
		{
			name: "cycle",
			build: func() *seep.Topology {
				return seep.NewTopology().
					Source("src").
					Stateless("a", splitFactory).
					Stateless("b", splitFactory).
					Sink("sink").
					Connect("src", "a").
					Connect("a", "b").
					Connect("b", "a").
					Connect("b", "sink")
			},
			wantErr: "cycle",
		},
		{
			name: "nil factory for stateful operator",
			build: func() *seep.Topology {
				return seep.NewTopology().
					Source("src").
					Stateful("count", nil).
					Sink("sink")
			},
			wantErr: "nil factory",
		},
		{
			name:    "empty topology",
			build:   func() *seep.Topology { return seep.NewTopology() },
			wantErr: "empty",
		},
		{
			name: "operator unreachable from sources",
			build: func() *seep.Topology {
				return seep.NewTopology().
					Source("src").
					Stateless("used", splitFactory).
					Stateless("lost", splitFactory).
					Sink("sink").
					Connect("src", "used").
					Connect("used", "sink")
			},
			wantErr: "no inputs",
		},
		{
			name: "no sink",
			build: func() *seep.Topology {
				return seep.NewTopology().
					Source("src").
					Stateless("split", splitFactory).
					Connect("src", "split")
			},
			wantErr: "no outputs",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			topo, err := c.build().Build()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Build() = %v, want success", err)
				}
				if topo.Query() == nil {
					t.Fatal("built topology has no query")
				}
				return
			}
			if err == nil {
				t.Fatalf("Build() succeeded, want error mentioning %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Build() error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestTopologyBuildJoinsAllErrors: one Build reports every mistake, not
// just the first.
func TestTopologyBuildJoinsAllErrors(t *testing.T) {
	_, err := seep.NewTopology().
		Source("src").
		Stateful("count", nil).
		Stateful("count", countFactory).
		Sink("sink").
		Build()
	if err == nil {
		t.Fatal("Build() succeeded")
	}
	for _, want := range []string{"nil factory", "duplicate"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Build() error %q does not mention %q", err, want)
		}
	}
}

// TestTopologyLinearChainStreams: implicit chaining connects declaration
// order exactly.
func TestTopologyLinearChainStreams(t *testing.T) {
	topo, err := seep.NewTopology().
		Source("src").
		Stateless("split", splitFactory).
		Stateful("count", countFactory).
		Sink("sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	q := topo.Query()
	wantEdges := [][2]seep.OpID{{"src", "split"}, {"split", "count"}, {"count", "sink"}}
	streams := q.Streams()
	if len(streams) != len(wantEdges) {
		t.Fatalf("streams = %v", streams)
	}
	for i, e := range wantEdges {
		if streams[i].From != e[0] || streams[i].To != e[1] {
			t.Errorf("stream %d = %v, want %v -> %v", i, streams[i], e[0], e[1])
		}
	}
	if got := topo.Factories(); len(got) != 2 || got["split"] == nil || got["count"] == nil {
		t.Errorf("Factories() = %v", got)
	}
}

// TestTopologyBuildIdempotent: Build on a built topology returns the
// same instance without error.
func TestTopologyBuildIdempotent(t *testing.T) {
	topo := seep.NewTopology().
		Source("src").
		Stateless("split", splitFactory).
		Sink("sink")
	built, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}
	again, err := built.Build()
	if err != nil || again != built {
		t.Fatalf("second Build() = (%p, %v), want (%p, nil)", again, err, built)
	}
}

// TestFromQuery: the bridge from plan-level queries validates the graph
// and requires a factory for every user operator.
func TestFromQuery(t *testing.T) {
	q := seep.NewQuery()
	q.AddOp(seep.OpSpec{ID: "src", Role: seep.RoleSource})
	q.AddOp(seep.OpSpec{ID: "count", Role: seep.RoleStateful})
	q.AddOp(seep.OpSpec{ID: "sink", Role: seep.RoleSink})
	q.Connect("src", "count").Connect("count", "sink")

	if _, err := seep.FromQuery(q, nil); err == nil || !strings.Contains(err.Error(), "no factory") {
		t.Errorf("FromQuery without factories = %v, want 'no factory' error", err)
	}
	topo, err := seep.FromQuery(q, map[seep.OpID]seep.Factory{"count": countFactory})
	if err != nil {
		t.Fatal(err)
	}
	if topo.Query() != q {
		t.Error("FromQuery did not adopt the query")
	}
	if _, err := seep.FromQuery(nil, nil); err == nil {
		t.Error("FromQuery(nil) accepted")
	}
	dangling := seep.NewQuery()
	dangling.AddOp(seep.OpSpec{ID: "src", Role: seep.RoleSource})
	dangling.Connect("src", "ghost")
	if _, err := seep.FromQuery(dangling, nil); err == nil {
		t.Error("FromQuery accepted a dangling edge")
	}
}

// TestTopologyRejectsDeclarationsAfterBuild: mutating a built topology
// is an error on the next Build/Deploy, never a silent no-op.
func TestTopologyRejectsDeclarationsAfterBuild(t *testing.T) {
	topo, err := seep.NewTopology().
		Source("src").
		Stateless("split", splitFactory).
		Sink("sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	topo.Connect("split", "audit")
	if _, err := topo.Build(); err == nil || !strings.Contains(err.Error(), "already built") {
		t.Errorf("Build() after post-build Connect = %v, want 'already built' error", err)
	}
	if _, err := seep.Live().Deploy(topo); err == nil {
		t.Error("Deploy accepted a topology mutated after Build")
	}
}
