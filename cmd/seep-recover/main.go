// Command seep-recover demonstrates failure recovery on the simulated
// cluster: it runs the windowed word frequency query, kills the stateful
// word counter mid-run, and reports the recovery timeline under the
// chosen fault-tolerance mechanism (r+sm, ub, sr) and recovery
// parallelism.
//
// Usage:
//
//	seep-recover -mode r+sm -rate 500 -checkpoint 5 -pi 1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"seep"
	"seep/internal/wordcount"
)

func main() {
	var (
		mode     = flag.String("mode", "r+sm", "fault tolerance mechanism: r+sm, ub, sr, none")
		rate     = flag.Float64("rate", 500, "input rate (tuples/s)")
		interval = flag.Int64("checkpoint", 5, "checkpointing interval (s)")
		pi       = flag.Int("pi", 1, "recovery parallelism (1 = serial)")
		failAt   = flag.Int64("fail-at", 45, "failure injection time (s)")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	var ftMode seep.FTMode
	switch *mode {
	case "r+sm":
		ftMode = seep.FTRSM
	case "ub":
		ftMode = seep.FTUpstreamBackup
	case "sr":
		ftMode = seep.FTSourceReplay
	case "none":
		ftMode = seep.FTNone
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	opts := wordcount.DefaultOptions()
	opts.WindowMillis = 0
	fs := wordcount.Factories(opts)
	topo, err := seep.NewTopology().
		Source("src").
		Stateless("split", fs["split"], seep.Cost(opts.SplitCost)).
		Stateful("count", fs["count"], seep.Cost(opts.CountCost)).
		Sink("sink").
		Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	job, err := seep.Simulated(
		seep.WithSeed(*seed),
		seep.WithFTMode(ftMode),
		seep.WithCheckpointInterval(time.Duration(*interval)*time.Second),
		seep.WithRecoveryParallelism(*pi),
	).Deploy(topo)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := job.AddSource("src", seep.ConstantRate(*rate),
		wordcount.WordSource(10_000, *seed)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	job.Start()
	job.Run(time.Duration(*failAt) * time.Second)
	victim := job.Instances("count")[0]
	if err := job.Fail(victim); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	job.Run(150 * time.Second)

	fmt.Printf("word frequency query, %s mode, %.0f tuples/s, c=%ds\n", *mode, *rate, *interval)
	fmt.Printf("  failed %s at t=%ds\n", victim, *failAt)
	m := job.MetricsSnapshot()
	if len(m.Recoveries) == 0 {
		fmt.Println("  no recovery completed (mode none keeps the operator down)")
		return
	}
	for _, r := range m.Recoveries {
		fmt.Printf("  recovered as pi=%d at t=%.1fs: %.1f s recovery time, %d tuples replayed\n",
			r.Pi, float64(r.CompletedAt)/1000, float64(r.Duration())/1000, r.ReplayedTuples)
	}
	fmt.Printf("  duplicates discarded during replay: %d\n", m.DuplicatesDropped)
	fmt.Printf("  sink latency: %s\n", m.Latency)
}
