// Command seep-recover demonstrates failure recovery on the simulated
// cluster: it runs the windowed word frequency query, kills the stateful
// word counter mid-run, and reports the recovery timeline under the
// chosen fault-tolerance mechanism (r+sm, ub, sr) and recovery
// parallelism.
//
// Usage:
//
//	seep-recover -mode r+sm -rate 500 -checkpoint 5 -pi 1
package main

import (
	"flag"
	"fmt"
	"os"

	"seep/internal/plan"
	"seep/internal/sim"
	"seep/internal/wordcount"
)

func main() {
	var (
		mode     = flag.String("mode", "r+sm", "fault tolerance mechanism: r+sm, ub, sr, none")
		rate     = flag.Float64("rate", 500, "input rate (tuples/s)")
		interval = flag.Int64("checkpoint", 5, "checkpointing interval (s)")
		pi       = flag.Int("pi", 1, "recovery parallelism (1 = serial)")
		failAt   = flag.Int64("fail-at", 45, "failure injection time (s)")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	var ftMode sim.FTMode
	switch *mode {
	case "r+sm":
		ftMode = sim.FTRSM
	case "ub":
		ftMode = sim.FTUpstreamBackup
	case "sr":
		ftMode = sim.FTSourceReplay
	case "none":
		ftMode = sim.FTNone
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	opts := wordcount.DefaultOptions()
	opts.WindowMillis = 0
	c, err := sim.NewCluster(sim.Config{
		Seed:                     *seed,
		Mode:                     ftMode,
		CheckpointIntervalMillis: *interval * 1000,
		RecoveryParallelism:      *pi,
	}, wordcount.Query(opts), wordcount.Factories(opts))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := c.AddSource(plan.InstanceID{Op: "src", Part: 1}, sim.ConstantRate(*rate),
		wordcount.WordSource(10_000, *seed)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	victim := plan.InstanceID{Op: "count", Part: 1}
	c.Sim().At(*failAt*1000, func() {
		if err := c.FailInstance(victim); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	})
	c.RunUntil(*failAt*1000 + 150_000)

	fmt.Printf("word frequency query, %s mode, %.0f tuples/s, c=%ds\n", *mode, *rate, *interval)
	fmt.Printf("  failed %s at t=%ds\n", victim, *failAt)
	recs := c.Recoveries()
	if len(recs) == 0 {
		fmt.Println("  no recovery completed (mode none keeps the operator down)")
		return
	}
	for _, r := range recs {
		fmt.Printf("  recovered as pi=%d at t=%.1fs: %.1f s recovery time, %d tuples replayed\n",
			r.Pi, float64(r.CompletedAt)/1000, float64(r.Duration())/1000, r.ReplayedTuples)
	}
	fmt.Printf("  duplicates discarded during replay: %d\n", c.DuplicatesDropped())
	fmt.Printf("  sink latency: %s\n", c.Latency.Summarize())
}
