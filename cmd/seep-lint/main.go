// Command seep-lint runs seep's static-analysis suite. Two modes share
// the same analyzers:
//
//	seep-lint [flags] [packages]     standalone, e.g. seep-lint ./...
//	go vet -vettool=$(which seep-lint) ./...
//
// The vet mode speaks the go command's unit-check protocol (-flags and
// -V=full handshakes, then one vet.cfg per package), so the suite runs
// from the build cache with the compiler's own export data. Pass
// -<analyzer> flags (e.g. -heldlock) to run a subset; default is the
// full suite. Exit status: 0 clean, 1 findings (2 in vet mode, matching
// go vet), 2 internal or load error.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"seep/internal/analysis"
	"seep/internal/analysis/driver"
)

func main() {
	var (
		versionFlag = flag.String("V", "", "print version and exit (go vet handshake)")
		flagsFlag   = flag.Bool("flags", false, "print analyzer flags in JSON (go vet handshake)")
		jsonFlag    = flag.Bool("json", false, "emit diagnostics as JSON")
	)
	selected := make(map[string]*bool)
	for _, a := range analysis.All() {
		selected[a.Name] = flag.Bool(a.Name, false, "run only the "+a.Name+" analyzer "+firstLine(a.Doc))
	}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: seep-lint [-json] [-<analyzer>...] [package...]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	flag.Parse()

	if *flagsFlag {
		printFlagsJSON()
		return
	}
	if *versionFlag != "" {
		printVersion()
		return
	}

	analyzers := analysis.All()
	var subset []*analysis.Analyzer
	for _, a := range analyzers {
		if *selected[a.Name] {
			subset = append(subset, a)
		}
	}
	if len(subset) > 0 {
		analyzers = subset
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		n, err := driver.VetCfg(args[0], analyzers, *jsonFlag, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seep-lint: %v\n", err)
			os.Exit(2)
		}
		if n > 0 {
			os.Exit(2)
		}
		return
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	n, err := driver.Standalone(args, analyzers, *jsonFlag, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seep-lint: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}

// printVersion answers the go command's -V=full handshake. The line
// format is parsed by cmd/go/internal/work.(*Builder).toolID: with a
// "devel" version the last field must carry a buildID, which we derive
// from the binary's own content so rebuilding the tool invalidates
// cached vet results.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			io.Copy(h, f)
			f.Close()
			id = fmt.Sprintf("%x", h.Sum(nil)[:12])
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", filepath.Base(os.Args[0]), id)
}

// printFlagsJSON answers the go command's -flags handshake: a JSON
// array describing the flags go vet may pass through to the tool.
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	out := []jsonFlag{{Name: "json", Bool: true, Usage: "emit diagnostics as JSON"}}
	for _, a := range analysis.All() {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: firstLine(a.Doc)})
	}
	b, _ := json.MarshalIndent(out, "", "\t")
	os.Stdout.Write(append(b, '\n'))
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
