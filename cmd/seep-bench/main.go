// Command seep-bench regenerates the paper's evaluation figures
// (§6, Figs. 6-15) and the design-choice ablations, printing the same
// rows/series the paper plots plus a paper-vs-measured note.
//
// Usage:
//
//	seep-bench                       # run everything at paper scale
//	seep-bench -experiment fig11     # one experiment
//	seep-bench -quick                # reduced scale (seconds, not minutes)
//	seep-bench -list                 # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"seep/internal/experiments"
)

func main() {
	var (
		name  = flag.String("experiment", "", "experiment to run (default: all)")
		quick = flag.Bool("quick", false, "reduced scale for fast runs")
		list  = flag.Bool("list", false, "list experiment names and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	scale := experiments.Scale{Quick: *quick}
	names := experiments.Names()
	if *name != "" {
		names = []string{*name}
	}
	failed := false
	for _, n := range names {
		start := time.Now()
		t, err := experiments.Run(n, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", n, err)
			failed = true
			continue
		}
		t.Fprint(os.Stdout)
		fmt.Printf("  (%s in %.1fs)\n\n", n, time.Since(start).Seconds())
	}
	if failed {
		os.Exit(1)
	}
}
