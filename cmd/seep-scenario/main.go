// Command seep-scenario runs declarative chaos scenarios (YAML files)
// against any seep substrate. One scenario file — topology, seeded
// workload, timed event script, assertions — runs unchanged on the
// Simulated, Live and Distributed runtimes, which is the paper's
// central claim exercised as a test format.
//
// Usage:
//
//	seep-scenario run [-substrate=sim|live|dist|all] [-seed N] <file|dir>...
//	seep-scenario validate <file|dir>...
//	seep-scenario list <file|dir>...
//
// The run subcommand executes each scenario on every declared substrate
// matching -substrate and exits non-zero on any assertion miss,
// printing the scenario name and seed so the run can be replayed. For
// external scenarios (`external: true`), pass -workers with a
// comma-separated list of running seep-worker addresses.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"seep/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "run":
		os.Exit(runCmd(args))
	case "validate", "-validate":
		os.Exit(validateCmd(args))
	case "list", "-list":
		os.Exit(listCmd(args))
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "seep-scenario: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  seep-scenario run [-substrate=sim|live|dist|all] [-seed N] [-workers addrs] [-topology name] [-v] <file|dir>...
  seep-scenario validate <file|dir>...
  seep-scenario list <file|dir>...
`)
}

// load expands files and directories into scenarios.
func load(paths []string) ([]*scenario.Scenario, error) {
	if len(paths) == 0 {
		paths = []string{"scenarios"}
	}
	var out []*scenario.Scenario
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if info.IsDir() {
			ss, err := scenario.LoadDir(p)
			if err != nil {
				return nil, err
			}
			out = append(out, ss...)
			continue
		}
		s, err := scenario.LoadFile(p)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func runCmd(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	substrate := fs.String("substrate", "all", "substrate to run on: sim, live, dist or all (every declared)")
	seed := fs.Int64("seed", 0, "override the scenario seed (0 = use the file's)")
	workers := fs.String("workers", "", "comma-separated external seep-worker addresses (external scenarios)")
	topology := fs.String("topology", "", "registry topology name for external workers")
	verbose := fs.Bool("v", false, "print event-by-event progress")
	fs.Parse(args)

	scenarios, err := load(fs.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "seep-scenario: %v\n", err)
		return 2
	}
	ran, failed := 0, 0
	for _, s := range scenarios {
		if errs := scenario.Validate(s); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "INVALID %s: %v\n", s.Name, e)
			}
			failed++
			continue
		}
		for _, sub := range s.Substrates {
			if *substrate != "all" && sub != *substrate {
				continue
			}
			cfg := scenario.RunConfig{Substrate: sub, Seed: *seed, TopologyName: *topology}
			if *workers != "" {
				cfg.WorkerAddrs = strings.Split(*workers, ",")
			}
			if s.External && len(cfg.WorkerAddrs) == 0 {
				fmt.Printf("SKIP %s [%s]: external scenario needs -workers\n", s.Name, sub)
				continue
			}
			if *verbose {
				cfg.Logf = func(format string, a ...any) {
					fmt.Fprintf(os.Stderr, format+"\n", a...)
				}
			}
			res, err := scenario.Run(s, cfg)
			ran++
			if err != nil {
				fmt.Fprintf(os.Stderr, "ERROR %s [%s]: %v\n", s.Name, sub, err)
				failed++
				continue
			}
			if res.OK() {
				fmt.Printf("PASS %s [substrate %s, seed %d] sink=%d recoveries=%d merges=%d\n",
					res.Scenario, res.Substrate, res.Seed,
					res.Metrics.SinkTuples, len(res.Metrics.Recoveries), res.Metrics.Merges)
				echoControlPlane(res)
				continue
			}
			failed++
			fmt.Printf("FAIL %s [substrate %s, seed %d]\n", res.Scenario, res.Substrate, res.Seed)
			echoControlPlane(res)
			for _, f := range res.Failures {
				fmt.Printf("  %s\n", f)
			}
		}
	}
	fmt.Printf("%d run, %d failed\n", ran, failed)
	if failed > 0 {
		return 1
	}
	return 0
}

// echoControlPlane prints the Distributed coordinator's journal and
// failover numbers under a scenario verdict — silent for runs without a
// durable control plane, one glanceable line for failover scenarios.
func echoControlPlane(res *scenario.Result) {
	cp := res.Metrics.ControlPlane
	if cp.JournalAppends == 0 && cp.ReplayRecords == 0 {
		return
	}
	fmt.Printf("  control-plane: appends=%d bytes=%d rotations=%d fsync-max=%dµs replay=%d recs/%dms reattached=%d failover=%dms\n",
		cp.JournalAppends, cp.JournalBytes, cp.Rotations, cp.FsyncMaxMicros,
		cp.ReplayRecords, cp.ReplayMillis, cp.Reattached, cp.FailoverMillis)
}

func validateCmd(args []string) int {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	fs.Parse(args)
	scenarios, err := load(fs.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "seep-scenario: %v\n", err)
		return 2
	}
	bad := 0
	for _, s := range scenarios {
		errs := scenario.Validate(s)
		if len(errs) == 0 {
			fmt.Printf("OK   %s\n", s.Name)
			continue
		}
		bad++
		fmt.Printf("FAIL %s\n", s.Name)
		for _, e := range errs {
			fmt.Printf("  %v\n", e)
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func listCmd(args []string) int {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	fs.Parse(args)
	scenarios, err := load(fs.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "seep-scenario: %v\n", err)
		return 2
	}
	for _, s := range scenarios {
		kinds := make(map[string]bool)
		for _, ev := range s.Events {
			kinds[ev.Kind] = true
		}
		var ks []string
		for k := range kinds {
			ks = append(ks, k)
		}
		fmt.Printf("%-28s substrates=%v seed=%d events=%v\n      %s\n",
			s.Name, s.Substrates, s.Seed, strings.Join(sorted(ks), ","), s.Description)
	}
	return 0
}

func sorted(ss []string) []string {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
	return ss
}
