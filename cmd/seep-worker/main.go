// seep-worker is the distributed runtime's host daemon: it serves a
// registry of compiled-in topologies and waits for a coordinator (any
// program using seep.Distributed with WithWorkerAddrs) to assign it a
// slice of the execution graph. Go cannot ship code between processes,
// so a production deployment builds its own worker binary embedding its
// operators — this one ships the library wordcount query as a runnable
// demonstration.
//
// Run a three-process cluster on one machine:
//
//	seep-worker -listen 127.0.0.1:7701 &
//	seep-worker -listen 127.0.0.1:7702 &
//	seep-worker -listen 127.0.0.1:7703 &
//	seep-worker -drive 127.0.0.1:7701,127.0.0.1:7702,127.0.0.1:7703
//
// The -drive mode runs the coordinator side: it executes a committed
// chaos scenario (default scenarios/dist-demo-external.yaml) against
// the listed workers through the scenario runner — the topology, the
// timed event script and the assertions all come from the file; the
// source rate stays bound in each worker's registry.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"seep"
	"seep/internal/scenario"
)

const topoName = "wordcount"

func registry() *seep.WorkerRegistry {
	reg := seep.NewWorkerRegistry()
	reg.Register(topoName, seep.NewTopology().
		Source("src").
		Stateless("split", func() seep.Operator { return seep.WordSplitter() }).
		Stateful("count", func() seep.Operator { return seep.NewWordCounter(0) }).
		Sink("sink"))
	vocab := []string{"state", "stream", "operator", "checkpoint", "partition", "replay"}
	reg.RegisterSource(topoName, "src", seep.ConstantRate(2000), func(i uint64) (seep.Key, any) {
		w := vocab[i%uint64(len(vocab))]
		return seep.KeyOfString(w), w
	})
	return reg
}

func main() {
	listen := flag.String("listen", "127.0.0.1:7701", "worker listen address")
	drive := flag.String("drive", "", "comma-separated worker addresses: run the demo coordinator instead of a worker")
	file := flag.String("scenario", "scenarios/dist-demo-external.yaml", "scenario file for -drive mode")
	cpDir := flag.String("controlplane", "", "-drive mode: journal the coordinator's control plane into this dir (durable failover; needed by kill-coordinator scenarios)")
	flag.Parse()

	if *drive != "" {
		runCoordinator(*file, strings.Split(*drive, ","), *cpDir)
		return
	}

	w, err := seep.RunWorker(*listen, registry())
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("seep-worker serving %q on %s", topoName, w.Addr())
	w.Wait()
	log.Printf("seep-worker %s: coordinator ordered shutdown", w.Addr())
}

func runCoordinator(file string, addrs []string, cpDir string) {
	// The scenario declares the same topology the workers registered;
	// the runner plans it across the listed addresses while workers
	// instantiate the operators (and drive the source) from their own
	// registries.
	s, err := scenario.LoadFile(file)
	if err != nil {
		log.Fatal(err)
	}
	res, err := scenario.Run(s, scenario.RunConfig{
		Substrate:       "dist",
		WorkerAddrs:     addrs,
		TopologyName:    topoName,
		ControlPlaneDir: cpDir,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Printf("sink tuples:     %d\n", m.SinkTuples)
	fmt.Printf("recoveries:      %d\n", len(m.Recoveries))
	for _, r := range m.Recoveries {
		fmt.Printf("  %s pi=%d failure=%v replayed=%d in %dms\n",
			r.Victim, r.Pi, r.Failure, r.ReplayedTuples, r.CompletedAt-r.StartedAt)
	}
	fmt.Printf("frames sent:     %d (%.1f KiB)\n", m.Transport.FramesSent, float64(m.Transport.BytesSent)/1024)
	fmt.Printf("frames received: %d (%.1f KiB)\n", m.Transport.FramesReceived, float64(m.Transport.BytesReceived)/1024)
	if cp := m.ControlPlane; cp.JournalAppends > 0 || cp.ReplayRecords > 0 {
		fmt.Printf("control plane:   appends=%d replay=%d recs reattached=%d failover=%dms\n",
			cp.JournalAppends, cp.ReplayRecords, cp.Reattached, cp.FailoverMillis)
	}
	fmt.Printf("errors:          %v\n", m.Errors)
	if res.OK() {
		fmt.Printf("PASS %s [substrate dist, seed %d]\n", res.Scenario, res.Seed)
		return
	}
	for _, f := range res.Failures {
		fmt.Println("FAIL:", f)
	}
	os.Exit(1)
}
