// seep-worker is the distributed runtime's host daemon: it serves a
// registry of compiled-in topologies and waits for a coordinator (any
// program using seep.Distributed with WithWorkerAddrs) to assign it a
// slice of the execution graph. Go cannot ship code between processes,
// so a production deployment builds its own worker binary embedding its
// operators — this one ships the library wordcount query as a runnable
// demonstration.
//
// Run a three-process cluster on one machine:
//
//	seep-worker -listen 127.0.0.1:7701 &
//	seep-worker -listen 127.0.0.1:7702 &
//	seep-worker -listen 127.0.0.1:7703 &
//	seep-worker -drive 127.0.0.1:7701,127.0.0.1:7702,127.0.0.1:7703
//
// The -drive mode runs the coordinator side: it deploys the registered
// "wordcount" topology across the listed workers (source rate bound in
// each worker's registry), lets it stream for a few seconds, kills one
// worker's hosted counter to demonstrate heartbeat-detected recovery,
// and prints the resulting metrics.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"seep"
)

const topoName = "wordcount"

func registry() *seep.WorkerRegistry {
	reg := seep.NewWorkerRegistry()
	reg.Register(topoName, seep.NewTopology().
		Source("src").
		Stateless("split", func() seep.Operator { return seep.WordSplitter() }).
		Stateful("count", func() seep.Operator { return seep.NewWordCounter(0) }).
		Sink("sink"))
	vocab := []string{"state", "stream", "operator", "checkpoint", "partition", "replay"}
	reg.RegisterSource(topoName, "src", seep.ConstantRate(2000), func(i uint64) (seep.Key, any) {
		w := vocab[i%uint64(len(vocab))]
		return seep.KeyOfString(w), w
	})
	return reg
}

func main() {
	listen := flag.String("listen", "127.0.0.1:7701", "worker listen address")
	drive := flag.String("drive", "", "comma-separated worker addresses: run the demo coordinator instead of a worker")
	flag.Parse()

	if *drive != "" {
		runCoordinator(strings.Split(*drive, ","))
		return
	}

	w, err := seep.RunWorker(*listen, registry())
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("seep-worker serving %q on %s", topoName, w.Addr())
	w.Wait()
	log.Printf("seep-worker %s: coordinator ordered shutdown", w.Addr())
}

func runCoordinator(addrs []string) {
	// The coordinator needs the same topology declaration for planning;
	// workers instantiate the operators from their own registries.
	t := seep.NewTopology().
		Source("src").
		Stateless("split", func() seep.Operator { return seep.WordSplitter() }).
		Stateful("count", func() seep.Operator { return seep.NewWordCounter(0) }).
		Sink("sink")

	job, err := seep.Distributed(
		seep.WithWorkerAddrs(addrs...),
		seep.WithTopologyName(topoName),
		seep.WithCheckpointInterval(250*time.Millisecond),
		seep.WithPolicy(seep.DefaultPolicy()),
	).Deploy(t)
	if err != nil {
		log.Fatal(err)
	}
	job.Start()
	defer job.Stop()

	log.Printf("deployed %q across %d workers; streaming...", topoName, len(addrs))
	job.Run(5 * time.Second)

	victim := job.Instances("count")[0]
	log.Printf("killing the worker hosting %s (heartbeat-detected recovery)...", victim)
	if err := job.Fail(victim); err != nil {
		log.Fatal(err)
	}
	job.Run(5 * time.Second)

	m := job.MetricsSnapshot()
	fmt.Printf("sink tuples:     %d\n", m.SinkTuples)
	fmt.Printf("recoveries:      %d\n", len(m.Recoveries))
	for _, r := range m.Recoveries {
		fmt.Printf("  %s pi=%d failure=%v replayed=%d in %dms\n",
			r.Victim, r.Pi, r.Failure, r.ReplayedTuples, r.CompletedAt-r.StartedAt)
	}
	fmt.Printf("frames sent:     %d (%.1f KiB)\n", m.Transport.FramesSent, float64(m.Transport.BytesSent)/1024)
	fmt.Printf("frames received: %d (%.1f KiB)\n", m.Transport.FramesReceived, float64(m.Transport.BytesReceived)/1024)
	fmt.Printf("errors:          %v\n", m.Errors)
}
