// Command lrb runs the Linear Road Benchmark query tuple-by-tuple on the
// simulated cluster with the dynamic scale-out policy enabled, printing
// throughput, allocation and the latency distribution against the 5 s
// LRB response-time bound.
//
// Usage:
//
//	lrb -L 2 -duration 120 -rate 2000
package main

import (
	"flag"
	"fmt"
	"os"

	"seep/internal/control"
	"seep/internal/lrb"
	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/sim"
	"seep/internal/stream"
)

func main() {
	var (
		l        = flag.Int("L", 2, "number of express-ways")
		duration = flag.Int64("duration", 120, "virtual run length in seconds")
		rate     = flag.Float64("rate", 2000, "input rate in tuples/second")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	factories := make(map[plan.OpID]operator.Factory)
	for id, f := range lrb.Factories() {
		factories[id] = f
	}
	c, err := sim.NewCluster(sim.Config{
		Seed: *seed,
		Mode: sim.FTRSM,
		Pool: sim.PoolConfig{Size: 4},
	}, lrb.Query(), factories)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := lrb.NewGenerator(*l, *seed)
	if err := c.AddSource(plan.InstanceID{Op: "feeder", Part: 1}, sim.ConstantRate(*rate),
		func(uint64) (stream.Key, any) { return gen.Next() }); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	c.EnablePolicy(control.DefaultPolicy())
	c.RunUntil(*duration * 1000)

	fmt.Printf("Linear Road Benchmark: L=%d, %.0f tuples/s for %d virtual seconds\n", *l, *rate, *duration)
	fmt.Printf("  results delivered:  %d\n", c.SinkCount.Value())
	sum := c.Latency.Summarize()
	fmt.Printf("  latency:            %s\n", sum)
	verdict := "PASS"
	if sum.P99 > 5000 {
		verdict = "FAIL"
	}
	fmt.Printf("  5 s LRB bound:      %s (P99 = %d ms)\n", verdict, sum.P99)
	fmt.Println("  final allocation:")
	for _, op := range c.Manager().Query().Ops() {
		fmt.Printf("    %-12s %d instance(s)\n", op, c.Manager().Parallelism(op))
	}
	if recs := c.Recoveries(); len(recs) > 0 {
		fmt.Println("  scale-out events:")
		for _, r := range recs {
			fmt.Printf("    t=%5.1fs %s -> pi=%d (%d tuples replayed, %.1fs)\n",
				float64(r.StartedAt)/1000, r.Victim, r.Pi, r.ReplayedTuples, float64(r.Duration())/1000)
		}
	}
}
