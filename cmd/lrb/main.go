// Command lrb runs the Linear Road Benchmark query tuple-by-tuple on the
// simulated cluster with the dynamic scale-out policy enabled, printing
// throughput, allocation and the latency distribution against the 5 s
// LRB response-time bound.
//
// The query is a non-linear DAG (the assessment operator fans out to a
// collector and a balance account, which fan back into the sink), so
// every stream is declared with an explicit Connect — see
// internal/lrb.Topology.
//
// Usage:
//
//	lrb -L 2 -duration 120 -rate 2000
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"seep"
	"seep/internal/lrb"
)

func main() {
	var (
		l        = flag.Int("L", 2, "number of express-ways")
		duration = flag.Int64("duration", 120, "virtual run length in seconds")
		rate     = flag.Float64("rate", 2000, "input rate in tuples/second")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	topo, err := lrb.Topology()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	job, err := seep.Simulated(
		seep.WithSeed(*seed),
		seep.WithFTMode(seep.FTRSM),
		seep.WithVMPool(seep.PoolConfig{Size: 4}),
		seep.WithPolicy(seep.DefaultPolicy()),
	).Deploy(topo)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := lrb.NewGenerator(*l, *seed)
	if err := job.AddSource("feeder", seep.ConstantRate(*rate),
		func(uint64) (seep.Key, any) { k, r := gen.Next(); return k, r }); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	job.Start()
	job.Run(time.Duration(*duration) * time.Second)

	m := job.MetricsSnapshot()
	fmt.Printf("Linear Road Benchmark: L=%d, %.0f tuples/s for %d virtual seconds\n", *l, *rate, *duration)
	fmt.Printf("  results delivered:  %d\n", m.SinkTuples)
	fmt.Printf("  latency:            %s\n", m.Latency)
	verdict := "PASS"
	if m.Latency.P99 > 5000 {
		verdict = "FAIL"
	}
	fmt.Printf("  5 s LRB bound:      %s (P99 = %d ms)\n", verdict, m.Latency.P99)
	fmt.Println("  final allocation:")
	ops := make([]string, 0, len(m.Parallelism))
	for op := range m.Parallelism {
		ops = append(ops, string(op))
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Printf("    %-12s %d instance(s)\n", op, m.Parallelism[seep.OpID(op)])
	}
	if len(m.Recoveries) > 0 {
		fmt.Println("  scale-out events:")
		for _, r := range m.Recoveries {
			fmt.Printf("    t=%5.1fs %s -> pi=%d (%d tuples replayed, %.1fs)\n",
				float64(r.StartedAt)/1000, r.Victim, r.Pi, r.ReplayedTuples, float64(r.Duration())/1000)
		}
	}
}
