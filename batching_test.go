package seep_test

import (
	"sync"
	"testing"
	"time"

	"seep"
)

// batchingScenario runs one wordcount workload — first batch, crash the
// counter, automatic recovery, second batch — on the live runtime with
// the given batching option, and returns the final per-word counts, the
// number of sink tuples and whether the sink observed its tuples in
// strictly increasing timestamp order.
func batchingScenario(t *testing.T, opt seep.Option) (counts map[string]int64, sinks int, ordered bool) {
	t.Helper()
	job, err := seep.Live(
		opt,
		seep.WithCheckpointInterval(75*time.Millisecond),
		seep.WithDetectDelay(100*time.Millisecond),
	).Deploy(wordcountTopology())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	lastTS := int64(0)
	ordered = true
	job.OnSink(func(tp seep.Tuple) {
		mu.Lock()
		if tp.TS <= lastTS {
			ordered = false
		}
		lastTS = tp.TS
		sinks++
		mu.Unlock()
	})
	job.Start()
	defer job.Stop()

	if err := job.InjectBatch("src", 1500, parityGen); err != nil {
		t.Fatal(err)
	}
	job.Run(2 * time.Second)
	if err := job.Fail(job.Instances("count")[0]); err != nil {
		t.Fatal(err)
	}
	job.Run(3 * time.Second)
	if err := job.InjectBatch("src", 1500, parityGen); err != nil {
		t.Fatal(err)
	}
	job.Run(2 * time.Second)

	counter := job.OperatorOf(job.Instances("count")[0]).(*seep.WordCounter)
	counts = counter.Counts()
	mu.Lock()
	defer mu.Unlock()
	return counts, sinks, ordered
}

// TestBatchingParity runs the same failure-and-replay scenario with
// batching disabled (size 1) and enabled (size 128), and asserts the
// two paths are observably identical: the same exactly-once per-key
// state, the same sink tuple count, and in both cases a sink that saw
// its single upstream's timestamps in strictly increasing order —
// batching coalesces deliveries but never reorders, drops or duplicates
// them, including across a recovery replay.
func TestBatchingParity(t *testing.T) {
	unbatchedCounts, unbatchedSinks, unbatchedOrdered := batchingScenario(t, seep.WithBatching(1, time.Millisecond))
	batchedCounts, batchedSinks, batchedOrdered := batchingScenario(t, seep.WithBatching(128, 2*time.Millisecond))

	// 3000 tuples over a 10-word vocabulary: exactly 300 each, on both
	// paths — the recovery must not lose or double-count regardless of
	// batch framing.
	for _, tc := range []struct {
		name   string
		counts map[string]int64
	}{{"unbatched", unbatchedCounts}, {"batched", batchedCounts}} {
		if len(tc.counts) != 10 {
			t.Errorf("%s: distinct words = %d, want 10", tc.name, len(tc.counts))
		}
		for w, c := range tc.counts {
			if c != 300 {
				t.Errorf("%s: count[%s] = %d, want 300", tc.name, w, c)
			}
		}
	}
	if unbatchedSinks != batchedSinks {
		t.Errorf("sink tuples differ: unbatched %d, batched %d", unbatchedSinks, batchedSinks)
	}
	if !unbatchedOrdered {
		t.Error("unbatched sink observed out-of-order timestamps")
	}
	if !batchedOrdered {
		t.Error("batched sink observed out-of-order timestamps")
	}
}

// TestBatchingOptionValidation pins the option surface: invalid
// parameters are Deploy errors on the live runtime, and the Simulated
// runtime accepts the option as a documented no-op (virtual time has
// nothing to coalesce), rather than rejecting it as substrate-specific.
func TestBatchingOptionValidation(t *testing.T) {
	if _, err := seep.Live(seep.WithBatching(0, 0)).Deploy(wordcountTopology()); err == nil {
		t.Error("WithBatching(0, 0) accepted")
	}
	if _, err := seep.Live(seep.WithBatching(64, -time.Millisecond)).Deploy(wordcountTopology()); err == nil {
		t.Error("negative linger accepted")
	}
	// Zero would be silently coerced to the 10 ms engine default — the
	// options contract demands an error instead.
	if _, err := seep.Live(seep.WithBatching(64, 0)).Deploy(wordcountTopology()); err == nil {
		t.Error("zero linger accepted")
	}
	job, err := seep.Simulated(seep.WithSeed(1), seep.WithBatching(64, time.Millisecond)).Deploy(wordcountTopology())
	if err != nil {
		t.Fatalf("Simulated rejected WithBatching: %v", err)
	}
	if err := job.InjectBatch("src", 100, parityGen); err != nil {
		t.Fatal(err)
	}
	job.Start()
	job.Run(5 * time.Second)
	defer job.Stop()
	counter := job.OperatorOf(job.Instances("count")[0]).(*seep.WordCounter)
	var total int64
	for _, c := range counter.Counts() {
		total += c
	}
	if total != 100 {
		t.Errorf("sim total with batching option = %d, want 100", total)
	}
}
