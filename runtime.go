package seep

import (
	"fmt"
	"sync"
	"time"

	"seep/internal/controlplane"
	"seep/internal/core"
	"seep/internal/engine"
	"seep/internal/metrics"
	"seep/internal/sim"
	"seep/internal/transport"
)

// Runtime is a substrate that can deploy a Topology: the live engine
// (goroutines, channels, wall-clock time) or the simulated cluster
// (deterministic discrete events, virtual time). Both run the same
// operator code under the same state-management protocol, so scenarios
// written against Runtime/Job run unchanged on either.
type Runtime interface {
	// Name identifies the substrate ("live" or "sim").
	Name() string
	// Deploy instantiates the topology on this substrate. The topology
	// is built (validated) on demand; construction and option errors are
	// returned here.
	Deploy(t *Topology) (Job, error)
}

// Job is a deployed topology. The same interface is implemented by both
// runtimes; only the flow of time differs — Run sleeps wall-clock time
// on the live engine and advances the virtual clock on the simulator.
//
// Operators are addressed logically by OpID; partitioned instances by
// InstanceID (see Instances).
type Job interface {
	// Start begins execution. On the live engine it launches the node
	// goroutines, timers and checkpointing; the simulator deploys
	// eagerly, so Start only arms it.
	Start()
	// Stop terminates execution. Stopping a Job twice is undefined.
	Stop()
	// Run advances time by d — wall-clock on the live engine (returning
	// early once the dataflow settles and no recovery is pending),
	// virtual on the simulator — processing whatever the topology does
	// in that span: source emission, checkpoints, scaling, recoveries.
	Run(d time.Duration)
	// AddSource attaches a rate-profiled tuple generator to a source
	// operator (its first instance; sources are pinned).
	AddSource(op OpID, rate RateFunc, gen Generator) error
	// InjectBatch emits exactly count tuples from a source operator —
	// for scenarios needing exact tuple counts rather than rates. Call
	// Run afterwards to process them.
	InjectBatch(op OpID, count int, gen Generator) error
	// Fail crash-stops the VM hosting an instance; backups it hosted are
	// lost. The runtime detects the failure after the configured
	// detection delay (WithDetectDelay) and recovers the operator via
	// the integrated scale-out algorithm with the configured parallelism
	// (WithRecoveryParallelism).
	Fail(inst InstanceID) error
	// ScaleOut splits a live instance into pi partitioned instances
	// (Algorithm 3), partitioning its managed state by key range.
	ScaleOut(victim InstanceID, pi int) error
	// ScaleIn merges sibling partitions owning adjacent key ranges back
	// into one instance (§3.3 merge), the inverse of ScaleOut: the
	// victims stop, their final checkpoints merge, upstream buffers
	// repartition and replay exactly-once. Policy-driven merges use the
	// same path (WithScaleIn).
	ScaleIn(victims []InstanceID) error
	// Instances returns the live partitioned instances of an operator.
	Instances(op OpID) []InstanceID
	// OperatorOf returns the operator object hosted by an instance, so
	// callers can inspect managed state (nil if unknown or source/sink).
	OperatorOf(inst InstanceID) any
	// OnSink registers an observer for every tuple arriving at a sink.
	// Call before Start.
	OnSink(fn func(t Tuple))
	// MetricsSnapshot returns a point-in-time view of the job's
	// externally observable behaviour.
	MetricsSnapshot() Metrics
}

// LinkFaulter is an optional Job capability for link-level chaos: a Job
// that also implements it can degrade or sever the links carrying
// tuples toward an operator's instances. The scenario runner
// (internal/scenario) type-asserts for it when executing `slow-link`
// and `partition-link` events.
//
//   - Live implements SlowLink (per-hop delay inside the engine) but
//     returns an error from PartitionLink: in-process channels cannot
//     lose data, so a partition is unrepresentable there.
//   - Distributed implements both at the transport layer: SlowLink
//     delays every frame toward the workers hosting the operator;
//     PartitionLink black-holes them, which starves the coordinator's
//     heartbeat probes and drives the ordinary failure-detection and
//     recovery path — a partition behaves exactly like a crashed VM.
//   - Simulated does not implement the interface (virtual time has no
//     links to fault).
//
// HealLinks removes every fault this job armed; Stop heals implicitly.
type LinkFaulter interface {
	// SlowLink adds delay to every delivery toward op's instances.
	SlowLink(op OpID, delay time.Duration) error
	// PartitionLink black-holes every delivery toward op's instances.
	PartitionLink(op OpID) error
	// HealLinks removes all link faults armed through this job.
	HealLinks()
}

// CoordinatorFaulter is an optional Job capability for control-plane
// chaos: a Job that also implements it can crash-stop and restart its
// coordinator while the data path keeps streaming. The scenario runner
// (internal/scenario) type-asserts for it when executing
// `kill-coordinator` and `restart-coordinator` events.
//
//   - Distributed implements it when deployed with WithControlPlaneDir:
//     KillCoordinator models kill -9 (no goodbye to workers — they go
//     orphan on heartbeat loss and buffer checkpoint ships locally);
//     RestartCoordinator replays the journal into a fresh coordinator on
//     the dead one's address, reattaches the still-running workers via
//     the MsgResume/MsgReattach handshake, and rolls back any journaled
//     transition caught without a commit record.
//   - Live and Simulated do not implement the interface: their
//     control plane lives and dies with the process.
type CoordinatorFaulter interface {
	// KillCoordinator crash-stops the coordinator. Workers keep
	// streaming; an error means the job has no durable control plane to
	// restart from (deploy with WithControlPlaneDir).
	KillCoordinator() error
	// RestartCoordinator rebuilds the coordinator from its journal and
	// reattaches the workers. Blocks until reconciliation completes
	// (queued rollback recoveries may still be draining).
	RestartCoordinator() error
}

// Measurement types shared by both runtimes.
type (
	// Summary is a latency-distribution snapshot (count, mean, tail
	// percentiles) in milliseconds.
	Summary = metrics.Summary
	// RecoveryRecord documents one completed recovery or scale out.
	RecoveryRecord = sim.RecoveryRecord
	// CheckpointStats tallies full and incremental checkpoint traffic
	// into the backup store (counts and serialised bytes).
	CheckpointStats = core.ShipStats
	// TransportStats tallies network activity — bytes and frames in both
	// directions, reconnects, heartbeat misses, corrupt frames. Always
	// zero on the in-process runtimes.
	TransportStats = transport.Stats
	// BackpressureStats tallies the credit-based flow control and state
	// spilling: per-edge queue depth and credit-stall gauges plus
	// spill/load counters from memory-limited stores. Zero on the
	// Simulated runtime (virtual time has no queues to bound).
	BackpressureStats = engine.BackpressureStats
	// ControlPlaneStats tallies the Distributed coordinator's durable
	// control plane: journal appends and bytes, fsync latency, rotations,
	// and — after a coordinator restart — replay size/duration, how many
	// workers reattached and the failover wall-clock. Always zero without
	// WithControlPlaneDir.
	ControlPlaneStats = controlplane.Stats
)

// Metrics is a point-in-time snapshot of a Job, identical in shape on
// both substrates. Times are milliseconds since Start — wall-clock for
// the live engine, virtual for the simulator.
type Metrics struct {
	// ElapsedMillis is the job's running time.
	ElapsedMillis int64
	// SinkTuples counts tuples delivered to sinks.
	SinkTuples uint64
	// DuplicatesDropped counts replayed tuples discarded by duplicate
	// detection.
	DuplicatesDropped uint64
	// Latency summarises sink-observed end-to-end latency.
	Latency Summary
	// Parallelism maps each logical operator to its current number of
	// partitioned instances.
	Parallelism map[OpID]int
	// Recoveries lists completed recoveries, scale outs and merges
	// (Merge records), oldest first.
	Recoveries []RecoveryRecord
	// Merges counts completed scale-in merges.
	Merges uint64
	// Checkpoints tallies checkpoint traffic to the backup store; with
	// WithIncrementalCheckpoints, Deltas/DeltaBytes show how much
	// shipping shrank versus full snapshots.
	Checkpoints CheckpointStats
	// Transport tallies the Distributed runtime's network activity
	// across the coordinator and all workers (zero on Live/Simulated).
	Transport TransportStats
	// Backpressure tallies credit stalls, queue depths and state-spill
	// activity (WithQueueBound / WithMemoryLimit); aggregated across all
	// workers on the Distributed runtime.
	Backpressure BackpressureStats
	// OrphanCheckpointsDropped counts checkpoint ships a Distributed
	// worker evicted from its bounded orphan-mode buffer while its
	// coordinator was dead (always zero elsewhere).
	OrphanCheckpointsDropped uint64
	// ControlPlane tallies the Distributed coordinator's journal and
	// failover activity (zero without WithControlPlaneDir).
	ControlPlane ControlPlaneStats
	// Errors lists asynchronous operations that failed — an automatic
	// recovery that could not complete, for example. Empty on a healthy
	// job; never silently dropped.
	Errors []string
}

const (
	defaultLiveCheckpoint = 500 * time.Millisecond
	defaultDetectDelay    = 500 * time.Millisecond
)

// Live returns the live-engine runtime: operator instances run as
// goroutines connected by channels under wall-clock time, with periodic
// checkpointing (default every 500 ms; WithCheckpointInterval(0)
// disables), live scale out and failure recovery.
func Live(opts ...Option) Runtime { return &liveRuntime{cfg: buildConfig(opts)} }

// Simulated returns the simulated-cluster runtime that substitutes for
// the paper's EC2 deployment: a deterministic discrete-event simulation
// with a VM model, CPU-cost accounting, a pre-allocated VM pool,
// failure injection and virtual time. Fault tolerance defaults to the
// paper's recovery with state management (FTRSM).
func Simulated(opts ...Option) Runtime { return &simRuntime{cfg: buildConfig(opts)} }

// liveRuntime deploys onto the live engine.
type liveRuntime struct{ cfg *runtimeConfig }

func (r *liveRuntime) Name() string { return "live" }

func (r *liveRuntime) Deploy(t *Topology) (Job, error) {
	if err := r.cfg.checkSubstrate("live"); err != nil {
		return nil, err
	}
	if err := r.cfg.validate(); err != nil {
		return nil, err
	}
	q, factories, err := t.built()
	if err != nil {
		return nil, err
	}
	checkpoint := defaultLiveCheckpoint
	if r.cfg.checkpointSet {
		checkpoint = r.cfg.checkpoint
	}
	eng, err := engine.New(engine.Config{
		CheckpointInterval: checkpoint,
		TimerInterval:      r.cfg.timer,
		ChannelBuffer:      r.cfg.channelBuffer,
		BatchSize:          r.cfg.batchSize,
		BatchLinger:        r.cfg.batchLinger,
		QueueBound:         r.cfg.queueBound,
		MemoryLimit:        r.cfg.memoryLimit,
		Delta:              r.cfg.delta,
	}, q, factories)
	if err != nil {
		return nil, err
	}
	if r.cfg.policy != nil {
		eng.EnablePolicy(*r.cfg.policy, nil)
		if r.cfg.scaleIn != nil {
			eng.EnableScaleIn(*r.cfg.scaleIn)
		}
	}
	j := &liveJob{
		eng:        eng,
		detect:     defaultDetectDelay,
		recoveryPi: 1,
		stop:       make(chan struct{}),
	}
	if r.cfg.detect > 0 {
		j.detect = r.cfg.detect
	}
	if r.cfg.recoveryPi > 0 {
		j.recoveryPi = r.cfg.recoveryPi
	}
	return j, nil
}

// liveJob adapts the live engine to the Job interface and adds the
// failure-detection/recovery loop the bare engine leaves to callers.
type liveJob struct {
	eng        *engine.Engine
	detect     time.Duration
	recoveryPi int
	stop       chan struct{}

	mu      sync.Mutex
	pending int // in-flight automatic recoveries
	errs    []string
}

func (j *liveJob) Start() { j.eng.Start() }

func (j *liveJob) Stop() {
	close(j.stop)
	// Let in-flight recoveries finish or abort before tearing the
	// engine down.
	deadline := time.Now().Add(5 * time.Second)
	for j.pendingRecoveries() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	j.eng.Stop()
}

func (j *liveJob) pendingRecoveries() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pending
}

func (j *liveJob) Run(d time.Duration) {
	deadline := time.Now().Add(d)
	for j.pendingRecoveries() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	rem := time.Until(deadline)
	// Recoveries consumed the span: still give replay a moment to
	// settle so post-Run assertions see restored state.
	if rem < 250*time.Millisecond {
		rem = 250 * time.Millisecond
	}
	j.eng.Quiesce(50*time.Millisecond, rem)
}

func (j *liveJob) AddSource(op OpID, rate RateFunc, gen Generator) error {
	inst, err := j.sourceInstance(op)
	if err != nil {
		return err
	}
	return j.eng.AddSourceFunc(inst, rate, gen)
}

func (j *liveJob) InjectBatch(op OpID, count int, gen Generator) error {
	inst, err := j.sourceInstance(op)
	if err != nil {
		return err
	}
	return j.eng.InjectBatch(inst, count, gen)
}

func (j *liveJob) sourceInstance(op OpID) (InstanceID, error) {
	insts := j.eng.Manager().Instances(op)
	if len(insts) == 0 {
		return InstanceID{}, fmt.Errorf("seep: no instances of operator %q", op)
	}
	return insts[0], nil
}

func (j *liveJob) Fail(inst InstanceID) error {
	if err := j.eng.Fail(inst); err != nil {
		return err
	}
	j.mu.Lock()
	j.pending++
	j.mu.Unlock()
	go func() {
		defer func() {
			j.mu.Lock()
			j.pending--
			j.mu.Unlock()
		}()
		detect := time.NewTimer(j.detect)
		defer detect.Stop()
		select {
		case <-detect.C:
		case <-j.stop:
			return
		}
		if err := j.eng.Recover(inst, j.recoveryPi); err != nil {
			j.mu.Lock()
			j.errs = append(j.errs, fmt.Sprintf("recover %s (pi=%d): %v", inst, j.recoveryPi, err))
			j.mu.Unlock()
		}
	}()
	return nil
}

// SlowLink delays every delivery toward op's instances inside the
// engine (the live runtime has no wire to fault).
func (j *liveJob) SlowLink(op OpID, delay time.Duration) error {
	if len(j.eng.Manager().Instances(op)) == 0 {
		return fmt.Errorf("seep: no instances of operator %q", op)
	}
	j.eng.InjectLinkDelay(op, delay)
	return nil
}

// PartitionLink is unrepresentable on the live runtime: in-process
// channels never lose data, so a partition would be a silent no-op.
func (j *liveJob) PartitionLink(op OpID) error {
	return fmt.Errorf("seep: partition-link is not supported by the Live runtime (supported on: Distributed) — in-process channels cannot drop frames; use slow-link or Fail")
}

func (j *liveJob) HealLinks() { j.eng.ClearLinkFaults() }

func (j *liveJob) ScaleOut(victim InstanceID, pi int) error {
	return j.eng.ScaleOut(victim, pi)
}

func (j *liveJob) ScaleIn(victims []InstanceID) error {
	return j.eng.MergeInstances(victims)
}

func (j *liveJob) Instances(op OpID) []InstanceID { return j.eng.Manager().Instances(op) }

func (j *liveJob) OperatorOf(inst InstanceID) any { return j.eng.OperatorOf(inst) }

func (j *liveJob) OnSink(fn func(t Tuple)) { j.eng.OnSink = fn }

func (j *liveJob) MetricsSnapshot() Metrics {
	j.mu.Lock()
	errs := make([]string, len(j.errs))
	copy(errs, j.errs)
	j.mu.Unlock()
	// The engine records every replace itself — including scale-outs
	// triggered by the scaling policy — so nothing is missed here.
	engRecs := j.eng.Recoveries()
	recs := make([]RecoveryRecord, len(engRecs))
	for i, r := range engRecs {
		recs[i] = RecoveryRecord{
			Victim:         r.Victim,
			Pi:             r.Pi,
			Failure:        r.Failure,
			StartedAt:      r.StartedAt,
			CompletedAt:    r.CompletedAt,
			ReplayedTuples: r.ReplayedTuples,
			Merge:          r.Merge,
		}
	}
	return Metrics{
		ElapsedMillis:     j.eng.NowMillis(),
		SinkTuples:        j.eng.SinkCount.Value(),
		DuplicatesDropped: j.eng.DupDropped.Value(),
		Latency:           j.eng.Latency.Summarize(),
		Parallelism:       parallelismOf(j.eng.Manager().Query(), func(op OpID) int { return j.eng.Manager().Parallelism(op) }),
		Recoveries:        recs,
		Merges:            j.eng.Merges(),
		Checkpoints:       j.eng.Manager().Backups().ShipStats(),
		Backpressure:      j.eng.BackpressureSnapshot(),
		Errors:            errs,
	}
}

// simRuntime deploys onto the simulated cluster.
type simRuntime struct{ cfg *runtimeConfig }

func (r *simRuntime) Name() string { return "sim" }

func (r *simRuntime) Deploy(t *Topology) (Job, error) {
	if err := r.cfg.checkSubstrate("sim"); err != nil {
		return nil, err
	}
	if err := r.cfg.validate(); err != nil {
		return nil, err
	}
	// On the live engine 0 disables checkpointing; the simulator has no
	// such setting (disable via WithFTMode(FTNone)), so an explicit 0
	// must not silently coerce to the 5 s simulator default.
	if r.cfg.checkpointSet && r.cfg.checkpoint == 0 {
		return nil, fmt.Errorf("seep: WithCheckpointInterval(0) is not supported by the Simulated runtime; use WithFTMode(FTNone) to disable checkpointing")
	}
	q, factories, err := t.built()
	if err != nil {
		return nil, err
	}
	mode := FTRSM
	if r.cfg.ftModeSet {
		mode = r.cfg.ftMode
	}
	// Incremental checkpoints are part of the R+SM protocol; under the
	// baselines there are no checkpoints to make incremental, so the
	// combination is an error, never a silent no-op.
	if r.cfg.deltaSet && mode != FTRSM {
		return nil, fmt.Errorf("seep: WithIncrementalCheckpoints requires FTRSM (got %v)", mode)
	}
	cfg := sim.Config{
		Seed:                     r.cfg.seed,
		Mode:                     mode,
		CheckpointIntervalMillis: r.cfg.checkpoint.Milliseconds(),
		WindowMillis:             r.cfg.window.Milliseconds(),
		NetDelayMillis:           r.cfg.netDelay.Milliseconds(),
		TimerMillis:              r.cfg.timer.Milliseconds(),
		DetectDelayMillis:        r.cfg.detect.Milliseconds(),
		VMCapacity:               r.cfg.vmCapacity,
		RecoveryParallelism:      r.cfg.recoveryPi,
		Delta:                    r.cfg.delta,
	}
	if r.cfg.pool != nil {
		cfg.Pool = *r.cfg.pool
	}
	c, err := sim.NewCluster(cfg, q, factories)
	if err != nil {
		return nil, err
	}
	if r.cfg.policy != nil {
		c.EnablePolicy(*r.cfg.policy)
		if r.cfg.scaleIn != nil {
			c.EnableElasticity(*r.cfg.scaleIn)
		}
	}
	return &simJob{c: c}, nil
}

// simJob adapts the simulated cluster to the Job interface.
type simJob struct{ c *sim.Cluster }

// Start is a no-op: the simulated cluster deploys eagerly and executes
// as virtual time advances (Run).
func (j *simJob) Start() {}

// Stop halts the simulation kernel; subsequent Run calls do nothing.
func (j *simJob) Stop() { j.c.Sim().Halt() }

func (j *simJob) Run(d time.Duration) {
	j.c.RunUntil(j.c.Sim().Now() + d.Milliseconds())
}

func (j *simJob) AddSource(op OpID, rate RateFunc, gen Generator) error {
	inst, err := j.sourceInstance(op)
	if err != nil {
		return err
	}
	return j.c.AddSource(inst, rate, gen)
}

func (j *simJob) InjectBatch(op OpID, count int, gen Generator) error {
	inst, err := j.sourceInstance(op)
	if err != nil {
		return err
	}
	return j.c.InjectBatch(inst, count, gen)
}

func (j *simJob) sourceInstance(op OpID) (InstanceID, error) {
	insts := j.c.Manager().Instances(op)
	if len(insts) == 0 {
		return InstanceID{}, fmt.Errorf("seep: no instances of operator %q", op)
	}
	return insts[0], nil
}

func (j *simJob) Fail(inst InstanceID) error { return j.c.FailInstance(inst) }

func (j *simJob) ScaleOut(victim InstanceID, pi int) error { return j.c.ScaleOut(victim, pi) }

func (j *simJob) ScaleIn(victims []InstanceID) error { return j.c.ScaleIn(victims) }

func (j *simJob) Instances(op OpID) []InstanceID { return j.c.LiveInstances(op) }

func (j *simJob) OperatorOf(inst InstanceID) any {
	if op := j.c.OperatorOf(inst); op != nil {
		return op
	}
	return nil
}

func (j *simJob) OnSink(fn func(t Tuple)) { j.c.OnSink = fn }

func (j *simJob) MetricsSnapshot() Metrics {
	return Metrics{
		ElapsedMillis:     j.c.Sim().Now(),
		SinkTuples:        j.c.SinkCount.Value(),
		DuplicatesDropped: j.c.DuplicatesDropped(),
		Latency:           j.c.Latency.Summarize(),
		Parallelism:       parallelismOf(j.c.Manager().Query(), func(op OpID) int { return j.c.Manager().Parallelism(op) }),
		Recoveries:        j.c.Recoveries(),
		Merges:            j.c.Merges(),
		Checkpoints:       j.c.Manager().Backups().ShipStats(),
		Errors:            j.c.RecoveryFailures(),
	}
}

func parallelismOf(q *Query, parallelism func(OpID) int) map[OpID]int {
	out := make(map[OpID]int, len(q.Ops()))
	for _, op := range q.Ops() {
		out[op] = parallelism(op)
	}
	return out
}
