// Package seep is a stream processing system with explicit operator
// state management, reproducing Fernandez, Migliavacca, Kalyvianaki and
// Pietzuch, "Integrating Scale Out and Fault Tolerance in Stream
// Processing using Operator State Management" (SIGMOD 2013).
//
// The key idea is to externalise operator state — processing state,
// buffer state and routing state — behind a small set of management
// primitives (checkpoint, backup, restore, partition), and to drive both
// dynamic scale out of bottleneck operators and failure recovery through
// one integrated algorithm: recovery is scale out with parallelism 1,
// and parallel recovery is scale out of a failed operator.
//
// This package is the public facade. A query is declared once with the
// fluent Topology builder, which binds the operator graph and the
// operator factories together and validates the whole declaration at
// Build time:
//
//	topo, err := seep.NewTopology().
//		Source("src").
//		Stateless("split", func() seep.Operator { return seep.WordSplitter() }).
//		Stateful("count", func() seep.Operator { return seep.NewWordCounter(0) }).
//		Sink("sink").
//		Build()
//
// User operators implement Operator; stateful operators declare typed
// managed state cells (NewValueState / NewMapState) against a
// system-owned StateStore and expose it via Managed, so the system
// checkpoints — fully or incrementally — backs up, partitions and
// restores their state without operator code. (The hand-rolled
// SnapshotKV/RestoreKV contract, Stateful, is deprecated but still
// deploys.)
//
// Three substrates execute topologies behind one Runtime/Job interface,
// so scenarios are written once and run on any:
//
//   - seep.Live(...): a live runtime of goroutines and channels with
//     wall-clock checkpointing, live scale out and failure recovery.
//   - seep.Simulated(...): a deterministic discrete-event cluster
//     simulation with a VM model, a pre-allocated VM pool that masks
//     IaaS provisioning delays, CPU-cost accounting, failure injection
//     and the bottleneck-driven scaling policy of the paper — the
//     substrate used to reproduce the paper's experiments.
//   - seep.Distributed(...): a coordinator plus worker hosts exchanging
//     tuple batches over TCP, with heartbeat failure detection and
//     recovery/scale-out over the wire — in-process loopback workers
//     for development, cmd/seep-worker daemons for real deployments
//     (see the README's Deployment section).
//
// Elasticity is symmetric on every substrate: bottleneck operators
// split (Job.ScaleOut, or WithPolicy), and under-used partitions merge
// back (Job.ScaleIn, or WithScaleIn) with their key-range state joined
// through the same checkpoint primitives, so long-running jobs shrink
// with their load instead of only growing.
//
// Both are configured with functional options:
//
//	job, err := seep.Live(seep.WithCheckpointInterval(200 * time.Millisecond)).Deploy(topo)
//	job, err := seep.Simulated(seep.WithFTMode(seep.FTRSM), seep.WithSeed(42)).Deploy(topo)
//
// See README.md for a quickstart and the migration table from the
// pre-Topology API (NewQuery / NewEngine / NewSimCluster), which is
// retained as deprecated wrappers.
package seep

import (
	"seep/internal/control"
	"seep/internal/core"
	"seep/internal/engine"
	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/sim"
	"seep/internal/state"
	"seep/internal/stream"
)

// Data model (§2.2).
type (
	// Key partitions tuples and indexes processing state.
	Key = stream.Key
	// Tuple is the unit of data: logical timestamp, key, payload.
	Tuple = stream.Tuple
	// TSVector tracks per-input-stream progress.
	TSVector = stream.TSVector
)

// KeyOf hashes bytes into the key space.
func KeyOf(b []byte) Key { return stream.KeyOf(b) }

// KeyOfString hashes a string into the key space.
func KeyOfString(s string) Key { return stream.KeyOfString(s) }

// Query model (§2.2).
type (
	// Query is a logical dataflow graph.
	Query = plan.Query
	// OpSpec declares one logical operator.
	OpSpec = plan.OpSpec
	// OpID names a logical operator.
	OpID = plan.OpID
	// InstanceID names one partitioned instance of an operator.
	InstanceID = plan.InstanceID
)

// Operator roles.
const (
	RoleSource    = plan.RoleSource
	RoleSink      = plan.RoleSink
	RoleStateless = plan.RoleStateless
	RoleStateful  = plan.RoleStateful
)

// NewQuery returns an empty query graph.
//
// Deprecated: declare queries with NewTopology, which binds the graph
// and the operator factories together and validates both at Build time.
func NewQuery() *Query { return plan.NewQuery() }

// Operator model (§2.2, §3.1).
type (
	// Operator processes tuples.
	Operator = operator.Operator
	// Managed operators keep their state in a system-owned StateStore:
	// typed cells declared at construction, mutated only through the
	// store, checkpointed/partitioned/restored — fully or incrementally
	// — without operator involvement.
	Managed = operator.Managed
	// Stateful operators hand-implement snapshot/restore over key/value
	// pairs.
	//
	// Deprecated: implement Managed instead (see StateStore, ValueState,
	// MapState); Stateful operators still deploy but never benefit from
	// incremental checkpoints.
	Stateful = operator.Stateful
	// TimeDriven operators react to the passage of time (windows).
	TimeDriven = operator.TimeDriven
	// Context is per-invocation metadata.
	Context = operator.Context
	// Emitter sends output tuples.
	Emitter = operator.Emitter
	// Factory builds operator instances, one per partition.
	Factory = operator.Factory
	// OpFunc adapts a function to Operator.
	OpFunc = operator.Func
)

// Managed keyed state (§3.1/§3.2): the system-owned replacement for
// Stateful.
type (
	// StateStore holds the managed keyed state of one operator instance
	// and owns locking, serialisation, snapshots, restore and dirty-key
	// tracking.
	StateStore = state.Store
	// ValueState is a keyed cell holding one T per tuple key.
	ValueState[T any] = state.Value[T]
	// MapState is a keyed cell holding a string-indexed map of T per
	// tuple key.
	MapState[T any] = state.Map[T]
	// StateCodec serialises cell values; gob is the default, JSON and
	// fixed-width numeric codecs are provided.
	StateCodec[T any] = state.Codec[T]
	// GobCodec is the default cell codec (encoding/gob).
	GobCodec[T any] = state.GobCodec[T]
	// JSONCodec serialises cells as JSON (deterministic for maps).
	JSONCodec[T any] = state.JSONCodec[T]
	// CodecFunc adapts an encode/decode function pair to StateCodec.
	CodecFunc[T any] = state.CodecFunc[T]
	// Int64Codec is a compact fixed-width codec for int64 cells.
	Int64Codec = state.Int64Codec
	// Float64Codec is a compact fixed-width codec for float64 cells.
	Float64Codec = state.Float64Codec
	// StringCodec stores string cells as raw bytes.
	StringCodec = state.StringCodec
)

// NewStateStore returns an empty managed state store. Operators create
// one in their constructor, register cells against it and return it from
// their State method (the Managed interface).
func NewStateStore() *StateStore { return state.NewStore() }

// NewValueState registers a one-value-per-key cell with the store. A nil
// codec defaults to gob.
func NewValueState[T any](s *StateStore, name string, codec StateCodec[T]) *ValueState[T] {
	return state.NewValue[T](s, name, codec)
}

// NewMapState registers a map-per-key cell with the store. A nil codec
// defaults to gob.
func NewMapState[T any](s *StateStore, name string, codec StateCodec[T]) *MapState[T] {
	return state.NewMap[T](s, name, codec)
}

// Operator library.
var (
	// Map applies a function to each tuple (drop with ok=false).
	Map = operator.Map
	// Filter forwards tuples satisfying a predicate.
	Filter = operator.Filter
	// Passthrough forwards tuples unchanged.
	Passthrough = operator.Passthrough
	// WordSplitter tokenises text payloads into keyed words.
	WordSplitter = operator.WordSplitter
)

// Stateful operator library.
type (
	// WordCounter is a (windowed) word frequency counter.
	WordCounter = operator.WordCounter
	// WordCount is WordCounter's output payload.
	WordCount = operator.WordCount
	// KeyedSum is a per-key sum aggregator.
	KeyedSum = operator.KeyedSum
	// TopKReducer ranks items by frequency.
	TopKReducer = operator.TopKReducer
	// TopKMerger merges partial rankings.
	TopKMerger = operator.TopKMerger
	// Ranking is the top-k output payload.
	Ranking = operator.Ranking
	// WindowJoin is a symmetric windowed equi-join.
	WindowJoin = operator.WindowJoin
)

// NewWordCounter returns a word frequency counter (windowMillis 0 =
// continuous).
func NewWordCounter(windowMillis int64) *WordCounter {
	return operator.NewWordCounter(windowMillis)
}

// NewKeyedSum returns a per-key sum aggregator.
func NewKeyedSum(windowMillis int64, extract func(any) (float64, bool)) *KeyedSum {
	return operator.NewKeyedSum(windowMillis, extract)
}

// NewTopKReducer returns a top-k frequency reducer.
func NewTopKReducer(k int, emitEveryMillis int64) *TopKReducer {
	return operator.NewTopKReducer(k, emitEveryMillis)
}

// NewTopKMerger returns a merger of partial rankings.
func NewTopKMerger(k int) *TopKMerger { return operator.NewTopKMerger(k) }

// NewWindowJoin returns a windowed equi-join over two input streams.
func NewWindowJoin(windowMillis int64, encode func(any) []byte, decode func([]byte) any) *WindowJoin {
	return operator.NewWindowJoin(windowMillis, encode, decode)
}

// State management (§3).
type (
	// Checkpoint is the externalised state of one operator instance.
	Checkpoint = state.Checkpoint
	// Processing is the key/value processing state θ.
	Processing = state.Processing
	// Routing maps key ranges to partitioned instances.
	Routing = state.Routing
	// KeyRange is a closed interval of the key space.
	KeyRange = state.KeyRange
)

// Live runtime.
type (
	// Engine runs a query on goroutines and channels.
	Engine = engine.Engine
	// EngineConfig parameterises the engine.
	EngineConfig = engine.Config
	// UtilSampler feeds the engine's scaling policy (nil = backpressure).
	UtilSampler = engine.UtilSampler
)

// NewEngine builds a live engine for a query.
//
// Deprecated: use Live(options...).Deploy(topology), which runs the same
// engine behind the runtime-agnostic Job interface.
func NewEngine(cfg EngineConfig, q *Query, factories map[OpID]Factory) (*Engine, error) {
	return engine.New(cfg, q, factories)
}

// Simulated cluster runtime (the EC2 substitute).
type (
	// Cluster is a simulated cloud deployment.
	Cluster = sim.Cluster
	// ClusterConfig parameterises the simulation.
	ClusterConfig = sim.Config
	// PoolConfig parameterises the VM pool (§5.2).
	PoolConfig = sim.PoolConfig
	// FTMode selects the fault tolerance mechanism.
	FTMode = sim.FTMode
	// Generator produces source tuples.
	Generator = sim.Generator
	// RateFunc is a time-varying source rate.
	RateFunc = sim.RateFunc
)

// Fault tolerance mechanisms (§6.2).
const (
	FTNone           = sim.FTNone
	FTRSM            = sim.FTRSM
	FTUpstreamBackup = sim.FTUpstreamBackup
	FTSourceReplay   = sim.FTSourceReplay
)

// NewSimCluster deploys a query on the simulated cluster.
//
// Deprecated: use Simulated(options...).Deploy(topology), which runs the
// same cluster behind the runtime-agnostic Job interface.
func NewSimCluster(cfg ClusterConfig, q *Query, factories map[OpID]Factory) (*Cluster, error) {
	return sim.NewCluster(cfg, q, factories)
}

// ConstantRate is a fixed tuples/second source profile.
func ConstantRate(tps float64) RateFunc { return sim.ConstantRate(tps) }

// Scaling policy (§5.1) and elastic scale in (§8 future work).
type (
	// Policy holds δ, k and r.
	Policy = control.Policy
	// Detector is the bottleneck detector.
	Detector = control.Detector
	// ScaleInPolicy holds the low-watermark merge policy.
	ScaleInPolicy = control.ScaleInPolicy
)

// DefaultPolicy returns the paper's empirically chosen policy
// (δ=70%, k=2, r=5 s).
func DefaultPolicy() Policy { return control.DefaultPolicy() }

// DefaultScaleInPolicy returns conservative scale-in defaults
// (low watermark 25%, k=3).
func DefaultScaleInPolicy() ScaleInPolicy { return control.DefaultScaleInPolicy() }

// Durable checkpoint persistence (§3.3 persist).
type (
	// DurableStore persists checkpoints to disk alongside the in-memory
	// backup store.
	DurableStore = core.DurableStore
	// PayloadCodec serialises tuple payloads in persisted checkpoints.
	PayloadCodec = state.PayloadCodec
	// StringPayloadCodec handles string payloads.
	StringPayloadCodec = state.StringPayloadCodec
)

// NewDurableStore opens (or creates) a checkpoint directory.
func NewDurableStore(dir string, codec PayloadCodec) (*DurableStore, error) {
	return core.NewDurableStore(dir, codec)
}
