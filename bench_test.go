// Benchmark harness: one benchmark per figure of the paper's evaluation
// (§6, Figs. 6-15) plus the design-choice ablations of DESIGN.md and
// micro-benchmarks of the state-management primitives.
//
// Figure benchmarks execute the corresponding experiment at reduced
// (quick) scale per iteration and report key outcomes as custom metrics
// (recovery seconds, VMs, latency) so regressions in experiment shape
// show up in benchmark output. Run paper-scale experiments with
// cmd/seep-bench instead.
package seep_test

import (
	"fmt"
	"testing"
	"time"

	"seep"

	"seep/internal/core"
	"seep/internal/engine"
	"seep/internal/experiments"
	"seep/internal/metrics"
	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
	"seep/internal/transport"
)

func runExperiment(b *testing.B, name string) *experiments.Table {
	b.Helper()
	var tb *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tb, err = experiments.Run(name, experiments.Scale{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	return tb
}

func BenchmarkFig6ScaleOutLRB(b *testing.B)         { runExperiment(b, "fig6") }
func BenchmarkFig7LatencyLRB(b *testing.B)          { runExperiment(b, "fig7") }
func BenchmarkFig8OpenLoopTopK(b *testing.B)        { runExperiment(b, "fig8") }
func BenchmarkFig9ThresholdSweep(b *testing.B)      { runExperiment(b, "fig9") }
func BenchmarkFig10ManualVsDynamic(b *testing.B)    { runExperiment(b, "fig10") }
func BenchmarkFig11RecoveryMechanisms(b *testing.B) { runExperiment(b, "fig11") }
func BenchmarkFig12CheckpointInterval(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkFig13ParallelRecovery(b *testing.B)   { runExperiment(b, "fig13") }
func BenchmarkFig14CheckpointOverhead(b *testing.B) { runExperiment(b, "fig14") }
func BenchmarkFig15LatencyRecoveryTradeoff(b *testing.B) {
	runExperiment(b, "fig15")
}

func BenchmarkAblationBackupPlacement(b *testing.B) { runExperiment(b, "ablation-backup-placement") }
func BenchmarkAblationVMPool(b *testing.B)          { runExperiment(b, "ablation-vm-pool") }
func BenchmarkAblationIncrementalCheckpoint(b *testing.B) {
	runExperiment(b, "ablation-incremental-checkpoint")
}
func BenchmarkAblationKeySplit(b *testing.B) { runExperiment(b, "ablation-key-split") }

// BenchmarkEnginePipeline is the end-to-end throughput anchor of the
// live engine: a source→map→keyed-sum→sink pipeline with checkpointing
// active, driven to completion for b.N tuples, batched versus unbatched
// (batch=1 is the per-tuple data path the engine had before
// micro-batching). ns/op is per tuple; tuples/s and allocs/op are the
// headline numbers recorded in BENCH_pipeline.json and the README's
// Performance section.
func BenchmarkEnginePipeline(b *testing.B) {
	build := func(batch int) (*engine.Engine, plan.InstanceID) {
		q := plan.NewQuery()
		q.AddOp(plan.OpSpec{ID: "src", Role: plan.RoleSource})
		q.AddOp(plan.OpSpec{ID: "map", Role: plan.RoleStateless})
		q.AddOp(plan.OpSpec{ID: "sum", Role: plan.RoleStateful})
		q.AddOp(plan.OpSpec{ID: "sink", Role: plan.RoleSink})
		q.Connect("src", "map")
		q.Connect("map", "sum")
		q.Connect("sum", "sink")
		factories := map[plan.OpID]operator.Factory{
			"map": func() operator.Operator { return operator.Passthrough() },
			"sum": func() operator.Operator {
				return operator.NewKeyedSum(0, func(p any) (float64, bool) {
					v, ok := p.(float64)
					return v, ok
				})
			},
		}
		e, err := engine.New(engine.Config{
			CheckpointInterval: 100 * time.Millisecond,
			BatchSize:          batch,
		}, q, factories)
		if err != nil {
			b.Fatal(err)
		}
		return e, plan.InstanceID{Op: "src", Part: 1}
	}
	// One boxed payload shared by every tuple, so the benchmark measures
	// the data path, not interface boxing in the generator.
	one := any(float64(1))
	gen := func(i uint64) (stream.Key, any) {
		return stream.Key(stream.Mix64(i % 1024)), one
	}
	for _, batch := range []int{1, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			e, src := build(batch)
			e.Start()
			defer e.Stop()
			b.ReportAllocs()
			b.ResetTimer()
			if err := e.InjectBatch(src, b.N, gen); err != nil {
				b.Fatal(err)
			}
			for e.SinkCount.Value() < uint64(b.N) {
				time.Sleep(100 * time.Microsecond)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkTransportPipeline is the wire-throughput anchor recorded in
// BENCH_transport.json: b.N string-payload tuples ship through the
// checksummed v2 framing as 256-tuple batch frames over loopback TCP and
// are decoded and counted at the listener. ns/op is per tuple end to end
// (encode + CRC + syscalls + decode), the budget a worker-to-worker hop
// adds on top of the in-process path measured by BenchmarkEnginePipeline.
func BenchmarkTransportPipeline(b *testing.B) {
	var received metrics.Counter
	codec := state.StringPayloadCodec{}
	l, err := transport.ListenWith("127.0.0.1:0", codec, transport.Handlers{
		OnBatch: func(bt transport.Batch) { received.Add(uint64(len(bt.Tuples))) },
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	p, err := transport.Dial(l.Addr(), codec)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()

	const batchSize = 256
	tuples := make([]stream.Tuple, batchSize)
	for i := range tuples {
		tuples[i] = stream.Tuple{Key: stream.Key(stream.Mix64(uint64(i))), Born: 1, Payload: "payload-string"}
	}
	batch := transport.Batch{
		From: plan.InstanceID{Op: "split", Part: 1},
		To:   plan.InstanceID{Op: "count", Part: 1},
	}
	b.ReportAllocs()
	b.ResetTimer()
	var ts int64
	for sent := 0; sent < b.N; {
		n := batchSize
		if rem := b.N - sent; rem < n {
			n = rem
		}
		batch.Tuples = tuples[:n]
		for i := range batch.Tuples {
			ts++
			batch.Tuples[i].TS = ts
		}
		if err := p.SendBatch(batch); err != nil {
			b.Fatal(err)
		}
		sent += n
	}
	for received.Value() < uint64(b.N) {
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkBoundedMemoryKeyedSum is the out-of-core smoke recorded in
// BENCH_backpressure.json: 10M distinct keys stream through a keyed sum
// on the public live runtime with a 64 MiB state ceiling
// (WithMemoryLimit), so the run completes only if cold key ranges spill
// to disk instead of growing the heap — CI runs it under a GOMEMLIMIT
// well below the unbounded footprint. Checkpointing is off: the
// in-process backup would be a full second replica of the state, which
// is another host's memory in the paper's deployment; spill × checkpoint
// composition is pinned by the -race tests in internal/state and
// internal/engine. Each iteration is one full 10M-key run; the bench
// fails if the ceiling never engages.
func BenchmarkBoundedMemoryKeyedSum(b *testing.B) {
	const keys = 10_000_000
	const ceiling = 64 << 20
	one := any(float64(1))
	gen := func(i uint64) (seep.Key, any) { return seep.Key(stream.Mix64(i)), one }
	sum := func() seep.Operator {
		return seep.NewKeyedSum(0, func(p any) (float64, bool) {
			v, ok := p.(float64)
			return v, ok
		})
	}
	b.ReportAllocs()
	var spilled uint64
	for i := 0; i < b.N; i++ {
		rt := seep.Live(
			seep.WithCheckpointInterval(0),
			seep.WithBatching(256, 2*time.Millisecond),
			seep.WithMemoryLimit(ceiling),
		)
		job, err := rt.Deploy(seep.NewTopology().
			Source("src").
			Stateful("sum", sum).
			Sink("sink"))
		if err != nil {
			b.Fatal(err)
		}
		job.Start()
		if err := job.InjectBatch("src", keys, gen); err != nil {
			b.Fatal(err)
		}
		for job.MetricsSnapshot().SinkTuples < keys {
			time.Sleep(10 * time.Millisecond)
		}
		m := job.MetricsSnapshot()
		spilled = m.Backpressure.Spill.SpilledTotal
		if spilled == 0 {
			b.Fatalf("memory ceiling never engaged: %+v", m.Backpressure.Spill)
		}
		b.StopTimer()
		job.Stop() // materialises the spilled tail; not part of the data path
		b.StartTimer()
	}
	b.ReportMetric(float64(keys)/b.Elapsed().Seconds()*float64(b.N), "keys/s")
	b.ReportMetric(float64(spilled), "spilled-keys")
}

// --- micro-benchmarks of the state management primitives ---

func mkProcessing(keys, valueBytes int) *state.Processing {
	p := state.NewProcessing(1)
	for i := 0; i < keys; i++ {
		v := make([]byte, valueBytes)
		p.KV[stream.Key(stream.Mix64(uint64(i)))] = v
	}
	return p
}

// BenchmarkCheckpointClone measures checkpoint-state's consistent-copy
// cost across state sizes (the CPU cost modelled in Fig. 14).
func BenchmarkCheckpointClone(b *testing.B) {
	for _, keys := range []int{100, 10_000, 100_000} {
		b.Run(fmt.Sprintf("keys=%d", keys), func(b *testing.B) {
			p := mkProcessing(keys, 20)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = p.Clone()
			}
		})
	}
}

// BenchmarkPartitionState measures partition-processing-state
// (Algorithm 2) across parallelism levels.
func BenchmarkPartitionState(b *testing.B) {
	for _, pi := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("pi=%d", pi), func(b *testing.B) {
			p := mkProcessing(50_000, 20)
			ranges := state.FullRange.SplitEven(pi)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = p.Partition(ranges)
			}
		})
	}
}

// BenchmarkRoutingLookup measures the per-tuple routing decision at
// realistic partition counts.
func BenchmarkRoutingLookup(b *testing.B) {
	for _, parts := range []int{2, 16, 64} {
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			entries := make([]state.RouteEntry, parts)
			for i, r := range state.FullRange.SplitEven(parts) {
				entries[i] = state.RouteEntry{
					Target: plan.InstanceID{Op: "o", Part: i + 1},
					Range:  r,
				}
			}
			rt, err := state.NewRoutingFromEntries(entries)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = rt.Lookup(stream.Key(stream.Mix64(uint64(i))))
			}
		})
	}
}

// BenchmarkBufferTrim measures the acknowledgement-driven trim of
// Algorithm 1 line 4.
func BenchmarkBufferTrim(b *testing.B) {
	target := plan.InstanceID{Op: "count", Part: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		buf := state.NewBuffer()
		for ts := int64(1); ts <= 10_000; ts++ {
			buf.Append(target, stream.Tuple{TS: ts, Key: stream.Key(ts)})
		}
		b.StartTimer()
		buf.TrimInstance(target, 5_000)
	}
}

// BenchmarkBufferTrimIncremental guards the amortised trim path: a
// steady-state buffer at ~50k retained tuples absorbs a small append
// burst and an acknowledgement-driven trim per op. The head-index
// design makes this O(step); a regression to copy-per-trim makes it
// O(window) and shows up as a ~100× slowdown here.
func BenchmarkBufferTrimIncremental(b *testing.B) {
	target := plan.InstanceID{Op: "count", Part: 1}
	const window = 50_000
	const step = 100
	buf := state.NewBuffer()
	ts := int64(0)
	h := buf.Handle(target)
	for i := 0; i < window; i++ {
		ts++
		h.Append(stream.Tuple{TS: ts, Key: stream.Key(ts)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < step; j++ {
			ts++
			h.Append(stream.Tuple{TS: ts, Key: stream.Key(ts)})
		}
		buf.TrimInstance(target, ts-window)
	}
}

// BenchmarkEncodeDecodeProcessing measures checkpoint serialisation.
func BenchmarkEncodeDecodeProcessing(b *testing.B) {
	p := mkProcessing(10_000, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := stream.NewEncoder(p.Size())
		p.Encode(e)
		if _, err := state.DecodeProcessing(stream.NewDecoder(e.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaCheckpoint measures incremental checkpoint extraction
// from the managed store for a 1% dirty fraction.
func BenchmarkDeltaCheckpoint(b *testing.B) {
	s := state.NewStore()
	m := state.NewMap[int64](s, "counts", state.Int64Codec{})
	for i := 0; i < 10_000; i++ {
		m.Put(stream.Key(stream.Mix64(uint64(i))), "f", int64(i))
	}
	if _, err := s.TakeCheckpoint(); err != nil {
		b.Fatal(err)
	}
	ts := stream.NewTSVector(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 100; j++ {
			k := stream.Key(stream.Mix64(uint64((i*131 + j*17) % 10_000)))
			m.Update(k, "f", func(c int64) int64 { return c + 1 })
		}
		b.StartTimer()
		if _, err := s.TakeDelta(ts, uint64(i+1), uint64(i+2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChooseBackup measures the hashed backup placement decision.
func BenchmarkChooseBackup(b *testing.B) {
	ups := make([]plan.InstanceID, 16)
	for i := range ups {
		ups[i] = plan.InstanceID{Op: "u", Part: i + 1}
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.ChooseBackup(plan.InstanceID{Op: "o", Part: i}, ups); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKeyOf measures tuple key hashing.
func BenchmarkKeyOf(b *testing.B) {
	words := make([]string, 256)
	for i := range words {
		words[i] = fmt.Sprintf("word-%06d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = stream.KeyOfString(words[i%len(words)])
	}
}

// BenchmarkCheckpointFullVsIncremental compares what a checkpoint
// interval ships under full versus incremental checkpointing for a
// large keyspace with small per-interval churn (100k keys, 1% dirtied).
// The bytes/op metrics are the measurable §3.2 win; the benchmark also
// exercises the managed store's TakeCheckpoint/TakeDelta paths and the
// backup-side fold.
func BenchmarkCheckpointFullVsIncremental(b *testing.B) {
	const keys = 100_000
	const churn = 1_000 // 1% of the keyspace per interval
	build := func() (*state.Store, *state.Map[int64]) {
		s := state.NewStore()
		m := state.NewMap[int64](s, "counts", state.Int64Codec{})
		for i := 0; i < keys; i++ {
			m.Put(stream.Key(stream.Mix64(uint64(i))), "f", int64(i))
		}
		return s, m
	}
	dirty := func(m *state.Map[int64], round int) {
		for j := 0; j < churn; j++ {
			k := stream.Key(stream.Mix64(uint64((round*7919 + j) % keys)))
			m.Update(k, "f", func(c int64) int64 { return c + 1 })
		}
	}

	b.Run("full", func(b *testing.B) {
		s, m := build()
		if _, err := s.TakeCheckpoint(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		bytes := 0
		for i := 0; i < b.N; i++ {
			dirty(m, i)
			kv, err := s.TakeCheckpoint()
			if err != nil {
				b.Fatal(err)
			}
			for _, v := range kv {
				bytes += 8 + len(v)
			}
		}
		b.ReportMetric(float64(bytes)/float64(b.N), "shipped-B/op")
	})
	b.Run("incremental", func(b *testing.B) {
		s, m := build()
		if _, err := s.TakeCheckpoint(); err != nil {
			b.Fatal(err)
		}
		ts := stream.NewTSVector(1)
		b.ReportAllocs()
		b.ResetTimer()
		bytes := 0
		for i := 0; i < b.N; i++ {
			dirty(m, i)
			ts.Advance(0, int64(i+1))
			d, err := s.TakeDelta(ts, uint64(i+1), uint64(i+2))
			if err != nil {
				b.Fatal(err)
			}
			bytes += d.Size()
		}
		b.ReportMetric(float64(bytes)/float64(b.N), "shipped-B/op")
	})
	// The backup-host side: folding a 1%-churn delta into a stored base.
	b.Run("fold", func(b *testing.B) {
		s, m := build()
		kv, err := s.TakeCheckpoint()
		if err != nil {
			b.Fatal(err)
		}
		base := state.NewProcessing(1)
		base.KV = kv
		dirty(m, 0)
		d, err := s.TakeDelta(stream.NewTSVector(1), 1, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Apply(base.Clone())
		}
	})
}

// BenchmarkWireCheckpointBytes measures what one checkpoint interval
// puts ON THE WIRE (frame bodies, not in-memory sizes) for a 100k-key
// operator with 1% churn: a full-snapshot checkpoint frame versus a
// delta-checkpoint frame carrying only the dirty keys. The
// bytes-on-wire ratio is the acceptance criterion for shipping deltas
// over the network — the delta frame must be at least 10x smaller.
func BenchmarkWireCheckpointBytes(b *testing.B) {
	const keys = 100_000
	const churn = 1_000
	codec := state.GobPayloadCodec{}
	inst := plan.InstanceID{Op: "count", Part: 1}
	s := state.NewStore()
	m := state.NewMap[int64](s, "counts", state.Int64Codec{})
	for i := 0; i < keys; i++ {
		m.Put(stream.Key(stream.Mix64(uint64(i))), "f", int64(i))
	}
	kv, err := s.TakeCheckpoint()
	if err != nil {
		b.Fatal(err)
	}
	proc := state.NewProcessing(1)
	proc.KV = kv
	full := &state.Checkpoint{
		Instance: inst, Seq: 1, Processing: proc,
		Buffer: state.NewBuffer(), OutClock: int64(keys),
		Acks: map[plan.InstanceID]int64{{Op: "src", Part: 1}: int64(keys)},
	}
	for j := 0; j < churn; j++ {
		k := stream.Key(stream.Mix64(uint64(j * 97 % keys)))
		m.Update(k, "f", func(c int64) int64 { return c + 1 })
	}
	d, err := s.TakeDelta(stream.NewTSVector(1), 1, 2)
	if err != nil {
		b.Fatal(err)
	}
	dc := &state.DeltaCheckpoint{
		Instance: inst, Delta: d,
		Buffer: state.NewBuffer(), OutClock: int64(keys) + churn,
		Acks: map[plan.InstanceID]int64{{Op: "src", Part: 1}: int64(keys) + churn},
	}

	fe := stream.NewEncoder(1 << 20)
	if err := state.EncodeCheckpoint(fe, full, codec); err != nil {
		b.Fatal(err)
	}
	fullBytes := fe.Len()

	var deltaBytes int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := stream.NewEncoder(dc.Size() + 256)
		if err := state.EncodeDeltaCheckpoint(e, dc, codec, false); err != nil {
			b.Fatal(err)
		}
		deltaBytes = e.Len()
	}
	b.ReportMetric(float64(fullBytes), "full-B")
	b.ReportMetric(float64(deltaBytes), "delta-B")
	b.ReportMetric(float64(fullBytes)/float64(deltaBytes), "full/delta-x")
}
