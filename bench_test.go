// Benchmark harness: one benchmark per figure of the paper's evaluation
// (§6, Figs. 6-15) plus the design-choice ablations of DESIGN.md and
// micro-benchmarks of the state-management primitives.
//
// Figure benchmarks execute the corresponding experiment at reduced
// (quick) scale per iteration and report key outcomes as custom metrics
// (recovery seconds, VMs, latency) so regressions in experiment shape
// show up in benchmark output. Run paper-scale experiments with
// cmd/seep-bench instead.
package seep_test

import (
	"fmt"
	"testing"

	"seep/internal/core"
	"seep/internal/experiments"
	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

func runExperiment(b *testing.B, name string) *experiments.Table {
	b.Helper()
	var tb *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tb, err = experiments.Run(name, experiments.Scale{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	return tb
}

func BenchmarkFig6ScaleOutLRB(b *testing.B)         { runExperiment(b, "fig6") }
func BenchmarkFig7LatencyLRB(b *testing.B)          { runExperiment(b, "fig7") }
func BenchmarkFig8OpenLoopTopK(b *testing.B)        { runExperiment(b, "fig8") }
func BenchmarkFig9ThresholdSweep(b *testing.B)      { runExperiment(b, "fig9") }
func BenchmarkFig10ManualVsDynamic(b *testing.B)    { runExperiment(b, "fig10") }
func BenchmarkFig11RecoveryMechanisms(b *testing.B) { runExperiment(b, "fig11") }
func BenchmarkFig12CheckpointInterval(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkFig13ParallelRecovery(b *testing.B)   { runExperiment(b, "fig13") }
func BenchmarkFig14CheckpointOverhead(b *testing.B) { runExperiment(b, "fig14") }
func BenchmarkFig15LatencyRecoveryTradeoff(b *testing.B) {
	runExperiment(b, "fig15")
}

func BenchmarkAblationBackupPlacement(b *testing.B) { runExperiment(b, "ablation-backup-placement") }
func BenchmarkAblationVMPool(b *testing.B)          { runExperiment(b, "ablation-vm-pool") }
func BenchmarkAblationIncrementalCheckpoint(b *testing.B) {
	runExperiment(b, "ablation-incremental-checkpoint")
}
func BenchmarkAblationKeySplit(b *testing.B) { runExperiment(b, "ablation-key-split") }

// --- micro-benchmarks of the state management primitives ---

func mkProcessing(keys, valueBytes int) *state.Processing {
	p := state.NewProcessing(1)
	for i := 0; i < keys; i++ {
		v := make([]byte, valueBytes)
		p.KV[stream.Key(stream.Mix64(uint64(i)))] = v
	}
	return p
}

// BenchmarkCheckpointClone measures checkpoint-state's consistent-copy
// cost across state sizes (the CPU cost modelled in Fig. 14).
func BenchmarkCheckpointClone(b *testing.B) {
	for _, keys := range []int{100, 10_000, 100_000} {
		b.Run(fmt.Sprintf("keys=%d", keys), func(b *testing.B) {
			p := mkProcessing(keys, 20)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = p.Clone()
			}
		})
	}
}

// BenchmarkPartitionState measures partition-processing-state
// (Algorithm 2) across parallelism levels.
func BenchmarkPartitionState(b *testing.B) {
	for _, pi := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("pi=%d", pi), func(b *testing.B) {
			p := mkProcessing(50_000, 20)
			ranges := state.FullRange.SplitEven(pi)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = p.Partition(ranges)
			}
		})
	}
}

// BenchmarkRoutingLookup measures the per-tuple routing decision at
// realistic partition counts.
func BenchmarkRoutingLookup(b *testing.B) {
	for _, parts := range []int{2, 16, 64} {
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			entries := make([]state.RouteEntry, parts)
			for i, r := range state.FullRange.SplitEven(parts) {
				entries[i] = state.RouteEntry{
					Target: plan.InstanceID{Op: "o", Part: i + 1},
					Range:  r,
				}
			}
			rt, err := state.NewRoutingFromEntries(entries)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = rt.Lookup(stream.Key(stream.Mix64(uint64(i))))
			}
		})
	}
}

// BenchmarkBufferTrim measures the acknowledgement-driven trim of
// Algorithm 1 line 4.
func BenchmarkBufferTrim(b *testing.B) {
	target := plan.InstanceID{Op: "count", Part: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		buf := state.NewBuffer()
		for ts := int64(1); ts <= 10_000; ts++ {
			buf.Append(target, stream.Tuple{TS: ts, Key: stream.Key(ts)})
		}
		b.StartTimer()
		buf.TrimInstance(target, 5_000)
	}
}

// BenchmarkEncodeDecodeProcessing measures checkpoint serialisation.
func BenchmarkEncodeDecodeProcessing(b *testing.B) {
	p := mkProcessing(10_000, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := stream.NewEncoder(p.Size())
		p.Encode(e)
		if _, err := state.DecodeProcessing(stream.NewDecoder(e.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaCheckpoint measures incremental checkpoint extraction
// for a 1% dirty fraction.
func BenchmarkDeltaCheckpoint(b *testing.B) {
	p := mkProcessing(10_000, 20)
	keys := p.Keys()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := state.NewDeltaTracker()
		for j := 0; j < 100; j++ {
			tr.Touch(keys[(i*131+j*17)%len(keys)])
		}
		b.StartTimer()
		_ = tr.TakeDelta(p)
	}
}

// BenchmarkChooseBackup measures the hashed backup placement decision.
func BenchmarkChooseBackup(b *testing.B) {
	ups := make([]plan.InstanceID, 16)
	for i := range ups {
		ups[i] = plan.InstanceID{Op: "u", Part: i + 1}
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.ChooseBackup(plan.InstanceID{Op: "o", Part: i}, ups); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKeyOf measures tuple key hashing.
func BenchmarkKeyOf(b *testing.B) {
	words := make([]string, 256)
	for i := range words {
		words[i] = fmt.Sprintf("word-%06d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = stream.KeyOfString(words[i%len(words)])
	}
}
