package seep_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"seep"
)

// TestRuntimeParityLiveVsDistributed runs the identical
// inject → crash → recover → inject scenario of TestRuntimeParityWordCount
// on the Live runtime and on the Distributed runtime with three loopback
// workers, and asserts they converge to the same managed state: every
// tuple reflected exactly once across the failure. On the distributed
// substrate the failure is harsher — Job.Fail crash-stops the whole
// worker VM hosting the counter, detection is real heartbeat loss over
// TCP, and recovery replays across process-style boundaries — yet the
// per-key counts must match the in-process run exactly.
func TestRuntimeParityLiveVsDistributed(t *testing.T) {
	runtimes := []struct {
		name string
		rt   seep.Runtime
	}{
		{"live", seep.Live(
			seep.WithCheckpointInterval(100*time.Millisecond),
			seep.WithDetectDelay(200*time.Millisecond),
		)},
		{"dist", seep.Distributed(
			seep.WithWorkers(3),
			seep.WithCheckpointInterval(100*time.Millisecond),
			seep.WithDetectDelay(200*time.Millisecond),
		)},
	}

	type outcome struct {
		counts     map[string]int64
		recoveries int
	}
	results := make(map[string]outcome)

	for _, r := range runtimes {
		t.Run(r.rt.Name(), func(t *testing.T) {
			if r.rt.Name() != r.name {
				t.Fatalf("Name() = %q, want %q", r.rt.Name(), r.name)
			}
			job, err := r.rt.Deploy(wordcountTopology())
			if err != nil {
				t.Fatal(err)
			}
			job.Start()
			defer job.Stop()

			if err := job.InjectBatch("src", 300, parityGen); err != nil {
				t.Fatal(err)
			}
			job.Run(2 * time.Second)

			victims := job.Instances("count")
			if len(victims) != 1 {
				t.Fatalf("Instances(count) = %v", victims)
			}
			// Live: crash the instance's VM. Distributed: crash the whole
			// worker hosting it — everything else must survive and the
			// counter must be recovered elsewhere.
			if err := job.Fail(victims[0]); err != nil {
				t.Fatal(err)
			}
			job.Run(4 * time.Second)

			if err := job.InjectBatch("src", 300, parityGen); err != nil {
				t.Fatal(err)
			}
			job.Run(2 * time.Second)

			insts := job.Instances("count")
			if len(insts) != 1 {
				t.Fatalf("Instances(count) after recovery = %v", insts)
			}
			if insts[0] == victims[0] {
				t.Fatalf("failed instance %v still live", victims[0])
			}
			counter, ok := job.OperatorOf(insts[0]).(*seep.WordCounter)
			if !ok {
				t.Fatalf("OperatorOf(%v) = %T", insts[0], job.OperatorOf(insts[0]))
			}
			counts := make(map[string]int64, 10)
			for i := 0; i < 10; i++ {
				w := fmt.Sprintf("w%02d", i)
				counts[w] = counter.Count(w)
				if counts[w] != 60 {
					t.Errorf("Count(%s) = %d, want 60 (exactly once across the failure)", w, counts[w])
				}
			}
			m := job.MetricsSnapshot()
			if len(m.Recoveries) != 1 {
				t.Errorf("Recoveries = %v, want exactly one", m.Recoveries)
			}
			for _, rec := range m.Recoveries {
				if !rec.Failure || rec.Victim != victims[0] || rec.Pi != 1 {
					t.Errorf("recovery record = %+v", rec)
				}
			}
			if m.SinkTuples == 0 {
				t.Error("no tuples reached the sink")
			}
			if len(m.Errors) != 0 {
				t.Errorf("Errors = %v", m.Errors)
			}
			if r.name == "dist" {
				// The distributed run must actually have used the wire.
				if m.Transport.FramesSent == 0 || m.Transport.BytesSent == 0 {
					t.Errorf("no transport traffic recorded: %+v", m.Transport)
				}
			} else if m.Transport != (seep.TransportStats{}) {
				t.Errorf("live runtime reported transport traffic: %+v", m.Transport)
			}
			results[r.name] = outcome{counts: counts, recoveries: len(m.Recoveries)}
		})
	}

	live, dst := results["live"], results["dist"]
	if live.counts == nil || dst.counts == nil {
		t.Fatal("missing results from one runtime")
	}
	if !reflect.DeepEqual(live.counts, dst.counts) {
		t.Errorf("behavioural divergence: live counts %v != dist counts %v", live.counts, dst.counts)
	}
	if live.recoveries != dst.recoveries {
		t.Errorf("recoveries: live %d != dist %d", live.recoveries, dst.recoveries)
	}
}

// TestDistributedRejectsForeignOptions: substrate-restricted options are
// Deploy errors on the wrong runtime — same contract as Live/Simulated.
func TestDistributedRejectsForeignOptions(t *testing.T) {
	if _, err := seep.Live(seep.WithWorkers(3)).Deploy(wordcountTopology()); err == nil {
		t.Error("Live accepted WithWorkers")
	}
	if _, err := seep.Simulated(seep.WithWorkerAddrs("127.0.0.1:1")).Deploy(wordcountTopology()); err == nil {
		t.Error("Simulated accepted WithWorkerAddrs")
	}
	if _, err := seep.Distributed(seep.WithFTMode(seep.FTSourceReplay)).Deploy(wordcountTopology()); err == nil {
		t.Error("Distributed accepted WithFTMode")
	}
	// WithSeed is universal: every substrate accepts it (reproducibility
	// tooling reads it back), so it must NOT be rejected here.
	if job, err := seep.Distributed(seep.WithSeed(1), seep.WithWorkers(1)).Deploy(wordcountTopology()); err != nil {
		t.Errorf("Distributed rejected WithSeed: %v", err)
	} else {
		job.Stop()
	}
	if _, err := seep.Distributed(seep.WithWorkers(0)).Deploy(wordcountTopology()); err == nil {
		t.Error("Distributed accepted WithWorkers(0)")
	}
	// External workers need a registry name to instantiate operators.
	if _, err := seep.Distributed(seep.WithWorkerAddrs("127.0.0.1:1")).Deploy(wordcountTopology()); err == nil {
		t.Error("Distributed accepted WithWorkerAddrs without WithTopologyName")
	}
	if _, err := seep.Distributed(
		seep.WithWorkers(2), seep.WithWorkerAddrs("127.0.0.1:1"), seep.WithTopologyName("x"),
	).Deploy(wordcountTopology()); err == nil {
		t.Error("Distributed accepted WithWorkers together with WithWorkerAddrs")
	}
	// The wire codec and delta-frame options are Distributed-only and
	// validated loudly; an unknown codec name never reaches the fleet.
	if _, err := seep.Distributed(seep.WithWireCodec("msgpack")).Deploy(wordcountTopology()); err == nil {
		t.Error("Distributed accepted an unknown wire codec name")
	}
	if _, err := seep.Live(seep.WithWireCodec("gob")).Deploy(wordcountTopology()); err == nil {
		t.Error("Live accepted WithWireCodec")
	}
	if _, err := seep.Live(seep.WithDeltaCheckpoints(false)).Deploy(wordcountTopology()); err == nil {
		t.Error("Live accepted WithDeltaCheckpoints")
	}
}

// TestDistributedScaleOutThroughJob exercises the coordinator's
// barrier → retire → reroute → deploy transition through the public Job
// interface and checks partitioned counters cover the key space.
func TestDistributedScaleOutThroughJob(t *testing.T) {
	job, err := seep.Distributed(
		seep.WithWorkers(3),
		seep.WithCheckpointInterval(100*time.Millisecond),
	).Deploy(wordcountTopology())
	if err != nil {
		t.Fatal(err)
	}
	job.Start()
	defer job.Stop()
	if err := job.InjectBatch("src", 300, parityGen); err != nil {
		t.Fatal(err)
	}
	job.Run(2 * time.Second)
	if err := job.ScaleOut(job.Instances("count")[0], 2); err != nil {
		t.Fatal(err)
	}
	job.Run(2 * time.Second)
	if err := job.InjectBatch("src", 300, parityGen); err != nil {
		t.Fatal(err)
	}
	job.Run(2 * time.Second)

	m := job.MetricsSnapshot()
	if m.Parallelism["count"] != 2 {
		t.Errorf("Parallelism[count] = %d, want 2", m.Parallelism["count"])
	}
	if len(m.Recoveries) != 1 || m.Recoveries[0].Failure {
		t.Errorf("Recoveries = %v, want one scale-out record", m.Recoveries)
	}
	totals := make(map[string]int64)
	for _, inst := range job.Instances("count") {
		c, ok := job.OperatorOf(inst).(*seep.WordCounter)
		if !ok {
			t.Fatalf("OperatorOf(%v) = %T", inst, job.OperatorOf(inst))
		}
		for i := 0; i < 10; i++ {
			w := fmt.Sprintf("w%02d", i)
			totals[w] += c.Count(w)
		}
	}
	for w, n := range totals {
		if n != 60 {
			t.Errorf("total Count(%s) = %d, want 60", w, n)
		}
	}
}
