package seep_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"seep"
)

// custom managed operator used to prove the public managed-state surface
// (StateStore / ValueState / MapState / codecs) end to end.
type visitTracker struct {
	store  *seep.StateStore
	visits *seep.MapState[int64]
	last   *seep.ValueState[string]
}

func newVisitTracker() *visitTracker {
	st := seep.NewStateStore()
	return &visitTracker{
		store:  st,
		visits: seep.NewMapState[int64](st, "visits", seep.Int64Codec{}),
		last:   seep.NewValueState[string](st, "last", seep.StringCodec{}),
	}
}

func (v *visitTracker) State() *seep.StateStore { return v.store }

func (v *visitTracker) OnTuple(_ seep.Context, t seep.Tuple, emit seep.Emitter) {
	page, ok := t.Payload.(string)
	if !ok {
		return
	}
	n := v.visits.Update(t.Key, page, func(c int64) int64 { return c + 1 })
	v.last.Set(t.Key, page)
	emit(t.Key, fmt.Sprintf("%s=%d", page, n))
}

func (v *visitTracker) total() int64 {
	var n int64
	v.visits.ForEach(func(_ seep.Key, _ string, c int64) { n += c })
	return n
}

// TestIncrementalCheckpointsBothSubstrates deploys a custom
// managed-state operator with WithIncrementalCheckpoints on the live
// engine and the simulator: deltas must ship on both, shrink bytes
// versus full snapshots, and recovery must reconstruct exact state from
// the folded backup.
func TestIncrementalCheckpointsBothSubstrates(t *testing.T) {
	topo := func() *seep.Topology {
		return seep.NewTopology().
			Source("src").
			Stateful("track", func() seep.Operator { return newVisitTracker() }).
			Sink("sink")
	}
	gen := func(i uint64) (seep.Key, any) {
		p := fmt.Sprintf("page%03d", i%200)
		return seep.KeyOfString(p), p
	}
	for _, tc := range []struct {
		name string
		rt   seep.Runtime
	}{
		{"live", seep.Live(
			seep.WithCheckpointInterval(100*time.Millisecond),
			seep.WithDetectDelay(200*time.Millisecond),
			seep.WithIncrementalCheckpoints(10, 0.5),
		)},
		{"sim", seep.Simulated(
			seep.WithSeed(7),
			seep.WithCheckpointInterval(500*time.Millisecond),
			seep.WithIncrementalCheckpoints(10, 0.5),
		)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			job, err := tc.rt.Deploy(topo())
			if err != nil {
				t.Fatal(err)
			}
			job.Start()
			defer job.Stop()
			// Base state over 200 keys, then several small-churn batches
			// separated by checkpoint intervals so deltas ship.
			if err := job.InjectBatch("src", 1000, gen); err != nil {
				t.Fatal(err)
			}
			job.Run(2 * time.Second)
			for i := 0; i < 3; i++ {
				if err := job.InjectBatch("src", 20, gen); err != nil {
					t.Fatal(err)
				}
				job.Run(2 * time.Second)
			}
			insts := job.Instances("track")
			if len(insts) != 1 {
				t.Fatalf("instances = %v", insts)
			}
			if err := job.Fail(insts[0]); err != nil {
				t.Fatal(err)
			}
			job.Run(3 * time.Second)

			m := job.MetricsSnapshot()
			if len(m.Errors) != 0 {
				t.Fatalf("job errors: %v", m.Errors)
			}
			if m.Checkpoints.Deltas == 0 {
				t.Fatalf("no incremental checkpoints shipped: %+v", m.Checkpoints)
			}
			if avgD, avgF := m.Checkpoints.DeltaBytes/m.Checkpoints.Deltas, m.Checkpoints.FullBytes/m.Checkpoints.Fulls; avgD >= avgF {
				t.Errorf("avg delta bytes %d not smaller than avg full bytes %d", avgD, avgF)
			}
			var got int64
			for _, in := range job.Instances("track") {
				if op, ok := job.OperatorOf(in).(*visitTracker); ok {
					got += op.total()
				}
			}
			if got != 1060 {
				t.Errorf("visits after recovery = %d, want 1060", got)
			}
		})
	}
}

// TestIncrementalCheckpointOptionValidation: bad parameters and
// unsupported FT-mode combinations are Deploy errors, never silent.
func TestIncrementalCheckpointOptionValidation(t *testing.T) {
	topo := wordcountTopology()
	if _, err := seep.Live(seep.WithIncrementalCheckpoints(1, 0.5)).Deploy(topo); err == nil ||
		!strings.Contains(err.Error(), "fullEvery") {
		t.Errorf("fullEvery=1 error = %v", err)
	}
	if _, err := seep.Live(seep.WithIncrementalCheckpoints(5, 1.5)).Deploy(topo); err == nil ||
		!strings.Contains(err.Error(), "maxDeltaFraction") {
		t.Errorf("fraction=1.5 error = %v", err)
	}
	if _, err := seep.Simulated(
		seep.WithFTMode(seep.FTSourceReplay),
		seep.WithIncrementalCheckpoints(5, 0.5),
	).Deploy(topo); err == nil || !strings.Contains(err.Error(), "FTRSM") {
		t.Errorf("non-RSM mode error = %v", err)
	}
}
