module seep

go 1.22
