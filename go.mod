module seep

go 1.24
