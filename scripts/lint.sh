#!/usr/bin/env bash
# lint.sh — the repo's static gate, one command for CI and for hands:
# gofmt, go vet, and seep-lint (the invariant suite in internal/analysis,
# run both standalone and as the vet tool so each loading path stays
# honest). govulncheck runs when the binary is available; the container
# image does not bake it in, so its absence is a skip, not a failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
  echo "gofmt needed on:" >&2
  echo "$out" >&2
  exit 1
fi

echo "== go vet"
go vet ./...

echo "== seep-lint (standalone)"
go run ./cmd/seep-lint ./...

echo "== seep-lint (go vet -vettool)"
tool=$(mktemp -d)/seep-lint
trap 'rm -rf "$(dirname "$tool")"' EXIT
go build -o "$tool" ./cmd/seep-lint
go vet -vettool="$tool" ./...

if command -v govulncheck >/dev/null 2>&1; then
  echo "== govulncheck"
  govulncheck ./...
else
  echo "== govulncheck: not installed, skipping"
fi

echo "lint OK"
