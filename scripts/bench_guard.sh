#!/usr/bin/env bash
# Bench-regression guard: runs the two data-path anchor benchmarks and
# fails if the best-of-N ns/op exceeds the recorded anchor by more than
# 15%. Anchors are the ci_anchor sections next to the numbers they
# guard: BENCH_transport.json (wire hop), BENCH_pipeline.json
# (in-process engine path).
# Best-of-N damps scheduler noise; a genuine regression shifts the whole
# distribution, not just the tail.
set -euo pipefail
cd "$(dirname "$0")/.."

anchor() { # file — the ci_anchor section's ns_per_op value
  grep -A8 '"ci_anchor"' "$1" | grep -m1 '_ns_per_op"' | sed 's/.*: *//; s/[^0-9.]//g'
}

transport_anchor=$(anchor BENCH_transport.json)
engine_anchor=$(anchor BENCH_pipeline.json)
if [ -z "$transport_anchor" ] || [ -z "$engine_anchor" ]; then
  echo "bench_guard: missing anchors (transport='$transport_anchor' engine='$engine_anchor')" >&2
  exit 1
fi

out=$(go test . -run '^$' -benchtime=0.5s -count="${BENCH_COUNT:-3}" \
  -bench 'BenchmarkTransportPipeline$|BenchmarkEnginePipeline/batch=256')
echo "$out"

check() { # benchmark-name-prefix, anchor
  local best
  best=$(echo "$out" | awk -v b="^$1" '$1 ~ b {print $3}' | sort -g | head -1)
  if [ -z "$best" ]; then
    echo "bench_guard: no result for $1" >&2
    return 1
  fi
  awk -v best="$best" -v anchor="$2" -v name="$1" 'BEGIN {
    limit = anchor * 1.15
    printf "bench_guard: %s best %.1f ns/op, anchor %.1f, limit %.1f\n", name, best, anchor, limit
    if (best > limit) { printf "bench_guard: %s regressed >15%% over anchor\n", name; exit 1 }
  }'
}

check BenchmarkTransportPipeline "$transport_anchor"
check BenchmarkEnginePipeline/batch=256 "$engine_anchor"
