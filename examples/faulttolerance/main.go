// Fault tolerance end to end, driven by a committed chaos scenario: a
// stateful operator is periodically checkpointed to an upstream backup,
// its VM is killed, and the runtime detects the failure and recovers
// the operator via the integrated scale-out algorithm — with no state
// lost: exactly-once with respect to operator state.
//
// The kill/recover script, the seeded workload and the exact per-key
// assertions all live in the scenario file; this program is just the
// scenario runner pointed at one substrate.
//
//	go run ./examples/faulttolerance
//	go run ./examples/faulttolerance -substrate sim -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"seep/internal/scenario"
)

func main() {
	file := flag.String("scenario", "scenarios/wordcount-kill-counter.yaml", "scenario file to run")
	substrate := flag.String("substrate", "live", "substrate: sim, live or dist")
	seed := flag.Int64("seed", 0, "override the scenario's seed (0 = use the file's)")
	flag.Parse()

	s, err := scenario.LoadFile(*file)
	if err != nil {
		log.Fatal(err)
	}
	res, err := scenario.Run(s, scenario.RunConfig{
		Substrate: *substrate,
		Seed:      *seed,
		Logf:      log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range res.Metrics.Recoveries {
		fmt.Printf("recovered %v as %d partition(s) in %v ms (detection + restore + replay)\n",
			r.Victim, r.Pi, r.Duration())
	}
	for key, want := range res.Expected {
		fmt.Printf("  count(%q) = %d (want %d)\n", key, res.Counts[key], want)
	}
	if res.OK() {
		fmt.Printf("OK: state restored exactly — no loss, no duplication [substrate %s, seed %d]\n",
			res.Substrate, res.Seed)
		return
	}
	for _, f := range res.Failures {
		fmt.Println("FAIL:", f)
	}
	os.Exit(1)
}
