// Fault tolerance end to end: checkpoint a stateful operator, kill its
// VM, recover it from the upstream backup via the integrated scale-out
// algorithm, and verify that no state was lost — exactly-once with
// respect to operator state.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"time"

	"seep"
)

func main() {
	q := seep.NewQuery()
	q.AddOp(seep.OpSpec{ID: "src", Role: seep.RoleSource})
	q.AddOp(seep.OpSpec{ID: "split", Role: seep.RoleStateless})
	q.AddOp(seep.OpSpec{ID: "count", Role: seep.RoleStateful})
	q.AddOp(seep.OpSpec{ID: "sink", Role: seep.RoleSink})
	q.Connect("src", "split")
	q.Connect("split", "count")
	q.Connect("count", "sink")

	factories := map[seep.OpID]seep.Factory{
		"split": func() seep.Operator { return seep.WordSplitter() },
		"count": func() seep.Operator { return seep.NewWordCounter(0) },
	}
	// A long checkpoint interval: we trigger checkpoints explicitly so
	// the timeline is easy to follow.
	eng, err := seep.NewEngine(seep.EngineConfig{CheckpointInterval: time.Hour}, q, factories)
	if err != nil {
		log.Fatal(err)
	}
	eng.Start()
	defer eng.Stop()

	src := seep.InstanceID{Op: "src", Part: 1}
	victim := seep.InstanceID{Op: "count", Part: 1}
	vocab := []string{"alpha", "beta", "gamma", "delta"}
	gen := func(i uint64) (seep.Key, any) {
		w := vocab[i%uint64(len(vocab))]
		return seep.KeyOfString(w), w
	}
	settle := func(stage string) {
		if !eng.Quiesce(100*time.Millisecond, 5*time.Second) {
			log.Fatalf("engine did not settle after %s", stage)
		}
	}

	// Phase 1: 400 tuples, then checkpoint (backed up to the upstream
	// splitter's VM).
	if err := eng.InjectBatch(src, 400, gen); err != nil {
		log.Fatal(err)
	}
	settle("phase 1")
	if err := eng.Checkpoint(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpointed count#1 (400 tuples reflected)")

	// Phase 2: 200 more tuples that exist only in the operator's
	// volatile state and the upstream output buffer.
	if err := eng.InjectBatch(src, 200, gen); err != nil {
		log.Fatal(err)
	}
	settle("phase 2")

	// Kill the VM. The 200 post-checkpoint tuples are NOT in the backup.
	if err := eng.Fail(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Println("killed count#1")

	// Recover: restore the checkpoint on a new instance and replay the
	// unacknowledged tuples from the upstream buffer (Algorithm 3, π=1).
	start := time.Now()
	if err := eng.Recover(victim, 1); err != nil {
		log.Fatal(err)
	}
	settle("recovery")
	fmt.Printf("recovered in %v as %v\n", time.Since(start).Round(time.Millisecond),
		eng.Manager().Instances("count")[0])

	// Verify: all 600 tuples are reflected exactly once.
	counter := eng.OperatorOf(eng.Manager().Instances("count")[0]).(*seep.WordCounter)
	total := int64(0)
	for _, w := range vocab {
		c := counter.Count(w)
		total += c
		fmt.Printf("  count(%q) = %d (want 150)\n", w, c)
	}
	if total == 600 {
		fmt.Println("OK: state restored exactly — no loss, no duplication")
	} else {
		fmt.Printf("MISMATCH: total = %d, want 600\n", total)
	}
}
