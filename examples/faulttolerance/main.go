// Fault tolerance end to end: a stateful operator is periodically
// checkpointed to an upstream backup, its VM is killed, and the runtime
// detects the failure and recovers the operator via the integrated
// scale-out algorithm — with no state lost: exactly-once with respect to
// operator state.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"time"

	"seep"
)

func main() {
	topo, err := seep.NewTopology().
		Source("src").
		Stateless("split", func() seep.Operator { return seep.WordSplitter() }).
		Stateful("count", func() seep.Operator { return seep.NewWordCounter(0) }).
		Sink("sink").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// Frequent checkpoints and a short detection delay keep the
	// timeline of the demo tight.
	job, err := seep.Live(
		seep.WithCheckpointInterval(150*time.Millisecond),
		seep.WithDetectDelay(300*time.Millisecond),
	).Deploy(topo)
	if err != nil {
		log.Fatal(err)
	}
	job.Start()
	defer job.Stop()

	vocab := []string{"alpha", "beta", "gamma", "delta"}
	gen := func(i uint64) (seep.Key, any) {
		w := vocab[i%uint64(len(vocab))]
		return seep.KeyOfString(w), w
	}

	// Phase 1: 400 tuples, with periodic checkpoints backing the
	// counter's state up to the upstream splitter's VM.
	if err := job.InjectBatch("src", 400, gen); err != nil {
		log.Fatal(err)
	}
	job.Run(time.Second)

	// Phase 2: 200 more tuples; the most recent of them exist only in
	// the operator's volatile state and the upstream output buffer.
	if err := job.InjectBatch("src", 200, gen); err != nil {
		log.Fatal(err)
	}
	job.Run(500 * time.Millisecond)

	// Kill the VM. Tuples after the last checkpoint are NOT in the
	// backup; recovery must replay them from the upstream buffer.
	victim := job.Instances("count")[0]
	if err := job.Fail(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("killed %v\n", victim)

	// The runtime detects the failure and recovers: restore the backup
	// checkpoint on a new instance, replay unacknowledged tuples
	// (Algorithm 3, π=1).
	job.Run(3 * time.Second)
	m := job.MetricsSnapshot()
	for _, e := range m.Errors {
		log.Fatalf("recovery failed: %s", e)
	}
	recovered := job.Instances("count")
	if len(m.Recoveries) == 0 || len(recovered) == 0 {
		log.Fatalf("recovery did not complete (recoveries=%d, live instances=%d)",
			len(m.Recoveries), len(recovered))
	}
	for _, r := range m.Recoveries {
		fmt.Printf("recovered as %v in %v ms (detection + restore + replay)\n", recovered[0], r.Duration())
	}

	// Verify: all 600 tuples are reflected exactly once.
	counter := job.OperatorOf(recovered[0]).(*seep.WordCounter)
	total := int64(0)
	for _, w := range vocab {
		c := counter.Count(w)
		total += c
		fmt.Printf("  count(%q) = %d (want 150)\n", w, c)
	}
	if total == 600 {
		fmt.Println("OK: state restored exactly — no loss, no duplication")
	} else {
		fmt.Printf("MISMATCH: total = %d, want 600\n", total)
	}
}
