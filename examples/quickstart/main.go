// Quickstart: build a stateful streaming query, run it on the live
// engine, and read the operator's managed state.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"seep"
)

func main() {
	// A query is a DAG: source → splitter → counter → sink. The counter
	// is stateful: the system checkpoints, backs up and can partition
	// its state.
	q := seep.NewQuery()
	q.AddOp(seep.OpSpec{ID: "src", Role: seep.RoleSource})
	q.AddOp(seep.OpSpec{ID: "split", Role: seep.RoleStateless})
	q.AddOp(seep.OpSpec{ID: "count", Role: seep.RoleStateful})
	q.AddOp(seep.OpSpec{ID: "sink", Role: seep.RoleSink})
	q.Connect("src", "split")
	q.Connect("split", "count")
	q.Connect("count", "sink")

	factories := map[seep.OpID]seep.Factory{
		"split": func() seep.Operator { return seep.WordSplitter() },
		"count": func() seep.Operator { return seep.NewWordCounter(0) }, // continuous
	}
	eng, err := seep.NewEngine(seep.EngineConfig{CheckpointInterval: 200 * time.Millisecond}, q, factories)
	if err != nil {
		log.Fatal(err)
	}
	eng.Start()
	defer eng.Stop()

	// Inject a few sentences.
	sentences := []string{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog",
	}
	err = eng.InjectBatch(seep.InstanceID{Op: "src", Part: 1}, len(sentences),
		func(i uint64) (seep.Key, any) {
			s := sentences[i]
			return seep.KeyOf([]byte(s)), s
		})
	if err != nil {
		log.Fatal(err)
	}
	if !eng.Quiesce(100*time.Millisecond, 5*time.Second) {
		log.Fatal("engine did not settle")
	}

	// Read the stateful operator's state through its public API.
	counter := eng.OperatorOf(seep.InstanceID{Op: "count", Part: 1}).(*seep.WordCounter)
	for _, w := range []string{"the", "quick", "dog", "fox"} {
		fmt.Printf("count(%q) = %d\n", w, counter.Count(w))
	}
	fmt.Printf("distinct words: %d, results at sink: %d\n", counter.Distinct(), eng.SinkCount.Value())
}
