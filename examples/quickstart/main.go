// Quickstart: declare a stateful streaming topology, run it on the live
// runtime, and read the operator's managed state.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"seep"
)

func main() {
	// A topology is a DAG: source → splitter → counter → sink, chained
	// linearly in declaration order. The counter is stateful: the system
	// checkpoints, backs up and can partition its state.
	topo, err := seep.NewTopology().
		Source("src").
		Stateless("split", func() seep.Operator { return seep.WordSplitter() }).
		Stateful("count", func() seep.Operator { return seep.NewWordCounter(0) }). // continuous
		Sink("sink").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// The same topology runs on seep.Live or seep.Simulated.
	job, err := seep.Live(seep.WithCheckpointInterval(200 * time.Millisecond)).Deploy(topo)
	if err != nil {
		log.Fatal(err)
	}
	job.Start()
	defer job.Stop()

	// Inject a few sentences.
	sentences := []string{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog",
	}
	err = job.InjectBatch("src", len(sentences), func(i uint64) (seep.Key, any) {
		s := sentences[i]
		return seep.KeyOf([]byte(s)), s
	})
	if err != nil {
		log.Fatal(err)
	}
	job.Run(2 * time.Second)

	// Read the stateful operator's state through its public API.
	counter := job.OperatorOf(job.Instances("count")[0]).(*seep.WordCounter)
	for _, w := range []string{"the", "quick", "dog", "fox"} {
		fmt.Printf("count(%q) = %d\n", w, counter.Count(w))
	}
	m := job.MetricsSnapshot()
	fmt.Printf("distinct words: %d, results at sink: %d\n", counter.Distinct(), m.SinkTuples)
}
