// Tollbooth: a Linear-Road-style road tolling query with a CUSTOM
// stateful operator, running on the simulated cloud with the paper's
// bottleneck-driven scaling policy and a failure injection. This is the
// template for bringing your own operator: declare managed state cells
// (seep.NewValueState / seep.NewMapState) against a seep.StateStore and
// the system handles locking, serialisation, checkpointing (full and
// incremental), backup, partitioning, scale out and recovery.
//
//	go run ./examples/tollbooth
package main

import (
	"fmt"
	"log"
	"time"

	"seep"
)

// carEvent is a vehicle passing a toll segment.
type carEvent struct {
	Segment int
	Speed   float64
}

// segTotals is the per-segment state fragment. Exported fields so the
// default gob codec can serialise it.
type segTotals struct {
	Cars  int64
	Tolls float64
}

// segmentToller is a user-written stateful operator on the managed
// keyed-state API: per road segment it tracks cars seen and collected
// tolls (congestion-priced). No mutex, no codec, no snapshot code — the
// store owns all of it.
type segmentToller struct {
	store  *seep.StateStore
	totals *seep.ValueState[segTotals]
}

func newSegmentToller() *segmentToller {
	st := seep.NewStateStore()
	return &segmentToller{
		store:  st,
		totals: seep.NewValueState[segTotals](st, "totals", nil), // nil codec = gob
	}
}

// State implements seep.Managed: the system checkpoints, partitions and
// restores everything registered against the store.
func (s *segmentToller) State() *seep.StateStore { return s.store }

// OnTuple implements seep.Operator.
func (s *segmentToller) OnTuple(_ seep.Context, t seep.Tuple, emit seep.Emitter) {
	ev, ok := t.Payload.(carEvent)
	if !ok {
		return
	}
	toll := 0.0
	if ev.Speed < 40 { // congestion pricing
		toll = 2 * (40 - ev.Speed) / 40
	}
	st := s.totals.Update(t.Key, func(cur segTotals) segTotals {
		cur.Cars++
		cur.Tolls += toll
		return cur
	})
	emit(t.Key, fmt.Sprintf("seg %d: car #%d tolled %.2f", ev.Segment, st.Cars, toll))
}

func (s *segmentToller) sums() (cars int64, tolls float64) {
	s.totals.ForEach(func(_ seep.Key, st segTotals) {
		cars += st.Cars
		tolls += st.Tolls
	})
	return cars, tolls
}

func main() {
	topo, err := seep.NewTopology().
		Source("road").
		Stateful("toller", func() seep.Operator { return newSegmentToller() }, seep.Cost(0.0006)).
		Sink("sink").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// Simulated cloud: R+SM fault tolerance, 5 s checkpoints — only one
	// in ten a full snapshot, the rest incremental deltas of the dirtied
	// segments — a small pre-allocated VM pool, and the paper's scaling
	// policy.
	job, err := seep.Simulated(
		seep.WithSeed(7),
		seep.WithFTMode(seep.FTRSM),
		seep.WithCheckpointInterval(5*time.Second),
		seep.WithIncrementalCheckpoints(10, 0.5),
		seep.WithVMPool(seep.PoolConfig{Size: 3}),
		seep.WithPolicy(seep.DefaultPolicy()),
	).Deploy(topo)
	if err != nil {
		log.Fatal(err)
	}

	// 2000 cars/s against a toller that handles ~1650/s: a bottleneck
	// the policy must resolve by splitting the operator. Traffic is
	// skewed — most cars on 50 busy segments, a long rural tail touched
	// rarely — so between full checkpoints the incremental deltas cover
	// only the dirtied slice of the state.
	if err := job.AddSource("road", seep.ConstantRate(2000),
		func(i uint64) (seep.Key, any) {
			seg := int(i % 50) // busy highways
			if i%97 == 0 {
				seg = 50 + int((i/97)%5000) // rural tail
			}
			ev := carEvent{Segment: seg, Speed: 25 + float64(i%50)}
			return seep.KeyOfString(fmt.Sprintf("segment-%04d", seg)), ev
		}); err != nil {
		log.Fatal(err)
	}
	job.Start()
	defer job.Stop()

	// Run 60 virtual seconds (the policy splits the bottleneck), then
	// kill one toller partition: recovery is just scale out with π=1.
	job.Run(60 * time.Second)
	victims := job.Instances("toller")
	if len(victims) == 0 {
		log.Fatal("no live toller to fail")
	}
	if err := job.Fail(victims[0]); err != nil {
		log.Printf("fail: %v", err)
	} else {
		fmt.Printf("t=60s: killed %v\n", victims[0])
	}
	job.Run(60 * time.Second)

	m := job.MetricsSnapshot()
	fmt.Printf("after %d virtual seconds:\n", m.ElapsedMillis/1000)
	fmt.Printf("  toller partitions: %d\n", m.Parallelism["toller"])
	for _, r := range m.Recoveries {
		kind := "scale-out"
		if r.Failure {
			kind = "recovery"
		}
		fmt.Printf("  %-9s t=%5.1fs %v -> pi=%d (%.1f s, %d tuples replayed)\n",
			kind, float64(r.StartedAt)/1000, r.Victim, r.Pi, float64(r.Duration())/1000, r.ReplayedTuples)
	}
	fmt.Printf("  checkpoints: %d full (%d B), %d incremental (%d B)\n",
		m.Checkpoints.Fulls, m.Checkpoints.FullBytes, m.Checkpoints.Deltas, m.Checkpoints.DeltaBytes)
	var cars int64
	var tolls float64
	for _, inst := range job.Instances("toller") {
		op, ok := job.OperatorOf(inst).(*segmentToller)
		if !ok {
			continue
		}
		cr, tl := op.sums()
		cars += cr
		tolls += tl
	}
	fmt.Printf("  cars tolled: %d, revenue: %.2f\n", cars, tolls)
	fmt.Printf("  latency: %s\n", m.Latency)
}
