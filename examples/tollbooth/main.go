// Tollbooth: a Linear-Road-style road tolling query with a CUSTOM
// stateful operator, running on the simulated cloud with the paper's
// bottleneck-driven scaling policy and a failure injection. This is the
// template for bringing your own operator: implement Operator plus
// SnapshotKV/RestoreKV and the system handles checkpointing, backup,
// partitioning, scale out and recovery.
//
//	go run ./examples/tollbooth
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"seep"
)

// carEvent is a vehicle passing a toll segment.
type carEvent struct {
	Segment int
	Speed   float64
}

// segmentToller is a user-written stateful operator: per road segment it
// tracks cars seen and collected tolls (congestion-priced).
type segmentToller struct {
	mu    sync.Mutex
	state map[seep.Key]*segTotals
}

type segTotals struct {
	Cars  int64
	Tolls float64
}

func newSegmentToller() *segmentToller {
	return &segmentToller{state: make(map[seep.Key]*segTotals)}
}

// OnTuple implements seep.Operator.
func (s *segmentToller) OnTuple(_ seep.Context, t seep.Tuple, emit seep.Emitter) {
	ev, ok := t.Payload.(carEvent)
	if !ok {
		return
	}
	s.mu.Lock()
	st := s.state[t.Key]
	if st == nil {
		st = &segTotals{}
		s.state[t.Key] = st
	}
	st.Cars++
	toll := 0.0
	if ev.Speed < 40 { // congestion pricing
		toll = 2 * (40 - ev.Speed) / 40
	}
	st.Tolls += toll
	cars := st.Cars
	s.mu.Unlock()
	emit(t.Key, fmt.Sprintf("seg %d: car #%d tolled %.2f", ev.Segment, cars, toll))
}

// SnapshotKV implements seep.Stateful: serialise each segment's totals.
func (s *segmentToller) SnapshotKV() map[seep.Key][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[seep.Key][]byte, len(s.state))
	for k, st := range s.state {
		out[k] = []byte(fmt.Sprintf("%d/%f", st.Cars, st.Tolls))
	}
	return out
}

// RestoreKV implements seep.Stateful.
func (s *segmentToller) RestoreKV(kv map[seep.Key][]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = make(map[seep.Key]*segTotals, len(kv))
	for k, v := range kv {
		st := &segTotals{}
		if _, err := fmt.Sscanf(string(v), "%d/%f", &st.Cars, &st.Tolls); err == nil {
			s.state[k] = st
		}
	}
}

func (s *segmentToller) totals() (cars int64, tolls float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.state {
		cars += st.Cars
		tolls += st.Tolls
	}
	return cars, tolls
}

func main() {
	topo, err := seep.NewTopology().
		Source("road").
		Stateful("toller", func() seep.Operator { return newSegmentToller() }, seep.Cost(0.0006)).
		Sink("sink").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// Simulated cloud: R+SM fault tolerance, 5 s checkpoints, a small
	// pre-allocated VM pool, and the paper's scaling policy.
	job, err := seep.Simulated(
		seep.WithSeed(7),
		seep.WithFTMode(seep.FTRSM),
		seep.WithCheckpointInterval(5*time.Second),
		seep.WithVMPool(seep.PoolConfig{Size: 3}),
		seep.WithPolicy(seep.DefaultPolicy()),
	).Deploy(topo)
	if err != nil {
		log.Fatal(err)
	}

	// 2000 cars/s against a toller that handles ~1650/s: a bottleneck
	// the policy must resolve by splitting the operator.
	if err := job.AddSource("road", seep.ConstantRate(2000),
		func(i uint64) (seep.Key, any) {
			seg := int(i % 100)
			ev := carEvent{Segment: seg, Speed: 25 + float64(i%50)}
			return seep.KeyOfString(fmt.Sprintf("segment-%03d", seg)), ev
		}); err != nil {
		log.Fatal(err)
	}
	job.Start()
	defer job.Stop()

	// Run 60 virtual seconds (the policy splits the bottleneck), then
	// kill one toller partition: recovery is just scale out with π=1.
	job.Run(60 * time.Second)
	victims := job.Instances("toller")
	if len(victims) == 0 {
		log.Fatal("no live toller to fail")
	}
	if err := job.Fail(victims[0]); err != nil {
		log.Printf("fail: %v", err)
	} else {
		fmt.Printf("t=60s: killed %v\n", victims[0])
	}
	job.Run(60 * time.Second)

	m := job.MetricsSnapshot()
	fmt.Printf("after %d virtual seconds:\n", m.ElapsedMillis/1000)
	fmt.Printf("  toller partitions: %d\n", m.Parallelism["toller"])
	for _, r := range m.Recoveries {
		kind := "scale-out"
		if r.Failure {
			kind = "recovery"
		}
		fmt.Printf("  %-9s t=%5.1fs %v -> pi=%d (%.1f s, %d tuples replayed)\n",
			kind, float64(r.StartedAt)/1000, r.Victim, r.Pi, float64(r.Duration())/1000, r.ReplayedTuples)
	}
	var cars int64
	var tolls float64
	for _, inst := range job.Instances("toller") {
		op, ok := job.OperatorOf(inst).(*segmentToller)
		if !ok {
			continue
		}
		cr, tl := op.totals()
		cars += cr
		tolls += tl
	}
	fmt.Printf("  cars tolled: %d, revenue: %.2f\n", cars, tolls)
	fmt.Printf("  latency: %s\n", m.Latency)
}
