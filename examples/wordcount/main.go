// Windowed word frequency with live scale out: the §6.2 query running on
// the live engine with a rated source; mid-run, the stateful counter is
// split into two partitions while results keep flowing.
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"log"
	"time"

	"seep"
)

func main() {
	q := seep.NewQuery()
	q.AddOp(seep.OpSpec{ID: "src", Role: seep.RoleSource})
	q.AddOp(seep.OpSpec{ID: "split", Role: seep.RoleStateless})
	q.AddOp(seep.OpSpec{ID: "count", Role: seep.RoleStateful})
	q.AddOp(seep.OpSpec{ID: "sink", Role: seep.RoleSink})
	q.Connect("src", "split")
	q.Connect("split", "count")
	q.Connect("count", "sink")

	const windowMillis = 1000 // 1 s demo window (30 s in the paper)
	factories := map[seep.OpID]seep.Factory{
		"split": func() seep.Operator { return seep.WordSplitter() },
		"count": func() seep.Operator { return seep.NewWordCounter(windowMillis) },
	}
	eng, err := seep.NewEngine(seep.EngineConfig{
		CheckpointInterval: 250 * time.Millisecond,
		TimerInterval:      100 * time.Millisecond,
	}, q, factories)
	if err != nil {
		log.Fatal(err)
	}

	// Window results arrive at the sink as WordCount payloads.
	windows := make(chan seep.WordCount, 1024)
	eng.OnSink = func(t seep.Tuple) {
		if wc, ok := t.Payload.(seep.WordCount); ok {
			select {
			case windows <- wc:
			default:
			}
		}
	}

	vocab := []string{"state", "stream", "operator", "checkpoint", "partition", "replay"}
	if err := eng.AddSource(seep.InstanceID{Op: "src", Part: 1}, 2000, func(i uint64) (seep.Key, any) {
		w := vocab[i%uint64(len(vocab))]
		return seep.KeyOfString(w), w
	}); err != nil {
		log.Fatal(err)
	}
	eng.Start()
	defer eng.Stop()

	// After ~1 s, scale the counter out to two partitions, live.
	go func() {
		time.Sleep(1200 * time.Millisecond)
		victim := eng.Manager().Instances("count")[0]
		if err := eng.ScaleOut(victim, 2); err != nil {
			log.Printf("scale out: %v", err)
			return
		}
		fmt.Printf("-- scaled out %v to %d partitions --\n", victim, eng.Manager().Parallelism("count"))
	}()

	deadline := time.After(4 * time.Second)
	seen := 0
	for {
		select {
		case wc := <-windows:
			seen++
			if seen <= 12 || seen%25 == 0 {
				fmt.Printf("window result: %-12s %d\n", wc.Word, wc.Count)
			}
		case <-deadline:
			fmt.Printf("received %d window results across %d counter partition(s); sink latency: %s\n",
				seen, eng.Manager().Parallelism("count"), eng.Latency.Summarize())
			return
		}
	}
}
