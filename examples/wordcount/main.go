// Windowed word frequency with live scale out: the §6.2 query running on
// the live runtime with a rated source; mid-run, the stateful counter is
// split into two partitions while results keep flowing.
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"log"
	"time"

	"seep"
)

func main() {
	const windowMillis = 1000 // 1 s demo window (30 s in the paper)
	topo, err := seep.NewTopology().
		Source("src").
		Stateless("split", func() seep.Operator { return seep.WordSplitter() }).
		Stateful("count", func() seep.Operator { return seep.NewWordCounter(windowMillis) }).
		Sink("sink").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	job, err := seep.Live(
		seep.WithCheckpointInterval(250*time.Millisecond),
		seep.WithTimerInterval(100*time.Millisecond),
	).Deploy(topo)
	if err != nil {
		log.Fatal(err)
	}

	// Window results arrive at the sink as WordCount payloads.
	windows := make(chan seep.WordCount, 1024)
	job.OnSink(func(t seep.Tuple) {
		if wc, ok := t.Payload.(seep.WordCount); ok {
			select {
			case windows <- wc:
			default:
			}
		}
	})

	vocab := []string{"state", "stream", "operator", "checkpoint", "partition", "replay"}
	if err := job.AddSource("src", seep.ConstantRate(2000), func(i uint64) (seep.Key, any) {
		w := vocab[i%uint64(len(vocab))]
		return seep.KeyOfString(w), w
	}); err != nil {
		log.Fatal(err)
	}
	job.Start()
	defer job.Stop()

	// After ~1 s, scale the counter out to two partitions, live.
	go func() {
		time.Sleep(1200 * time.Millisecond)
		victim := job.Instances("count")[0]
		if err := job.ScaleOut(victim, 2); err != nil {
			log.Printf("scale out: %v", err)
			return
		}
		fmt.Printf("-- scaled out %v to %d partitions --\n", victim, len(job.Instances("count")))
	}()

	deadline := time.After(4 * time.Second)
	seen := 0
	for {
		select {
		case wc := <-windows:
			seen++
			if seen <= 12 || seen%25 == 0 {
				fmt.Printf("window result: %-12s %d\n", wc.Word, wc.Count)
			}
		case <-deadline:
			m := job.MetricsSnapshot()
			fmt.Printf("received %d window results across %d counter partition(s); sink latency: %s\n",
				seen, m.Parallelism["count"], m.Latency)
			return
		}
	}
}
