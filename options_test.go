package seep

import (
	"testing"
	"time"
)

// TestUniversalOptions is the runtime half of the option/substrate
// matrix check (the static half is seep-lint's optmatrix analyzer): an
// option listed in universalOptions must not register a substrate
// restriction when applied.
func TestUniversalOptions(t *testing.T) {
	samples := map[string]Option{
		"WithBatching":               WithBatching(8, time.Millisecond),
		"WithCheckpointInterval":     WithCheckpointInterval(time.Second),
		"WithDetectDelay":            WithDetectDelay(time.Second),
		"WithElasticity":             WithElasticity(ScaleInPolicy{LowWatermark: 0.1}),
		"WithIncrementalCheckpoints": WithIncrementalCheckpoints(4, 0.5),
		"WithPolicy":                 WithPolicy(DefaultPolicy()),
		"WithRecoveryParallelism":    WithRecoveryParallelism(2),
		"WithScaleIn":                WithScaleIn(ScaleInPolicy{LowWatermark: 0.1}),
		"WithSeed":                   WithSeed(1),
		"WithTimerInterval":          WithTimerInterval(time.Second),
	}
	for _, name := range universalOptions {
		opt, ok := samples[name]
		if !ok {
			t.Errorf("universalOptions lists %s but this test has no sample for it; add one", name)
			continue
		}
		cfg := &runtimeConfig{}
		opt(cfg)
		if len(cfg.restricted) != 0 {
			t.Errorf("%s is listed in universalOptions but registered restriction %+v", name, cfg.restricted)
		}
	}
	if len(samples) != len(universalOptions) {
		t.Errorf("samples (%d) and universalOptions (%d) disagree; keep them in lockstep", len(samples), len(universalOptions))
	}
}
