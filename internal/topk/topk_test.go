package topk

import (
	"testing"

	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/sim"
	"seep/internal/stream"
)

func TestTraceSourceZipfSkew(t *testing.T) {
	gen := TraceSource(1)
	counts := make(map[string]int)
	for i := uint64(0); i < 20000; i++ {
		_, p := gen(i)
		pv, ok := p.(PageView)
		if !ok {
			t.Fatal("payload not a PageView")
		}
		counts[pv.Lang]++
	}
	// The head language dominates (Zipf) and several languages appear.
	if counts["en"] < counts["de"] {
		t.Errorf("en (%d) should dominate de (%d)", counts["en"], counts["de"])
	}
	if len(counts) < 5 {
		t.Errorf("only %d languages generated", len(counts))
	}
	if counts["en"] < 20000/4 {
		t.Errorf("head language only %d of 20000", counts["en"])
	}
}

func TestMapOperatorProjects(t *testing.T) {
	m := MapOperator()
	var gotKey stream.Key
	var gotPayload any
	m.OnTuple(operator.Context{}, stream.Tuple{Payload: PageView{Lang: "de", Page: "x", Bytes: 5}},
		func(k stream.Key, p any) { gotKey, gotPayload = k, p })
	if gotPayload != "de" {
		t.Errorf("map emitted %v", gotPayload)
	}
	if gotKey != stream.KeyOfString("de") {
		t.Error("map did not key by language")
	}
}

func TestQueryValidates(t *testing.T) {
	o := DefaultOptions()
	if err := Query(o).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndTopKOnSimulator(t *testing.T) {
	o := DefaultOptions()
	o.EmitEveryMillis = 5_000
	o.Sources = 2
	c, err := sim.NewCluster(sim.Config{Seed: 3, Mode: sim.FTRSM}, Query(o), Factories(o))
	if err != nil {
		t.Fatal(err)
	}
	for part := 1; part <= 2; part++ {
		if err := c.AddSource(plan.InstanceID{Op: "src", Part: part}, sim.ConstantRate(300), TraceSource(int64(part))); err != nil {
			t.Fatal(err)
		}
	}
	var lastRanking operator.Ranking
	c.OnSink = func(t stream.Tuple) {
		if r, ok := t.Payload.(operator.Ranking); ok {
			lastRanking = r
		}
	}
	c.RunUntil(30_000)
	if len(lastRanking) == 0 {
		t.Fatal("no ranking reached the sink")
	}
	if lastRanking[0].Item != "en" {
		t.Errorf("top language = %v, want en (Zipf head)", lastRanking[0])
	}
	for i := 1; i < len(lastRanking); i++ {
		if lastRanking[i].Count > lastRanking[i-1].Count {
			t.Fatalf("ranking not sorted: %v", lastRanking)
		}
	}
}

func TestFlowOpsWellFormed(t *testing.T) {
	ops, edges := FlowOps()
	ids := make(map[plan.OpID]bool)
	var mapStateful, reduceStateful bool
	for _, o := range ops {
		ids[o.ID] = true
		switch o.ID {
		case "map":
			mapStateful = o.Stateful
		case "reduce":
			reduceStateful = o.Stateful
		}
	}
	for _, e := range edges {
		if !ids[e.From] || !ids[e.To] {
			t.Errorf("edge %v references unknown operator", e)
		}
	}
	// The map is stateless and the reduce stateful: the restore delay on
	// stateful splits is why "the stateless map operators scale out
	// faster than the stateful reduce operators" (Fig. 8).
	if mapStateful || !reduceStateful {
		t.Errorf("map stateful=%v reduce stateful=%v", mapStateful, reduceStateful)
	}
}
