// Package topk builds the map/reduce-style top-k query of §6.1 (open
// loop workload): sources inject page-view records, a stateless map
// operator projects away unneeded fields, and a stateful reduce operator
// maintains a top-k dictionary of visited Wikipedia language versions; a
// merger aggregates partial rankings when the reducer is partitioned.
//
// Substitution (DESIGN.md): the paper replays Wikipedia page-view
// traces; we generate a synthetic trace with a Zipf-distributed language
// field, which preserves the key skew and state shape that drive the
// experiment.
package topk

import (
	"fmt"
	"math/rand"

	"seep/internal/flow"
	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/sim"
	"seep/internal/stream"
)

// PageView is one synthetic trace record.
type PageView struct {
	// Lang is the Wikipedia language version, e.g. "en".
	Lang string
	// Page and Bytes mimic the unneeded fields the map stage strips.
	Page  string
	Bytes int32
}

// Languages is the synthetic language universe, most-popular first.
var Languages = []string{
	"en", "de", "fr", "es", "ja", "ru", "it", "pt", "zh", "pl",
	"nl", "sv", "ko", "ar", "tr", "fa", "cs", "fi", "hu", "el",
}

// TraceSource generates Zipf-distributed page views.
func TraceSource(seed int64) sim.Generator {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1.0, uint64(len(Languages)-1))
	return func(i uint64) (stream.Key, any) {
		lang := Languages[zipf.Uint64()]
		pv := PageView{
			Lang:  lang,
			Page:  fmt.Sprintf("page-%d", rng.Intn(1_000_000)),
			Bytes: int32(rng.Intn(65536)),
		}
		return stream.KeyOfString(lang), pv
	}
}

// MapOperator strips unneeded fields, emitting just the language keyed by
// language (so the partitioned reducer counts each language in one
// place).
func MapOperator() operator.Operator {
	return operator.Func(func(_ operator.Context, t stream.Tuple, emit operator.Emitter) {
		pv, ok := t.Payload.(PageView)
		if !ok {
			return
		}
		emit(stream.KeyOfString(pv.Lang), pv.Lang)
	})
}

// Options shape the top-k query.
type Options struct {
	// K is the ranking depth (default 10).
	K int
	// EmitEveryMillis is the ranking period (30 s in the paper).
	EmitEveryMillis int64
	// MapCost and ReduceCost are per-tuple CPU costs.
	MapCost, ReduceCost float64
	// Sources is the number of data sources (18 in the paper).
	Sources int
}

// DefaultOptions mirror §6.1.
func DefaultOptions() Options {
	return Options{K: 10, EmitEveryMillis: 30_000, MapCost: 0.0002, ReduceCost: 0.0005, Sources: 2}
}

// Query returns the map/reduce-style query graph: src → map → reduce →
// merge → sink.
func Query(o Options) *plan.Query {
	q := plan.NewQuery()
	q.AddOp(plan.OpSpec{ID: "src", Role: plan.RoleSource, InitialParallelism: o.Sources})
	q.AddOp(plan.OpSpec{ID: "map", Role: plan.RoleStateless, CostPerTuple: o.MapCost})
	q.AddOp(plan.OpSpec{ID: "reduce", Role: plan.RoleStateful, CostPerTuple: o.ReduceCost})
	q.AddOp(plan.OpSpec{ID: "merge", Role: plan.RoleStateful, CostPerTuple: 0.0001})
	q.AddOp(plan.OpSpec{ID: "sink", Role: plan.RoleSink})
	q.Connect("src", "map")
	q.Connect("map", "reduce")
	q.Connect("reduce", "merge")
	q.Connect("merge", "sink")
	return q
}

// Factories returns operator factories for Query.
func Factories(o Options) map[plan.OpID]operator.Factory {
	k := o.K
	if k <= 0 {
		k = 10
	}
	return map[plan.OpID]operator.Factory{
		"map":    func() operator.Operator { return MapOperator() },
		"reduce": func() operator.Operator { return operator.NewTopKReducer(k, o.EmitEveryMillis) },
		"merge":  func() operator.Operator { return operator.NewTopKMerger(k) },
	}
}

// FlowOps returns the flow-level topology for the open-loop scale-out
// experiment (Fig. 8): the map operator is cheaper and stateless (scales
// out faster), the reduce operator is stateful with restore delays —
// reproducing the paper's observation that "the stateless map operators
// scale out faster than the stateful reduce operators".
func FlowOps() ([]flow.OpConfig, []flow.Edge) {
	ops := []flow.OpConfig{
		{ID: "src", Role: plan.RoleSource},
		{ID: "map", Role: plan.RoleStateless, CostPerTuple: 3.0e-5, Selectivity: 1.0},
		{ID: "reduce", Role: plan.RoleStateful, CostPerTuple: 1.5e-5, Selectivity: 0.01, Stateful: true},
		{ID: "merge", Role: plan.RoleStateful, CostPerTuple: 0.5e-5, Selectivity: 1.0, Stateful: true},
		{ID: "snk", Role: plan.RoleSink},
	}
	edges := []flow.Edge{
		{From: "src", To: "map"},
		{From: "map", To: "reduce"},
		{From: "reduce", To: "merge"},
		{From: "merge", To: "snk"},
	}
	return ops, edges
}
