package sim

import (
	"testing"

	"seep/internal/plan"
)

// TestBufferTrimBoundsGrowth: under R+SM, checkpoint acknowledgements
// trim upstream output buffers, so retained state stays bounded by
// roughly one checkpoint interval of tuples (Algorithm 1 line 4). Without
// that trim the buffers would grow with the whole stream history.
func TestBufferTrimBoundsGrowth(t *testing.T) {
	c := mustCluster(t, Config{Seed: 61, Mode: FTRSM, CheckpointIntervalMillis: 5_000})
	c.RunUntil(60_000)
	split := c.Node(plan.InstanceID{Op: "split", Part: 1})
	retained := split.outBuf.Len()
	// 500 tuples/s × 5 s interval = 2500 per interval; allow 2 intervals
	// of slack (snapshot-to-trim latency).
	if retained > 2*2500+500 {
		t.Errorf("retained %d tuples; trim is not bounding buffer growth", retained)
	}
	if retained == 0 {
		t.Error("buffer empty: either no buffering or over-trimming")
	}
	src := c.Node(plan.InstanceID{Op: "src", Part: 1})
	if src.outBuf.Len() > 2*2500+500 {
		t.Errorf("source retained %d tuples", src.outBuf.Len())
	}
}

// TestWindowTrimBoundsGrowthUB: upstream backup retains only the operator
// window (state older than the window can never be needed, §6.2).
func TestWindowTrimBoundsGrowthUB(t *testing.T) {
	c := mustCluster(t, Config{Seed: 67, Mode: FTUpstreamBackup, WindowMillis: 10_000})
	c.RunUntil(60_000)
	split := c.Node(plan.InstanceID{Op: "split", Part: 1})
	// 500 tuples/s × 10 s window = 5000, plus one trim period of slack.
	if n := split.outBuf.Len(); n > 5000+1000 {
		t.Errorf("UB retained %d tuples beyond the window", n)
	}
}

// TestNoBufferingWithoutFT: with fault tolerance disabled nothing is
// retained (the zero-overhead baseline of Fig. 14).
func TestNoBufferingWithoutFT(t *testing.T) {
	c := mustCluster(t, Config{Seed: 71, Mode: FTNone})
	c.RunUntil(20_000)
	split := c.Node(plan.InstanceID{Op: "split", Part: 1})
	if n := split.outBuf.Len(); n != 0 {
		t.Errorf("FTNone retained %d tuples", n)
	}
	if c.Manager().Backups().Len() != 0 {
		t.Errorf("FTNone stored %d backups", c.Manager().Backups().Len())
	}
}

// TestRoutingAlwaysCoversKeySpace: after an arbitrary sequence of scale
// outs and recoveries, the routing for every operator still tiles the
// full key space and targets only live-or-pending instances.
func TestRoutingAlwaysCoversKeySpace(t *testing.T) {
	c := mustCluster(t, Config{
		Seed: 73, Mode: FTRSM, CheckpointIntervalMillis: 5_000,
		Pool: PoolConfig{Size: 6},
	})
	c.Sim().At(15_000, func() {
		_ = c.ScaleOut(plan.InstanceID{Op: "count", Part: 1}, 3)
	})
	c.Sim().At(40_000, func() {
		if live := c.LiveInstances("count"); len(live) > 0 {
			_ = c.FailInstance(live[0])
		}
	})
	c.Sim().At(60_000, func() {
		if live := c.LiveInstances("count"); len(live) > 1 {
			_ = c.ScaleOut(live[1], 2)
		}
	})
	c.RunUntil(100_000)

	r := c.Manager().Routing("count")
	entries := r.Entries()
	if entries[0].Range.Lo != 0 {
		t.Errorf("routing does not start at 0: %v", entries[0])
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Range.Lo != entries[i-1].Range.Hi+1 {
			t.Errorf("routing gap between %v and %v", entries[i-1], entries[i])
		}
	}
	graphInsts := make(map[plan.InstanceID]bool)
	for _, inst := range c.Manager().Instances("count") {
		graphInsts[inst] = true
	}
	for _, e := range entries {
		if !graphInsts[e.Target] {
			t.Errorf("routing targets non-graph instance %v", e.Target)
		}
	}
	// The query is still producing results at the end.
	before := c.SinkCount.Value()
	c.RunUntil(110_000)
	if c.SinkCount.Value() <= before {
		t.Error("query stopped producing after churn")
	}
}
