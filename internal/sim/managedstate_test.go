package sim

import (
	"math"
	"testing"

	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

// sumQuery is a minimal managed-state pipeline: source → keyed sum →
// sink, with per-key float accumulators in a managed cell.
func sumQuery() *plan.Query {
	q := plan.NewQuery()
	q.AddOp(plan.OpSpec{ID: "src", Role: plan.RoleSource})
	q.AddOp(plan.OpSpec{ID: "sum", Role: plan.RoleStateful, CostPerTuple: 0.0004})
	q.AddOp(plan.OpSpec{ID: "sink", Role: plan.RoleSink})
	q.Connect("src", "sum")
	q.Connect("sum", "sink")
	return q
}

func sumFactories() map[plan.OpID]operator.Factory {
	return map[plan.OpID]operator.Factory{
		"sum": func() operator.Operator {
			return operator.NewKeyedSum(0, func(p any) (float64, bool) {
				v, ok := p.(float64)
				return v, ok
			})
		},
	}
}

// sumGen spreads tuples over nKeys keys with a key-dependent payload, so
// lost or double-counted tuples shift per-key sums detectably.
func sumGen(nKeys int) Generator {
	return func(i uint64) (stream.Key, any) {
		k := stream.Key(stream.Mix64(i % uint64(nKeys)))
		return k, float64(i%7) + 0.5
	}
}

// perKeySums collects the accumulator of every key across the live sum
// partitions.
func perKeySums(c *Cluster) map[stream.Key]float64 {
	out := make(map[stream.Key]float64)
	for _, inst := range c.Manager().Instances("sum") {
		n := c.Node(inst)
		if n == nil {
			continue
		}
		ks := n.op.(*operator.KeyedSum)
		for _, k := range ks.State().Keys() {
			out[k] += ks.Sum(k)
		}
	}
	return out
}

// TestManagedStateScaleOutIntegrity partitions a managed-state operator
// mid-stream and asserts per-key results are identical to an
// unpartitioned run: no key lost, none double-counted. This is the
// managed-state API carrying Algorithm 2's partition primitive
// end-to-end.
func TestManagedStateScaleOutIntegrity(t *testing.T) {
	run := func(scale bool) map[stream.Key]float64 {
		c, err := NewCluster(Config{Seed: 21, Mode: FTRSM, CheckpointIntervalMillis: 5_000}, sumQuery(), sumFactories())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddSource(plan.InstanceID{Op: "src", Part: 1}, ConstantRate(800), sumGen(64)); err != nil {
			t.Fatal(err)
		}
		if scale {
			c.Sim().At(20_000, func() {
				if err := c.ScaleOut(plan.InstanceID{Op: "sum", Part: 1}, 2); err != nil {
					t.Error(err)
				}
			})
		}
		c.RunUntil(50_000)
		if scale {
			if got := c.Manager().Parallelism("sum"); got != 2 {
				t.Fatalf("parallelism = %d, want 2", got)
			}
		}
		return perKeySums(c)
	}
	want := run(false)
	got := run(true)
	if len(got) != len(want) {
		t.Fatalf("distinct keys: got %d, want %d", len(got), len(want))
	}
	for k, w := range want {
		if math.Abs(got[k]-w) > 1e-9 {
			t.Errorf("sum[%d] = %v after scale out, want %v", k, got[k], w)
		}
	}
}

// TestManagedStateScaleInIntegrity continues past a scale out with a
// scale in (merge, §3.3): after splitting and re-merging mid-stream the
// per-key sums still match the undisturbed run.
func TestManagedStateScaleInIntegrity(t *testing.T) {
	run := func(elastic bool) map[stream.Key]float64 {
		// Pool large enough for a split (2 VMs) followed by a merge (1)
		// without waiting out the 90 s refill delay.
		c, err := NewCluster(Config{
			Seed: 23, Mode: FTRSM, CheckpointIntervalMillis: 5_000,
			Pool: PoolConfig{Size: 4},
		}, sumQuery(), sumFactories())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddSource(plan.InstanceID{Op: "src", Part: 1}, ConstantRate(800), sumGen(64)); err != nil {
			t.Fatal(err)
		}
		if elastic {
			c.Sim().At(15_000, func() {
				if err := c.ScaleOut(plan.InstanceID{Op: "sum", Part: 1}, 2); err != nil {
					t.Error(err)
				}
			})
			c.Sim().At(35_000, func() {
				insts := c.LiveInstances("sum")
				if len(insts) != 2 {
					t.Errorf("pre-merge instances = %v", insts)
					return
				}
				if err := c.ScaleIn(insts); err != nil {
					t.Error(err)
				}
			})
		}
		c.RunUntil(60_000)
		if elastic {
			if got := c.Manager().Parallelism("sum"); got != 1 {
				t.Fatalf("parallelism after merge = %d, want 1", got)
			}
		}
		return perKeySums(c)
	}
	want := run(false)
	got := run(true)
	if len(got) != len(want) {
		t.Fatalf("distinct keys: got %d, want %d", len(got), len(want))
	}
	for k, w := range want {
		if math.Abs(got[k]-w) > 1e-9 {
			t.Errorf("sum[%d] = %v after split+merge, want %v", k, got[k], w)
		}
	}
}

// TestSimIncrementalCheckpointRecovery runs the sim with incremental
// checkpoints on: deltas must actually ship (and be cheaper than fulls),
// and recovery from the folded backup must reconstruct exact state.
func TestSimIncrementalCheckpointRecovery(t *testing.T) {
	run := func(delta state.DeltaPolicy, fail bool) (map[stream.Key]float64, *Cluster) {
		c, err := NewCluster(Config{
			Seed: 31, Mode: FTRSM,
			CheckpointIntervalMillis: 2_000,
			Delta:                    delta,
		}, sumQuery(), sumFactories())
		if err != nil {
			t.Fatal(err)
		}
		// Prefill a large keyspace so per-interval churn (64 hot keys)
		// is a small fraction of the state — the workload incremental
		// checkpoints exist for.
		ks := c.OperatorOf(plan.InstanceID{Op: "sum", Part: 1}).(*operator.KeyedSum)
		drop := func(stream.Key, any) {}
		for i := 0; i < 5_000; i++ {
			ks.OnTuple(operator.Context{}, stream.Tuple{
				Key:     stream.Key(stream.Mix64(1_000_000 + uint64(i))),
				Payload: 1.0,
			}, drop)
		}
		if err := c.AddSource(plan.InstanceID{Op: "src", Part: 1}, ConstantRate(800), sumGen(64)); err != nil {
			t.Fatal(err)
		}
		if fail {
			c.Sim().At(30_000, func() {
				if err := c.FailInstance(plan.InstanceID{Op: "sum", Part: 1}); err != nil {
					t.Error(err)
				}
			})
		}
		c.RunUntil(60_000)
		return perKeySums(c), c
	}
	policy := state.DeltaPolicy{FullEvery: 5, MaxDeltaFraction: 0.5}
	want, _ := run(state.DeltaPolicy{}, true)
	got, c := run(policy, true)

	ship := c.Manager().Backups().ShipStats()
	if ship.Deltas == 0 {
		t.Fatalf("no incremental checkpoints shipped: %+v", ship)
	}
	if len(c.Recoveries()) != 1 {
		t.Fatalf("recoveries = %+v", c.Recoveries())
	}
	if errs := c.RecoveryFailures(); len(errs) != 0 {
		t.Fatalf("recovery failures: %v", errs)
	}
	avgDelta := float64(ship.DeltaBytes) / float64(ship.Deltas)
	avgFull := float64(ship.FullBytes) / float64(ship.Fulls)
	if avgDelta >= avgFull {
		t.Errorf("avg delta %f bytes not smaller than avg full %f bytes", avgDelta, avgFull)
	}
	// Recovery from folded (base + deltas) backups yields the same
	// per-key state as recovery from full checkpoints.
	if len(got) != len(want) {
		t.Fatalf("distinct keys: got %d, want %d", len(got), len(want))
	}
	for k, w := range want {
		if math.Abs(got[k]-w) > 1e-9 {
			t.Errorf("sum[%d] = %v with incremental checkpoints, want %v", k, got[k], w)
		}
	}
}
