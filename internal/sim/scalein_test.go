package sim

import (
	"testing"

	"seep/internal/plan"
)

func TestClusterScaleInMergesState(t *testing.T) {
	c := mustCluster(t, Config{
		Seed: 43, Mode: FTRSM, CheckpointIntervalMillis: 5_000,
		// A larger pool: the scale-out consumes two pooled VMs and raw
		// provisioning takes 90 virtual seconds.
		Pool: PoolConfig{Size: 4},
	})
	// Scale out to 2 partitions, then merge them back.
	c.Sim().At(15_000, func() {
		_ = c.ScaleOut(plan.InstanceID{Op: "count", Part: 1}, 2)
	})
	c.Sim().At(40_000, func() {
		live := c.LiveInstances("count")
		if len(live) != 2 {
			t.Errorf("expected 2 live partitions before scale in, got %v", live)
			return
		}
		if err := c.ScaleIn(live); err != nil {
			t.Errorf("scale in: %v", err)
		}
	})
	c.RunUntil(80_000)

	live := c.LiveInstances("count")
	if len(live) != 1 {
		t.Fatalf("after scale in: %v", live)
	}
	// All 50 words are again tracked by the single merged partition.
	counts := totalCounts(c)
	if len(counts) != 50 {
		t.Errorf("distinct words after merge = %d, want 50", len(counts))
	}
	// The merged instance owns the full key space.
	r := c.Manager().Routing("count")
	if kr, ok := r.RangeOf(live[0]); !ok || kr.Lo != 0 {
		t.Errorf("merged range = %v, %v", kr, ok)
	}
	// Tuples keep flowing after the merge.
	if c.SinkCount.Value() == 0 {
		t.Error("sink starved")
	}
}

func TestClusterScaleInGuards(t *testing.T) {
	c := mustCluster(t, Config{Seed: 47, Mode: FTRSM})
	if err := c.ScaleIn([]plan.InstanceID{{Op: "count", Part: 9}, {Op: "count", Part: 10}}); err == nil {
		t.Error("scale in of unknown instances accepted")
	}
}

// TestClusterBackupHostFailure exercises the §4.3 discussion: the VM
// storing an operator's checkpoint fails first, destroying the backup;
// when the operator itself then fails before re-checkpointing, the
// system must still make progress (restarting from empty state is the
// only option for a passive scheme) rather than hang.
func TestClusterBackupHostFailure(t *testing.T) {
	c := mustCluster(t, Config{Seed: 53, Mode: FTRSM, CheckpointIntervalMillis: 10_000})
	victim := plan.InstanceID{Op: "count", Part: 1}
	c.Sim().At(25_000, func() {
		// The splitter hosts the counter's backups (it is the only
		// upstream operator).
		host, err := c.Manager().BackupTarget(victim)
		if err != nil {
			t.Error(err)
			return
		}
		if err := c.FailInstance(host); err != nil {
			t.Error(err)
		}
		// The backup died with its host.
		if _, _, ok := c.Manager().Backups().Latest(victim); ok {
			t.Error("backup survived host failure")
		}
	})
	// Fail the counter before the next periodic checkpoint replaces the
	// lost backup (host failed at 25 s, next checkpoint 30 s).
	c.Sim().At(27_000, func() {
		_ = c.FailInstance(victim)
	})
	c.RunUntil(90_000)

	recs := c.Recoveries()
	if len(recs) != 2 {
		t.Fatalf("expected 2 recoveries (host + operator), got %+v", recs)
	}
	// Both logical operators are live again and processing.
	if len(c.LiveInstances("split")) != 1 || len(c.LiveInstances("count")) != 1 {
		t.Errorf("live: split=%v count=%v", c.LiveInstances("split"), c.LiveInstances("count"))
	}
	processedAfter := c.Node(c.LiveInstances("count")[0]).processed
	if processedAfter == 0 {
		t.Error("recovered counter processed nothing")
	}
}

// TestClusterRepeatedFailures injects several failures in sequence; the
// system must recover each time and keep exactly the execution-graph
// invariants (one live instance, full key-space routing).
func TestClusterRepeatedFailures(t *testing.T) {
	c := mustCluster(t, Config{Seed: 59, Mode: FTRSM, CheckpointIntervalMillis: 5_000})
	for _, at := range []Millis{20_000, 50_000, 80_000} {
		c.Sim().At(at, func() {
			live := c.LiveInstances("count")
			if len(live) == 1 {
				_ = c.FailInstance(live[0])
			}
		})
	}
	c.RunUntil(120_000)
	recs := c.Recoveries()
	if len(recs) != 3 {
		t.Fatalf("recoveries = %d, want 3", len(recs))
	}
	live := c.LiveInstances("count")
	if len(live) != 1 {
		t.Fatalf("live = %v", live)
	}
	counts := totalCounts(c)
	if len(counts) != 50 {
		t.Errorf("distinct words after 3 failures = %d", len(counts))
	}
}
