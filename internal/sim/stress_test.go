package sim

import (
	"math/rand"
	"testing"

	"seep/internal/plan"
)

// TestClusterRandomChurn subjects the cluster to a random sequence of
// failures, scale outs and scale ins across several seeds, then checks
// the global invariants: the execution graph, node table and routing
// agree; routing tiles the key space; the query still makes progress;
// and no word was lost from the counter's keyed state (each word's key
// lives in exactly one partition).
func TestClusterRandomChurn(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(string(rune('a'+seed)), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c := mustCluster(t, Config{
				Seed: seed, Mode: FTRSM,
				CheckpointIntervalMillis: 5_000,
				Pool:                     PoolConfig{Size: 8},
			})
			// Schedule 8 random operations between t=15s and t=120s.
			for i := 0; i < 8; i++ {
				at := Millis(15_000 + rng.Int63n(105_000))
				op := rng.Intn(3)
				c.Sim().At(at, func() {
					live := c.LiveInstances("count")
					if len(live) == 0 {
						return
					}
					switch op {
					case 0: // fail a random partition
						_ = c.FailInstance(live[rng.Intn(len(live))])
					case 1: // split a random partition
						if len(live) < 6 {
							_ = c.ScaleOut(live[rng.Intn(len(live))], 2)
						}
					case 2: // merge an adjacent pair
						if len(live) >= 2 {
							if pair := c.adjacentPair("count"); pair != nil {
								_ = c.ScaleIn(pair)
							}
						}
					}
				})
			}
			// Generous tail so every churn operation completes.
			c.RunUntil(300_000)

			// Invariant: routing tiles the key space and targets graph
			// instances only.
			r := c.Manager().Routing("count")
			entries := r.Entries()
			if entries[0].Range.Lo != 0 {
				t.Errorf("seed %d: routing starts at %d", seed, entries[0].Range.Lo)
			}
			for i := 1; i < len(entries); i++ {
				if entries[i].Range.Lo != entries[i-1].Range.Hi+1 {
					t.Errorf("seed %d: routing gap at %d", seed, i)
				}
			}
			graph := make(map[plan.InstanceID]bool)
			for _, inst := range c.Manager().Instances("count") {
				graph[inst] = true
			}
			for _, e := range entries {
				if !graph[e.Target] {
					t.Errorf("seed %d: routing targets stale instance %v", seed, e.Target)
				}
			}

			// Invariant: all 50 distinct words survive, each in exactly
			// the partition owning its key.
			counts := totalCounts(c)
			if len(counts) != 50 {
				t.Errorf("seed %d: %d distinct words after churn, want 50", seed, len(counts))
			}

			// Invariant: the query keeps producing.
			before := c.SinkCount.Value()
			c.RunUntil(310_000)
			if c.SinkCount.Value() <= before {
				t.Errorf("seed %d: query stalled after churn", seed)
			}
		})
	}
}
