package sim

import (
	"fmt"
)

// VM models one virtual machine: a single-core CPU with a capacity in
// abstract cost units per second (the paper's small EC2 instances have
// "1 EC2 compute unit"; we normalise that to capacity 1.0). Work is
// executed in FIFO order; the VM tracks when it will next be idle and how
// much CPU time it has consumed, which feeds the utilisation reports of
// the scaling policy (§5.1).
type VM struct {
	// ID is unique within a cluster.
	ID int
	// Capacity is CPU cost units per second (1.0 = one EC2 compute unit).
	Capacity float64

	sim       *Sim
	busyUntil Millis
	failed    bool
	// busyAccum accumulates CPU busy milliseconds since the last report
	// window reset.
	busyAccum Millis
	lastReset Millis
	// frac carries sub-millisecond work between Exec calls so that
	// high-rate streams of cheap tuples consume the right total CPU time
	// without breaking determinism.
	frac float64
}

// NewVM creates a VM attached to the simulator.
func NewVM(s *Sim, id int, capacity float64) *VM {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: VM %d with capacity %v", id, capacity))
	}
	return &VM{ID: id, Capacity: capacity, sim: s}
}

// Failed reports whether the VM has crashed.
func (vm *VM) Failed() bool { return vm.failed }

// Fail crash-stops the VM: queued work is lost and Exec becomes a no-op.
func (vm *VM) Fail() { vm.failed = true }

// Exec schedules work costing `cost` units, calling done when it
// completes. Work is serialised on the VM: it starts when the VM becomes
// idle. Returns the scheduled completion time, or -1 if the VM failed.
func (vm *VM) Exec(cost float64, done func()) Millis {
	if vm.failed {
		return -1
	}
	start := vm.busyUntil
	if now := vm.sim.Now(); start < now {
		start = now
	}
	dur := vm.durationFor(cost)
	finish := start + dur
	vm.busyUntil = finish
	vm.busyAccum += dur
	vm.sim.At(finish, func() {
		if vm.failed {
			return
		}
		done()
	})
	return finish
}

func (vm *VM) durationFor(cost float64) Millis {
	if cost <= 0 {
		return 0
	}
	exact := cost / vm.Capacity * 1000 // ms, possibly fractional
	whole := Millis(exact)
	vm.frac += exact - float64(whole)
	if vm.frac >= 1 {
		extra := Millis(vm.frac)
		whole += extra
		vm.frac -= float64(extra)
	}
	return whole
}

// Utilization returns the fraction of CPU time consumed since the last
// ResetWindow, relative to elapsed virtual time. Work already accepted
// but finishing in the future counts as load, so a saturated VM reports
// ≥ 1 exactly when its queue is growing — mirroring the CPU reports of
// §5.1, which include time the operator would have consumed had it not
// been queued ("stolen" time accounting).
func (vm *VM) Utilization() float64 {
	elapsed := vm.sim.Now() - vm.lastReset
	if elapsed <= 0 {
		return 0
	}
	busy := vm.busyAccum
	if pending := vm.busyUntil - vm.sim.Now(); pending > 0 {
		busy += pending
	}
	return float64(busy) / float64(elapsed)
}

// ResetWindow starts a new utilisation report window.
func (vm *VM) ResetWindow() {
	vm.busyAccum = 0
	vm.lastReset = vm.sim.Now()
}

// QueueDelay returns how long newly submitted work would wait before
// starting (the current backlog depth in time units).
func (vm *VM) QueueDelay() Millis {
	d := vm.busyUntil - vm.sim.Now()
	if d < 0 {
		return 0
	}
	return d
}
