// Package sim is the cluster substrate that replaces the paper's Amazon
// EC2 deployment: a deterministic discrete-event simulator with a virtual
// clock, a VM model with CPU capacity, a pre-allocated VM pool that masks
// IaaS provisioning delays (§5.2), crash-stop failure injection, and a
// tuple-level dataflow runtime that executes real operator code under
// virtual time.
//
// Substitution note (see DESIGN.md): the paper's experimental phenomena —
// bottleneck formation at a CPU threshold, checkpoint CPU cost delaying
// tuple processing, provisioning delays, recovery replay time — are all
// functions of rates, costs and delays. The simulator models exactly
// those quantities, so experiment *shapes* are preserved while absolute
// throughput numbers reflect simulated (not EC2) hardware.
package sim

import (
	"container/heap"
	"math/rand"
)

// Millis is virtual time in milliseconds since simulation start.
type Millis = int64

// event is a scheduled callback.
type event struct {
	at  Millis
	seq uint64 // tie-breaker: FIFO among equal timestamps
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is the discrete-event simulation kernel. It is single-threaded:
// all entity code runs inside event callbacks, so entities need no
// internal locking. Determinism: with a fixed seed and identical
// schedules, runs are bit-for-bit reproducible.
type Sim struct {
	now    Millis
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	halted bool
}

// New returns a simulator seeded for deterministic pseudo-randomness.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Millis { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn at absolute virtual time t. Scheduling in the past
// executes at the current time (events cannot rewind the clock).
func (s *Sim) At(t Millis, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d milliseconds from now.
func (s *Sim) After(d Millis, fn func()) { s.At(s.now+d, fn) }

// Every schedules fn every period milliseconds, starting one period from
// now, until the simulation halts or fn returns false.
func (s *Sim) Every(period Millis, fn func() bool) {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	var tick func()
	tick = func() {
		if !fn() {
			return
		}
		s.After(period, tick)
	}
	s.After(period, tick)
}

// Step executes the next event, advancing the clock. It reports whether
// an event was executed.
func (s *Sim) Step() bool {
	if s.halted || len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.at
	e.fn()
	return true
}

// RunUntil executes events until the clock would pass t or no events
// remain. The clock is left at min(t, last event time ≥ current).
func (s *Sim) RunUntil(t Millis) {
	for !s.halted && len(s.events) > 0 && s.events[0].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Run executes all remaining events.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// Halt stops the simulation: no further events execute.
func (s *Sim) Halt() { s.halted = true }

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return len(s.events) }
