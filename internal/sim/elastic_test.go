package sim

import (
	"testing"

	"seep/internal/control"
	"seep/internal/plan"
)

// TestClusterElasticScaleOutThenIn drives a load pulse: the rate rises
// past one VM's capacity (forcing scale out) and then falls back, after
// which the elastic policy merges the partitions again — the "truly
// elastic deployments" the paper names as future work (§8).
func TestClusterElasticScaleOutThenIn(t *testing.T) {
	q := wordQuery()
	c, err := NewCluster(Config{
		Seed: 79, Mode: FTRSM,
		CheckpointIntervalMillis: 5_000,
		Pool:                     PoolConfig{Size: 4},
	}, q, wordFactories())
	if err != nil {
		t.Fatal(err)
	}
	// Pulse: 3000 t/s (1.5x one VM) for 100 s, then 400 t/s.
	rate := func(now Millis) float64 {
		if now < 100_000 {
			return 3000
		}
		return 400
	}
	if err := c.AddSource(plan.InstanceID{Op: "src", Part: 1}, rate, vocabGen(100)); err != nil {
		t.Fatal(err)
	}
	c.EnablePolicy(control.DefaultPolicy())
	c.EnableElasticity(control.DefaultScaleInPolicy())

	c.RunUntil(100_000)
	peak := c.Manager().Parallelism("count")
	if peak < 2 {
		t.Fatalf("no scale out under the pulse: parallelism = %d", peak)
	}

	c.RunUntil(400_000)
	settled := c.Manager().Parallelism("count")
	if settled >= peak {
		t.Errorf("no scale in after the pulse: %d -> %d partitions", peak, settled)
	}
	// Word counts survive the round trip: every word still tracked.
	counts := totalCounts(c)
	if len(counts) != 100 {
		t.Errorf("distinct words after elastic cycle = %d, want 100", len(counts))
	}
	// Still processing.
	before := c.SinkCount.Value()
	c.RunUntil(410_000)
	if c.SinkCount.Value() <= before {
		t.Error("query stalled after elastic cycle")
	}
}
