package sim

import (
	"fmt"
	"sort"

	"seep/internal/control"
	"seep/internal/core"
	"seep/internal/metrics"
	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

// FTMode selects the fault-tolerance mechanism under evaluation (§6.2).
type FTMode int

const (
	// FTNone disables buffering and checkpointing (baseline for
	// measuring state-management overhead, Fig. 14).
	FTNone FTMode = iota
	// FTRSM is the paper's recovery using state management: periodic
	// checkpoints backed up to upstream VMs plus buffer replay.
	FTRSM
	// FTUpstreamBackup buffers tuples at every operator and re-processes
	// them to rebuild state after a failure (Balazinska et al.).
	FTUpstreamBackup
	// FTSourceReplay buffers tuples only at sources and replays them
	// through the whole pipeline (Storm-style).
	FTSourceReplay
)

// String renders the mode.
func (m FTMode) String() string {
	switch m {
	case FTNone:
		return "none"
	case FTRSM:
		return "r+sm"
	case FTUpstreamBackup:
		return "ub"
	case FTSourceReplay:
		return "sr"
	}
	return fmt.Sprintf("FTMode(%d)", int(m))
}

// Config parameterises a simulated cluster.
type Config struct {
	// Seed drives all pseudo-randomness (deterministic runs).
	Seed int64
	// Mode selects the fault-tolerance mechanism.
	Mode FTMode
	// CheckpointIntervalMillis is c, the checkpointing interval (§3.2).
	// Only used in FTRSM mode. Default 5000.
	CheckpointIntervalMillis Millis
	// WindowMillis bounds how long UB/SR retain tuples: state depends
	// only on the last window, so older tuples are discarded. Default
	// 30000 (the 30 s window of the §6.2 query).
	WindowMillis Millis
	// NetDelayMillis is the one-way network latency between VMs.
	// Default 1.
	NetDelayMillis Millis
	// TimerMillis is the period for TimeDriven operator ticks. Default
	// 1000.
	TimerMillis Millis
	// DetectDelayMillis is the failure-detection delay (heartbeat
	// timeout). Default 500.
	DetectDelayMillis Millis
	// CheckpointCostPerMB is the CPU cost (in cost units, i.e. seconds
	// on a capacity-1 VM) to serialise and ship one MB of state.
	// Default 0.25.
	CheckpointCostPerMB float64
	// RestoreCostPerMB is the CPU cost per MB to deserialise state on
	// the new VM. Default 0.15.
	RestoreCostPerMB float64
	// CoordFixedMillis is the fixed coordination cost per scale-out /
	// recovery beyond VM handoff (state partitioning bookkeeping,
	// operator deployment). Default 300 per new instance.
	CoordFixedMillis Millis
	// PartitionFixedMillis is the extra coordination cost per ADDITIONAL
	// partition when restoring with π > 1 (splitting the checkpoint at
	// the backup host, wiring π streams). It is why parallel recovery
	// loses at short checkpointing intervals (Fig. 13). Default 800.
	PartitionFixedMillis Millis
	// Pool configures the pre-allocated VM pool (§5.2).
	Pool PoolConfig
	// VMCapacity is the CPU capacity of statically deployed VMs.
	// Default 1.0.
	VMCapacity float64
	// RecoveryParallelism is π used when recovering failed operators
	// (1 = serial recovery; ≥2 = parallel recovery, §4.2). Default 1.
	RecoveryParallelism int
	// Delta enables incremental checkpoints for managed-state operators
	// (§3.2): between full checkpoints only the dirtied keys are shipped
	// and folded into the backup at the backup host. Zero value
	// disables. Only meaningful in FTRSM mode.
	Delta state.DeltaPolicy
}

func (c Config) withDefaults() Config {
	if c.CheckpointIntervalMillis == 0 {
		c.CheckpointIntervalMillis = 5_000
	}
	if c.WindowMillis == 0 {
		c.WindowMillis = 30_000
	}
	if c.NetDelayMillis == 0 {
		c.NetDelayMillis = 1
	}
	if c.TimerMillis == 0 {
		c.TimerMillis = 1_000
	}
	if c.DetectDelayMillis == 0 {
		c.DetectDelayMillis = 500
	}
	if c.CheckpointCostPerMB == 0 {
		c.CheckpointCostPerMB = 0.25
	}
	if c.RestoreCostPerMB == 0 {
		c.RestoreCostPerMB = 0.15
	}
	if c.CoordFixedMillis == 0 {
		c.CoordFixedMillis = 300
	}
	if c.PartitionFixedMillis == 0 {
		c.PartitionFixedMillis = 800
	}
	if c.VMCapacity == 0 {
		c.VMCapacity = 1.0
	}
	if c.RecoveryParallelism == 0 {
		c.RecoveryParallelism = 1
	}
	if c.Pool.Capacity == 0 {
		c.Pool.Capacity = c.VMCapacity
	}
	if c.Pool.Size == 0 {
		c.Pool.Size = 2
	}
	return c
}

// RecoveryRecord documents one completed recovery or scale out.
type RecoveryRecord struct {
	// Victim is the replaced instance.
	Victim plan.InstanceID
	// Pi is the parallelism of the replacement.
	Pi int
	// Failure reports whether this was failure recovery (vs scale out).
	Failure bool
	// StartedAt is when the failure happened (or scale out was decided).
	StartedAt Millis
	// CompletedAt is when state was fully restored and all buffered
	// tuples replayed.
	CompletedAt Millis
	// ReplayedTuples is how many tuples were replayed.
	ReplayedTuples int
	// Merge reports a scale-in transition: Victim is the first of the
	// merged siblings and Pi is 1 (several instances collapsed to one).
	Merge bool
}

// Duration returns the recovery time.
func (r RecoveryRecord) Duration() Millis { return r.CompletedAt - r.StartedAt }

// RateFunc gives a source's emission rate in tuples/second at virtual
// time t.
type RateFunc func(t Millis) float64

// ConstantRate returns a fixed-rate profile.
func ConstantRate(tps float64) RateFunc { return func(Millis) float64 { return tps } }

// Generator produces the payload and key for the i-th tuple of a source.
type Generator func(i uint64) (stream.Key, any)

// source drives tuple injection for one source instance.
type source struct {
	node    *Node
	rate    RateFunc
	gen     Generator
	emitted uint64
	paused  bool
	// carry accumulates fractional tuples between ticks.
	carry float64
}

// Cluster simulates a cloud deployment of one query: VMs host operator
// instances, a query manager plans transitions, a VM pool masks
// provisioning, and the integrated fault-tolerant scale-out algorithm
// (Algorithm 3) handles both bottlenecks and failures.
type Cluster struct {
	sim       *Sim
	cfg       Config
	mgr       *core.Manager
	pool      *Pool
	factories map[plan.OpID]operator.Factory
	nodes     map[plan.InstanceID]*Node
	sources   map[plan.InstanceID]*source
	// routings caches the current routing per logical operator for the
	// emit fast path; the manager owns the authoritative copy.
	routings map[plan.OpID]*state.Routing
	nextVMID int

	// scalingInProgress guards against double-triggering on one victim.
	scalingInProgress map[plan.InstanceID]bool
	// legacyOwner maps a retired merge victim to the merge product
	// carrying its legacy output buffer, so acknowledgement trims
	// addressed to the old identity still land (the chain is chased: a
	// product may itself have been merged or replaced).
	legacyOwner map[plan.InstanceID]plan.InstanceID
	// merges counts completed scale-in transitions.
	merges uint64

	detector *control.Detector
	// shrinker, when set, drives elastic scale in (merging under-used
	// partitions) — the paper's stated future work (§8).
	shrinker *control.ScaleInDetector

	// Measurements.
	Latency           *metrics.Histogram
	SinkCount         metrics.Counter
	duplicatesDropped metrics.Counter
	VMsInUse          *metrics.TimeSeries
	ThroughputTS      *metrics.TimeSeries
	recoveries        []RecoveryRecord
	recoveryFailures  []string
	// OnSink, when set, observes every tuple arriving at a sink.
	OnSink func(t stream.Tuple)

	// sinkSinceLast counts sink arrivals for throughput sampling.
	sinkSinceLast uint64
}

// NewCluster deploys a query onto a simulated cluster. factories supplies
// the operator implementation for every non-source, non-sink logical
// operator.
func NewCluster(cfg Config, q *plan.Query, factories map[plan.OpID]operator.Factory) (*Cluster, error) {
	cfg = cfg.withDefaults()
	mgr, err := core.NewManager(q)
	if err != nil {
		return nil, err
	}
	s := New(cfg.Seed)
	c := &Cluster{
		sim:               s,
		cfg:               cfg,
		mgr:               mgr,
		pool:              NewPool(s, cfg.Pool),
		factories:         factories,
		nodes:             make(map[plan.InstanceID]*Node),
		sources:           make(map[plan.InstanceID]*source),
		routings:          make(map[plan.OpID]*state.Routing),
		scalingInProgress: make(map[plan.InstanceID]bool),
		legacyOwner:       make(map[plan.InstanceID]plan.InstanceID),
		Latency:           &metrics.Histogram{},
		VMsInUse:          &metrics.TimeSeries{},
		ThroughputTS:      &metrics.TimeSeries{},
	}
	for _, opID := range q.Ops() {
		c.routings[opID] = mgr.Routing(opID)
		spec := q.Op(opID)
		for _, inst := range mgr.Instances(opID) {
			var op operator.Operator
			if spec.Role != plan.RoleSource && spec.Role != plan.RoleSink {
				f, ok := factories[opID]
				if !ok {
					return nil, fmt.Errorf("sim: no factory for operator %q", opID)
				}
				op = f()
			}
			c.nextVMID++
			vm := NewVM(s, 1000+c.nextVMID, cfg.VMCapacity)
			c.nodes[inst] = newNode(c, inst, spec, vm, op)
		}
	}
	// Periodic machinery.
	s.Every(cfg.TimerMillis, func() bool {
		c.tickTimers()
		return true
	})
	if cfg.Mode == FTRSM {
		s.Every(cfg.CheckpointIntervalMillis, func() bool {
			c.checkpointAll()
			return true
		})
	}
	if cfg.Mode == FTUpstreamBackup || cfg.Mode == FTSourceReplay {
		s.Every(1_000, func() bool {
			cutoff := s.Now() - cfg.WindowMillis
			for _, n := range c.nodes {
				n.outBuf.TrimBornBefore(cutoff)
			}
			return true
		})
	}
	s.Every(1_000, func() bool {
		c.VMsInUse.Add(s.Now(), float64(c.liveVMs()))
		c.ThroughputTS.Add(s.Now(), float64(c.sinkSinceLast))
		c.sinkSinceLast = 0
		return true
	})
	return c, nil
}

// Sim returns the simulation kernel (for scheduling experiment events).
func (c *Cluster) Sim() *Sim { return c.sim }

// Manager returns the query manager.
func (c *Cluster) Manager() *core.Manager { return c.mgr }

// Pool returns the VM pool.
func (c *Cluster) Pool() *Pool { return c.pool }

// Node returns the live node for an instance (nil if none).
func (c *Cluster) Node(inst plan.InstanceID) *Node { return c.nodes[inst] }

// OperatorOf returns the operator hosted by inst so experiments can
// inspect or pre-populate its state (nil if the instance is unknown or a
// source/sink).
func (c *Cluster) OperatorOf(inst plan.InstanceID) operator.Operator {
	if n := c.nodes[inst]; n != nil {
		return n.op
	}
	return nil
}

// LiveInstances returns the instances of op that currently have an
// active node. During an in-flight scale out the execution graph may
// list replacement instances whose VMs are still being provisioned;
// those are excluded here.
func (c *Cluster) LiveInstances(op plan.OpID) []plan.InstanceID {
	var out []plan.InstanceID
	for _, inst := range c.mgr.Instances(op) {
		if n := c.nodes[inst]; n != nil && !n.failed && !n.removed {
			out = append(out, inst)
		}
	}
	return out
}

// Recoveries returns the completed recovery/scale-out records.
func (c *Cluster) Recoveries() []RecoveryRecord {
	out := make([]RecoveryRecord, len(c.recoveries))
	copy(out, c.recoveries)
	return out
}

// DuplicatesDropped returns how many replayed duplicates were discarded.
func (c *Cluster) DuplicatesDropped() uint64 { return c.duplicatesDropped.Value() }

// RecoveryFailures returns descriptions of failure recoveries that
// could not complete (e.g. planning errors), oldest first.
func (c *Cluster) RecoveryFailures() []string {
	out := make([]string, len(c.recoveryFailures))
	copy(out, c.recoveryFailures)
	return out
}

func (c *Cluster) liveVMs() int {
	n := 0
	for _, node := range c.nodes {
		if !node.failed && !node.removed {
			n++
		}
	}
	return n
}

// AddSource attaches a tuple generator to a source instance.
func (c *Cluster) AddSource(inst plan.InstanceID, rate RateFunc, gen Generator) error {
	n := c.nodes[inst]
	if n == nil || n.spec.Role != plan.RoleSource {
		return fmt.Errorf("sim: %s is not a live source", inst)
	}
	src := &source{node: n, rate: rate, gen: gen}
	c.sources[inst] = src
	c.scheduleSourceTick(src)
	return nil
}

// InjectBatch emits count tuples from a source instance at the current
// virtual time — the simulator counterpart of the live engine's batch
// injection, for scenarios that need exact tuple counts rather than
// rates. The tuples are processed as the simulation advances (RunUntil).
func (c *Cluster) InjectBatch(inst plan.InstanceID, count int, gen Generator) error {
	n := c.nodes[inst]
	if n == nil || n.spec.Role != plan.RoleSource {
		return fmt.Errorf("sim: %s is not a live source", inst)
	}
	for i := 0; i < count; i++ {
		key, payload := gen(uint64(i))
		n.curBorn = c.sim.Now()
		n.emit(key, payload)
	}
	return nil
}

// scheduleSourceTick emits tuples in 10 ms batches according to the rate
// profile; fractional tuples carry over so long-run rates are exact.
func (c *Cluster) scheduleSourceTick(src *source) {
	const tick = 10 // ms
	var fire func()
	fire = func() {
		if src.node.removed {
			return
		}
		if !src.paused {
			r := src.rate(c.sim.Now())
			src.carry += r * tick / 1000.0
			n := int(src.carry)
			src.carry -= float64(n)
			for i := 0; i < n; i++ {
				key, payload := src.gen(src.emitted)
				src.emitted++
				src.node.curBorn = c.sim.Now()
				src.node.emit(key, payload)
			}
		}
		c.sim.After(tick, fire)
	}
	c.sim.After(tick, fire)
}

// route buffers (per FT mode) and delivers one tuple from n to every
// logical downstream operator, partitioned by key.
func (c *Cluster) route(n *Node, out stream.Tuple) {
	for _, downOp := range c.mgr.Query().Downstream(n.inst.Op) {
		r := c.routings[downOp]
		if r == nil {
			continue
		}
		target := r.Lookup(out.Key)
		if c.shouldBuffer(n, downOp) {
			n.outBuf.Append(target, out)
		}
		c.deliver(n.inst, target, out, nil)
	}
}

// shouldBuffer decides whether n retains output tuples toward downOp for
// replay, per FT mode. Tuples toward sinks are never retained: sinks are
// assumed reliable (§2.2).
func (c *Cluster) shouldBuffer(n *Node, downOp plan.OpID) bool {
	if c.mgr.Query().Op(downOp).Role == plan.RoleSink {
		return false
	}
	switch c.cfg.Mode {
	case FTRSM, FTUpstreamBackup:
		return true
	case FTSourceReplay:
		return n.spec.Role == plan.RoleSource
	default:
		return false
	}
}

// deliver schedules the arrival of a tuple at a node after the network
// delay. Deliveries to unknown (failed/stale) instances are dropped; the
// tuples survive in upstream buffer state and are replayed after
// recovery.
func (c *Cluster) deliver(from, to plan.InstanceID, t stream.Tuple, tracker *replayTracker) {
	c.deliverOpt(from, to, t, tracker, false)
}

// deliverForced delivers bypassing duplicate detection (source replay).
func (c *Cluster) deliverForced(from, to plan.InstanceID, t stream.Tuple, tracker *replayTracker) {
	c.deliverOpt(from, to, t, tracker, true)
}

func (c *Cluster) deliverOpt(from, to plan.InstanceID, t stream.Tuple, tracker *replayTracker, force bool) {
	input := c.mgr.Query().InputIndex(from.Op, to.Op)
	c.sim.After(c.cfg.NetDelayMillis, func() {
		n := c.nodes[to]
		if n == nil {
			tracker.dec()
			return
		}
		n.receive(delivery{from: from, input: input, t: t, tracker: tracker, force: force})
	})
}

// observeSink records a tuple arriving at a sink node.
func (c *Cluster) observeSink(n *Node, t stream.Tuple) {
	lat := c.sim.Now() - t.Born
	if lat < 0 {
		lat = 0
	}
	c.Latency.Observe(lat)
	c.SinkCount.Inc()
	c.sinkSinceLast++
	if c.OnSink != nil {
		c.OnSink(t)
	}
}

// tickTimers drives TimeDriven operators.
func (c *Cluster) tickTimers() {
	for _, inst := range c.sortedInstances() {
		if n := c.nodes[inst]; n != nil {
			n.onTime()
		}
	}
}

func (c *Cluster) sortedInstances() []plan.InstanceID {
	out := make([]plan.InstanceID, 0, len(c.nodes))
	for inst := range c.nodes {
		out = append(out, inst)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Part < out[j].Part
	})
	return out
}

// checkpointAll takes a checkpoint of every non-source, non-sink node and
// backs it up to its upstream backup host (Algorithm 1). The snapshot is
// consistent (taken in one event); the serialisation cost occupies the
// node's VM, delaying queued tuples — the measurable overhead of Fig. 14.
func (c *Cluster) checkpointAll() {
	for _, inst := range c.sortedInstances() {
		n := c.nodes[inst]
		if n == nil || n.failed || n.removed {
			continue
		}
		if n.spec.Role == plan.RoleSource || n.spec.Role == plan.RoleSink {
			continue
		}
		c.checkpointNode(n)
	}
}

// checkpointNode implements backup-state(o) for one node. Under an
// active DeltaPolicy, managed-state nodes ship incremental checkpoints
// between full ones; the serialisation cost scales with the shipped
// bytes, so deltas also shrink the checkpoint overhead of Fig. 14. A
// delta the backup host cannot apply forces a full checkpoint at the
// next interval — deltas are never load-bearing.
func (c *Cluster) checkpointNode(n *Node) { c.checkpointNodeThen(n, nil) }

// checkpointNodeThen is checkpointNode with a completion callback,
// invoked exactly once when the backup attempt finished (stored,
// folded, or given up). Transitions that partition "the most recent
// checkpoint" (§4.3) chain on it instead of guessing how long
// serialisation and shipping take — the VM-cost model makes that delay
// load-dependent. A VM that dies mid-checkpoint drops its Exec
// callback, so a watchdog at the computed completion time guarantees
// the callback still fires (the chained transition then proceeds with
// whatever backup exists, as a fixed delay would have).
func (c *Cluster) checkpointNodeThen(n *Node, done func()) {
	fired := false
	finish := func() {
		if fired {
			return
		}
		fired = true
		if done != nil {
			done()
		}
	}
	host, err := c.mgr.BackupTarget(n.inst)
	if err != nil {
		finish()
		return
	}
	ship := func(costUnits float64, store func()) {
		doneAt := n.vm.Exec(costUnits, func() {
			c.sim.After(c.cfg.NetDelayMillis, func() {
				store()
				finish()
			})
		})
		if doneAt < 0 {
			finish()
			return
		}
		c.sim.At(doneAt+c.cfg.NetDelayMillis+1, finish)
	}
	if dc := n.maybeDelta(c.cfg.Delta); dc != nil {
		ship(c.cfg.CheckpointCostPerMB*float64(dc.Size())/(1<<20), func() {
			if err := c.mgr.Backups().ApplyDelta(host, dc); err != nil {
				n.needFull = true
			} else {
				c.trimAcked(n, dc.Acks)
			}
		})
		return
	}
	cp := n.snapshot()
	if cp == nil {
		// State encode failure: keep the previous backup rather than
		// shipping partial state.
		finish()
		return
	}
	ship(c.cfg.CheckpointCostPerMB*float64(cp.Size())/(1<<20), func() {
		if err := c.mgr.Backups().Store(host, cp); err == nil {
			c.trimAcked(n, cp.Acks)
		}
	})
}

// trimAcked trims upstream output buffers up to the acknowledged
// timestamps (Algorithm 1 line 4). Acknowledgements addressed to a
// retired merge victim trim the legacy buffer its merge product hosts.
func (c *Cluster) trimAcked(n *Node, acks map[plan.InstanceID]int64) {
	for up, ts := range acks {
		if upNode := c.nodes[up]; upNode != nil {
			upNode.outBuf.TrimInstance(n.inst, ts)
			continue
		}
		if hn := c.legacyHost(up); hn != nil {
			if lb := hn.legacy[up]; lb != nil {
				lb.TrimInstance(n.inst, ts)
			}
		}
	}
}

// legacyHost resolves the node hosting the legacy buffer of a retired
// merge victim, chasing the merge-product chain.
func (c *Cluster) legacyHost(up plan.InstanceID) *Node {
	cur := up
	for i := 0; i < 16; i++ {
		next, ok := c.legacyOwner[cur]
		if !ok {
			return nil
		}
		if hn := c.nodes[next]; hn != nil {
			return hn
		}
		cur = next
	}
	return nil
}

// FailInstance crash-stops the VM hosting inst at the current virtual
// time. Backups stored on that VM are lost. Detection and recovery
// follow after the configured detection delay.
func (c *Cluster) FailInstance(inst plan.InstanceID) error {
	n := c.nodes[inst]
	if n == nil || n.failed {
		return fmt.Errorf("sim: %s is not a live instance", inst)
	}
	if n.spec.Role == plan.RoleSource || n.spec.Role == plan.RoleSink {
		return fmt.Errorf("sim: sources and sinks are assumed reliable (§2.2)")
	}
	n.failed = true
	n.vm.Fail()
	c.mgr.HandleHostFailure(inst)
	failedAt := c.sim.Now()
	c.sim.After(c.cfg.DetectDelayMillis, func() {
		c.recover(inst, failedAt)
	})
	return nil
}

// ScaleOut replaces a live bottleneck instance with pi partitioned
// instances (Algorithm 3). The victim keeps processing until the new
// instances are restored; its post-checkpoint work is reconstructed at
// the replacements by replaying upstream buffers.
func (c *Cluster) ScaleOut(victim plan.InstanceID, pi int) error {
	n := c.nodes[victim]
	if n == nil || n.failed || n.removed {
		return fmt.Errorf("sim: %s is not live", victim)
	}
	if c.scalingInProgress[victim] {
		return fmt.Errorf("sim: scale out of %s already in progress", victim)
	}
	c.scalingInProgress[victim] = true
	started := c.sim.Now()
	// In RSM mode, refresh the checkpoint right before partitioning so
	// the replayed window is small. (The paper partitions the most
	// recent checkpoint, §4.3.) Planning chains on the backup landing:
	// serialisation cost is load-dependent, so a fixed delay could plan
	// against a stale checkpoint whose gap the (since-trimmed) upstream
	// buffers no longer cover.
	if c.cfg.Mode == FTRSM {
		c.checkpointNodeThen(n, func() {
			c.executeReplace(victim, pi, started, false)
		})
		return nil
	}
	c.sim.After(c.cfg.NetDelayMillis+1, func() {
		c.executeReplace(victim, pi, started, false)
	})
	return nil
}

// recover handles a detected failure: recovery is scale out with
// parallelism RecoveryParallelism (§4.2 — "operator recovery becomes a
// special case of scale out").
func (c *Cluster) recover(victim plan.InstanceID, failedAt Millis) {
	if c.scalingInProgress[victim] {
		return
	}
	c.scalingInProgress[victim] = true
	switch c.cfg.Mode {
	case FTUpstreamBackup, FTSourceReplay:
		c.executeReplaceBaseline(victim, failedAt)
	default:
		c.executeReplace(victim, c.cfg.RecoveryParallelism, failedAt, true)
	}
}

// executeReplace runs the integrated fault-tolerant scale-out algorithm
// (Algorithm 3) for both scale out and R+SM recovery.
func (c *Cluster) executeReplace(victim plan.InstanceID, pi int, startedAt Millis, failure bool) {
	// Failure recovery may fall back to an empty checkpoint when the
	// victim failed before its first backup (PlanRecovery); scale out of
	// a live instance never does.
	planFn := c.mgr.PlanReplace
	if failure {
		planFn = c.mgr.PlanRecovery
	}
	rp, err := planFn(victim, pi)
	if err != nil {
		if !failure {
			// Scale out aborts cleanly; the victim continues processing
			// unaffected (§4.3) and may be re-triggered later.
			delete(c.scalingInProgress, victim)
			if c.detector != nil {
				c.detector.Unmute(victim)
			}
			return
		}
		// A recovery that cannot be planned is recorded, and the victim
		// is unblocked so a later detection can retry.
		c.recoveryFailures = append(c.recoveryFailures,
			fmt.Sprintf("recover %s (pi=%d): %v", victim, pi, err))
		delete(c.scalingInProgress, victim)
		return
	}
	// Routing switches now: tuples emitted from here on are buffered
	// toward (and later replayed to) the new instances.
	c.routings[victim.Op] = rp.Routing

	// Acquire pi VMs from the pool.
	vms := make([]*VM, 0, pi)
	for i := 0; i < pi; i++ {
		c.pool.Acquire(func(vm *VM) {
			vms = append(vms, vm)
			if len(vms) == pi {
				c.finishReplace(rp, vms, startedAt, failure)
			}
		})
	}
}

// finishReplace restores state on the new VMs and replays buffers.
func (c *Cluster) finishReplace(rp *core.ReplacePlan, vms []*VM, startedAt Millis, failure bool) {
	pi := len(rp.NewInstances)
	victim := rp.Victim
	q := c.mgr.Query()
	spec := q.Op(victim.Op)

	// Splitting the checkpoint across π > 1 partitions costs extra
	// coordination at the backup host before the restores can begin.
	partitionDelay := Millis(pi-1) * c.cfg.PartitionFixedMillis
	c.sim.After(partitionDelay, func() {
		// Restore cost per instance: fixed coordination plus
		// deserialisation proportional to the partition size, paid on
		// the new VM.
		restored := 0
		for i := range rp.NewInstances {
			cp := rp.Checkpoints[i]
			costUnits := c.cfg.RestoreCostPerMB*float64(cp.Size())/(1<<20) +
				float64(c.cfg.CoordFixedMillis)/1000.0
			vms[i].Exec(costUnits, func() {
				restored++
				if restored == pi {
					c.activateReplacements(rp, vms, startedAt, failure, spec, false)
				}
			})
		}
	})
}

// activateReplacements is the atomic switch-over: register nodes, stop
// the victim, fix downstream acknowledgement inheritance, replay the
// victim's output buffer downstream and the upstream buffers to the new
// instances (Algorithm 3 lines 6-14). With merge set the transition is
// a scale in: acknowledgement inheritance is skipped (the victims'
// output replays under their original identities from the merged
// checkpoint's legacy buffers, matched by the watermarks downstream
// already holds; the merged instance itself is a fresh sender).
func (c *Cluster) activateReplacements(rp *core.ReplacePlan, vms []*VM, startedAt Millis, failure bool, spec *plan.OpSpec, merge bool) {
	victim := rp.Victim
	pi := len(rp.NewInstances)

	// Stop the victim and release its VM (Algorithm 3 line 8). On
	// failure recovery it is already dead.
	if old := c.nodes[victim]; old != nil {
		old.removed = true
		delete(c.nodes, victim)
	}
	delete(c.scalingInProgress, victim)
	if c.detector != nil {
		c.detector.Forget(victim)
	}

	newNodes := make([]*Node, pi)
	for i, inst := range rp.NewInstances {
		var op operator.Operator
		if f, ok := c.factories[inst.Op]; ok {
			op = f()
		}
		n := newNode(c, inst, spec, vms[i], op)
		if err := n.restore(rp.Checkpoints[i]); err != nil {
			c.recoveryFailures = append(c.recoveryFailures, err.Error())
		}
		c.nodes[inst] = n
		newNodes[i] = n
	}

	// Downstream duplicate detection: with pi == 1 the replacement
	// re-emits a deterministic prefix of the victim's output sequence,
	// so downstream nodes inherit the victim's acknowledgement position.
	// With pi > 1 each partition's output sequence is fresh (the paper's
	// per-stream clocks), so downstream starts clean and duplicate
	// suppression is best-effort for the checkpoint-lag window. Merges
	// never inherit: downstream keeps the per-victim watermarks, which
	// the legacy replay below is matched against.
	if pi == 1 && !merge {
		for _, dn := range c.nodes {
			if ts, ok := dn.acks[victim]; ok {
				dn.acks[rp.NewInstances[0]] = ts
				delete(dn.acks, victim)
			}
		}
		// Anything whose legacy buffer lived with the victim lives with
		// its replacement now (PartitionCheckpoint hands legacy state to
		// the first partition).
		c.legacyOwner[victim] = rp.NewInstances[0]
	}
	if pi > 1 {
		c.legacyOwner[victim] = rp.NewInstances[0]
	}

	tracker := &replayTracker{}
	replayed := 0

	// Replay the victim's own buffered output downstream (line 7), and
	// any legacy buffers its checkpoint carried under their original
	// owners' identities.
	replayBuf := func(from plan.InstanceID, buf *state.Buffer) {
		for _, target := range buf.Targets() {
			for _, t := range buf.Tuples(target) {
				// Re-route under current routing: the downstream set may
				// itself have been repartitioned since the checkpoint.
				r := c.routings[target.Op]
				to := target
				if r != nil {
					to = r.Lookup(t.Key)
				}
				tracker.add(1)
				replayed++
				c.deliver(from, to, t, tracker)
			}
		}
	}
	for i, n := range newNodes {
		cp := rp.Checkpoints[i]
		replayBuf(n.inst, cp.Buffer)
		for _, owner := range state.LegacyOwners(cp.Legacy) {
			replayBuf(owner, cp.Legacy[owner])
		}
	}

	// Upstream side (lines 9-14): repartition buffer state under the new
	// routing and replay unacknowledged tuples to the new instances. The
	// switch happens within one simulator event, which models the
	// stop/update/restart of upstream operators as an atomic step; the
	// disruption cost is carried by the replay itself. Upstream legacy
	// buffers (retired merge victims of the upstream operator)
	// repartition and replay the same way under the retired sender's
	// identity.
	for _, upOp := range c.mgr.Query().Upstream(victim.Op) {
		for _, upInst := range c.mgr.Instances(upOp) {
			un := c.nodes[upInst]
			if un == nil {
				continue
			}
			un.outBuf.Repartition(victim.Op, rp.Routing)
			for _, newInst := range rp.NewInstances {
				for _, t := range un.outBuf.Tuples(newInst) {
					tracker.add(1)
					replayed++
					c.deliver(upInst, newInst, t, tracker)
				}
			}
			for _, owner := range state.LegacyOwners(un.legacy) {
				if owner.Op != upOp {
					continue
				}
				lb := un.legacy[owner]
				lb.Repartition(victim.Op, rp.Routing)
				for _, newInst := range rp.NewInstances {
					for _, t := range lb.Tuples(newInst) {
						tracker.add(1)
						replayed++
						c.deliver(owner, newInst, t, tracker)
					}
				}
			}
		}
	}

	rec := RecoveryRecord{
		Victim:         victim,
		Pi:             pi,
		Failure:        failure,
		StartedAt:      startedAt,
		ReplayedTuples: replayed,
		Merge:          merge,
	}
	if replayed == 0 {
		rec.CompletedAt = c.sim.Now()
		c.recoveries = append(c.recoveries, rec)
		return
	}
	// Until the replay completes, the replacements must not process live
	// tuples: replayed tuples carry pre-checkpoint timestamps and a live
	// tuple would advance the duplicate watermark past them (the
	// stop-operator step of Algorithm 3 guarantees this ordering in the
	// paper).
	for _, n := range newNodes {
		n.holdingLive = true
	}
	tracker.onDone = func() {
		rec.CompletedAt = c.sim.Now()
		c.recoveries = append(c.recoveries, rec)
		for _, n := range newNodes {
			n.releaseHeld()
		}
	}
}

// executeReplaceBaseline recovers a failed operator under the UB and SR
// baselines: a fresh instance is deployed with empty state and the
// retained window of tuples is re-processed to rebuild it (§6.2).
func (c *Cluster) executeReplaceBaseline(victim plan.InstanceID, failedAt Millis) {
	// The baselines keep no state checkpoints, so planning always takes
	// PlanRecovery's empty-checkpoint path: the replacement starts empty
	// and re-processes the retained tuple window to rebuild state.
	q := c.mgr.Query()
	rp, err := c.mgr.PlanRecovery(victim, 1)
	if err != nil {
		c.recoveryFailures = append(c.recoveryFailures,
			fmt.Sprintf("recover %s (pi=1): %v", victim, err))
		delete(c.scalingInProgress, victim)
		return
	}
	c.routings[victim.Op] = rp.Routing

	if c.cfg.Mode == FTSourceReplay {
		// The source stops generating new tuples during recovery (§6.2).
		for _, s := range c.sources {
			s.paused = true
		}
	}

	c.pool.Acquire(func(vm *VM) {
		spec := q.Op(victim.Op)
		coord := float64(c.cfg.CoordFixedMillis) / 1000.0
		vm.Exec(coord, func() {
			c.activateBaseline(rp, vm, victim, failedAt, spec)
		})
	})
}

func (c *Cluster) activateBaseline(rp *core.ReplacePlan, vm *VM, victim plan.InstanceID, failedAt Millis, spec *plan.OpSpec) {
	if old := c.nodes[victim]; old != nil {
		old.removed = true
		delete(c.nodes, victim)
	}
	delete(c.scalingInProgress, victim)
	newInst := rp.NewInstances[0]
	var op operator.Operator
	if f, ok := c.factories[newInst.Op]; ok {
		op = f()
	}
	n := newNode(c, newInst, spec, vm, op)
	c.nodes[newInst] = n

	tracker := &replayTracker{}
	replayed := 0
	newNodes := []*Node{n}

	if c.cfg.Mode == FTUpstreamBackup {
		// Replay the immediate upstream buffers (whole retained window).
		for _, upOp := range c.mgr.Query().Upstream(victim.Op) {
			for _, upInst := range c.mgr.Instances(upOp) {
				un := c.nodes[upInst]
				if un == nil {
					continue
				}
				un.outBuf.Repartition(victim.Op, rp.Routing)
				for _, t := range un.outBuf.Tuples(newInst) {
					tracker.add(1)
					replayed++
					c.deliver(upInst, newInst, t, tracker)
				}
			}
		}
	} else {
		// Source replay: re-inject the sources' retained windows through
		// the whole pipeline; intermediate operators re-process them.
		for _, s := range c.sources {
			sn := s.node
			for _, target := range sn.outBuf.Targets() {
				for _, t := range sn.outBuf.Tuples(target) {
					r := c.routings[target.Op]
					to := target
					if r != nil {
						to = r.Lookup(t.Key)
					}
					tracker.add(1)
					replayed++
					c.deliverForced(sn.inst, to, t, tracker)
				}
			}
		}
	}

	rec := RecoveryRecord{
		Victim:         victim,
		Pi:             1,
		Failure:        true,
		StartedAt:      failedAt,
		ReplayedTuples: replayed,
	}
	if c.cfg.Mode == FTUpstreamBackup && replayed > 0 {
		// UB replays old-timestamped tuples from the immediate upstream
		// buffers; hold live tuples until the window re-processing is
		// done (see activateReplacements). SR re-emits through the
		// pipeline with fresh timestamps, so it needs no hold.
		n.holdingLive = true
	}
	finish := func() {
		// The recovered operator may still be draining re-processed
		// tuples produced by intermediate operators; account for its
		// remaining queue.
		done := c.sim.Now()
		for _, nn := range newNodes {
			if until := nn.vm.busyUntil; until > done {
				done = until
			}
		}
		rec.CompletedAt = done
		c.recoveries = append(c.recoveries, rec)
		n.releaseHeld()
		if c.cfg.Mode == FTSourceReplay {
			c.sim.At(done, func() {
				for _, s := range c.sources {
					s.paused = false
				}
			})
		}
	}
	if replayed == 0 {
		finish()
		return
	}
	tracker.onDone = finish
}

// ScaleIn merges sibling partitions with adjacent key ranges into one
// instance — the merge primitive of §3.3 ("to scale in operators when
// resources are under-utilised, the state of two operators can be
// merged"). Victims must be live and checkpointed. The victims STOP
// first, within this event, and their final checkpoints are taken from
// the stopped state — so the captures reflect everything they ever
// processed, tuples in flight drop and stay retained upstream for
// replay, and the merge has no post-checkpoint window. The merged
// instance is deployed on a pooled VM; its duplicate-detection
// watermark is the victims' minimum, which is exact because the final
// checkpoint ships trim upstream buffers to each victim's own
// watermark before the repartition.
func (c *Cluster) ScaleIn(victims []plan.InstanceID) error {
	if len(victims) < 2 {
		return fmt.Errorf("sim: merge needs at least two victims, got %d", len(victims))
	}
	// Full validation BEFORE any victim stops: the same guards the live
	// engine and the coordinator enforce, so Job.ScaleIn rejects bad
	// victim sets with zero side effects on every substrate.
	seenVictim := make(map[plan.InstanceID]bool, len(victims))
	for _, v := range victims {
		if v.Op != victims[0].Op {
			return fmt.Errorf("sim: merge across operators %q and %q", victims[0].Op, v.Op)
		}
		if seenVictim[v] {
			return fmt.Errorf("sim: duplicate merge victim %s", v)
		}
		seenVictim[v] = true
		n := c.nodes[v]
		if n == nil || n.failed || n.removed {
			return fmt.Errorf("sim: %s is not live", v)
		}
		if n.spec.Role == plan.RoleSource || n.spec.Role == plan.RoleSink {
			return fmt.Errorf("sim: %s cannot be merged (sources and sinks are assumed reliable, §2.2)", v)
		}
		if c.scalingInProgress[v] {
			return fmt.Errorf("sim: %s is being replaced", v)
		}
	}
	started := c.sim.Now()
	pending := len(victims)
	for _, v := range victims {
		c.scalingInProgress[v] = true
		n := c.nodes[v]
		// Stop first: deliveries from here on drop at the victim and
		// stay retained upstream; the snapshot inside checkpointNodeThen
		// is taken synchronously at this event, so it is final.
		n.removed = true
		c.checkpointNodeThen(n, func() {
			pending--
			if pending > 0 {
				return
			}
			mp, err := c.mgr.PlanMerge(victims)
			if err != nil {
				// The victims are already stopped: recover each from its
				// final checkpoint through the normal path, exactly as
				// after a crash.
				c.recoveryFailures = append(c.recoveryFailures,
					fmt.Sprintf("merge %v: %v", victims, err))
				for _, v := range victims {
					delete(c.scalingInProgress, v)
					victim := v
					c.recover(victim, c.sim.Now())
				}
				return
			}
			for _, v := range victims {
				// The merged instance carries each victim's legacy
				// buffer; trims addressed to the victims follow it.
				c.legacyOwner[v] = mp.NewInstance
			}
			c.routings[mp.NewInstance.Op] = mp.Routing
			c.pool.Acquire(func(vm *VM) {
				cost := c.cfg.RestoreCostPerMB*float64(mp.Checkpoint.Size())/(1<<20) +
					float64(c.cfg.CoordFixedMillis)/1000.0
				vm.Exec(cost, func() {
					spec := c.mgr.Query().Op(mp.NewInstance.Op)
					rp := &core.ReplacePlan{
						Victim:       victims[0],
						NewInstances: []plan.InstanceID{mp.NewInstance},
						Ranges:       []state.KeyRange{mp.Range},
						Checkpoints:  []*state.Checkpoint{mp.Checkpoint},
						Routing:      mp.Routing,
					}
					// Remove all victims, then activate via the common path.
					for _, v := range victims[1:] {
						if old := c.nodes[v]; old != nil {
							old.removed = true
							delete(c.nodes, v)
						}
						delete(c.scalingInProgress, v)
					}
					c.merges++
					c.activateReplacements(rp, []*VM{vm}, started, false, spec, true)
				})
			})
		})
	}
	return nil
}

// Merges returns how many scale-in merges have completed.
func (c *Cluster) Merges() uint64 { return c.merges }

// EnablePolicy activates the bottleneck detector and scaling policy
// (§5.1): every ReportEveryMillis, live instances report their CPU
// utilisation; instances above the threshold for k consecutive reports
// are scaled out to parallelism 2 (the victim splits in two).
func (c *Cluster) EnablePolicy(p control.Policy) {
	c.detector = control.NewDetector(p)
	c.sim.Every(p.ReportEveryMillis, func() bool {
		var reports []control.Report
		for _, inst := range c.sortedInstances() {
			n := c.nodes[inst]
			if n == nil || n.failed || n.removed {
				continue
			}
			if n.spec.Role == plan.RoleSource || n.spec.Role == plan.RoleSink {
				continue
			}
			reports = append(reports, control.Report{Inst: inst, Util: n.vm.Utilization()})
			n.vm.ResetWindow()
		}
		for _, victim := range c.detector.Observe(reports) {
			spec := c.mgr.Query().Op(victim.Op)
			if spec.MaxParallelism > 0 && c.mgr.Parallelism(victim.Op) >= spec.MaxParallelism {
				continue
			}
			_ = c.ScaleOut(victim, 2)
		}
		if c.shrinker != nil {
			for _, op := range c.shrinker.Observe(reports) {
				if pair := c.adjacentPair(op); pair != nil {
					if err := c.ScaleIn(pair); err != nil {
						c.shrinker.Unmute(op)
					} else {
						// Completed merges produce fresh instance IDs, so
						// the operator can shrink again next round.
						c.shrinker.Unmute(op)
					}
				} else {
					c.shrinker.Unmute(op)
				}
			}
		}
		return true
	})
}

// EnableElasticity additionally activates scale in: when every partition
// of an operator stays below the low watermark, an adjacent pair is
// merged. Call after EnablePolicy.
func (c *Cluster) EnableElasticity(p control.ScaleInPolicy) {
	c.shrinker = control.NewScaleInDetector(p)
}

// adjacentPair picks the pair of live partitions of op owning adjacent
// key ranges with the lowest combined load, or nil.
func (c *Cluster) adjacentPair(op plan.OpID) []plan.InstanceID {
	routing := c.mgr.Routing(op)
	if routing == nil {
		return nil
	}
	entries := routing.Entries()
	var best []plan.InstanceID
	bestLoad := -1.0
	for i := 1; i < len(entries); i++ {
		a, b := entries[i-1].Target, entries[i].Target
		if a == b {
			continue
		}
		na, nb := c.nodes[a], c.nodes[b]
		if na == nil || nb == nil || na.failed || nb.failed || na.removed || nb.removed {
			continue
		}
		if c.scalingInProgress[a] || c.scalingInProgress[b] {
			continue
		}
		load := na.vm.Utilization() + nb.vm.Utilization()
		if bestLoad < 0 || load < bestLoad {
			bestLoad = load
			best = []plan.InstanceID{a, b}
		}
	}
	return best
}

// RunUntil advances the simulation to virtual time t.
func (c *Cluster) RunUntil(t Millis) { c.sim.RunUntil(t) }
