package sim

// PoolConfig parameterises the VM pool of §5.2.
type PoolConfig struct {
	// Size is the steady-state number of pre-allocated VMs, p.
	Size int
	// ProvisionDelayMillis is how long the IaaS provider takes to start
	// a fresh VM instance — "on the order of minutes" (§5.2). Default
	// 90 s.
	ProvisionDelayMillis Millis
	// HandoffDelayMillis is the time to hand a pre-allocated VM to the
	// requester — "seconds" (§5.2). Default 2 s.
	HandoffDelayMillis Millis
	// Capacity is the CPU capacity of provisioned VMs.
	Capacity float64
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.ProvisionDelayMillis == 0 {
		c.ProvisionDelayMillis = 90_000
	}
	if c.HandoffDelayMillis == 0 {
		c.HandoffDelayMillis = 2_000
	}
	if c.Capacity == 0 {
		c.Capacity = 1.0
	}
	return c
}

// Pool is the VM pool: it decouples requesting a VM from provisioning it
// by keeping Size pre-allocated instances ready. Acquire hands over a
// pooled VM after the handoff delay, or falls back to raw provisioning
// when the pool is exhausted; the pool refills asynchronously.
type Pool struct {
	sim  *Sim
	cfg  PoolConfig
	free []*VM
	// pendingRefills counts provisioning requests in flight.
	pendingRefills int
	nextID         int
	// waiters queue Acquire callbacks when the pool is empty so that a
	// burst of requests drains refills in FIFO order.
	waiters []func(*VM)
	// stats
	acquired        int
	exhaustedMisses int
}

// NewPool pre-allocates the configured number of VMs (available
// immediately at time zero, as the pool is filled "ahead of time").
// A negative Size is normalised to zero: no pre-allocation, so every
// Acquire pays the raw provisioning delay — the no-pool baseline.
func NewPool(s *Sim, cfg PoolConfig) *Pool {
	cfg = cfg.withDefaults()
	if cfg.Size < 0 {
		cfg.Size = 0
	}
	p := &Pool{sim: s, cfg: cfg}
	for i := 0; i < cfg.Size; i++ {
		p.free = append(p.free, p.newVM())
	}
	return p
}

func (p *Pool) newVM() *VM {
	p.nextID++
	return NewVM(p.sim, p.nextID, p.cfg.Capacity)
}

// Available returns the number of idle pooled VMs.
func (p *Pool) Available() int { return len(p.free) }

// Acquired returns how many VMs have been handed out.
func (p *Pool) Acquired() int { return p.acquired }

// ExhaustedMisses returns how many Acquire calls found the pool empty and
// had to wait for raw provisioning.
func (p *Pool) ExhaustedMisses() int { return p.exhaustedMisses }

// Acquire requests a VM, invoking ready when it is available: after the
// handoff delay when a pooled VM exists, or after the full provisioning
// delay when the pool is exhausted. The pool refills itself to Size
// asynchronously after each acquisition.
func (p *Pool) Acquire(ready func(*VM)) {
	p.acquired++
	if len(p.free) > 0 {
		vm := p.free[0]
		p.free = p.free[1:]
		p.refill()
		p.sim.After(p.cfg.HandoffDelayMillis, func() { ready(vm) })
		return
	}
	// Pool exhausted: the request waits for a refill (which takes the
	// raw provisioning delay).
	p.exhaustedMisses++
	p.waiters = append(p.waiters, ready)
	p.refill()
}

// refill tops the pool back up to Size, counting in-flight requests.
func (p *Pool) refill() {
	want := p.cfg.Size - len(p.free) - p.pendingRefills + len(p.waiters)
	for i := 0; i < want; i++ {
		p.pendingRefills++
		p.sim.After(p.cfg.ProvisionDelayMillis, func() {
			p.pendingRefills--
			vm := p.newVM()
			if len(p.waiters) > 0 {
				ready := p.waiters[0]
				p.waiters = p.waiters[1:]
				ready(vm)
				return
			}
			p.free = append(p.free, vm)
		})
	}
}

// Resize changes the steady-state pool size (the paper notes p can be
// adapted over time, §5.2). Shrinking drops idle VMs immediately;
// growing triggers provisioning.
func (p *Pool) Resize(size int) {
	p.cfg.Size = size
	if len(p.free) > size {
		p.free = p.free[:size]
	}
	p.refill()
}
