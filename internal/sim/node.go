package sim

import (
	"fmt"

	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

// replayTracker counts outstanding replayed tuples during a recovery or
// scale out; when every replayed tuple has been processed (or discarded
// as a duplicate), the operation is complete and its duration recorded.
type replayTracker struct {
	outstanding int
	onDone      func()
	fired       bool
}

func (rt *replayTracker) add(n int) { rt.outstanding += n }

func (rt *replayTracker) dec() {
	if rt == nil {
		return
	}
	rt.outstanding--
	if rt.outstanding <= 0 && !rt.fired {
		rt.fired = true
		if rt.onDone != nil {
			rt.onDone()
		}
	}
}

// delivery is one tuple in flight to a node.
type delivery struct {
	from    plan.InstanceID
	input   int // logical input-stream index at the receiver
	t       stream.Tuple
	tracker *replayTracker
	// force bypasses duplicate detection: source-replay recovery rolls
	// the whole downstream pipeline back, so intermediate operators must
	// re-process tuples they have already seen.
	force bool
}

// Node hosts one operator instance on one VM inside the simulated
// cluster. All methods run inside simulator events (single-threaded).
//
// The node implements the runtime side of the paper's state management:
// it tracks per-upstream-instance acknowledgements for duplicate
// detection (§3.2 restore-state), retains output tuples in its buffer
// state for downstream recovery (§3.1), takes periodic checkpoints and
// backs them up (Algorithm 1), and replays buffers on demand.
type Node struct {
	c    *Cluster
	inst plan.InstanceID
	spec *plan.OpSpec
	vm   *VM
	op   operator.Operator
	// store is the system-owned managed state of op (nil for stateless
	// and legacy Stateful operators).
	store *state.Store

	// acks[u] is the timestamp of the newest tuple from upstream
	// instance u that is reflected in this node's state.
	acks map[plan.InstanceID]int64
	// tsVec mirrors acks at logical input-stream granularity (τo).
	tsVec stream.TSVector
	// outClock stamps emitted tuples.
	outClock stream.Clock
	// outBuf is the buffer state βo.
	outBuf *state.Buffer
	// legacy holds output buffers inherited from scale-in victims,
	// keyed by the ORIGINAL emitting instance; replayed and trimmed
	// under the owner's identity (see state.Checkpoint.Legacy).
	legacy map[plan.InstanceID]*state.Buffer
	// ckptSeq numbers this instance's checkpoints.
	ckptSeq uint64
	// deltasSince counts incremental checkpoints shipped since the last
	// full one; needFull forces the next checkpoint to be full (set
	// initially, after restore, and when a delta fails to apply).
	deltasSince int
	needFull    bool

	failed  bool
	removed bool
	// holdingLive makes the node buffer non-replay deliveries until its
	// replay completes. This is the receiving-side equivalent of
	// Algorithm 3's stop-operator(u): replayed tuples carry old
	// timestamps, so a live tuple slipping in ahead of the replay would
	// advance the duplicate-detection watermark past the whole replay
	// set and silently discard it.
	holdingLive bool
	held        []delivery
	// curBorn propagates the lineage birth time of the tuple currently
	// being processed onto emitted tuples.
	curBorn int64
	// processed counts tuples reflected in state (for tests).
	processed uint64
}

func newNode(c *Cluster, inst plan.InstanceID, spec *plan.OpSpec, vm *VM, op operator.Operator) *Node {
	return &Node{
		c:        c,
		inst:     inst,
		spec:     spec,
		vm:       vm,
		op:       op,
		store:    operator.StoreOf(op),
		acks:     make(map[plan.InstanceID]int64),
		tsVec:    stream.NewTSVector(len(c.mgr.Query().Upstream(inst.Op))),
		outBuf:   state.NewBuffer(),
		needFull: true,
	}
}

// receive schedules the processing of a delivered tuple on the node's VM.
func (n *Node) receive(d delivery) {
	if n.failed || n.removed {
		d.tracker.dec()
		return
	}
	if n.holdingLive && d.tracker == nil {
		n.held = append(n.held, d)
		return
	}
	cost := n.spec.CostPerTuple
	if n.vm.Exec(cost, func() { n.process(d) }) < 0 {
		d.tracker.dec()
	}
}

// releaseHeld ends the replay phase: held live deliveries are admitted
// in arrival order.
func (n *Node) releaseHeld() {
	n.holdingLive = false
	held := n.held
	n.held = nil
	for _, d := range held {
		n.receive(d)
	}
}

// process runs the operator function on one tuple. Duplicate tuples —
// timestamps at or below the acknowledged position of their upstream
// instance — are discarded, which is what makes replay after restore
// exactly-once with respect to operator state.
func (n *Node) process(d delivery) {
	defer d.tracker.dec()
	if n.failed || n.removed {
		return
	}
	if d.t.TS <= n.acks[d.from] {
		if !d.force {
			n.c.duplicatesDropped.Inc()
			return
		}
	} else {
		n.acks[d.from] = d.t.TS
		n.tsVec.Advance(d.input, d.t.TS)
	}
	n.processed++
	if n.spec.Role == plan.RoleSink {
		n.c.observeSink(n, d.t)
		return
	}
	if n.op == nil {
		return
	}
	n.curBorn = d.t.Born
	n.op.OnTuple(operator.Context{Now: n.c.sim.Now(), Input: d.input}, d.t, n.emit)
}

// emit stamps, buffers and routes one output tuple to every logical
// downstream operator.
func (n *Node) emit(key stream.Key, payload any) {
	out := stream.Tuple{TS: n.outClock.Next(), Key: key, Born: n.curBorn, Payload: payload}
	if out.Born == 0 {
		out.Born = n.c.sim.Now()
	}
	n.c.route(n, out)
}

// onTime drives TimeDriven operators (window flushes).
func (n *Node) onTime() {
	if n.failed || n.removed || n.op == nil {
		return
	}
	td, ok := n.op.(operator.TimeDriven)
	if !ok {
		return
	}
	n.curBorn = n.c.sim.Now()
	td.OnTime(n.c.sim.Now(), n.emit)
}

// snapshot builds a full checkpoint of this node's state
// (checkpoint-state, §3.2). The processing-state copy is taken
// synchronously at the current virtual instant, so it is consistent by
// construction. Returns nil when the managed state fails to encode (the
// previous backup then stays authoritative).
func (n *Node) snapshot() *state.Checkpoint {
	n.ckptSeq++
	proc := state.NewProcessing(len(n.tsVec))
	proc.TS = n.tsVec.Clone()
	if n.op != nil {
		kv, err := operator.SnapshotState(n.op)
		if err != nil {
			return nil
		}
		proc.KV = kv
	}
	n.needFull = false
	n.deltasSince = 0
	// Drop fully acknowledged legacy buffers before cloning.
	for owner, lb := range n.legacy {
		if lb.Len() == 0 {
			delete(n.legacy, owner)
		}
	}
	return &state.Checkpoint{
		Instance:   n.inst,
		Seq:        n.ckptSeq,
		Processing: proc,
		Buffer:     n.outBuf.Clone(),
		OutClock:   n.outClock.Last(),
		Acks:       state.CloneAcks(n.acks),
		Legacy:     state.CloneLegacy(n.legacy),
	}
}

// maybeDelta extracts an incremental checkpoint when the cluster's
// DeltaPolicy allows one, or nil when a full checkpoint is due. The
// sequence chain is optimistic: if an earlier ship was lost, the backup
// host rejects the delta (sequence gap) and the node falls back to a
// full checkpoint — a delta is never load-bearing.
func (n *Node) maybeDelta(p state.DeltaPolicy) *state.DeltaCheckpoint {
	if n.store == nil || !p.Enabled() || n.needFull || n.deltasSince >= p.FullEvery-1 {
		return nil
	}
	base := n.ckptSeq
	n.ckptSeq++
	d, err := n.store.TakeDelta(n.tsVec, base, n.ckptSeq)
	if err != nil {
		return nil
	}
	if !p.DeltaAllowed(d.Size(), n.store.LastFullSize()) {
		// The dirty set is consumed, but the full checkpoint that
		// follows supersedes everything the delta held.
		return nil
	}
	n.deltasSince++
	return &state.DeltaCheckpoint{
		Instance: n.inst,
		Delta:    d,
		Buffer:   n.outBuf.Clone(),
		OutClock: n.outClock.Last(),
		Acks:     state.CloneAcks(n.acks),
	}
}

// restore installs a checkpoint (restore-state, Algorithm 1): processing
// state, buffer state, the output clock, and the acknowledgement map used
// for duplicate detection during replay.
func (n *Node) restore(cp *state.Checkpoint) error {
	if n.op != nil {
		if err := operator.RestoreState(n.op, cp.Processing.KV); err != nil {
			return fmt.Errorf("sim: restore %s: %w", n.inst, err)
		}
	}
	n.tsVec = cp.Processing.TS.Clone()
	for len(n.tsVec) < len(n.c.mgr.Query().Upstream(n.inst.Op)) {
		n.tsVec = append(n.tsVec, 0)
	}
	n.outBuf = cp.Buffer.Clone()
	n.legacy = state.CloneLegacy(cp.Legacy)
	n.outClock.Reset(cp.OutClock)
	n.acks = state.CloneAcks(cp.Acks)
	if n.acks == nil {
		n.acks = make(map[plan.InstanceID]int64)
	}
	n.ckptSeq = cp.Seq
	n.deltasSince = 0
	n.needFull = true
	return nil
}
