package sim

import (
	"fmt"
	"testing"

	"seep/internal/control"
	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/stream"
)

// wordQuery builds the §6.2 windowed word frequency query: a source of
// sentence fragments, a stateless splitter, a stateful counter and a
// sink. Costs are calibrated so one VM handles ~2000 words/s.
func wordQuery() *plan.Query {
	q := plan.NewQuery()
	q.AddOp(plan.OpSpec{ID: "src", Role: plan.RoleSource})
	q.AddOp(plan.OpSpec{ID: "split", Role: plan.RoleStateless, CostPerTuple: 0.0001})
	q.AddOp(plan.OpSpec{ID: "count", Role: plan.RoleStateful, CostPerTuple: 0.0005})
	q.AddOp(plan.OpSpec{ID: "sink", Role: plan.RoleSink})
	q.Connect("src", "split")
	q.Connect("split", "count")
	q.Connect("count", "sink")
	return q
}

func wordFactories() map[plan.OpID]operator.Factory {
	return map[plan.OpID]operator.Factory{
		"split": func() operator.Operator { return operator.WordSplitter() },
		"count": func() operator.Operator { return operator.NewWordCounter(0) },
	}
}

// vocabGen emits one word per tuple from a fixed vocabulary, cycling.
func vocabGen(vocabSize int) Generator {
	return func(i uint64) (stream.Key, any) {
		w := fmt.Sprintf("word%03d", i%uint64(vocabSize))
		return stream.KeyOfString(w), w
	}
}

// totalCounts sums the word counters across all live count partitions.
func totalCounts(c *Cluster) map[string]int64 {
	out := make(map[string]int64)
	for _, inst := range c.Manager().Instances("count") {
		n := c.Node(inst)
		if n == nil {
			continue
		}
		wc := n.op.(*operator.WordCounter)
		for word, c := range wc.Counts() {
			out[word] += c
		}
	}
	return out
}

func mustCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg, wordQuery(), wordFactories())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddSource(plan.InstanceID{Op: "src", Part: 1}, ConstantRate(500), vocabGen(50)); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterBaselineRun(t *testing.T) {
	c := mustCluster(t, Config{Seed: 1, Mode: FTRSM})
	c.RunUntil(20_000)
	counts := totalCounts(c)
	if len(counts) != 50 {
		t.Fatalf("distinct words = %d, want 50", len(counts))
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	// 500 tuples/s × 20 s, minus tuples in flight at the end.
	if total < int64(float64(500*20)*0.98) || total > 500*20 {
		t.Errorf("total processed = %d, want ≈10000", total)
	}
	if c.SinkCount.Value() == 0 {
		t.Error("sink received nothing")
	}
	if c.Latency.Count() == 0 {
		t.Error("no latency samples")
	}
	// Under light load latency should be a few ms (net + service).
	if p50 := c.Latency.Percentile(0.5); p50 > 50 {
		t.Errorf("P50 latency = %d ms under light load", p50)
	}
}

// TestClusterRecoveryExactlyOnceState is the central correctness claim:
// failing the stateful operator and recovering it via R+SM yields exactly
// the same operator state as a run without any failure.
func TestClusterRecoveryExactlyOnceState(t *testing.T) {
	run := func(fail bool) map[string]int64 {
		c := mustCluster(t, Config{Seed: 7, Mode: FTRSM, CheckpointIntervalMillis: 5_000})
		if fail {
			c.Sim().At(22_000, func() {
				if err := c.FailInstance(plan.InstanceID{Op: "count", Part: 1}); err != nil {
					t.Error(err)
				}
			})
		}
		c.RunUntil(60_000)
		return totalCounts(c)
	}
	want := run(false)
	got := run(true)
	if len(got) != len(want) {
		t.Fatalf("distinct words: got %d, want %d", len(got), len(want))
	}
	for w, n := range want {
		if got[w] != n {
			t.Errorf("count[%s] = %d after recovery, want %d", w, got[w], n)
		}
	}
}

func TestClusterRecoveryRecorded(t *testing.T) {
	c := mustCluster(t, Config{Seed: 3, Mode: FTRSM, CheckpointIntervalMillis: 5_000})
	c.Sim().At(20_000, func() {
		_ = c.FailInstance(plan.InstanceID{Op: "count", Part: 1})
	})
	c.RunUntil(60_000)
	recs := c.Recoveries()
	if len(recs) != 1 {
		t.Fatalf("recoveries = %d", len(recs))
	}
	r := recs[0]
	if !r.Failure || r.Pi != 1 || r.Victim.Op != "count" {
		t.Errorf("record = %+v", r)
	}
	if r.Duration() <= 0 || r.Duration() > 30_000 {
		t.Errorf("recovery duration = %d ms", r.Duration())
	}
	if r.ReplayedTuples == 0 {
		t.Error("no tuples replayed")
	}
	// Duplicates must have been dropped during replay (tuples reflected
	// in the checkpoint re-delivered from upstream buffers).
	if c.DuplicatesDropped() == 0 {
		t.Error("expected replay duplicates to be dropped")
	}
	// The new instance is live and owned by the same logical operator.
	insts := c.Manager().Instances("count")
	if len(insts) != 1 || insts[0].Part == 1 {
		t.Errorf("post-recovery instances = %v", insts)
	}
}

func TestClusterParallelRecovery(t *testing.T) {
	c := mustCluster(t, Config{
		Seed: 5, Mode: FTRSM,
		CheckpointIntervalMillis: 10_000,
		RecoveryParallelism:      2,
	})
	c.Sim().At(25_000, func() {
		_ = c.FailInstance(plan.InstanceID{Op: "count", Part: 1})
	})
	c.RunUntil(70_000)
	recs := c.Recoveries()
	if len(recs) != 1 || recs[0].Pi != 2 {
		t.Fatalf("recoveries = %+v", recs)
	}
	if got := c.Manager().Parallelism("count"); got != 2 {
		t.Errorf("parallelism after parallel recovery = %d", got)
	}
	// All 50 words still tracked across the two partitions.
	counts := totalCounts(c)
	if len(counts) != 50 {
		t.Errorf("distinct words after parallel recovery = %d", len(counts))
	}
}

func TestClusterScaleOutPreservesState(t *testing.T) {
	run := func(scale bool) map[string]int64 {
		c := mustCluster(t, Config{Seed: 11, Mode: FTRSM, CheckpointIntervalMillis: 5_000})
		if scale {
			c.Sim().At(20_000, func() {
				if err := c.ScaleOut(plan.InstanceID{Op: "count", Part: 1}, 2); err != nil {
					t.Error(err)
				}
			})
		}
		c.RunUntil(60_000)
		return totalCounts(c)
	}
	want := run(false)
	got := run(true)
	if len(got) != len(want) {
		t.Fatalf("distinct words: got %d, want %d", len(got), len(want))
	}
	// Operator state must be exactly preserved through the split: the
	// checkpoint plus held-replay reconstruction makes scale out
	// exactly-once with respect to state, same as recovery.
	for w, n := range want {
		if got[w] != n {
			t.Errorf("count[%s] = %d after scale out, want %d", w, got[w], n)
		}
	}
}

func TestClusterScaleOutSplitsKeys(t *testing.T) {
	c := mustCluster(t, Config{Seed: 13, Mode: FTRSM, CheckpointIntervalMillis: 5_000})
	c.Sim().At(15_000, func() {
		_ = c.ScaleOut(plan.InstanceID{Op: "count", Part: 1}, 2)
	})
	c.RunUntil(40_000)
	insts := c.Manager().Instances("count")
	if len(insts) != 2 {
		t.Fatalf("instances = %v", insts)
	}
	// Both partitions hold disjoint non-empty subsets of the words.
	routing := c.Manager().Routing("count")
	for _, inst := range insts {
		n := c.Node(inst)
		if n == nil {
			t.Fatalf("no node for %v", inst)
		}
		keys := n.op.(*operator.WordCounter).State().Keys()
		if len(keys) == 0 {
			t.Errorf("partition %v holds no state", inst)
		}
		r, ok := routing.RangeOf(inst)
		if !ok {
			t.Fatalf("no routing range for %v", inst)
		}
		for _, k := range keys {
			if !r.Contains(k) {
				t.Errorf("partition %v holds key %d outside its range %v", inst, k, r)
			}
		}
	}
}

func TestClusterUpstreamBackupRecovery(t *testing.T) {
	c := mustCluster(t, Config{Seed: 17, Mode: FTUpstreamBackup, WindowMillis: 120_000})
	c.Sim().At(20_000, func() {
		_ = c.FailInstance(plan.InstanceID{Op: "count", Part: 1})
	})
	c.RunUntil(60_000)
	recs := c.Recoveries()
	if len(recs) != 1 {
		t.Fatalf("recoveries = %+v", recs)
	}
	// The retained window covered the whole run, so re-processing must
	// rebuild the full state.
	counts := totalCounts(c)
	if len(counts) != 50 {
		t.Errorf("distinct words after UB recovery = %d", len(counts))
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	if total < 28_000 {
		t.Errorf("UB rebuilt %d counts, want ≈30000", total)
	}
}

func TestClusterSourceReplayRecovery(t *testing.T) {
	c := mustCluster(t, Config{Seed: 19, Mode: FTSourceReplay, WindowMillis: 120_000})
	c.Sim().At(20_000, func() {
		_ = c.FailInstance(plan.InstanceID{Op: "count", Part: 1})
	})
	c.RunUntil(90_000)
	recs := c.Recoveries()
	if len(recs) != 1 {
		t.Fatalf("recoveries = %+v", recs)
	}
	if recs[0].ReplayedTuples == 0 {
		t.Error("SR replayed nothing")
	}
	counts := totalCounts(c)
	if len(counts) != 50 {
		t.Errorf("distinct words after SR recovery = %d", len(counts))
	}
}

func TestClusterRSMFasterThanBaselines(t *testing.T) {
	recoveryTime := func(mode FTMode) Millis {
		c := mustCluster(t, Config{
			Seed: 23, Mode: mode,
			CheckpointIntervalMillis: 5_000,
			WindowMillis:             30_000,
		})
		c.Sim().At(40_000, func() {
			_ = c.FailInstance(plan.InstanceID{Op: "count", Part: 1})
		})
		c.RunUntil(120_000)
		recs := c.Recoveries()
		if len(recs) != 1 {
			t.Fatalf("mode %v: recoveries = %+v", mode, recs)
		}
		return recs[0].Duration()
	}
	rsm := recoveryTime(FTRSM)
	ub := recoveryTime(FTUpstreamBackup)
	sr := recoveryTime(FTSourceReplay)
	// The paper's Fig. 11: R+SM < SR < UB (SR slightly faster than UB).
	if rsm >= ub || rsm >= sr {
		t.Errorf("R+SM (%d ms) should beat UB (%d ms) and SR (%d ms)", rsm, ub, sr)
	}
}

func TestClusterPolicyScalesOut(t *testing.T) {
	q := wordQuery()
	c, err := NewCluster(Config{Seed: 29, Mode: FTRSM, Pool: PoolConfig{Size: 4}}, q, wordFactories())
	if err != nil {
		t.Fatal(err)
	}
	// 3000 words/s against a counter that handles 2000/s: bottleneck.
	if err := c.AddSource(plan.InstanceID{Op: "src", Part: 1}, ConstantRate(3000), vocabGen(200)); err != nil {
		t.Fatal(err)
	}
	c.EnablePolicy(control.Policy{Threshold: 0.70, ConsecutiveReports: 2, ReportEveryMillis: 5_000})
	c.RunUntil(120_000)
	if got := c.Manager().Parallelism("count"); got < 2 {
		t.Errorf("count parallelism = %d, want ≥ 2 after sustained overload", got)
	}
	recs := c.Recoveries()
	if len(recs) == 0 {
		t.Fatal("no scale-out recorded")
	}
	for _, r := range recs {
		if r.Failure {
			t.Errorf("policy run recorded a failure recovery: %+v", r)
		}
	}
	// After scale out the system keeps up: throughput at the sink tracks
	// the input rate.
	if c.SinkCount.Value() == 0 {
		t.Error("sink starved")
	}
}

func TestClusterCheckpointOverheadVisible(t *testing.T) {
	p95 := func(interval Millis, mode FTMode, vocab int) int64 {
		q := wordQuery()
		c, err := NewCluster(Config{
			Seed: 31, Mode: mode,
			CheckpointIntervalMillis: interval,
			CheckpointCostPerMB:      40, // exaggerated for test visibility
		}, q, wordFactories())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddSource(plan.InstanceID{Op: "src", Part: 1}, ConstantRate(800), vocabGen(vocab)); err != nil {
			t.Fatal(err)
		}
		c.RunUntil(60_000)
		return c.Latency.Percentile(0.95)
	}
	withCkpt := p95(5_000, FTRSM, 5000)
	without := p95(5_000, FTNone, 5000)
	if withCkpt <= without {
		t.Errorf("P95 with checkpointing (%d) should exceed baseline (%d)", withCkpt, without)
	}
}

func TestClusterGuards(t *testing.T) {
	c := mustCluster(t, Config{Seed: 37, Mode: FTRSM})
	if err := c.FailInstance(plan.InstanceID{Op: "src", Part: 1}); err == nil {
		t.Error("failing a source should be rejected")
	}
	if err := c.FailInstance(plan.InstanceID{Op: "count", Part: 9}); err == nil {
		t.Error("failing an unknown instance should be rejected")
	}
	if err := c.ScaleOut(plan.InstanceID{Op: "count", Part: 9}, 2); err == nil {
		t.Error("scaling an unknown instance should be rejected")
	}
	if err := c.AddSource(plan.InstanceID{Op: "count", Part: 1}, ConstantRate(1), vocabGen(1)); err == nil {
		t.Error("AddSource on non-source should be rejected")
	}
}

func TestClusterDeterministicRuns(t *testing.T) {
	run := func() (uint64, int64) {
		c := mustCluster(t, Config{Seed: 41, Mode: FTRSM})
		c.Sim().At(12_000, func() {
			_ = c.FailInstance(plan.InstanceID{Op: "count", Part: 1})
		})
		c.RunUntil(40_000)
		return c.SinkCount.Value(), c.Latency.Percentile(0.99)
	}
	n1, p1 := run()
	n2, p2 := run()
	if n1 != n2 || p1 != p2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", n1, p1, n2, p2)
	}
}
