package sim

import (
	"testing"
)

func TestSimOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if s.Now() != 30 {
		t.Errorf("Now = %d", s.Now())
	}
}

func TestSimFIFOAtSameTime(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", got)
		}
	}
}

func TestSimPastScheduling(t *testing.T) {
	s := New(1)
	var ran bool
	s.At(100, func() {
		s.At(50, func() { ran = true }) // in the past → runs now
	})
	s.Run()
	if !ran {
		t.Error("past-scheduled event did not run")
	}
	if s.Now() != 100 {
		t.Errorf("clock rewound to %d", s.Now())
	}
}

func TestSimRunUntil(t *testing.T) {
	s := New(1)
	count := 0
	s.Every(10, func() bool {
		count++
		return true
	})
	s.RunUntil(100)
	if count != 10 {
		t.Errorf("ticks = %d, want 10", count)
	}
	if s.Now() != 100 {
		t.Errorf("Now = %d", s.Now())
	}
	s.RunUntil(200)
	if count != 20 {
		t.Errorf("ticks after second run = %d", count)
	}
}

func TestSimEveryStops(t *testing.T) {
	s := New(1)
	count := 0
	s.Every(10, func() bool {
		count++
		return count < 3
	})
	s.Run()
	if count != 3 {
		t.Errorf("ticks = %d, want 3", count)
	}
}

func TestSimHalt(t *testing.T) {
	s := New(1)
	ran := false
	s.At(10, func() { s.Halt() })
	s.At(20, func() { ran = true })
	s.Run()
	if ran {
		t.Error("event after halt executed")
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d", s.Pending())
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() []int64 {
		s := New(42)
		var ticks []int64
		s.Every(7, func() bool {
			if s.Rand().Intn(10) < 5 {
				ticks = append(ticks, s.Now())
			}
			return s.Now() < 1000
		})
		s.Run()
		return ticks
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic runs: %d vs %d ticks", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestVMExecSerialises(t *testing.T) {
	s := New(1)
	vm := NewVM(s, 1, 1.0) // 1 unit/s
	var done []Millis
	// Two 100 ms jobs submitted together run back to back.
	vm.Exec(0.1, func() { done = append(done, s.Now()) })
	vm.Exec(0.1, func() { done = append(done, s.Now()) })
	s.Run()
	if len(done) != 2 || done[0] != 100 || done[1] != 200 {
		t.Errorf("completions = %v", done)
	}
}

func TestVMFractionalWork(t *testing.T) {
	s := New(1)
	vm := NewVM(s, 1, 1.0)
	// 1000 jobs of 0.4 ms should take ~400 ms total, not 0.
	n := 0
	for i := 0; i < 1000; i++ {
		vm.Exec(0.0004, func() { n++ })
	}
	s.Run()
	if n != 1000 {
		t.Fatalf("completed %d", n)
	}
	if s.Now() < 380 || s.Now() > 420 {
		t.Errorf("total time for fractional work = %d ms, want ≈400", s.Now())
	}
}

func TestVMUtilization(t *testing.T) {
	s := New(1)
	vm := NewVM(s, 1, 1.0)
	vm.ResetWindow()
	// 500 ms of work over a 1000 ms window → 50%.
	vm.Exec(0.5, func() {})
	s.RunUntil(1000)
	u := vm.Utilization()
	if u < 0.45 || u > 0.55 {
		t.Errorf("Utilization = %v, want ≈0.5", u)
	}
	vm.ResetWindow()
	s.RunUntil(2000)
	if u := vm.Utilization(); u != 0 {
		t.Errorf("idle window utilization = %v", u)
	}
	// Overload: 3 s of work submitted in a 1 s window → > 1.
	vm.ResetWindow()
	vm.Exec(3.0, func() {})
	s.RunUntil(3000)
	if u := vm.Utilization(); u <= 1.0 {
		t.Errorf("overloaded utilization = %v, want > 1", u)
	}
}

func TestVMFail(t *testing.T) {
	s := New(1)
	vm := NewVM(s, 1, 1.0)
	ran := false
	vm.Exec(0.1, func() { ran = true })
	vm.Fail()
	s.Run()
	if ran {
		t.Error("work completed on failed VM")
	}
	if vm.Exec(0.1, func() {}) != -1 {
		t.Error("Exec on failed VM should return -1")
	}
	if !vm.Failed() {
		t.Error("Failed() = false")
	}
}

func TestVMQueueDelay(t *testing.T) {
	s := New(1)
	vm := NewVM(s, 1, 2.0) // 2 units/s → 1 unit = 500 ms
	vm.Exec(1.0, func() {})
	if d := vm.QueueDelay(); d != 500 {
		t.Errorf("QueueDelay = %d, want 500", d)
	}
	s.Run()
	if d := vm.QueueDelay(); d != 0 {
		t.Errorf("QueueDelay after drain = %d", d)
	}
}

func TestPoolFastHandoff(t *testing.T) {
	s := New(1)
	p := NewPool(s, PoolConfig{Size: 2, ProvisionDelayMillis: 90_000, HandoffDelayMillis: 2_000})
	var gotAt Millis = -1
	p.Acquire(func(vm *VM) { gotAt = s.Now() })
	s.RunUntil(5_000)
	if gotAt != 2_000 {
		t.Errorf("pooled VM handed off at %d, want 2000", gotAt)
	}
	if p.ExhaustedMisses() != 0 {
		t.Errorf("misses = %d", p.ExhaustedMisses())
	}
}

func TestPoolRefills(t *testing.T) {
	s := New(1)
	p := NewPool(s, PoolConfig{Size: 1, ProvisionDelayMillis: 10_000, HandoffDelayMillis: 100})
	p.Acquire(func(vm *VM) {})
	if p.Available() != 0 {
		t.Fatalf("Available = %d", p.Available())
	}
	s.RunUntil(11_000)
	if p.Available() != 1 {
		t.Errorf("pool did not refill: Available = %d", p.Available())
	}
}

func TestPoolExhaustion(t *testing.T) {
	s := New(1)
	p := NewPool(s, PoolConfig{Size: 1, ProvisionDelayMillis: 10_000, HandoffDelayMillis: 100})
	var times []Millis
	for i := 0; i < 3; i++ {
		p.Acquire(func(vm *VM) { times = append(times, s.Now()) })
	}
	s.RunUntil(30_000)
	if len(times) != 3 {
		t.Fatalf("acquired %d VMs", len(times))
	}
	// First from pool (fast), the rest wait for raw provisioning.
	if times[0] != 100 {
		t.Errorf("first handoff at %d", times[0])
	}
	if times[1] != 10_000 || times[2] != 10_000 {
		t.Errorf("exhausted handoffs at %v, want 10000", times[1:])
	}
	if p.ExhaustedMisses() != 2 {
		t.Errorf("misses = %d", p.ExhaustedMisses())
	}
	// Pool eventually returns to steady-state size.
	s.RunUntil(60_000)
	if p.Available() != 1 {
		t.Errorf("steady-state Available = %d", p.Available())
	}
}

func TestPoolResize(t *testing.T) {
	s := New(1)
	p := NewPool(s, PoolConfig{Size: 4, ProvisionDelayMillis: 1_000, HandoffDelayMillis: 10})
	p.Resize(1)
	if p.Available() != 1 {
		t.Errorf("Available after shrink = %d", p.Available())
	}
	p.Resize(3)
	s.RunUntil(2_000)
	if p.Available() != 3 {
		t.Errorf("Available after grow = %d", p.Available())
	}
}

func TestPoolZeroSizeAlwaysProvisions(t *testing.T) {
	s := New(1)
	p := NewPool(s, PoolConfig{Size: 0, ProvisionDelayMillis: 5_000, HandoffDelayMillis: 10})
	var gotAt Millis = -1
	p.Acquire(func(vm *VM) { gotAt = s.Now() })
	s.RunUntil(10_000)
	if gotAt != 5_000 {
		t.Errorf("no-pool handoff at %d, want 5000", gotAt)
	}
}
