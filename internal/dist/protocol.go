// Package dist is the distributed runtime: a coordinator that owns the
// query plan, the authoritative checkpoint/backup store and the scaling
// decisions, plus workers that each host a subset of the operator
// instances on a live engine and exchange tuple batches directly over
// the TCP transport. It is the deployment substrate the paper assumes —
// operator instances on separate VMs, a logically centralised query
// manager (§2.2/§5), heartbeat failure detection and recovery through
// the same integrated scale-out algorithm as the in-process runtimes.
//
// Split of responsibilities:
//
//   - Data path: worker ↔ worker batch frames; each worker's engine
//     routes through its normal route tables, with instances hosted
//     elsewhere reached through the engine's Remote link (engine/remote.go).
//   - Checkpoints: workers capture barriers locally and ship full
//     checkpoints to the coordinator (the stable store); the coordinator
//     answers with acknowledgement trims to the upstream hosts.
//   - Failure detection: the coordinator heartbeats every worker over
//     the transport; a missed-heartbeat worker is declared down and its
//     stateful instances recovered via core.Manager.PlanRecovery, the
//     same code path the in-process runtimes use.
//   - Scaling: workers stream utilisation reports; the coordinator
//     feeds them and the heartbeat events through ONE event loop into
//     control.Detector, so scale-out and recovery decisions serialise.
package dist

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"seep/internal/control"
	"seep/internal/engine"
	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
	"seep/internal/transport"
)

// MsgKind discriminates coordinator/worker control messages (carried in
// transport control frames).
type MsgKind uint8

const (
	// MsgAssign (coordinator → worker): the deployment plan — topology
	// name, engine parameters, and the placement of every instance.
	MsgAssign MsgKind = 1 + iota
	// MsgStart (coordinator → worker): start the engine.
	MsgStart
	// MsgStop (coordinator → worker): stop the engine; the worker stays
	// up for a future assignment.
	MsgStop
	// MsgReroute (coordinator → worker): install a new routing for one
	// operator, inherit duplicate-detection watermarks, repartition and
	// replay local upstream buffers.
	MsgReroute
	// MsgDeploy (coordinator → worker): adopt a replacement instance
	// from a partitioned checkpoint.
	MsgDeploy
	// MsgRetire (coordinator → worker): stop a locally hosted instance
	// (scale-out victim after its pre-split barrier checkpoint).
	MsgRetire
	// MsgDie (coordinator → worker): crash-stop the whole worker (used
	// by Job.Fail to model a VM failure).
	MsgDie
	// MsgAck (worker → coordinator): sequence-correlated reply to
	// Assign/Reroute/Deploy/Retire.
	MsgAck
	// MsgShip (worker → coordinator): a full checkpoint for the
	// authoritative backup store.
	MsgShip
	// MsgReport (worker → coordinator): utilisation reports for the
	// bottleneck detector, piggybacking worker-level counters.
	MsgReport
	// MsgReattach (worker → coordinator): the worker's actual inventory —
	// hosted instances, running flag, last shipped barrier — sent in reply
	// to MsgResume (Seq-correlated) or unsolicited (Seq 0) when an
	// orphaned worker dials a standby coordinator.
	MsgReattach
	// MsgResume (coordinator → worker): a reborn coordinator announces
	// itself; the worker replies with MsgReattach, re-homes its control
	// link and flushes checkpoints buffered while orphaned.
	MsgResume
)

// Wire-codec selectors carried in Control.WireCodec (MsgAssign). Zero
// means unspecified and resolves to binary, so a job spec from an older
// coordinator that predates the field still gets the compact framing on
// new workers only when it opted in — older workers ignore the field
// entirely and keep decoding both framings.
const (
	wireCodecUnspecified = uint8(0)
	wireCodecBinary      = uint8(1)
	wireCodecGob         = uint8(2)
)

// wireCodecFor maps the public option string ("", "binary", "gob") to
// its wire selector.
func wireCodecFor(name string) uint8 {
	if name == "gob" {
		return wireCodecGob
	}
	return wireCodecBinary
}

// Placement locates one instance on one worker (by listener address).
type Placement struct {
	Inst plan.InstanceID
	Addr string
}

// InheritPair renames a duplicate-detection watermark during π=1
// recovery: tuples the dead instance already delivered stay deduplicated
// when its replacement re-emits them.
type InheritPair struct {
	Old, New plan.InstanceID
}

// TrimAck instructs a worker to trim its local buffers retained for
// Owner at upstream instance Up through TS, BEFORE repartitioning them.
// Merges ship these with the reroute: the merged duplicate-detection
// watermark is the victims' minimum, so the exactness of the replay set
// rests on upstream buffers being trimmed to each victim's own final
// watermark first.
type TrimAck struct {
	Up    plan.InstanceID
	Owner plan.InstanceID
	TS    int64
}

// WorkerStats is the worker-level counter snapshot piggybacked on
// reports, so Job.Metrics aggregates external workers too.
type WorkerStats struct {
	SinkTuples uint64
	DupDropped uint64
	Processed  uint64
	Transport  transport.Stats
	// Backpressure snapshots the hosted engine's credit-stall, queue-depth
	// and state-spill gauges.
	Backpressure engine.BackpressureStats
	// OrphanDropped counts checkpoint ships evicted from the bounded
	// orphan-mode buffer (drop-oldest under the byte cap).
	OrphanDropped uint64
}

// Control is the one wire struct for every control message; unused
// fields stay zero. It is gob-encoded — checkpoints, routings and other
// codec-dependent state travel as pre-encoded byte blobs.
type Control struct {
	Kind MsgKind
	// Seq correlates a request with its MsgAck.
	Seq uint64
	// From is the sender worker's listener address (its identity).
	From string

	// MsgAssign.
	Topology          string
	CoordAddr         string
	Placements        []Placement
	CheckpointMillis  int64
	TimerMillis       int64
	BatchSize         int
	BatchLingerMillis int64
	ChannelBuffer     int
	// QueueBound bounds every engine node's input queue in tuples and
	// sizes the per-link credit budgets; 0 falls back to ChannelBuffer.
	QueueBound int
	// MemoryLimitBytes arms state spilling on every stateful instance's
	// store; 0 keeps state fully in memory.
	MemoryLimitBytes  int64
	ReportEveryMillis int64
	// StandbyAddr (MsgAssign, MsgResume) is where an orphaned worker
	// re-dials after coordinator death; empty disables the redial loop.
	StandbyAddr string
	// DetectMillis (MsgAssign, MsgResume) is the coordinator's failure
	// detection window; the worker heartbeats its coordinator link at the
	// same cadence the coordinator heartbeats workers.
	DetectMillis int64
	// WireCodec (MsgAssign) selects the data-path batch framing:
	// 0 unspecified (binary), 1 binary, 2 legacy gob. Control messages
	// stay gob either way, which is what lets a newer coordinator
	// negotiate the framing with an older worker — gob tolerates fields
	// the decoder does not know.
	WireCodec uint8
	// DeltaFullEvery / DeltaMaxFraction (MsgAssign) arm incremental
	// checkpoint shipping on the worker's engine (state.DeltaPolicy);
	// DeltaFullEvery below 2 disables it.
	DeltaFullEvery   int
	DeltaMaxFraction float64
	// DeltaCompress (MsgAssign) flate-compresses delta-checkpoint frames.
	DeltaCompress bool

	// MsgStart. CoordNow is the coordinator's job clock (ms since job
	// start) at send time; the worker offsets its engine clock by it so
	// Born stamps and latency observations across workers share the
	// coordinator's frame.
	CoordNow int64

	// MsgReroute / MsgDeploy / MsgRetire / MsgShip.
	Op         plan.OpID
	Routing    []byte
	New        []Placement
	Inherit    []InheritPair
	Victim     plan.InstanceID
	Checkpoint []byte
	// Victims lists every retired instance of a merge reroute (Victim
	// alone covers the scale-out/recovery case).
	Victims []plan.InstanceID
	// TrimAcks are applied before the reroute's repartition (merges).
	TrimAcks []TrimAck
	// Final, on MsgRetire, asks the worker to stop the instance FIRST
	// and ship its final checkpoint — the capture then reflects
	// everything the instance ever processed and emitted, leaving no
	// post-checkpoint window for scale-out/scale-in transitions.
	Final bool

	// MsgAck.
	Err      string
	Replayed int

	// MsgReattach: the worker's actual inventory, reconciled against the
	// replayed journal.
	Hosted      []plan.InstanceID
	Running     bool
	LastBarrier uint64

	// MsgReport.
	Reports []control.Report
	Stats   WorkerStats
}

func encodeControl(c *Control) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, fmt.Errorf("dist: encode control: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeControl(b []byte) (*Control, error) {
	var c Control
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&c); err != nil {
		return nil, fmt.Errorf("dist: decode control: %w", err)
	}
	return &c, nil
}

func encodeCheckpoint(cp *state.Checkpoint, codec state.PayloadCodec) ([]byte, error) {
	e := stream.NewEncoder(256)
	if err := state.EncodeCheckpoint(e, cp, codec); err != nil {
		return nil, err
	}
	// The encoder buffer is reused; the blob outlives this call.
	out := make([]byte, len(e.Bytes()))
	copy(out, e.Bytes())
	return out, nil
}

func decodeCheckpoint(b []byte, codec state.PayloadCodec) (*state.Checkpoint, error) {
	return state.DecodeCheckpoint(stream.NewDecoder(b), codec)
}

func encodeRouting(r *state.Routing) []byte {
	e := stream.NewEncoder(64)
	r.Encode(e)
	out := make([]byte, len(e.Bytes()))
	copy(out, e.Bytes())
	return out
}

func decodeRouting(b []byte) (*state.Routing, error) {
	return state.DecodeRouting(stream.NewDecoder(b))
}
