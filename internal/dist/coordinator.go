package dist

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"seep/internal/control"
	"seep/internal/controlplane"
	"seep/internal/core"
	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
	"seep/internal/transport"
)

// Config parameterises the coordinator.
type Config struct {
	// Addr is the coordinator's listen address (e.g. "127.0.0.1:0").
	Addr string
	// Codec serialises tuple payloads crossing the wire (default gob).
	Codec state.PayloadCodec
	// Topology is the registry name workers instantiate.
	Topology string

	// Engine parameters forwarded to every worker.
	CheckpointInterval time.Duration
	TimerInterval      time.Duration
	BatchSize          int
	BatchLinger        time.Duration
	ChannelBuffer      int
	// QueueBound bounds every worker node's input queue in tuples and
	// sizes the credit ledgers (0: channel buffer).
	QueueBound int
	// MemoryLimit arms state spilling on every stateful instance past
	// this many resident bytes (0: in-memory only).
	MemoryLimit int64
	// WireCodec selects the data-path batch framing: "" or "binary" for
	// the compact binary tuple codec, "gob" to pin workers to the legacy
	// gob framing (e.g. while a mixed-version fleet drains).
	WireCodec string
	// Delta, when enabled (FullEvery >= 2), makes workers ship
	// incremental checkpoints between full snapshots; the coordinator
	// folds them into its authoritative store. FullEvery is the epoch
	// boundary: a full snapshot every FullEvery-th capture bounds every
	// delta chain.
	Delta state.DeltaPolicy
	// DeltaCompress flate-compresses delta-checkpoint frames on the wire.
	DeltaCompress bool

	// DetectDelay is the heartbeat failure-detection horizon: a worker
	// missing replies for about this long is declared down (default
	// 500 ms).
	DetectDelay time.Duration
	// RecoveryPi is π for failure recovery (default 1; π=1 inherits
	// duplicate-detection watermarks for exact replay).
	RecoveryPi int
	// Policy, when set, enables detector-driven scale out from worker
	// utilisation reports.
	Policy *control.Policy
	// ScaleIn, when set (requires Policy), enables detector-driven
	// merges: when every partition of an operator reports utilisation
	// below the low watermark for the configured consecutive rounds,
	// the adjacent pair with the lowest combined load is merged.
	ScaleIn *control.ScaleInPolicy
	// TransitionTimeout bounds each stage of a recovery/scale-out
	// transition (default 10 s).
	TransitionTimeout time.Duration

	// ControlPlaneDir, when set, makes the control plane durable: every
	// control-plane mutation is journaled to an fsynced write-ahead log
	// in this directory, shipped checkpoints are persisted beside it
	// through core.DurableStore, and RecoverCoordinator can rebuild a
	// dead coordinator from the directory alone.
	ControlPlaneDir string
	// StandbyAddr, advertised to workers on assignment, is where an
	// orphaned worker re-dials after coordinator death (typically the
	// address a cold-standby coordinator will listen on — often the
	// coordinator's own address, reused by its replacement). Empty
	// disables the worker-side redial loop; a reborn coordinator can
	// still reach workers itself via MsgResume.
	StandbyAddr string
	// JournalHook, when set, runs after every journal append; returning
	// true crash-stops the coordinator at exactly that record, modelling
	// coordinator death at a precise point in a transition (tests).
	JournalHook func(controlplane.Kind) bool
}

func (c Config) withDefaults() Config {
	if c.Codec == nil {
		c.Codec = state.GobPayloadCodec{}
	}
	if c.DetectDelay <= 0 {
		c.DetectDelay = 500 * time.Millisecond
	}
	if c.RecoveryPi < 1 {
		c.RecoveryPi = 1
	}
	if c.TransitionTimeout <= 0 {
		c.TransitionTimeout = 10 * time.Second
	}
	return c
}

// Record documents one completed distributed recovery, scale out or
// merge.
type Record struct {
	Victim         plan.InstanceID
	Pi             int
	Failure        bool
	StartedAt      int64
	CompletedAt    int64
	ReplayedTuples int
	// Merge reports a scale-in transition: Victim is the first of the
	// merged siblings and Pi is 1.
	Merge bool
}

// event is one unit of work for the coordinator loop. Exactly one of fn
// or ctl is set (down events carry only addr).
type event struct {
	kind evKind
	addr string
	ctl  *Control
	fn   func()
}

type evKind int

const (
	evCall evKind = iota
	evDown
	evCtl
)

// transition is one in-flight topology change, advanced by the loop as
// acknowledgements and checkpoint ships arrive. Stages time out rather
// than wedge the queue.
type transition struct {
	victim   plan.InstanceID
	scaleOut bool
	seq      uint64
	stage    int
	waiting  int
	ackErrs  []string
	replayed int
	// awaitShips holds the instances whose final checkpoints must land
	// in the store before the stage advances.
	awaitShips map[plan.InstanceID]bool
	next       func()
	done       chan error

	// Merge transitions (scale in).
	merge   bool
	victims []plan.InstanceID
	// reattach marks the reborn coordinator's reconciliation handshake:
	// waiting counts MsgReattach inventories rather than MsgAck replies.
	reattach bool
	// retireSent/planned/mergedInst/newInsts track how far a scaling
	// transition got, so any abort — worker death, stage timeout, a
	// retire or reroute acknowledgement error — falls back to the
	// normal recovery path for whatever the transition left behind
	// instead of stranding stopped instances (see recoverAfterAbort).
	retireSent bool
	planned    bool
	mergedInst plan.InstanceID
	newInsts   []plan.InstanceID
}

// ready reports whether the current stage's acknowledgements and
// checkpoint ships have all arrived.
func (t *transition) ready() bool { return t.waiting <= 0 && len(t.awaitShips) == 0 }

// Coordinator owns the query plan, the authoritative backup store, the
// failure detector and the scaling policy for one distributed job. All
// decisions flow through a single event loop: heartbeat down events,
// worker acknowledgements, checkpoint ships and utilisation reports are
// one stream, so recovery and scale out serialise without per-peer
// goroutines.
type Coordinator struct {
	cfg      Config
	codec    state.PayloadCodec
	ln       *transport.Listener
	tm       *transport.Metrics
	det      *control.Detector
	shrinker *control.ScaleInDetector

	events chan event
	quit   chan struct{}
	loopWG sync.WaitGroup

	// Loop-owned state (no locks: only the loop goroutine touches it).
	// Fields marked seep:journaled are authoritative control-plane
	// state captured by snapshotState and reconstructed from the
	// write-ahead journal on failover; the journalfirst analyzer checks
	// that methods mutating them append a journal record before any
	// worker-visible send.
	q          *plan.Query   // seep:journaled
	mgr        *core.Manager // seep:journaled
	workers    map[string]*workerRef
	order      []string                   // seep:journaled
	placement  map[plan.InstanceID]string // seep:journaled
	trans      *transition
	queue      []func()
	seq        uint64 // seep:journaled
	expectDown map[string]bool
	startAt    time.Time // seep:journaled
	// dead marks a JournalHook-induced crash: the loop stops executing
	// control logic mid-statement, exactly like kill -9.
	dead bool
	// invByWorker collects MsgReattach inventories during the reborn
	// coordinator's reconciliation handshake.
	invByWorker map[string]*Control
	// legacyOwner maps a retired merge victim to the merge product that
	// carries its legacy output buffer, so acknowledgement trims
	// addressed to the old identity reach the worker hosting it (the
	// chain is chased: a merge product may itself have been replaced).
	legacyOwner map[plan.InstanceID]plan.InstanceID // seep:journaled

	// Durable control plane (nil when Config.ControlPlaneDir is unset).
	// The Journal is internally locked; jn/dstore themselves are set
	// once at construction/deploy.
	jn     *controlplane.Journal
	dstore *core.DurableStore

	// Published snapshots for cross-goroutine readers.
	mu           sync.Mutex
	records      []Record
	errs         []string
	pending      int
	merges       uint64
	pubPlacement map[plan.InstanceID]string
	workerStats  map[string]WorkerStats
	// Control-plane replay/failover numbers (zero unless this
	// coordinator was built by RecoverCoordinator).
	replayRecords  int
	replayMillis   int64
	reattached     int
	failoverMillis int64
}

type workerRef struct {
	addr  string
	peer  *transport.Peer
	alive bool
}

// NewCoordinator opens the coordinator's listener and starts its event
// loop. Deploy attaches the query and workers.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	return newCoordinator(cfg.withDefaults())
}

// newCoordinator builds the shell every coordinator shares — journal,
// listener, event loop — for both the fresh-deploy and the
// journal-recovery entry points.
func newCoordinator(cfg Config) (*Coordinator, error) {
	c := &Coordinator{
		cfg:          cfg,
		codec:        cfg.Codec,
		tm:           &transport.Metrics{},
		events:       make(chan event, 1024),
		quit:         make(chan struct{}),
		workers:      make(map[string]*workerRef),
		placement:    make(map[plan.InstanceID]string),
		expectDown:   make(map[string]bool),
		legacyOwner:  make(map[plan.InstanceID]plan.InstanceID),
		pubPlacement: make(map[plan.InstanceID]string),
		workerStats:  make(map[string]WorkerStats),
	}
	if cfg.Policy != nil {
		c.det = control.NewDetector(*cfg.Policy)
		if cfg.ScaleIn != nil {
			c.shrinker = control.NewScaleInDetector(*cfg.ScaleIn)
		}
	}
	if cfg.ControlPlaneDir != "" {
		jn, err := controlplane.Open(cfg.ControlPlaneDir)
		if err != nil {
			return nil, err
		}
		c.jn = jn
	}
	ln, err := transport.ListenWith(cfg.Addr, cfg.Codec, transport.Handlers{
		OnControl: func(body []byte) {
			ctl, err := decodeControl(body)
			if err != nil {
				return
			}
			c.post(event{kind: evCtl, addr: ctl.From, ctl: ctl})
		},
		OnDeltaCheckpoint: func(body []byte) {
			// Folded on the loop goroutine, like every other store
			// mutation.
			c.post(event{kind: evCall, fn: func() { c.storeDeltaShip(body) }})
		},
	}, c.tm)
	if err != nil {
		if c.jn != nil {
			_ = c.jn.Close()
		}
		return nil, err
	}
	c.ln = ln
	c.loopWG.Add(1)
	go c.loop()
	return c, nil
}

// Addr returns the coordinator's listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr() }

func (c *Coordinator) post(ev event) {
	select {
	case c.events <- ev:
	case <-c.quit:
	}
}

// call runs fn on the loop goroutine and waits for it to signal done.
// The deadline is a stopped timer, not time.After: these waits sit on
// every coordinator entry point, and a bare time.After would leak one
// timer per call until its deadline fired.
func (c *Coordinator) call(timeout time.Duration, fn func(done chan error)) error {
	done := make(chan error, 1)
	c.post(event{kind: evCall, fn: func() { fn(done) }})
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		return fmt.Errorf("dist: coordinator call timed out after %v", timeout)
	case <-c.quit:
		return fmt.Errorf("dist: coordinator closed")
	}
}

func (c *Coordinator) loop() {
	defer c.loopWG.Done()
	for {
		select {
		case <-c.quit:
			return
		case ev := <-c.events:
			switch ev.kind {
			case evCall:
				ev.fn()
			case evDown:
				c.onWorkerDown(ev.addr)
			case evCtl:
				c.onControl(ev.ctl)
			}
			c.publish()
		}
	}
}

// publish refreshes the externally readable snapshots after every loop
// event.
func (c *Coordinator) publish() {
	busy := len(c.queue) + len(c.expectDown)
	if c.trans != nil {
		busy++
	}
	c.mu.Lock()
	c.pending = busy
	c.pubPlacement = make(map[plan.InstanceID]string, len(c.placement))
	for k, v := range c.placement {
		c.pubPlacement[k] = v
	}
	c.mu.Unlock()
}

func (c *Coordinator) pushErr(format string, args ...any) {
	c.mu.Lock()
	c.errs = append(c.errs, fmt.Sprintf(format, args...))
	c.mu.Unlock()
}

func (c *Coordinator) nowMillis() int64 {
	if c.startAt.IsZero() {
		return 0
	}
	return time.Since(c.startAt).Milliseconds()
}

// journal appends one record to the WAL (a no-op without a control-plane
// dir) and reports whether the coordinator survived the append: the
// JournalHook crash point models coordinator death at exactly that
// record, and every caller must stop dead on false — nothing after a
// crash point may execute, like a kill -9 between two statements.
func (c *Coordinator) journal(rec *controlplane.Record) bool {
	if c.dead {
		return false
	}
	if c.jn == nil {
		return true
	}
	if err := c.jn.Append(rec); err != nil {
		// A journal write failure must not take the data path down; the
		// job keeps running with a stale journal and the gap surfaces.
		c.pushErr("dist: journal %s: %v", rec.Kind, err)
		return true
	}
	if c.cfg.JournalHook != nil && c.cfg.JournalHook(rec.Kind) {
		c.crash()
		return false
	}
	return true
}

// crash models kill -9 from inside the event loop: stop everything
// without another line of control logic. Runs on the loop goroutine, so
// it must not wait for the loop itself; loop() exits on the closed quit
// after the current event unwinds.
func (c *Coordinator) crash() {
	c.dead = true
	select {
	case <-c.quit:
	default:
		close(c.quit)
	}
	c.ln.Close()
	for _, ref := range c.workers {
		if ref.peer != nil {
			ref.peer.Close()
		}
	}
	if c.jn != nil {
		_ = c.jn.Close()
	}
}

// snapshotState assembles a self-contained control-plane snapshot from
// the loop-owned state (callable only on the loop goroutine). Slices
// are sorted so identical states encode identically.
func (c *Coordinator) snapshotState() *controlplane.State {
	st := &controlplane.State{
		Topology: c.cfg.Topology,
		Workers:  append([]string(nil), c.order...),
		NextSeq:  c.seq,
		Started:  !c.startAt.IsZero(),
	}
	if st.Started {
		st.StartUnixMillis = c.startAt.UnixMilli()
	}
	for inst, addr := range c.placement {
		st.Placements = append(st.Placements, controlplane.Placed{Inst: inst, Addr: addr})
	}
	sort.Slice(st.Placements, func(i, j int) bool {
		a, b := st.Placements[i].Inst, st.Placements[j].Inst
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Part < b.Part
	})
	for _, op := range c.q.Ops() {
		st.Instances = append(st.Instances, controlplane.OpInstances{Op: op, Insts: c.mgr.Instances(op)})
		st.NextPart = append(st.NextPart, controlplane.OpPart{Op: op, Next: c.mgr.NextPart(op)})
		if r := c.mgr.Routing(op); r != nil {
			st.Routing = append(st.Routing, controlplane.OpRouting{Op: op, Blob: encodeRouting(r)})
		}
	}
	for old, owner := range c.legacyOwner {
		st.Legacy = append(st.Legacy, controlplane.LegacyPair{Old: old, Owner: owner})
	}
	sort.Slice(st.Legacy, func(i, j int) bool {
		a, b := st.Legacy[i].Old, st.Legacy[j].Old
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Part < b.Part
	})
	return st
}

// maybeRotate compacts the journal to one snapshot record when it has
// grown past a megabyte and the control plane is quiescent (no
// transition in flight whose intent record a rotation would erase).
func (c *Coordinator) maybeRotate() {
	if c.jn == nil || c.dead || c.trans != nil || len(c.queue) > 0 || c.mgr == nil {
		return
	}
	if c.jn.Size() <= 1<<20 {
		return
	}
	if err := c.jn.Rotate(c.snapshotState(), c.seq); err != nil {
		c.pushErr("dist: rotate journal: %v", err)
	}
}

// standbyAddr is where orphaned workers re-dial after coordinator death.
// With a durable control plane and no explicit standby, workers redial
// the coordinator's own address — the restart-in-place pattern, where a
// reborn coordinator listens where the old one did.
func (c *Coordinator) standbyAddr() string {
	if c.cfg.StandbyAddr != "" {
		return c.cfg.StandbyAddr
	}
	if c.cfg.ControlPlaneDir != "" {
		return c.ln.Addr()
	}
	return ""
}

// ---- public operations (cross-goroutine) ----

// Deploy dials the workers, computes the placement and installs the
// topology on every worker. Blocking; must precede StartJob.
func (c *Coordinator) Deploy(q *plan.Query, workerAddrs []string) error {
	if len(workerAddrs) == 0 {
		return fmt.Errorf("dist: no workers")
	}
	return c.call(30*time.Second, func(done chan error) { c.startDeploy(q, workerAddrs, done) })
}

// StartJob starts every worker's engine (and the registry-bound
// sources), returning once every worker has acknowledged — callers may
// inject immediately after.
func (c *Coordinator) StartJob() error {
	done := make(chan error, 1)
	c.post(event{kind: evCall, fn: func() {
		c.enqueueOp(func() { c.beginStart(done) })
	}})
	timer := time.NewTimer(2 * c.cfg.TransitionTimeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		return fmt.Errorf("dist: start timed out")
	case <-c.quit:
		return fmt.Errorf("dist: coordinator closed")
	}
}

func (c *Coordinator) beginStart(done chan error) {
	t := &transition{seq: c.nextSeq(), done: done}
	c.trans = t
	c.startAt = time.Now()
	if !c.journal(&controlplane.Record{Kind: controlplane.RecStart, Seq: t.seq, StartUnixMillis: c.startAt.UnixMilli()}) {
		return
	}
	// Per-worker sends, each carrying the coordinator's job clock at
	// send time: the worker offsets its engine clock by it, so Born
	// stamps and latency observations across workers share the
	// coordinator's frame (error ≈ one-way control latency per worker).
	for _, addr := range c.order {
		if c.sendTo(addr, &Control{Kind: MsgStart, Seq: t.seq, CoordNow: c.nowMillis()}) {
			t.waiting++
		}
	}
	if t.waiting == 0 {
		c.finish(t, fmt.Errorf("dist: start reached no workers"))
		return
	}
	t.next = func() {
		if len(t.ackErrs) > 0 {
			c.finish(t, fmt.Errorf("dist: start failed: %s", strings.Join(t.ackErrs, "; ")))
			return
		}
		c.finish(t, nil)
	}
	c.armTimeout(t)
}

// StopJob gracefully stops every worker's engine; workers stay up (a
// daemon can be re-assigned).
func (c *Coordinator) StopJob() {
	_ = c.call(10*time.Second, func(done chan error) {
		c.broadcast(&Control{Kind: MsgStop})
		done <- nil
	})
}

// Fail crash-stops the worker hosting inst — the distributed Job.Fail
// models VM failure, so the whole hosting worker dies and heartbeat
// detection drives recovery of everything it hosted.
func (c *Coordinator) Fail(inst plan.InstanceID) error {
	return c.call(10*time.Second, func(done chan error) {
		spec := c.q.Op(inst.Op)
		if spec == nil || !c.mgr.Live(inst) {
			done <- fmt.Errorf("dist: %s is not a live instance", inst)
			return
		}
		if spec.Role == plan.RoleSource || spec.Role == plan.RoleSink {
			done <- fmt.Errorf("dist: sources and sinks are assumed reliable (§2.2)")
			return
		}
		addr := c.placement[inst]
		ref := c.workers[addr]
		if ref == nil || !ref.alive {
			done <- fmt.Errorf("dist: no live worker hosts %s", inst)
			return
		}
		body, err := encodeControl(&Control{Kind: MsgDie})
		if err != nil {
			done <- err
			return
		}
		// The worker tears itself down on MsgDie; a failed send means
		// it is already dead. Either way the heartbeat detector declares
		// it down and recovery follows.
		_ = ref.peer.SendControl(body)
		c.expectDown[addr] = true
		done <- nil
	})
}

// ScaleOut splits a live instance into pi partitions: barrier
// checkpoint, retire, plan, reroute, deploy — the distributed
// Algorithm 3. Blocks until the transition completes.
func (c *Coordinator) ScaleOut(victim plan.InstanceID, pi int) error {
	done := make(chan error, 1)
	c.post(event{kind: evCall, fn: func() {
		c.enqueueOp(func() { c.beginScaleOut(victim, pi, done) })
	}})
	timer := time.NewTimer(4 * c.cfg.TransitionTimeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		return fmt.Errorf("dist: scale out of %s timed out", victim)
	case <-c.quit:
		return fmt.Errorf("dist: coordinator closed")
	}
}

// ScaleIn merges sibling partitions with adjacent key ranges into one
// instance: the distributed staged merge — final-retire every victim
// (stop, capture, ship), plan the merge at the authoritative store,
// reroute all workers (trimming to each victim's final watermark before
// they repartition), deploy the merged instance. Blocks until the
// transition completes. A worker death mid-merge aborts the transition
// and falls back to the normal recovery path.
func (c *Coordinator) ScaleIn(victims []plan.InstanceID) error {
	done := make(chan error, 1)
	vs := append([]plan.InstanceID(nil), victims...)
	c.post(event{kind: evCall, fn: func() {
		c.enqueueOp(func() { c.beginScaleIn(vs, done) })
	}})
	timer := time.NewTimer(4 * c.cfg.TransitionTimeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		return fmt.Errorf("dist: scale in of %v timed out", victims)
	case <-c.quit:
		return fmt.Errorf("dist: coordinator closed")
	}
}

// Merges returns how many scale-in merges have completed.
func (c *Coordinator) Merges() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.merges
}

// Pending reports queued or in-flight transitions plus worker deaths
// not yet detected — the distributed Run()'s settle gate.
func (c *Coordinator) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pending
}

// Records returns completed recovery/scale-out records, oldest first.
func (c *Coordinator) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Record, len(c.records))
	copy(out, c.records)
	return out
}

// Errors returns asynchronous failures (recoveries that could not
// complete, lost assumed-reliable instances).
func (c *Coordinator) Errors() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.errs))
	copy(out, c.errs)
	return out
}

// PlacementOf returns the worker address hosting inst ("" if unknown).
func (c *Coordinator) PlacementOf(inst plan.InstanceID) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pubPlacement[inst]
}

// WorkerStatsSnapshot returns the latest piggybacked per-worker
// counters (external workers only report when a policy/report loop is
// active).
func (c *Coordinator) WorkerStatsSnapshot() map[string]WorkerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]WorkerStats, len(c.workerStats))
	for k, v := range c.workerStats {
		out[k] = v
	}
	return out
}

// TransportStats snapshots the coordinator's own transport counters.
func (c *Coordinator) TransportStats() transport.Stats { return c.tm.Snapshot() }

// ControlPlaneStats snapshots journal traffic, fsync latency and — for
// a coordinator built by RecoverCoordinator — replay and failover
// timings. Zero-valued when no control-plane dir is configured.
func (c *Coordinator) ControlPlaneStats() controlplane.Stats {
	var st controlplane.Stats
	if c.jn != nil {
		st = c.jn.Stats()
	}
	c.mu.Lock()
	st.ReplayRecords = c.replayRecords
	st.ReplayMillis = c.replayMillis
	st.Reattached = c.reattached
	st.FailoverMillis = c.failoverMillis
	c.mu.Unlock()
	return st
}

// Manager exposes the authoritative query manager (instances,
// parallelism, backup-store ship stats).
func (c *Coordinator) Manager() *core.Manager { return c.mgr }

// Close stops the event loop and tears down all connections. Workers
// are not stopped (StopJob does that); in-process deployments kill them
// directly.
func (c *Coordinator) Close() {
	select {
	case <-c.quit:
		return
	default:
	}
	close(c.quit)
	c.loopWG.Wait()
	c.ln.Close()
	for _, ref := range c.workers {
		if ref.peer != nil {
			ref.peer.Close()
		}
	}
	if c.jn != nil {
		_ = c.jn.Close()
	}
}

// ---- loop-side operations ----

func (c *Coordinator) startDeploy(q *plan.Query, addrs []string, done chan error) {
	if c.mgr != nil {
		done <- fmt.Errorf("dist: already deployed")
		return
	}
	mgr, err := core.NewManager(q)
	if err != nil {
		done <- err
		return
	}
	c.q, c.mgr = q, mgr
	if c.cfg.ControlPlaneDir != "" {
		ds, err := core.NewDurableStoreOver(mgr.Backups(), c.cfg.ControlPlaneDir, c.codec)
		if err != nil {
			done <- err
			return
		}
		c.dstore = ds
	}
	for _, addr := range addrs {
		peer, err := c.dialWorker(addr)
		if err != nil {
			done <- fmt.Errorf("dist: worker %s: %w", addr, err)
			return
		}
		c.workers[addr] = &workerRef{addr: addr, peer: peer, alive: true}
		c.order = append(c.order, addr)
	}
	// Deterministic placement: operators in declaration order round-robin
	// across workers, partitions fanning out from the operator's slot —
	// adjacent operators land on different workers, so every edge
	// exercises the network and no worker hosts a whole pipeline.
	placements := make([]Placement, 0, 16)
	for opIdx, op := range q.Ops() {
		for i, inst := range mgr.Instances(op) {
			addr := addrs[(opIdx+i)%len(addrs)]
			c.placement[inst] = addr
			placements = append(placements, Placement{Inst: inst, Addr: addr})
		}
	}
	t := &transition{seq: c.nextSeq(), done: done}
	c.trans = t
	// The deployment snapshot goes to the WAL before any worker sees the
	// plan: a coordinator that dies past this point replays a placement
	// that is a superset of what workers know, never the reverse.
	if !c.journal(&controlplane.Record{Kind: controlplane.RecDeploy, Seq: t.seq, State: c.snapshotState()}) {
		return
	}
	ctl := &Control{
		Kind:              MsgAssign,
		Seq:               t.seq,
		Topology:          c.cfg.Topology,
		CoordAddr:         c.ln.Addr(),
		Placements:        placements,
		CheckpointMillis:  c.cfg.CheckpointInterval.Milliseconds(),
		TimerMillis:       c.cfg.TimerInterval.Milliseconds(),
		BatchSize:         c.cfg.BatchSize,
		BatchLingerMillis: c.cfg.BatchLinger.Milliseconds(),
		ChannelBuffer:     c.cfg.ChannelBuffer,
		QueueBound:        c.cfg.QueueBound,
		MemoryLimitBytes:  c.cfg.MemoryLimit,
		StandbyAddr:       c.standbyAddr(),
		DetectMillis:      c.cfg.DetectDelay.Milliseconds(),
		WireCodec:         wireCodecFor(c.cfg.WireCodec),
		DeltaFullEvery:    c.cfg.Delta.FullEvery,
		DeltaMaxFraction:  c.cfg.Delta.MaxDeltaFraction,
		DeltaCompress:     c.cfg.DeltaCompress,
	}
	if c.cfg.Policy != nil {
		ctl.ReportEveryMillis = c.cfg.Policy.ReportEveryMillis
	}
	t.waiting = c.broadcast(ctl)
	t.next = func() {
		if len(t.ackErrs) > 0 {
			c.finish(t, fmt.Errorf("dist: assign failed: %s", strings.Join(t.ackErrs, "; ")))
			return
		}
		c.finish(t, nil)
	}
	c.armTimeout(t)
}

func (c *Coordinator) nextSeq() uint64 {
	c.seq++
	return c.seq
}

// broadcast sends a control message to every live worker and returns how
// many sends succeeded (the acknowledgement count to wait for).
func (c *Coordinator) broadcast(ctl *Control) int {
	body, err := encodeControl(ctl)
	if err != nil {
		return 0
	}
	n := 0
	for _, addr := range c.order {
		ref := c.workers[addr]
		if ref == nil || !ref.alive {
			continue
		}
		if ref.peer.SendControl(body) == nil {
			n++
		}
	}
	return n
}

// sendTo sends a control message to one worker.
func (c *Coordinator) sendTo(addr string, ctl *Control) bool {
	ref := c.workers[addr]
	if ref == nil || !ref.alive {
		return false
	}
	body, err := encodeControl(ctl)
	if err != nil {
		return false
	}
	return ref.peer.SendControl(body) == nil
}

func (c *Coordinator) enqueueOp(fn func()) {
	if c.trans == nil {
		fn()
		return
	}
	c.queue = append(c.queue, fn)
}

func (c *Coordinator) advance(t *transition) {
	t.stage++
	next := t.next
	t.next = nil
	if next != nil {
		c.armTimeout(t)
		next()
	}
}

func (c *Coordinator) armTimeout(t *transition) {
	stage := t.stage
	time.AfterFunc(c.cfg.TransitionTimeout, func() {
		c.post(event{kind: evCall, fn: func() {
			if c.trans == t && t.stage == stage {
				c.finish(t, fmt.Errorf("dist: transition for %s timed out at stage %d", t.victim, stage))
			}
		}})
	})
}

func (c *Coordinator) finish(t *transition, err error) {
	if c.trans != t {
		return
	}
	c.trans = nil
	// The closing record lands before the rollback runs: a coordinator
	// that dies right after the abort record replays with the transition
	// closed, and its rollback happens through reconciliation instead —
	// the journal never claims a rollback that did not run.
	if err != nil {
		if !c.journal(&controlplane.Record{Kind: controlplane.RecAbort, Seq: t.seq, Reason: err.Error()}) {
			return
		}
		c.pushErr("%v", err)
		if t.scaleOut && c.det != nil {
			c.det.Unmute(t.victim)
		}
		// A scaling transition that failed after mutating the topology
		// (victims final-retired, or a plan committed to the graph) must
		// not strand what it left behind: hand it to the normal recovery
		// path. This may start a new transition immediately.
		c.recoverAfterAbort(t)
	} else if !c.journal(&controlplane.Record{Kind: controlplane.RecCommit, Seq: t.seq}) {
		return
	}
	if t.done != nil {
		t.done <- err
	}
	if c.trans == nil && len(c.queue) > 0 {
		next := c.queue[0]
		c.queue = c.queue[1:]
		next()
	}
	c.maybeRotate()
}

// recoverAfterAbort enqueues recovery of everything an aborted
// ScaleOut/ScaleIn transition left stopped or planned-but-undeployed,
// regardless of WHY it aborted (worker death, stage timeout, ack
// error). Pre-plan: the final-retired victims are stopped on live
// workers but still own their key ranges — recover each from its
// latest stored checkpoint. Post-plan: the graph already holds the new
// instance(s) with stored checkpoints — recover those instead.
// Instances hosted by dead (or no) workers are skipped: onWorkerDown's
// gather owns them. Recovery transitions themselves never re-enter
// here (they are neither scaleOut nor merge), so a persistent failure
// surfaces through Errors rather than looping.
func (c *Coordinator) recoverAfterAbort(t *transition) {
	if !t.merge && !t.scaleOut {
		return
	}
	startedAt := c.nowMillis()
	recoverInst := func(inst plan.InstanceID) {
		addr := c.placement[inst]
		ref := c.workers[addr]
		if addr == "" || ref == nil || !ref.alive {
			return
		}
		c.enqueueOp(func() {
			// Best-effort stop first: the instance may still be running
			// (its retire or deploy never landed) or already stopped —
			// either way recovery replaces it from the store, and the
			// worker's FIFO control queue sequences this retire before
			// the recovery's reroute.
			c.sendTo(addr, &Control{Kind: MsgRetire, Victim: inst})
			c.beginRecover(inst, startedAt)
		})
	}
	if t.planned {
		if t.merge {
			recoverInst(t.mergedInst)
		} else {
			for _, ni := range t.newInsts {
				recoverInst(ni)
			}
		}
		return
	}
	if !t.retireSent {
		return
	}
	if t.merge {
		for _, v := range t.victims {
			recoverInst(v)
		}
	} else {
		recoverInst(t.victim)
	}
}

func (c *Coordinator) onControl(ctl *Control) {
	switch ctl.Kind {
	case MsgAck:
		t := c.trans
		if t == nil || ctl.Seq != t.seq {
			return
		}
		if ctl.Err != "" {
			t.ackErrs = append(t.ackErrs, fmt.Sprintf("%s: %s", ctl.From, ctl.Err))
		}
		t.replayed += ctl.Replayed
		t.waiting--
		if t.ready() {
			c.advance(t)
		}
	case MsgShip:
		inst, ok := c.storeShip(ctl)
		if !ok {
			return
		}
		if t := c.trans; t != nil && t.awaitShips[inst] {
			delete(t.awaitShips, inst)
			if t.ready() {
				c.advance(t)
			}
		}
	case MsgReport:
		c.mu.Lock()
		c.workerStats[ctl.From] = ctl.Stats
		c.mu.Unlock()
		c.onReports(ctl.Reports)
	case MsgReattach:
		c.onReattach(ctl)
	}
}

// storeShip stores a shipped checkpoint in the authoritative store and
// sends the acknowledgement trims to the hosts of the acknowledged
// upstream instances.
func (c *Coordinator) storeShip(ctl *Control) (plan.InstanceID, bool) {
	if c.mgr == nil {
		return plan.InstanceID{}, false
	}
	cp, err := decodeCheckpoint(ctl.Checkpoint, c.codec)
	if err != nil {
		c.pushErr("dist: bad checkpoint from %s: %v", ctl.From, err)
		return plan.InstanceID{}, false
	}
	if !c.mgr.Live(cp.Instance) {
		// A ship racing the instance's replacement: the store must not
		// resurrect a retired owner.
		return plan.InstanceID{}, false
	}
	host, err := c.mgr.BackupTarget(cp.Instance)
	if err != nil {
		return plan.InstanceID{}, false
	}
	if c.dstore != nil {
		if err := c.dstore.Store(host, cp); err != nil {
			c.pushErr("dist: persist shipped checkpoint for %s: %v", cp.Instance, err)
			return plan.InstanceID{}, false
		}
		if !c.journal(&controlplane.Record{Kind: controlplane.RecShip, Ship: &controlplane.ShipMark{Inst: cp.Instance, Seq: cp.Seq, Bytes: len(ctl.Checkpoint)}}) {
			return plan.InstanceID{}, false
		}
		c.maybeRotate()
	} else if err := c.mgr.Backups().Store(host, cp); err != nil {
		return plan.InstanceID{}, false
	}
	for up, ts := range cp.Acks {
		addr := c.placement[up]
		if addr == "" {
			// A retired merge victim: its retained output lives on as a
			// legacy buffer with its merge product — route the trim to
			// whichever worker hosts that product now.
			addr = c.legacyAddr(up)
		}
		ref := c.workers[addr]
		if ref == nil || !ref.alive {
			continue
		}
		_ = ref.peer.SendAck(transport.Ack{Owner: cp.Instance, Up: up, TS: ts})
	}
	return cp.Instance, true
}

// storeDeltaShip folds an incremental checkpoint frame into the
// authoritative store and sends the acknowledgement trims, mirroring
// storeShip. A delta that cannot be folded (no base, stale base — e.g.
// a frame that raced a recovery) is dropped silently: the worker's
// FullEvery epoch re-anchors the chain within one epoch, and until then
// the stored base stays authoritative, so a lost delta costs replay
// distance, never correctness. Deltas never advance transition stages
// (awaitShips waits for fulls).
func (c *Coordinator) storeDeltaShip(body []byte) {
	if c.mgr == nil {
		return
	}
	dc, err := state.DecodeDeltaCheckpoint(stream.NewDecoder(body), c.codec)
	if err != nil {
		c.pushErr("dist: bad delta checkpoint: %v", err)
		return
	}
	if !c.mgr.Live(dc.Instance) {
		return
	}
	host, err := c.mgr.BackupTarget(dc.Instance)
	if err != nil {
		return
	}
	if err := c.mgr.Backups().ApplyDelta(host, dc); err != nil {
		return
	}
	if c.dstore != nil {
		// Persist the folded result, so a recovered coordinator restores
		// state through the delta, not just up to its base.
		if folded, _, ok := c.mgr.Backups().Latest(dc.Instance); ok && folded != nil {
			if err := c.dstore.Persist(folded); err != nil {
				c.pushErr("dist: persist folded checkpoint for %s: %v", dc.Instance, err)
				return
			}
			if !c.journal(&controlplane.Record{Kind: controlplane.RecShip, Ship: &controlplane.ShipMark{Inst: dc.Instance, Seq: folded.Seq, Bytes: len(body)}}) {
				return
			}
			c.maybeRotate()
		}
	}
	for up, ts := range dc.Acks {
		addr := c.placement[up]
		if addr == "" {
			addr = c.legacyAddr(up)
		}
		ref := c.workers[addr]
		if ref == nil || !ref.alive {
			continue
		}
		_ = ref.peer.SendAck(transport.Ack{Owner: dc.Instance, Up: up, TS: ts})
	}
}

// legacyAddr resolves the worker hosting the legacy buffer of a retired
// merge victim, chasing the merge-product chain (a product may itself
// have been merged or replaced).
func (c *Coordinator) legacyAddr(up plan.InstanceID) string {
	cur := up
	for i := 0; i < 16; i++ {
		next, ok := c.legacyOwner[cur]
		if !ok {
			return ""
		}
		if addr := c.placement[next]; addr != "" {
			return addr
		}
		cur = next
	}
	return ""
}

// onReports feeds utilisation reports to the bottleneck detector —
// the same event loop that consumes heartbeat failures, so scaling and
// recovery decisions are serialised by construction.
func (c *Coordinator) onReports(reports []control.Report) {
	if c.det == nil || len(reports) == 0 {
		return
	}
	for _, victim := range c.det.Observe(reports) {
		spec := c.q.Op(victim.Op)
		if spec != nil && spec.MaxParallelism > 0 && c.mgr.Parallelism(victim.Op) >= spec.MaxParallelism {
			c.det.Unmute(victim)
			continue
		}
		v := victim
		c.enqueueOp(func() { c.beginScaleOut(v, 2, nil) })
	}
	if c.shrinker == nil {
		return
	}
	for _, op := range c.shrinker.Observe(reports) {
		if pair := c.adjacentPair(op, reports); pair != nil {
			c.enqueueOp(func() { c.beginScaleIn(pair, nil) })
		}
		// Completed merges produce a fresh instance ID, so the operator
		// can shrink again once its partitions idle anew.
		c.shrinker.Unmute(op)
	}
}

// adjacentPair picks the pair of live partitions of op owning adjacent
// key ranges with the lowest combined utilisation, or nil.
func (c *Coordinator) adjacentPair(op plan.OpID, reports []control.Report) []plan.InstanceID {
	routing := c.mgr.Routing(op)
	if routing == nil {
		return nil
	}
	return control.AdjacentPair(routing.Entries(), reports, func(inst plan.InstanceID) bool {
		return c.mgr.Live(inst) && c.placement[inst] != ""
	})
}

func (c *Coordinator) onWorkerDown(addr string) {
	ref := c.workers[addr]
	if ref == nil || !ref.alive {
		return
	}
	ref.alive = false
	if ref.peer != nil {
		ref.peer.Close()
	}
	delete(c.expectDown, addr)
	// A merge in flight cannot outlive a worker death: abort it and fall
	// back to the normal recovery path for whatever it left behind —
	// retired-but-unmerged victims recover individually from their final
	// checkpoints; a planned merge product recovers from the stored
	// merged checkpoint (which carries the victims' legacy buffers).
	c.abortMergeOnDown(addr)
	c.gatherLost(addr)
}

// gatherLost enqueues recovery for every instance placed on a worker
// that is gone, in deterministic order — shared by heartbeat death and
// failover reconciliation of workers that could not be re-dialed.
func (c *Coordinator) gatherLost(addr string) {
	var victims []plan.InstanceID
	for inst, a := range c.placement {
		if a != addr {
			continue
		}
		spec := c.q.Op(inst.Op)
		if spec == nil {
			continue
		}
		if spec.Role == plan.RoleSource || spec.Role == plan.RoleSink {
			// Sources and sinks are assumed reliable (§2.2); losing one
			// is unrecoverable and must not pass silently.
			c.pushErr("dist: worker %s died hosting assumed-reliable %s", addr, inst)
			delete(c.placement, inst)
			continue
		}
		victims = append(victims, inst)
	}
	sortInstances(victims)
	startedAt := c.nowMillis()
	for _, v := range victims {
		victim := v
		c.enqueueOp(func() { c.beginRecover(victim, startedAt) })
	}
}

// beginRecover starts the replacement of an instance whose worker died.
func (c *Coordinator) beginRecover(victim plan.InstanceID, startedAt int64) {
	t := &transition{victim: victim, seq: c.nextSeq()}
	c.trans = t
	if !c.journal(&controlplane.Record{Kind: controlplane.RecIntent, Seq: t.seq, Action: "recover", Victims: []plan.InstanceID{victim}, Pi: c.cfg.RecoveryPi}) {
		return
	}
	c.continueReplace(t, victim, c.cfg.RecoveryPi, true, startedAt)
}

// abortMergeOnDown aborts an in-flight merge when any worker dies
// (rather than letting it wedge until the stage timeout). The fallback
// recovery of whatever the transition left behind happens in finish()
// via recoverAfterAbort; instances hosted by the dead worker are
// gathered by onWorkerDown afterwards. Runs on the loop, before that
// gather, and after the worker is marked dead — so the fallback skips
// everything the gather owns.
func (c *Coordinator) abortMergeOnDown(addr string) {
	t := c.trans
	if t == nil || !t.merge {
		return
	}
	c.finish(t, fmt.Errorf("dist: merge of %v aborted: worker %s died", t.victims, addr))
}

// beginScaleOut starts the distributed Algorithm 3 on a live victim:
// final-retire it (the worker stops the instance FIRST, then captures
// and ships its final checkpoint, so nothing is emitted past the state
// its replacements restore from and there is no post-checkpoint window),
// then plan/reroute/deploy.
func (c *Coordinator) beginScaleOut(victim plan.InstanceID, pi int, done chan error) {
	t := &transition{victim: victim, scaleOut: true, seq: c.nextSeq(), done: done}
	c.trans = t
	startedAt := c.nowMillis()
	addr := c.placement[victim]
	if !c.mgr.Live(victim) || addr == "" {
		c.finish(t, fmt.Errorf("dist: %s is not live", victim))
		return
	}
	// Intent before the first retire: a crash anywhere past this point
	// replays as an in-doubt transition and rolls back via recovery.
	if !c.journal(&controlplane.Record{Kind: controlplane.RecIntent, Seq: t.seq, Action: "scale-out", Victims: []plan.InstanceID{victim}, Pi: pi}) {
		return
	}
	if !c.sendTo(addr, &Control{Kind: MsgRetire, Seq: t.seq, Victim: victim, Final: true}) {
		c.finish(t, fmt.Errorf("dist: retire %s: worker %s unreachable", victim, addr))
		return
	}
	t.retireSent = true
	t.awaitShips = map[plan.InstanceID]bool{victim: true}
	t.waiting = 1
	t.next = func() {
		if len(t.ackErrs) > 0 {
			c.finish(t, fmt.Errorf("dist: retire %s: %s", victim, strings.Join(t.ackErrs, "; ")))
			return
		}
		c.continueReplace(t, victim, pi, false, startedAt)
	}
	c.armTimeout(t)
}

// beginScaleIn starts the distributed merge of sibling partitions:
// final-retire every victim (stop → capture → ship), plan the merge
// against the freshly stored checkpoints, reroute all workers — each
// trims its buffers to the victims' final watermarks before
// repartitioning — and deploy the merged instance, whose checkpoint
// carries the victims' buffers as legacy state under their original
// identities.
func (c *Coordinator) beginScaleIn(victims []plan.InstanceID, done chan error) {
	t := &transition{merge: true, victims: victims, seq: c.nextSeq(), done: done}
	if len(victims) > 0 {
		t.victim = victims[0]
	}
	c.trans = t
	startedAt := c.nowMillis()
	if len(victims) < 2 {
		c.finish(t, fmt.Errorf("dist: merge needs at least two victims, got %d", len(victims)))
		return
	}
	seen := make(map[plan.InstanceID]bool, len(victims))
	for _, v := range victims {
		if v.Op != victims[0].Op {
			c.finish(t, fmt.Errorf("dist: merge across operators %q and %q", victims[0].Op, v.Op))
			return
		}
		if seen[v] {
			c.finish(t, fmt.Errorf("dist: duplicate merge victim %s", v))
			return
		}
		seen[v] = true
		if !c.mgr.Live(v) || c.placement[v] == "" {
			c.finish(t, fmt.Errorf("dist: %s is not live", v))
			return
		}
		spec := c.q.Op(v.Op)
		if spec == nil || spec.Role == plan.RoleSource || spec.Role == plan.RoleSink {
			c.finish(t, fmt.Errorf("dist: %s cannot be merged", v))
			return
		}
	}
	if !c.journal(&controlplane.Record{Kind: controlplane.RecIntent, Seq: t.seq, Action: "scale-in", Victims: victims}) {
		return
	}
	t.awaitShips = make(map[plan.InstanceID]bool, len(victims))
	t.retireSent = true
	for _, v := range victims {
		if !c.sendTo(c.placement[v], &Control{Kind: MsgRetire, Seq: t.seq, Victim: v, Final: true}) {
			c.finish(t, fmt.Errorf("dist: retire %s: worker %s unreachable", v, c.placement[v]))
			return
		}
		t.awaitShips[v] = true
		t.waiting++
	}
	t.next = func() {
		if len(t.ackErrs) > 0 {
			c.finish(t, fmt.Errorf("dist: retire for merge of %v: %s", victims, strings.Join(t.ackErrs, "; ")))
			return
		}
		c.continueMerge(t, victims, startedAt)
	}
	c.armTimeout(t)
}

// continueMerge plans the merge and drives reroute → deploy → record.
func (c *Coordinator) continueMerge(t *transition, victims []plan.InstanceID, startedAt int64) {
	mp, err := c.mgr.PlanMerge(victims)
	if err != nil {
		c.finish(t, fmt.Errorf("dist: plan merge of %v: %w", victims, err))
		return
	}
	t.planned = true
	t.mergedInst = mp.NewInstance
	addr := c.pickWorker()
	if addr == "" {
		c.finish(t, fmt.Errorf("dist: no live workers to host %s", mp.NewInstance))
		return
	}
	c.placement[mp.NewInstance] = addr
	for _, v := range victims {
		delete(c.placement, v)
		// The merged instance carries each victim's legacy buffer;
		// acknowledgement trims addressed to the victims follow it.
		c.legacyOwner[v] = mp.NewInstance
	}
	// Trim-to-watermark instructions: every worker trims its retained
	// buffers to each victim's final acknowledgement position before
	// repartitioning, so the replay set is the exact per-victim
	// unprocessed remainder (the merged watermark is the victims'
	// minimum).
	var trims []TrimAck
	for i, v := range victims {
		cp := mp.VictimCheckpoints[i]
		ups := make([]plan.InstanceID, 0, len(cp.Acks))
		for up := range cp.Acks {
			ups = append(ups, up)
		}
		state.SortInstanceIDs(ups)
		for _, up := range ups {
			trims = append(trims, TrimAck{Up: up, Owner: v, TS: cp.Acks[up]})
		}
	}
	// Durable-file ordering: the merged checkpoint is on disk BEFORE the
	// plan is journaled (replay recovers the product from that file),
	// and the victims' files are deleted only after — a crash in between
	// leaves stale files that replay's liveness sweep removes.
	if c.dstore != nil {
		if err := c.dstore.Persist(mp.Checkpoint); err != nil {
			c.pushErr("dist: persist merged checkpoint for %s: %v", mp.NewInstance, err)
		}
	}
	cpTrims := make([]controlplane.Trim, len(trims))
	for i, tr := range trims {
		cpTrims[i] = controlplane.Trim{Up: tr.Up, Owner: tr.Owner, TS: tr.TS}
	}
	if !c.journal(&controlplane.Record{Kind: controlplane.RecPlanned, Seq: t.seq, State: c.snapshotState(), Trims: cpTrims}) {
		return
	}
	if c.dstore != nil {
		for _, v := range victims {
			c.dstore.Delete(v)
		}
	}
	routingBlob := encodeRouting(mp.Routing)
	ctl := &Control{
		Kind:     MsgReroute,
		Seq:      t.seq,
		Op:       t.victim.Op,
		Routing:  routingBlob,
		New:      []Placement{{Inst: mp.NewInstance, Addr: addr}},
		Victims:  victims,
		TrimAcks: trims,
	}
	t.waiting = c.broadcast(ctl)
	if t.waiting == 0 {
		c.finish(t, fmt.Errorf("dist: reroute for merge of %v reached no workers", victims))
		return
	}
	t.next = func() {
		if len(t.ackErrs) > 0 {
			c.finish(t, fmt.Errorf("dist: reroute for merge of %v: %s", victims, strings.Join(t.ackErrs, "; ")))
			return
		}
		blob, err := encodeCheckpoint(mp.Checkpoint, c.codec)
		if err != nil {
			c.finish(t, fmt.Errorf("dist: encode merged checkpoint for %s: %w", mp.NewInstance, err))
			return
		}
		if !c.sendTo(addr, &Control{Kind: MsgDeploy, Seq: t.seq, Routing: routingBlob, Checkpoint: blob}) {
			c.finish(t, fmt.Errorf("dist: deploy for %s reached no workers", mp.NewInstance))
			return
		}
		t.waiting = 1
		t.next = func() {
			if len(t.ackErrs) > 0 {
				c.finish(t, fmt.Errorf("dist: deploy for %s: %s", mp.NewInstance, strings.Join(t.ackErrs, "; ")))
				return
			}
			c.mu.Lock()
			c.merges++
			c.records = append(c.records, Record{
				Victim:         t.victim,
				Pi:             1,
				Merge:          true,
				StartedAt:      startedAt,
				CompletedAt:    c.nowMillis(),
				ReplayedTuples: t.replayed,
			})
			c.mu.Unlock()
			// A fresh barrier ships a self-consistent checkpoint of the
			// merge product, superseding the synthesized plan-time
			// artifact in the store (fire-and-forget: the periodic
			// checkpoint loop covers a miss).
			if ref := c.workers[addr]; ref != nil && ref.alive {
				_ = ref.peer.SendBarrier(mp.NewInstance)
			}
			c.finish(t, nil)
		}
	}
	c.armTimeout(t)
}

// continueReplace plans the replacement and drives reroute → deploy →
// record, shared by failure recovery and scale out.
func (c *Coordinator) continueReplace(t *transition, victim plan.InstanceID, pi int, failure bool, startedAt int64) {
	planFn := c.mgr.PlanReplace
	if failure {
		planFn = c.mgr.PlanRecovery
	}
	rp, err := planFn(victim, pi)
	if err != nil {
		c.finish(t, fmt.Errorf("dist: plan %s (pi=%d): %w", victim, pi, err))
		return
	}
	t.planned = true
	t.newInsts = rp.NewInstances
	newPl := make([]Placement, len(rp.NewInstances))
	for i, ni := range rp.NewInstances {
		addr := c.pickWorker()
		if addr == "" {
			c.finish(t, fmt.Errorf("dist: no live workers to host %s", ni))
			return
		}
		c.placement[ni] = addr
		newPl[i] = Placement{Inst: ni, Addr: addr}
	}
	delete(c.placement, victim)
	// Legacy buffers the victim carried follow its first replacement
	// (state.PartitionCheckpoint assigns buffer state to the first
	// partition), so trims addressed to retired merge victims keep
	// resolving.
	c.legacyOwner[victim] = rp.NewInstances[0]
	// Durable-file ordering: replacement checkpoints on disk before the
	// plan is journaled, victim file deleted after (replay's liveness
	// sweep mops up a crash in between).
	if c.dstore != nil {
		for i := range rp.NewInstances {
			if err := c.dstore.Persist(rp.Checkpoints[i]); err != nil {
				c.pushErr("dist: persist checkpoint for %s: %v", rp.NewInstances[i], err)
			}
		}
	}
	if !c.journal(&controlplane.Record{Kind: controlplane.RecPlanned, Seq: t.seq, State: c.snapshotState()}) {
		return
	}
	if c.dstore != nil {
		c.dstore.Delete(victim)
	}
	routingBlob := encodeRouting(rp.Routing)
	ctl := &Control{
		Kind:    MsgReroute,
		Seq:     t.seq,
		Op:      victim.Op,
		Routing: routingBlob,
		New:     newPl,
		Victim:  victim,
	}
	if pi == 1 {
		ctl.Inherit = []InheritPair{{Old: victim, New: rp.NewInstances[0]}}
	}
	t.waiting = c.broadcast(ctl)
	if t.waiting == 0 {
		c.finish(t, fmt.Errorf("dist: reroute for %s reached no workers", victim))
		return
	}
	t.next = func() {
		if len(t.ackErrs) > 0 {
			c.finish(t, fmt.Errorf("dist: reroute for %s: %s", victim, strings.Join(t.ackErrs, "; ")))
			return
		}
		// Every worker has the new routing and watermark inheritance;
		// deploying now guarantees the replacements' re-emissions meet
		// renamed acknowledgement maps everywhere.
		sent := 0
		for i, ni := range rp.NewInstances {
			blob, err := encodeCheckpoint(rp.Checkpoints[i], c.codec)
			if err != nil {
				c.finish(t, fmt.Errorf("dist: encode checkpoint for %s: %w", ni, err))
				return
			}
			if c.sendTo(newPl[i].Addr, &Control{Kind: MsgDeploy, Seq: t.seq, Routing: routingBlob, Checkpoint: blob}) {
				sent++
			}
		}
		if sent == 0 {
			c.finish(t, fmt.Errorf("dist: deploy for %s reached no workers", victim))
			return
		}
		t.waiting = sent
		t.next = func() {
			if len(t.ackErrs) > 0 {
				c.finish(t, fmt.Errorf("dist: deploy for %s: %s", victim, strings.Join(t.ackErrs, "; ")))
				return
			}
			c.mu.Lock()
			c.records = append(c.records, Record{
				Victim:         victim,
				Pi:             pi,
				Failure:        failure,
				StartedAt:      startedAt,
				CompletedAt:    c.nowMillis(),
				ReplayedTuples: t.replayed,
			})
			c.mu.Unlock()
			c.finish(t, nil)
		}
	}
	c.armTimeout(t)
}

// pickWorker returns the live worker hosting the fewest instances.
func (c *Coordinator) pickWorker() string {
	load := make(map[string]int)
	for _, addr := range c.placement {
		load[addr]++
	}
	best := ""
	bestLoad := 0
	for _, addr := range c.order {
		ref := c.workers[addr]
		if ref == nil || !ref.alive {
			continue
		}
		if best == "" || load[addr] < bestLoad {
			best, bestLoad = addr, load[addr]
		}
	}
	return best
}
