package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"seep/internal/control"
	"seep/internal/engine"
	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
	"seep/internal/transport"
)

// SourceBinding attaches a generator to a source operator at Start —
// the registry-embedded form of Job.AddSource, for daemon deployments
// where the coordinator cannot ship Go functions over the wire.
type SourceBinding struct {
	Op   plan.OpID
	Rate func(nowMillis int64) float64
	Gen  func(i uint64) (stream.Key, any)
}

// Registry resolves topology names to operator code. Go cannot ship
// code between processes, so every worker binary links the topologies it
// may be asked to host and the coordinator sends only the name.
type Registry interface {
	Lookup(name string) (*plan.Query, map[plan.OpID]operator.Factory, []SourceBinding, error)
}

// Worker hosts a subset of a query's operator instances on a live
// engine, exchanges tuple batches with sibling workers over the
// transport, ships checkpoints to the coordinator and executes the
// coordinator's reroute/deploy/retire commands.
type Worker struct {
	reg   Registry
	codec state.PayloadCodec
	tm    *transport.Metrics
	ln    *transport.Listener
	self  string

	// mu guards the engine handle, the pre-deployment stash and the
	// retired set. The steady-state data path does not take it: onBatch
	// reads the lock-free engPtr mirror.
	mu      sync.Mutex
	eng     *engine.Engine
	sources []SourceBinding
	coord   *transport.Peer
	stash   map[plan.InstanceID][]engine.Delivery
	retired map[plan.InstanceID]bool
	started bool
	killed  bool
	// Orphan mode: the coordinator link died. The data path is
	// untouched — batches keep flowing worker-to-worker — while
	// checkpoint ships are buffered locally (newest per instance) and,
	// when a standby address was advertised, a redial loop announces
	// this worker until a reborn coordinator adopts it.
	orphan        bool
	standby       string
	buffered      map[plan.InstanceID]orphanEntry
	bufferedBytes int
	bufferSeq     uint64
	redialStop    chan struct{}

	// orphanDropped counts checkpoint ships evicted from the orphan
	// buffer when the byte cap forces drop-oldest.
	orphanDropped atomic.Uint64

	// lastBarrier is the highest checkpoint sequence this worker ever
	// shipped (or buffered) — reported in MsgReattach inventories.
	lastBarrier atomic.Uint64

	// legacyBatch pins the outbound data links to gob batch framing
	// (MsgAssign negotiated WireCodec 2); deltaCompress flate-compresses
	// delta-checkpoint frames. Both are set per assignment and read on
	// link/ship paths without w.mu.
	legacyBatch   atomic.Bool
	deltaCompress atomic.Bool

	// engPtr mirrors w.eng for the lock-free inbound data path; written
	// under w.mu wherever w.eng changes.
	engPtr atomic.Pointer[engine.Engine]

	// ctrlQ serialises control messages onto their own goroutine, so a
	// slow reroute/deploy cannot starve heartbeat replies on the shared
	// coordinator connection (the listener loop answers heartbeats
	// between frames; see ctrlLoop).
	ctrlQ chan *Control

	// pmu guards the instance → worker-address placement map, read on
	// the remote-delivery path.
	pmu       sync.RWMutex
	placement map[plan.InstanceID]string

	// lmu guards the outbound data links and their credit sizing.
	lmu         sync.Mutex
	links       map[string]*peerLink
	linkCredits int

	reportStop chan struct{}
	died       chan struct{}
}

// NewWorker starts a worker listening on addr (e.g. "127.0.0.1:0"). It
// idles until a coordinator sends MsgAssign.
func NewWorker(addr string, reg Registry, codec state.PayloadCodec) (*Worker, error) {
	if codec == nil {
		codec = state.GobPayloadCodec{}
	}
	w := &Worker{
		reg:       reg,
		codec:     codec,
		tm:        &transport.Metrics{},
		stash:     make(map[plan.InstanceID][]engine.Delivery),
		retired:   make(map[plan.InstanceID]bool),
		placement: make(map[plan.InstanceID]string),
		links:     make(map[string]*peerLink),
		ctrlQ:     make(chan *Control, 256),
		died:      make(chan struct{}),
	}
	go w.ctrlLoop()
	ln, err := transport.ListenWith(addr, codec, transport.Handlers{
		OnBatch:   w.onBatch,
		OnAck:     w.onAck,
		OnControl: w.onControl,
		OnBarrier: w.onBarrier,
		OnCredit:  w.onCredit,
	}, w.tm)
	if err != nil {
		return nil, err
	}
	w.ln = ln
	w.self = ln.Addr()
	return w, nil
}

// Addr returns the worker's listener address — its identity in the
// cluster.
func (w *Worker) Addr() string { return w.self }

// Engine returns the hosted engine (nil before assignment). In-process
// deployments use it for direct source injection and state inspection.
func (w *Worker) Engine() *engine.Engine { return w.engPtr.Load() }

// setEngine updates both the locked handle and its lock-free mirror.
//
// seep:locks w.mu
func (w *Worker) setEngine(eng *engine.Engine) {
	w.eng = eng
	w.engPtr.Store(eng)
}

// TransportStats snapshots this worker's transport counters.
func (w *Worker) TransportStats() transport.Stats { return w.tm.Snapshot() }

// OrphanDropped reports how many checkpoint ships the bounded
// orphan-mode buffer has evicted.
func (w *Worker) OrphanDropped() uint64 { return w.orphanDropped.Load() }

// Wait blocks until the worker dies (MsgDie or Kill) — the daemon
// main's park.
func (w *Worker) Wait() { <-w.died }

// Kill crash-stops the worker: listener down, engine down, links down.
// Nothing is flushed — from the cluster's point of view the VM vanished,
// which is exactly what the heartbeat detector and recovery path are
// for.
func (w *Worker) Kill() {
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		return
	}
	w.killed = true
	eng := w.eng
	coord := w.coord
	// Claim the job-scoped channels under the lock: a graceful stop
	// (MsgStop → handleStop) can race this crash-stop, and whoever
	// nils a field out owns closing it.
	rs := w.reportStop
	w.reportStop = nil
	w.coord = nil
	w.setEngine(nil)
	rdl := w.redialStop
	w.redialStop = nil
	w.mu.Unlock()

	w.ln.Close()
	if rs != nil {
		close(rs)
	}
	if rdl != nil {
		close(rdl)
	}
	if coord != nil {
		coord.Close()
	}
	if eng != nil {
		eng.Stop()
	}
	// Engine goroutines are gone, so no Deliver can race the teardown.
	w.lmu.Lock()
	for _, pl := range w.links {
		close(pl.q)
	}
	w.links = make(map[string]*peerLink)
	w.lmu.Unlock()
	close(w.died)
}

// ---- inbound data path ----

// onBatch delivers a wire batch into the hosted instance, stashing
// arrivals for an instance that is planned here but not yet deployed
// (replays and rerouted tuples racing a MsgDeploy). Delivery grants one
// credit back to the sending host: DeliverLocal blocks while the
// destination's bounded input queue is full, so by the time the grant
// leaves, the slot the batch consumed is genuinely accounted for — a
// slow operator here stalls the remote sender's budget instead of
// growing this host's memory.
func (w *Worker) onBatch(b transport.Batch) {
	ds := make([]engine.Delivery, len(b.Tuples))
	for i, t := range b.Tuples {
		ds[i] = engine.Delivery{From: b.From, Input: b.Input, T: t}
	}
	// Fast path: hosted and running — no worker lock.
	if eng := w.engPtr.Load(); eng != nil && eng.DeliverLocal(b.To, ds) {
		w.grantCredit(b)
		return
	}
	w.stashOrDrop(b.To, ds)
	w.grantCredit(b)
}

// grantCredit returns one batch slot to the host that sent b.
func (w *Worker) grantCredit(b transport.Batch) {
	w.pmu.RLock()
	addr := w.placement[b.From]
	w.pmu.RUnlock()
	if addr == "" || addr == w.self {
		return
	}
	w.link(addr).enqueueCredit(transport.Credit{To: b.To, Grants: 1})
}

// onCredit refills the budget of the link carrying batches toward the
// granted instance.
func (w *Worker) onCredit(c transport.Credit) {
	w.pmu.RLock()
	addr := w.placement[c.To]
	w.pmu.RUnlock()
	if addr == "" || addr == w.self {
		return
	}
	pl := w.link(addr)
	for i := uint32(0); i < c.Grants; i++ {
		select {
		case pl.credits <- struct{}{}:
		default:
			// Saturating: a resync already topped the budget up.
			return
		}
	}
}

// stashOrDrop re-checks delivery under the worker lock (a concurrent
// deploy may have just adopted the instance) and otherwise stashes the
// batch until its instance arrives. Retired instances drop — their
// tuples are retained upstream and replayed to the replacements.
func (w *Worker) stashOrDrop(to plan.InstanceID, ds []engine.Delivery) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.eng != nil && w.eng.DeliverLocal(to, ds) {
		return
	}
	if w.killed || w.retired[to] {
		return
	}
	w.stash[to] = append(w.stash[to], ds...)
}

func (w *Worker) onAck(a transport.Ack) {
	if eng := w.Engine(); eng != nil {
		eng.TrimUpstream(a.Up, a.Owner, a.TS)
	}
}

func (w *Worker) onBarrier(inst plan.InstanceID) {
	eng := w.Engine()
	if eng == nil {
		return
	}
	// Checkpoint synchronously ships through the sink; keep the
	// connection's handler loop free. Barriers always force a FULL
	// checkpoint: the coordinator's transitions wait for a ship to plan
	// against, and a delta answered here would leave them waiting.
	go func() { _ = eng.CheckpointFull(inst) }()
}

// ---- control plane ----

// onControl enqueues the message for the control goroutine: the
// listener's per-connection loop must stay free to answer the
// heartbeats interleaved on the same coordinator connection, or a slow
// deploy would get a healthy worker declared dead mid-transition.
func (w *Worker) onControl(body []byte) {
	c, err := decodeControl(body)
	if err != nil {
		return
	}
	select {
	case w.ctrlQ <- c:
	case <-w.died:
	}
}

func (w *Worker) ctrlLoop() {
	for {
		select {
		case <-w.died:
			return
		case c := <-w.ctrlQ:
			w.dispatch(c)
		}
	}
}

func (w *Worker) dispatch(c *Control) {
	switch c.Kind {
	case MsgAssign:
		w.ack(c, w.handleAssign(c))
	case MsgStart:
		w.handleStart(c)
		w.ack(c, nil)
	case MsgStop:
		w.handleStop()
	case MsgReroute:
		n, err := w.handleReroute(c)
		w.ackReplayed(c, n, err)
	case MsgDeploy:
		n, err := w.handleDeploy(c)
		w.ackReplayed(c, n, err)
	case MsgRetire:
		w.ack(c, w.handleRetire(c))
	case MsgResume:
		w.handleResume(c)
	case MsgDie:
		// Tear down off the handler goroutine: Kill closes the very
		// listener this callback runs under.
		go w.Kill()
	}
}

func (w *Worker) ack(c *Control, err error) { w.ackReplayed(c, 0, err) }

func (w *Worker) ackReplayed(c *Control, replayed int, err error) {
	reply := &Control{Kind: MsgAck, Seq: c.Seq, From: w.self, Replayed: replayed}
	if err != nil {
		reply.Err = err.Error()
	}
	w.sendToCoord(reply)
}

func (w *Worker) sendToCoord(c *Control) {
	w.mu.Lock()
	coord := w.coord
	w.mu.Unlock()
	if coord == nil {
		return
	}
	body, err := encodeControl(c)
	if err != nil {
		return
	}
	_ = coord.SendControl(body)
}

func (w *Worker) handleAssign(c *Control) error {
	q, factories, sources, err := w.reg.Lookup(c.Topology)
	if err != nil {
		return err
	}
	coord, err := transport.DialWith(c.CoordAddr, w.codec, w.tm)
	if err != nil {
		return err
	}
	hosted := make(map[plan.InstanceID]bool)
	placement := make(map[plan.InstanceID]string, len(c.Placements))
	for _, p := range c.Placements {
		placement[p.Inst] = p.Addr
		if p.Addr == w.self {
			hosted[p.Inst] = true
		}
	}
	eng, err := engine.New(engine.Config{
		CheckpointInterval: time.Duration(c.CheckpointMillis) * time.Millisecond,
		TimerInterval:      time.Duration(c.TimerMillis) * time.Millisecond,
		ChannelBuffer:      c.ChannelBuffer,
		BatchSize:          c.BatchSize,
		BatchLinger:        time.Duration(c.BatchLingerMillis) * time.Millisecond,
		QueueBound:         c.QueueBound,
		MemoryLimit:        c.MemoryLimitBytes,
		Delta:              state.DeltaPolicy{FullEvery: c.DeltaFullEvery, MaxDeltaFraction: c.DeltaMaxFraction},
		Hosted:             func(inst plan.InstanceID) bool { return hosted[inst] },
		Backup:             &shipSink{w: w},
	}, q, factories)
	if err != nil {
		coord.Close()
		return err
	}
	eng.SetRemote(&linkRouter{w: w})
	w.legacyBatch.Store(c.WireCodec == wireCodecGob)
	w.deltaCompress.Store(c.DeltaCompress)
	// Mirror the engine's per-node credit sizing onto the outbound links:
	// the remote half of an edge gets the same batch budget as a local
	// edge would.
	w.lmu.Lock()
	qb := c.QueueBound
	if qb <= 0 {
		qb = c.ChannelBuffer
	}
	if qb <= 0 {
		qb = 4096
	}
	bs := c.BatchSize
	if bs <= 0 {
		bs = 128
	}
	if w.linkCredits = qb / bs; w.linkCredits < 1 {
		w.linkCredits = 1
	}
	w.lmu.Unlock()

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.killed {
		coord.Close()
		return fmt.Errorf("dist: worker is dead")
	}
	if w.eng != nil {
		coord.Close()
		return fmt.Errorf("dist: worker already assigned")
	}
	w.setEngine(eng)
	w.coord = coord
	w.sources = sources
	w.standby = c.StandbyAddr
	w.armCoordHeartbeat(coord, c.DetectMillis)
	w.pmu.Lock()
	w.placement = placement
	w.pmu.Unlock()
	if c.ReportEveryMillis > 0 {
		w.reportStop = make(chan struct{})
		go w.reportLoop(time.Duration(c.ReportEveryMillis) * time.Millisecond)
	}
	return nil
}

func (w *Worker) handleStart(c *Control) {
	w.mu.Lock()
	eng := w.eng
	sources := w.sources
	already := w.started
	w.started = true
	w.mu.Unlock()
	if eng == nil || already {
		return
	}
	for _, s := range sources {
		for _, inst := range eng.Manager().Instances(s.Op) {
			// AddSourceFunc rejects instances not hosted here; bindings
			// attach only where the source lives.
			_ = eng.AddSourceFunc(inst, s.Rate, s.Gen)
		}
	}
	// Align this engine's clock to the coordinator's job frame: the
	// start command carries the coordinator's current job time, so Born
	// stamps and sink latency observations agree across workers within
	// one one-way control-frame latency.
	eng.SetClockOffset(c.CoordNow)
	eng.Start()
}

// handleStop gracefully ends the current job but leaves the worker
// serving: every piece of job-scoped state — stash, retired set,
// placement, data links, coordinator connection — is reset, so a
// re-assigned daemon cannot drop or cross-contaminate a later job's
// tuples through instance IDs it saw in a previous one.
func (w *Worker) handleStop() {
	w.mu.Lock()
	eng := w.eng
	w.setEngine(nil)
	w.started = false
	rs := w.reportStop
	w.reportStop = nil
	coord := w.coord
	w.coord = nil
	w.stash = make(map[plan.InstanceID][]engine.Delivery)
	w.retired = make(map[plan.InstanceID]bool)
	w.orphan = false
	w.standby = ""
	w.buffered = nil
	w.bufferedBytes = 0
	rdl := w.redialStop
	w.redialStop = nil
	w.mu.Unlock()
	if rdl != nil {
		close(rdl)
	}
	w.pmu.Lock()
	w.placement = make(map[plan.InstanceID]string)
	w.pmu.Unlock()
	if rs != nil {
		close(rs)
	}
	if eng != nil {
		eng.Stop()
	}
	// Engine goroutines are gone; tear down the job's data links.
	w.lmu.Lock()
	for _, pl := range w.links {
		close(pl.q)
	}
	w.links = make(map[string]*peerLink)
	w.lmu.Unlock()
	if coord != nil {
		coord.Close()
	}
}

func (w *Worker) handleReroute(c *Control) (int, error) {
	eng := w.Engine()
	if eng == nil {
		return 0, fmt.Errorf("dist: reroute before assignment")
	}
	routing, err := decodeRouting(c.Routing)
	if err != nil {
		return 0, err
	}
	victims := c.Victims
	if len(victims) == 0 {
		victims = []plan.InstanceID{c.Victim}
	}
	newInsts := make([]plan.InstanceID, len(c.New))
	w.pmu.Lock()
	for i, p := range c.New {
		newInsts[i] = p.Inst
		w.placement[p.Inst] = p.Addr
	}
	for _, v := range victims {
		delete(w.placement, v)
	}
	w.pmu.Unlock()
	w.mu.Lock()
	for _, v := range victims {
		w.retired[v] = true
	}
	w.mu.Unlock()
	// Merge reroutes trim local buffers to each victim's final watermark
	// BEFORE the repartition below: the merged duplicate-detection
	// watermark is the victims' minimum, so the replay set must be the
	// exact per-victim unprocessed remainder.
	for _, ta := range c.TrimAcks {
		eng.TrimUpstream(ta.Up, ta.Owner, ta.TS)
	}
	var inherit map[plan.InstanceID]plan.InstanceID
	if len(c.Inherit) > 0 {
		inherit = make(map[plan.InstanceID]plan.InstanceID, len(c.Inherit))
		for _, p := range c.Inherit {
			inherit[p.Old] = p.New
		}
	}
	return eng.ApplyReroute(c.Op, routing, newInsts, inherit), nil
}

func (w *Worker) handleDeploy(c *Control) (int, error) {
	cp, err := decodeCheckpoint(c.Checkpoint, w.codec)
	if err != nil {
		return 0, err
	}
	routing, err := decodeRouting(c.Routing)
	if err != nil {
		return 0, err
	}
	w.pmu.Lock()
	w.placement[cp.Instance] = w.self
	w.pmu.Unlock()
	// Adoption and stash drain are atomic under the worker lock, so a
	// racing onBatch either delivers into the adopted node or stashes
	// before the drain — never after it.
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.eng == nil {
		return 0, fmt.Errorf("dist: deploy before assignment")
	}
	replay := w.stash[cp.Instance]
	delete(w.stash, cp.Instance)
	return w.eng.AdoptInstance(cp, routing, replay)
}

func (w *Worker) handleRetire(c *Control) error {
	eng := w.Engine()
	if eng == nil {
		return fmt.Errorf("dist: retire before assignment")
	}
	w.mu.Lock()
	w.retired[c.Victim] = true
	w.mu.Unlock()
	w.pmu.Lock()
	delete(w.placement, c.Victim)
	w.pmu.Unlock()
	if !c.Final {
		return eng.Retire(c.Victim)
	}
	// Final retire: stop first, capture everything the instance ever
	// processed, ship the capture to the coordinator's store. The
	// transition (scale out or merge) plans from this checkpoint, so it
	// has no post-checkpoint window.
	cp, err := eng.RetireFinal(c.Victim)
	if err != nil {
		return err
	}
	return (&shipSink{w: w}).ShipFull(cp)
}

// ---- outbound paths ----

// shipSink forwards full checkpoints to the coordinator's store. With
// the coordinator dead (orphan mode, or a send failure racing its
// death) the latest checkpoint per instance is buffered locally and
// flushed when a reborn coordinator adopts this worker — checkpointing
// never blocks or fails the data path on coordinator loss.
type shipSink struct{ w *Worker }

func (s *shipSink) ShipFull(cp *state.Checkpoint) error {
	blob, err := encodeCheckpoint(cp, s.w.codec)
	if err != nil {
		return err
	}
	body, err := encodeControl(&Control{Kind: MsgShip, From: s.w.self, Checkpoint: blob})
	if err != nil {
		return err
	}
	s.w.mu.Lock()
	coord := s.w.coord
	orphan := s.w.orphan
	s.w.mu.Unlock()
	if coord != nil && !orphan {
		if err := coord.SendControl(body); err == nil {
			s.w.noteBarrier(cp.Seq)
			return nil
		}
	}
	s.w.bufferShip(cp.Instance, body)
	s.w.noteBarrier(cp.Seq)
	return nil
}

// ShipDelta sends one incremental checkpoint as a delta frame. Unlike
// fulls, deltas are never buffered for a dead coordinator — an error
// here makes the engine re-capture a full checkpoint, which goes
// through ShipFull's orphan buffering. Barrier inventories
// (noteBarrier) track fulls only: a reattaching coordinator can always
// fold from the last full it holds, never from a delta it may have
// missed.
func (s *shipSink) ShipDelta(dc *state.DeltaCheckpoint) error {
	s.w.mu.Lock()
	coord := s.w.coord
	orphan := s.w.orphan
	s.w.mu.Unlock()
	if coord == nil || orphan {
		return fmt.Errorf("dist: no coordinator link for delta checkpoint")
	}
	e := stream.NewEncoder(dc.Size() + 256)
	if err := state.EncodeDeltaCheckpoint(e, dc, s.w.codec, s.w.deltaCompress.Load()); err != nil {
		return err
	}
	return coord.SendDeltaCheckpoint(e.Bytes())
}

// ---- coordinator failover (worker side) ----

// noteBarrier records the highest checkpoint sequence ever shipped or
// buffered.
func (w *Worker) noteBarrier(seq uint64) {
	for {
		cur := w.lastBarrier.Load()
		if seq <= cur || w.lastBarrier.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// orphanEntry is one buffered checkpoint ship; seq orders entries for
// drop-oldest eviction.
type orphanEntry struct {
	body []byte
	seq  uint64
}

// maxOrphanBufBytes caps the orphan-mode checkpoint buffer. Keeping the
// newest ship per instance bounds the entry count, but a wide topology
// with large state could still accumulate gigabytes while the
// coordinator stays dead — the byte cap keeps the worker's memory
// bounded no matter how long the orphanhood lasts.
const maxOrphanBufBytes = 64 << 20

// bufferShip keeps the newest encoded ship per instance (checkpoint
// sequences are monotonic per instance, so overwrite wins) under a byte
// cap: when the buffer would exceed maxOrphanBufBytes, the
// least-recently-updated instances' ships are evicted first and counted
// in orphanDropped — a reborn coordinator re-collects those instances'
// state from the next barrier instead.
func (w *Worker) bufferShip(inst plan.InstanceID, body []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.buffered == nil {
		w.buffered = make(map[plan.InstanceID]orphanEntry)
	}
	if old, ok := w.buffered[inst]; ok {
		w.bufferedBytes -= len(old.body)
	}
	w.bufferSeq++
	w.buffered[inst] = orphanEntry{body: body, seq: w.bufferSeq}
	w.bufferedBytes += len(body)
	for w.bufferedBytes > maxOrphanBufBytes && len(w.buffered) > 1 {
		var victim plan.InstanceID
		var oldest uint64
		for k, e := range w.buffered {
			if oldest == 0 || e.seq < oldest {
				oldest, victim = e.seq, k
			}
		}
		w.bufferedBytes -= len(w.buffered[victim].body)
		delete(w.buffered, victim)
		w.orphanDropped.Add(1)
	}
}

// armCoordHeartbeat heartbeats the coordinator link at the same cadence
// the coordinator heartbeats workers, so both sides detect a dead peer
// within the same horizon. Safe to call with w.mu held.
func (w *Worker) armCoordHeartbeat(peer *transport.Peer, detectMs int64) {
	if detectMs <= 0 {
		return
	}
	hb := time.Duration(detectMs) * time.Millisecond / 3
	if hb < 10*time.Millisecond {
		hb = 10 * time.Millisecond
	}
	peer.HeartbeatEvery = hb
	peer.MissLimit = 2
	peer.OnDown = func() { w.onCoordDown(peer) }
	peer.StartHeartbeat()
}

// onCoordDown puts the worker in orphan mode: the engine keeps running
// and batches keep flowing — only checkpoint ships buffer locally. With
// a standby address, a redial loop announces this worker until a
// coordinator adopts it.
func (w *Worker) onCoordDown(peer *transport.Peer) {
	w.mu.Lock()
	if w.killed || w.coord != peer {
		// A stale detector from a link we already replaced.
		w.mu.Unlock()
		return
	}
	w.orphan = true
	if w.redialStop == nil && w.standby != "" {
		w.redialStop = make(chan struct{})
		go w.redialLoop(w.standby, w.redialStop)
	}
	w.mu.Unlock()
	peer.Close()
}

// redialLoop periodically dials the standby address and announces this
// worker with an unsolicited MsgReattach (Seq 0). The coordinator that
// answers dials our listener back and sends MsgResume; handleResume
// re-homes the control link and ends orphan mode, which ends this loop.
func (w *Worker) redialLoop(addr string, stop chan struct{}) {
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-w.died:
			return
		case <-tick.C:
		}
		w.mu.Lock()
		orphan := w.orphan
		w.mu.Unlock()
		if !orphan {
			return
		}
		peer, err := transport.DialWith(addr, w.codec, w.tm)
		if err != nil {
			continue
		}
		if body, err := encodeControl(w.inventory(0)); err == nil {
			_ = peer.SendControl(body)
		}
		peer.Close()
	}
}

// inventory assembles this worker's MsgReattach: what it actually
// hosts, whether its engine is running, and the last barrier it
// shipped.
func (w *Worker) inventory(seq uint64) *Control {
	ctl := &Control{Kind: MsgReattach, Seq: seq, From: w.self, LastBarrier: w.lastBarrier.Load()}
	w.mu.Lock()
	eng := w.eng
	ctl.Running = w.started
	w.mu.Unlock()
	if eng != nil {
		ctl.Hosted = eng.Local()
	}
	return ctl
}

// handleResume processes a (reborn) coordinator's announcement: re-home
// the control link, flush checkpoints buffered while orphaned, and reply
// with this worker's actual inventory so the coordinator can reconcile
// its journal against reality. MsgResume only ever comes from a
// coordinator that just (re)started at CoordAddr, so any existing link —
// even one pointing at that same address — is stale by definition: a
// write into the dead coordinator's half-closed socket can report
// success before the RST arrives, silently losing the reply. Always
// dial fresh. The engine is never restarted — streaming continues
// through the whole exchange.
func (w *Worker) handleResume(c *Control) {
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()
	peer, err := transport.DialWith(c.CoordAddr, w.codec, w.tm)
	if err != nil {
		// Best effort: announce over whatever link remains; the
		// coordinator re-sends MsgResume when it adopts us.
		w.sendToCoord(w.inventory(c.Seq))
		return
	}
	w.armCoordHeartbeat(peer, c.DetectMillis)
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		peer.Close()
		return
	}
	old := w.coord
	w.coord = peer
	w.orphan = false
	if c.StandbyAddr != "" {
		w.standby = c.StandbyAddr
	}
	rdl := w.redialStop
	w.redialStop = nil
	buffered := w.buffered
	w.buffered = nil
	w.bufferedBytes = 0
	w.mu.Unlock()
	if rdl != nil {
		close(rdl)
	}
	if old != nil && old != peer {
		old.Close()
	}
	for _, e := range buffered {
		_ = peer.SendControl(e.body)
	}
	w.sendToCoord(w.inventory(c.Seq))
}

// linkRouter is the engine's Remote: it resolves the destination
// instance to a worker and forwards the batch on that worker's FIFO
// link. Self-addressed batches (an instance planned here but not yet
// deployed) take the stash path directly.
type linkRouter struct{ w *Worker }

func (r *linkRouter) Deliver(to plan.InstanceID, ds []engine.Delivery) {
	r.w.deliverRemote(to, ds)
}

func (w *Worker) deliverRemote(to plan.InstanceID, ds []engine.Delivery) {
	if len(ds) == 0 {
		return
	}
	w.pmu.RLock()
	addr := w.placement[to]
	w.pmu.RUnlock()
	switch addr {
	case "":
		// Unknown destination (stale table racing a reroute): drop — the
		// tuples are retained in the sender's output buffer and replayed
		// once the new routing lands.
		return
	case w.self:
		cp := make([]engine.Delivery, len(ds))
		copy(cp, ds)
		w.stashOrDrop(to, cp)
		return
	}
	// A chunk shares one (from, input) by construction — the engine
	// groups sends per (hop, target).
	b := transport.Batch{From: ds[0].From, To: to, Input: ds[0].Input,
		Tuples: make([]stream.Tuple, len(ds))}
	for i := range ds {
		b.Tuples[i] = ds[i].T
	}
	w.link(addr).enqueue(b)
}

// linkMsg is one unit of outbound link work: a data batch (credit-gated)
// or a flow-control credit grant (never gated — grants are what unblock
// the other side).
type linkMsg struct {
	b        transport.Batch
	credit   transport.Credit
	isCredit bool
}

// peerLink is one outbound data connection with an async writer, so the
// emitting node goroutine never blocks on the network — it blocks on
// the bounded queue, which is drained (or discarded, when the peer is
// down) at link speed. The credits channel is the link's flow-control
// budget in batches: one credit is consumed per batch shipped and
// refilled by frameCredit grants from the receiving host, so a slow
// receiver stalls this sender instead of growing the remote queue.
type peerLink struct {
	addr    string
	q       chan linkMsg
	credits chan struct{}
}

// linkCreditTimeout is the liveness escape for a sender waiting on
// credits: grants can be lost across re-dials and reroutes, so after
// this long the budget is resynchronised to full and the batch ships
// anyway — the receiver's own bounded queues and TCP backpressure keep
// memory bounded even through a resync.
const linkCreditTimeout = 2 * time.Second

func (pl *peerLink) enqueue(b transport.Batch) {
	defer func() {
		// The queue closes when the worker is killed mid-flight; a send
		// racing that teardown is a dropped batch, not a crash.
		_ = recover()
	}()
	pl.q <- linkMsg{b: b}
}

func (pl *peerLink) enqueueCredit(c transport.Credit) {
	defer func() { _ = recover() }()
	pl.q <- linkMsg{credit: c, isCredit: true}
}

// refill tops the budget back up to capacity (credit resync).
func (pl *peerLink) refill() {
	for {
		select {
		case pl.credits <- struct{}{}:
		default:
			return
		}
	}
}

// acquireCredit takes one credit before a batch send, counting a
// transport credit stall when the fast path misses and resyncing the
// budget if no grant arrives within linkCreditTimeout.
func (pl *peerLink) acquireCredit(w *Worker) {
	select {
	case <-pl.credits:
		return
	default:
	}
	w.tm.AddCreditStall()
	t := time.NewTimer(linkCreditTimeout)
	defer t.Stop()
	select {
	case <-pl.credits:
	case <-t.C:
		pl.refill()
	case <-w.died:
	}
}

func (w *Worker) link(addr string) *peerLink {
	w.lmu.Lock()
	defer w.lmu.Unlock()
	if pl := w.links[addr]; pl != nil {
		return pl
	}
	slots := w.linkCredits
	if slots <= 0 {
		slots = 32 // engine defaults: 4096-tuple queue / 128-tuple batches
	}
	pl := &peerLink{addr: addr, q: make(chan linkMsg, 256), credits: make(chan struct{}, slots)}
	pl.refill()
	w.links[addr] = pl
	go w.runLink(pl)
	return pl
}

func (w *Worker) runLink(pl *peerLink) {
	// A batch is retried across re-dials before it is ever dropped:
	// resending a batch the receiver may already have processed is safe
	// (its per-upstream TS watermark discards the duplicates), so a
	// transient connection loss — one corrupt frame makes the remote
	// listener drop the connection, a TCP reset, a restart — costs a
	// reconnect, not data. Only a peer that stays unreachable through
	// every attempt (≈2 s, comfortably past the default heartbeat
	// detection horizon) loses the batch; by then the coordinator has
	// declared one side down and recovery replays from the retained
	// upstream buffers.
	const (
		maxAttempts  = 5
		retryBackoff = 400 * time.Millisecond
	)
	var p *transport.Peer
	var downUntil time.Time
	for m := range pl.q {
		if !m.isCredit {
			pl.acquireCredit(w)
		}
		sent := false
		for attempt := 0; attempt < maxAttempts; attempt++ {
			if p == nil {
				if wait := time.Until(downUntil); wait > 0 {
					time.Sleep(wait)
				}
				peer, err := transport.DialWith(pl.addr, w.codec, w.tm)
				if err != nil {
					downUntil = time.Now().Add(retryBackoff)
					continue
				}
				peer.LegacyBatch = w.legacyBatch.Load()
				p = peer
			}
			var err error
			if m.isCredit {
				err = p.SendCredit(m.credit)
			} else {
				err = p.SendBatch(m.b)
			}
			if err != nil {
				// The send already retried with one re-dial; rebuild the
				// peer and try again after a backoff.
				p.Close()
				p = nil
				downUntil = time.Now().Add(retryBackoff)
				continue
			}
			sent = true
			break
		}
		_ = sent // dropped after maxAttempts: retention + recovery cover it
	}
	if p != nil {
		p.Close()
	}
}

// reportLoop streams utilisation reports (input-queue backpressure, the
// live engine's CPU proxy) and worker counters to the coordinator.
func (w *Worker) reportLoop(every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	w.mu.Lock()
	stop := w.reportStop
	w.mu.Unlock()
	if stop == nil {
		return
	}
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			w.sendReport()
		}
	}
}

func (w *Worker) sendReport() {
	eng := w.Engine()
	if eng == nil {
		return
	}
	q := eng.Manager().Query()
	sampler := eng.QueueFillSampler()
	ctl := &Control{Kind: MsgReport, From: w.self, Stats: WorkerStats{
		SinkTuples:    eng.SinkCount.Value(),
		DupDropped:    eng.DupDropped.Value(),
		Processed:     eng.TotalProcessed(),
		Transport:     w.tm.Snapshot(),
		Backpressure:  eng.BackpressureSnapshot(),
		OrphanDropped: w.orphanDropped.Load(),
	}}
	for _, inst := range eng.Local() {
		spec := q.Op(inst.Op)
		if spec == nil || spec.Role == plan.RoleSource || spec.Role == plan.RoleSink {
			continue
		}
		if util, ok := sampler(inst); ok {
			ctl.Reports = append(ctl.Reports, control.Report{Inst: inst, Util: util})
		}
	}
	w.sendToCoord(ctl)
}
