package dist_test

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"seep/internal/controlplane"
	"seep/internal/dist"
	"seep/internal/plan"
	"seep/internal/state"
)

// durableCluster is a cluster whose coordinator journals every
// control-plane mutation, plus what a cold-standby coordinator needs to
// take over: the journal directory and the dead coordinator's address.
type durableCluster struct {
	*cluster
	reg  testRegistry
	cfg  dist.Config
	addr string
}

func startDurableCluster(t *testing.T, reg testRegistry, n int, hook func(controlplane.Kind) bool) *durableCluster {
	t.Helper()
	codec := state.GobPayloadCodec{}
	cl := &cluster{}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		w, err := dist.NewWorker("127.0.0.1:0", reg, codec)
		if err != nil {
			t.Fatal(err)
		}
		cl.workers = append(cl.workers, w)
		addrs[i] = w.Addr()
	}
	cfg := dist.Config{
		Addr:               "127.0.0.1:0",
		Codec:              codec,
		Topology:           "wordcount",
		CheckpointInterval: 100 * time.Millisecond,
		DetectDelay:        200 * time.Millisecond,
		RecoveryPi:         1,
		TransitionTimeout:  3 * time.Second,
		ControlPlaneDir:    t.TempDir(),
		JournalHook:        hook,
	}
	coord, err := dist.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.coord = coord
	if err := coord.Deploy(reg.q, addrs); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.coord.Close()
		for _, w := range cl.workers {
			w.Kill()
		}
	})
	return &durableCluster{cluster: cl, reg: reg, cfg: cfg, addr: coord.Addr()}
}

// rebirth replays the journal into a fresh coordinator listening on the
// dead one's address (restart-in-place: orphaned workers redial exactly
// there) and swaps it into the cluster. The crash hook never carries
// over — a reborn coordinator must not re-crash while rolling back.
func (dc *durableCluster) rebirth(t *testing.T) {
	t.Helper()
	cfg := dc.cfg
	cfg.Addr = dc.addr
	cfg.JournalHook = nil
	coord, err := dist.RecoverCoordinator(cfg, dc.reg.q)
	if err != nil {
		t.Fatalf("RecoverCoordinator: %v", err)
	}
	dc.coord = coord
}

// settle waits until the coordinator has at least want recovery records
// and no queued or in-flight transitions.
func (dc *durableCluster) settle(t *testing.T, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if len(dc.coord.Records()) >= want && dc.coord.Pending() == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator did not settle: records=%v errs=%v pending=%d",
				dc.coord.Records(), dc.coord.Errors(), dc.coord.Pending())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (dc *durableCluster) assertCounts(t *testing.T, want int64) {
	t.Helper()
	totals := make(map[string]int64)
	for _, inst := range dc.coord.Manager().Instances("count") {
		c := dc.counterOf(t, inst)
		for i := 0; i < 10; i++ {
			w := fmt.Sprintf("w%02d", i)
			totals[w] += c.Count(w)
		}
	}
	for w, n := range totals {
		if n != want {
			t.Errorf("total Count(%s) = %d, want %d", w, n, want)
		}
	}
}

// TestDistributedCoordinatorFailover kills the coordinator mid-job,
// streams through its death, restarts it from the journal on the same
// address and proves the job neither lost nor duplicated a tuple — then
// kills a worker to prove the reborn coordinator's failure detector is
// re-armed.
func TestDistributedCoordinatorFailover(t *testing.T) {
	reg := wordcountRegistry()
	dc := startDurableCluster(t, reg, 3, nil)
	if err := dc.coord.StartJob(); err != nil {
		t.Fatal(err)
	}
	src := plan.InstanceID{Op: "src", Part: 1}
	srcWorker := dc.hostOf(t, src)
	if err := srcWorker.Engine().InjectBatch(src, 300, parityGen); err != nil {
		t.Fatal(err)
	}
	dc.quiesce(t, 300*time.Millisecond, 10*time.Second)
	if st := dc.coord.ControlPlaneStats(); st.JournalAppends < 2 {
		t.Fatalf("JournalAppends = %d before kill, want deploy+start at least", st.JournalAppends)
	}

	// kill -9: no stop messages, no goodbye. Workers keep streaming
	// worker-to-worker, buffering checkpoints while orphaned.
	dc.coord.Close()
	if err := srcWorker.Engine().InjectBatch(src, 300, parityGen); err != nil {
		t.Fatal(err)
	}
	dc.quiesce(t, 300*time.Millisecond, 10*time.Second)

	dc.rebirth(t)
	st := dc.coord.ControlPlaneStats()
	if st.ReplayRecords < 2 {
		t.Errorf("ReplayRecords = %d, want the journaled deploy+start at least", st.ReplayRecords)
	}
	if st.Reattached != 3 {
		t.Errorf("Reattached = %d, want 3", st.Reattached)
	}
	dc.settle(t, 0, 10*time.Second)
	dc.quiesce(t, 300*time.Millisecond, 10*time.Second)
	if err := srcWorker.Engine().InjectBatch(src, 300, parityGen); err != nil {
		t.Fatal(err)
	}
	dc.quiesce(t, 300*time.Millisecond, 10*time.Second)
	dc.assertCounts(t, 90)
	if recs := dc.coord.Records(); len(recs) != 0 {
		t.Errorf("failover with healthy workers should not recover anything: %v", recs)
	}
	if errs := dc.coord.Errors(); len(errs) != 0 {
		t.Errorf("Errors = %v", errs)
	}

	// The reborn coordinator's heartbeat detector must work: kill the
	// worker hosting the counter and expect a normal recovery.
	victim := dc.coord.Manager().Instances("count")[0]
	if err := dc.coord.Fail(victim); err != nil {
		t.Fatal(err)
	}
	dc.settle(t, 1, 10*time.Second)
	dc.quiesce(t, 300*time.Millisecond, 10*time.Second)
	if err := srcWorker.Engine().InjectBatch(src, 300, parityGen); err != nil {
		t.Fatal(err)
	}
	dc.quiesce(t, 300*time.Millisecond, 10*time.Second)
	dc.assertCounts(t, 120)
	rec := dc.coord.Records()[0]
	if !rec.Failure || rec.Victim != victim {
		t.Errorf("post-failover recovery record = %+v", rec)
	}
}

// TestCoordinatorCrashMidScaleOutRollsBack kills the coordinator at the
// worst possible instant of a scale-out — the split is planned and
// journaled, the victim is retired everywhere, but no worker has heard
// of the replacements. The reborn coordinator must roll the in-doubt
// transition back through the recovery path so no key range is
// stranded.
func TestCoordinatorCrashMidScaleOutRollsBack(t *testing.T) {
	reg := wordcountRegistry()
	var armed atomic.Bool
	dc := startDurableCluster(t, reg, 3, func(k controlplane.Kind) bool {
		return armed.Load() && k == controlplane.RecPlanned
	})
	if err := dc.coord.StartJob(); err != nil {
		t.Fatal(err)
	}
	src := plan.InstanceID{Op: "src", Part: 1}
	srcWorker := dc.hostOf(t, src)
	if err := srcWorker.Engine().InjectBatch(src, 300, parityGen); err != nil {
		t.Fatal(err)
	}
	dc.quiesce(t, 300*time.Millisecond, 10*time.Second)

	victim := dc.coord.Manager().Instances("count")[0]
	armed.Store(true)
	err := dc.coord.ScaleOut(victim, 2)
	if err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("ScaleOut across a coordinator crash returned %v, want closed", err)
	}
	armed.Store(false)

	dc.rebirth(t)
	// Both planned-but-undeployed partitions roll back through recovery.
	dc.settle(t, 2, 15*time.Second)
	dc.quiesce(t, 300*time.Millisecond, 10*time.Second)
	insts := dc.coord.Manager().Instances("count")
	if len(insts) != 2 {
		t.Fatalf("Instances(count) after rollback = %v, want 2 partitions", insts)
	}
	for _, rec := range dc.coord.Records() {
		if !rec.Failure {
			t.Errorf("rollback record not a recovery: %+v", rec)
		}
	}
	if err := srcWorker.Engine().InjectBatch(src, 300, parityGen); err != nil {
		t.Fatal(err)
	}
	dc.quiesce(t, 300*time.Millisecond, 10*time.Second)
	dc.assertCounts(t, 60)
}

// TestCoordinatorCrashMidScaleInRollsBack crashes the coordinator right
// after a merge is planned and journaled: both victims are final-retired
// everywhere and the merged instance exists only in the journal and the
// durable store. Replay must reroute with the journaled trims and
// recover the merged instance so the victims' key ranges reappear.
func TestCoordinatorCrashMidScaleInRollsBack(t *testing.T) {
	reg := wordcountRegistry()
	var armed atomic.Bool
	dc := startDurableCluster(t, reg, 3, func(k controlplane.Kind) bool {
		return armed.Load() && k == controlplane.RecPlanned
	})
	if err := dc.coord.StartJob(); err != nil {
		t.Fatal(err)
	}
	src := plan.InstanceID{Op: "src", Part: 1}
	srcWorker := dc.hostOf(t, src)
	if err := srcWorker.Engine().InjectBatch(src, 200, parityGen); err != nil {
		t.Fatal(err)
	}
	dc.quiesce(t, 300*time.Millisecond, 10*time.Second)
	if err := dc.coord.ScaleOut(dc.coord.Manager().Instances("count")[0], 2); err != nil {
		t.Fatal(err)
	}
	dc.quiesce(t, 300*time.Millisecond, 10*time.Second)
	if err := srcWorker.Engine().InjectBatch(src, 200, parityGen); err != nil {
		t.Fatal(err)
	}
	dc.quiesce(t, 300*time.Millisecond, 10*time.Second)

	siblings := dc.coord.Manager().Instances("count")
	if len(siblings) != 2 {
		t.Fatalf("Instances(count) = %v, want 2", siblings)
	}
	armed.Store(true)
	err := dc.coord.ScaleIn(siblings)
	if err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("ScaleIn across a coordinator crash returned %v, want closed", err)
	}
	armed.Store(false)

	dc.rebirth(t)
	dc.settle(t, 1, 15*time.Second)
	dc.quiesce(t, 300*time.Millisecond, 10*time.Second)
	merged := dc.coord.Manager().Instances("count")
	if len(merged) != 1 {
		t.Fatalf("Instances(count) after rollback = %v, want 1 merged instance", merged)
	}
	if err := srcWorker.Engine().InjectBatch(src, 200, parityGen); err != nil {
		t.Fatal(err)
	}
	dc.quiesce(t, 300*time.Millisecond, 10*time.Second)
	dc.assertCounts(t, 60)
}

// TestCoordinatorCrashAtIntentIsNoOp crashes the coordinator right
// after a scale-out intent is journaled, before the victim hears its
// retire. The in-doubt transition never changed anything; replay must
// roll it back to a no-op and leave the running instance alone.
func TestCoordinatorCrashAtIntentIsNoOp(t *testing.T) {
	reg := wordcountRegistry()
	var armed atomic.Bool
	dc := startDurableCluster(t, reg, 3, func(k controlplane.Kind) bool {
		return armed.Load() && k == controlplane.RecIntent
	})
	if err := dc.coord.StartJob(); err != nil {
		t.Fatal(err)
	}
	src := plan.InstanceID{Op: "src", Part: 1}
	srcWorker := dc.hostOf(t, src)
	if err := srcWorker.Engine().InjectBatch(src, 300, parityGen); err != nil {
		t.Fatal(err)
	}
	dc.quiesce(t, 300*time.Millisecond, 10*time.Second)

	victim := dc.coord.Manager().Instances("count")[0]
	armed.Store(true)
	if err := dc.coord.ScaleOut(victim, 2); err == nil {
		t.Fatal("ScaleOut across a coordinator crash succeeded")
	}
	armed.Store(false)

	dc.rebirth(t)
	dc.settle(t, 0, 10*time.Second)
	dc.quiesce(t, 300*time.Millisecond, 10*time.Second)
	if insts := dc.coord.Manager().Instances("count"); len(insts) != 1 || insts[0] != victim {
		t.Fatalf("Instances(count) = %v, want untouched %v", insts, victim)
	}
	if recs := dc.coord.Records(); len(recs) != 0 {
		t.Errorf("no-op rollback produced records: %v", recs)
	}
	if err := srcWorker.Engine().InjectBatch(src, 300, parityGen); err != nil {
		t.Fatal(err)
	}
	dc.quiesce(t, 300*time.Millisecond, 10*time.Second)
	dc.assertCounts(t, 60)
}
