package dist_test

import (
	"fmt"
	"testing"
	"time"

	"seep/internal/dist"
	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

type testRegistry struct {
	q *plan.Query
	f map[plan.OpID]operator.Factory
}

func (r testRegistry) Lookup(string) (*plan.Query, map[plan.OpID]operator.Factory, []dist.SourceBinding, error) {
	return r.q, r.f, nil, nil
}

func wordcountRegistry() testRegistry {
	q := plan.NewQuery()
	q.AddOp(plan.OpSpec{ID: "src", Role: plan.RoleSource})
	q.AddOp(plan.OpSpec{ID: "split", Role: plan.RoleStateless})
	q.AddOp(plan.OpSpec{ID: "count", Role: plan.RoleStateful})
	q.AddOp(plan.OpSpec{ID: "sink", Role: plan.RoleSink})
	q.Connect("src", "split").Connect("split", "count").Connect("count", "sink")
	return testRegistry{q: q, f: map[plan.OpID]operator.Factory{
		"split": func() operator.Operator { return operator.WordSplitter() },
		"count": func() operator.Operator { return operator.NewWordCounter(0) },
	}}
}

func parityGen(i uint64) (stream.Key, any) {
	w := fmt.Sprintf("w%02d", i%10)
	return stream.KeyOfString(w), w
}

// cluster is a coordinator plus n loopback workers, every link a real
// TCP connection.
type cluster struct {
	coord   *dist.Coordinator
	workers []*dist.Worker
}

func startCluster(t *testing.T, reg testRegistry, n int) *cluster {
	return startClusterWith(t, reg, n, nil)
}

func startClusterWith(t *testing.T, reg testRegistry, n int, mutate func(*dist.Config)) *cluster {
	t.Helper()
	codec := state.GobPayloadCodec{}
	cl := &cluster{}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		w, err := dist.NewWorker("127.0.0.1:0", reg, codec)
		if err != nil {
			t.Fatal(err)
		}
		cl.workers = append(cl.workers, w)
		addrs[i] = w.Addr()
	}
	cfg := dist.Config{
		Addr:               "127.0.0.1:0",
		Codec:              codec,
		Topology:           "wordcount",
		CheckpointInterval: 100 * time.Millisecond,
		DetectDelay:        200 * time.Millisecond,
		RecoveryPi:         1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	coord, err := dist.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.coord = coord
	if err := coord.Deploy(reg.q, addrs); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		coord.Close()
		for _, w := range cl.workers {
			w.Kill()
		}
	})
	return cl
}

// hostOf returns the in-process worker currently hosting inst.
func (cl *cluster) hostOf(t *testing.T, inst plan.InstanceID) *dist.Worker {
	t.Helper()
	addr := cl.coord.PlacementOf(inst)
	for _, w := range cl.workers {
		if w.Addr() == addr {
			return w
		}
	}
	t.Fatalf("no worker hosts %s (placement %q)", inst, addr)
	return nil
}

// quiesce waits until no worker engine processes tuples for settle.
func (cl *cluster) quiesce(t *testing.T, settle, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	last := cl.processed()
	lastChange := time.Now()
	for time.Now().Before(deadline) {
		if cl.coord.Pending() > 0 {
			lastChange = time.Now()
		}
		time.Sleep(settle / 4)
		cur := cl.processed()
		if cur != last {
			last = cur
			lastChange = time.Now()
			continue
		}
		if time.Since(lastChange) >= settle {
			return
		}
	}
	t.Fatalf("cluster did not quiesce within %v", timeout)
}

func (cl *cluster) processed() uint64 {
	var n uint64
	for _, w := range cl.workers {
		if eng := w.Engine(); eng != nil {
			n += eng.TotalProcessed()
		}
	}
	return n
}

func (cl *cluster) counterOf(t *testing.T, inst plan.InstanceID) *operator.WordCounter {
	t.Helper()
	w := cl.hostOf(t, inst)
	eng := w.Engine()
	if eng == nil {
		t.Fatalf("worker %s has no engine", w.Addr())
	}
	op := eng.OperatorOf(inst)
	wc, ok := op.(*operator.WordCounter)
	if !ok {
		t.Fatalf("OperatorOf(%v) = %T", inst, op)
	}
	return wc
}

// TestDistributedWordCount runs the wordcount pipeline across three
// worker processes' worth of loopback TCP and checks exact counts.
func TestDistributedWordCount(t *testing.T) {
	reg := wordcountRegistry()
	cl := startCluster(t, reg, 3)
	if err := cl.coord.StartJob(); err != nil {
		t.Fatal(err)
	}

	src := plan.InstanceID{Op: "src", Part: 1}
	srcWorker := cl.hostOf(t, src)
	if err := srcWorker.Engine().InjectBatch(src, 300, parityGen); err != nil {
		t.Fatal(err)
	}
	cl.quiesce(t, 300*time.Millisecond, 10*time.Second)

	count := cl.coord.Manager().Instances("count")[0]
	counter := cl.counterOf(t, count)
	for i := 0; i < 10; i++ {
		w := fmt.Sprintf("w%02d", i)
		if got := counter.Count(w); got != 30 {
			t.Errorf("Count(%s) = %d, want 30", w, got)
		}
	}
	// The pipeline crossed worker boundaries: transport moved frames.
	var stats uint64
	for _, w := range cl.workers {
		stats += w.TransportStats().FramesSent
	}
	if stats == 0 {
		t.Error("no frames crossed the wire — placement kept the pipeline local?")
	}
}

// TestDistributedRecoveryExactCounts kills the worker hosting the
// stateful counter mid-stream and asserts exact per-key counts after
// heartbeat-detected recovery — the distributed mirror of the in-process
// parity tests.
func TestDistributedRecoveryExactCounts(t *testing.T) {
	reg := wordcountRegistry()
	cl := startCluster(t, reg, 3)
	if err := cl.coord.StartJob(); err != nil {
		t.Fatal(err)
	}
	src := plan.InstanceID{Op: "src", Part: 1}
	srcWorker := cl.hostOf(t, src)

	if err := srcWorker.Engine().InjectBatch(src, 300, parityGen); err != nil {
		t.Fatal(err)
	}
	cl.quiesce(t, 300*time.Millisecond, 10*time.Second)

	victim := cl.coord.Manager().Instances("count")[0]
	if err := cl.coord.Fail(victim); err != nil {
		t.Fatal(err)
	}
	// Heartbeat detection + recovery transition.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if len(cl.coord.Records()) == 1 && cl.coord.Pending() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovery did not complete: records=%v errs=%v pending=%d",
				cl.coord.Records(), cl.coord.Errors(), cl.coord.Pending())
		}
		time.Sleep(10 * time.Millisecond)
	}
	cl.quiesce(t, 300*time.Millisecond, 10*time.Second)

	if err := srcWorker.Engine().InjectBatch(src, 300, parityGen); err != nil {
		t.Fatal(err)
	}
	cl.quiesce(t, 300*time.Millisecond, 10*time.Second)

	insts := cl.coord.Manager().Instances("count")
	if len(insts) != 1 || insts[0] == victim {
		t.Fatalf("Instances(count) after recovery = %v (victim %v)", insts, victim)
	}
	counter := cl.counterOf(t, insts[0])
	for i := 0; i < 10; i++ {
		w := fmt.Sprintf("w%02d", i)
		if got := counter.Count(w); got != 60 {
			t.Errorf("Count(%s) = %d, want 60 (exactly once across worker failure)", w, got)
		}
	}
	rec := cl.coord.Records()[0]
	if !rec.Failure || rec.Victim != victim || rec.Pi != 1 {
		t.Errorf("record = %+v", rec)
	}
	if errs := cl.coord.Errors(); len(errs) != 0 {
		t.Errorf("Errors = %v", errs)
	}
}

// TestDistributedScaleOut splits the counter across workers via the
// coordinator's barrier → retire → reroute → deploy transition.
func TestDistributedScaleOut(t *testing.T) {
	reg := wordcountRegistry()
	cl := startCluster(t, reg, 3)
	if err := cl.coord.StartJob(); err != nil {
		t.Fatal(err)
	}
	src := plan.InstanceID{Op: "src", Part: 1}
	srcWorker := cl.hostOf(t, src)
	if err := srcWorker.Engine().InjectBatch(src, 200, parityGen); err != nil {
		t.Fatal(err)
	}
	cl.quiesce(t, 300*time.Millisecond, 10*time.Second)

	victim := cl.coord.Manager().Instances("count")[0]
	if err := cl.coord.ScaleOut(victim, 2); err != nil {
		t.Fatal(err)
	}
	cl.quiesce(t, 300*time.Millisecond, 10*time.Second)
	insts := cl.coord.Manager().Instances("count")
	if len(insts) != 2 {
		t.Fatalf("Instances(count) = %v, want 2 partitions", insts)
	}
	if err := srcWorker.Engine().InjectBatch(src, 200, parityGen); err != nil {
		t.Fatal(err)
	}
	cl.quiesce(t, 300*time.Millisecond, 10*time.Second)

	// Partitioned counters together hold every word exactly once.
	totals := make(map[string]int64)
	for _, inst := range insts {
		c := cl.counterOf(t, inst)
		for i := 0; i < 10; i++ {
			w := fmt.Sprintf("w%02d", i)
			totals[w] += c.Count(w)
		}
	}
	for w, n := range totals {
		if n != 40 {
			t.Errorf("total Count(%s) = %d, want 40", w, n)
		}
	}
	recs := cl.coord.Records()
	if len(recs) != 1 || recs[0].Failure || recs[0].Pi != 2 {
		t.Errorf("records = %+v", recs)
	}
}

// TestDistributedScaleIn grows the counter to two partitions, streams
// through both, merges them back via the coordinator's staged
// final-retire → plan → reroute(trim) → deploy transition, and asserts
// exact per-key counts plus a merge record. Scale-in also exercises the
// legacy-buffer trims: the merged instance carries the victims' buffers
// under their original identities until downstream acknowledges them.
func TestDistributedScaleIn(t *testing.T) {
	reg := wordcountRegistry()
	cl := startCluster(t, reg, 3)
	if err := cl.coord.StartJob(); err != nil {
		t.Fatal(err)
	}
	src := plan.InstanceID{Op: "src", Part: 1}
	srcWorker := cl.hostOf(t, src)
	if err := srcWorker.Engine().InjectBatch(src, 200, parityGen); err != nil {
		t.Fatal(err)
	}
	cl.quiesce(t, 300*time.Millisecond, 10*time.Second)

	if err := cl.coord.ScaleOut(cl.coord.Manager().Instances("count")[0], 2); err != nil {
		t.Fatal(err)
	}
	cl.quiesce(t, 300*time.Millisecond, 10*time.Second)
	if err := srcWorker.Engine().InjectBatch(src, 200, parityGen); err != nil {
		t.Fatal(err)
	}
	cl.quiesce(t, 300*time.Millisecond, 10*time.Second)

	siblings := cl.coord.Manager().Instances("count")
	if len(siblings) != 2 {
		t.Fatalf("Instances(count) = %v, want 2", siblings)
	}
	if err := cl.coord.ScaleIn(siblings); err != nil {
		t.Fatal(err)
	}
	cl.quiesce(t, 300*time.Millisecond, 10*time.Second)

	merged := cl.coord.Manager().Instances("count")
	if len(merged) != 1 {
		t.Fatalf("Instances(count) after merge = %v, want 1", merged)
	}
	if cl.coord.Merges() != 1 {
		t.Errorf("Merges() = %d, want 1", cl.coord.Merges())
	}
	if err := srcWorker.Engine().InjectBatch(src, 200, parityGen); err != nil {
		t.Fatal(err)
	}
	cl.quiesce(t, 300*time.Millisecond, 10*time.Second)

	counter := cl.counterOf(t, merged[0])
	for i := 0; i < 10; i++ {
		w := fmt.Sprintf("w%02d", i)
		if got := counter.Count(w); got != 60 {
			t.Errorf("Count(%s) = %d, want 60 (exactly once across grow+shrink over TCP)", w, got)
		}
	}
	var mergeRecs int
	for _, rec := range cl.coord.Records() {
		if rec.Merge {
			mergeRecs++
		}
	}
	if mergeRecs != 1 {
		t.Errorf("merge records = %d of %v", mergeRecs, cl.coord.Records())
	}
	if errs := cl.coord.Errors(); len(errs) != 0 {
		t.Errorf("Errors = %v", errs)
	}
}

// TestDistributedScaleInGuards: bad victim sets are rejected without
// wedging the coordinator loop.
func TestDistributedScaleInGuards(t *testing.T) {
	reg := wordcountRegistry()
	cl := startCluster(t, reg, 2)
	if err := cl.coord.StartJob(); err != nil {
		t.Fatal(err)
	}
	count := cl.coord.Manager().Instances("count")[0]
	if err := cl.coord.ScaleIn([]plan.InstanceID{count}); err == nil {
		t.Error("single-victim merge accepted")
	}
	if err := cl.coord.ScaleIn([]plan.InstanceID{count, {Op: "count", Part: 99}}); err == nil {
		t.Error("merge with an unknown sibling accepted")
	}
	src := plan.InstanceID{Op: "src", Part: 1}
	if err := cl.coord.ScaleIn([]plan.InstanceID{src, count}); err == nil {
		t.Error("merge involving a source accepted")
	}
	// The loop still serves requests after the rejections.
	if got := cl.coord.Manager().Parallelism("count"); got != 1 {
		t.Errorf("Parallelism(count) = %d after rejected merges", got)
	}
}

// TestDistributedWordCountGobWireCodec pins the cluster to the legacy
// gob framing via the negotiated codec byte in the job spec: counts must
// stay exact and frames still flow, proving a fleet that cannot speak the
// binary codec degrades to gob instead of corrupting the stream.
func TestDistributedWordCountGobWireCodec(t *testing.T) {
	reg := wordcountRegistry()
	cl := startClusterWith(t, reg, 3, func(c *dist.Config) {
		c.WireCodec = "gob"
	})
	if err := cl.coord.StartJob(); err != nil {
		t.Fatal(err)
	}

	src := plan.InstanceID{Op: "src", Part: 1}
	srcWorker := cl.hostOf(t, src)
	if err := srcWorker.Engine().InjectBatch(src, 300, parityGen); err != nil {
		t.Fatal(err)
	}
	cl.quiesce(t, 300*time.Millisecond, 10*time.Second)

	count := cl.coord.Manager().Instances("count")[0]
	counter := cl.counterOf(t, count)
	for i := 0; i < 10; i++ {
		w := fmt.Sprintf("w%02d", i)
		if got := counter.Count(w); got != 30 {
			t.Errorf("Count(%s) = %d, want 30 under gob framing", w, got)
		}
	}
	var frames uint64
	for _, w := range cl.workers {
		frames += w.TransportStats().FramesSent
	}
	if frames == 0 {
		t.Error("no frames crossed the wire under gob framing")
	}
}

// TestDistributedDeltaCheckpointRecoveryExactCounts is the recovery
// parity test with delta checkpoints shipping over the wire: kill the
// worker hosting the stateful counter mid-stream and assert the exact
// per-key counts a full-checkpoint run produces — folding deltas into
// the coordinator's backup store must lose nothing.
func TestDistributedDeltaCheckpointRecoveryExactCounts(t *testing.T) {
	reg := wordcountRegistry()
	cl := startClusterWith(t, reg, 3, func(c *dist.Config) {
		c.Delta = state.DeltaPolicy{FullEvery: 5, MaxDeltaFraction: 0.9}
		c.DeltaCompress = true
	})
	if err := cl.coord.StartJob(); err != nil {
		t.Fatal(err)
	}
	src := plan.InstanceID{Op: "src", Part: 1}
	srcWorker := cl.hostOf(t, src)

	if err := srcWorker.Engine().InjectBatch(src, 300, parityGen); err != nil {
		t.Fatal(err)
	}
	cl.quiesce(t, 300*time.Millisecond, 10*time.Second)

	victim := cl.coord.Manager().Instances("count")[0]
	if err := cl.coord.Fail(victim); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if len(cl.coord.Records()) == 1 && cl.coord.Pending() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovery did not complete: records=%v errs=%v pending=%d",
				cl.coord.Records(), cl.coord.Errors(), cl.coord.Pending())
		}
		time.Sleep(10 * time.Millisecond)
	}
	cl.quiesce(t, 300*time.Millisecond, 10*time.Second)

	if err := srcWorker.Engine().InjectBatch(src, 300, parityGen); err != nil {
		t.Fatal(err)
	}
	cl.quiesce(t, 300*time.Millisecond, 10*time.Second)

	insts := cl.coord.Manager().Instances("count")
	if len(insts) != 1 || insts[0] == victim {
		t.Fatalf("Instances(count) after recovery = %v (victim %v)", insts, victim)
	}
	counter := cl.counterOf(t, insts[0])
	for i := 0; i < 10; i++ {
		w := fmt.Sprintf("w%02d", i)
		if got := counter.Count(w); got != 60 {
			t.Errorf("Count(%s) = %d, want 60 (exactly once across failure with delta checkpoints)", w, got)
		}
	}
	if errs := cl.coord.Errors(); len(errs) != 0 {
		t.Errorf("Errors = %v", errs)
	}
}
