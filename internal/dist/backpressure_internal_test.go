package dist

import (
	"bytes"
	"testing"
	"time"

	"seep/internal/plan"
	"seep/internal/transport"
)

func orphanInst(part int) plan.InstanceID {
	return plan.InstanceID{Op: "count", Part: part}
}

// Checkpoint sequences are monotonic per instance, so a newer ship for
// the same instance replaces the old one instead of accumulating.
func TestOrphanBufferKeepsNewestPerInstance(t *testing.T) {
	w := &Worker{}
	w.bufferShip(orphanInst(1), bytes.Repeat([]byte{1}, 100))
	w.bufferShip(orphanInst(1), bytes.Repeat([]byte{2}, 300))
	if len(w.buffered) != 1 {
		t.Fatalf("buffered %d entries for one instance, want 1", len(w.buffered))
	}
	if w.bufferedBytes != 300 {
		t.Fatalf("bufferedBytes = %d, want 300 (newest ship only)", w.bufferedBytes)
	}
	if got := w.OrphanDropped(); got != 0 {
		t.Fatalf("overwrite counted %d drops, want 0", got)
	}
}

// The byte cap evicts least-recently-updated instances first and counts
// every eviction, so an orphaned worker's memory stays bounded no
// matter how long the coordinator stays dead.
func TestOrphanBufferByteCapEvictsOldest(t *testing.T) {
	const shipBytes = 8 << 20 // 8 entries fill maxOrphanBufBytes exactly
	w := &Worker{}
	body := bytes.Repeat([]byte{7}, shipBytes)
	for i := 0; i < 10; i++ {
		w.bufferShip(orphanInst(i), body)
	}
	if w.bufferedBytes > maxOrphanBufBytes {
		t.Fatalf("buffer holds %d bytes, cap is %d", w.bufferedBytes, maxOrphanBufBytes)
	}
	if got := w.OrphanDropped(); got != 2 {
		t.Fatalf("OrphanDropped = %d, want 2", got)
	}
	for i := 0; i < 2; i++ {
		if _, ok := w.buffered[orphanInst(i)]; ok {
			t.Errorf("oldest instance %d survived eviction", i)
		}
	}
	for i := 2; i < 10; i++ {
		if _, ok := w.buffered[orphanInst(i)]; !ok {
			t.Errorf("newer instance %d was evicted", i)
		}
	}
}

// A single ship larger than the whole cap is still kept (the cap
// bounds accumulation across instances, not one instance's state): the
// reborn coordinator would rather re-collect at the next barrier than
// lose the only copy.
func TestOrphanBufferRetainsSingleOversizedShip(t *testing.T) {
	w := &Worker{}
	w.bufferShip(orphanInst(0), bytes.Repeat([]byte{9}, maxOrphanBufBytes+1))
	if len(w.buffered) != 1 {
		t.Fatalf("oversized ship evicted; buffered = %d entries", len(w.buffered))
	}
	if got := w.OrphanDropped(); got != 0 {
		t.Fatalf("OrphanDropped = %d, want 0", got)
	}
}

// acquireCredit's fast path is silent; an exhausted budget counts one
// stall and blocks until the receiver grants a credit back.
func TestLinkCreditStallCountsAndUnblocksOnGrant(t *testing.T) {
	w := &Worker{tm: &transport.Metrics{}, died: make(chan struct{})}
	pl := &peerLink{addr: "test", q: make(chan linkMsg, 4), credits: make(chan struct{}, 2)}
	pl.refill()

	pl.acquireCredit(w)
	pl.acquireCredit(w)
	if got := w.tm.Snapshot().CreditStalls; got != 0 {
		t.Fatalf("fast path counted %d stalls, want 0", got)
	}

	done := make(chan struct{})
	go func() {
		pl.acquireCredit(w)
		close(done)
	}()
	// The waiter must be stalled, not satisfied: the budget is empty.
	select {
	case <-done:
		t.Fatal("acquireCredit returned with an empty budget and no grant")
	case <-time.After(50 * time.Millisecond):
	}
	pl.credits <- struct{}{} // receiver grants a slot back
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("grant did not unblock the stalled sender")
	}
	if got := w.tm.Snapshot().CreditStalls; got != 1 {
		t.Fatalf("CreditStalls = %d, want 1", got)
	}
}

// When no grant arrives within linkCreditTimeout (grants can be lost
// across re-dials), the budget resyncs to full and the batch ships
// anyway — liveness wins over strict credit accounting.
func TestLinkCreditTimeoutResyncsBudget(t *testing.T) {
	w := &Worker{tm: &transport.Metrics{}, died: make(chan struct{})}
	pl := &peerLink{addr: "test", q: make(chan linkMsg, 4), credits: make(chan struct{}, 3)}
	// Budget starts empty: no refill, no grants coming.
	start := time.Now()
	pl.acquireCredit(w)
	if elapsed := time.Since(start); elapsed < linkCreditTimeout {
		t.Fatalf("acquireCredit returned after %v, before the %v resync escape", elapsed, linkCreditTimeout)
	}
	if got := len(pl.credits); got != cap(pl.credits) {
		t.Fatalf("budget resynced to %d credits, want full capacity %d", got, cap(pl.credits))
	}
	if got := w.tm.Snapshot().CreditStalls; got != 1 {
		t.Fatalf("CreditStalls = %d, want 1", got)
	}
}
