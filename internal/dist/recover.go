package dist

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"seep/internal/controlplane"
	"seep/internal/core"
	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/transport"
)

// RecoverCoordinator rebuilds a coordinator from its control-plane
// journal: replay the WAL into plan + placement, reload the durable
// backup store, re-dial the journaled workers and reconcile the
// replayed state against each worker's actual inventory through the
// MsgResume/MsgReattach handshake. Workers are NOT restarted — they
// kept streaming through the old coordinator's death — and any
// journaled transition without a commit record rolls back through the
// abort-to-recovery path, so a crash between retire and deploy never
// strands a key range. Blocks until reconciliation completes (queued
// rollback recoveries may still be draining; Pending gates on them).
func RecoverCoordinator(cfg Config, q *plan.Query) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.ControlPlaneDir == "" {
		return nil, fmt.Errorf("dist: recovery requires Config.ControlPlaneDir")
	}
	began := time.Now()
	rep, err := controlplane.Replay(cfg.ControlPlaneDir)
	if err != nil {
		return nil, err
	}
	// Restart-in-place races the dying coordinator releasing its socket:
	// callers unblock when its loop stops, fractionally before its
	// listener closes. Retry the bind briefly rather than surface the
	// race.
	var c *Coordinator
	for deadline := time.Now().Add(5 * time.Second); ; {
		c, err = newCoordinator(cfg)
		if err == nil {
			break
		}
		if !strings.Contains(err.Error(), "address already in use") || time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := c.call(2*cfg.TransitionTimeout, func(done chan error) { c.startRecover(rep, q, began, done) }); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// dialWorker dials one worker and arms the heartbeat failure detector
// on the control link.
func (c *Coordinator) dialWorker(addr string) (*transport.Peer, error) {
	peer, err := transport.DialWith(addr, c.codec, c.tm)
	if err != nil {
		return nil, err
	}
	hb := c.cfg.DetectDelay / 3
	if hb < 10*time.Millisecond {
		hb = 10 * time.Millisecond
	}
	peer.HeartbeatEvery = hb
	peer.MissLimit = 2
	a := addr
	peer.OnDown = func() { c.post(event{kind: evDown, addr: a}) }
	peer.StartHeartbeat()
	return peer, nil
}

// startRecover runs on the loop: restore the manager's topology from
// the journaled snapshot, reload the durable store, re-dial workers and
// begin the reattach handshake. done is answered when reconciliation
// finishes.
func (c *Coordinator) startRecover(rep *controlplane.Replayed, q *plan.Query, began time.Time, done chan error) {
	if c.mgr != nil {
		done <- fmt.Errorf("dist: already deployed")
		return
	}
	st := rep.State
	mgr, err := core.NewManager(q)
	if err != nil {
		done <- err
		return
	}
	instances := make(map[plan.OpID][]plan.InstanceID, len(st.Instances))
	for _, oi := range st.Instances {
		instances[oi.Op] = oi.Insts
	}
	nextPart := make(map[plan.OpID]int, len(st.NextPart))
	for _, np := range st.NextPart {
		nextPart[np.Op] = np.Next
	}
	routing := make(map[plan.OpID]*state.Routing, len(st.Routing))
	for _, or := range st.Routing {
		r, err := decodeRouting(or.Blob)
		if err != nil {
			done <- fmt.Errorf("dist: journaled routing for %s: %w", or.Op, err)
			return
		}
		routing[or.Op] = r
	}
	if err := mgr.RestoreTopology(instances, nextPart, routing); err != nil {
		done <- err
		return
	}
	c.q, c.mgr = q, mgr

	// Reload every shipped checkpoint from disk into the restored
	// manager's backup store. Torn files cost one backup each, not the
	// recovery; stale files of instances no longer live (a crash between
	// plan and cleanup) are swept here.
	ds, err := core.NewDurableStoreOver(mgr.Backups(), c.cfg.ControlPlaneDir, c.codec)
	if err != nil {
		done <- err
		return
	}
	c.dstore = ds
	owners, skipped, err := ds.LoadAll(mgr.BackupTarget)
	if err != nil {
		done <- err
		return
	}
	for _, sk := range skipped {
		c.pushErr("dist: replay: %v", sk)
	}
	for _, o := range owners {
		if !mgr.Live(o) {
			ds.Delete(o)
		}
	}

	for _, p := range st.Placements {
		c.placement[p.Inst] = p.Addr
	}
	c.order = append([]string(nil), st.Workers...)
	for _, lp := range st.Legacy {
		c.legacyOwner[lp.Old] = lp.Owner
	}
	// Transition sequences stay monotonic across restarts, and the job
	// clock resumes from the journaled wall-clock start.
	c.seq = rep.LastSeq
	if st.Started {
		c.startAt = time.UnixMilli(st.StartUnixMillis)
	}
	c.mu.Lock()
	c.replayRecords = rep.Records
	c.replayMillis = time.Since(began).Milliseconds()
	c.mu.Unlock()

	for _, addr := range c.order {
		peer, err := c.dialWorker(addr)
		if err != nil {
			// The worker died while the coordinator was down; reconcile
			// hands its journaled instances to the recovery path.
			c.workers[addr] = &workerRef{addr: addr}
			continue
		}
		c.workers[addr] = &workerRef{addr: addr, peer: peer, alive: true}
	}
	c.beginReattach(rep, began, done)
}

// beginReattach broadcasts MsgResume and collects every live worker's
// MsgReattach inventory before reconciling.
func (c *Coordinator) beginReattach(rep *controlplane.Replayed, began time.Time, done chan error) {
	t := &transition{seq: c.nextSeq(), reattach: true, done: done}
	c.trans = t
	c.invByWorker = make(map[string]*Control)
	t.waiting = c.broadcast(&Control{
		Kind:         MsgResume,
		Seq:          t.seq,
		CoordAddr:    c.ln.Addr(),
		CoordNow:     c.nowMillis(),
		StandbyAddr:  c.standbyAddr(),
		DetectMillis: c.cfg.DetectDelay.Milliseconds(),
	})
	if t.waiting == 0 {
		c.finish(t, fmt.Errorf("dist: resume reached no workers"))
		return
	}
	t.next = func() { c.reconcile(t, rep, began) }
	c.armTimeout(t)
}

// onReattach handles a worker inventory: either the Seq-correlated
// reply to the reattach handshake, or an unsolicited announcement from
// an orphaned worker that re-dialed the standby address.
//
// seep:replay
func (c *Coordinator) onReattach(ctl *Control) {
	if t := c.trans; t != nil && t.reattach && ctl.Seq == t.seq {
		c.invByWorker[ctl.From] = ctl
		t.waiting--
		if t.ready() {
			c.advance(t)
		}
		return
	}
	ref := c.workers[ctl.From]
	if ref != nil && ref.alive {
		// Already attached: a redial race with our own resume. The
		// worker keeps its current control link.
		return
	}
	// Adopt the orphan: dial it back, arm the detector and resume it
	// (the worker replies with a fresh inventory, which lands in the
	// branch above only during a handshake — an adoption outside one
	// terminates here because the worker is now alive).
	peer, err := c.dialWorker(ctl.From)
	if err != nil {
		return
	}
	if ref == nil {
		c.order = append(c.order, ctl.From)
	}
	c.workers[ctl.From] = &workerRef{addr: ctl.From, peer: peer, alive: true}
	c.sendTo(ctl.From, &Control{
		Kind:         MsgResume,
		Seq:          0,
		CoordAddr:    c.ln.Addr(),
		CoordNow:     c.nowMillis(),
		StandbyAddr:  c.standbyAddr(),
		DetectMillis: c.cfg.DetectDelay.Milliseconds(),
	})
}

// reconcile aligns the replayed journal with each worker's actual
// inventory:
//
//   - engines that never started are started (the journal says the job
//     is running);
//   - strays — hosted but no longer placed — are retired;
//   - planned in-doubt transitions get a refresh reroute carrying the
//     journaled routing, victims and per-victim trim watermarks, so
//     workers repartition exactly as the plan intended;
//   - missing instances — placed in the journal but hosted nowhere —
//     roll back through the normal recovery path (FIFO per-worker
//     control queues guarantee the refresh lands first);
//   - workers that could not be re-dialed hand their instances to the
//     same recovery path a heartbeat death would.
//
// seep:replay
func (c *Coordinator) reconcile(t *transition, rep *controlplane.Replayed, began time.Time) {
	hosted := make(map[plan.InstanceID]string)
	for addr, inv := range c.invByWorker {
		for _, inst := range inv.Hosted {
			hosted[inst] = addr
		}
		if !c.startAt.IsZero() && !inv.Running {
			c.sendTo(addr, &Control{Kind: MsgStart, Seq: 0, CoordNow: c.nowMillis()})
		}
	}
	for inst, addr := range hosted {
		if c.placement[inst] != addr {
			c.sendTo(addr, &Control{Kind: MsgRetire, Seq: 0, Victim: inst})
		}
	}
	for _, d := range rep.InDoubt {
		if !d.Planned || len(d.Victims) == 0 {
			// Unplanned intent: the graph never changed. Retired victims
			// (if the retire landed) surface as missing below and recover
			// individually; a crash before the retire rolls back to a
			// no-op.
			continue
		}
		op := d.Victims[0].Op
		r := c.mgr.Routing(op)
		if r == nil {
			continue
		}
		var newPl []Placement
		for _, inst := range c.mgr.Instances(op) {
			if a := c.placement[inst]; a != "" {
				newPl = append(newPl, Placement{Inst: inst, Addr: a})
			}
		}
		trims := make([]TrimAck, len(d.Trims))
		for i, tr := range d.Trims {
			trims[i] = TrimAck{Up: tr.Up, Owner: tr.Owner, TS: tr.TS}
		}
		c.broadcast(&Control{
			Kind:     MsgReroute,
			Seq:      0,
			Op:       op,
			Routing:  encodeRouting(r),
			New:      newPl,
			Victims:  d.Victims,
			TrimAcks: trims,
		})
	}
	var missing []plan.InstanceID
	for inst, addr := range c.placement {
		inv := c.invByWorker[addr]
		if inv == nil {
			continue // worker down: gatherLost owns its instances
		}
		if hosted[inst] == addr {
			continue
		}
		spec := c.q.Op(inst.Op)
		if spec == nil {
			continue
		}
		if spec.Role == plan.RoleSource || spec.Role == plan.RoleSink {
			c.pushErr("dist: worker %s lost assumed-reliable %s across failover", addr, inst)
			delete(c.placement, inst)
			continue
		}
		missing = append(missing, inst)
	}
	sortInstances(missing)
	startedAt := c.nowMillis()
	for _, v := range missing {
		victim := v
		c.enqueueOp(func() { c.beginRecover(victim, startedAt) })
	}
	for _, addr := range c.order {
		if ref := c.workers[addr]; ref != nil && ref.peer == nil {
			c.gatherLost(addr)
		}
	}
	// Fresh barriers refresh the reloaded store with each survivor's
	// current state (fire-and-forget; the periodic loop covers misses).
	for inst, addr := range hosted {
		spec := c.q.Op(inst.Op)
		if spec == nil || spec.Role == plan.RoleSource || spec.Role == plan.RoleSink {
			continue
		}
		if ref := c.workers[addr]; ref != nil && ref.alive {
			_ = ref.peer.SendBarrier(inst)
		}
	}
	c.mu.Lock()
	c.reattached = len(c.invByWorker)
	c.failoverMillis = time.Since(began).Milliseconds()
	c.mu.Unlock()
	c.finish(t, nil)
}

func sortInstances(insts []plan.InstanceID) {
	sort.Slice(insts, func(i, j int) bool {
		if insts[i].Op != insts[j].Op {
			return insts[i].Op < insts[j].Op
		}
		return insts[i].Part < insts[j].Part
	})
}
