// Package operator defines the operator model of §2.2 — deterministic
// functions over input streams with optional externally-managed state —
// and a library of reusable operators (map, filter, flat-map, windowed
// aggregation, top-k reduction, windowed hash join).
//
// Stateful operators keep their state in system-managed typed cells
// (state.Value, state.Map) registered against a state.Store created at
// construction and exposed through the Managed interface. The store owns
// locking, serialisation, snapshot, restore and dirty-key tracking, so
// the hosting node can checkpoint, back up, partition and merge operator
// state — fully or incrementally — without the operator's involvement
// (the get/set-processing-state functions of §3.1, implemented once).
// The hosting node composes the key/value pairs with the timestamp
// vector it tracks into a state.Processing checkpoint, so operators
// never deal with timestamps, buffering, routing or replay.
package operator

import (
	"seep/internal/state"
	"seep/internal/stream"
)

// Context carries per-invocation information into an operator.
type Context struct {
	// Now is the current time in milliseconds since the run started.
	// Under the simulator this is virtual time; in the live engine it is
	// wall-clock time. Operators use it only for windowing.
	Now int64
	// Input is the index of the input stream the tuple arrived on
	// (matches the position in plan.Query.Upstream order).
	Input int
}

// Emitter is the operator's output: emitting a key and payload creates an
// output tuple. The hosting node stamps the tuple with the operator's
// output logical clock and routes it by key.
type Emitter func(key stream.Key, payload any)

// Operator is a deterministic stream operator. Implementations must not
// have externally visible side effects other than emitted tuples and, for
// Managed implementations, their managed state (§2.2).
type Operator interface {
	// OnTuple processes one input tuple, emitting zero or more outputs.
	OnTuple(ctx Context, t stream.Tuple, emit Emitter)
}

// Managed is implemented by operators whose state lives in a
// system-managed state.Store: the operator declares typed keyed cells at
// construction and mutates state only through them, and the hosting node
// drives checkpoint, backup, restore, partition, merge and incremental
// deltas through the store. This replaces the hand-rolled
// SnapshotKV/RestoreKV contract.
type Managed interface {
	Operator
	// State returns the operator's managed state store. The store is
	// created by the operator's constructor and must be non-nil.
	State() *state.Store
}

// Stateful is the pre-managed-state contract: operators hand-implement
// snapshot and restore over key/value pairs, including their own locking
// and codecs. Runtimes still deploy Stateful operators unchanged (the
// compatibility path in SnapshotState/RestoreState), but they never
// benefit from incremental checkpoints, because the system cannot
// observe which keys changed.
//
// Deprecated: implement Managed instead — declare state cells with
// state.NewValue/state.NewMap and let the store own locking and
// serialisation.
type Stateful interface {
	Operator
	// SnapshotKV returns a consistent deep copy of the processing state.
	// The operator must lock internal structures while copying (§3.1).
	SnapshotKV() map[stream.Key][]byte
	// RestoreKV replaces the operator's state with the given key/value
	// pairs (set-processing-state). Called before any tuple is processed
	// on a restored or repartitioned instance.
	RestoreKV(map[stream.Key][]byte)
}

// StoreOf returns op's managed state store, or nil when op is stateless
// or uses the deprecated Stateful contract.
func StoreOf(op Operator) *state.Store {
	if m, ok := op.(Managed); ok {
		return m.State()
	}
	return nil
}

// SnapshotState captures op's processing state under either contract —
// the thin adapter that lets pre-managed-state operators keep deploying.
// Stateless operators yield an empty non-nil map; a managed store's
// encode failure is returned so callers can skip the checkpoint rather
// than back up partial state.
func SnapshotState(op Operator) (map[stream.Key][]byte, error) {
	if s := StoreOf(op); s != nil {
		return s.TakeCheckpoint()
	}
	if st, ok := op.(Stateful); ok {
		return st.SnapshotKV(), nil
	}
	return map[stream.Key][]byte{}, nil
}

// RestoreState installs processing state under either contract.
func RestoreState(op Operator, kv map[stream.Key][]byte) error {
	if s := StoreOf(op); s != nil {
		return s.Restore(kv)
	}
	if st, ok := op.(Stateful); ok {
		st.RestoreKV(kv)
	}
	return nil
}

// TimeDriven is implemented by operators that act on the passage of time,
// e.g. tumbling-window flushes. The hosting node invokes OnTime
// periodically with the current time in milliseconds.
type TimeDriven interface {
	OnTime(now int64, emit Emitter)
}

// Factory creates a fresh operator instance. Each partitioned instance of
// a logical operator gets its own Operator value, so implementations need
// no internal synchronisation across partitions.
type Factory func() Operator

// Func adapts a plain function to the Operator interface for stateless
// transformations.
type Func func(ctx Context, t stream.Tuple, emit Emitter)

// OnTuple implements Operator.
func (f Func) OnTuple(ctx Context, t stream.Tuple, emit Emitter) { f(ctx, t, emit) }

// Map returns a stateless operator applying f to every tuple. If f
// reports false the tuple is dropped, so Map doubles as a filter-map.
func Map(f func(t stream.Tuple) (stream.Key, any, bool)) Operator {
	return Func(func(_ Context, t stream.Tuple, emit Emitter) {
		if k, p, ok := f(t); ok {
			emit(k, p)
		}
	})
}

// Filter returns a stateless operator forwarding tuples that satisfy
// pred, preserving key and payload.
func Filter(pred func(t stream.Tuple) bool) Operator {
	return Func(func(_ Context, t stream.Tuple, emit Emitter) {
		if pred(t) {
			emit(t.Key, t.Payload)
		}
	})
}

// Passthrough forwards every tuple unchanged. Useful as a sink collector
// or a forwarding hop.
func Passthrough() Operator {
	return Func(func(_ Context, t stream.Tuple, emit Emitter) {
		emit(t.Key, t.Payload)
	})
}
