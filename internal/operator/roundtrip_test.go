package operator

import (
	"fmt"
	"testing"
	"testing/quick"

	"seep/internal/stream"
)

// roundTrip snapshots src's managed state and restores it into dst,
// reporting success — the get/set-processing-state cycle every recovery
// rests on.
func roundTrip(src, dst Managed) bool {
	kv, err := src.State().Snapshot()
	if err != nil {
		return false
	}
	return dst.State().Restore(kv) == nil
}

// TestWordCounterSnapshotRoundTripQuick: for any random word multiset,
// snapshot → restore reproduces exactly the same counts — the property
// checkpoint/restore correctness rests on.
func TestWordCounterSnapshotRoundTripQuick(t *testing.T) {
	f := func(wordIdx []uint8) bool {
		w := NewWordCounter(0)
		want := make(map[string]int64)
		for _, i := range wordIdx {
			word := fmt.Sprintf("w%d", i%32)
			want[word]++
			w.OnTuple(Context{}, stream.Tuple{Key: stream.KeyOfString(word), Payload: word}, func(stream.Key, any) {})
		}
		restored := NewWordCounter(0)
		if !roundTrip(w, restored) {
			return false
		}
		for word, n := range want {
			if restored.Count(word) != n {
				return false
			}
		}
		return restored.Distinct() == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTopKReducerSnapshotRoundTripQuick: rankings survive restore.
func TestTopKReducerSnapshotRoundTripQuick(t *testing.T) {
	f := func(itemIdx []uint8) bool {
		r := NewTopKReducer(5, 1000)
		for _, i := range itemIdx {
			item := fmt.Sprintf("lang%d", i%16)
			r.OnTuple(Context{}, stream.Tuple{Key: stream.KeyOfString(item), Payload: item}, func(stream.Key, any) {})
		}
		restored := NewTopKReducer(5, 1000)
		if !roundTrip(r, restored) {
			return false
		}
		a, b := r.TopK(), restored.TopK()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestKeyedSumSnapshotRoundTripQuick: sums survive restore bit-exactly.
func TestKeyedSumSnapshotRoundTripQuick(t *testing.T) {
	extract := func(p any) (float64, bool) {
		v, ok := p.(float64)
		return v, ok
	}
	f := func(keys []uint8, vals []float64) bool {
		s := NewKeyedSum(0, extract)
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			s.OnTuple(Context{}, stream.Tuple{Key: stream.Key(keys[i]), Payload: vals[i]}, func(stream.Key, any) {})
		}
		restored := NewKeyedSum(0, extract)
		if !roundTrip(s, restored) {
			return false
		}
		for k := 0; k < 256; k++ {
			if s.Sum(stream.Key(k)) != restored.Sum(stream.Key(k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
