package operator

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"seep/internal/state"
	"seep/internal/stream"
	"seep/internal/wirecodec"
)

// roundTrip snapshots src's managed state and restores it into dst,
// reporting success — the get/set-processing-state cycle every recovery
// rests on.
func roundTrip(src, dst Managed) bool {
	kv, err := src.State().Snapshot()
	if err != nil {
		return false
	}
	return dst.State().Restore(kv) == nil
}

// TestWordCounterSnapshotRoundTripQuick: for any random word multiset,
// snapshot → restore reproduces exactly the same counts — the property
// checkpoint/restore correctness rests on.
func TestWordCounterSnapshotRoundTripQuick(t *testing.T) {
	f := func(wordIdx []uint8) bool {
		w := NewWordCounter(0)
		want := make(map[string]int64)
		for _, i := range wordIdx {
			word := fmt.Sprintf("w%d", i%32)
			want[word]++
			w.OnTuple(Context{}, stream.Tuple{Key: stream.KeyOfString(word), Payload: word}, func(stream.Key, any) {})
		}
		restored := NewWordCounter(0)
		if !roundTrip(w, restored) {
			return false
		}
		for word, n := range want {
			if restored.Count(word) != n {
				return false
			}
		}
		return restored.Distinct() == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTopKReducerSnapshotRoundTripQuick: rankings survive restore.
func TestTopKReducerSnapshotRoundTripQuick(t *testing.T) {
	f := func(itemIdx []uint8) bool {
		r := NewTopKReducer(5, 1000)
		for _, i := range itemIdx {
			item := fmt.Sprintf("lang%d", i%16)
			r.OnTuple(Context{}, stream.Tuple{Key: stream.KeyOfString(item), Payload: item}, func(stream.Key, any) {})
		}
		restored := NewTopKReducer(5, 1000)
		if !roundTrip(r, restored) {
			return false
		}
		a, b := r.TopK(), restored.TopK()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// mapPayload exercises the map-order hazard directly: a payload type
// whose codec must impose its own ordering, because map iteration is
// randomized. Registered once here with a sorted-key codec.
type mapPayload map[string]int64

func init() {
	if _, err := wirecodec.RegisterCodec(mapPayload{},
		func(e *stream.Encoder, v any) error {
			m := v.(mapPayload)
			keys := make([]string, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			e.Uvarint(uint64(len(keys)))
			for _, k := range keys {
				e.StringV(k)
				e.Varint(m[k])
			}
			return nil
		},
		func(d *stream.Decoder) (any, error) {
			n := int(d.Uvarint())
			if err := d.Err(); err != nil {
				return nil, err
			}
			m := make(mapPayload, n)
			for i := 0; i < n; i++ {
				m[d.StringV()] = d.Varint()
			}
			return m, d.Err()
		}); err != nil {
		panic(err)
	}
}

// TestBinaryCodecDeterministicEncoding: under the binary wire codec,
// re-encoding the same payload value is byte-identical for EVERY
// registered payload type — the property gob does not provide for maps
// (topk.go works around gob's randomized map walk) and the reason the
// binary framing can be compared, cached and diffed byte-wise.
func TestBinaryCodecDeterministicEncoding(t *testing.T) {
	payloads := map[string]any{
		"WordCount":  WordCount{Word: "determinism", Count: 42},
		"RankEntry":  RankEntry{Item: "go", Count: 7},
		"Ranking":    Ranking{{Item: "go", Count: 7}, {Item: "java", Count: 3}},
		"JoinedPair": JoinedPair{Left: WordCount{Word: "l", Count: 1}, Right: RankEntry{Item: "r", Count: 2}},
		"mapPayload": mapPayload{"zeta": 26, "alpha": 1, "mu": 13, "kappa": 11, "omega": 24},
		"string":     "plain string payload",
		"int64":      int64(-99),
	}
	fallback := state.GobPayloadCodec{}
	for name, p := range payloads {
		var first []byte
		for i := 0; i < 50; i++ {
			e := stream.NewEncoder(128)
			if err := wirecodec.EncodePayload(e, p, fallback); err != nil {
				t.Fatalf("%s: encode: %v", name, err)
			}
			if first == nil {
				first = append([]byte(nil), e.Bytes()...)
				continue
			}
			if !bytes.Equal(first, e.Bytes()) {
				t.Fatalf("%s: encode %d differs from first encode — codec leaks map iteration order", name, i)
			}
		}
		// And the deterministic bytes still round-trip.
		got, err := wirecodec.DecodePayload(stream.NewDecoder(first), fallback)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		switch want := p.(type) {
		case mapPayload:
			gm, ok := got.(mapPayload)
			if !ok || len(gm) != len(want) {
				t.Fatalf("%s: roundtrip got %#v", name, got)
			}
			for k, v := range want {
				if gm[k] != v {
					t.Fatalf("%s: roundtrip [%s]=%d want %d", name, k, gm[k], v)
				}
			}
		case Ranking:
			gr, ok := got.(Ranking)
			if !ok || len(gr) != len(want) {
				t.Fatalf("%s: roundtrip got %#v", name, got)
			}
			for i := range want {
				if gr[i] != want[i] {
					t.Fatalf("%s: roundtrip [%d]=%v want %v", name, i, gr[i], want[i])
				}
			}
		default:
			if got != p {
				t.Fatalf("%s: roundtrip got %#v want %#v", name, got, p)
			}
		}
	}
}

// TestKeyedSumSnapshotRoundTripQuick: sums survive restore bit-exactly.
func TestKeyedSumSnapshotRoundTripQuick(t *testing.T) {
	extract := func(p any) (float64, bool) {
		v, ok := p.(float64)
		return v, ok
	}
	f := func(keys []uint8, vals []float64) bool {
		s := NewKeyedSum(0, extract)
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			s.OnTuple(Context{}, stream.Tuple{Key: stream.Key(keys[i]), Payload: vals[i]}, func(stream.Key, any) {})
		}
		restored := NewKeyedSum(0, extract)
		if !roundTrip(s, restored) {
			return false
		}
		for k := 0; k < 256; k++ {
			if s.Sum(stream.Key(k)) != restored.Sum(stream.Key(k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
