package operator

import (
	"sort"
	"sync"

	"seep/internal/stream"
)

// RankEntry is one row of a top-k ranking.
type RankEntry struct {
	Item  string
	Count int64
}

// Ranking is the payload emitted by TopKReducer and TopKMerger: the top-k
// items by count, descending.
type Ranking []RankEntry

// TopKReducer is the stateful reduce operator of the map/reduce-style
// top-k query (§6.1, open loop workload): it maintains a dictionary of
// item frequencies and periodically emits its local top-k ranking. When
// the reducer is partitioned, each partition emits a partial ranking and
// a downstream TopKMerger combines them.
type TopKReducer struct {
	// K is the ranking depth.
	K int
	// EmitEveryMillis is the ranking emission period (e.g. 30 s in the
	// paper's Wikipedia query).
	EmitEveryMillis int64

	mu       sync.Mutex
	counts   map[stream.Key]map[string]int64
	lastEmit int64
}

// NewTopKReducer returns a reducer emitting the top k items every period.
func NewTopKReducer(k int, emitEveryMillis int64) *TopKReducer {
	return &TopKReducer{K: k, EmitEveryMillis: emitEveryMillis, counts: make(map[stream.Key]map[string]int64)}
}

// OnTuple implements Operator: payload is the item (a string).
func (r *TopKReducer) OnTuple(_ Context, t stream.Tuple, emit Emitter) {
	item, ok := t.Payload.(string)
	if !ok {
		return
	}
	r.mu.Lock()
	m := r.counts[t.Key]
	if m == nil {
		m = make(map[string]int64)
		r.counts[t.Key] = m
	}
	m[item]++
	r.mu.Unlock()
}

// OnTime implements TimeDriven: every EmitEveryMillis, emit the local
// top-k ranking (without resetting counters; the query ranks cumulative
// visit counts).
func (r *TopKReducer) OnTime(now int64, emit Emitter) {
	r.mu.Lock()
	if r.lastEmit == 0 {
		r.lastEmit = now
	}
	if now-r.lastEmit < r.EmitEveryMillis {
		r.mu.Unlock()
		return
	}
	r.lastEmit = now
	ranking := r.lockedTopK()
	r.mu.Unlock()
	if len(ranking) > 0 {
		// A single well-known key so all partial rankings meet at one
		// merger partition.
		emit(stream.KeyOfString("topk-ranking"), ranking)
	}
}

func (r *TopKReducer) lockedTopK() Ranking {
	var all []RankEntry
	for _, m := range r.counts {
		for item, n := range m {
			all = append(all, RankEntry{Item: item, Count: n})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Item < all[j].Item
	})
	if len(all) > r.K {
		all = all[:r.K]
	}
	return Ranking(all)
}

// TopK returns the current local ranking (for tests).
func (r *TopKReducer) TopK() Ranking {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lockedTopK()
}

// SnapshotKV implements Stateful.
func (r *TopKReducer) SnapshotKV() map[stream.Key][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[stream.Key][]byte, len(r.counts))
	for k, m := range r.counts {
		items := make([]string, 0, len(m))
		for item := range m {
			items = append(items, item)
		}
		sort.Strings(items)
		e := stream.NewEncoder(16 * len(items))
		e.Uint32(uint32(len(items)))
		for _, item := range items {
			e.String32(item)
			e.Int64(m[item])
		}
		out[k] = e.Bytes()
	}
	return out
}

// RestoreKV implements Stateful.
func (r *TopKReducer) RestoreKV(kv map[stream.Key][]byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counts = make(map[stream.Key]map[string]int64, len(kv))
	for k, v := range kv {
		d := stream.NewDecoder(v)
		n := int(d.Uint32())
		m := make(map[string]int64, n)
		for i := 0; i < n; i++ {
			item := d.String32()
			cnt := d.Int64()
			if d.Err() != nil {
				break
			}
			m[item] = cnt
		}
		r.counts[k] = m
	}
}

// TopKMerger aggregates partial rankings from partitioned reducers into a
// final ranking — "we use the sink to aggregate the partial results and
// output the final answer" (§6.1). It keeps the latest partial per
// upstream item set and emits the merged top-k on every update.
type TopKMerger struct {
	K  int
	mu sync.Mutex
	// latest merges item counts from the most recent partials; partial
	// rankings carry cumulative counts, so taking the max per item is
	// the correct merge.
	latest map[string]int64
}

// NewTopKMerger returns a merger of partial rankings.
func NewTopKMerger(k int) *TopKMerger {
	return &TopKMerger{K: k, latest: make(map[string]int64)}
}

// OnTuple implements Operator: payload is a Ranking.
func (m *TopKMerger) OnTuple(_ Context, t stream.Tuple, emit Emitter) {
	partial, ok := t.Payload.(Ranking)
	if !ok {
		return
	}
	m.mu.Lock()
	for _, e := range partial {
		if e.Count > m.latest[e.Item] {
			m.latest[e.Item] = e.Count
		}
	}
	merged := make([]RankEntry, 0, len(m.latest))
	for item, n := range m.latest {
		merged = append(merged, RankEntry{Item: item, Count: n})
	}
	m.mu.Unlock()
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Count != merged[j].Count {
			return merged[i].Count > merged[j].Count
		}
		return merged[i].Item < merged[j].Item
	})
	if len(merged) > m.K {
		merged = merged[:m.K]
	}
	emit(t.Key, Ranking(merged))
}

// SnapshotKV implements Stateful: the merger's state all lives under the
// single ranking key.
func (m *TopKMerger) SnapshotKV() map[stream.Key][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	items := make([]string, 0, len(m.latest))
	for item := range m.latest {
		items = append(items, item)
	}
	sort.Strings(items)
	e := stream.NewEncoder(16 * len(items))
	e.Uint32(uint32(len(items)))
	for _, item := range items {
		e.String32(item)
		e.Int64(m.latest[item])
	}
	return map[stream.Key][]byte{stream.KeyOfString("topk-ranking"): e.Bytes()}
}

// RestoreKV implements Stateful.
func (m *TopKMerger) RestoreKV(kv map[stream.Key][]byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.latest = make(map[string]int64)
	for _, v := range kv {
		d := stream.NewDecoder(v)
		n := int(d.Uint32())
		for i := 0; i < n; i++ {
			item := d.String32()
			cnt := d.Int64()
			if d.Err() != nil {
				break
			}
			if cnt > m.latest[item] {
				m.latest[item] = cnt
			}
		}
	}
}
