package operator

import (
	"sort"

	"seep/internal/state"
	"seep/internal/stream"
)

// RankEntry is one row of a top-k ranking.
type RankEntry struct {
	Item  string
	Count int64
}

// Ranking is the payload emitted by TopKReducer and TopKMerger: the top-k
// items by count, descending.
type Ranking []RankEntry

// TopKReducer is the stateful reduce operator of the map/reduce-style
// top-k query (§6.1, open loop workload): it maintains a managed
// dictionary of item frequencies and periodically emits its local top-k
// ranking. When the reducer is partitioned, each partition emits a
// partial ranking and a downstream TopKMerger combines them.
type TopKReducer struct {
	// K is the ranking depth.
	K int
	// EmitEveryMillis is the ranking emission period (e.g. 30 s in the
	// paper's Wikipedia query).
	EmitEveryMillis int64

	store  *state.Store
	counts *state.Map[int64]
	// lastEmit is when the previous ranking was emitted; lastEmitSet
	// distinguishes "first tick at time 0" from "never emitted".
	lastEmit    int64
	lastEmitSet bool
}

// NewTopKReducer returns a reducer emitting the top k items every period.
func NewTopKReducer(k int, emitEveryMillis int64) *TopKReducer {
	st := state.NewStore()
	return &TopKReducer{
		K:               k,
		EmitEveryMillis: emitEveryMillis,
		store:           st,
		counts:          state.NewMap[int64](st, "counts", state.Int64Codec{}),
	}
}

// State implements Managed.
func (r *TopKReducer) State() *state.Store { return r.store }

// OnTuple implements Operator: payload is the item (a string).
func (r *TopKReducer) OnTuple(_ Context, t stream.Tuple, emit Emitter) {
	item, ok := t.Payload.(string)
	if !ok {
		return
	}
	r.counts.Update(t.Key, item, func(c int64) int64 { return c + 1 })
}

// OnTime implements TimeDriven: every EmitEveryMillis, emit the local
// top-k ranking (without resetting counters; the query ranks cumulative
// visit counts).
func (r *TopKReducer) OnTime(now int64, emit Emitter) {
	if !r.lastEmitSet {
		r.lastEmit = now
		r.lastEmitSet = true
	}
	if now-r.lastEmit < r.EmitEveryMillis {
		return
	}
	r.lastEmit = now
	ranking := r.TopK()
	if len(ranking) > 0 {
		// A single well-known key so all partial rankings meet at one
		// merger partition.
		emit(stream.KeyOfString("topk-ranking"), ranking)
	}
}

// TopK returns the current local ranking.
func (r *TopKReducer) TopK() Ranking {
	var all []RankEntry
	r.counts.ForEach(func(_ stream.Key, item string, n int64) {
		all = append(all, RankEntry{Item: item, Count: n})
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Item < all[j].Item
	})
	if len(all) > r.K {
		all = all[:r.K]
	}
	return Ranking(all)
}

// TopKMerger aggregates partial rankings from partitioned reducers into a
// final ranking — "we use the sink to aggregate the partial results and
// output the final answer" (§6.1). It keeps the latest partial per
// upstream item set and emits the merged top-k on every update. All of
// its state lives under the single well-known ranking key, folded into
// one managed cell so each merge is atomic.
type TopKMerger struct {
	K int

	store *state.Store
	// latest merges item counts from the most recent partials; partial
	// rankings carry cumulative counts, so taking the max per item is
	// the correct merge.
	latest *state.Value[map[string]int64]
}

// NewTopKMerger returns a merger of partial rankings.
func NewTopKMerger(k int) *TopKMerger {
	st := state.NewStore()
	return &TopKMerger{
		K:     k,
		store: st,
		// JSON keeps map encoding deterministic (sorted keys), which gob
		// does not guarantee.
		latest: state.NewValue[map[string]int64](st, "latest", state.JSONCodec[map[string]int64]{}),
	}
}

// State implements Managed.
func (m *TopKMerger) State() *state.Store { return m.store }

// OnTuple implements Operator: payload is a Ranking.
func (m *TopKMerger) OnTuple(_ Context, t stream.Tuple, emit Emitter) {
	partial, ok := t.Payload.(Ranking)
	if !ok {
		return
	}
	latest := m.latest.Update(t.Key, func(cur map[string]int64) map[string]int64 {
		if cur == nil {
			cur = make(map[string]int64)
		}
		for _, e := range partial {
			if e.Count > cur[e.Item] {
				cur[e.Item] = e.Count
			}
		}
		return cur
	})
	merged := make([]RankEntry, 0, len(latest))
	for item, n := range latest {
		merged = append(merged, RankEntry{Item: item, Count: n})
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Count != merged[j].Count {
			return merged[i].Count > merged[j].Count
		}
		return merged[i].Item < merged[j].Item
	})
	if len(merged) > m.K {
		merged = merged[:m.K]
	}
	emit(t.Key, Ranking(merged))
}
