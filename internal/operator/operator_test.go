package operator

import (
	"reflect"
	"testing"

	"seep/internal/stream"
)

// collect gathers emissions for assertions.
type collected struct {
	keys     []stream.Key
	payloads []any
}

func (c *collected) emitter() Emitter {
	return func(k stream.Key, p any) {
		c.keys = append(c.keys, k)
		c.payloads = append(c.payloads, p)
	}
}

func TestMapAndFilter(t *testing.T) {
	double := Map(func(t stream.Tuple) (stream.Key, any, bool) {
		v := t.Payload.(int)
		if v < 0 {
			return 0, nil, false
		}
		return t.Key, v * 2, true
	})
	var c collected
	double.OnTuple(Context{}, stream.Tuple{Key: 1, Payload: 21}, c.emitter())
	double.OnTuple(Context{}, stream.Tuple{Key: 2, Payload: -1}, c.emitter())
	if len(c.payloads) != 1 || c.payloads[0] != 42 {
		t.Errorf("map emitted %v", c.payloads)
	}

	even := Filter(func(t stream.Tuple) bool { return t.Payload.(int)%2 == 0 })
	c = collected{}
	even.OnTuple(Context{}, stream.Tuple{Key: 3, Payload: 4}, c.emitter())
	even.OnTuple(Context{}, stream.Tuple{Key: 4, Payload: 5}, c.emitter())
	if len(c.payloads) != 1 || c.payloads[0] != 4 || c.keys[0] != 3 {
		t.Errorf("filter emitted %v %v", c.keys, c.payloads)
	}
}

func TestPassthrough(t *testing.T) {
	var c collected
	Passthrough().OnTuple(Context{}, stream.Tuple{Key: 9, Payload: "x"}, c.emitter())
	if len(c.payloads) != 1 || c.payloads[0] != "x" || c.keys[0] != 9 {
		t.Errorf("passthrough emitted %v %v", c.keys, c.payloads)
	}
}

func TestWordSplitter(t *testing.T) {
	var c collected
	WordSplitter().OnTuple(Context{}, stream.Tuple{Payload: "  first set \n second"}, c.emitter())
	want := []any{"first", "set", "second"}
	if !reflect.DeepEqual(c.payloads, want) {
		t.Errorf("split = %v, want %v", c.payloads, want)
	}
	for i, p := range c.payloads {
		if c.keys[i] != stream.KeyOfString(p.(string)) {
			t.Errorf("word %q keyed %d", p, c.keys[i])
		}
	}
	// Non-string payloads are ignored.
	c = collected{}
	WordSplitter().OnTuple(Context{}, stream.Tuple{Payload: 42}, c.emitter())
	if len(c.payloads) != 0 {
		t.Error("non-string payload should emit nothing")
	}
}

func wcTuple(word string) stream.Tuple {
	return stream.Tuple{Key: stream.KeyOfString(word), Payload: word}
}

func TestWordCounterContinuous(t *testing.T) {
	w := NewWordCounter(0)
	var c collected
	for _, word := range []string{"set", "second", "set"} {
		w.OnTuple(Context{}, wcTuple(word), c.emitter())
	}
	if got := w.Count("set"); got != 2 {
		t.Errorf("Count(set) = %d", got)
	}
	if got := w.Count("absent"); got != 0 {
		t.Errorf("Count(absent) = %d", got)
	}
	if w.Distinct() != 2 {
		t.Errorf("Distinct = %d", w.Distinct())
	}
	last := c.payloads[len(c.payloads)-1].(WordCount)
	if last.Word != "set" || last.Count != 2 {
		t.Errorf("last emission = %+v", last)
	}
}

func TestWordCounterWindowed(t *testing.T) {
	w := NewWordCounter(30_000)
	var c collected
	em := c.emitter()
	w.OnTuple(Context{Now: 0}, wcTuple("a"), em)
	w.OnTuple(Context{Now: 10}, wcTuple("a"), em)
	w.OnTuple(Context{Now: 20}, wcTuple("b"), em)
	if len(c.payloads) != 0 {
		t.Fatal("windowed counter should not emit per tuple")
	}
	w.OnTime(1_000, em) // window start pinned at 1000
	if len(c.payloads) != 0 {
		t.Fatal("window should not close yet")
	}
	w.OnTime(31_000, em)
	if len(c.payloads) != 2 {
		t.Fatalf("window close emitted %d, want 2", len(c.payloads))
	}
	// After flush, state resets.
	if w.Distinct() != 0 {
		t.Errorf("Distinct after flush = %d", w.Distinct())
	}
	// Counts were correct.
	total := int64(0)
	for _, p := range c.payloads {
		total += p.(WordCount).Count
	}
	if total != 3 {
		t.Errorf("flushed total = %d, want 3", total)
	}
}

func TestWordCounterSnapshotRestore(t *testing.T) {
	w := NewWordCounter(0)
	var c collected
	for _, word := range []string{"x", "y", "x", "z", "x"} {
		w.OnTuple(Context{}, wcTuple(word), c.emitter())
	}
	kv, err := w.State().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot is a deep copy: further updates don't leak in.
	w.OnTuple(Context{}, wcTuple("x"), c.emitter())

	w2 := NewWordCounter(0)
	if err := w2.State().Restore(kv); err != nil {
		t.Fatal(err)
	}
	if got := w2.Count("x"); got != 3 {
		t.Errorf("restored Count(x) = %d, want 3", got)
	}
	if got := w2.Count("z"); got != 1 {
		t.Errorf("restored Count(z) = %d, want 1", got)
	}
	if w2.Distinct() != 3 {
		t.Errorf("restored Distinct = %d", w2.Distinct())
	}
}

func TestWordCounterEmitOnUpdate(t *testing.T) {
	w := NewWordCounter(30_000)
	w.EmitOnUpdate = true
	var c collected
	w.OnTuple(Context{Now: 1}, wcTuple("hello"), c.emitter())
	if len(c.payloads) != 1 {
		t.Error("EmitOnUpdate should emit per tuple")
	}
}

func TestKeyedSum(t *testing.T) {
	s := NewKeyedSum(0, func(p any) (float64, bool) {
		v, ok := p.(float64)
		return v, ok
	})
	var c collected
	s.OnTuple(Context{}, stream.Tuple{Key: 1, Payload: 2.5}, c.emitter())
	s.OnTuple(Context{}, stream.Tuple{Key: 1, Payload: 1.5}, c.emitter())
	s.OnTuple(Context{}, stream.Tuple{Key: 2, Payload: 10.0}, c.emitter())
	s.OnTuple(Context{}, stream.Tuple{Key: 2, Payload: "bad"}, c.emitter())
	if got := s.Sum(1); got != 4.0 {
		t.Errorf("Sum(1) = %v", got)
	}
	if got := s.Sum(2); got != 10.0 {
		t.Errorf("Sum(2) = %v", got)
	}
	if len(c.payloads) != 3 {
		t.Errorf("emitted %d", len(c.payloads))
	}

	kv, err := s.State().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewKeyedSum(0, nil)
	if err := s2.State().Restore(kv); err != nil {
		t.Fatal(err)
	}
	if s2.Sum(1) != 4.0 || s2.Sum(2) != 10.0 {
		t.Error("snapshot/restore lost sums")
	}
}

func TestKeyedSumWindowed(t *testing.T) {
	s := NewKeyedSum(1_000, func(p any) (float64, bool) {
		v, ok := p.(float64)
		return v, ok
	})
	var c collected
	em := c.emitter()
	s.OnTuple(Context{Now: 10}, stream.Tuple{Key: 1, Payload: 1.0}, em)
	s.OnTime(100, em)
	if len(c.payloads) != 0 {
		t.Fatal("early flush")
	}
	s.OnTime(1_200, em)
	if len(c.payloads) != 1 {
		t.Fatalf("flush emitted %d", len(c.payloads))
	}
	if got := c.payloads[0].(KeyedSumResult); got.Sum != 1.0 {
		t.Errorf("flushed %v", got)
	}
	if s.Sum(1) != 0 {
		t.Error("window did not reset")
	}
}

func TestTopKReducer(t *testing.T) {
	r := NewTopKReducer(2, 30_000)
	var c collected
	em := c.emitter()
	feed := map[string]int{"en": 5, "de": 3, "fr": 1}
	for item, n := range feed {
		for i := 0; i < n; i++ {
			r.OnTuple(Context{}, stream.Tuple{Key: stream.KeyOfString(item), Payload: item}, em)
		}
	}
	top := r.TopK()
	if len(top) != 2 || top[0].Item != "en" || top[0].Count != 5 || top[1].Item != "de" {
		t.Errorf("TopK = %v", top)
	}

	// Periodic emission.
	r.OnTime(1, em)
	if len(c.payloads) != 0 {
		t.Fatal("should not emit before period")
	}
	r.OnTime(40_000, em)
	if len(c.payloads) != 1 {
		t.Fatalf("emitted %d rankings", len(c.payloads))
	}
	ranking := c.payloads[0].(Ranking)
	if ranking[0].Item != "en" {
		t.Errorf("ranking = %v", ranking)
	}

	// Snapshot / restore.
	kv, err := r.State().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewTopKReducer(2, 30_000)
	if err := r2.State().Restore(kv); err != nil {
		t.Fatal(err)
	}
	if got := r2.TopK(); !reflect.DeepEqual(got, top) {
		t.Errorf("restored TopK = %v, want %v", got, top)
	}
}

func TestTopKMerger(t *testing.T) {
	m := NewTopKMerger(2)
	var c collected
	em := c.emitter()
	k := stream.KeyOfString("topk-ranking")
	m.OnTuple(Context{}, stream.Tuple{Key: k, Payload: Ranking{{"en", 10}, {"de", 5}}}, em)
	m.OnTuple(Context{}, stream.Tuple{Key: k, Payload: Ranking{{"fr", 7}, {"en", 12}}}, em)
	if len(c.payloads) != 2 {
		t.Fatalf("merger emitted %d", len(c.payloads))
	}
	final := c.payloads[1].(Ranking)
	if final[0].Item != "en" || final[0].Count != 12 || final[1].Item != "fr" {
		t.Errorf("merged ranking = %v", final)
	}

	kv, err := m.State().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewTopKMerger(2)
	if err := m2.State().Restore(kv); err != nil {
		t.Fatal(err)
	}
	c = collected{}
	m2.OnTuple(Context{}, stream.Tuple{Key: k, Payload: Ranking{}}, c.emitter())
	got := c.payloads[0].(Ranking)
	if got[0].Item != "en" || got[0].Count != 12 {
		t.Errorf("restored merger ranking = %v", got)
	}
}

func TestWindowJoin(t *testing.T) {
	enc := func(p any) []byte { return []byte(p.(string)) }
	dec := func(b []byte) any { return string(b) }
	j := NewWindowJoin(1_000, enc, dec)
	var c collected
	em := c.emitter()
	j.OnTuple(Context{Now: 0, Input: 0}, stream.Tuple{Key: 1, Payload: "L1"}, em)
	j.OnTuple(Context{Now: 100, Input: 1}, stream.Tuple{Key: 1, Payload: "R1"}, em)
	if len(c.payloads) != 1 {
		t.Fatalf("join emitted %d", len(c.payloads))
	}
	pair := c.payloads[0].(JoinedPair)
	if pair.Left != "L1" || pair.Right != "R1" {
		t.Errorf("pair = %+v", pair)
	}
	// Different key: no match.
	j.OnTuple(Context{Now: 150, Input: 1}, stream.Tuple{Key: 2, Payload: "R2"}, em)
	if len(c.payloads) != 1 {
		t.Error("cross-key match emitted")
	}
	// Window expiry: L1 is gone at Now=2000.
	j.OnTuple(Context{Now: 2_000, Input: 1}, stream.Tuple{Key: 1, Payload: "R3"}, em)
	if len(c.payloads) != 1 {
		t.Error("expired row matched")
	}
	// OnTime garbage-collects empty rows.
	j.OnTime(10_000, em)
	if j.WindowSize() != 0 {
		t.Errorf("WindowSize after expiry = %d", j.WindowSize())
	}
}

func TestWindowJoinSnapshotRestore(t *testing.T) {
	enc := func(p any) []byte { return []byte(p.(string)) }
	dec := func(b []byte) any { return string(b) }
	j := NewWindowJoin(10_000, enc, dec)
	var c collected
	em := c.emitter()
	j.OnTuple(Context{Now: 5, Input: 0}, stream.Tuple{Key: 1, Payload: "L1"}, em)
	j.OnTuple(Context{Now: 6, Input: 0}, stream.Tuple{Key: 2, Payload: "L2"}, em)

	kv, err := j.State().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	j2 := NewWindowJoin(10_000, enc, dec)
	if err := j2.State().Restore(kv); err != nil {
		t.Fatal(err)
	}
	if j2.WindowSize() != 2 {
		t.Fatalf("restored WindowSize = %d", j2.WindowSize())
	}
	c = collected{}
	j2.OnTuple(Context{Now: 10, Input: 1}, stream.Tuple{Key: 1, Payload: "R1"}, c.emitter())
	if len(c.payloads) != 1 {
		t.Fatal("restored join did not match")
	}
	pair := c.payloads[0].(JoinedPair)
	if pair.Left != "L1" || pair.Right != "R1" {
		t.Errorf("pair = %+v", pair)
	}
}
