package operator

import (
	"sort"
	"sync"

	"seep/internal/stream"
)

// JoinedPair is the payload emitted by WindowJoin for each match.
type JoinedPair struct {
	Left, Right any
}

// WindowJoin is a symmetric windowed hash join over two input streams:
// tuples are matched on equal keys within a time window. It demonstrates
// that the state management primitives support classic relational
// operators (§2.1 contrasts window-based relational state with arbitrary
// data-flow state; both fit the key/value model).
//
// Processing state per key: the lists of left and right payloads seen in
// the current window with their arrival times.
type WindowJoin struct {
	// WindowMillis is how long a tuple remains joinable after arrival.
	WindowMillis int64
	// Encode/Decode convert payloads to bytes for state snapshots.
	// Payloads must round-trip for recovery to be exact.
	Encode func(any) []byte
	Decode func([]byte) any

	mu   sync.Mutex
	rows map[stream.Key]*joinRows
}

type joinRow struct {
	at      int64
	payload any
}

type joinRows struct {
	left, right []joinRow
}

// NewWindowJoin returns a windowed equi-join. encode/decode handle the
// payload type of both inputs.
func NewWindowJoin(windowMillis int64, encode func(any) []byte, decode func([]byte) any) *WindowJoin {
	return &WindowJoin{
		WindowMillis: windowMillis,
		Encode:       encode,
		Decode:       decode,
		rows:         make(map[stream.Key]*joinRows),
	}
}

// OnTuple implements Operator. Input 0 is the left stream, input 1 the
// right stream.
func (j *WindowJoin) OnTuple(ctx Context, t stream.Tuple, emit Emitter) {
	j.mu.Lock()
	r := j.rows[t.Key]
	if r == nil {
		r = &joinRows{}
		j.rows[t.Key] = r
	}
	j.expireLocked(r, ctx.Now)
	var matches []any
	if ctx.Input == 0 {
		r.left = append(r.left, joinRow{at: ctx.Now, payload: t.Payload})
		for _, m := range r.right {
			matches = append(matches, m.payload)
		}
	} else {
		r.right = append(r.right, joinRow{at: ctx.Now, payload: t.Payload})
		for _, m := range r.left {
			matches = append(matches, m.payload)
		}
	}
	j.mu.Unlock()
	for _, m := range matches {
		if ctx.Input == 0 {
			emit(t.Key, JoinedPair{Left: t.Payload, Right: m})
		} else {
			emit(t.Key, JoinedPair{Left: m, Right: t.Payload})
		}
	}
}

func (j *WindowJoin) expireLocked(r *joinRows, now int64) {
	cutoff := now - j.WindowMillis
	trim := func(rows []joinRow) []joinRow {
		i := 0
		for i < len(rows) && rows[i].at < cutoff {
			i++
		}
		return rows[i:]
	}
	r.left = trim(r.left)
	r.right = trim(r.right)
}

// OnTime implements TimeDriven: expired rows are dropped so state does
// not grow without bound.
func (j *WindowJoin) OnTime(now int64, _ Emitter) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for k, r := range j.rows {
		j.expireLocked(r, now)
		if len(r.left) == 0 && len(r.right) == 0 {
			delete(j.rows, k)
		}
	}
}

// SnapshotKV implements Stateful.
func (j *WindowJoin) SnapshotKV() map[stream.Key][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[stream.Key][]byte, len(j.rows))
	for k, r := range j.rows {
		e := stream.NewEncoder(64)
		encodeSide := func(rows []joinRow) {
			e.Uint32(uint32(len(rows)))
			for _, row := range rows {
				e.Int64(row.at)
				e.Bytes32(j.Encode(row.payload))
			}
		}
		encodeSide(r.left)
		encodeSide(r.right)
		out[k] = e.Bytes()
	}
	return out
}

// RestoreKV implements Stateful.
func (j *WindowJoin) RestoreKV(kv map[stream.Key][]byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.rows = make(map[stream.Key]*joinRows, len(kv))
	for k, v := range kv {
		d := stream.NewDecoder(v)
		decodeSide := func() []joinRow {
			n := int(d.Uint32())
			rows := make([]joinRow, 0, n)
			for i := 0; i < n; i++ {
				at := d.Int64()
				b := d.Bytes32()
				if d.Err() != nil {
					return rows
				}
				cp := make([]byte, len(b))
				copy(cp, b)
				rows = append(rows, joinRow{at: at, payload: j.Decode(cp)})
			}
			return rows
		}
		r := &joinRows{}
		r.left = decodeSide()
		r.right = decodeSide()
		j.rows[k] = r
	}
}

// WindowSize returns the number of buffered rows (for tests).
func (j *WindowJoin) WindowSize() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	keys := make([]stream.Key, 0, len(j.rows))
	for k := range j.rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	for _, k := range keys {
		n += len(j.rows[k].left) + len(j.rows[k].right)
	}
	return n
}
