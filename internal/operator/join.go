package operator

import (
	"seep/internal/state"
	"seep/internal/stream"
)

// JoinedPair is the payload emitted by WindowJoin for each match.
type JoinedPair struct {
	Left, Right any
}

// WindowJoin is a symmetric windowed hash join over two input streams:
// tuples are matched on equal keys within a time window. It demonstrates
// that the managed state cells support classic relational operators
// (§2.1 contrasts window-based relational state with arbitrary data-flow
// state; both fit the key/value model).
//
// Processing state per key: the lists of left and right payloads seen in
// the current window with their arrival times, held in one managed cell
// whose codec is built from the user-supplied payload encode/decode.
type WindowJoin struct {
	// WindowMillis is how long a tuple remains joinable after arrival.
	WindowMillis int64
	// Encode/Decode convert payloads to bytes for state snapshots.
	// Payloads must round-trip for recovery to be exact.
	Encode func(any) []byte
	Decode func([]byte) any

	store *state.Store
	rows  *state.Value[joinRows]
}

type joinRow struct {
	at      int64
	payload any
}

type joinRows struct {
	left, right []joinRow
}

// NewWindowJoin returns a windowed equi-join. encode/decode handle the
// payload type of both inputs.
func NewWindowJoin(windowMillis int64, encode func(any) []byte, decode func([]byte) any) *WindowJoin {
	j := &WindowJoin{
		WindowMillis: windowMillis,
		Encode:       encode,
		Decode:       decode,
		store:        state.NewStore(),
	}
	j.rows = state.NewValue[joinRows](j.store, "rows", state.CodecFunc[joinRows]{
		Enc: j.encodeRows,
		Dec: j.decodeRows,
	})
	return j
}

// State implements Managed.
func (j *WindowJoin) State() *state.Store { return j.store }

func (j *WindowJoin) encodeRows(r joinRows) ([]byte, error) {
	e := stream.NewEncoder(64)
	encodeSide := func(rows []joinRow) {
		e.Uint32(uint32(len(rows)))
		for _, row := range rows {
			e.Int64(row.at)
			e.Bytes32(j.Encode(row.payload))
		}
	}
	encodeSide(r.left)
	encodeSide(r.right)
	return e.Bytes(), nil
}

func (j *WindowJoin) decodeRows(b []byte) (joinRows, error) {
	d := stream.NewDecoder(b)
	decodeSide := func() []joinRow {
		n := int(d.Uint32())
		rows := make([]joinRow, 0, n)
		for i := 0; i < n; i++ {
			at := d.Int64()
			pb := d.Bytes32()
			if d.Err() != nil {
				return rows
			}
			cp := make([]byte, len(pb))
			copy(cp, pb)
			rows = append(rows, joinRow{at: at, payload: j.Decode(cp)})
		}
		return rows
	}
	var r joinRows
	r.left = decodeSide()
	r.right = decodeSide()
	return r, d.Err()
}

// OnTuple implements Operator. Input 0 is the left stream, input 1 the
// right stream. The expire/insert/match step runs as one atomic cell
// update, so checkpoints never observe a half-applied tuple.
func (j *WindowJoin) OnTuple(ctx Context, t stream.Tuple, emit Emitter) {
	var matches []any
	j.rows.Update(t.Key, func(r joinRows) joinRows {
		j.expire(&r, ctx.Now)
		if ctx.Input == 0 {
			r.left = append(r.left, joinRow{at: ctx.Now, payload: t.Payload})
			for _, m := range r.right {
				matches = append(matches, m.payload)
			}
		} else {
			r.right = append(r.right, joinRow{at: ctx.Now, payload: t.Payload})
			for _, m := range r.left {
				matches = append(matches, m.payload)
			}
		}
		return r
	})
	for _, m := range matches {
		if ctx.Input == 0 {
			emit(t.Key, JoinedPair{Left: t.Payload, Right: m})
		} else {
			emit(t.Key, JoinedPair{Left: m, Right: t.Payload})
		}
	}
}

func (j *WindowJoin) expire(r *joinRows, now int64) {
	cutoff := now - j.WindowMillis
	trim := func(rows []joinRow) []joinRow {
		i := 0
		for i < len(rows) && rows[i].at < cutoff {
			i++
		}
		return rows[i:]
	}
	r.left = trim(r.left)
	r.right = trim(r.right)
}

// OnTime implements TimeDriven: expired rows are dropped so state does
// not grow without bound. Keys with nothing to expire are left
// untouched — Transform marks a key dirty, and dirtying every live key
// each tick would make incremental checkpoints degenerate to full ones.
func (j *WindowJoin) OnTime(now int64, _ Emitter) {
	for _, k := range j.rows.Keys() {
		r, ok := j.rows.Get(k)
		if !ok {
			continue
		}
		probe := r // value copy: expire only reslices, never mutates rows
		j.expire(&probe, now)
		if len(probe.left)+len(probe.right) == len(r.left)+len(r.right) {
			continue
		}
		j.rows.Transform(k, func(cur joinRows) (joinRows, bool) {
			j.expire(&cur, now)
			return cur, len(cur.left) > 0 || len(cur.right) > 0
		})
	}
}

// WindowSize returns the number of buffered rows (for tests).
func (j *WindowJoin) WindowSize() int {
	n := 0
	j.rows.ForEach(func(_ stream.Key, r joinRows) {
		n += len(r.left) + len(r.right)
	})
	return n
}
