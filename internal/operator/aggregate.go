package operator

import (
	"sort"
	"sync"

	"seep/internal/stream"
)

// KeyedSum is a generic stateful aggregation: it maintains a float64
// accumulator per key, updated by an extractor function, and emits
// (key, sum) either continuously or at tumbling-window boundaries.
type KeyedSum struct {
	// Extract obtains the value to add from a tuple payload. Tuples for
	// which ok is false are ignored.
	Extract func(payload any) (v float64, ok bool)
	// WindowMillis is the tumbling window (0 = continuous: emit running
	// sum on every update).
	WindowMillis int64

	mu          sync.Mutex
	sums        map[stream.Key]float64
	windowStart int64
}

// KeyedSumResult is the payload emitted by KeyedSum.
type KeyedSumResult struct {
	Key stream.Key
	Sum float64
}

// NewKeyedSum returns a sum aggregator over the given extractor.
func NewKeyedSum(windowMillis int64, extract func(any) (float64, bool)) *KeyedSum {
	return &KeyedSum{Extract: extract, WindowMillis: windowMillis, sums: make(map[stream.Key]float64)}
}

// OnTuple implements Operator.
func (a *KeyedSum) OnTuple(_ Context, t stream.Tuple, emit Emitter) {
	v, ok := a.Extract(t.Payload)
	if !ok {
		return
	}
	a.mu.Lock()
	a.sums[t.Key] += v
	sum := a.sums[t.Key]
	a.mu.Unlock()
	if a.WindowMillis == 0 {
		emit(t.Key, KeyedSumResult{Key: t.Key, Sum: sum})
	}
}

// OnTime implements TimeDriven for windowed mode.
func (a *KeyedSum) OnTime(now int64, emit Emitter) {
	if a.WindowMillis == 0 {
		return
	}
	a.mu.Lock()
	if a.windowStart == 0 {
		a.windowStart = now
	}
	if now-a.windowStart < a.WindowMillis {
		a.mu.Unlock()
		return
	}
	flushed := a.sums
	a.sums = make(map[stream.Key]float64)
	a.windowStart = now
	a.mu.Unlock()

	keys := make([]stream.Key, 0, len(flushed))
	for k := range flushed {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		emit(k, KeyedSumResult{Key: k, Sum: flushed[k]})
	}
}

// SnapshotKV implements Stateful.
func (a *KeyedSum) SnapshotKV() map[stream.Key][]byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[stream.Key][]byte, len(a.sums))
	for k, v := range a.sums {
		e := stream.NewEncoder(8)
		e.Float64(v)
		out[k] = e.Bytes()
	}
	return out
}

// RestoreKV implements Stateful.
func (a *KeyedSum) RestoreKV(kv map[stream.Key][]byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sums = make(map[stream.Key]float64, len(kv))
	for k, v := range kv {
		d := stream.NewDecoder(v)
		a.sums[k] = d.Float64()
	}
}

// Sum returns the current accumulator for key k.
func (a *KeyedSum) Sum(k stream.Key) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sums[k]
}
