package operator

import (
	"sort"

	"seep/internal/state"
	"seep/internal/stream"
)

// KeyedSum is a generic stateful aggregation: it maintains a float64
// accumulator per key in a managed state cell, updated by an extractor
// function, and emits (key, sum) either continuously or at
// tumbling-window boundaries.
type KeyedSum struct {
	// Extract obtains the value to add from a tuple payload. Tuples for
	// which ok is false are ignored.
	Extract func(payload any) (v float64, ok bool)
	// WindowMillis is the tumbling window (0 = continuous: emit running
	// sum on every update).
	WindowMillis int64

	store *state.Store
	sums  *state.Value[float64]
	// windowStart is when the current window opened; windowSet
	// distinguishes a window legitimately starting at time 0 from "not
	// opened yet" (the former was previously conflated with unset).
	windowStart int64
	windowSet   bool
}

// KeyedSumResult is the payload emitted by KeyedSum.
type KeyedSumResult struct {
	Key stream.Key
	Sum float64
}

// NewKeyedSum returns a sum aggregator over the given extractor.
func NewKeyedSum(windowMillis int64, extract func(any) (float64, bool)) *KeyedSum {
	st := state.NewStore()
	return &KeyedSum{
		Extract:      extract,
		WindowMillis: windowMillis,
		store:        st,
		sums:         state.NewValue[float64](st, "sums", state.Float64Codec{}),
	}
}

// State implements Managed.
func (a *KeyedSum) State() *state.Store { return a.store }

// OnTuple implements Operator.
func (a *KeyedSum) OnTuple(_ Context, t stream.Tuple, emit Emitter) {
	v, ok := a.Extract(t.Payload)
	if !ok {
		return
	}
	sum := a.sums.Update(t.Key, func(s float64) float64 { return s + v })
	if a.WindowMillis == 0 {
		emit(t.Key, KeyedSumResult{Key: t.Key, Sum: sum})
	}
}

// OnTime implements TimeDriven for windowed mode.
func (a *KeyedSum) OnTime(now int64, emit Emitter) {
	if a.WindowMillis == 0 {
		return
	}
	if !a.windowSet {
		a.windowStart = now
		a.windowSet = true
	}
	if now-a.windowStart < a.WindowMillis {
		return
	}
	flushed := a.sums.Drain()
	a.windowStart = now

	keys := make([]stream.Key, 0, len(flushed))
	for k := range flushed {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		emit(k, KeyedSumResult{Key: k, Sum: flushed[k]})
	}
}

// Sum returns the current accumulator for key k.
func (a *KeyedSum) Sum(k stream.Key) float64 {
	v, _ := a.sums.Get(k)
	return v
}
