package operator

import (
	"sort"
	"strings"

	"seep/internal/state"
	"seep/internal/stream"
)

// WordSplitter tokenises a stream of sentence fragments into words — the
// stateless word split operator of the running example in §3.1 and of the
// windowed word frequency query in §6.2. Each word is emitted keyed by
// its hash, so downstream counters can be partitioned by word.
func WordSplitter() Operator {
	return Func(func(_ Context, t stream.Tuple, emit Emitter) {
		s, ok := t.Payload.(string)
		if !ok {
			return
		}
		for _, w := range strings.Fields(s) {
			emit(stream.KeyOfString(w), w)
		}
	})
}

// WordCount is the payload emitted by WordCounter at each window close.
type WordCount struct {
	Word  string
	Count int64
}

// WordCounter maintains a windowed frequency count of words — the
// stateful word count operator of §3.1 and §6.2. Its processing state is
// a managed dictionary from word to counter, keyed by the word's tuple
// key (in practice one word per key), so the system checkpoints,
// partitions and restores it without operator involvement.
//
// With WindowMillis > 0 the counter behaves as a tumbling window: OnTime
// emits every (word, count) pair once the window closes and resets the
// dictionary. With WindowMillis == 0 the counts accumulate forever and
// updates are emitted per tuple (continuous mode).
type WordCounter struct {
	// WindowMillis is the tumbling window length (0 = continuous).
	WindowMillis int64
	// EmitOnUpdate, in windowed mode, also emits the running count on
	// every update (useful for latency measurements where each input
	// tuple must produce an observable output).
	EmitOnUpdate bool

	store  *state.Store
	counts *state.Map[int64]
	// windowStart is when the current window opened; windowSet
	// distinguishes "window opened at time 0" from "not opened yet".
	windowStart int64
	windowSet   bool
}

// NewWordCounter returns a windowed word counter (window in ms;
// 0 = continuous).
func NewWordCounter(windowMillis int64) *WordCounter {
	st := state.NewStore()
	return &WordCounter{
		WindowMillis: windowMillis,
		store:        st,
		counts:       state.NewMap[int64](st, "counts", state.Int64Codec{}),
	}
}

// State implements Managed.
func (w *WordCounter) State() *state.Store { return w.store }

// OnTuple implements Operator.
func (w *WordCounter) OnTuple(ctx Context, t stream.Tuple, emit Emitter) {
	word, ok := t.Payload.(string)
	if !ok {
		return
	}
	n := w.counts.Update(t.Key, word, func(c int64) int64 { return c + 1 })
	if w.WindowMillis == 0 || w.EmitOnUpdate {
		emit(t.Key, WordCount{Word: word, Count: n})
	}
}

// OnTime implements TimeDriven: at window close, emit all counts and
// reset.
func (w *WordCounter) OnTime(now int64, emit Emitter) {
	if w.WindowMillis == 0 {
		return
	}
	if !w.windowSet {
		w.windowStart = now
		w.windowSet = true
	}
	if now-w.windowStart < w.WindowMillis {
		return
	}
	flushed := w.counts.Drain()
	w.windowStart = now

	// Deterministic emission order for reproducibility.
	keys := make([]stream.Key, 0, len(flushed))
	for k := range flushed {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		words := make([]string, 0, len(flushed[k]))
		for word := range flushed[k] {
			words = append(words, word)
		}
		sort.Strings(words)
		for _, word := range words {
			emit(k, WordCount{Word: word, Count: flushed[k][word]})
		}
	}
}

// Count returns the current count of a word (for tests and examples).
func (w *WordCounter) Count(word string) int64 {
	n, _ := w.counts.Get(stream.KeyOfString(word), word)
	return n
}

// Counts returns all current (word, count) pairs (for tests and
// examples).
func (w *WordCounter) Counts() map[string]int64 {
	out := make(map[string]int64)
	w.counts.ForEach(func(_ stream.Key, word string, n int64) { out[word] += n })
	return out
}

// Distinct returns the number of distinct words currently tracked.
func (w *WordCounter) Distinct() int { return w.counts.FieldCount() }
