package operator

import (
	"sort"
	"strings"
	"sync"

	"seep/internal/stream"
)

// WordSplitter tokenises a stream of sentence fragments into words — the
// stateless word split operator of the running example in §3.1 and of the
// windowed word frequency query in §6.2. Each word is emitted keyed by
// its hash, so downstream counters can be partitioned by word.
func WordSplitter() Operator {
	return Func(func(_ Context, t stream.Tuple, emit Emitter) {
		s, ok := t.Payload.(string)
		if !ok {
			return
		}
		for _, w := range strings.Fields(s) {
			emit(stream.KeyOfString(w), w)
		}
	})
}

// WordCount is the payload emitted by WordCounter at each window close.
type WordCount struct {
	Word  string
	Count int64
}

// WordCounter maintains a windowed frequency count of words — the
// stateful word count operator of §3.1 and §6.2. Its processing state is
// a dictionary from word to counter; per tuple key the state value holds
// all words hashing to that key (in practice one word per key).
//
// With WindowMillis > 0 the counter behaves as a tumbling window: OnTime
// emits every (word, count) pair once the window closes and resets the
// dictionary. With WindowMillis == 0 the counts accumulate forever and
// updates are emitted per tuple (continuous mode).
type WordCounter struct {
	// WindowMillis is the tumbling window length (0 = continuous).
	WindowMillis int64
	// EmitOnUpdate, in windowed mode, also emits the running count on
	// every update (useful for latency measurements where each input
	// tuple must produce an observable output).
	EmitOnUpdate bool

	mu          sync.Mutex
	counts      map[stream.Key]map[string]int64
	windowStart int64
}

// NewWordCounter returns a windowed word counter (window in ms;
// 0 = continuous).
func NewWordCounter(windowMillis int64) *WordCounter {
	return &WordCounter{
		WindowMillis: windowMillis,
		counts:       make(map[stream.Key]map[string]int64),
	}
}

// OnTuple implements Operator.
func (w *WordCounter) OnTuple(ctx Context, t stream.Tuple, emit Emitter) {
	word, ok := t.Payload.(string)
	if !ok {
		return
	}
	w.mu.Lock()
	m := w.counts[t.Key]
	if m == nil {
		m = make(map[string]int64)
		w.counts[t.Key] = m
	}
	m[word]++
	n := m[word]
	w.mu.Unlock()
	if w.WindowMillis == 0 || w.EmitOnUpdate {
		emit(t.Key, WordCount{Word: word, Count: n})
	}
}

// OnTime implements TimeDriven: at window close, emit all counts and
// reset.
func (w *WordCounter) OnTime(now int64, emit Emitter) {
	if w.WindowMillis == 0 {
		return
	}
	w.mu.Lock()
	if w.windowStart == 0 {
		w.windowStart = now
	}
	if now-w.windowStart < w.WindowMillis {
		w.mu.Unlock()
		return
	}
	flushed := w.counts
	w.counts = make(map[stream.Key]map[string]int64)
	w.windowStart = now
	w.mu.Unlock()

	// Deterministic emission order for reproducibility.
	keys := make([]stream.Key, 0, len(flushed))
	for k := range flushed {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		words := make([]string, 0, len(flushed[k]))
		for word := range flushed[k] {
			words = append(words, word)
		}
		sort.Strings(words)
		for _, word := range words {
			emit(k, WordCount{Word: word, Count: flushed[k][word]})
		}
	}
}

// SnapshotKV implements Stateful: each key's value is the encoded list of
// (word, count) pairs for that key.
func (w *WordCounter) SnapshotKV() map[stream.Key][]byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[stream.Key][]byte, len(w.counts))
	for k, m := range w.counts {
		e := stream.NewEncoder(16 * len(m))
		words := make([]string, 0, len(m))
		for word := range m {
			words = append(words, word)
		}
		sort.Strings(words)
		e.Uint32(uint32(len(words)))
		for _, word := range words {
			e.String32(word)
			e.Int64(m[word])
		}
		out[k] = e.Bytes()
	}
	return out
}

// RestoreKV implements Stateful.
func (w *WordCounter) RestoreKV(kv map[stream.Key][]byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.counts = make(map[stream.Key]map[string]int64, len(kv))
	for k, v := range kv {
		d := stream.NewDecoder(v)
		n := int(d.Uint32())
		m := make(map[string]int64, n)
		for i := 0; i < n; i++ {
			word := d.String32()
			cnt := d.Int64()
			if d.Err() != nil {
				break
			}
			m[word] = cnt
		}
		w.counts[k] = m
	}
}

// Count returns the current count of a word (for tests and examples).
func (w *WordCounter) Count(word string) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	k := stream.KeyOfString(word)
	if m := w.counts[k]; m != nil {
		return m[word]
	}
	return 0
}

// Distinct returns the number of distinct words currently tracked.
func (w *WordCounter) Distinct() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, m := range w.counts {
		n += len(m)
	}
	return n
}
