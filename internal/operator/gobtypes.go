package operator

import (
	"encoding/gob"

	"seep/internal/stream"
	"seep/internal/wirecodec"
)

// The distributed runtime's default payload codec is encoding/gob over
// `any`, which requires every concrete payload type crossing a process
// boundary to be registered. The library operators register their own
// output types here; user payload types register via seep.RegisterPayloadType.
//
// Each type also gets a hand-written codec in the binary framing's tag
// registry: a few varints instead of a self-describing gob stream per
// tuple, and — unlike gob — byte-deterministic output (gob walks maps
// in random order; see the topk workaround for what that costs).
func init() {
	gob.Register(WordCount{})
	gob.Register(Ranking{})
	gob.Register(RankEntry{})
	gob.Register(JoinedPair{})

	// Registration order is part of the wire contract: tags are assigned
	// sequentially and must match in every binary of a cluster.
	mustRegister(WordCount{},
		func(e *stream.Encoder, v any) error {
			wc := v.(WordCount)
			e.StringV(wc.Word)
			e.Varint(wc.Count)
			return nil
		},
		func(d *stream.Decoder) (any, error) {
			wc := WordCount{Word: d.StringV(), Count: d.Varint()}
			return wc, d.Err()
		})
	mustRegister(RankEntry{},
		func(e *stream.Encoder, v any) error {
			encodeRankEntry(e, v.(RankEntry))
			return nil
		},
		func(d *stream.Decoder) (any, error) {
			re := decodeRankEntry(d)
			return re, d.Err()
		})
	mustRegister(Ranking{},
		func(e *stream.Encoder, v any) error {
			r := v.(Ranking)
			e.Uvarint(uint64(len(r)))
			for _, re := range r {
				encodeRankEntry(e, re)
			}
			return nil
		},
		func(d *stream.Decoder) (any, error) {
			n := int(d.Uvarint())
			if err := d.Err(); err != nil {
				return nil, err
			}
			// An entry costs at least two bytes (length prefix + varint).
			if n < 0 || n > d.Remaining()/2+1 {
				return nil, stream.ErrShortBuffer
			}
			r := make(Ranking, 0, n)
			for i := 0; i < n; i++ {
				r = append(r, decodeRankEntry(d))
			}
			return r, d.Err()
		})
	mustRegister(JoinedPair{},
		func(e *stream.Encoder, v any) error {
			jp := v.(JoinedPair)
			if err := wirecodec.EncodeAny(e, jp.Left); err != nil {
				return err
			}
			return wirecodec.EncodeAny(e, jp.Right)
		},
		func(d *stream.Decoder) (any, error) {
			left, err := wirecodec.DecodeAny(d)
			if err != nil {
				return nil, err
			}
			right, err := wirecodec.DecodeAny(d)
			if err != nil {
				return nil, err
			}
			return JoinedPair{Left: left, Right: right}, d.Err()
		})
}

func encodeRankEntry(e *stream.Encoder, re RankEntry) {
	e.StringV(re.Item)
	e.Varint(re.Count)
}

func decodeRankEntry(d *stream.Decoder) RankEntry {
	return RankEntry{Item: d.StringV(), Count: d.Varint()}
}

// mustRegister panics on a failed init-time registration — the only
// failures are programming errors (duplicate type, exhausted tag space).
func mustRegister(v any, enc wirecodec.EncodeFunc, dec wirecodec.DecodeFunc) {
	if _, err := wirecodec.RegisterCodec(v, enc, dec); err != nil {
		panic(err)
	}
}
