package operator

import "encoding/gob"

// The distributed runtime's default payload codec is encoding/gob over
// `any`, which requires every concrete payload type crossing a process
// boundary to be registered. The library operators register their own
// output types here; user payload types register via seep.RegisterPayloadType.
func init() {
	gob.Register(WordCount{})
	gob.Register(Ranking{})
	gob.Register(RankEntry{})
	gob.Register(JoinedPair{})
}
