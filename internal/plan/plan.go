// Package plan models queries as directed acyclic graphs of operators and
// their physical realisation as execution graphs of partitioned operator
// instances (§2.2 of the paper).
//
// A Query is the logical graph q = (O, S): vertices are logical operators,
// edges are streams. An ExecGraph is the physical graph q̄: each logical
// operator o maps to π(o) partitioned instances o^1..o^π, and each logical
// stream maps to the product of the endpoint partitions.
package plan

import (
	"errors"
	"fmt"
	"sort"
)

// OpID names a logical operator in a query graph, e.g. "toll-calculator".
type OpID string

// Special well-known operator roles.
const (
	// RoleSource marks operators that inject tuples and cannot fail (§2.2).
	RoleSource = "source"
	// RoleSink marks operators that gather results and cannot fail.
	RoleSink = "sink"
	// RoleStateless marks operators with θo = ∅.
	RoleStateless = "stateless"
	// RoleStateful marks operators with externally managed state.
	RoleStateful = "stateful"
)

// InstanceID identifies one partitioned instance of a logical operator in
// the execution graph, e.g. toll-calculator#2. Partition numbers start at
// 1 and are never reused within one execution graph generation, so stale
// messages addressed to replaced instances are detectable.
type InstanceID struct {
	Op   OpID
	Part int
}

// String renders the instance as op#part.
func (id InstanceID) String() string { return fmt.Sprintf("%s#%d", id.Op, id.Part) }

// OpSpec declares a logical operator.
type OpSpec struct {
	// ID is the unique name of the operator within the query.
	ID OpID
	// Role is one of RoleSource, RoleSink, RoleStateless, RoleStateful.
	Role string
	// CostPerTuple is the CPU cost of processing one tuple, in abstract
	// cost units; the simulator divides by VM capacity to obtain service
	// time. Zero means negligible.
	CostPerTuple float64
	// StateBytesPerKey estimates the processing-state footprint per
	// distinct key, used by the simulator to model checkpoint cost.
	StateBytesPerKey int
	// MaxParallelism caps scale out (0 = unlimited). Sources and sinks
	// are pinned to their declared parallelism.
	MaxParallelism int
	// InitialParallelism is the number of instances at deployment
	// (default 1).
	InitialParallelism int
}

// StreamSpec declares a logical stream (edge) between two operators.
type StreamSpec struct {
	From, To OpID
}

// Query is a logical query graph: a DAG from sources to sinks.
type Query struct {
	ops     map[OpID]*OpSpec
	order   []OpID // insertion order, for deterministic iteration
	streams []StreamSpec
	up      map[OpID][]OpID
	down    map[OpID][]OpID
	// errs collects construction mistakes (empty or duplicate operator
	// IDs, streams referencing undeclared operators). They are deferred
	// so query construction stays fluent, and surface as the first
	// result of Validate — long before any runtime touches the graph.
	errs []error
}

// NewQuery returns an empty query graph.
func NewQuery() *Query {
	return &Query{
		ops:  make(map[OpID]*OpSpec),
		up:   make(map[OpID][]OpID),
		down: make(map[OpID][]OpID),
	}
}

// AddOp adds a logical operator. Empty and duplicate IDs are recorded as
// construction errors reported by Validate.
func (q *Query) AddOp(spec OpSpec) *Query {
	if spec.ID == "" {
		q.errs = append(q.errs, errors.New("plan: operator with empty ID"))
		return q
	}
	if _, dup := q.ops[spec.ID]; dup {
		q.errs = append(q.errs, fmt.Errorf("plan: duplicate operator %q", spec.ID))
		return q
	}
	if spec.InitialParallelism <= 0 {
		spec.InitialParallelism = 1
	}
	s := spec
	q.ops[spec.ID] = &s
	q.order = append(q.order, spec.ID)
	return q
}

// Connect adds a stream from one operator to another. Streams naming
// operators never declared with AddOp are rejected: the dangling edge is
// recorded as a construction error reported by Validate, instead of
// surfacing later as a confusing runtime failure.
func (q *Query) Connect(from, to OpID) *Query {
	ok := true
	if _, declared := q.ops[from]; !declared {
		q.errs = append(q.errs, fmt.Errorf(
			"plan: stream %q -> %q: operator %q is not declared (missing AddOp)", from, to, from))
		ok = false
	}
	if _, declared := q.ops[to]; !declared {
		q.errs = append(q.errs, fmt.Errorf(
			"plan: stream %q -> %q: operator %q is not declared (missing AddOp)", from, to, to))
		ok = false
	}
	if !ok {
		return q
	}
	q.streams = append(q.streams, StreamSpec{From: from, To: to})
	q.down[from] = append(q.down[from], to)
	q.up[to] = append(q.up[to], from)
	return q
}

// Op returns the spec for id, or nil.
func (q *Query) Op(id OpID) *OpSpec { return q.ops[id] }

// Ops returns all operator IDs in insertion order.
func (q *Query) Ops() []OpID {
	out := make([]OpID, len(q.order))
	copy(out, q.order)
	return out
}

// Streams returns all logical streams.
func (q *Query) Streams() []StreamSpec {
	out := make([]StreamSpec, len(q.streams))
	copy(out, q.streams)
	return out
}

// Upstream returns the logical upstream operators of id, up(o).
func (q *Query) Upstream(id OpID) []OpID {
	out := make([]OpID, len(q.up[id]))
	copy(out, q.up[id])
	return out
}

// Downstream returns the logical downstream operators of id, down(o).
func (q *Query) Downstream(id OpID) []OpID {
	out := make([]OpID, len(q.down[id]))
	copy(out, q.down[id])
	return out
}

// InputIndex returns the position of stream (from → to) among to's inputs.
// Operators with several input streams see tuples tagged with this index,
// and their timestamp vectors are indexed by it. Returns -1 if absent.
func (q *Query) InputIndex(from, to OpID) int {
	for i, u := range q.up[to] {
		if u == from {
			return i
		}
	}
	return -1
}

// Sources returns operators with RoleSource in insertion order.
func (q *Query) Sources() []OpID { return q.byRole(RoleSource) }

// Sinks returns operators with RoleSink in insertion order.
func (q *Query) Sinks() []OpID { return q.byRole(RoleSink) }

func (q *Query) byRole(role string) []OpID {
	var out []OpID
	for _, id := range q.order {
		if q.ops[id].Role == role {
			out = append(out, id)
		}
	}
	return out
}

// Validate checks construction errors deferred by AddOp/Connect and the
// structural invariants: the graph is a DAG, every operator is reachable
// between a source and a sink, sources have no inputs and sinks no
// outputs, and roles are known.
func (q *Query) Validate() error {
	if len(q.errs) > 0 {
		return errors.Join(q.errs...)
	}
	if len(q.ops) == 0 {
		return fmt.Errorf("plan: empty query")
	}
	for _, id := range q.order {
		op := q.ops[id]
		switch op.Role {
		case RoleSource:
			if len(q.up[id]) > 0 {
				return fmt.Errorf("plan: source %q has %d input streams", id, len(q.up[id]))
			}
		case RoleSink:
			if len(q.down[id]) > 0 {
				return fmt.Errorf("plan: sink %q has %d output streams", id, len(q.down[id]))
			}
		case RoleStateless, RoleStateful:
			if len(q.up[id]) == 0 {
				return fmt.Errorf("plan: operator %q has no inputs", id)
			}
			if len(q.down[id]) == 0 {
				return fmt.Errorf("plan: operator %q has no outputs", id)
			}
		default:
			return fmt.Errorf("plan: operator %q has unknown role %q", id, op.Role)
		}
	}
	if len(q.Sources()) == 0 {
		return fmt.Errorf("plan: query has no source")
	}
	if len(q.Sinks()) == 0 {
		return fmt.Errorf("plan: query has no sink")
	}
	if _, err := q.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns operators in a topological order (sources first) or an
// error if the graph has a cycle.
func (q *Query) TopoOrder() ([]OpID, error) {
	indeg := make(map[OpID]int, len(q.ops))
	for _, id := range q.order {
		indeg[id] = len(q.up[id])
	}
	var frontier []OpID
	for _, id := range q.order {
		if indeg[id] == 0 {
			frontier = append(frontier, id)
		}
	}
	var out []OpID
	for len(frontier) > 0 {
		// Deterministic order: insertion order already governs frontier
		// construction; pop from the front.
		id := frontier[0]
		frontier = frontier[1:]
		out = append(out, id)
		for _, d := range q.down[id] {
			indeg[d]--
			if indeg[d] == 0 {
				frontier = append(frontier, d)
			}
		}
	}
	if len(out) != len(q.ops) {
		return nil, fmt.Errorf("plan: query graph has a cycle (%d of %d ordered)", len(out), len(q.ops))
	}
	return out, nil
}

// ExecGraph is the physical realisation of a query: the set of live
// partitioned instances per logical operator. It tracks the next unused
// partition number per operator so replaced instances never share an ID.
type ExecGraph struct {
	query     *Query
	instances map[OpID][]InstanceID
	nextPart  map[OpID]int
}

// NewExecGraph materialises the initial execution graph: each logical
// operator gets InitialParallelism instances numbered from 1.
func NewExecGraph(q *Query) *ExecGraph {
	g := &ExecGraph{
		query:     q,
		instances: make(map[OpID][]InstanceID),
		nextPart:  make(map[OpID]int),
	}
	for _, id := range q.order {
		n := q.ops[id].InitialParallelism
		for i := 0; i < n; i++ {
			g.addInstance(id)
		}
	}
	return g
}

// Query returns the logical graph this execution graph realises.
func (g *ExecGraph) Query() *Query { return g.query }

// NextPart returns the next unused partition number of id — the
// counter a durable control plane must journal so a restored graph
// never reuses a partition number (including numbers allocated and
// retired since the last snapshot).
func (g *ExecGraph) NextPart(id OpID) int { return g.nextPart[id] }

// RestoreExecGraph rebuilds a physical graph from journaled state: the
// live instances and the next-partition counter of every operator.
// Each counter must be at least the highest partition number among the
// operator's live instances — a lower counter would hand out partition
// numbers already in use, breaking the never-reused invariant stale
// message detection rests on.
func RestoreExecGraph(q *Query, instances map[OpID][]InstanceID, nextPart map[OpID]int) (*ExecGraph, error) {
	g := &ExecGraph{
		query:     q,
		instances: make(map[OpID][]InstanceID),
		nextPart:  make(map[OpID]int),
	}
	for _, id := range q.order {
		next := nextPart[id]
		for _, inst := range instances[id] {
			if inst.Op != id {
				return nil, fmt.Errorf("plan: restore: instance %s listed under operator %q", inst, id)
			}
			if inst.Part > next {
				return nil, fmt.Errorf("plan: restore: %s exceeds journaled partition counter %d", inst, next)
			}
			g.instances[id] = append(g.instances[id], inst)
		}
		g.nextPart[id] = next
	}
	for op := range instances {
		if q.Op(op) == nil {
			return nil, fmt.Errorf("plan: restore: unknown operator %q", op)
		}
	}
	return g, nil
}

func (g *ExecGraph) addInstance(id OpID) InstanceID {
	g.nextPart[id]++
	inst := InstanceID{Op: id, Part: g.nextPart[id]}
	g.instances[id] = append(g.instances[id], inst)
	return inst
}

// Instances returns the live instances of a logical operator, sorted by
// partition number.
func (g *ExecGraph) Instances(id OpID) []InstanceID {
	out := make([]InstanceID, len(g.instances[id]))
	copy(out, g.instances[id])
	sort.Slice(out, func(i, j int) bool { return out[i].Part < out[j].Part })
	return out
}

// AllInstances returns every live instance in deterministic order.
func (g *ExecGraph) AllInstances() []InstanceID {
	var out []InstanceID
	for _, id := range g.query.order {
		out = append(out, g.Instances(id)...)
	}
	return out
}

// Parallelism returns the current number of live instances of id.
func (g *ExecGraph) Parallelism(id OpID) int { return len(g.instances[id]) }

// TotalInstances returns the number of live instances across all operators.
func (g *ExecGraph) TotalInstances() int {
	n := 0
	for _, insts := range g.instances {
		n += len(insts)
	}
	return n
}

// Replace removes the instances `old` of logical operator id and creates
// π fresh instances with new partition numbers, returning them. This is
// the execution-graph side of scale-out-operator(o, π): the old instances
// (possibly just one, possibly failed) are superseded by π new ones.
func (g *ExecGraph) Replace(id OpID, old []InstanceID, pi int) ([]InstanceID, error) {
	if pi < 1 {
		return nil, fmt.Errorf("plan: replace %q with parallelism %d", id, pi)
	}
	live := g.instances[id]
	for _, o := range old {
		found := false
		for _, l := range live {
			if l == o {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("plan: instance %s is not live", o)
		}
	}
	kept := live[:0]
	for _, l := range live {
		stale := false
		for _, o := range old {
			if l == o {
				stale = true
				break
			}
		}
		if !stale {
			kept = append(kept, l)
		}
	}
	g.instances[id] = kept
	out := make([]InstanceID, 0, pi)
	for i := 0; i < pi; i++ {
		out = append(out, g.addInstance(id))
	}
	return out, nil
}

// Remove deletes an instance without replacement (scale-in).
func (g *ExecGraph) Remove(inst InstanceID) error {
	live := g.instances[inst.Op]
	for i, l := range live {
		if l == inst {
			g.instances[inst.Op] = append(live[:i], live[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("plan: instance %s is not live", inst)
}

// Live reports whether inst is part of the current execution graph.
func (g *ExecGraph) Live(inst InstanceID) bool {
	for _, l := range g.instances[inst.Op] {
		if l == inst {
			return true
		}
	}
	return false
}
