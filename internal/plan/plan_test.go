package plan

import (
	"strings"
	"testing"
)

func lrbLike() *Query {
	q := NewQuery()
	q.AddOp(OpSpec{ID: "src", Role: RoleSource})
	q.AddOp(OpSpec{ID: "forward", Role: RoleStateless})
	q.AddOp(OpSpec{ID: "toll", Role: RoleStateful})
	q.AddOp(OpSpec{ID: "sink", Role: RoleSink})
	q.Connect("src", "forward")
	q.Connect("forward", "toll")
	q.Connect("toll", "sink")
	return q
}

func TestQueryValidate(t *testing.T) {
	if err := lrbLike().Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
}

func TestQueryValidateRejects(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Query
		want  string
	}{
		{"empty", func() *Query { return NewQuery() }, "empty"},
		{"no source", func() *Query {
			q := NewQuery()
			q.AddOp(OpSpec{ID: "snk", Role: RoleSink})
			return q
		}, "no source"},
		{"source with input", func() *Query {
			q := NewQuery()
			q.AddOp(OpSpec{ID: "a", Role: RoleSource})
			q.AddOp(OpSpec{ID: "b", Role: RoleSource})
			q.Connect("a", "b")
			return q
		}, "input"},
		{"sink with output", func() *Query {
			q := NewQuery()
			q.AddOp(OpSpec{ID: "a", Role: RoleSink})
			q.AddOp(OpSpec{ID: "b", Role: RoleSink})
			q.Connect("a", "b")
			return q
		}, "output"},
		{"dangling operator", func() *Query {
			q := lrbLike()
			q.AddOp(OpSpec{ID: "lost", Role: RoleStateless})
			return q
		}, "no inputs"},
		{"bad role", func() *Query {
			q := NewQuery()
			q.AddOp(OpSpec{ID: "x", Role: "mystery"})
			return q
		}, "unknown role"},
	}
	for _, c := range cases {
		err := c.build().Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestQueryCycleDetection(t *testing.T) {
	q := NewQuery()
	q.AddOp(OpSpec{ID: "src", Role: RoleSource})
	q.AddOp(OpSpec{ID: "a", Role: RoleStateless})
	q.AddOp(OpSpec{ID: "b", Role: RoleStateless})
	q.AddOp(OpSpec{ID: "snk", Role: RoleSink})
	q.Connect("src", "a")
	q.Connect("a", "b")
	q.Connect("b", "a") // cycle
	q.Connect("b", "snk")
	if err := q.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestTopoOrder(t *testing.T) {
	q := lrbLike()
	order, err := q.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[OpID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, s := range q.Streams() {
		if pos[s.From] >= pos[s.To] {
			t.Errorf("stream %v violates topo order", s)
		}
	}
}

func TestUpDownStream(t *testing.T) {
	q := lrbLike()
	if got := q.Upstream("toll"); len(got) != 1 || got[0] != "forward" {
		t.Errorf("Upstream(toll) = %v", got)
	}
	if got := q.Downstream("forward"); len(got) != 1 || got[0] != "toll" {
		t.Errorf("Downstream(forward) = %v", got)
	}
	if got := q.InputIndex("forward", "toll"); got != 0 {
		t.Errorf("InputIndex = %d", got)
	}
	if got := q.InputIndex("src", "toll"); got != -1 {
		t.Errorf("InputIndex for non-edge = %d", got)
	}
}

func TestQueryConstructionErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Query
		want  string
	}{
		{"empty id", func() *Query { return NewQuery().AddOp(OpSpec{}) }, "empty ID"},
		{"dup id", func() *Query {
			q := NewQuery()
			q.AddOp(OpSpec{ID: "x", Role: RoleSource})
			q.AddOp(OpSpec{ID: "x", Role: RoleSource})
			return q
		}, "duplicate"},
		{"unknown from", func() *Query { return NewQuery().Connect("a", "b") }, `"a" is not declared`},
		{"dangling edge to undeclared op", func() *Query {
			q := lrbLike()
			q.Connect("toll", "ghost")
			return q
		}, `"ghost" is not declared`},
	}
	for _, c := range cases {
		err := c.build().Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestConnectUndeclaredDoesNotCorrupt checks a rejected stream leaves no
// trace in the graph structure.
func TestConnectUndeclaredDoesNotCorrupt(t *testing.T) {
	q := lrbLike()
	q.Connect("toll", "ghost")
	if got := q.Downstream("toll"); len(got) != 1 || got[0] != "sink" {
		t.Errorf("Downstream(toll) = %v after rejected Connect", got)
	}
	for _, s := range q.Streams() {
		if s.To == "ghost" {
			t.Errorf("rejected stream recorded: %v", s)
		}
	}
}

func TestSourcesSinks(t *testing.T) {
	q := lrbLike()
	if got := q.Sources(); len(got) != 1 || got[0] != "src" {
		t.Errorf("Sources = %v", got)
	}
	if got := q.Sinks(); len(got) != 1 || got[0] != "sink" {
		t.Errorf("Sinks = %v", got)
	}
}

func TestExecGraphInitial(t *testing.T) {
	q := lrbLike()
	q.Op("toll").InitialParallelism = 3
	g := NewExecGraph(q)
	if got := g.Parallelism("toll"); got != 3 {
		t.Errorf("Parallelism(toll) = %d", got)
	}
	if got := g.Parallelism("src"); got != 1 {
		t.Errorf("Parallelism(src) = %d", got)
	}
	insts := g.Instances("toll")
	for i, inst := range insts {
		if inst.Part != i+1 {
			t.Errorf("instance %d has part %d", i, inst.Part)
		}
	}
	if g.TotalInstances() != 6 {
		t.Errorf("TotalInstances = %d", g.TotalInstances())
	}
	if len(g.AllInstances()) != 6 {
		t.Errorf("AllInstances = %v", g.AllInstances())
	}
}

func TestExecGraphReplace(t *testing.T) {
	g := NewExecGraph(lrbLike())
	old := g.Instances("toll")
	newInsts, err := g.Replace("toll", old, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(newInsts) != 2 {
		t.Fatalf("got %d new instances", len(newInsts))
	}
	// Partition numbers must not be reused.
	if newInsts[0].Part != 2 || newInsts[1].Part != 3 {
		t.Errorf("new parts = %v", newInsts)
	}
	if g.Live(old[0]) {
		t.Error("replaced instance still live")
	}
	if !g.Live(newInsts[0]) {
		t.Error("new instance not live")
	}
	// Replacing a stale instance fails.
	if _, err := g.Replace("toll", old, 1); err == nil {
		t.Error("expected error replacing stale instance")
	}
	if _, err := g.Replace("toll", nil, 0); err == nil {
		t.Error("expected error for pi=0")
	}
}

func TestExecGraphRemove(t *testing.T) {
	g := NewExecGraph(lrbLike())
	inst := g.Instances("toll")[0]
	if err := g.Remove(inst); err != nil {
		t.Fatal(err)
	}
	if g.Parallelism("toll") != 0 {
		t.Error("instance not removed")
	}
	if err := g.Remove(inst); err == nil {
		t.Error("double remove should fail")
	}
}

func TestInstanceIDString(t *testing.T) {
	id := InstanceID{Op: "toll", Part: 2}
	if id.String() != "toll#2" {
		t.Errorf("String() = %q", id)
	}
}
