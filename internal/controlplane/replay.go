package controlplane

import (
	"fmt"
	"os"
	"sort"

	"seep/internal/plan"
)

// InDoubt is a journaled transition with no commit or abort record: the
// coordinator died somewhere between declaring the intent and closing
// it. The reborn coordinator rolls these back through the abort-to-
// recovery path during worker reconciliation.
type InDoubt struct {
	Seq     uint64
	Action  string // "scale-out", "scale-in", "recover"
	Victims []plan.InstanceID
	Pi      int
	// Planned reports that the transition's plan committed to the graph
	// (a RecPlanned landed): the journal's State already reflects the
	// post-plan topology and the plan's checkpoint files are on disk.
	Planned bool
	// Trims are the merge trim watermarks journaled with the plan;
	// rollback attaches them to the recovery reroute so replay stays
	// exactly-once (see Trim).
	Trims []Trim
}

// Replayed is the outcome of folding a journal: the last snapshot
// State with start metadata applied, the in-doubt transitions, and the
// highest sequence number any record used (the successor coordinator
// numbers its transitions from LastSeq+1, so journal sequences stay
// monotonic across restarts).
type Replayed struct {
	State   *State
	InDoubt []InDoubt
	LastSeq uint64
	Records int
}

// Replay reads and folds the journal in dir. A torn tail is tolerated
// (the WAL discipline: an interrupted append costs only the record
// being written); a journal with no deployment snapshot is an error —
// there is nothing to resume.
func Replay(dir string) (*Replayed, error) {
	data, err := os.ReadFile(journalPath(dir))
	if err != nil {
		return nil, fmt.Errorf("controlplane: read journal: %w", err)
	}
	recs, _ := DecodeRecords(data)
	return Fold(recs)
}

// Fold replays a record sequence into the final control-plane state.
func Fold(recs []Record) (*Replayed, error) {
	r := &Replayed{Records: len(recs)}
	open := make(map[uint64]*InDoubt)
	var openOrder []uint64
	for i := range recs {
		rec := &recs[i]
		if rec.Seq > r.LastSeq {
			r.LastSeq = rec.Seq
		}
		switch rec.Kind {
		case RecDeploy, RecSnapshot, RecPlanned:
			if rec.State != nil {
				// A start cannot be undone within one job: a snapshot
				// assembled before the RecStart landed must not unmark it.
				if prev := r.State; prev != nil && prev.Started && !rec.State.Started {
					rec.State.Started = true
					rec.State.StartUnixMillis = prev.StartUnixMillis
				}
				r.State = rec.State
				if rec.State.NextSeq > r.LastSeq {
					r.LastSeq = rec.State.NextSeq
				}
			}
			if rec.Kind == RecPlanned {
				if d := open[rec.Seq]; d != nil {
					d.Planned = true
					d.Trims = rec.Trims
				}
			}
		case RecStart:
			if r.State != nil {
				r.State.Started = true
				r.State.StartUnixMillis = rec.StartUnixMillis
			}
		case RecIntent:
			d := &InDoubt{Seq: rec.Seq, Action: rec.Action, Pi: rec.Pi}
			d.Victims = append(d.Victims, rec.Victims...)
			if _, dup := open[rec.Seq]; !dup {
				openOrder = append(openOrder, rec.Seq)
			}
			open[rec.Seq] = d
		case RecCommit, RecAbort:
			delete(open, rec.Seq)
		case RecShip:
			// Metadata only: the payload lives in the durable store.
		}
	}
	if r.State == nil {
		return nil, fmt.Errorf("controlplane: journal has no deployment snapshot (%d records)", len(recs))
	}
	sort.Slice(openOrder, func(i, j int) bool { return openOrder[i] < openOrder[j] })
	for _, seq := range openOrder {
		if d := open[seq]; d != nil {
			r.InDoubt = append(r.InDoubt, *d)
		}
	}
	return r, nil
}
