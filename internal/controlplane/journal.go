// Package controlplane is the durable control plane of the distributed
// runtime: a write-ahead journal recording every control-plane mutation
// — deploy, placement change, recovery, scale-out/in stage boundaries,
// checkpoint-ship metadata — so a restarted (or cold-standby)
// coordinator can rebuild its plan, placement and backup store from
// disk and resume a running job.
//
// The journal is append-only and CRC-framed exactly like the v2 wire
// format (internal/transport): each record is
//
//	[version:1][kind:1][len:4 LE][crc32:4 LE][gob body]
//
// and a torn or corrupt frame marks the clean end of the journal (WAL
// discipline): everything before it replays, everything after it is
// discarded, and Open truncates the tail so new appends never follow
// garbage. State payloads (operator checkpoints) do NOT live here —
// they go through core.DurableStore; the journal holds only the control
// metadata that makes those files interpretable after a restart.
//
// Record discipline mirrors the coordinator's staged transitions:
//
//	RecIntent   — a transition is about to mutate the cluster (victims
//	              may be final-retired after this point).
//	RecPlanned  — the plan committed to the graph; carries a full State
//	              snapshot (placement, routing, partition counters) and,
//	              for merges, the per-victim trim watermarks that keep
//	              replay exactly-once.
//	RecCommit   — the transition completed; closes the intent.
//	RecAbort    — the transition failed; the live coordinator rolled it
//	              back through the abort-to-recovery path.
//
// On replay, any intent without a commit or abort is in doubt: the
// reborn coordinator rolls it back through the same abort-to-recovery
// path, so a crash between retire and deploy never strands a key range.
package controlplane

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"seep/internal/plan"
)

// Kind discriminates journal records.
type Kind uint8

const (
	// RecDeploy snapshots the freshly planned deployment (before any
	// worker sees it).
	RecDeploy Kind = 1 + iota
	// RecStart marks the job started and anchors the job clock.
	RecStart
	// RecIntent opens a transition: victims may be retired after this.
	RecIntent
	// RecPlanned commits a transition's plan: full post-plan State plus
	// merge trim watermarks. The plan's checkpoint files are persisted
	// BEFORE this record is appended.
	RecPlanned
	// RecCommit closes a transition successfully.
	RecCommit
	// RecAbort closes a transition that failed and was rolled back.
	RecAbort
	// RecShip records checkpoint-ship metadata (instance, seq, bytes).
	RecShip
	// RecSnapshot is a rotation record: one self-contained State that
	// replaces the whole journal prefix.
	RecSnapshot
)

func (k Kind) String() string {
	switch k {
	case RecDeploy:
		return "deploy"
	case RecStart:
		return "start"
	case RecIntent:
		return "intent"
	case RecPlanned:
		return "planned"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	case RecShip:
		return "ship"
	case RecSnapshot:
		return "snapshot"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Placed locates one instance on one worker.
type Placed struct {
	Inst plan.InstanceID
	Addr string
}

// OpInstances lists the live instances of one logical operator.
type OpInstances struct {
	Op    plan.OpID
	Insts []plan.InstanceID
}

// OpRouting carries one operator's routing table as an opaque encoded
// blob (the journal does not interpret routing; the coordinator does).
type OpRouting struct {
	Op   plan.OpID
	Blob []byte
}

// OpPart records the next unused partition number of one operator —
// critical on restore: a rebuilt execution graph must never reuse a
// partition number, including numbers allocated and retired after the
// last snapshot.
type OpPart struct {
	Op   plan.OpID
	Next int
}

// LegacyPair maps a retired merge victim to the instance carrying its
// legacy output buffer, so acknowledgement trims keep resolving after a
// restart.
type LegacyPair struct {
	Old, Owner plan.InstanceID
}

// State is one self-contained control-plane snapshot: everything a
// reborn coordinator needs (beyond the durable checkpoint files) to
// resume a job. Slices, not maps, for deterministic gob encoding.
type State struct {
	Topology        string
	Workers         []string // worker addresses in placement order
	Placements      []Placed
	Instances       []OpInstances
	Routing         []OpRouting
	NextPart        []OpPart
	Legacy          []LegacyPair
	NextSeq         uint64
	Started         bool
	StartUnixMillis int64 // wall-clock job start: the job clock survives restarts
}

// Trim is one trim-to-watermark instruction journaled with a planned
// merge: on rollback of an in-doubt merge, the recovery reroute carries
// these so upstream buffers still trim to each victim's own final
// watermark before repartitioning (the merged duplicate-detection
// watermark is the victims' minimum — without the trims, replay would
// double-deliver the span between the minimum and each victim's own
// position).
type Trim struct {
	Up    plan.InstanceID
	Owner plan.InstanceID
	TS    int64
}

// ShipMark is checkpoint-ship metadata (the payload lives in the
// durable store, keyed by instance).
type ShipMark struct {
	Inst  plan.InstanceID
	Seq   uint64
	Bytes int
}

// Record is the one journal record type; unused fields stay zero.
type Record struct {
	Kind Kind
	// Seq is the transition sequence number (intent/planned/commit/abort)
	// or the snapshotting coordinator's current sequence.
	Seq uint64
	// State rides RecDeploy, RecPlanned and RecSnapshot.
	State *State
	// StartUnixMillis rides RecStart.
	StartUnixMillis int64
	// Action ("scale-out", "scale-in", "recover") and Victims/Pi ride
	// RecIntent.
	Action  string
	Victims []plan.InstanceID
	Pi      int
	// Trims ride RecPlanned for merges.
	Trims []Trim
	// Ship rides RecShip.
	Ship *ShipMark
	// Reason rides RecAbort.
	Reason string
}

// Stats counts control-plane work: journal traffic and fsync latency
// from the journal, replay/reattach/failover timings filled in by the
// recovering coordinator.
type Stats struct {
	// JournalAppends and JournalBytes count records and framed bytes
	// appended (including rotation snapshots).
	JournalAppends uint64
	JournalBytes   uint64
	// Rotations counts atomic journal rotations.
	Rotations uint64
	// FsyncTotalMicros and FsyncMaxMicros time the per-append fsync.
	FsyncTotalMicros uint64
	FsyncMaxMicros   uint64
	// ReplayRecords and ReplayMillis describe the last journal replay.
	ReplayRecords int
	ReplayMillis  int64
	// Reattached counts workers reconciled by the last reattach
	// handshake; FailoverMillis is its wall-clock (replay through
	// reconciliation).
	Reattached     int
	FailoverMillis int64
}

const (
	journalVersion = 1
	headerLen      = 10
	// maxRecordBytes mirrors the transport's frame cap: a length field
	// past it means a corrupt header, not a huge record.
	maxRecordBytes = 16 << 20
	journalFile    = "journal.wal"
)

func journalPath(dir string) string { return filepath.Join(dir, journalFile) }

// encodeRecord frames one record like a v2 wire frame.
func encodeRecord(rec *Record) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(rec); err != nil {
		return nil, fmt.Errorf("controlplane: encode %s record: %w", rec.Kind, err)
	}
	b := body.Bytes()
	if len(b) > maxRecordBytes {
		return nil, fmt.Errorf("controlplane: %s record of %d bytes exceeds %d", rec.Kind, len(b), maxRecordBytes)
	}
	out := make([]byte, headerLen+len(b))
	out[0] = journalVersion
	out[1] = byte(rec.Kind)
	binary.LittleEndian.PutUint32(out[2:6], uint32(len(b)))
	binary.LittleEndian.PutUint32(out[6:10], crc32.ChecksumIEEE(b))
	copy(out[headerLen:], b)
	return out, nil
}

// decodeBody gob-decodes one record body, converting any decoder panic
// on malformed input into a failure (the fuzz target feeds arbitrary
// bytes through here).
func decodeBody(body []byte) (rec Record, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rec); err != nil {
		return Record{}, false
	}
	return rec, true
}

// DecodeRecords decodes the longest valid prefix of a journal byte
// stream, returning the records and how many bytes they span. The first
// torn, truncated or corrupt frame ends the journal — everything after
// it is ignored (WAL discipline: an interrupted append must cost only
// the record being written). Never panics, whatever the input.
func DecodeRecords(data []byte) ([]Record, int) {
	var out []Record
	off := 0
	for {
		rest := len(data) - off
		if rest < headerLen {
			return out, off
		}
		if data[off] != journalVersion {
			return out, off
		}
		kind := Kind(data[off+1])
		n := binary.LittleEndian.Uint32(data[off+2 : off+6])
		sum := binary.LittleEndian.Uint32(data[off+6 : off+10])
		if n > maxRecordBytes || rest-headerLen < int(n) {
			return out, off
		}
		body := data[off+headerLen : off+headerLen+int(n)]
		if crc32.ChecksumIEEE(body) != sum {
			return out, off
		}
		rec, ok := decodeBody(body)
		if !ok || rec.Kind != kind {
			return out, off
		}
		out = append(out, rec)
		off += headerLen + int(n)
	}
}

// Journal is the append-only control-plane WAL. Every Append is fsynced
// before it returns: a record the coordinator acted on is on disk.
type Journal struct {
	mu   sync.Mutex
	dir  string
	f    *os.File
	size int64

	appends    uint64
	bytes      uint64
	rotations  uint64
	fsyncTotal uint64
	fsyncMax   uint64
}

// Open creates (or reuses) the directory and opens the journal for
// appending. An existing journal is scanned and its torn tail — bytes
// after the last valid record — truncated away, so appends never follow
// garbage that replay would stop at.
func Open(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("controlplane: create journal dir: %w", err)
	}
	path := journalPath(dir)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("controlplane: read journal: %w", err)
	}
	_, valid := DecodeRecords(data)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("controlplane: open journal: %w", err)
	}
	if valid < len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, fmt.Errorf("controlplane: truncate torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("controlplane: seek journal: %w", err)
	}
	return &Journal{dir: dir, f: f, size: int64(valid)}, nil
}

// Append frames, writes and fsyncs one record.
func (j *Journal) Append(rec *Record) error {
	frame, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("controlplane: journal closed")
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("controlplane: append %s record: %w", rec.Kind, err)
	}
	start := time.Now()
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("controlplane: fsync journal: %w", err)
	}
	us := uint64(time.Since(start).Microseconds())
	j.size += int64(len(frame))
	j.appends++
	j.bytes += uint64(len(frame))
	j.fsyncTotal += us
	if us > j.fsyncMax {
		j.fsyncMax = us
	}
	return nil
}

// Size returns the journal's current byte length (the rotation
// trigger's input).
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Rotate atomically replaces the journal with a single self-contained
// snapshot record: the new file is written beside the old one, fsynced,
// and renamed over it — a crash at any point leaves either the full old
// journal or the full new one, never a mix.
func (j *Journal) Rotate(snap *State, seq uint64) error {
	frame, err := encodeRecord(&Record{Kind: RecSnapshot, Seq: seq, State: snap})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("controlplane: journal closed")
	}
	path := journalPath(j.dir)
	tmp := path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("controlplane: rotate journal: %w", err)
	}
	if _, err := nf.Write(frame); err == nil {
		err = nf.Sync()
	}
	if cerr := nf.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("controlplane: rotate journal: %w", err)
	}
	j.f.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.f = nil
		return fmt.Errorf("controlplane: reopen rotated journal: %w", err)
	}
	j.f = f
	j.size = int64(len(frame))
	j.rotations++
	j.appends++
	j.bytes += uint64(len(frame))
	return nil
}

// Close closes the journal file. Append after Close errors.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Stats snapshots the journal-side counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		JournalAppends:   j.appends,
		JournalBytes:     j.bytes,
		Rotations:        j.rotations,
		FsyncTotalMicros: j.fsyncTotal,
		FsyncMaxMicros:   j.fsyncMax,
	}
}
