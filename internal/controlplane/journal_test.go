package controlplane

import (
	"os"
	"path/filepath"
	"testing"

	"seep/internal/plan"
)

func testState(nextSeq uint64) *State {
	return &State{
		Topology: "wordcount",
		Workers:  []string{"w1", "w2"},
		Placements: []Placed{
			{Inst: plan.InstanceID{Op: "src", Part: 1}, Addr: "w1"},
			{Inst: plan.InstanceID{Op: "count", Part: 1}, Addr: "w2"},
		},
		Instances: []OpInstances{
			{Op: "src", Insts: []plan.InstanceID{{Op: "src", Part: 1}}},
			{Op: "count", Insts: []plan.InstanceID{{Op: "count", Part: 1}}},
		},
		Routing:  []OpRouting{{Op: "count", Blob: []byte{1, 2, 3, 4}}},
		NextPart: []OpPart{{Op: "src", Next: 1}, {Op: "count", Next: 3}},
		Legacy:   []LegacyPair{{Old: plan.InstanceID{Op: "count", Part: 2}, Owner: plan.InstanceID{Op: "count", Part: 3}}},
		NextSeq:  nextSeq,
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*Record{
		{Kind: RecDeploy, Seq: 1, State: testState(1)},
		{Kind: RecStart, Seq: 2, StartUnixMillis: 12345},
		{Kind: RecIntent, Seq: 3, Action: "scale-out", Victims: []plan.InstanceID{{Op: "count", Part: 1}}, Pi: 2},
		{Kind: RecPlanned, Seq: 3, State: testState(3)},
		{Kind: RecCommit, Seq: 3},
		{Kind: RecShip, Ship: &ShipMark{Inst: plan.InstanceID{Op: "count", Part: 2}, Seq: 7, Bytes: 512}},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	if st.JournalAppends != uint64(len(recs)) {
		t.Fatalf("appends = %d, want %d", st.JournalAppends, len(recs))
	}
	if st.JournalBytes == 0 || j.Size() != int64(st.JournalBytes) {
		t.Fatalf("bytes = %d, size = %d", st.JournalBytes, j.Size())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != len(recs) {
		t.Fatalf("replayed %d records, want %d", rep.Records, len(recs))
	}
	if rep.State == nil || rep.State.Topology != "wordcount" {
		t.Fatalf("state = %+v", rep.State)
	}
	if !rep.State.Started || rep.State.StartUnixMillis != 12345 {
		t.Fatalf("start not applied: %+v", rep.State)
	}
	if len(rep.InDoubt) != 0 {
		t.Fatalf("committed transition left in doubt: %+v", rep.InDoubt)
	}
	if rep.LastSeq != 3 {
		t.Fatalf("last seq = %d, want 3", rep.LastSeq)
	}
}

func TestJournalInDoubtTransitions(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	v1 := plan.InstanceID{Op: "count", Part: 1}
	v2 := plan.InstanceID{Op: "count", Part: 2}
	trims := []Trim{{Up: plan.InstanceID{Op: "split", Part: 1}, Owner: v1, TS: 41}}
	must := func(r *Record) {
		t.Helper()
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	must(&Record{Kind: RecDeploy, Seq: 1, State: testState(1)})
	// Aborted intent: closed, not in doubt.
	must(&Record{Kind: RecIntent, Seq: 2, Action: "scale-out", Victims: []plan.InstanceID{v1}, Pi: 2})
	must(&Record{Kind: RecAbort, Seq: 2, Reason: "worker died"})
	// Planned merge with no commit: in doubt, trims preserved.
	must(&Record{Kind: RecIntent, Seq: 3, Action: "scale-in", Victims: []plan.InstanceID{v1, v2}})
	must(&Record{Kind: RecPlanned, Seq: 3, State: testState(3), Trims: trims})
	j.Close()

	rep, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.InDoubt) != 1 {
		t.Fatalf("in doubt = %+v, want exactly the unclosed merge", rep.InDoubt)
	}
	d := rep.InDoubt[0]
	if d.Seq != 3 || d.Action != "scale-in" || !d.Planned {
		t.Fatalf("in doubt = %+v", d)
	}
	if len(d.Trims) != 1 || d.Trims[0].TS != 41 {
		t.Fatalf("trims = %+v", d.Trims)
	}
	if len(d.Victims) != 2 || d.Victims[0] != v1 || d.Victims[1] != v2 {
		t.Fatalf("victims = %+v", d.Victims)
	}
}

// TestJournalTornTail proves the WAL discipline: a crash mid-append
// costs exactly the record being written, and reopening truncates the
// garbage so later appends replay cleanly.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&Record{Kind: RecDeploy, Seq: 1, State: testState(1)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&Record{Kind: RecStart, Seq: 2, StartUnixMillis: 99}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Tear the tail: chop the last record mid-frame.
	path := filepath.Join(dir, "journal.wal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 1 || rep.State.Started {
		t.Fatalf("torn tail should drop only the torn record: %+v", rep)
	}

	// Reopen, append, replay: the torn bytes must not shadow the new
	// record.
	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(&Record{Kind: RecStart, Seq: 2, StartUnixMillis: 77}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	rep, err = Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 2 || !rep.State.Started || rep.State.StartUnixMillis != 77 {
		t.Fatalf("append after torn-tail truncation lost: %+v", rep.State)
	}
}

func TestJournalRotate(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&Record{Kind: RecDeploy, Seq: 1, State: testState(1)}); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(2); seq < 10; seq++ {
		if err := j.Append(&Record{Kind: RecCommit, Seq: seq}); err != nil {
			t.Fatal(err)
		}
	}
	before := j.Size()
	if err := j.Rotate(testState(10), 10); err != nil {
		t.Fatal(err)
	}
	if j.Size() >= before {
		t.Fatalf("rotation did not shrink the journal: %d -> %d", before, j.Size())
	}
	// Appends continue after rotation and replay sees snapshot + tail.
	if err := j.Append(&Record{Kind: RecIntent, Seq: 11, Action: "recover", Victims: []plan.InstanceID{{Op: "count", Part: 3}}, Pi: 1}); err != nil {
		t.Fatal(err)
	}
	if j.Stats().Rotations != 1 {
		t.Fatalf("rotations = %d", j.Stats().Rotations)
	}
	j.Close()
	rep, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 2 || rep.State.NextSeq != 10 {
		t.Fatalf("post-rotation replay = %+v", rep)
	}
	if len(rep.InDoubt) != 1 || rep.InDoubt[0].Seq != 11 {
		t.Fatalf("in doubt after rotation = %+v", rep.InDoubt)
	}
	if rep.LastSeq != 11 {
		t.Fatalf("last seq = %d", rep.LastSeq)
	}
}

func TestReplayEmptyDirErrors(t *testing.T) {
	if _, err := Replay(t.TempDir()); err == nil {
		t.Fatal("replay of a missing journal should error")
	}
}

// FuzzJournalReplay mirrors the transport's FuzzDecodeBatchFrame: any
// byte stream must decode without panicking, and whatever prefix
// decodes must re-fold without panicking.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{journalVersion, byte(RecDeploy), 0, 0, 0, 0, 0, 0, 0, 0})
	if frame, err := encodeRecord(&Record{Kind: RecDeploy, Seq: 1, State: testState(1)}); err == nil {
		f.Add(frame)
		if start, err := encodeRecord(&Record{Kind: RecStart, Seq: 2, StartUnixMillis: 5}); err == nil {
			f.Add(append(append([]byte{}, frame...), start...))
		}
		// A torn frame and a bit-flipped CRC.
		f.Add(frame[:len(frame)-2])
		flipped := append([]byte{}, frame...)
		flipped[7] ^= 0xff
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, n := DecodeRecords(data)
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Folding whatever decoded must not panic either; the only
		// acceptable error is the no-deployment-snapshot case.
		_, _ = Fold(recs)
	})
}
