package stream

import (
	"fmt"
	"strings"
)

// TSVector holds one logical timestamp per input stream of an operator.
// τo in the paper: the timestamps of the most recent tuples from each
// input stream that are reflected in the operator's processing state.
type TSVector []int64

// NewTSVector returns a zeroed vector for n input streams.
func NewTSVector(n int) TSVector { return make(TSVector, n) }

// Clone returns an independent copy.
func (v TSVector) Clone() TSVector {
	if v == nil {
		return nil
	}
	out := make(TSVector, len(v))
	copy(out, v)
	return out
}

// Advance raises the timestamp for input stream i to ts if ts is newer.
// It reports whether the vector changed, i.e. whether ts was fresh. A
// stale ts (≤ current) indicates a duplicate tuple seen during replay.
func (v TSVector) Advance(i int, ts int64) bool {
	if i < 0 || i >= len(v) {
		return false
	}
	if ts <= v[i] {
		return false
	}
	v[i] = ts
	return true
}

// Get returns the timestamp for input stream i (0 when out of range, which
// is the "nothing processed" value).
func (v TSVector) Get(i int) int64 {
	if i < 0 || i >= len(v) {
		return 0
	}
	return v[i]
}

// DominatedBy reports whether every component of v is ≤ the matching
// component of w. A checkpoint with vector v supersedes buffered tuples
// up to v; a newer checkpoint w dominates an older one v.
func (v TSVector) DominatedBy(w TSVector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] > w[i] {
			return false
		}
	}
	return true
}

// Merge raises every component of v to at least the matching component of
// w, growing v if needed, and returns the result. Used when unioning the
// state of two partitions during scale-in.
func (v TSVector) Merge(w TSVector) TSVector {
	out := v
	for len(out) < len(w) {
		out = append(out, 0)
	}
	for i := range w {
		if w[i] > out[i] {
			out[i] = w[i]
		}
	}
	return out
}

// Equal reports component-wise equality.
func (v TSVector) Equal(w TSVector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// String renders the vector as (τ1, τ2, ...).
func (v TSVector) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, ts := range v {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%d", ts)
	}
	sb.WriteByte(')')
	return sb.String()
}
