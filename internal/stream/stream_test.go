package stream

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKeyOfStringMatchesKeyOf(t *testing.T) {
	inputs := []string{"", "a", "first", "second set", "日本語", "the quick brown fox"}
	for _, s := range inputs {
		if got, want := KeyOfString(s), KeyOf([]byte(s)); got != want {
			t.Errorf("KeyOfString(%q) = %d, KeyOf = %d", s, got, want)
		}
	}
}

func TestKeyOfStringMatchesKeyOfQuick(t *testing.T) {
	f := func(s string) bool { return KeyOfString(s) == KeyOf([]byte(s)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	prev := c.Last()
	if prev != 0 {
		t.Fatalf("zero clock Last() = %d, want 0", prev)
	}
	for i := 0; i < 1000; i++ {
		ts := c.Next()
		if ts <= prev {
			t.Fatalf("clock went backwards: %d after %d", ts, prev)
		}
		prev = ts
	}
	if c.Last() != prev {
		t.Errorf("Last() = %d, want %d", c.Last(), prev)
	}
}

func TestClockReset(t *testing.T) {
	var c Clock
	for i := 0; i < 10; i++ {
		c.Next()
	}
	c.Reset(3)
	if got := c.Next(); got != 4 {
		t.Errorf("after Reset(3), Next() = %d, want 4", got)
	}
}

func TestTSVectorAdvance(t *testing.T) {
	v := NewTSVector(2)
	if !v.Advance(0, 5) {
		t.Error("Advance(0, 5) on zero vector should report fresh")
	}
	if v.Advance(0, 5) {
		t.Error("Advance(0, 5) twice should report duplicate")
	}
	if v.Advance(0, 3) {
		t.Error("Advance(0, 3) after 5 should report duplicate")
	}
	if !v.Advance(1, 1) {
		t.Error("Advance(1, 1) should be fresh")
	}
	if v.Advance(7, 1) {
		t.Error("Advance out of range should report false")
	}
	if got := v.Get(0); got != 5 {
		t.Errorf("Get(0) = %d, want 5", got)
	}
	if got := v.Get(9); got != 0 {
		t.Errorf("Get out of range = %d, want 0", got)
	}
}

func TestTSVectorDominatedBy(t *testing.T) {
	cases := []struct {
		v, w TSVector
		want bool
	}{
		{TSVector{1, 2}, TSVector{1, 2}, true},
		{TSVector{1, 2}, TSVector{2, 2}, true},
		{TSVector{3, 2}, TSVector{2, 2}, false},
		{TSVector{1}, TSVector{1, 2}, false}, // length mismatch
		{nil, nil, true},
	}
	for _, c := range cases {
		if got := c.v.DominatedBy(c.w); got != c.want {
			t.Errorf("%v.DominatedBy(%v) = %v, want %v", c.v, c.w, got, c.want)
		}
	}
}

func TestTSVectorMerge(t *testing.T) {
	v := TSVector{1, 5}
	w := TSVector{3, 2, 7}
	got := v.Merge(w)
	want := TSVector{3, 5, 7}
	if !got.Equal(want) {
		t.Errorf("Merge = %v, want %v", got, want)
	}
}

func TestTSVectorMergeDominates(t *testing.T) {
	f := func(a, b []int64) bool {
		v := TSVector(a).Clone()
		w := TSVector(b)
		m := v.Merge(w)
		// The merge must dominate both inputs component-wise.
		for i := range a {
			if m[i] < a[i] {
				return false
			}
		}
		for i := range b {
			if m[i] < b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTSVectorClone(t *testing.T) {
	v := TSVector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone aliases the original")
	}
	if TSVector(nil).Clone() != nil {
		t.Error("Clone(nil) should be nil")
	}
}

func TestTSVectorString(t *testing.T) {
	if got := (TSVector{1, 4}).String(); got != "(1, 4)" {
		t.Errorf("String() = %q, want %q", got, "(1, 4)")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.Uint64(math.MaxUint64)
	e.Int64(-42)
	e.Uint32(7)
	e.Int32(-7)
	e.Uint8(255)
	e.Bool(true)
	e.Bool(false)
	e.Float64(3.14159)
	e.Bytes32([]byte{1, 2, 3})
	e.String32("hello")
	e.Key(Key(12345))
	e.TSVector(TSVector{9, 8, 7})

	d := NewDecoder(e.Bytes())
	if got := d.Uint64(); got != math.MaxUint64 {
		t.Errorf("Uint64 = %d", got)
	}
	if got := d.Int64(); got != -42 {
		t.Errorf("Int64 = %d", got)
	}
	if got := d.Uint32(); got != 7 {
		t.Errorf("Uint32 = %d", got)
	}
	if got := d.Int32(); got != -7 {
		t.Errorf("Int32 = %d", got)
	}
	if got := d.Uint8(); got != 255 {
		t.Errorf("Uint8 = %d", got)
	}
	if got := d.Bool(); got != true {
		t.Errorf("Bool = %v", got)
	}
	if got := d.Bool(); got != false {
		t.Errorf("Bool = %v", got)
	}
	if got := d.Float64(); got != 3.14159 {
		t.Errorf("Float64 = %v", got)
	}
	if got := d.Bytes32(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Bytes32 = %v", got)
	}
	if got := d.String32(); got != "hello" {
		t.Errorf("String32 = %q", got)
	}
	if got := d.Key(); got != Key(12345) {
		t.Errorf("Key = %d", got)
	}
	if got := d.TSVector(); !got.Equal(TSVector{9, 8, 7}) {
		t.Errorf("TSVector = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Errorf("Err = %v", err)
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", d.Remaining())
	}
}

func TestCodecQuickRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, s string, b []byte, fl float64, ok bool) bool {
		e := NewEncoder(0)
		e.Uint64(u)
		e.Int64(i)
		e.String32(s)
		e.Bytes32(b)
		e.Float64(fl)
		e.Bool(ok)
		d := NewDecoder(e.Bytes())
		gotU := d.Uint64()
		gotI := d.Int64()
		gotS := d.String32()
		gotB := d.Bytes32()
		gotF := d.Float64()
		gotOK := d.Bool()
		if d.Err() != nil || d.Remaining() != 0 {
			return false
		}
		if gotU != u || gotI != i || gotS != s || gotOK != ok {
			return false
		}
		if len(gotB) != len(b) {
			return false
		}
		for j := range b {
			if gotB[j] != b[j] {
				return false
			}
		}
		// NaN != NaN; compare bit patterns.
		return math.Float64bits(gotF) == math.Float64bits(fl)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecoderShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.Uint64()
	if d.Err() == nil {
		t.Fatal("expected error reading past end")
	}
	// After an error, further reads are no-ops returning zeros.
	if got := d.Uint32(); got != 0 {
		t.Errorf("read after error = %d, want 0", got)
	}
}

func TestDecoderCorruptTSVector(t *testing.T) {
	e := NewEncoder(8)
	e.Uint32(1 << 30) // absurd length
	d := NewDecoder(e.Bytes())
	if v := d.TSVector(); v != nil {
		t.Errorf("TSVector on corrupt input = %v, want nil", v)
	}
	if d.Err() == nil {
		t.Error("expected error on corrupt ts vector length")
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(16)
	e.Uint64(1)
	e.Reset()
	if e.Len() != 0 {
		t.Errorf("Len after Reset = %d", e.Len())
	}
	e.Uint32(5)
	if e.Len() != 4 {
		t.Errorf("Len = %d, want 4", e.Len())
	}
}

func TestTupleString(t *testing.T) {
	tu := Tuple{TS: 3, Key: 7, Payload: "x"}
	if got := tu.String(); got != "{τ=3 k=7 p=x}" {
		t.Errorf("String() = %q", got)
	}
}
