package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Encoder serialises values into a byte slice using little-endian fixed
// width integers and length-prefixed byte strings. It is the hand-rolled
// stdlib-only wire format used for processing-state values, checkpoints
// and tuple payloads that must be measured or shipped between VMs.
//
// The zero value is an empty encoder ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with capacity pre-allocated for n bytes.
func NewEncoder(n int) *Encoder { return &Encoder{buf: make([]byte, 0, n)} }

// Bytes returns the encoded buffer. The buffer is owned by the encoder
// until Reset is called; callers that retain it should copy.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the buffer contents, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Truncate discards everything encoded after offset n (from Len),
// letting a caller roll back a partially written value — e.g. a payload
// codec that failed halfway and falls back to another encoding.
func (e *Encoder) Truncate(n int) {
	if n >= 0 && n <= len(e.buf) {
		e.buf = e.buf[:n]
	}
}

// Uint64 appends a fixed-width 64-bit unsigned integer.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// Int64 appends a fixed-width 64-bit signed integer.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Uint32 appends a fixed-width 32-bit unsigned integer.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// Int32 appends a fixed-width 32-bit signed integer.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint8 appends a single byte.
func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint8(1)
	} else {
		e.Uint8(0)
	}
}

// Float64 appends an IEEE-754 double.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Bytes32 appends a byte string with a 32-bit length prefix.
func (e *Encoder) Bytes32(b []byte) {
	e.Uint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String32 appends a string with a 32-bit length prefix.
func (e *Encoder) String32(s string) {
	e.Uint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Uvarint appends an unsigned integer in LEB128 variable-width
// encoding: small values cost one byte instead of eight, which is what
// makes the binary batch frames compact.
func (e *Encoder) Uvarint(v uint64) {
	if v < 0x80 { // one-byte fast path: most counts, lengths and deltas
		e.buf = append(e.buf, byte(v))
		return
	}
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Varint appends a signed integer zigzag-encoded, so small magnitudes of
// either sign stay short (timestamp and clock deltas).
func (e *Encoder) Varint(v int64) {
	if zz := uint64(v<<1) ^ uint64(v>>63); zz < 0x80 { // one-byte fast path
		e.buf = append(e.buf, byte(zz))
		return
	}
	e.buf = binary.AppendVarint(e.buf, v)
}

// BytesV appends a byte string with a uvarint length prefix.
func (e *Encoder) BytesV(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// StringV appends a string with a uvarint length prefix, without an
// intermediate []byte conversion.
func (e *Encoder) StringV(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Key appends a partitioning key.
func (e *Encoder) Key(k Key) { e.Uint64(uint64(k)) }

// TSVector appends a timestamp vector with a 32-bit length prefix.
func (e *Encoder) TSVector(v TSVector) {
	e.Uint32(uint32(len(v)))
	for _, ts := range v {
		e.Int64(ts)
	}
}

// ErrShortBuffer is returned by Decoder methods when the underlying buffer
// does not contain enough bytes for the requested value.
var ErrShortBuffer = errors.New("stream: decode past end of buffer")

// Decoder reads values written by Encoder. Decoder methods record the
// first error and become no-ops afterwards; check Err once at the end.
type Decoder struct {
	buf  []byte
	off  int
	err  error
	view string // lazy immutable copy of buf; see StringV
}

// NewDecoder wraps a buffer produced by Encoder.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrShortBuffer, n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint64 reads a fixed-width 64-bit unsigned integer.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int64 reads a fixed-width 64-bit signed integer.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Uint32 reads a fixed-width 32-bit unsigned integer.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Int32 reads a fixed-width 32-bit signed integer.
func (d *Decoder) Int32() int32 { return int32(d.Uint32()) }

// Uint8 reads a single byte.
func (d *Decoder) Uint8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean encoded as one byte.
func (d *Decoder) Bool() bool { return d.Uint8() != 0 }

// Float64 reads an IEEE-754 double.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Bytes32 reads a 32-bit length-prefixed byte string. The returned slice
// aliases the decoder's buffer; copy if retained.
func (d *Decoder) Bytes32() []byte {
	n := int(d.Uint32())
	return d.take(n)
}

// String32 reads a 32-bit length-prefixed string.
func (d *Decoder) String32() string { return string(d.Bytes32()) }

// Uvarint reads a LEB128 variable-width unsigned integer.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off < len(d.buf) { // one-byte fast path
		if b := d.buf[d.off]; b < 0x80 {
			d.off++
			return uint64(b)
		}
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("%w: truncated or oversized uvarint at offset %d", ErrShortBuffer, d.off)
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zigzag-encoded signed integer.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	if d.off < len(d.buf) { // one-byte fast path
		if b := d.buf[d.off]; b < 0x80 {
			d.off++
			return int64(b>>1) ^ -int64(b&1)
		}
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("%w: truncated or oversized varint at offset %d", ErrShortBuffer, d.off)
		return 0
	}
	d.off += n
	return v
}

// BytesV reads a uvarint length-prefixed byte string. The returned slice
// aliases the decoder's buffer; copy if retained.
func (d *Decoder) BytesV() []byte {
	n := d.Uvarint()
	if n > uint64(d.Remaining()) {
		if d.err == nil {
			d.err = fmt.Errorf("%w: byte string of length %d", ErrShortBuffer, n)
		}
		return nil
	}
	return d.take(int(n))
}

// StringV reads a uvarint length-prefixed string. The first call
// materialises one immutable copy of the whole buffer and every string
// is sliced out of it, so decoding a frame full of string payloads
// costs one allocation total instead of one per string. The copy also
// makes the results safe to retain past a reused read buffer.
func (d *Decoder) StringV() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n == 0 {
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.err = fmt.Errorf("%w: string of length %d", ErrShortBuffer, n)
		return ""
	}
	if d.view == "" {
		d.view = string(d.buf)
	}
	s := d.view[d.off : d.off+int(n)]
	d.off += int(n)
	return s
}

// Key reads a partitioning key.
func (d *Decoder) Key() Key { return Key(d.Uint64()) }

// TSVector reads a timestamp vector written by Encoder.TSVector.
func (d *Decoder) TSVector() TSVector {
	n := int(d.Uint32())
	if d.err != nil || n < 0 {
		return nil
	}
	const maxReasonable = 1 << 20
	if n > maxReasonable || n*8 > d.Remaining() {
		d.err = fmt.Errorf("%w: ts vector of length %d", ErrShortBuffer, n)
		return nil
	}
	v := make(TSVector, n)
	for i := range v {
		v[i] = d.Int64()
	}
	return v
}
