// Package stream defines the data model of the stream processing system:
// tuples with logical timestamps and partitioning keys, timestamp vectors
// that track progress across multiple input streams, and binary codecs for
// tuple payloads.
//
// The model follows §2.2 of the paper: a stream is an infinite series of
// tuples t = (τ, k, p) where τ is a logical timestamp assigned by a
// monotonically increasing per-operator clock, k is a key used to partition
// tuples across scaled-out operator instances, and p is an arbitrary payload.
package stream

import (
	"fmt"
	"hash/fnv"
)

// Key identifies the partition of a tuple. Keys are not unique; they are
// typically computed as a hash of (part of) the payload and used to route
// tuples to partitioned downstream operators and to index processing state.
type Key uint64

// MaxKey is the largest possible key. Routing intervals are inclusive on
// both ends so that the full key space [0, MaxKey] can be covered exactly.
const MaxKey = Key(^uint64(0))

// KeyOf hashes an arbitrary byte string into the key space. The raw
// FNV-1a value is passed through an avalanche finaliser: FNV alone
// distributes the high bits of short, similar strings poorly, and range
// partitioning (§3.2) needs keys that are uniform across the whole
// space.
func KeyOf(b []byte) Key {
	h := fnv.New64a()
	h.Write(b)
	return Key(Mix64(h.Sum64()))
}

// KeyOfString hashes a string into the key space without allocating. It
// computes the same value as KeyOf.
func KeyOfString(s string) Key {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	sum := uint64(offset64)
	for i := 0; i < len(s); i++ {
		sum ^= uint64(s[i])
		sum *= prime64
	}
	return Key(Mix64(sum))
}

// Mix64 is the 64-bit avalanche finaliser from MurmurHash3 (fmix64):
// every input bit affects every output bit, turning a weakly distributed
// hash into one suitable for range partitioning.
func Mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Tuple is the unit of data flowing between operators.
//
// TS is the logical timestamp assigned by the emitting operator's clock.
// Timestamps are monotonically increasing per (emitting operator, output
// stream) pair, so downstream operators can detect duplicates after replay
// by discarding tuples with timestamps at or below their restored clock.
type Tuple struct {
	// TS is the logical timestamp assigned at emission.
	TS int64
	// Key selects the partition; state for this tuple lives under this key.
	Key Key
	// Born is the time (milliseconds since run start) when the tuple's
	// lineage entered the system at a source. It is propagated through
	// operators so sinks can measure end-to-end processing latency.
	Born int64
	// Payload is the operator-specific record carried by the tuple.
	Payload any
}

// String renders the tuple for logs and tests.
func (t Tuple) String() string {
	return fmt.Sprintf("{τ=%d k=%d p=%v}", t.TS, t.Key, t.Payload)
}

// Clock is a monotonically increasing logical clock used by operators to
// stamp output tuples. The zero value is ready to use. Clock is not safe
// for concurrent use; each operator instance owns one clock per output.
type Clock struct {
	last int64
}

// Next returns the next timestamp, strictly greater than all previous ones.
func (c *Clock) Next() int64 {
	c.last++
	return c.last
}

// NextN reserves n consecutive timestamps and returns the first, so a
// batch of emissions is stamped with one clock touch. NextN(1) equals
// Next(); n < 1 reserves nothing and returns the would-be next value.
func (c *Clock) NextN(n int) int64 {
	if n < 1 {
		return c.last + 1
	}
	first := c.last + 1
	c.last += int64(n)
	return first
}

// Last returns the most recently issued timestamp (0 if none).
func (c *Clock) Last() int64 { return c.last }

// Reset rewinds the clock to ts, so the next timestamp is ts+1. Used when
// restoring an operator from a checkpoint: the restored operator resumes
// stamping where the checkpoint left off and downstream operators discard
// duplicates (§3.2, restore-state).
func (c *Clock) Reset(ts int64) { c.last = ts }
