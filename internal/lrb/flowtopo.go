package lrb

import (
	"seep/internal/flow"
	"seep/internal/plan"
)

// FlowOps returns the flow-level LRB topology with per-tuple costs
// calibrated against the paper's reported allocation at L=350 / 50 VMs:
// the toll calculator is partitioned the most, followed by the forwarder
// (§6.1). With capacity-1.0 VMs and the 70 % threshold, the calibration
// below reproduces that ordering and an end allocation of ≈50 VMs at
// 600 k tuples/s.
//
// Edge fractions: ~99 % of input tuples are position reports (to the
// toll calculator via the forwarder), ~1 % are balance queries; toll
// notifications flow to the collector, balance responses to the balance
// account operator.
func FlowOps() ([]flow.OpConfig, []flow.Edge) {
	ops := []flow.OpConfig{
		{ID: "feeder", Role: plan.RoleSource},
		{ID: "forwarder", Role: plan.RoleStateless, CostPerTuple: 1.2e-5, Selectivity: 1.0},
		{ID: "tollcalc", Role: plan.RoleStateful, CostPerTuple: 2.4e-5, Selectivity: 1.0, Stateful: true},
		{ID: "assessment", Role: plan.RoleStateful, CostPerTuple: 0.6e-5, Selectivity: 1.0, Stateful: true},
		{ID: "collector", Role: plan.RoleStateless, CostPerTuple: 0.2e-5, Selectivity: 1.0},
		{ID: "balance", Role: plan.RoleStateful, CostPerTuple: 0.6e-5, Selectivity: 1.0, Stateful: true},
		{ID: "sink", Role: plan.RoleSink},
	}
	edges := []flow.Edge{
		{From: "feeder", To: "forwarder", Fraction: 1.0},
		{From: "forwarder", To: "tollcalc", Fraction: 1.0},
		{From: "tollcalc", To: "assessment", Fraction: 1.0},
		{From: "assessment", To: "collector", Fraction: 0.95},
		{From: "assessment", To: "balance", Fraction: 0.05},
		{From: "collector", To: "sink", Fraction: 1.0},
		{From: "balance", To: "sink", Fraction: 1.0},
	}
	return ops, edges
}
