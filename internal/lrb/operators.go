package lrb

import (
	"sort"
	"sync"

	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/stream"
)

// Output payloads flowing between LRB operators.

// TollNotification is emitted by the toll calculator for each position
// report entering a tolled segment: the vehicle is told the segment toll
// (LRB requires delivery within 5 s).
type TollNotification struct {
	VID  int32
	XWay int32
	Seg  int32
	Toll int32
	// Accident is set when the segment has an active accident (toll 0).
	Accident bool
}

// BalanceResponse answers a balance query with the vehicle's accumulated
// tolls.
type BalanceResponse struct {
	VID     int32
	QID     int32
	Balance int64
}

// Forwarder routes input tuples by type (§6.1): position reports are
// re-keyed by segment for the toll calculator; balance queries are
// re-keyed by vehicle for the toll assessment operator. It is the
// stateless fan-out stage that the paper's scale-out partitions second
// after the toll calculator.
func Forwarder() operator.Operator {
	return operator.Func(func(_ operator.Context, t stream.Tuple, emit operator.Emitter) {
		r, ok := t.Payload.(Report)
		if !ok {
			return
		}
		switch r.Type {
		case TypePosition:
			emit(SegmentKey(r.XWay, r.Dir, r.Seg), r)
		case TypeBalance:
			emit(VehicleKey(r.VID), r)
		}
	})
}

// segStats is the per-segment processing state of the toll calculator.
type segStats struct {
	xway, dir, seg int32
	// ewmaSpeed is the exponentially weighted average speed.
	ewmaSpeed float64
	// cars counts position reports in the current statistics window.
	cars int64
	// stoppedReports counts consecutive stopped-vehicle reports; ≥
	// accidentThreshold flags an accident.
	stoppedReports int32
	accident       bool
}

// TollCalculator is the stateful heart of the LRB query ("the main
// computational bottleneck", §6.1): it maintains per-segment traffic
// statistics keyed by SegmentKey, detects accidents from stopped-vehicle
// reports, and emits toll notifications. Balance queries pass through
// unchanged (they are keyed for the downstream assessment operator).
type TollCalculator struct {
	// AccidentThreshold is how many stopped reports flag an accident
	// (4 in the benchmark; lower in small tests).
	AccidentThreshold int32

	mu    sync.Mutex
	stats map[stream.Key]*segStats
}

// NewTollCalculator returns a toll calculator with benchmark defaults.
func NewTollCalculator() *TollCalculator {
	return &TollCalculator{AccidentThreshold: 4, stats: make(map[stream.Key]*segStats)}
}

// OnTuple implements operator.Operator.
func (tc *TollCalculator) OnTuple(_ operator.Context, t stream.Tuple, emit operator.Emitter) {
	r, ok := t.Payload.(Report)
	if !ok {
		return
	}
	if r.Type == TypeBalance {
		// Pass through to the assessment stage, keyed by vehicle.
		emit(VehicleKey(r.VID), r)
		return
	}
	tc.mu.Lock()
	s := tc.stats[t.Key]
	if s == nil {
		s = &segStats{xway: r.XWay, dir: r.Dir, seg: r.Seg, ewmaSpeed: float64(r.Speed)}
		tc.stats[t.Key] = s
	}
	s.cars++
	const alpha = 0.1
	s.ewmaSpeed = (1-alpha)*s.ewmaSpeed + alpha*float64(r.Speed)
	if r.Speed == 0 {
		s.stoppedReports++
		if s.stoppedReports >= tc.AccidentThreshold {
			s.accident = true
		}
	} else if s.stoppedReports > 0 {
		s.stoppedReports--
		if s.stoppedReports == 0 {
			s.accident = false
		}
	}
	toll := tollFor(s)
	accident := s.accident
	tc.mu.Unlock()

	emit(VehicleKey(r.VID), TollNotification{
		VID: r.VID, XWay: r.XWay, Seg: r.Seg, Toll: toll, Accident: accident,
	})
}

// tollFor computes the LRB toll formula: tolls rise with congestion
// (slow average speed), and accidents suspend tolling.
func tollFor(s *segStats) int32 {
	if s.accident || s.ewmaSpeed >= 40 {
		return 0
	}
	base := 2 * (40 - s.ewmaSpeed)
	if base < 0 {
		base = 0
	}
	return int32(base)
}

// SnapshotKV implements operator.Stateful.
func (tc *TollCalculator) SnapshotKV() map[stream.Key][]byte {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	out := make(map[stream.Key][]byte, len(tc.stats))
	for k, s := range tc.stats {
		e := stream.NewEncoder(40)
		e.Int32(s.xway)
		e.Int32(s.dir)
		e.Int32(s.seg)
		e.Float64(s.ewmaSpeed)
		e.Int64(s.cars)
		e.Int32(s.stoppedReports)
		e.Bool(s.accident)
		out[k] = e.Bytes()
	}
	return out
}

// RestoreKV implements operator.Stateful.
func (tc *TollCalculator) RestoreKV(kv map[stream.Key][]byte) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.stats = make(map[stream.Key]*segStats, len(kv))
	for k, v := range kv {
		d := stream.NewDecoder(v)
		s := &segStats{
			xway:           d.Int32(),
			dir:            d.Int32(),
			seg:            d.Int32(),
			ewmaSpeed:      d.Float64(),
			cars:           d.Int64(),
			stoppedReports: d.Int32(),
			accident:       d.Bool(),
		}
		if d.Err() == nil {
			tc.stats[k] = s
		}
	}
}

// Segments returns the number of tracked segments (for tests).
func (tc *TollCalculator) Segments() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return len(tc.stats)
}

// CarsTotal returns the total position reports reflected in state.
func (tc *TollCalculator) CarsTotal() int64 {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	var n int64
	for _, s := range tc.stats {
		n += s.cars
	}
	return n
}

// TollAssessment is the stateful per-vehicle accounting operator: it
// accumulates assessed tolls per vehicle (keyed by VehicleKey) and
// answers balance queries. Toll notifications pass through to the
// collector.
type TollAssessment struct {
	mu       sync.Mutex
	balances map[stream.Key]*vehicleAccount
}

type vehicleAccount struct {
	vid     int32
	balance int64
}

// NewTollAssessment returns an empty assessment operator.
func NewTollAssessment() *TollAssessment {
	return &TollAssessment{balances: make(map[stream.Key]*vehicleAccount)}
}

// OnTuple implements operator.Operator.
func (ta *TollAssessment) OnTuple(_ operator.Context, t stream.Tuple, emit operator.Emitter) {
	switch p := t.Payload.(type) {
	case TollNotification:
		ta.mu.Lock()
		acc := ta.balances[t.Key]
		if acc == nil {
			acc = &vehicleAccount{vid: p.VID}
			ta.balances[t.Key] = acc
		}
		acc.balance += int64(p.Toll)
		ta.mu.Unlock()
		// Notification continues to the collector, keyed by vehicle.
		emit(t.Key, p)
	case Report:
		if p.Type != TypeBalance {
			return
		}
		ta.mu.Lock()
		var bal int64
		if acc := ta.balances[t.Key]; acc != nil {
			bal = acc.balance
		}
		ta.mu.Unlock()
		emit(t.Key, BalanceResponse{VID: p.VID, QID: p.QID, Balance: bal})
	}
}

// SnapshotKV implements operator.Stateful.
func (ta *TollAssessment) SnapshotKV() map[stream.Key][]byte {
	ta.mu.Lock()
	defer ta.mu.Unlock()
	out := make(map[stream.Key][]byte, len(ta.balances))
	for k, acc := range ta.balances {
		e := stream.NewEncoder(12)
		e.Int32(acc.vid)
		e.Int64(acc.balance)
		out[k] = e.Bytes()
	}
	return out
}

// RestoreKV implements operator.Stateful.
func (ta *TollAssessment) RestoreKV(kv map[stream.Key][]byte) {
	ta.mu.Lock()
	defer ta.mu.Unlock()
	ta.balances = make(map[stream.Key]*vehicleAccount, len(kv))
	for k, v := range kv {
		d := stream.NewDecoder(v)
		acc := &vehicleAccount{vid: d.Int32(), balance: d.Int64()}
		if d.Err() == nil {
			ta.balances[k] = acc
		}
	}
}

// Balance returns a vehicle's accumulated tolls (for tests).
func (ta *TollAssessment) Balance(vid int32) int64 {
	ta.mu.Lock()
	defer ta.mu.Unlock()
	if acc := ta.balances[VehicleKey(vid)]; acc != nil {
		return acc.balance
	}
	return 0
}

// Vehicles returns the number of tracked accounts.
func (ta *TollAssessment) Vehicles() int {
	ta.mu.Lock()
	defer ta.mu.Unlock()
	return len(ta.balances)
}

// TollCollector is the stateless operator gathering toll notifications
// for delivery (ignores balance responses, which flow to the balance
// account operator).
func TollCollector() operator.Operator {
	return operator.Func(func(_ operator.Context, t stream.Tuple, emit operator.Emitter) {
		if n, ok := t.Payload.(TollNotification); ok {
			emit(t.Key, n)
		}
	})
}

// BalanceAccount is the stateful aggregation of balance responses (§6.1:
// "receives the balance account notifications and aggregates the
// results"). It tracks the latest answered balance per vehicle and
// forwards responses to the sink.
type BalanceAccount struct {
	mu     sync.Mutex
	latest map[stream.Key]int64
}

// NewBalanceAccount returns an empty balance aggregator.
func NewBalanceAccount() *BalanceAccount {
	return &BalanceAccount{latest: make(map[stream.Key]int64)}
}

// OnTuple implements operator.Operator.
func (ba *BalanceAccount) OnTuple(_ operator.Context, t stream.Tuple, emit operator.Emitter) {
	r, ok := t.Payload.(BalanceResponse)
	if !ok {
		return
	}
	ba.mu.Lock()
	ba.latest[t.Key] = r.Balance
	ba.mu.Unlock()
	emit(t.Key, r)
}

// SnapshotKV implements operator.Stateful.
func (ba *BalanceAccount) SnapshotKV() map[stream.Key][]byte {
	ba.mu.Lock()
	defer ba.mu.Unlock()
	out := make(map[stream.Key][]byte, len(ba.latest))
	for k, v := range ba.latest {
		e := stream.NewEncoder(8)
		e.Int64(v)
		out[k] = e.Bytes()
	}
	return out
}

// RestoreKV implements operator.Stateful.
func (ba *BalanceAccount) RestoreKV(kv map[stream.Key][]byte) {
	ba.mu.Lock()
	defer ba.mu.Unlock()
	ba.latest = make(map[stream.Key]int64, len(kv))
	for k, v := range kv {
		d := stream.NewDecoder(v)
		ba.latest[k] = d.Int64()
	}
}

// Answered returns the number of vehicles with answered balances.
func (ba *BalanceAccount) Answered() int {
	ba.mu.Lock()
	defer ba.mu.Unlock()
	return len(ba.latest)
}

// Per-tuple CPU costs calibrated for capacity-1 VMs. Cost ratios follow
// the partitioned allocation the paper reports (toll calculator most
// expensive, then forwarder).
const (
	CostForwarder  = 0.00005
	CostTollCalc   = 0.00012
	CostAssessment = 0.00006
	CostCollector  = 0.00002
	CostBalance    = 0.00002
)

// Query builds the paper's LRB query graph (Fig. 5).
func Query() *plan.Query {
	q := plan.NewQuery()
	q.AddOp(plan.OpSpec{ID: "feeder", Role: plan.RoleSource})
	q.AddOp(plan.OpSpec{ID: "forwarder", Role: plan.RoleStateless, CostPerTuple: CostForwarder})
	q.AddOp(plan.OpSpec{ID: "tollcalc", Role: plan.RoleStateful, CostPerTuple: CostTollCalc})
	q.AddOp(plan.OpSpec{ID: "assessment", Role: plan.RoleStateful, CostPerTuple: CostAssessment})
	q.AddOp(plan.OpSpec{ID: "collector", Role: plan.RoleStateless, CostPerTuple: CostCollector})
	q.AddOp(plan.OpSpec{ID: "balance", Role: plan.RoleStateful, CostPerTuple: CostBalance})
	q.AddOp(plan.OpSpec{ID: "sink", Role: plan.RoleSink})
	q.Connect("feeder", "forwarder")
	q.Connect("forwarder", "tollcalc")
	q.Connect("tollcalc", "assessment")
	q.Connect("assessment", "collector")
	q.Connect("assessment", "balance")
	q.Connect("collector", "sink")
	q.Connect("balance", "sink")
	return q
}

// Factories returns the operator factories for Query.
func Factories() map[plan.OpID]func() operator.Operator {
	return map[plan.OpID]func() operator.Operator{
		"forwarder":  func() operator.Operator { return Forwarder() },
		"tollcalc":   func() operator.Operator { return NewTollCalculator() },
		"assessment": func() operator.Operator { return NewTollAssessment() },
		"collector":  func() operator.Operator { return TollCollector() },
		"balance":    func() operator.Operator { return NewBalanceAccount() },
	}
}

// SortedVIDs returns the vehicle IDs present in an assessment snapshot,
// for deterministic test assertions.
func SortedVIDs(ta *TollAssessment) []int32 {
	ta.mu.Lock()
	defer ta.mu.Unlock()
	out := make([]int32, 0, len(ta.balances))
	for _, acc := range ta.balances {
		out = append(out, acc.vid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
