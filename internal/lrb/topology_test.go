package lrb

import (
	"reflect"
	"testing"
)

// TestTopologyMatchesQuery pins the fluent Topology() declaration to the
// plan-level Query() used by the experiment harness: same operators,
// same specs, same streams.
func TestTopologyMatchesQuery(t *testing.T) {
	topo, err := Topology()
	if err != nil {
		t.Fatal(err)
	}
	got, want := topo.Query(), Query()
	if !reflect.DeepEqual(got.Ops(), want.Ops()) {
		t.Errorf("operators: fluent %v != plan %v", got.Ops(), want.Ops())
	}
	for _, id := range want.Ops() {
		if g, w := got.Op(id), want.Op(id); g == nil || *g != *w {
			t.Errorf("spec %q: fluent %+v != plan %+v", id, g, w)
		}
	}
	if !reflect.DeepEqual(got.Streams(), want.Streams()) {
		t.Errorf("streams: fluent %v != plan %v", got.Streams(), want.Streams())
	}
}
