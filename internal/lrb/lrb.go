// Package lrb implements the Linear Road Benchmark workload (Arasu et
// al., VLDB 2004) as used in the paper's evaluation (§6.1): a variable
// tolling network of L express-ways where vehicles emit position reports
// and issue account-balance queries, and the system must compute tolls,
// detect accidents and answer balance queries within 5 seconds.
//
// Two forms are provided:
//
//   - a tuple-level implementation — input generator plus the paper's
//     seven-operator query (Fig. 5): data feeder → forwarder → toll
//     calculator* → toll assessment* → {toll collector, balance
//     account*} → sink — executable on the tuple-level simulator and the
//     live engine;
//   - a flow-level topology with per-tuple costs calibrated so the
//     paper's L=350/50-VM scale-out experiments can be reproduced with
//     the fluid simulator (Figs. 6, 7, 9, 10).
package lrb

import (
	"math"
	"math/rand"

	"seep/internal/stream"
)

// Tuple types of the LRB input stream.
const (
	// TypePosition is a vehicle position report (LRB type 0).
	TypePosition = 0
	// TypeBalance is an account balance query (LRB type 2).
	TypeBalance = 2
)

// Report is the payload of every LRB input tuple.
type Report struct {
	// Type is TypePosition or TypeBalance.
	Type int
	// VID identifies the vehicle.
	VID int32
	// Speed is the reported speed in mph (0 for stopped vehicles).
	Speed int32
	// XWay is the express-way number [0, L).
	XWay int32
	// Seg is the segment number [0, 100).
	Seg int32
	// Lane is the lane number [0, 4]; lane 4 is the exit ramp.
	Lane int32
	// Dir is the direction (0 east, 1 west).
	Dir int32
	// QID is the query ID for balance queries.
	QID int32
}

// SegmentKey keys a report by its (xway, dir, seg) triple — the
// partitioning key of the toll calculator.
func SegmentKey(xway, dir, seg int32) stream.Key {
	v := uint64(uint32(xway))<<40 | uint64(uint32(dir)&1)<<32 | uint64(uint32(seg))
	return stream.Key(stream.Mix64(v ^ 0x5ca1ab1e))
}

// VehicleKey keys a report by vehicle — the partitioning key of the toll
// assessment operator.
func VehicleKey(vid int32) stream.Key {
	return stream.Key(stream.Mix64(uint64(uint32(vid)) ^ 0xbadcab1e))
}

// Generator produces a synthetic LRB input stream for L express-ways.
//
// The official benchmark ships 3-hour trace files; the paper pre-computes
// the L=1 input in memory and replicates it across express-ways. We
// generate an equivalent synthetic trace: vehicles cycle through
// segments at plausible speeds, a configurable fraction of reports are
// stopped vehicles (accident ingredients), and ~1% of tuples are balance
// queries — preserving the state/key structure the experiments exercise
// (per-segment statistics, per-vehicle accounts).
type Generator struct {
	L   int
	rng *rand.Rand
	// vehicles per express-way; VIDs are xway*vehiclesPerXway+i.
	vehiclesPerXway int
	seq             uint64
	// stoppedVehicle per xway simulates an accident site.
	stopped map[int32]accidentSite
}

type accidentSite struct {
	seg   int32
	until uint64 // generator sequence bound
}

// NewGenerator returns a deterministic generator for L express-ways.
func NewGenerator(l int, seed int64) *Generator {
	if l < 1 {
		l = 1
	}
	return &Generator{
		L:               l,
		rng:             rand.New(rand.NewSource(seed)),
		vehiclesPerXway: 1000,
		stopped:         make(map[int32]accidentSite),
	}
}

// Next produces the next input report. Generation is deterministic for a
// given seed.
func (g *Generator) Next() (stream.Key, Report) {
	g.seq++
	xway := int32(g.rng.Intn(g.L))
	if g.rng.Intn(100) == 0 {
		// Balance query for a random vehicle.
		vid := int32(int(xway)*g.vehiclesPerXway + g.rng.Intn(g.vehiclesPerXway))
		r := Report{Type: TypeBalance, VID: vid, XWay: xway, QID: int32(g.seq)}
		return VehicleKey(vid), r
	}
	vid := int32(int(xway)*g.vehiclesPerXway + g.rng.Intn(g.vehiclesPerXway))
	seg := int32(g.rng.Intn(100))
	speed := int32(40 + g.rng.Intn(60))
	lane := int32(g.rng.Intn(4))
	dir := int32(g.rng.Intn(2))
	// Occasionally plant an accident: a vehicle stopped in a segment;
	// following reports in that segment slow down.
	if site, ok := g.stopped[xway]; ok && g.seq < site.until {
		if g.rng.Intn(4) == 0 {
			seg = site.seg
			speed = 0
			lane = 2
		}
	} else if g.rng.Intn(5000) == 0 {
		g.stopped[xway] = accidentSite{seg: seg, until: g.seq + 2000}
		speed = 0
	}
	r := Report{Type: TypePosition, VID: vid, Speed: speed, XWay: xway, Seg: seg, Lane: lane, Dir: dir}
	return SegmentKey(xway, dir, seg), r
}

// RateProfile returns the paper's closed-loop input rate profile for L
// express-ways compressed into durationMillis: the LRB input rate for a
// single express-way grows from 15 tuples/s to 1700 tuples/s over the
// benchmark, superlinearly — "the input rate is initially approx.
// 12,000 tuples/s and increases to 600,000 tuples/s" for L=350 over the
// paper's ≈2000 s run (§6.1, Fig. 6).
func RateProfile(l int, durationMillis int64) func(tMillis int64) float64 {
	return func(t int64) float64 {
		if t < 0 {
			t = 0
		}
		if t > durationMillis {
			t = durationMillis
		}
		frac := float64(t) / float64(durationMillis)
		perXway := 15 + (1700-15)*math.Pow(frac, 1.8)
		return float64(l) * perXway
	}
}
