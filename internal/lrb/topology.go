package lrb

import (
	"seep"
)

// Topology declares the LRB query (Fig. 5) with the public fluent
// builder: the assessment operator fans out to a collector and a
// balance account, which fan back into the sink, so every stream is
// declared with an explicit Connect. It is the same graph as Query()
// with the same factories; topology_test.go asserts the two cannot
// drift apart.
func Topology() (*seep.Topology, error) {
	fs := Factories()
	return seep.NewTopology().
		Source("feeder").
		Stateless("forwarder", fs["forwarder"], seep.Cost(CostForwarder)).
		Stateful("tollcalc", fs["tollcalc"], seep.Cost(CostTollCalc)).
		Stateful("assessment", fs["assessment"], seep.Cost(CostAssessment)).
		Stateless("collector", fs["collector"], seep.Cost(CostCollector)).
		Stateful("balance", fs["balance"], seep.Cost(CostBalance)).
		Sink("sink").
		Connect("feeder", "forwarder").
		Connect("forwarder", "tollcalc").
		Connect("tollcalc", "assessment").
		Connect("assessment", "collector").
		Connect("assessment", "balance").
		Connect("collector", "sink").
		Connect("balance", "sink").
		Build()
}
