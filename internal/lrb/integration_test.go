package lrb

import (
	"testing"

	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/sim"
	"seep/internal/stream"
)

func runLRB(t *testing.T, fail bool) (*sim.Cluster, int64) {
	t.Helper()
	factories := make(map[plan.OpID]operator.Factory)
	for id, f := range Factories() {
		factories[id] = f
	}
	c, err := sim.NewCluster(sim.Config{
		Seed: 5, Mode: sim.FTRSM,
		CheckpointIntervalMillis: 5_000,
	}, Query(), factories)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(2, 5)
	if err := c.AddSource(plan.InstanceID{Op: "feeder", Part: 1}, sim.ConstantRate(1_000),
		func(uint64) (stream.Key, any) { return gen.Next() }); err != nil {
		t.Fatal(err)
	}
	if fail {
		c.Sim().At(30_000, func() {
			if live := c.LiveInstances("tollcalc"); len(live) > 0 {
				_ = c.FailInstance(live[0])
			}
		})
	}
	c.RunUntil(60_000)

	var cars int64
	for _, inst := range c.LiveInstances("tollcalc") {
		tc := c.OperatorOf(inst).(*TollCalculator)
		cars += tc.CarsTotal()
	}
	return c, cars
}

// TestLRBEndToEnd runs the full seven-operator Linear Road query
// tuple-by-tuple on the simulated cluster and checks the pipeline is
// functioning: toll notifications reach the sink within the 5 s bound,
// balances accumulate, accidents occur and clear.
func TestLRBEndToEnd(t *testing.T) {
	c, cars := runLRB(t, false)
	if c.SinkCount.Value() == 0 {
		t.Fatal("nothing reached the sink")
	}
	// ~99% of 60k tuples are position reports.
	if cars < 55_000 {
		t.Errorf("toll calculator reflected %d cars, want ≈59k", cars)
	}
	// Latency honours the LRB 5 s bound with big margin at half load.
	if p99 := c.Latency.Percentile(0.99); p99 > 5_000 {
		t.Errorf("P99 latency %d ms exceeds the LRB bound", p99)
	}
	// Assessment accounts exist.
	var vehicles int
	for _, inst := range c.LiveInstances("assessment") {
		vehicles += c.OperatorOf(inst).(*TollAssessment).Vehicles()
	}
	if vehicles == 0 {
		t.Error("no vehicle accounts accumulated")
	}
	// Balance queries were answered.
	var answered int
	for _, inst := range c.LiveInstances("balance") {
		answered += c.OperatorOf(inst).(*BalanceAccount).Answered()
	}
	if answered == 0 {
		t.Error("no balance queries answered")
	}
}

// TestLRBSurvivesTollCalculatorFailure fails the stateful toll calculator
// mid-run: the per-segment statistics must be restored, not rebuilt from
// empty — LRB state depends on history, which is exactly why the paper's
// upstream-backup baselines cannot run it (§6.2).
func TestLRBSurvivesTollCalculatorFailure(t *testing.T) {
	_, noFailCars := runLRB(t, false)
	c, cars := runLRB(t, true)
	recs := c.Recoveries()
	if len(recs) != 1 || !recs[0].Failure {
		t.Fatalf("recoveries = %+v", recs)
	}
	// Restored state carries the full history: the car totals match the
	// failure-free run exactly (deterministic generator + exactly-once
	// state).
	if cars != noFailCars {
		t.Errorf("cars after recovery = %d, failure-free = %d", cars, noFailCars)
	}
	if c.DuplicatesDropped() == 0 {
		t.Error("recovery replay should discard checkpointed duplicates")
	}
}
