package lrb

import (
	"testing"

	"seep/internal/operator"
	"seep/internal/stream"
)

type sink struct {
	keys     []stream.Key
	payloads []any
}

func (s *sink) emit(k stream.Key, p any) {
	s.keys = append(s.keys, k)
	s.payloads = append(s.payloads, p)
}

func TestGeneratorDeterministic(t *testing.T) {
	a, b := NewGenerator(3, 42), NewGenerator(3, 42)
	for i := 0; i < 1000; i++ {
		ka, ra := a.Next()
		kb, rb := b.Next()
		if ka != kb || ra != rb {
			t.Fatalf("divergence at %d", i)
		}
	}
}

func TestGeneratorShape(t *testing.T) {
	g := NewGenerator(2, 7)
	pos, bal, stopped := 0, 0, 0
	for i := 0; i < 20000; i++ {
		_, r := g.Next()
		switch r.Type {
		case TypePosition:
			pos++
			if r.Speed == 0 {
				stopped++
			}
			if r.XWay < 0 || r.XWay >= 2 || r.Seg < 0 || r.Seg >= 100 {
				t.Fatalf("out-of-range report %+v", r)
			}
		case TypeBalance:
			bal++
		default:
			t.Fatalf("unknown type %d", r.Type)
		}
	}
	if bal == 0 || bal > pos/20 {
		t.Errorf("balance queries = %d of %d", bal, pos)
	}
	if stopped == 0 {
		t.Error("no stopped vehicles generated")
	}
}

func TestRateProfile(t *testing.T) {
	r := RateProfile(350, 2_000_000)
	start := r(0)
	end := r(2_000_000)
	if start < 4000 || start > 15_000 {
		t.Errorf("start rate = %v, want ≈ 12 k", start)
	}
	if end < 550_000 || end > 620_000 {
		t.Errorf("end rate = %v, want ≈ 595 k", end)
	}
	if r(-5) != start || r(3_000_000) != end {
		t.Error("profile should clamp outside [0, duration]")
	}
	if r(1_000_000) <= start || r(1_000_000) >= end {
		t.Error("profile not monotone")
	}
}

func TestForwarderRouting(t *testing.T) {
	f := Forwarder()
	var s sink
	pos := Report{Type: TypePosition, VID: 1, XWay: 2, Dir: 1, Seg: 33, Speed: 50}
	bal := Report{Type: TypeBalance, VID: 1, QID: 9}
	f.OnTuple(operator.Context{}, stream.Tuple{Payload: pos}, s.emit)
	f.OnTuple(operator.Context{}, stream.Tuple{Payload: bal}, s.emit)
	if len(s.payloads) != 2 {
		t.Fatalf("forwarded %d", len(s.payloads))
	}
	if s.keys[0] != SegmentKey(2, 1, 33) {
		t.Error("position report not keyed by segment")
	}
	if s.keys[1] != VehicleKey(1) {
		t.Error("balance query not keyed by vehicle")
	}
}

func TestTollCalculatorTollsCongestion(t *testing.T) {
	tc := NewTollCalculator()
	var s sink
	// Fast traffic: no toll.
	for i := 0; i < 20; i++ {
		r := Report{Type: TypePosition, VID: int32(i), XWay: 0, Seg: 5, Speed: 60}
		tc.OnTuple(operator.Context{}, stream.Tuple{Key: SegmentKey(0, 0, 5), Payload: r}, s.emit)
	}
	last := s.payloads[len(s.payloads)-1].(TollNotification)
	if last.Toll != 0 {
		t.Errorf("fast segment tolled: %+v", last)
	}
	// Congested traffic: tolls appear.
	for i := 0; i < 50; i++ {
		r := Report{Type: TypePosition, VID: int32(i), XWay: 0, Seg: 6, Speed: 10}
		tc.OnTuple(operator.Context{}, stream.Tuple{Key: SegmentKey(0, 0, 6), Payload: r}, s.emit)
	}
	last = s.payloads[len(s.payloads)-1].(TollNotification)
	if last.Toll <= 0 {
		t.Errorf("congested segment not tolled: %+v", last)
	}
	if tc.Segments() != 2 {
		t.Errorf("Segments = %d", tc.Segments())
	}
	if tc.CarsTotal() != 70 {
		t.Errorf("CarsTotal = %d", tc.CarsTotal())
	}
}

func TestTollCalculatorAccident(t *testing.T) {
	tc := NewTollCalculator()
	var s sink
	k := SegmentKey(0, 0, 9)
	for i := 0; i < 5; i++ {
		r := Report{Type: TypePosition, VID: 7, XWay: 0, Seg: 9, Speed: 0}
		tc.OnTuple(operator.Context{}, stream.Tuple{Key: k, Payload: r}, s.emit)
	}
	last := s.payloads[len(s.payloads)-1].(TollNotification)
	if !last.Accident {
		t.Errorf("accident not detected: %+v", last)
	}
	if last.Toll != 0 {
		t.Error("accident segment should not toll")
	}
	// Traffic resumes: accident clears after enough moving reports.
	for i := 0; i < 10; i++ {
		r := Report{Type: TypePosition, VID: 8, XWay: 0, Seg: 9, Speed: 50}
		tc.OnTuple(operator.Context{}, stream.Tuple{Key: k, Payload: r}, s.emit)
	}
	last = s.payloads[len(s.payloads)-1].(TollNotification)
	if last.Accident {
		t.Error("accident did not clear")
	}
}

func TestTollCalculatorBalancePassthrough(t *testing.T) {
	tc := NewTollCalculator()
	var s sink
	r := Report{Type: TypeBalance, VID: 5, QID: 1}
	tc.OnTuple(operator.Context{}, stream.Tuple{Key: VehicleKey(5), Payload: r}, s.emit)
	if len(s.payloads) != 1 {
		t.Fatal("balance query dropped")
	}
	if s.keys[0] != VehicleKey(5) {
		t.Error("balance query re-keyed incorrectly")
	}
}

func TestTollCalculatorSnapshotRestore(t *testing.T) {
	tc := NewTollCalculator()
	var s sink
	for i := 0; i < 100; i++ {
		r := Report{Type: TypePosition, VID: int32(i), XWay: 1, Seg: int32(i % 7), Speed: 20}
		tc.OnTuple(operator.Context{}, stream.Tuple{Key: SegmentKey(1, 0, r.Seg), Payload: r}, s.emit)
	}
	kv := tc.SnapshotKV()
	tc2 := NewTollCalculator()
	tc2.RestoreKV(kv)
	if tc2.Segments() != tc.Segments() || tc2.CarsTotal() != tc.CarsTotal() {
		t.Errorf("restore lost state: %d/%d segments, %d/%d cars",
			tc2.Segments(), tc.Segments(), tc2.CarsTotal(), tc.CarsTotal())
	}
}

func TestTollAssessmentAccumulatesAndAnswers(t *testing.T) {
	ta := NewTollAssessment()
	var s sink
	k := VehicleKey(42)
	ta.OnTuple(operator.Context{}, stream.Tuple{Key: k, Payload: TollNotification{VID: 42, Toll: 10}}, s.emit)
	ta.OnTuple(operator.Context{}, stream.Tuple{Key: k, Payload: TollNotification{VID: 42, Toll: 5}}, s.emit)
	if got := ta.Balance(42); got != 15 {
		t.Errorf("Balance = %d", got)
	}
	// Notifications pass through.
	if len(s.payloads) != 2 {
		t.Errorf("passed through %d notifications", len(s.payloads))
	}
	ta.OnTuple(operator.Context{}, stream.Tuple{Key: k, Payload: Report{Type: TypeBalance, VID: 42, QID: 3}}, s.emit)
	resp, ok := s.payloads[2].(BalanceResponse)
	if !ok || resp.Balance != 15 || resp.QID != 3 {
		t.Errorf("response = %+v", s.payloads[2])
	}
	if ta.Vehicles() != 1 {
		t.Errorf("Vehicles = %d", ta.Vehicles())
	}
	if ids := SortedVIDs(ta); len(ids) != 1 || ids[0] != 42 {
		t.Errorf("SortedVIDs = %v", ids)
	}
}

func TestTollAssessmentSnapshotRestore(t *testing.T) {
	ta := NewTollAssessment()
	var s sink
	for vid := int32(0); vid < 50; vid++ {
		ta.OnTuple(operator.Context{}, stream.Tuple{Key: VehicleKey(vid), Payload: TollNotification{VID: vid, Toll: vid}}, s.emit)
	}
	kv := ta.SnapshotKV()
	ta2 := NewTollAssessment()
	ta2.RestoreKV(kv)
	for vid := int32(0); vid < 50; vid++ {
		if ta2.Balance(vid) != int64(vid) {
			t.Fatalf("Balance(%d) = %d after restore", vid, ta2.Balance(vid))
		}
	}
}

func TestCollectorAndBalanceAccount(t *testing.T) {
	col := TollCollector()
	var s sink
	col.OnTuple(operator.Context{}, stream.Tuple{Key: 1, Payload: TollNotification{VID: 1, Toll: 2}}, s.emit)
	col.OnTuple(operator.Context{}, stream.Tuple{Key: 1, Payload: BalanceResponse{VID: 1}}, s.emit)
	if len(s.payloads) != 1 {
		t.Errorf("collector passed %d, want only the notification", len(s.payloads))
	}

	ba := NewBalanceAccount()
	s = sink{}
	ba.OnTuple(operator.Context{}, stream.Tuple{Key: VehicleKey(1), Payload: BalanceResponse{VID: 1, Balance: 7}}, s.emit)
	ba.OnTuple(operator.Context{}, stream.Tuple{Key: VehicleKey(1), Payload: TollNotification{VID: 1}}, s.emit)
	if len(s.payloads) != 1 {
		t.Errorf("balance account passed %d, want only the response", len(s.payloads))
	}
	if ba.Answered() != 1 {
		t.Errorf("Answered = %d", ba.Answered())
	}
	kv := ba.SnapshotKV()
	ba2 := NewBalanceAccount()
	ba2.RestoreKV(kv)
	if ba2.Answered() != 1 {
		t.Error("balance account restore lost state")
	}
}

func TestQueryValidates(t *testing.T) {
	q := Query()
	if err := q.Validate(); err != nil {
		t.Fatalf("LRB query invalid: %v", err)
	}
	f := Factories()
	for _, id := range q.Ops() {
		spec := q.Op(id)
		if spec.Role == "source" || spec.Role == "sink" {
			continue
		}
		if f[id] == nil {
			t.Errorf("no factory for %s", id)
		}
	}
}

func TestFlowOpsWellFormed(t *testing.T) {
	ops, edges := FlowOps()
	ids := make(map[string]bool)
	for _, o := range ops {
		ids[string(o.ID)] = true
	}
	for _, e := range edges {
		if !ids[string(e.From)] || !ids[string(e.To)] {
			t.Errorf("edge %v references unknown operator", e)
		}
	}
	// The toll calculator must be the most expensive operator (it is
	// the paper's main bottleneck and is partitioned the most).
	var tollCost, maxOther float64
	for _, o := range ops {
		if o.ID == "tollcalc" {
			tollCost = o.CostPerTuple
		} else if o.CostPerTuple > maxOther {
			maxOther = o.CostPerTuple
		}
	}
	if tollCost <= maxOther {
		t.Errorf("tollcalc cost %v should dominate others (max %v)", tollCost, maxOther)
	}
}
