package state

import (
	"fmt"
	"sort"

	"seep/internal/plan"
	"seep/internal/stream"
)

// Checkpoint is the unit produced by checkpoint-state(o) and shipped by
// backup-state(o): a consistent copy of the operator's processing state
// and buffer state, tagged with the instance it belongs to, the timestamp
// vector of input tuples reflected in the processing state, and the
// operator's output logical clock at checkpoint time (§3.2).
type Checkpoint struct {
	// Instance identifies the checkpointed operator instance.
	Instance plan.InstanceID
	// Seq is a per-instance checkpoint sequence number; newer checkpoints
	// of the same instance supersede older ones.
	Seq uint64
	// Processing is θo at checkpoint time (a deep copy).
	Processing *Processing
	// Buffer is βo at checkpoint time: the operator's own output buffers,
	// needed so that a restored operator can replay to ITS downstreams.
	Buffer *Buffer
	// OutClock is the operator's output logical clock at checkpoint time;
	// a restored operator resets its clock here so downstream duplicate
	// detection works (§3.2, restore-state).
	OutClock int64
	// Acks records, per upstream instance, the timestamp of the newest
	// tuple from that instance reflected in Processing. This is the
	// instance-granular form of τo used when upstream operators are
	// partitioned: each upstream instance stamps tuples with its own
	// logical clock, so duplicate detection and buffer trimming operate
	// per upstream instance.
	Acks map[plan.InstanceID]int64
	// Legacy holds output buffers inherited from merge victims (§3.3
	// scale in), keyed by the ORIGINAL emitting instance. A merged
	// operator cannot absorb its victims' retained output into its own
	// buffer: the victims stamped tuples from independent logical
	// clocks, so their sequences only stay replayable — monotone per
	// sender, matched against the downstream duplicate-detection
	// watermarks that already exist for those senders — if each buffer
	// keeps its original identity. Legacy buffers are replayed and
	// trimmed under the owner's name and disappear once downstream
	// checkpoints acknowledge them.
	Legacy map[plan.InstanceID]*Buffer
}

// SortInstanceIDs orders instance identifiers by (Op, Part) — the one
// ordering convention shared by the wire codec, legacy-buffer replay
// and the runtimes' deterministic iteration.
func SortInstanceIDs(ids []plan.InstanceID) {
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Op != ids[j].Op {
			return ids[i].Op < ids[j].Op
		}
		return ids[i].Part < ids[j].Part
	})
}

// LegacyOwners returns the owners of a legacy buffer map in
// deterministic (Op, Part) order. Replay order is load-bearing: the
// simulator's seeded determinism and the engines' per-sender replay
// runs both forbid map-order iteration.
func LegacyOwners(legacy map[plan.InstanceID]*Buffer) []plan.InstanceID {
	if len(legacy) == 0 {
		return nil
	}
	out := make([]plan.InstanceID, 0, len(legacy))
	for owner := range legacy {
		out = append(out, owner)
	}
	SortInstanceIDs(out)
	return out
}

// CloneLegacy deep-copies a legacy buffer map, dropping entries with no
// live tuples (nil when nothing remains).
func CloneLegacy(legacy map[plan.InstanceID]*Buffer) map[plan.InstanceID]*Buffer {
	var out map[plan.InstanceID]*Buffer
	for owner, b := range legacy {
		if b == nil || b.Len() == 0 {
			continue
		}
		if out == nil {
			out = make(map[plan.InstanceID]*Buffer, len(legacy))
		}
		out[owner] = b.Clone()
	}
	return out
}

// CloneAcks returns a copy of the acknowledgement map (nil-safe).
func CloneAcks(acks map[plan.InstanceID]int64) map[plan.InstanceID]int64 {
	if acks == nil {
		return nil
	}
	out := make(map[plan.InstanceID]int64, len(acks))
	for k, v := range acks {
		out[k] = v
	}
	return out
}

// TS returns the input timestamp vector reflected in the checkpoint.
func (c *Checkpoint) TS() stream.TSVector {
	if c == nil || c.Processing == nil {
		return nil
	}
	return c.Processing.TS
}

// Size returns the serialised footprint of the checkpoint in bytes
// (processing state plus an estimate for buffered tuples).
func (c *Checkpoint) Size() int {
	if c == nil {
		return 0
	}
	n := c.Processing.Size()
	if c.Buffer != nil {
		// 16 bytes of header per buffered tuple; payload sizes are
		// operator-specific and approximated by the header-only figure
		// when payloads are in-memory values.
		n += 16 * c.Buffer.Len()
	}
	for _, b := range c.Legacy {
		n += 16 * b.Len()
	}
	return n
}

// Validate checks internal consistency.
func (c *Checkpoint) Validate() error {
	if c == nil {
		return fmt.Errorf("state: nil checkpoint")
	}
	if c.Instance.Op == "" {
		return fmt.Errorf("state: checkpoint with empty instance")
	}
	if c.Processing == nil {
		return fmt.Errorf("state: checkpoint %s without processing state", c.Instance)
	}
	return nil
}

// PartitionCheckpoint implements partition-processing-state (Algorithm 2
// lines 3-8) on a backed-up checkpoint: the processing state is split by
// the given key ranges, timestamps are copied to every part, and the
// buffer state is assigned to the FIRST partition (line 7) — buffered
// output tuples precede the split and any instance may replay them; the
// first partition is chosen by convention.
//
// newInstances[i] receives the state for ranges[i].
func PartitionCheckpoint(c *Checkpoint, newInstances []plan.InstanceID, ranges []KeyRange) ([]*Checkpoint, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(newInstances) != len(ranges) {
		return nil, fmt.Errorf("state: %d instances for %d ranges", len(newInstances), len(ranges))
	}
	parts := c.Processing.Partition(ranges)
	out := make([]*Checkpoint, len(ranges))
	for i := range ranges {
		cp := &Checkpoint{
			Instance:   newInstances[i],
			Seq:        1,
			Processing: parts[i],
			Buffer:     NewBuffer(),
			OutClock:   c.OutClock,
			Acks:       CloneAcks(c.Acks),
		}
		if i == 0 {
			if c.Buffer != nil {
				cp.Buffer = c.Buffer.Clone()
			}
			// Legacy buffers follow the buffer state: any partition may
			// replay them, and the first is chosen by the same convention
			// as line 7.
			cp.Legacy = CloneLegacy(c.Legacy)
		}
		out[i] = cp
	}
	return out, nil
}

// MergeCheckpoints unions the checkpoints of several partitions of the
// same logical operator into one checkpoint for a single target instance —
// the scale-in primitive (§3.3). The output clock is the maximum, so the
// merged operator never reuses a timestamp.
//
// The victims' retained output does NOT fold into the merged buffer:
// each victim stamped tuples from its own logical clock, so the merged
// checkpoint keeps them as Legacy buffers under the original sender
// identities — replayable against the per-sender duplicate-detection
// watermarks downstream already holds. A victim that itself carries
// legacy buffers (an earlier merge not yet fully acknowledged) passes
// them through unchanged.
//
// The acknowledgement map takes the per-upstream MINIMUM, not the
// maximum: each victim's upstream replay set is ground-truthed by the
// buffer trims its own checkpoint triggered (retained tuples all sit
// above the victim's own watermark), so the merged watermark must sit at
// or below EVERY victim's position — a maximum would silently discard
// replayed tuples bound for the lower-watermark victim. An upstream
// missing from any victim's map is omitted (watermark zero), which only
// admits tuples the trims left retained.
func MergeCheckpoints(target plan.InstanceID, cs ...*Checkpoint) (*Checkpoint, error) {
	if len(cs) == 0 {
		return nil, fmt.Errorf("state: merge of zero checkpoints")
	}
	procs := make([]*Processing, 0, len(cs))
	out := &Checkpoint{Instance: target, Seq: 1, Buffer: NewBuffer()}
	seen := make(map[plan.InstanceID]int)
	for _, c := range cs {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if c.Instance.Op != target.Op {
			return nil, fmt.Errorf("state: merging %s into %s across operators", c.Instance, target)
		}
		procs = append(procs, c.Processing)
		if c.Buffer != nil && c.Buffer.Len() > 0 {
			if out.Legacy == nil {
				out.Legacy = make(map[plan.InstanceID]*Buffer)
			}
			out.Legacy[c.Instance] = c.Buffer.Clone()
		}
		for owner, b := range c.Legacy {
			if b == nil || b.Len() == 0 {
				continue
			}
			if out.Legacy == nil {
				out.Legacy = make(map[plan.InstanceID]*Buffer)
			}
			out.Legacy[owner] = b.Clone()
		}
		if c.OutClock > out.OutClock {
			out.OutClock = c.OutClock
		}
		for up, ts := range c.Acks {
			if out.Acks == nil {
				out.Acks = make(map[plan.InstanceID]int64)
			}
			seen[up]++
			if cur, ok := out.Acks[up]; !ok || ts < cur {
				out.Acks[up] = ts
			}
		}
	}
	// Drop upstreams not acknowledged by every victim: an absent entry
	// means watermark zero for that victim, and the merged map must not
	// claim a higher position than any victim held.
	for up, n := range seen {
		if n < len(cs) {
			delete(out.Acks, up)
		}
	}
	merged, err := MergeProcessing(procs...)
	if err != nil {
		return nil, err
	}
	out.Processing = merged
	return out, nil
}
