package state

import (
	"fmt"

	"seep/internal/plan"
	"seep/internal/stream"
)

// Checkpoint is the unit produced by checkpoint-state(o) and shipped by
// backup-state(o): a consistent copy of the operator's processing state
// and buffer state, tagged with the instance it belongs to, the timestamp
// vector of input tuples reflected in the processing state, and the
// operator's output logical clock at checkpoint time (§3.2).
type Checkpoint struct {
	// Instance identifies the checkpointed operator instance.
	Instance plan.InstanceID
	// Seq is a per-instance checkpoint sequence number; newer checkpoints
	// of the same instance supersede older ones.
	Seq uint64
	// Processing is θo at checkpoint time (a deep copy).
	Processing *Processing
	// Buffer is βo at checkpoint time: the operator's own output buffers,
	// needed so that a restored operator can replay to ITS downstreams.
	Buffer *Buffer
	// OutClock is the operator's output logical clock at checkpoint time;
	// a restored operator resets its clock here so downstream duplicate
	// detection works (§3.2, restore-state).
	OutClock int64
	// Acks records, per upstream instance, the timestamp of the newest
	// tuple from that instance reflected in Processing. This is the
	// instance-granular form of τo used when upstream operators are
	// partitioned: each upstream instance stamps tuples with its own
	// logical clock, so duplicate detection and buffer trimming operate
	// per upstream instance.
	Acks map[plan.InstanceID]int64
}

// CloneAcks returns a copy of the acknowledgement map (nil-safe).
func CloneAcks(acks map[plan.InstanceID]int64) map[plan.InstanceID]int64 {
	if acks == nil {
		return nil
	}
	out := make(map[plan.InstanceID]int64, len(acks))
	for k, v := range acks {
		out[k] = v
	}
	return out
}

// TS returns the input timestamp vector reflected in the checkpoint.
func (c *Checkpoint) TS() stream.TSVector {
	if c == nil || c.Processing == nil {
		return nil
	}
	return c.Processing.TS
}

// Size returns the serialised footprint of the checkpoint in bytes
// (processing state plus an estimate for buffered tuples).
func (c *Checkpoint) Size() int {
	if c == nil {
		return 0
	}
	n := c.Processing.Size()
	if c.Buffer != nil {
		// 16 bytes of header per buffered tuple; payload sizes are
		// operator-specific and approximated by the header-only figure
		// when payloads are in-memory values.
		n += 16 * c.Buffer.Len()
	}
	return n
}

// Validate checks internal consistency.
func (c *Checkpoint) Validate() error {
	if c == nil {
		return fmt.Errorf("state: nil checkpoint")
	}
	if c.Instance.Op == "" {
		return fmt.Errorf("state: checkpoint with empty instance")
	}
	if c.Processing == nil {
		return fmt.Errorf("state: checkpoint %s without processing state", c.Instance)
	}
	return nil
}

// PartitionCheckpoint implements partition-processing-state (Algorithm 2
// lines 3-8) on a backed-up checkpoint: the processing state is split by
// the given key ranges, timestamps are copied to every part, and the
// buffer state is assigned to the FIRST partition (line 7) — buffered
// output tuples precede the split and any instance may replay them; the
// first partition is chosen by convention.
//
// newInstances[i] receives the state for ranges[i].
func PartitionCheckpoint(c *Checkpoint, newInstances []plan.InstanceID, ranges []KeyRange) ([]*Checkpoint, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(newInstances) != len(ranges) {
		return nil, fmt.Errorf("state: %d instances for %d ranges", len(newInstances), len(ranges))
	}
	parts := c.Processing.Partition(ranges)
	out := make([]*Checkpoint, len(ranges))
	for i := range ranges {
		cp := &Checkpoint{
			Instance:   newInstances[i],
			Seq:        1,
			Processing: parts[i],
			Buffer:     NewBuffer(),
			OutClock:   c.OutClock,
			Acks:       CloneAcks(c.Acks),
		}
		if i == 0 && c.Buffer != nil {
			cp.Buffer = c.Buffer.Clone()
		}
		out[i] = cp
	}
	return out, nil
}

// MergeCheckpoints unions the checkpoints of several partitions of the
// same logical operator into one checkpoint for a single target instance —
// the scale-in primitive (§3.3). Buffers are concatenated; the output
// clock is the maximum, so the merged operator never reuses a timestamp.
func MergeCheckpoints(target plan.InstanceID, cs ...*Checkpoint) (*Checkpoint, error) {
	if len(cs) == 0 {
		return nil, fmt.Errorf("state: merge of zero checkpoints")
	}
	procs := make([]*Processing, 0, len(cs))
	out := &Checkpoint{Instance: target, Seq: 1, Buffer: NewBuffer()}
	for _, c := range cs {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if c.Instance.Op != target.Op {
			return nil, fmt.Errorf("state: merging %s into %s across operators", c.Instance, target)
		}
		procs = append(procs, c.Processing)
		if c.Buffer != nil {
			for _, tgt := range c.Buffer.Targets() {
				for _, t := range c.Buffer.Tuples(tgt) {
					out.Buffer.Append(tgt, t)
				}
			}
		}
		if c.OutClock > out.OutClock {
			out.OutClock = c.OutClock
		}
		for up, ts := range c.Acks {
			if out.Acks == nil {
				out.Acks = make(map[plan.InstanceID]int64)
			}
			if ts > out.Acks[up] {
				out.Acks[up] = ts
			}
		}
	}
	merged, err := MergeProcessing(procs...)
	if err != nil {
		return nil, err
	}
	out.Processing = merged
	return out, nil
}
