package state

import (
	"fmt"
	"os"
	"sort"
	"sync/atomic"

	"seep/internal/stream"
)

// Out-of-core managed state: wiring the §3.3 spill operation into the
// Store. When a memory ceiling is armed (EnableSpill), the store tracks
// an approximate resident footprint and, on crossing the ceiling, moves
// cold key ranges — resident keys not accessed since the previous spill
// pass — to disk through the Spiller, in chunks so a later point access
// materialises one small range rather than everything. Spilled keys are
// transparent: any cell access to a spilled key loads its chunk back
// first, full-state operations (snapshot, checkpoint, restore, drains,
// iteration) materialise everything, and delta extraction materialises
// exactly the dirty keys it encodes. The disarmed cost on every cell
// access is one atomic pointer load.
//
// Failure semantics: a failed spill write leaves the keys resident (the
// pass is abandoned, nothing is lost); a failed materialise read records
// the error, which then fails the next snapshot/checkpoint — state is
// never dropped silently, the node's previous backup stays
// authoritative.

const (
	// spillCheckEvery throttles ceiling checks to one per this many
	// writes, so the steady-state write path pays a counter increment.
	spillCheckEvery = 1024
	// spillChunkKeys bounds the keys per spill file: the unit a point
	// access on a spilled key loads back.
	spillChunkKeys = 4096
	// spillLowWaterNum/Den: a pass spills down to 7/10 of the ceiling,
	// so passes stay rare relative to growth.
	spillLowWaterNum, spillLowWaterDen = 7, 10
	// spillEstFloor is the minimum assumed in-memory bytes per key.
	spillEstFloor = 64
	// spillOverhead scales encoded bytes to approximate in-memory cost
	// (map buckets, boxed values, key overhead).
	spillOverhead = 3
)

// SpillStats is the spill observability surface.
type SpillStats struct {
	// SpilledKeys is the gauge: keys currently on disk.
	SpilledKeys uint64
	// Spills counts completed spill passes.
	Spills uint64
	// SpilledTotal counts keys written to disk, cumulatively.
	SpilledTotal uint64
	// Loads counts keys materialised back from disk, cumulatively.
	Loads uint64
}

// Add folds other into s (metric aggregation across instances).
func (s *SpillStats) Add(o SpillStats) {
	s.SpilledKeys += o.SpilledKeys
	s.Spills += o.Spills
	s.SpilledTotal += o.SpilledTotal
	s.Loads += o.Loads
}

// storeSpill is the armed spill state, reachable from the store through
// one atomic pointer. All fields are guarded by the store lock.
type storeSpill struct {
	sp     *Spiller
	dir    string
	ownDir bool
	limit  int64
	// est is the approximate in-memory bytes per resident key, refined
	// from the encoded sizes each pass observes.
	est        int64
	sinceCheck int
	// recent holds the keys accessed since the last spill pass — the
	// coldness signal. Cleared each pass.
	recent map[stream.Key]struct{}
	// spilled holds every key currently on disk.
	spilled map[stream.Key]struct{}

	passes       uint64
	spilledTotal uint64
	loadedTotal  uint64
	lastErr      error
}

// EnableSpill arms a memory ceiling on the store: when the approximate
// resident footprint exceeds limitBytes, cold key ranges spill to disk
// under dir (empty = a fresh temp directory owned by the store) and
// materialise transparently on access. The ceiling is approximate — it
// is tracked as resident keys times an estimated per-key footprint
// learned from spilled data — and bounds steady-state growth, not the
// transient of a full checkpoint, which materialises everything.
func (s *Store) EnableSpill(dir string, limitBytes int64) error {
	if limitBytes <= 0 {
		return fmt.Errorf("state: EnableSpill requires a positive byte limit, got %d", limitBytes)
	}
	ownDir := false
	if dir == "" {
		d, err := os.MkdirTemp("", "seep-spill-")
		if err != nil {
			return fmt.Errorf("state: create spill dir: %w", err)
		}
		dir, ownDir = d, true
	}
	sp, err := NewSpiller(dir)
	if err != nil {
		if ownDir {
			os.RemoveAll(dir)
		}
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.spill.Load() != nil {
		sp.Close()
		if ownDir {
			os.RemoveAll(dir)
		}
		return fmt.Errorf("state: spill already enabled")
	}
	s.spill.Store(&storeSpill{
		sp:      sp,
		dir:     dir,
		ownDir:  ownDir,
		limit:   limitBytes,
		est:     spillOverhead * spillEstFloor,
		recent:  make(map[stream.Key]struct{}),
		spilled: make(map[stream.Key]struct{}),
	})
	return nil
}

// CloseSpill disarms spilling and removes every spill file (and the
// scratch directory, when the store created it). Spilled keys still on
// disk are materialised first so no state is lost.
func (s *Store) CloseSpill() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.spill.Load()
	if sp == nil {
		return nil
	}
	err := sp.loadAllLocked(s)
	s.spill.Store(nil)
	if cerr := sp.sp.Close(); err == nil {
		err = cerr
	}
	if sp.ownDir {
		if rerr := os.RemoveAll(sp.dir); err == nil {
			err = rerr
		}
	}
	return err
}

// SpillStats returns the spill counters (zero when disarmed).
func (s *Store) SpillStats() SpillStats {
	sp := s.spill.Load()
	if sp == nil {
		return SpillStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return SpillStats{
		SpilledKeys:  uint64(len(sp.spilled)),
		Spills:       sp.passes,
		SpilledTotal: sp.spilledTotal,
		Loads:        sp.loadedTotal,
	}
}

// SpillErr returns the first spill I/O error recorded on an access path
// (accessors cannot report errors themselves; the error also fails the
// next snapshot/checkpoint).
func (s *Store) SpillErr() error {
	if s.spill.Load() == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sp := s.spill.Load(); sp != nil {
		return sp.lastErr
	}
	return nil
}

// residentLocked makes k's state resident before a cell accesses it,
// loading its spill chunk when k is on disk. One atomic load when
// spilling is disarmed.
func (s *Store) residentLocked(k stream.Key) {
	if sp := s.spill.Load(); sp != nil {
		sp.ensureLocked(s, k)
	}
}

// materializeAllLocked loads every spilled key back (full-state
// operations: snapshot, iteration, drain, restore).
func (s *Store) materializeAllLocked() error {
	sp := s.spill.Load()
	if sp == nil {
		return nil
	}
	if err := sp.loadAllLocked(s); err != nil {
		return err
	}
	return sp.lastErr
}

// spillNoteWriteLocked is the write-path hook: every spillCheckEvery
// writes it compares the approximate footprint against the ceiling and
// runs a spill pass when exceeded.
func (s *Store) spillNoteWriteLocked() {
	sp := s.spill.Load()
	if sp == nil {
		return
	}
	sp.sinceCheck++
	if sp.sinceCheck < spillCheckEvery {
		return
	}
	sp.sinceCheck = 0
	resident := int64(s.residentLenLocked())
	if resident*sp.est > sp.limit {
		sp.passLocked(s, resident)
	}
}

// residentLenLocked approximates the resident key count as the sum of
// per-cell key counts (an upper bound when cells share keys) — O(cells),
// cheap enough for the throttled ceiling check.
func (s *Store) residentLenLocked() int {
	n := 0
	for _, c := range s.cells {
		n += c.lenLocked()
	}
	return n
}

// ensureLocked materialises the chunk holding k when k is spilled, and
// records the access for the coldness signal.
func (sp *storeSpill) ensureLocked(s *Store, k stream.Key) {
	sp.recent[k] = struct{}{}
	if _, ok := sp.spilled[k]; !ok {
		return
	}
	tmp := &Processing{KV: make(map[stream.Key][]byte)}
	n, err := sp.sp.Materialize(tmp, KeyRange{Lo: k, Hi: k})
	if err != nil {
		sp.lastErr = err
		return
	}
	for kk, b := range tmp.KV {
		delete(sp.spilled, kk)
		if err := s.decodeKeyLocked(kk, b); err != nil {
			sp.lastErr = err
		}
	}
	sp.loadedTotal += uint64(n)
}

// loadAllLocked materialises everything on disk.
func (sp *storeSpill) loadAllLocked(s *Store) error {
	if len(sp.spilled) == 0 {
		return nil
	}
	tmp := &Processing{KV: make(map[stream.Key][]byte, len(sp.spilled))}
	n, err := sp.sp.Materialize(tmp, FullRange)
	if err != nil {
		sp.lastErr = err
		return err
	}
	for kk, b := range tmp.KV {
		delete(sp.spilled, kk)
		if derr := s.decodeKeyLocked(kk, b); derr != nil {
			sp.lastErr = derr
			err = derr
		}
	}
	sp.loadedTotal += uint64(n)
	return err
}

// passLocked runs one spill pass: pick cold keys (clean before dirty,
// so incremental checkpoints rarely have to load a spilled key back),
// encode and spill them in chunk-sized sorted ranges until the target
// footprint is reached, drop them from the cells, compact the cell maps
// so the freed buckets return to the allocator, and reset the coldness
// signal.
func (sp *storeSpill) passLocked(s *Store, resident int64) {
	target := sp.limit * spillLowWaterNum / spillLowWaterDen / sp.est
	want := int(resident - target)
	if want <= 0 {
		return
	}
	all := s.unionKeysLocked()
	var clean, dirty []stream.Key
	for k := range all {
		if _, hot := sp.recent[k]; hot {
			continue
		}
		if _, d := s.touched[k]; d {
			dirty = append(dirty, k)
		} else {
			clean = append(clean, k)
		}
	}
	// Everything is hot: reset the recency window so the next pass has
	// candidates, and let the footprint overshoot until then.
	if len(clean)+len(dirty) == 0 {
		sp.recent = make(map[stream.Key]struct{})
		return
	}
	sort.Slice(clean, func(i, j int) bool { return clean[i] < clean[j] })
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })

	var spilledKeys, spilledBytes int64
	spillChunks := func(cand []stream.Key) {
		for len(cand) > 0 && int(spilledKeys) < want {
			chunk := cand
			if len(chunk) > spillChunkKeys {
				chunk = cand[:spillChunkKeys]
			}
			cand = cand[len(chunk):]
			tmp := &Processing{KV: make(map[stream.Key][]byte, len(chunk))}
			var bytes int64
			for _, k := range chunk {
				b, ok, err := s.encodeKeyLocked(k)
				if err != nil {
					sp.lastErr = err
					return
				}
				if ok {
					tmp.KV[k] = b
					bytes += int64(len(b))
				}
			}
			if len(tmp.KV) == 0 {
				continue
			}
			// Record what the file will hold before Spill, which drains
			// tmp.KV as it writes.
			held := make([]stream.Key, 0, len(tmp.KV))
			for k := range tmp.KV {
				held = append(held, k)
			}
			n, err := sp.sp.Spill(tmp, KeyRange{Lo: chunk[0], Hi: chunk[len(chunk)-1]})
			if err != nil {
				// Failed write: abandon the pass, keys stay resident.
				sp.lastErr = err
				return
			}
			for _, k := range held {
				sp.spilled[k] = struct{}{}
				s.deleteKeyLocked(k)
			}
			spilledKeys += int64(n)
			spilledBytes += bytes
		}
	}
	spillChunks(clean)
	spillChunks(dirty)
	if spilledKeys == 0 {
		return
	}
	for _, c := range s.cells {
		c.compactLocked()
	}
	// Refine the per-key footprint estimate from what this pass actually
	// encoded (EMA, floored).
	observed := spillOverhead * spilledBytes / spilledKeys
	if observed < spillEstFloor {
		observed = spillEstFloor
	}
	sp.est = (sp.est + observed) / 2
	sp.passes++
	sp.spilledTotal += uint64(spilledKeys)
	sp.recent = make(map[stream.Key]struct{})
}

// discardLocked drops everything on disk WITHOUT loading it back —
// Restore replaces the whole store contents, so spilled fragments of
// the old state must not resurrect.
func (sp *storeSpill) discardLocked() {
	sp.sp.Close()
	sp.spilled = make(map[stream.Key]struct{})
	sp.recent = make(map[stream.Key]struct{})
	sp.sinceCheck = 0
}

// deleteKeyLocked drops k from every cell without touching dirty-key
// tracking (spilling is not a semantic delete).
func (s *Store) deleteKeyLocked(k stream.Key) {
	for _, c := range s.cells {
		c.deleteKeyLocked(k)
	}
}

// spillPtr is the store's atomic arm/disarm switch, declared here so
// store.go stays focused on the cell machinery.
type spillPtr = atomic.Pointer[storeSpill]
