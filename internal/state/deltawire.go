package state

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sort"

	"seep/internal/plan"
	"seep/internal/stream"
)

// deltaMagic guards delta-checkpoint frames against foreign input.
const deltaMagic = uint32(0x53455044) // "SEPD"

// Compression flags for a delta-checkpoint wire body.
const (
	deltaRaw   = uint8(0)
	deltaFlate = uint8(1)
)

// maxDeltaBodyBytes bounds decompression of a delta-checkpoint body so a
// hostile or corrupt frame cannot expand without limit (64 MiB, well
// above anything a 16 MiB frame legitimately inflates to).
const maxDeltaBodyBytes = 64 << 20

// EncodeDeltaCheckpoint serialises an incremental checkpoint for the
// wire: [magic][flag][uvarint-length body], where the body is the delta
// plus the refreshed bookkeeping (buffer, output clock, acks) and flag
// says whether it is stored raw or flate-compressed. Compression is
// attempted only when compress is set and kept only when it actually
// shrinks the body, so a decoder never pays inflation for
// incompressible state. Changed and deleted keys are written in sorted
// order, making the encoding byte-deterministic for a given value.
func EncodeDeltaCheckpoint(e *stream.Encoder, dc *DeltaCheckpoint, codec PayloadCodec, compress bool) error {
	if dc == nil || dc.Delta == nil {
		return fmt.Errorf("state: delta checkpoint missing delta")
	}
	inner := stream.NewEncoder(dc.Size() + 256)
	if err := encodeDeltaBody(inner, dc, codec); err != nil {
		return err
	}
	e.Uint32(deltaMagic)
	if compress {
		var buf bytes.Buffer
		zw, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return fmt.Errorf("state: delta checkpoint deflate: %w", err)
		}
		if _, err := zw.Write(inner.Bytes()); err != nil {
			return fmt.Errorf("state: delta checkpoint deflate: %w", err)
		}
		if err := zw.Close(); err != nil {
			return fmt.Errorf("state: delta checkpoint deflate: %w", err)
		}
		if buf.Len() < inner.Len() {
			e.Uint8(deltaFlate)
			e.BytesV(buf.Bytes())
			return nil
		}
	}
	e.Uint8(deltaRaw)
	e.BytesV(inner.Bytes())
	return nil
}

// DecodeDeltaCheckpoint reads a delta checkpoint written by
// EncodeDeltaCheckpoint, validating the magic and bounding
// decompression before any field is interpreted.
func DecodeDeltaCheckpoint(d *stream.Decoder, codec PayloadCodec) (*DeltaCheckpoint, error) {
	if magic := d.Uint32(); magic != deltaMagic {
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("state: not a delta checkpoint (magic %x)", magic)
	}
	flag := d.Uint8()
	body := d.BytesV()
	if err := d.Err(); err != nil {
		return nil, err
	}
	switch flag {
	case deltaRaw:
	case deltaFlate:
		zr := flate.NewReader(bytes.NewReader(body))
		raw, err := io.ReadAll(io.LimitReader(zr, maxDeltaBodyBytes+1))
		zr.Close()
		if err != nil {
			return nil, fmt.Errorf("state: delta checkpoint inflate: %w", err)
		}
		if len(raw) > maxDeltaBodyBytes {
			return nil, fmt.Errorf("state: delta checkpoint inflates past %d bytes", maxDeltaBodyBytes)
		}
		body = raw
	default:
		return nil, fmt.Errorf("state: delta checkpoint compression flag %d", flag)
	}
	return decodeDeltaBody(stream.NewDecoder(body), codec)
}

func encodeDeltaBody(e *stream.Encoder, dc *DeltaCheckpoint, codec PayloadCodec) error {
	encodeInstanceID(e, dc.Instance)
	dl := dc.Delta
	e.Uint64(dl.Base)
	e.Uint64(dl.Seq)
	e.TSVector(dl.TS)
	keys := make([]stream.Key, 0, len(dl.Changed))
	for k := range dl.Changed {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.Uint32(uint32(len(keys)))
	for _, k := range keys {
		e.Uvarint(uint64(k))
		e.BytesV(dl.Changed[k])
	}
	del := append([]stream.Key(nil), dl.Deleted...)
	sort.Slice(del, func(i, j int) bool { return del[i] < del[j] })
	e.Uint32(uint32(len(del)))
	for _, k := range del {
		e.Uvarint(uint64(k))
	}
	buf := dc.Buffer
	if buf == nil {
		buf = NewBuffer()
	}
	if err := EncodeBuffer(e, buf, codec); err != nil {
		return err
	}
	e.Int64(dc.OutClock)
	ids := make([]plan.InstanceID, 0, len(dc.Acks))
	for id := range dc.Acks {
		ids = append(ids, id)
	}
	SortInstanceIDs(ids)
	e.Uint32(uint32(len(ids)))
	for _, id := range ids {
		encodeInstanceID(e, id)
		e.Int64(dc.Acks[id])
	}
	return nil
}

func decodeDeltaBody(d *stream.Decoder, codec PayloadCodec) (*DeltaCheckpoint, error) {
	dc := &DeltaCheckpoint{Delta: &Delta{}}
	dc.Instance = decodeInstanceID(d)
	dc.Delta.Base = d.Uint64()
	dc.Delta.Seq = d.Uint64()
	dc.Delta.TS = d.TSVector()
	nChanged := int(d.Uint32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	// A changed entry costs at least two bytes (key varint + length
	// prefix), so a sane count is bounded by the remaining body.
	if nChanged < 0 || nChanged > d.Remaining()/2+1 {
		return nil, fmt.Errorf("state: delta with %d changed keys exceeds body", nChanged)
	}
	if nChanged > 0 {
		dc.Delta.Changed = make(map[stream.Key][]byte, nChanged)
		for i := 0; i < nChanged; i++ {
			k := stream.Key(d.Uvarint())
			v := d.BytesV()
			if err := d.Err(); err != nil {
				return nil, err
			}
			cp := make([]byte, len(v))
			copy(cp, v)
			dc.Delta.Changed[k] = cp
		}
	}
	nDeleted := int(d.Uint32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if nDeleted < 0 || nDeleted > d.Remaining()+1 {
		return nil, fmt.Errorf("state: delta with %d deleted keys exceeds body", nDeleted)
	}
	for i := 0; i < nDeleted; i++ {
		dc.Delta.Deleted = append(dc.Delta.Deleted, stream.Key(d.Uvarint()))
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	buf, err := DecodeBuffer(d, codec)
	if err != nil {
		return nil, err
	}
	dc.Buffer = buf
	dc.OutClock = d.Int64()
	nAcks := int(d.Uint32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if nAcks < 0 || nAcks > d.Remaining()/12+1 {
		return nil, fmt.Errorf("state: delta with %d acks exceeds body", nAcks)
	}
	if nAcks > 0 {
		dc.Acks = make(map[plan.InstanceID]int64, nAcks)
		for i := 0; i < nAcks; i++ {
			id := decodeInstanceID(d)
			ts := d.Int64()
			if err := d.Err(); err != nil {
				return nil, err
			}
			dc.Acks[id] = ts
		}
	}
	return dc, d.Err()
}
