// Package state implements the externalised operator state of the paper:
// processing state (§3.1), buffer state, routing state, checkpoints, and
// the partitioning primitives of Algorithm 2. It also provides the
// extensions discussed in §3.3: merging state for scale-in, incremental
// (delta) checkpoints, and spilling state to disk.
//
// State is represented generically as key/value pairs over the tuple key
// space, which is what lets a stream processing system checkpoint, back
// up, restore and partition the state of arbitrary stateful operators
// without understanding their semantics.
package state

import (
	"fmt"
	"sort"

	"seep/internal/stream"
)

// Processing is the processing state θo of an operator: a set of key/value
// pairs plus the timestamp vector τo of the most recent input tuples
// reflected in it. Values are opaque bytes produced by the operator's
// get-processing-state function.
type Processing struct {
	// KV maps tuple keys to the serialised per-key state fragment.
	KV map[stream.Key][]byte
	// TS is τo: per input stream, the newest timestamp reflected in KV.
	TS stream.TSVector
}

// NewProcessing returns empty processing state for an operator with n
// input streams.
func NewProcessing(n int) *Processing {
	return &Processing{KV: make(map[stream.Key][]byte), TS: stream.NewTSVector(n)}
}

// Clone returns a deep copy: mutating the copy never affects the original.
// checkpoint-state must hand the SPS an isolated copy (§3.1).
func (p *Processing) Clone() *Processing {
	if p == nil {
		return nil
	}
	out := &Processing{KV: make(map[stream.Key][]byte, len(p.KV)), TS: p.TS.Clone()}
	for k, v := range p.KV {
		cp := make([]byte, len(v))
		copy(cp, v)
		out.KV[k] = cp
	}
	return out
}

// Size returns the total serialised footprint in bytes: per-entry key
// overhead plus value bytes. Used to model and measure checkpoint cost.
func (p *Processing) Size() int {
	if p == nil {
		return 0
	}
	n := 8 * len(p.TS)
	for _, v := range p.KV {
		n += 8 + len(v)
	}
	return n
}

// Len returns the number of distinct keys.
func (p *Processing) Len() int {
	if p == nil {
		return 0
	}
	return len(p.KV)
}

// Keys returns all keys in ascending order (deterministic iteration for
// tests and frequency-guided splitting).
func (p *Processing) Keys() []stream.Key {
	keys := make([]stream.Key, 0, len(p.KV))
	for k := range p.KV {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Equal reports whether two processing states hold identical keys, values
// and timestamp vectors.
func (p *Processing) Equal(q *Processing) bool {
	if p == nil || q == nil {
		return p.Len() == 0 && q.Len() == 0
	}
	if len(p.KV) != len(q.KV) || !p.TS.Equal(q.TS) {
		return false
	}
	for k, v := range p.KV {
		w, ok := q.KV[k]
		if !ok || len(v) != len(w) {
			return false
		}
		for i := range v {
			if v[i] != w[i] {
				return false
			}
		}
	}
	return true
}

// Encode serialises the processing state with the package codec.
func (p *Processing) Encode(e *stream.Encoder) {
	e.TSVector(p.TS)
	e.Uint32(uint32(len(p.KV)))
	for _, k := range p.Keys() {
		e.Key(k)
		e.Bytes32(p.KV[k])
	}
}

// DecodeProcessing reads processing state written by Encode.
func DecodeProcessing(d *stream.Decoder) (*Processing, error) {
	p := &Processing{TS: d.TSVector()}
	n := int(d.Uint32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	p.KV = make(map[stream.Key][]byte, n)
	for i := 0; i < n; i++ {
		k := d.Key()
		v := d.Bytes32()
		if err := d.Err(); err != nil {
			return nil, err
		}
		cp := make([]byte, len(v))
		copy(cp, v)
		p.KV[k] = cp
	}
	return p, nil
}

// Partition splits the processing state into len(ranges) disjoint parts
// following partition-processing-state (Algorithm 2, lines 4-6): part i
// receives exactly the keys inside ranges[i], and every part inherits a
// copy of the timestamp vector. Keys outside every range are dropped,
// which cannot happen when ranges partition the original key interval.
func (p *Processing) Partition(ranges []KeyRange) []*Processing {
	parts := make([]*Processing, len(ranges))
	for i := range parts {
		parts[i] = &Processing{KV: make(map[stream.Key][]byte), TS: p.TS.Clone()}
	}
	for k, v := range p.KV {
		for i, r := range ranges {
			if r.Contains(k) {
				cp := make([]byte, len(v))
				copy(cp, v)
				parts[i].KV[k] = cp
				break
			}
		}
	}
	return parts
}

// MergeProcessing unions the state of several partitions into one, the
// scale-in primitive of §3.3. Keys must be disjoint across the inputs
// (they are, when the inputs are partitions of one operator); on overlap
// it returns an error rather than silently losing state.
func MergeProcessing(parts ...*Processing) (*Processing, error) {
	out := &Processing{KV: make(map[stream.Key][]byte)}
	for _, p := range parts {
		if p == nil {
			continue
		}
		for k, v := range p.KV {
			if _, dup := out.KV[k]; dup {
				return nil, fmt.Errorf("state: merge overlap on key %d", k)
			}
			cp := make([]byte, len(v))
			copy(cp, v)
			out.KV[k] = cp
		}
		out.TS = out.TS.Merge(p.TS)
	}
	return out, nil
}
