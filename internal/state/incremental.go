package state

import (
	"seep/internal/plan"
	"seep/internal/stream"
)

// Delta is an incremental checkpoint: the keys whose values changed since
// the previous checkpoint plus the keys that were deleted (§3.2 mentions
// incremental checkpointing as a size reduction; this implements it).
type Delta struct {
	// Base is the sequence number of the checkpoint this delta applies to.
	Base uint64
	// Seq is the sequence number of the state after applying the delta.
	Seq uint64
	// Changed holds new or updated key/value pairs.
	Changed map[stream.Key][]byte
	// Deleted lists removed keys.
	Deleted []stream.Key
	// TS is the timestamp vector after applying the delta.
	TS stream.TSVector
}

// Size returns the serialised footprint of the delta in bytes.
func (d *Delta) Size() int {
	if d == nil {
		return 0
	}
	n := 8*len(d.TS) + 8*len(d.Deleted)
	for _, v := range d.Changed {
		n += 8 + len(v)
	}
	return n
}

// Apply folds a delta into a full processing state (the backup side of
// incremental checkpointing). The delta must be consecutive: its Base
// equals the state's current sequence as tracked by the caller.
func (d *Delta) Apply(p *Processing) {
	for k, v := range d.Changed {
		cp := make([]byte, len(v))
		copy(cp, v)
		p.KV[k] = cp
	}
	for _, k := range d.Deleted {
		delete(p.KV, k)
	}
	p.TS = d.TS.Clone()
}

// DeltaCheckpoint is what a runtime ships in place of a full Checkpoint
// when incremental checkpointing is active: the processing-state delta
// plus the (small, fully refreshed) bookkeeping a restore needs — buffer
// state, output clock and acknowledgement map. The backup host folds it
// into the stored base checkpoint (BackupStore.ApplyDelta).
type DeltaCheckpoint struct {
	// Instance identifies the checkpointed operator instance.
	Instance plan.InstanceID
	// Delta is the processing-state change since the stored checkpoint;
	// Delta.Base must match the stored checkpoint's Seq.
	Delta *Delta
	// Buffer is βo at checkpoint time (shipped whole: it is bounded by
	// acknowledgement-driven trimming, unlike the processing state).
	Buffer *Buffer
	// OutClock is the output logical clock at checkpoint time.
	OutClock int64
	// Acks is the per-upstream-instance acknowledgement map.
	Acks map[plan.InstanceID]int64
}

// Size returns the serialised footprint shipped for this delta
// checkpoint, comparable with Checkpoint.Size.
func (dc *DeltaCheckpoint) Size() int {
	if dc == nil {
		return 0
	}
	n := dc.Delta.Size()
	if dc.Buffer != nil {
		n += 16 * dc.Buffer.Len()
	}
	return n
}

// DeltaPolicy governs when a runtime ships incremental checkpoints for
// managed-state operators instead of full ones (§3.2's incremental
// checkpointing, surfaced as seep.WithIncrementalCheckpoints).
type DeltaPolicy struct {
	// FullEvery forces a full checkpoint every FullEvery-th checkpoint
	// (so up to FullEvery-1 consecutive deltas chain off one base).
	// Values below 2 disable incremental checkpointing.
	FullEvery int
	// MaxDeltaFraction falls back to a full checkpoint when the delta's
	// serialised size exceeds this fraction of the last full snapshot's
	// size (a delta nearly as large as the base saves nothing and costs
	// a fold). Zero means the default of 0.5.
	MaxDeltaFraction float64
}

// Enabled reports whether incremental checkpointing is on.
func (p DeltaPolicy) Enabled() bool { return p.FullEvery >= 2 }

// DeltaAllowed reports whether a delta of the given size may be shipped
// against a base of the given size.
func (p DeltaPolicy) DeltaAllowed(deltaSize, baseSize int) bool {
	frac := p.MaxDeltaFraction
	if frac == 0 {
		frac = 0.5
	}
	return float64(deltaSize) <= frac*float64(baseSize)
}
