package state

import (
	"seep/internal/stream"
)

// Delta is an incremental checkpoint: the keys whose values changed since
// the previous checkpoint plus the keys that were deleted (§3.2 mentions
// incremental checkpointing as a size reduction; this implements it).
type Delta struct {
	// Base is the sequence number of the checkpoint this delta applies to.
	Base uint64
	// Seq is the sequence number of the state after applying the delta.
	Seq uint64
	// Changed holds new or updated key/value pairs.
	Changed map[stream.Key][]byte
	// Deleted lists removed keys.
	Deleted []stream.Key
	// TS is the timestamp vector after applying the delta.
	TS stream.TSVector
}

// Size returns the serialised footprint of the delta in bytes.
func (d *Delta) Size() int {
	if d == nil {
		return 0
	}
	n := 8*len(d.TS) + 8*len(d.Deleted)
	for _, v := range d.Changed {
		n += 8 + len(v)
	}
	return n
}

// DeltaTracker produces incremental checkpoints for an operator by
// tracking which keys were dirtied since the last checkpoint. Operators
// call Touch/Delete as they mutate state; the state manager calls
// TakeDelta at each checkpoint interval, falling back to full checkpoints
// when the delta would not be smaller.
type DeltaTracker struct {
	dirty   map[stream.Key]bool
	deleted map[stream.Key]bool
	seq     uint64
}

// NewDeltaTracker returns an empty tracker.
func NewDeltaTracker() *DeltaTracker {
	return &DeltaTracker{dirty: make(map[stream.Key]bool), deleted: make(map[stream.Key]bool)}
}

// Touch records that the state under k changed.
func (t *DeltaTracker) Touch(k stream.Key) {
	t.dirty[k] = true
	delete(t.deleted, k)
}

// Delete records that the state under k was removed.
func (t *DeltaTracker) Delete(k stream.Key) {
	t.deleted[k] = true
	delete(t.dirty, k)
}

// DirtyCount returns the number of keys dirtied since the last TakeDelta.
func (t *DeltaTracker) DirtyCount() int { return len(t.dirty) + len(t.deleted) }

// TakeDelta extracts an incremental checkpoint against the full state p
// and resets the tracker. Keys dirtied but no longer present in p are
// reported as deletions.
func (t *DeltaTracker) TakeDelta(p *Processing) *Delta {
	d := &Delta{
		Base:    t.seq,
		Seq:     t.seq + 1,
		Changed: make(map[stream.Key][]byte, len(t.dirty)),
		TS:      p.TS.Clone(),
	}
	for k := range t.dirty {
		if v, ok := p.KV[k]; ok {
			cp := make([]byte, len(v))
			copy(cp, v)
			d.Changed[k] = cp
		} else {
			d.Deleted = append(d.Deleted, k)
		}
	}
	for k := range t.deleted {
		d.Deleted = append(d.Deleted, k)
	}
	t.dirty = make(map[stream.Key]bool)
	t.deleted = make(map[stream.Key]bool)
	t.seq++
	return d
}

// Apply folds a delta into a full processing state (the backup side of
// incremental checkpointing). The delta must be consecutive: its Base
// equals the state's current sequence as tracked by the caller.
func (d *Delta) Apply(p *Processing) {
	for k, v := range d.Changed {
		cp := make([]byte, len(v))
		copy(cp, v)
		p.KV[k] = cp
	}
	for _, k := range d.Deleted {
		delete(p.KV, k)
	}
	p.TS = d.TS.Clone()
}
