package state

import (
	"reflect"
	"testing"

	"seep/internal/stream"
)

func TestValueCellBasics(t *testing.T) {
	s := NewStore()
	v := NewValue[float64](s, "sums", Float64Codec{})
	if _, ok := v.Get(1); ok {
		t.Error("empty cell returned a value")
	}
	v.Set(1, 2.5)
	if got := v.Update(1, func(x float64) float64 { return x + 1.5 }); got != 4.0 {
		t.Errorf("Update = %v", got)
	}
	v.Set(2, 10)
	if s.Len() != 2 || v.Len() != 2 {
		t.Errorf("Len = %d/%d", s.Len(), v.Len())
	}
	if s.DirtyCount() != 2 {
		t.Errorf("DirtyCount = %d", s.DirtyCount())
	}
	v.Delete(2)
	if _, ok := v.Get(2); ok {
		t.Error("deleted key still present")
	}
	v.Transform(1, func(x float64) (float64, bool) { return 0, false })
	if v.Len() != 0 {
		t.Error("Transform keep=false did not delete")
	}
	v.Transform(3, func(x float64) (float64, bool) { return x + 7, true })
	if got, _ := v.Get(3); got != 7 {
		t.Errorf("Transform on absent key = %v", got)
	}
}

func TestMapCellBasics(t *testing.T) {
	s := NewStore()
	m := NewMap[int64](s, "counts", Int64Codec{})
	m.Update(1, "a", func(c int64) int64 { return c + 1 })
	m.Update(1, "a", func(c int64) int64 { return c + 1 })
	m.Put(1, "b", 5)
	m.Put(2, "a", 9)
	if got, _ := m.Get(1, "a"); got != 2 {
		t.Errorf("Get = %d", got)
	}
	if m.Len() != 2 || m.FieldCount() != 3 {
		t.Errorf("Len/FieldCount = %d/%d", m.Len(), m.FieldCount())
	}
	var seen []string
	m.ForEach(func(k stream.Key, f string, v int64) { seen = append(seen, f) })
	if !reflect.DeepEqual(seen, []string{"a", "b", "a"}) && !reflect.DeepEqual(seen, []string{"a", "a", "b"}) {
		// Keys ascend; fields sort within a key.
		t.Errorf("ForEach order = %v", seen)
	}
	m.Delete(2)
	if m.Len() != 1 {
		t.Error("Delete did not drop key")
	}
	drained := m.Drain()
	if m.FieldCount() != 0 || drained[1]["a"] != 2 {
		t.Errorf("Drain = %v", drained)
	}
}

// TestStoreSnapshotRestoreMultiCell: a snapshot of several cells sharing
// the key space restores into a fresh store exactly, including keys held
// by only one cell.
func TestStoreSnapshotRestoreMultiCell(t *testing.T) {
	mk := func() (*Store, *Value[float64], *Map[int64]) {
		s := NewStore()
		return s, NewValue[float64](s, "v", Float64Codec{}), NewMap[int64](s, "m", Int64Codec{})
	}
	s1, v1, m1 := mk()
	v1.Set(1, 1.5)
	v1.Set(2, 2.5)
	m1.Put(2, "x", 7)
	m1.Put(3, "y", 8)

	kv, err := s1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(kv) != 3 {
		t.Fatalf("snapshot keys = %d, want 3", len(kv))
	}
	s2, v2, m2 := mk()
	if err := s2.Restore(kv); err != nil {
		t.Fatal(err)
	}
	if got, _ := v2.Get(1); got != 1.5 {
		t.Errorf("restored v[1] = %v", got)
	}
	if got, _ := v2.Get(2); got != 2.5 {
		t.Errorf("restored v[2] = %v", got)
	}
	if got, _ := m2.Get(2, "x"); got != 7 {
		t.Errorf("restored m[2][x] = %d", got)
	}
	if got, _ := m2.Get(3, "y"); got != 8 {
		t.Errorf("restored m[3][y] = %d", got)
	}
	// Restore into a store missing the cell is a loud error, not silent
	// state loss.
	s3 := NewStore()
	NewValue[float64](s3, "v", Float64Codec{})
	if err := s3.Restore(kv); err == nil {
		t.Error("restore with unknown cell succeeded")
	}
}

func TestStoreDefaultAndJSONCodecs(t *testing.T) {
	type rec struct {
		N int
		S string
	}
	s := NewStore()
	g := NewValue[rec](s, "gob", nil) // nil codec defaults to gob
	j := NewValue[map[string]int64](s, "json", JSONCodec[map[string]int64]{})
	g.Set(1, rec{N: 4, S: "hi"})
	j.Set(1, map[string]int64{"a": 1, "b": 2})
	kv, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	g2 := NewValue[rec](s2, "gob", nil)
	j2 := NewValue[map[string]int64](s2, "json", JSONCodec[map[string]int64]{})
	if err := s2.Restore(kv); err != nil {
		t.Fatal(err)
	}
	if got, _ := g2.Get(1); got != (rec{N: 4, S: "hi"}) {
		t.Errorf("gob round trip = %+v", got)
	}
	if got, _ := j2.Get(1); got["a"] != 1 || got["b"] != 2 {
		t.Errorf("json round trip = %v", got)
	}
}

// TestStoreSnapshotIsDeepCopy: mutations after a snapshot never leak
// into it (checkpoint-state must hand an isolated copy, §3.1).
func TestStoreSnapshotIsDeepCopy(t *testing.T) {
	s := NewStore()
	m := NewMap[int64](s, "m", Int64Codec{})
	m.Put(1, "a", 1)
	kv, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m.Put(1, "a", 99)
	s2 := NewStore()
	m2 := NewMap[int64](s2, "m", Int64Codec{})
	if err := s2.Restore(kv); err != nil {
		t.Fatal(err)
	}
	if got, _ := m2.Get(1, "a"); got != 1 {
		t.Errorf("snapshot reflected later mutation: %d", got)
	}
}

// TestStorePartitionMergeRoundTrip: a store snapshot split by key ranges
// (Algorithm 2) and merged back reconstructs the original state — the
// property scale out and scale in rest on, now for managed cells.
func TestStorePartitionMergeRoundTrip(t *testing.T) {
	s := NewStore()
	m := NewMap[int64](s, "counts", Int64Codec{})
	for i := 0; i < 257; i++ {
		k := stream.Key(stream.Mix64(uint64(i)))
		m.Put(k, "item", int64(i))
	}
	kv, err := s.TakeCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcessing(1)
	p.KV = kv
	parts := p.Partition(FullRange.SplitEven(3))
	total := 0
	for _, part := range parts {
		total += part.Len()
	}
	if total != 257 {
		t.Fatalf("partitioned keys = %d, want 257", total)
	}
	merged, err := MergeProcessing(parts...)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	m2 := NewMap[int64](s2, "counts", Int64Codec{})
	if err := s2.Restore(merged.KV); err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 257 {
		t.Fatalf("restored keys = %d", m2.Len())
	}
	for i := 0; i < 257; i++ {
		k := stream.Key(stream.Mix64(uint64(i)))
		if got, _ := m2.Get(k, "item"); got != int64(i) {
			t.Fatalf("restored [%d] = %d, want %d", k, got, i)
		}
	}
}

// TestDeltaChainReconstructsFullSnapshot: a base checkpoint plus k
// deltas, applied in sequence, reconstruct the exact full snapshot the
// store would produce at the end — including updates, inserts and
// deletes. This is the invariant incremental checkpointing rests on.
func TestDeltaChainReconstructsFullSnapshot(t *testing.T) {
	s := NewStore()
	v := NewValue[float64](s, "v", Float64Codec{})
	m := NewMap[int64](s, "m", Int64Codec{})
	for i := 0; i < 100; i++ {
		v.Set(stream.Key(i), float64(i))
		if i%3 == 0 {
			m.Put(stream.Key(i), "f", int64(i))
		}
	}
	base, err := s.TakeCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	folded := NewProcessing(1)
	folded.KV = base

	ts := stream.NewTSVector(1)
	seq := uint64(1)
	for round := 0; round < 4; round++ {
		// Churn a small subset: update, insert, delete.
		v.Update(stream.Key(round), func(x float64) float64 { return x + 100 })
		v.Set(stream.Key(1000+round), 7)
		v.Delete(stream.Key(50 + round))
		m.Delete(stream.Key(3 * round))
		ts.Advance(0, int64(round+1))
		if s.DirtyCount() == 0 {
			t.Fatal("no dirty keys tracked")
		}
		d, err := s.TakeDelta(ts, seq, seq+1)
		if err != nil {
			t.Fatal(err)
		}
		seq++
		if s.DirtyCount() != 0 {
			t.Error("TakeDelta did not reset tracking")
		}
		d.Apply(folded)
	}

	full, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := NewProcessing(1)
	want.KV = full
	want.TS = ts.Clone()
	if !folded.Equal(want) {
		t.Fatalf("delta chain diverged: folded %d keys, full %d keys", folded.Len(), want.Len())
	}
}

// TestDeltaSmallerThanFull: with small churn over a large keyspace the
// delta footprint is a fraction of the full snapshot — the size win that
// motivates incremental checkpoints.
func TestDeltaSmallerThanFull(t *testing.T) {
	s := NewStore()
	m := NewMap[int64](s, "m", Int64Codec{})
	for i := 0; i < 10_000; i++ {
		m.Put(stream.Key(stream.Mix64(uint64(i))), "f", int64(i))
	}
	if _, err := s.TakeCheckpoint(); err != nil {
		t.Fatal(err)
	}
	fullSize := s.LastFullSize()
	for i := 0; i < 100; i++ {
		m.Update(stream.Key(stream.Mix64(uint64(i))), "f", func(c int64) int64 { return c + 1 })
	}
	d, err := s.TakeDelta(stream.NewTSVector(1), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() >= fullSize/10 {
		t.Errorf("delta %d bytes not ≪ full %d bytes", d.Size(), fullSize)
	}
	if !(DeltaPolicy{FullEvery: 10}).DeltaAllowed(d.Size(), fullSize) {
		t.Error("policy rejected a 1%% delta")
	}
}

func TestStoreDuplicateCellPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate cell name did not panic")
		}
	}()
	s := NewStore()
	NewValue[int64](s, "x", Int64Codec{})
	NewValue[float64](s, "x", Float64Codec{})
}
