package state

import (
	"testing"
	"testing/quick"

	"seep/internal/stream"
)

func tuple(ts int64, k stream.Key) stream.Tuple {
	return stream.Tuple{TS: ts, Key: k, Payload: ts}
}

func TestBufferAppendTrim(t *testing.T) {
	b := NewBuffer()
	d1 := inst("count", 1)
	for ts := int64(1); ts <= 10; ts++ {
		b.Append(d1, tuple(ts, stream.Key(ts)))
	}
	if b.Len() != 10 || b.LenFor(d1) != 10 {
		t.Fatalf("Len = %d, LenFor = %d", b.Len(), b.LenFor(d1))
	}
	if n := b.Trim("count", 4); n != 4 {
		t.Errorf("Trim removed %d, want 4", n)
	}
	rest := b.Tuples(d1)
	if len(rest) != 6 || rest[0].TS != 5 {
		t.Errorf("after trim: %v", rest)
	}
	// Trimming below the retained range is a no-op.
	if n := b.Trim("count", 2); n != 0 {
		t.Errorf("second Trim removed %d, want 0", n)
	}
	// Trimming everything.
	if n := b.Trim("count", 100); n != 6 {
		t.Errorf("full Trim removed %d, want 6", n)
	}
}

func TestBufferTrimOnlyNamedOp(t *testing.T) {
	b := NewBuffer()
	b.Append(inst("a", 1), tuple(1, 1))
	b.Append(inst("b", 1), tuple(1, 1))
	b.Trim("a", 10)
	if b.LenFor(inst("b", 1)) != 1 {
		t.Error("trim of a removed b's tuples")
	}
}

func TestBufferTuplesForOpMergesByTS(t *testing.T) {
	b := NewBuffer()
	b.Append(inst("c", 1), tuple(3, 1))
	b.Append(inst("c", 2), tuple(1, 2))
	b.Append(inst("c", 1), tuple(5, 3))
	b.Append(inst("c", 2), tuple(4, 4))
	got := b.TuplesForOp("c")
	if len(got) != 4 {
		t.Fatalf("got %d tuples", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].TS > got[i].TS {
			t.Fatalf("not sorted: %v", got)
		}
	}
}

func TestBufferRepartition(t *testing.T) {
	b := NewBuffer()
	old := inst("c", 1)
	// Keys spanning the space.
	b.Append(old, stream.Tuple{TS: 1, Key: 0})
	b.Append(old, stream.Tuple{TS: 2, Key: stream.MaxKey})
	b.Append(old, stream.Tuple{TS: 3, Key: 1})
	entries := []RouteEntry{}
	for i, r := range FullRange.SplitEven(2) {
		entries = append(entries, RouteEntry{Target: inst("c", i+2), Range: r})
	}
	rt, err := NewRoutingFromEntries(entries)
	if err != nil {
		t.Fatal(err)
	}
	b.Repartition("c", rt)
	if n := b.LenFor(inst("c", 2)); n != 2 {
		t.Errorf("low partition has %d tuples, want 2", n)
	}
	if n := b.LenFor(inst("c", 3)); n != 1 {
		t.Errorf("high partition has %d tuples, want 1", n)
	}
	if b.LenFor(old) != 0 {
		t.Error("old instance still has tuples")
	}
}

// TestBufferRepartitionPreservesTuples: repartitioning never loses or
// duplicates tuples, for any split level.
func TestBufferRepartitionPreservesTuples(t *testing.T) {
	f := func(keys []uint64, piRaw uint8) bool {
		pi := 1 + int(piRaw%7)
		b := NewBuffer()
		for i, k := range keys {
			b.Append(inst("c", 1), stream.Tuple{TS: int64(i + 1), Key: stream.Key(k)})
		}
		entries := []RouteEntry{}
		for i, r := range FullRange.SplitEven(pi) {
			entries = append(entries, RouteEntry{Target: inst("c", i+10), Range: r})
		}
		rt, err := NewRoutingFromEntries(entries)
		if err != nil {
			return false
		}
		b.Repartition("c", rt)
		if b.Len() != len(keys) {
			return false
		}
		// Every tuple must sit at the instance owning its key.
		for _, target := range b.Targets() {
			r, ok := rt.RangeOf(target)
			if !ok {
				return false
			}
			for _, tu := range b.Tuples(target) {
				if !r.Contains(tu.Key) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBufferClone(t *testing.T) {
	b := NewBuffer()
	b.Append(inst("a", 1), tuple(1, 1))
	c := b.Clone()
	c.Append(inst("a", 1), tuple(2, 2))
	if b.Len() != 1 {
		t.Error("clone shares storage with original")
	}
}

func TestBufferTargetsDeterministic(t *testing.T) {
	b := NewBuffer()
	b.Append(inst("b", 2), tuple(1, 1))
	b.Append(inst("a", 1), tuple(1, 1))
	b.Append(inst("b", 1), tuple(1, 1))
	got := b.Targets()
	want := []string{"a#1", "b#1", "b#2"}
	for i := range got {
		if got[i].String() != want[i] {
			t.Fatalf("Targets() = %v", got)
		}
	}
}

// TestTuplesForOpDeterministicTies: tuples retained for different
// instances of one logical operator that tie on TS are merged in a
// stable order (TS, then key, then Born), so replay order after
// repartitioning never depends on map iteration.
func TestTuplesForOpDeterministicTies(t *testing.T) {
	build := func(order []int) []stream.Tuple {
		b := NewBuffer()
		// Three sibling instances appended in varying order, with TS
		// collisions across instances.
		appends := []struct {
			part int
			t    stream.Tuple
		}{
			{1, stream.Tuple{TS: 5, Key: 9, Born: 1}},
			{2, stream.Tuple{TS: 5, Key: 3, Born: 2}},
			{3, stream.Tuple{TS: 5, Key: 3, Born: 1}},
			{2, stream.Tuple{TS: 7, Key: 1, Born: 3}},
			{1, stream.Tuple{TS: 6, Key: 2, Born: 4}},
		}
		for _, i := range order {
			a := appends[i]
			b.Append(inst("count", a.part), a.t)
		}
		return b.TuplesForOp("count")
	}
	want := build([]int{0, 1, 2, 3, 4})
	for _, order := range [][]int{{4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}} {
		got := build(order)
		if len(got) != len(want) {
			t.Fatalf("len = %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("order %v diverged at %d: %+v vs %+v", order, i, got[i], want[i])
			}
		}
	}
	// And the order itself is TS-major, key-minor, Born-last.
	got := build([]int{0, 1, 2, 3, 4})
	if !(got[0].TS == 5 && got[0].Key == 3 && got[0].Born == 1) ||
		!(got[1].TS == 5 && got[1].Key == 3 && got[1].Born == 2) ||
		!(got[2].TS == 5 && got[2].Key == 9) ||
		got[3].TS != 6 || got[4].TS != 7 {
		t.Fatalf("merged order = %+v", got)
	}
}
