package state

import (
	"sync"
	"testing"

	"seep/internal/plan"
	"seep/internal/stream"
)

// Spill × checkpoint interplay: a store running under a memory ceiling
// must checkpoint, restore, partition and merge with exact per-key
// parity — spilled keys are transparent to every full-state operation,
// and restored stores keep spilling under their own ceilings.

// spillStore builds a store with two cells (a map and a value sharing
// the key space), a tight ceiling, and n keys written through the
// cells, enough to force spill passes.
func spillStore(t *testing.T, n int, limit int64) (*Store, *Map[int64], *Value[int64]) {
	t.Helper()
	s := NewStore()
	m := NewMap[int64](s, "counts", Int64Codec{})
	v := NewValue[int64](s, "totals", Int64Codec{})
	if err := s.EnableSpill(t.TempDir(), limit); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.CloseSpill() })
	for i := 0; i < n; i++ {
		m.Put(stream.Key(i), "f", int64(i))
		if i%2 == 0 {
			v.Set(stream.Key(i), int64(2*i))
		}
	}
	return s, m, v
}

// verifyKeys checks exact per-key parity for keys [lo, hi) through the
// cell accessors — the transparent-materialisation path.
func verifyKeys(t *testing.T, m *Map[int64], v *Value[int64], lo, hi int) {
	t.Helper()
	misses := 0
	for i := lo; i < hi; i++ {
		if got, ok := m.Get(stream.Key(i), "f"); !ok || got != int64(i) {
			misses++
			if misses <= 5 {
				t.Errorf("counts[%d] = %d, %v; want %d, true", i, got, ok, i)
			}
		}
		if i%2 == 0 {
			if got, ok := v.Get(stream.Key(i)); !ok || got != int64(2*i) {
				misses++
				if misses <= 5 {
					t.Errorf("totals[%d] = %d, %v; want %d, true", i, got, ok, 2*i)
				}
			}
		}
	}
	if misses > 5 {
		t.Errorf("... and %d more per-key mismatches", misses-5)
	}
}

func TestSpillStoreCheckpointRoundTrip(t *testing.T) {
	const n = 5000
	s, _, _ := spillStore(t, n, 8<<10)
	st := s.SpillStats()
	if st.Spills == 0 || st.SpilledKeys == 0 {
		t.Fatalf("ceiling never engaged: %+v", st)
	}

	// A full checkpoint materialises every spilled key.
	kv, err := s.TakeCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if len(kv) != n {
		t.Fatalf("checkpoint has %d keys, want %d", len(kv), n)
	}
	if err := s.SpillErr(); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh store under its own ceiling: parity through
	// the accessors, which materialise re-spilled keys on demand.
	s2 := NewStore()
	m2 := NewMap[int64](s2, "counts", Int64Codec{})
	v2 := NewValue[int64](s2, "totals", Int64Codec{})
	if err := s2.EnableSpill(t.TempDir(), 8<<10); err != nil {
		t.Fatal(err)
	}
	defer s2.CloseSpill()
	if err := s2.Restore(kv); err != nil {
		t.Fatal(err)
	}
	verifyKeys(t, m2, v2, 0, n)
	if err := s2.SpillErr(); err != nil {
		t.Fatal(err)
	}
}

func TestSpillStorePartitionMergeParity(t *testing.T) {
	const n = 4000
	s, _, _ := spillStore(t, n, 8<<10)
	kv, err := s.TakeCheckpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Partition the checkpoint in two (Algorithm 2), restore each part
	// into its own spill-enabled store.
	parent := &Checkpoint{
		Instance:   plan.InstanceID{Op: "count", Part: 0},
		Seq:        1,
		Processing: &Processing{KV: kv, TS: stream.NewTSVector(1)},
		Buffer:     NewBuffer(),
	}
	newIDs := []plan.InstanceID{{Op: "count", Part: 0}, {Op: "count", Part: 1}}
	ranges := FullRange.SplitEven(2)
	parts, err := PartitionCheckpoint(parent, newIDs, ranges)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, part := range parts {
		for k := range part.Processing.KV {
			if !ranges[i].Contains(k) {
				t.Fatalf("partition %d holds key %d outside %v", i, k, ranges[i])
			}
		}
		total += len(part.Processing.KV)
	}
	if total != n {
		t.Fatalf("partitions hold %d keys, want %d", total, n)
	}

	stores := make([]*Store, len(parts))
	maps := make([]*Map[int64], len(parts))
	vals := make([]*Value[int64], len(parts))
	for i, part := range parts {
		stores[i] = NewStore()
		maps[i] = NewMap[int64](stores[i], "counts", Int64Codec{})
		vals[i] = NewValue[int64](stores[i], "totals", Int64Codec{})
		if err := stores[i].EnableSpill(t.TempDir(), 4<<10); err != nil {
			t.Fatal(err)
		}
		defer stores[i].CloseSpill()
		if err := stores[i].Restore(part.Processing.KV); err != nil {
			t.Fatal(err)
		}
	}
	// Every original key lands in exactly one partition with its value
	// intact, readable through the spilling accessors.
	for i := 0; i < n; i++ {
		pi := 0
		if !ranges[0].Contains(stream.Key(i)) {
			pi = 1
		}
		if got, ok := maps[pi].Get(stream.Key(i), "f"); !ok || got != int64(i) {
			t.Fatalf("partition %d counts[%d] = %d, %v; want %d, true", pi, i, got, ok, i)
		}
	}

	// Merge the partitions back (scale-in) and restore into one store.
	cps := make([]*Checkpoint, len(stores))
	for i, st := range stores {
		pkv, err := st.TakeCheckpoint()
		if err != nil {
			t.Fatal(err)
		}
		cps[i] = &Checkpoint{
			Instance:   newIDs[i],
			Seq:        2,
			Processing: &Processing{KV: pkv, TS: stream.NewTSVector(1)},
			Buffer:     NewBuffer(),
		}
	}
	merged, err := MergeCheckpoints(plan.InstanceID{Op: "count", Part: 0}, cps...)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Processing.KV) != n {
		t.Fatalf("merged checkpoint has %d keys, want %d", len(merged.Processing.KV), n)
	}
	s3 := NewStore()
	m3 := NewMap[int64](s3, "counts", Int64Codec{})
	v3 := NewValue[int64](s3, "totals", Int64Codec{})
	if err := s3.EnableSpill(t.TempDir(), 8<<10); err != nil {
		t.Fatal(err)
	}
	defer s3.CloseSpill()
	if err := s3.Restore(merged.Processing.KV); err != nil {
		t.Fatal(err)
	}
	verifyKeys(t, m3, v3, 0, n)
	for _, st := range append(stores, s3) {
		if err := st.SpillErr(); err != nil {
			t.Fatal(err)
		}
	}
}

// Restore replaces the whole store: spilled fragments of the old state
// must be discarded, never resurrected — and spilling keeps working
// for the new contents.
func TestSpillStoreRestoreDiscardsOldSpill(t *testing.T) {
	const n = 3000
	s, m, _ := spillStore(t, n, 8<<10)
	if st := s.SpillStats(); st.SpilledKeys == 0 {
		t.Fatalf("ceiling never engaged: %+v", st)
	}

	// New state: a disjoint key range with different values.
	repl := NewStore()
	rm := NewMap[int64](repl, "counts", Int64Codec{})
	for i := n; i < n+100; i++ {
		rm.Put(stream.Key(i), "f", int64(100*i))
	}
	kv, err := repl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(kv); err != nil {
		t.Fatal(err)
	}
	if st := s.SpillStats(); st.SpilledKeys != 0 {
		t.Fatalf("spilled fragments survived restore: %+v", st)
	}
	if got := s.Len(); got != 100 {
		t.Fatalf("restored store holds %d keys, want 100", got)
	}
	if _, ok := m.Get(stream.Key(0), "f"); ok {
		t.Fatal("old spilled key resurrected after restore")
	}
	// Growth after restore re-engages the ceiling.
	for i := 0; i < n; i++ {
		m.Put(stream.Key(i), "f", int64(i))
	}
	if st := s.SpillStats(); st.SpilledKeys == 0 {
		t.Fatalf("ceiling disarmed by restore: %+v", st)
	}
	for i := n; i < n+100; i++ {
		if got, ok := m.Get(stream.Key(i), "f"); !ok || got != int64(100*i) {
			t.Fatalf("counts[%d] = %d, %v; want %d, true", i, got, ok, 100*i)
		}
	}
}

// Checkpoints race writers under the ceiling without torn state: every
// checkpoint observes a full prefix of the writes, and the final state
// is exact (run with -race).
func TestSpillStoreConcurrentCheckpoints(t *testing.T) {
	const n, writers = 2000, 4
	s := NewStore()
	m := NewMap[int64](s, "counts", Int64Codec{})
	if err := s.EnableSpill(t.TempDir(), 4<<10); err != nil {
		t.Fatal(err)
	}
	defer s.CloseSpill()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += writers {
				m.Put(stream.Key(i), "f", int64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if _, err := s.TakeCheckpoint(); err != nil {
				t.Errorf("checkpoint %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	kv, err := s.TakeCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if len(kv) != n {
		t.Fatalf("final checkpoint has %d keys, want %d", len(kv), n)
	}
	for i := 0; i < n; i++ {
		if got, ok := m.Get(stream.Key(i), "f"); !ok || got != int64(i) {
			t.Fatalf("counts[%d] = %d, %v; want %d, true", i, got, ok, i)
		}
	}
	if err := s.SpillErr(); err != nil {
		t.Fatal(err)
	}
}

// Incremental checkpoints stay exact when dirty keys have been spilled
// between the write and the delta extraction.
func TestSpillStoreDeltaMaterialisesDirtyKeys(t *testing.T) {
	const n = 3000
	s, m, _ := spillStore(t, n, 8<<10)
	base, err := s.TakeCheckpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Touch a sparse set, then churn enough writes elsewhere that spill
	// passes run and may evict the dirty keys.
	for i := 0; i < 100; i++ {
		m.Put(stream.Key(i*17%n), "f", int64(-i))
	}
	for i := n; i < 2*n; i++ {
		m.Put(stream.Key(i), "f", int64(i))
	}
	d, err := s.TakeDelta(stream.NewTSVector(1), 1, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Every touched key must appear in the delta even if a spill pass
	// evicted it in between.
	for i := 0; i < 100; i++ {
		k := stream.Key(i * 17 % n)
		if _, ok := d.Changed[k]; !ok {
			t.Fatalf("dirty key %d missing from delta", k)
		}
	}

	// Base + delta must equal a full observation of the live store.
	p := &Processing{KV: base, TS: stream.NewTSVector(1)}
	d.Apply(p)
	want, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 2*n {
		t.Fatalf("live store holds %d keys, want %d", len(want), 2*n)
	}
	if len(p.KV) != len(want) {
		t.Fatalf("base+delta holds %d keys, live store %d", len(p.KV), len(want))
	}
	restored := NewStore()
	rm := NewMap[int64](restored, "counts", Int64Codec{})
	NewValue[int64](restored, "totals", Int64Codec{})
	if err := restored.Restore(p.KV); err != nil {
		t.Fatal(err)
	}
	if got, ok := rm.Get(stream.Key(17), "f"); !ok || got != -1 {
		t.Fatalf("restored counts[17] = %d, %v; want -1, true", got, ok)
	}
	if got, ok := rm.Get(stream.Key(n+5), "f"); !ok || got != int64(n+5) {
		t.Fatalf("restored counts[%d] = %d, %v; want %d, true", n+5, got, ok, n+5)
	}
}
