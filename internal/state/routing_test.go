package state

import (
	"testing"
	"testing/quick"

	"seep/internal/plan"
	"seep/internal/stream"
)

func inst(op string, part int) plan.InstanceID {
	return plan.InstanceID{Op: plan.OpID(op), Part: part}
}

func TestSplitEvenTilesKeySpace(t *testing.T) {
	for _, pi := range []int{1, 2, 3, 7, 16, 50} {
		ranges := FullRange.SplitEven(pi)
		if len(ranges) != pi {
			t.Fatalf("pi=%d: %d ranges", pi, len(ranges))
		}
		if ranges[0].Lo != 0 {
			t.Errorf("pi=%d: first range starts at %d", pi, ranges[0].Lo)
		}
		if ranges[pi-1].Hi != stream.MaxKey {
			t.Errorf("pi=%d: last range ends at %d", pi, ranges[pi-1].Hi)
		}
		for i := 1; i < pi; i++ {
			if ranges[i].Lo != ranges[i-1].Hi+1 {
				t.Errorf("pi=%d: gap between range %d and %d", pi, i-1, i)
			}
		}
	}
}

func TestSplitEvenSubRange(t *testing.T) {
	r := KeyRange{Lo: 100, Hi: 199}
	parts := r.SplitEven(4)
	if parts[0].Lo != 100 || parts[3].Hi != 199 {
		t.Errorf("sub-range split endpoints: %v", parts)
	}
	for i := 1; i < 4; i++ {
		if parts[i].Lo != parts[i-1].Hi+1 {
			t.Errorf("sub-range split not contiguous: %v", parts)
		}
	}
}

func TestSplitEvenQuickEveryKeyInExactlyOne(t *testing.T) {
	f := func(k stream.Key, piRaw uint8) bool {
		pi := 1 + int(piRaw%15)
		n := 0
		for _, r := range FullRange.SplitEven(pi) {
			if r.Contains(k) {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitByWeight(t *testing.T) {
	// Heavily skewed weights: boundary should land near the hot keys.
	keys := []stream.Key{10, 20, 30, 40, 50, 60}
	weights := []float64{1, 1, 100, 1, 1, 1}
	parts := KeyRange{Lo: 0, Hi: 100}.SplitByWeight(2, keys, weights)
	if len(parts) != 2 {
		t.Fatalf("got %d parts", len(parts))
	}
	if parts[0].Hi < 20 || parts[0].Hi > 30 {
		t.Errorf("weighted boundary at %d, want near hot key 30", parts[0].Hi)
	}
	// Degenerate inputs fall back to even split.
	even := KeyRange{Lo: 0, Hi: 100}.SplitByWeight(2, nil, nil)
	if even[0].Hi != 50 {
		t.Errorf("fallback split boundary at %d, want 50", even[0].Hi)
	}
}

func TestRoutingLookup(t *testing.T) {
	r := NewRouting(inst("count", 1))
	if got := r.Lookup(0); got != inst("count", 1) {
		t.Errorf("Lookup(0) = %v", got)
	}
	if got := r.Lookup(stream.MaxKey); got != inst("count", 1) {
		t.Errorf("Lookup(max) = %v", got)
	}
}

func TestRoutingRepartition(t *testing.T) {
	r := NewRouting(inst("count", 1))
	newInsts := []plan.InstanceID{inst("count", 2), inst("count", 3)}
	ranges := FullRange.SplitEven(2)
	r2, err := r.Repartition("count", newInsts, ranges)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Lookup(0); got != inst("count", 2) {
		t.Errorf("low key routed to %v", got)
	}
	if got := r2.Lookup(stream.MaxKey); got != inst("count", 3) {
		t.Errorf("high key routed to %v", got)
	}
	// Original routing is unchanged (Repartition returns a new value).
	if got := r.Lookup(0); got != inst("count", 1) {
		t.Errorf("original routing mutated: %v", got)
	}
}

func TestRoutingRepartitionPreservesOtherOps(t *testing.T) {
	entries := []RouteEntry{
		{Target: inst("a", 1), Range: KeyRange{0, 1<<63 - 1}},
		{Target: inst("b", 1), Range: KeyRange{1 << 63, stream.MaxKey}},
	}
	r, err := NewRoutingFromEntries(entries)
	if err != nil {
		t.Fatal(err)
	}
	// Repartitioning b must keep a's entry intact.
	r2, err := r.Repartition("b", []plan.InstanceID{inst("b", 2), inst("b", 3)},
		KeyRange{1 << 63, stream.MaxKey}.SplitEven(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Lookup(5); got != inst("a", 1) {
		t.Errorf("a's keys re-routed to %v", got)
	}
	if got := r2.Lookup(stream.MaxKey); got.Op != "b" {
		t.Errorf("b's keys routed to %v", got)
	}
	if len(r2.Targets()) != 3 {
		t.Errorf("targets = %v", r2.Targets())
	}
}

func TestRoutingValidation(t *testing.T) {
	cases := [][]RouteEntry{
		{}, // empty
		{{Target: inst("a", 1), Range: KeyRange{1, stream.MaxKey}}},                                                 // gap at 0
		{{Target: inst("a", 1), Range: KeyRange{0, 10}}},                                                            // not reaching MaxKey
		{{Target: inst("a", 1), Range: KeyRange{0, 10}}, {Target: inst("a", 2), Range: KeyRange{5, stream.MaxKey}}}, // overlap
	}
	for i, entries := range cases {
		if _, err := NewRoutingFromEntries(entries); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestRoutingLookupQuickMatchesLinear(t *testing.T) {
	ranges := FullRange.SplitEven(9)
	entries := make([]RouteEntry, len(ranges))
	for i, r := range ranges {
		entries[i] = RouteEntry{Target: inst("x", i+1), Range: r}
	}
	rt, err := NewRoutingFromEntries(entries)
	if err != nil {
		t.Fatal(err)
	}
	f := func(k stream.Key) bool {
		// Linear scan reference.
		var want plan.InstanceID
		for _, e := range entries {
			if e.Range.Contains(k) {
				want = e.Target
				break
			}
		}
		return rt.Lookup(k) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoutingRangeOf(t *testing.T) {
	ranges := FullRange.SplitEven(3)
	entries := []RouteEntry{
		{Target: inst("x", 1), Range: ranges[0]},
		{Target: inst("x", 2), Range: ranges[1]},
		{Target: inst("x", 1), Range: ranges[2]}, // x#1 owns two contiguous? no — 0 and 2 are not contiguous
	}
	rt, err := NewRoutingFromEntries(entries)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := rt.RangeOf(inst("x", 2))
	if !ok || r != ranges[1] {
		t.Errorf("RangeOf(x#2) = %v, %v", r, ok)
	}
	if _, ok := rt.RangeOf(inst("x", 9)); ok {
		t.Error("RangeOf unknown instance should report false")
	}
}

func TestRoutingEncodeDecode(t *testing.T) {
	ranges := FullRange.SplitEven(4)
	entries := make([]RouteEntry, len(ranges))
	for i, r := range ranges {
		entries[i] = RouteEntry{Target: inst("op", i+1), Range: r}
	}
	rt, err := NewRoutingFromEntries(entries)
	if err != nil {
		t.Fatal(err)
	}
	e := stream.NewEncoder(0)
	rt.Encode(e)
	got, err := DecodeRouting(stream.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != rt.String() {
		t.Errorf("round trip changed routing:\n got %s\nwant %s", got, rt)
	}
}

func TestRoutingClone(t *testing.T) {
	rt := NewRouting(inst("a", 1))
	cl := rt.Clone()
	cl2, err := cl.Repartition("a", []plan.InstanceID{inst("a", 2), inst("a", 3)}, FullRange.SplitEven(2))
	if err != nil {
		t.Fatal(err)
	}
	_ = cl2
	if rt.Lookup(0) != inst("a", 1) {
		t.Error("clone operations affected original")
	}
}
