package state

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"seep/internal/stream"
)

// Spiller temporarily moves cold parts of an operator's processing state
// to disk, freeing memory — the spill operation of §3.3 ("a spill
// operation can temporarily store state on disk"). State is spilled and
// fetched at key-range granularity; a spilled range is transparent to
// checkpointing because Materialize restores it before a checkpoint is
// taken.
type Spiller struct {
	mu   sync.Mutex
	dir  string
	next int
	// spilled maps range file names to the key range they hold.
	spilled map[string]KeyRange
}

// NewSpiller creates a spiller writing under dir (a per-operator scratch
// directory). The directory is created if absent.
func NewSpiller(dir string) (*Spiller, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("state: create spill dir: %w", err)
	}
	return &Spiller{dir: dir, spilled: make(map[string]KeyRange)}, nil
}

// Spill writes every key of p inside r to disk and removes those keys
// from p. It returns the number of keys spilled.
func (s *Spiller) Spill(p *Processing, r KeyRange) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []stream.Key
	for k := range p.KV {
		if r.Contains(k) {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return 0, nil
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e := stream.NewEncoder(64 * len(keys))
	e.Uint32(uint32(len(keys)))
	for _, k := range keys {
		e.Key(k)
		e.Bytes32(p.KV[k])
	}
	s.next++
	name := fmt.Sprintf("spill-%06d.bin", s.next)
	path := filepath.Join(s.dir, name)
	if err := os.WriteFile(path, e.Bytes(), 0o644); err != nil {
		return 0, fmt.Errorf("state: write spill file: %w", err)
	}
	for _, k := range keys {
		delete(p.KV, k)
	}
	s.spilled[name] = r
	return len(keys), nil
}

// Materialize loads every spilled range overlapping r back into p and
// deletes the corresponding files. It returns the number of keys loaded.
func (s *Spiller) Materialize(p *Processing, r KeyRange) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	loaded := 0
	for name, sr := range s.spilled {
		if sr.Lo > r.Hi || sr.Hi < r.Lo {
			continue // no overlap
		}
		path := filepath.Join(s.dir, name)
		b, err := os.ReadFile(path)
		if err != nil {
			return loaded, fmt.Errorf("state: read spill file: %w", err)
		}
		d := stream.NewDecoder(b)
		n := int(d.Uint32())
		for i := 0; i < n; i++ {
			k := d.Key()
			v := d.Bytes32()
			if err := d.Err(); err != nil {
				return loaded, fmt.Errorf("state: corrupt spill file %s: %w", name, err)
			}
			cp := make([]byte, len(v))
			copy(cp, v)
			p.KV[k] = cp
			loaded++
		}
		if err := os.Remove(path); err != nil {
			return loaded, fmt.Errorf("state: remove spill file: %w", err)
		}
		delete(s.spilled, name)
	}
	return loaded, nil
}

// SpilledRanges returns the key ranges currently on disk.
func (s *Spiller) SpilledRanges() []KeyRange {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]KeyRange, 0, len(s.spilled))
	for _, r := range s.spilled {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	return out
}

// Close removes all spill files.
func (s *Spiller) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for name := range s.spilled {
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil && first == nil {
			first = err
		}
		delete(s.spilled, name)
	}
	return first
}
