package state

import (
	"testing"
)

func TestSpillerRoundTrip(t *testing.T) {
	s, err := NewSpiller(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := mkProcessing(100, 11)
	orig := p.Clone()
	half := FullRange.SplitEven(2)

	nSpilled, err := s.Spill(p, half[0])
	if err != nil {
		t.Fatal(err)
	}
	if nSpilled == 0 {
		t.Fatal("nothing spilled; seed produced no low keys?")
	}
	if p.Len()+nSpilled != orig.Len() {
		t.Errorf("in-memory %d + spilled %d != original %d", p.Len(), nSpilled, orig.Len())
	}
	for k := range p.KV {
		if half[0].Contains(k) {
			t.Errorf("key %d should have been spilled", k)
		}
	}
	if got := s.SpilledRanges(); len(got) != 1 || got[0] != half[0] {
		t.Errorf("SpilledRanges = %v", got)
	}

	nLoaded, err := s.Materialize(p, half[0])
	if err != nil {
		t.Fatal(err)
	}
	if nLoaded != nSpilled {
		t.Errorf("loaded %d, spilled %d", nLoaded, nSpilled)
	}
	// TS is not touched by spilling; compare KV contents.
	p.TS = orig.TS.Clone()
	if !p.Equal(orig) {
		t.Error("spill+materialize changed state")
	}
	if len(s.SpilledRanges()) != 0 {
		t.Error("ranges remain after materialize")
	}
}

func TestSpillerNonOverlappingMaterialize(t *testing.T) {
	s, err := NewSpiller(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := mkProcessing(50, 12)
	quarters := FullRange.SplitEven(4)
	if _, err := s.Spill(p, quarters[0]); err != nil {
		t.Fatal(err)
	}
	// Materializing a disjoint range loads nothing.
	n, err := s.Materialize(p, quarters[3])
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("materialized %d keys from disjoint range", n)
	}
	if len(s.SpilledRanges()) != 1 {
		t.Error("spilled range should remain")
	}
}

func TestSpillerEmptyRange(t *testing.T) {
	s, err := NewSpiller(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcessing(1)
	n, err := s.Spill(p, FullRange)
	if err != nil || n != 0 {
		t.Errorf("Spill empty state = %d, %v", n, err)
	}
}

func TestSpillerClose(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSpiller(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := mkProcessing(20, 13)
	if _, err := s.Spill(p, FullRange); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(s.SpilledRanges()) != 0 {
		t.Error("Close should drop all spilled ranges")
	}
}

func TestSpillerMultipleRanges(t *testing.T) {
	s, err := NewSpiller(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := mkProcessing(200, 14)
	orig := p.Clone()
	quarters := FullRange.SplitEven(4)
	for _, q := range quarters[:3] {
		if _, err := s.Spill(p, q); err != nil {
			t.Fatal(err)
		}
	}
	// Materialize everything via the full range.
	if _, err := s.Materialize(p, FullRange); err != nil {
		t.Fatal(err)
	}
	p.TS = orig.TS.Clone()
	if !p.Equal(orig) {
		t.Error("multi-range spill+materialize changed state")
	}
}
