package state

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"math"
)

// Codec serialises one cell value type. Snapshots, deltas, partitioning
// and merging all operate on the bytes a Codec produces, so Encode must
// be deterministic for a given value and Decode(Encode(v)) must
// reproduce v exactly.
type Codec[T any] interface {
	Encode(T) ([]byte, error)
	Decode([]byte) (T, error)
}

// GobCodec serialises values with encoding/gob — the default codec for
// cells registered without one. Suitable for concrete types; note that
// gob's map encoding order is not deterministic, so prefer JSONCodec (or
// a custom codec) for map-typed values when byte-level determinism
// matters.
type GobCodec[T any] struct{}

// Encode implements Codec.
func (GobCodec[T]) Encode(v T) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode implements Codec.
func (GobCodec[T]) Decode(b []byte) (T, error) {
	var v T
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v)
	return v, err
}

// JSONCodec serialises values with encoding/json. JSON sorts map keys,
// so it is the default choice for map-typed cell values.
type JSONCodec[T any] struct{}

// Encode implements Codec.
func (JSONCodec[T]) Encode(v T) ([]byte, error) { return json.Marshal(v) }

// Decode implements Codec.
func (JSONCodec[T]) Decode(b []byte) (T, error) {
	var v T
	err := json.Unmarshal(b, &v)
	return v, err
}

// CodecFunc adapts a pair of functions to Codec — the bridge for
// operators that already own payload serialisation (e.g. WindowJoin's
// user-supplied encode/decode).
type CodecFunc[T any] struct {
	Enc func(T) ([]byte, error)
	Dec func([]byte) (T, error)
}

// Encode implements Codec.
func (c CodecFunc[T]) Encode(v T) ([]byte, error) { return c.Enc(v) }

// Decode implements Codec.
func (c CodecFunc[T]) Decode(b []byte) (T, error) { return c.Dec(b) }

// Int64Codec is a compact fixed-width codec for int64 cells (8 bytes,
// little endian) — counters, timestamps.
type Int64Codec struct{}

// Encode implements Codec.
func (Int64Codec) Encode(v int64) ([]byte, error) {
	return binary.LittleEndian.AppendUint64(nil, uint64(v)), nil
}

// Decode implements Codec.
func (Int64Codec) Decode(b []byte) (int64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("state: int64 value is %d bytes, want 8", len(b))
	}
	return int64(binary.LittleEndian.Uint64(b)), nil
}

// Float64Codec is a compact fixed-width codec for float64 cells (IEEE
// 754 bits, 8 bytes little endian) — accumulators.
type Float64Codec struct{}

// Encode implements Codec.
func (Float64Codec) Encode(v float64) ([]byte, error) {
	return binary.LittleEndian.AppendUint64(nil, math.Float64bits(v)), nil
}

// Decode implements Codec.
func (Float64Codec) Decode(b []byte) (float64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("state: float64 value is %d bytes, want 8", len(b))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// StringCodec stores string cells as raw bytes.
type StringCodec struct{}

// Encode implements Codec.
func (StringCodec) Encode(v string) ([]byte, error) { return []byte(v), nil }

// Decode implements Codec.
func (StringCodec) Decode(b []byte) (string, error) { return string(b), nil }
