package state

import (
	"fmt"
	"sort"
	"strings"

	"seep/internal/plan"
	"seep/internal/stream"
)

// KeyRange is a closed interval [Lo, Hi] over the tuple key space. Closed
// intervals (rather than half-open) let a set of ranges cover the entire
// uint64 space exactly, including stream.MaxKey.
type KeyRange struct {
	Lo, Hi stream.Key
}

// FullRange covers the whole key space.
var FullRange = KeyRange{Lo: 0, Hi: stream.MaxKey}

// Contains reports whether k falls inside the interval.
func (r KeyRange) Contains(k stream.Key) bool { return k >= r.Lo && k <= r.Hi }

// Width returns the number of keys in the range minus one (the full range
// would overflow uint64). Used only for proportional splitting.
func (r KeyRange) Width() uint64 { return uint64(r.Hi - r.Lo) }

// String renders the range as [lo,hi].
func (r KeyRange) String() string { return fmt.Sprintf("[%d,%d]", r.Lo, r.Hi) }

// SplitEven divides the range into π contiguous sub-ranges of (nearly)
// equal width — the hash-partitioning key split of Algorithm 2 lines 1-2.
// It panics if π < 1; callers validate π at the policy layer.
func (r KeyRange) SplitEven(pi int) []KeyRange {
	if pi < 1 {
		panic("state: split with pi < 1")
	}
	if pi == 1 {
		return []KeyRange{r}
	}
	out := make([]KeyRange, 0, pi)
	width := r.Width()
	step := width / uint64(pi)
	lo := r.Lo
	for i := 0; i < pi; i++ {
		hi := r.Hi
		if i < pi-1 {
			hi = lo + stream.Key(step)
		}
		out = append(out, KeyRange{Lo: lo, Hi: hi})
		lo = hi + 1
	}
	return out
}

// SplitByWeight divides the range into π sub-ranges guided by the observed
// key distribution: keys is a sorted sample of hot keys with weights, and
// boundaries are chosen so each sub-range receives roughly equal total
// weight. Falls back to SplitEven when the sample is too small. This is
// the "key distribution can be used to guide the split" option of §3.2.
func (r KeyRange) SplitByWeight(pi int, keys []stream.Key, weights []float64) []KeyRange {
	if pi < 1 {
		panic("state: split with pi < 1")
	}
	if pi == 1 {
		return []KeyRange{r}
	}
	if len(keys) != len(weights) || len(keys) < pi {
		return r.SplitEven(pi)
	}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return r.SplitEven(pi)
	}
	out := make([]KeyRange, 0, pi)
	lo := r.Lo
	acc := 0.0
	target := total / float64(pi)
	part := 0
	for _, i := range idx {
		if part == pi-1 {
			break
		}
		acc += weights[i]
		if acc >= target*float64(part+1) {
			hi := keys[i]
			if hi >= r.Hi || hi < lo {
				continue
			}
			out = append(out, KeyRange{Lo: lo, Hi: hi})
			lo = hi + 1
			part++
		}
	}
	out = append(out, KeyRange{Lo: lo, Hi: r.Hi})
	if len(out) != pi {
		return r.SplitEven(pi)
	}
	return out
}

// RouteEntry maps a key range to one partitioned downstream instance.
type RouteEntry struct {
	Target plan.InstanceID
	Range  KeyRange
}

// Routing is the routing state ρu of an operator u for ONE logical
// downstream operator: a set of key ranges, one per live partition of
// that downstream (§3.1). Entries are kept sorted by Range.Lo and must
// tile the full key space.
type Routing struct {
	entries []RouteEntry
}

// NewRouting creates routing state sending the full key space to a single
// downstream instance — the state of a freshly deployed, unpartitioned
// stream.
func NewRouting(target plan.InstanceID) *Routing {
	return &Routing{entries: []RouteEntry{{Target: target, Range: FullRange}}}
}

// NewRoutingFromEntries builds routing state from explicit entries,
// validating that they tile the key space.
func NewRoutingFromEntries(entries []RouteEntry) (*Routing, error) {
	r := &Routing{entries: append([]RouteEntry(nil), entries...)}
	sort.Slice(r.entries, func(i, j int) bool { return r.entries[i].Range.Lo < r.entries[j].Range.Lo })
	if err := r.validate(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Routing) validate() error {
	if len(r.entries) == 0 {
		return fmt.Errorf("state: empty routing")
	}
	if r.entries[0].Range.Lo != 0 {
		return fmt.Errorf("state: routing does not start at key 0: %v", r.entries[0].Range)
	}
	for i := 1; i < len(r.entries); i++ {
		prev, cur := r.entries[i-1].Range, r.entries[i].Range
		if cur.Lo != prev.Hi+1 {
			return fmt.Errorf("state: routing gap/overlap between %v and %v", prev, cur)
		}
	}
	if last := r.entries[len(r.entries)-1].Range; last.Hi != stream.MaxKey {
		return fmt.Errorf("state: routing does not end at MaxKey: %v", last)
	}
	return nil
}

// Clone returns an independent copy.
func (r *Routing) Clone() *Routing {
	return &Routing{entries: append([]RouteEntry(nil), r.entries...)}
}

// Entries returns a copy of the route entries sorted by range.
func (r *Routing) Entries() []RouteEntry {
	return append([]RouteEntry(nil), r.entries...)
}

// Targets returns the distinct downstream instances in range order.
func (r *Routing) Targets() []plan.InstanceID {
	seen := make(map[plan.InstanceID]bool, len(r.entries))
	var out []plan.InstanceID
	for _, e := range r.entries {
		if !seen[e.Target] {
			seen[e.Target] = true
			out = append(out, e.Target)
		}
	}
	return out
}

// Lookup returns the downstream instance responsible for key k. The
// entries always tile the key space, so lookup cannot miss.
func (r *Routing) Lookup(k stream.Key) plan.InstanceID {
	return r.entries[r.LookupIndex(k)].Target
}

// LookupIndex returns the index (in Entries order) of the route entry
// responsible for key k. Hot paths that pre-resolve per-entry data —
// target node pointers, buffer handles — index their caches with it
// instead of re-resolving the InstanceID per tuple.
func (r *Routing) LookupIndex(k stream.Key) int {
	// Binary search over sorted, tiling ranges.
	lo, hi := 0, len(r.entries)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if r.entries[mid].Range.Hi < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// RangeOf returns the key interval currently routed to instance id and
// whether the instance appears in the routing state. When an instance
// owns several entries (possible after merges), the union is returned if
// contiguous.
func (r *Routing) RangeOf(id plan.InstanceID) (KeyRange, bool) {
	var out KeyRange
	found := false
	for _, e := range r.entries {
		if e.Target != id {
			continue
		}
		if !found {
			out = e.Range
			found = true
			continue
		}
		if e.Range.Lo == out.Hi+1 {
			out.Hi = e.Range.Hi
		}
	}
	return out, found
}

// Repartition implements partition-routing-state (Algorithm 2 lines 9-12):
// the entries for old instances of logical operator op are removed, their
// combined interval is split across the new instances, and the updated
// routing state is returned as a new value. ranges[i] is assigned to
// newInstances[i]; the caller obtains ranges via SplitEven/SplitByWeight
// over the old interval so the tiling invariant is preserved.
func (r *Routing) Repartition(op plan.OpID, newInstances []plan.InstanceID, ranges []KeyRange) (*Routing, error) {
	if len(newInstances) != len(ranges) {
		return nil, fmt.Errorf("state: %d instances for %d ranges", len(newInstances), len(ranges))
	}
	kept := make([]RouteEntry, 0, len(r.entries)+len(ranges))
	for _, e := range r.entries {
		if e.Target.Op != op {
			kept = append(kept, e)
		}
	}
	for i, id := range newInstances {
		if id.Op != op {
			return nil, fmt.Errorf("state: instance %s does not belong to %q", id, op)
		}
		kept = append(kept, RouteEntry{Target: id, Range: ranges[i]})
	}
	return NewRoutingFromEntries(kept)
}

// ReplaceTarget rewrites the routing entries of a single instance: the
// victim's key interval is handed to the given new instances with the
// given sub-ranges. Entries for other instances — including sibling
// partitions of the same logical operator — are untouched. This is the
// fine-granularity repartitioning used when one bottleneck partition of
// an already-parallelised operator is split (§4.1) or when one failed
// partition is recovered (§4.2).
func (r *Routing) ReplaceTarget(victim plan.InstanceID, newInstances []plan.InstanceID, ranges []KeyRange) (*Routing, error) {
	if len(newInstances) != len(ranges) {
		return nil, fmt.Errorf("state: %d instances for %d ranges", len(newInstances), len(ranges))
	}
	found := false
	kept := make([]RouteEntry, 0, len(r.entries)+len(ranges))
	for _, e := range r.entries {
		if e.Target == victim {
			found = true
			continue
		}
		kept = append(kept, e)
	}
	if !found {
		return nil, fmt.Errorf("state: instance %s not present in routing", victim)
	}
	for i, id := range newInstances {
		kept = append(kept, RouteEntry{Target: id, Range: ranges[i]})
	}
	return NewRoutingFromEntries(kept)
}

// String renders the routing table.
func (r *Routing) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, e := range r.entries {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s→%s", e.Range, e.Target)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Encode serialises the routing state.
func (r *Routing) Encode(e *stream.Encoder) {
	e.Uint32(uint32(len(r.entries)))
	for _, en := range r.entries {
		e.String32(string(en.Target.Op))
		e.Uint32(uint32(en.Target.Part))
		e.Key(en.Range.Lo)
		e.Key(en.Range.Hi)
	}
}

// DecodeRouting reads routing state written by Encode.
func DecodeRouting(d *stream.Decoder) (*Routing, error) {
	n := int(d.Uint32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	entries := make([]RouteEntry, 0, n)
	for i := 0; i < n; i++ {
		op := d.String32()
		part := int(d.Uint32())
		lo := d.Key()
		hi := d.Key()
		if err := d.Err(); err != nil {
			return nil, err
		}
		entries = append(entries, RouteEntry{
			Target: plan.InstanceID{Op: plan.OpID(op), Part: part},
			Range:  KeyRange{Lo: lo, Hi: hi},
		})
	}
	return NewRoutingFromEntries(entries)
}
