package state

import (
	"testing"

	"seep/internal/plan"
)

func mkCheckpoint(keys int, seed int64) *Checkpoint {
	c := &Checkpoint{
		Instance:   inst("count", 1),
		Seq:        7,
		Processing: mkProcessing(keys, seed),
		Buffer:     NewBuffer(),
		OutClock:   42,
	}
	c.Buffer.Append(inst("sink", 1), tuple(1, 5))
	c.Buffer.Append(inst("sink", 1), tuple(2, 6))
	return c
}

func TestCheckpointValidate(t *testing.T) {
	var nilC *Checkpoint
	if nilC.Validate() == nil {
		t.Error("nil checkpoint should not validate")
	}
	c := &Checkpoint{}
	if c.Validate() == nil {
		t.Error("empty checkpoint should not validate")
	}
	if err := mkCheckpoint(3, 1).Validate(); err != nil {
		t.Errorf("valid checkpoint rejected: %v", err)
	}
}

func TestCheckpointSizeAndTS(t *testing.T) {
	c := mkCheckpoint(5, 2)
	if c.Size() <= c.Processing.Size() {
		t.Error("size should include buffered tuples")
	}
	if got := c.TS(); !got.Equal(c.Processing.TS) {
		t.Errorf("TS() = %v", got)
	}
	var nilC *Checkpoint
	if nilC.Size() != 0 || nilC.TS() != nil {
		t.Error("nil checkpoint should have zero size and nil TS")
	}
}

func TestPartitionCheckpoint(t *testing.T) {
	c := mkCheckpoint(100, 3)
	newInstances := []plan.InstanceID{inst("count", 2), inst("count", 3), inst("count", 4)}
	ranges := FullRange.SplitEven(3)
	parts, err := PartitionCheckpoint(c, newInstances, ranges)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("got %d parts", len(parts))
	}
	totalKeys := 0
	for i, p := range parts {
		if p.Instance != newInstances[i] {
			t.Errorf("part %d assigned to %v", i, p.Instance)
		}
		if p.OutClock != c.OutClock {
			t.Errorf("part %d OutClock = %d, want %d", i, p.OutClock, c.OutClock)
		}
		if !p.Processing.TS.Equal(c.Processing.TS) {
			t.Errorf("part %d TS = %v", i, p.Processing.TS)
		}
		for k := range p.Processing.KV {
			if !ranges[i].Contains(k) {
				t.Errorf("part %d holds key %d outside %v", i, k, ranges[i])
			}
		}
		totalKeys += p.Processing.Len()
	}
	if totalKeys != c.Processing.Len() {
		t.Errorf("parts hold %d keys, original %d", totalKeys, c.Processing.Len())
	}
	// Algorithm 2 line 7: buffer state goes to the first partition only.
	if parts[0].Buffer.Len() != 2 {
		t.Errorf("first partition buffer = %d tuples, want 2", parts[0].Buffer.Len())
	}
	for i := 1; i < 3; i++ {
		if parts[i].Buffer.Len() != 0 {
			t.Errorf("partition %d buffer = %d tuples, want 0", i, parts[i].Buffer.Len())
		}
	}
}

func TestPartitionCheckpointErrors(t *testing.T) {
	c := mkCheckpoint(10, 4)
	if _, err := PartitionCheckpoint(c, []plan.InstanceID{inst("count", 2)}, FullRange.SplitEven(2)); err == nil {
		t.Error("mismatched instances/ranges should fail")
	}
	var nilC *Checkpoint
	if _, err := PartitionCheckpoint(nilC, nil, nil); err == nil {
		t.Error("nil checkpoint should fail")
	}
}

func TestMergeCheckpoints(t *testing.T) {
	c := mkCheckpoint(80, 5)
	newInstances := []plan.InstanceID{inst("count", 2), inst("count", 3)}
	parts, err := PartitionCheckpoint(c, newInstances, FullRange.SplitEven(2))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeCheckpoints(inst("count", 9), parts[0], parts[1])
	if err != nil {
		t.Fatal(err)
	}
	if merged.Instance != inst("count", 9) {
		t.Errorf("merged instance = %v", merged.Instance)
	}
	if !merged.Processing.Equal(c.Processing) {
		t.Error("merge(partition(c)) processing state differs from original")
	}
	if merged.Buffer.Len() != c.Buffer.Len() {
		t.Errorf("merged buffer = %d tuples, want %d", merged.Buffer.Len(), c.Buffer.Len())
	}
	if merged.OutClock != c.OutClock {
		t.Errorf("merged OutClock = %d, want %d", merged.OutClock, c.OutClock)
	}
}

func TestMergeCheckpointsErrors(t *testing.T) {
	if _, err := MergeCheckpoints(inst("x", 1)); err == nil {
		t.Error("merging zero checkpoints should fail")
	}
	a := mkCheckpoint(5, 6)
	b := mkCheckpoint(5, 7)
	b.Instance = inst("other", 1)
	if _, err := MergeCheckpoints(inst("count", 2), a, b); err == nil {
		t.Error("merging across logical operators should fail")
	}
}
