package state

import (
	"testing"

	"seep/internal/plan"
	"seep/internal/stream"
)

func mkCheckpoint(keys int, seed int64) *Checkpoint {
	c := &Checkpoint{
		Instance:   inst("count", 1),
		Seq:        7,
		Processing: mkProcessing(keys, seed),
		Buffer:     NewBuffer(),
		OutClock:   42,
	}
	c.Buffer.Append(inst("sink", 1), tuple(1, 5))
	c.Buffer.Append(inst("sink", 1), tuple(2, 6))
	return c
}

func TestCheckpointValidate(t *testing.T) {
	var nilC *Checkpoint
	if nilC.Validate() == nil {
		t.Error("nil checkpoint should not validate")
	}
	c := &Checkpoint{}
	if c.Validate() == nil {
		t.Error("empty checkpoint should not validate")
	}
	if err := mkCheckpoint(3, 1).Validate(); err != nil {
		t.Errorf("valid checkpoint rejected: %v", err)
	}
}

func TestCheckpointSizeAndTS(t *testing.T) {
	c := mkCheckpoint(5, 2)
	if c.Size() <= c.Processing.Size() {
		t.Error("size should include buffered tuples")
	}
	if got := c.TS(); !got.Equal(c.Processing.TS) {
		t.Errorf("TS() = %v", got)
	}
	var nilC *Checkpoint
	if nilC.Size() != 0 || nilC.TS() != nil {
		t.Error("nil checkpoint should have zero size and nil TS")
	}
}

func TestPartitionCheckpoint(t *testing.T) {
	c := mkCheckpoint(100, 3)
	newInstances := []plan.InstanceID{inst("count", 2), inst("count", 3), inst("count", 4)}
	ranges := FullRange.SplitEven(3)
	parts, err := PartitionCheckpoint(c, newInstances, ranges)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("got %d parts", len(parts))
	}
	totalKeys := 0
	for i, p := range parts {
		if p.Instance != newInstances[i] {
			t.Errorf("part %d assigned to %v", i, p.Instance)
		}
		if p.OutClock != c.OutClock {
			t.Errorf("part %d OutClock = %d, want %d", i, p.OutClock, c.OutClock)
		}
		if !p.Processing.TS.Equal(c.Processing.TS) {
			t.Errorf("part %d TS = %v", i, p.Processing.TS)
		}
		for k := range p.Processing.KV {
			if !ranges[i].Contains(k) {
				t.Errorf("part %d holds key %d outside %v", i, k, ranges[i])
			}
		}
		totalKeys += p.Processing.Len()
	}
	if totalKeys != c.Processing.Len() {
		t.Errorf("parts hold %d keys, original %d", totalKeys, c.Processing.Len())
	}
	// Algorithm 2 line 7: buffer state goes to the first partition only.
	if parts[0].Buffer.Len() != 2 {
		t.Errorf("first partition buffer = %d tuples, want 2", parts[0].Buffer.Len())
	}
	for i := 1; i < 3; i++ {
		if parts[i].Buffer.Len() != 0 {
			t.Errorf("partition %d buffer = %d tuples, want 0", i, parts[i].Buffer.Len())
		}
	}
}

func TestPartitionCheckpointErrors(t *testing.T) {
	c := mkCheckpoint(10, 4)
	if _, err := PartitionCheckpoint(c, []plan.InstanceID{inst("count", 2)}, FullRange.SplitEven(2)); err == nil {
		t.Error("mismatched instances/ranges should fail")
	}
	var nilC *Checkpoint
	if _, err := PartitionCheckpoint(nilC, nil, nil); err == nil {
		t.Error("nil checkpoint should fail")
	}
}

func TestMergeCheckpoints(t *testing.T) {
	c := mkCheckpoint(80, 5)
	newInstances := []plan.InstanceID{inst("count", 2), inst("count", 3)}
	parts, err := PartitionCheckpoint(c, newInstances, FullRange.SplitEven(2))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeCheckpoints(inst("count", 9), parts[0], parts[1])
	if err != nil {
		t.Fatal(err)
	}
	if merged.Instance != inst("count", 9) {
		t.Errorf("merged instance = %v", merged.Instance)
	}
	if !merged.Processing.Equal(c.Processing) {
		t.Error("merge(partition(c)) processing state differs from original")
	}
	// The victims' retained output keeps its original sender identity:
	// it lands in Legacy (here under the first partition, which carried
	// the buffer), never concatenated into the merged node's own buffer.
	if merged.Buffer.Len() != 0 {
		t.Errorf("merged buffer = %d tuples, want 0 (victim output is legacy)", merged.Buffer.Len())
	}
	legacyTotal := 0
	for _, b := range merged.Legacy {
		legacyTotal += b.Len()
	}
	if legacyTotal != c.Buffer.Len() {
		t.Errorf("legacy buffers hold %d tuples, want %d", legacyTotal, c.Buffer.Len())
	}
	if _, ok := merged.Legacy[newInstances[0]]; !ok {
		t.Errorf("legacy buffers = %v, want an entry for %v", merged.Legacy, newInstances[0])
	}
	if merged.OutClock != c.OutClock {
		t.Errorf("merged OutClock = %d, want %d", merged.OutClock, c.OutClock)
	}
}

// TestMergeCheckpointsAcksTakeMinimum: the merged duplicate-detection
// watermark must sit at or below every victim's position — a maximum
// would discard replayed tuples bound for the lower-watermark victim —
// and upstreams missing from any victim's map are omitted entirely.
func TestMergeCheckpointsAcksTakeMinimum(t *testing.T) {
	up := inst("src", 1)
	only := inst("src", 2)
	a := mkCheckpoint(5, 6)
	a.Instance = inst("count", 1)
	a.Acks = map[plan.InstanceID]int64{up: 10, only: 3}
	b := mkCheckpoint(5, 7)
	b.Instance = inst("count", 2)
	b.Acks = map[plan.InstanceID]int64{up: 25}
	merged, err := MergeCheckpoints(inst("count", 9), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Acks[up]; got != 10 {
		t.Errorf("merged ack for %v = %d, want the minimum 10", up, got)
	}
	if _, ok := merged.Acks[only]; ok {
		t.Errorf("merged acks retain %v, which one victim never saw", only)
	}
}

// TestMergeCheckpointsFoldsNestedLegacy: a victim that itself carries
// legacy buffers (an earlier merge not yet acknowledged) passes them
// through under the original owners.
func TestMergeCheckpointsFoldsNestedLegacy(t *testing.T) {
	old := inst("count", 0)
	a := mkCheckpoint(5, 6)
	a.Instance = inst("count", 1)
	lb := NewBuffer()
	lb.Append(inst("sink", 1), tuple(7, 1))
	a.Legacy = map[plan.InstanceID]*Buffer{old: lb}
	b := mkCheckpoint(5, 7)
	b.Instance = inst("count", 2)
	merged, err := MergeCheckpoints(inst("count", 9), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Legacy[old]; got == nil || got.Len() != 1 {
		t.Errorf("nested legacy for %v not carried through: %v", old, merged.Legacy)
	}
}

// TestCheckpointCodecRoundTripsLegacy: legacy buffers survive the wire
// and disk codec with owner identity, order and tuple contents intact.
func TestCheckpointCodecRoundTripsLegacy(t *testing.T) {
	cp := mkCheckpoint(4, 11)
	cp.Buffer = NewBuffer() // mkCheckpoint's tuples carry non-string payloads
	cp.Acks = map[plan.InstanceID]int64{inst("src", 1): 9}
	lb := NewBuffer()
	lb.Append(inst("sink", 1), stream.Tuple{TS: 3, Key: 1, Born: 2, Payload: "a"})
	lb.Append(inst("sink", 1), stream.Tuple{TS: 5, Key: 2, Born: 2, Payload: "b"})
	cp.Legacy = map[plan.InstanceID]*Buffer{
		inst("count", 7): lb,
		inst("count", 8): NewBuffer(), // empty owners are elided
	}
	e := stream.NewEncoder(256)
	if err := EncodeCheckpoint(e, cp, StringPayloadCodec{}); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(stream.NewDecoder(e.Bytes()), StringPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Legacy) != 1 {
		t.Fatalf("decoded legacy owners = %d, want 1 (empty elided): %v", len(got.Legacy), got.Legacy)
	}
	gb := got.Legacy[inst("count", 7)]
	if gb == nil {
		t.Fatalf("legacy owner lost in codec: %v", got.Legacy)
	}
	tuples := gb.Tuples(inst("sink", 1))
	if len(tuples) != 2 || tuples[0].TS != 3 || tuples[1].Payload != "b" {
		t.Errorf("legacy tuples corrupted: %v", tuples)
	}
}

func TestMergeCheckpointsErrors(t *testing.T) {
	if _, err := MergeCheckpoints(inst("x", 1)); err == nil {
		t.Error("merging zero checkpoints should fail")
	}
	a := mkCheckpoint(5, 6)
	b := mkCheckpoint(5, 7)
	b.Instance = inst("other", 1)
	if _, err := MergeCheckpoints(inst("count", 2), a, b); err == nil {
		t.Error("merging across logical operators should fail")
	}
}
