package state

import (
	"sort"

	"seep/internal/plan"
	"seep/internal/stream"
)

// Buffer is the buffer state βo of an operator: for each downstream
// logical operator, the output tuples sent but not yet covered by a
// downstream checkpoint (§3.1). Tuples are retained so they can be
// replayed after a downstream failure and re-routed after a downstream
// scale out; they are trimmed once a downstream state backup acknowledges
// them (Algorithm 1 line 4).
//
// Buffer is not safe for concurrent use; the owning node serialises
// access.
type Buffer struct {
	// perTarget holds, per downstream instance, the retained tuples in
	// emission (timestamp) order.
	perTarget map[plan.InstanceID][]stream.Tuple
}

// NewBuffer returns an empty output buffer.
func NewBuffer() *Buffer {
	return &Buffer{perTarget: make(map[plan.InstanceID][]stream.Tuple)}
}

// Append retains a tuple sent to the given downstream instance.
func (b *Buffer) Append(target plan.InstanceID, t stream.Tuple) {
	b.perTarget[target] = append(b.perTarget[target], t)
}

// Tuples returns the retained tuples for one downstream instance, βo(d),
// in emission order. The returned slice is a copy.
func (b *Buffer) Tuples(target plan.InstanceID) []stream.Tuple {
	src := b.perTarget[target]
	out := make([]stream.Tuple, len(src))
	copy(out, src)
	return out
}

// TuplesForOp returns all retained tuples for every instance of a logical
// downstream operator, merged in timestamp order. Used when the set of
// downstream partitions changed and old per-instance assignment is stale.
// Ties on TS (possible when per-target sequences are merged) break on
// key, then lineage birth time, so replay order after repartitioning is
// deterministic regardless of map iteration order.
func (b *Buffer) TuplesForOp(op plan.OpID) []stream.Tuple {
	var out []stream.Tuple
	for target, ts := range b.perTarget {
		if target.Op == op {
			out = append(out, ts...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Born < out[j].Born
	})
	return out
}

// Targets returns the downstream instances with retained tuples, in
// deterministic order.
func (b *Buffer) Targets() []plan.InstanceID {
	out := make([]plan.InstanceID, 0, len(b.perTarget))
	for t := range b.perTarget {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Part < out[j].Part
	})
	return out
}

// Trim discards tuples destined for any instance of logical operator op
// with timestamps ≤ ts — trim(o, τ) in §3.1, invoked after the downstream
// operator's state backup reflects those tuples. Returns the number of
// tuples discarded.
func (b *Buffer) Trim(op plan.OpID, ts int64) int {
	n := 0
	for target, tuples := range b.perTarget {
		if target.Op != op {
			continue
		}
		// Tuples are in emission order; find the first retained index.
		i := sort.Search(len(tuples), func(i int) bool { return tuples[i].TS > ts })
		if i == 0 {
			continue
		}
		n += i
		rest := make([]stream.Tuple, len(tuples)-i)
		copy(rest, tuples[i:])
		b.perTarget[target] = rest
	}
	return n
}

// TrimInstance discards tuples destined for exactly one downstream
// instance with timestamps ≤ ts. This is the acknowledgement-driven trim
// used when a partitioned downstream instance backs up its state: only
// the tuples that instance has reflected in its checkpoint may be
// discarded; siblings' tuples stay. Returns the number discarded.
func (b *Buffer) TrimInstance(target plan.InstanceID, ts int64) int {
	tuples := b.perTarget[target]
	i := sort.Search(len(tuples), func(i int) bool { return tuples[i].TS > ts })
	if i == 0 {
		return 0
	}
	rest := make([]stream.Tuple, len(tuples)-i)
	copy(rest, tuples[i:])
	b.perTarget[target] = rest
	return i
}

// TrimBornBefore discards tuples whose lineage entered the system before
// cutoff, across all targets. Upstream-backup and source-replay fault
// tolerance retain tuples only for the operator window; older tuples can
// never be needed again (§6.2). Returns the number discarded.
func (b *Buffer) TrimBornBefore(cutoff int64) int {
	n := 0
	for target, tuples := range b.perTarget {
		kept := tuples[:0]
		for _, t := range tuples {
			if t.Born >= cutoff {
				kept = append(kept, t)
			} else {
				n++
			}
		}
		b.perTarget[target] = kept
	}
	return n
}

// DropOp removes all retained tuples for instances of op, e.g. when the
// tuples were re-assigned during repartitioning. Returns the dropped
// tuples merged in timestamp order.
func (b *Buffer) DropOp(op plan.OpID) []stream.Tuple {
	out := b.TuplesForOp(op)
	for target := range b.perTarget {
		if target.Op == op {
			delete(b.perTarget, target)
		}
	}
	return out
}

// Repartition implements partition-buffer-state (Algorithm 2 lines 13-17):
// every retained tuple for logical operator op is re-assigned to the
// downstream instance owning its key under the new routing state. Tuples
// for other logical operators are untouched.
func (b *Buffer) Repartition(op plan.OpID, routing *Routing) {
	pending := b.DropOp(op)
	for _, t := range pending {
		b.Append(routing.Lookup(t.Key), t)
	}
}

// Len returns the total number of retained tuples across all targets.
func (b *Buffer) Len() int {
	n := 0
	for _, ts := range b.perTarget {
		n += len(ts)
	}
	return n
}

// LenFor returns the number of retained tuples for one downstream
// instance.
func (b *Buffer) LenFor(target plan.InstanceID) int { return len(b.perTarget[target]) }

// Clone returns a deep copy of the buffer (tuple slices copied; payloads
// are shared, as tuples are immutable by convention).
func (b *Buffer) Clone() *Buffer {
	out := NewBuffer()
	for target, ts := range b.perTarget {
		cp := make([]stream.Tuple, len(ts))
		copy(cp, ts)
		out.perTarget[target] = cp
	}
	return out
}
