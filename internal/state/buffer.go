package state

import (
	"sort"

	"seep/internal/plan"
	"seep/internal/stream"
)

// Buffer is the buffer state βo of an operator: for each downstream
// logical operator, the output tuples sent but not yet covered by a
// downstream checkpoint (§3.1). Tuples are retained so they can be
// replayed after a downstream failure and re-routed after a downstream
// scale out; they are trimmed once a downstream state backup acknowledges
// them (Algorithm 1 line 4).
//
// Tuples per target are kept in emission (timestamp) order, so the
// acknowledgement-driven trims locate the cut with a binary search and
// advance a head index instead of reslicing — amortised O(1) per tuple
// across the append/trim lifecycle, with periodic compaction bounding
// retained garbage to at most the live tuple count.
//
// Buffer is not safe for concurrent use; the owning node serialises
// access.
type Buffer struct {
	// perTarget holds, per downstream instance, the retained tuples.
	// Entries are pointers so BufHandle stays valid across trims and
	// repartitioning (see Handle).
	perTarget map[plan.InstanceID]*targetBuf
}

// targetBuf holds the retained tuples for one downstream instance.
// Live tuples are buf[head:]; buf[:head] has been trimmed (and zeroed,
// so payloads are collectable) but not yet compacted away.
type targetBuf struct {
	buf  []stream.Tuple
	head int
}

func (tb *targetBuf) live() []stream.Tuple { return tb.buf[tb.head:] }

func (tb *targetBuf) append(t stream.Tuple) { tb.buf = append(tb.buf, t) }

// trim discards live tuples with TS ≤ ts and returns how many. The cut
// is found with sort.Search over the TS-ordered live window; the head
// index advances in O(log n) plus O(trimmed) to release payloads.
func (tb *targetBuf) trim(ts int64) int {
	live := tb.live()
	i := sort.Search(len(live), func(i int) bool { return live[i].TS > ts })
	if i == 0 {
		return 0
	}
	for j := tb.head; j < tb.head+i; j++ {
		tb.buf[j] = stream.Tuple{}
	}
	tb.head += i
	tb.compact()
	return i
}

// compact slides the live window to the front once trimmed slots make up
// at least half of the backing array, so memory stays proportional to
// the live tuple count without paying a copy on every trim.
func (tb *targetBuf) compact() {
	if tb.head < 64 || tb.head*2 < len(tb.buf) {
		return
	}
	n := copy(tb.buf, tb.buf[tb.head:])
	tail := tb.buf[n:]
	for i := range tail {
		tail[i] = stream.Tuple{}
	}
	tb.buf = tb.buf[:n]
	tb.head = 0
}

// reset drops all tuples but keeps the struct (and any handles to it)
// valid.
func (tb *targetBuf) reset() {
	for i := range tb.buf {
		tb.buf[i] = stream.Tuple{}
	}
	tb.buf = tb.buf[:0]
	tb.head = 0
}

// NewBuffer returns an empty output buffer.
func NewBuffer() *Buffer {
	return &Buffer{perTarget: make(map[plan.InstanceID]*targetBuf)}
}

func (b *Buffer) target(t plan.InstanceID) *targetBuf {
	tb := b.perTarget[t]
	if tb == nil {
		tb = &targetBuf{}
		b.perTarget[t] = tb
	}
	return tb
}

// Append retains a tuple sent to the given downstream instance.
func (b *Buffer) Append(target plan.InstanceID, t stream.Tuple) {
	b.target(target).append(t)
}

// BufHandle is a stable append handle for one downstream instance,
// letting hot emit paths skip the per-tuple map lookup of Append. A
// handle stays valid for the lifetime of its Buffer — including across
// trims and Repartition, which clear per-target storage in place rather
// than dropping it — and is invalidated only when the owning node
// replaces the Buffer object wholesale (restore from checkpoint), after
// which handles must be re-acquired.
type BufHandle struct{ tb *targetBuf }

// Handle returns the append handle for a downstream instance, creating
// empty storage for it if needed.
func (b *Buffer) Handle(target plan.InstanceID) BufHandle {
	return BufHandle{tb: b.target(target)}
}

// Append retains a tuple via the cached handle.
func (h BufHandle) Append(t stream.Tuple) { h.tb.append(t) }

// Tuples returns the retained tuples for one downstream instance, βo(d),
// in emission order. The returned slice is a copy.
func (b *Buffer) Tuples(target plan.InstanceID) []stream.Tuple {
	tb := b.perTarget[target]
	if tb == nil {
		return nil
	}
	src := tb.live()
	out := make([]stream.Tuple, len(src))
	copy(out, src)
	return out
}

// TuplesForOp returns all retained tuples for every instance of a logical
// downstream operator, merged in timestamp order. Used when the set of
// downstream partitions changed and old per-instance assignment is stale.
// Ties on TS (possible when per-target sequences are merged) break on
// key, then lineage birth time, so replay order after repartitioning is
// deterministic regardless of map iteration order.
func (b *Buffer) TuplesForOp(op plan.OpID) []stream.Tuple {
	var out []stream.Tuple
	for target, tb := range b.perTarget {
		if target.Op == op {
			out = append(out, tb.live()...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Born < out[j].Born
	})
	return out
}

// Targets returns the downstream instances with retained tuples, in
// deterministic order.
func (b *Buffer) Targets() []plan.InstanceID {
	out := make([]plan.InstanceID, 0, len(b.perTarget))
	for t, tb := range b.perTarget {
		if len(tb.live()) > 0 {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Part < out[j].Part
	})
	return out
}

// Trim discards tuples destined for any instance of logical operator op
// with timestamps ≤ ts — trim(o, τ) in §3.1, invoked after the downstream
// operator's state backup reflects those tuples. Returns the number of
// tuples discarded.
func (b *Buffer) Trim(op plan.OpID, ts int64) int {
	n := 0
	for target, tb := range b.perTarget {
		if target.Op != op {
			continue
		}
		n += tb.trim(ts)
	}
	return n
}

// TrimInstance discards tuples destined for exactly one downstream
// instance with timestamps ≤ ts. This is the acknowledgement-driven trim
// used when a partitioned downstream instance backs up its state: only
// the tuples that instance has reflected in its checkpoint may be
// discarded; siblings' tuples stay. Returns the number discarded.
func (b *Buffer) TrimInstance(target plan.InstanceID, ts int64) int {
	tb := b.perTarget[target]
	if tb == nil {
		return 0
	}
	return tb.trim(ts)
}

// TrimBornBefore discards tuples whose lineage entered the system before
// cutoff, across all targets. Upstream-backup and source-replay fault
// tolerance retain tuples only for the operator window; older tuples can
// never be needed again (§6.2). Returns the number discarded.
func (b *Buffer) TrimBornBefore(cutoff int64) int {
	n := 0
	for _, tb := range b.perTarget {
		live := tb.live()
		kept := live[:0]
		for _, t := range live {
			if t.Born >= cutoff {
				kept = append(kept, t)
			} else {
				n++
			}
		}
		for i := len(kept); i < len(live); i++ {
			live[i] = stream.Tuple{}
		}
		tb.buf = tb.buf[:tb.head+len(kept)]
		tb.compact()
	}
	return n
}

// DropOp removes all retained tuples for instances of op, e.g. when the
// tuples were re-assigned during repartitioning. Returns the dropped
// tuples merged in timestamp order. Per-target storage is cleared in
// place, so handles obtained before the drop remain valid.
func (b *Buffer) DropOp(op plan.OpID) []stream.Tuple {
	out := b.TuplesForOp(op)
	for target, tb := range b.perTarget {
		if target.Op == op {
			tb.reset()
		}
	}
	return out
}

// Repartition implements partition-buffer-state (Algorithm 2 lines 13-17):
// every retained tuple for logical operator op is re-assigned to the
// downstream instance owning its key under the new routing state. Tuples
// for other logical operators are untouched.
func (b *Buffer) Repartition(op plan.OpID, routing *Routing) {
	pending := b.DropOp(op)
	for _, t := range pending {
		b.Append(routing.Lookup(t.Key), t)
	}
}

// Len returns the total number of retained tuples across all targets.
func (b *Buffer) Len() int {
	n := 0
	for _, tb := range b.perTarget {
		n += len(tb.live())
	}
	return n
}

// LenFor returns the number of retained tuples for one downstream
// instance.
func (b *Buffer) LenFor(target plan.InstanceID) int {
	tb := b.perTarget[target]
	if tb == nil {
		return 0
	}
	return len(tb.live())
}

// Clone returns a deep copy of the buffer (tuple slices copied; payloads
// are shared, as tuples are immutable by convention). Targets with no
// live tuples are omitted from the copy.
func (b *Buffer) Clone() *Buffer {
	out := NewBuffer()
	for target, tb := range b.perTarget {
		src := tb.live()
		if len(src) == 0 {
			continue
		}
		cp := make([]stream.Tuple, len(src))
		copy(cp, src)
		out.perTarget[target] = &targetBuf{buf: cp}
	}
	return out
}
