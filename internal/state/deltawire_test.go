package state

import (
	"bytes"
	"strings"
	"testing"

	"seep/internal/plan"
	"seep/internal/stream"
)

func testDeltaCheckpoint() *DeltaCheckpoint {
	buf := NewBuffer()
	buf.Append(plan.InstanceID{Op: "sink", Part: 0},
		stream.Tuple{TS: 9, Key: 3, Born: 1, Payload: "retained"})
	return &DeltaCheckpoint{
		Instance: plan.InstanceID{Op: "count", Part: 1},
		Delta: &Delta{
			Base: 4,
			Seq:  5,
			Changed: map[stream.Key][]byte{
				7:   []byte("seven"),
				2:   []byte("two"),
				900: {},
			},
			Deleted: []stream.Key{11, 1},
			TS:      stream.TSVector{42, 40},
		},
		Buffer:   buf,
		OutClock: 42,
		Acks: map[plan.InstanceID]int64{
			{Op: "src", Part: 0}: 40,
			{Op: "src", Part: 1}: 39,
		},
	}
}

func deltaEqual(t *testing.T, got, want *DeltaCheckpoint) {
	t.Helper()
	if got.Instance != want.Instance {
		t.Fatalf("instance %v want %v", got.Instance, want.Instance)
	}
	if got.Delta.Base != want.Delta.Base || got.Delta.Seq != want.Delta.Seq {
		t.Fatalf("seq %d/%d want %d/%d", got.Delta.Base, got.Delta.Seq, want.Delta.Base, want.Delta.Seq)
	}
	if len(got.Delta.Changed) != len(want.Delta.Changed) {
		t.Fatalf("changed %d want %d", len(got.Delta.Changed), len(want.Delta.Changed))
	}
	for k, v := range want.Delta.Changed {
		if !bytes.Equal(got.Delta.Changed[k], v) {
			t.Fatalf("changed[%d] = %q want %q", k, got.Delta.Changed[k], v)
		}
	}
	if len(got.Delta.Deleted) != len(want.Delta.Deleted) {
		t.Fatalf("deleted %v want %v", got.Delta.Deleted, want.Delta.Deleted)
	}
	if got.OutClock != want.OutClock {
		t.Fatalf("outclock %d want %d", got.OutClock, want.OutClock)
	}
	if len(got.Acks) != len(want.Acks) {
		t.Fatalf("acks %v want %v", got.Acks, want.Acks)
	}
	for id, ts := range want.Acks {
		if got.Acks[id] != ts {
			t.Fatalf("ack[%v] = %d want %d", id, got.Acks[id], ts)
		}
	}
	if got.Buffer.Len() != want.Buffer.Len() {
		t.Fatalf("buffer len %d want %d", got.Buffer.Len(), want.Buffer.Len())
	}
}

func TestDeltaCheckpointRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		want := testDeltaCheckpoint()
		e := stream.NewEncoder(256)
		if err := EncodeDeltaCheckpoint(e, want, StringPayloadCodec{}, compress); err != nil {
			t.Fatalf("compress=%v encode: %v", compress, err)
		}
		got, err := DecodeDeltaCheckpoint(stream.NewDecoder(e.Bytes()), StringPayloadCodec{})
		if err != nil {
			t.Fatalf("compress=%v decode: %v", compress, err)
		}
		deltaEqual(t, got, want)
	}
}

func TestDeltaCheckpointDeterministic(t *testing.T) {
	// Map iteration order must not leak into the encoding: repeated
	// encodes of the same value are byte-identical.
	want := testDeltaCheckpoint()
	var first []byte
	for i := 0; i < 20; i++ {
		e := stream.NewEncoder(256)
		if err := EncodeDeltaCheckpoint(e, want, StringPayloadCodec{}, false); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = append([]byte(nil), e.Bytes()...)
		} else if !bytes.Equal(first, e.Bytes()) {
			t.Fatalf("encode %d differs from first encode", i)
		}
	}
}

func TestDeltaCheckpointCompressionShrinks(t *testing.T) {
	dc := testDeltaCheckpoint()
	// Highly compressible state: one repeated byte pattern per key.
	dc.Delta.Changed = map[stream.Key][]byte{}
	for k := stream.Key(0); k < 200; k++ {
		dc.Delta.Changed[k] = bytes.Repeat([]byte("abcdefgh"), 32)
	}
	raw := stream.NewEncoder(1 << 10)
	if err := EncodeDeltaCheckpoint(raw, dc, StringPayloadCodec{}, false); err != nil {
		t.Fatal(err)
	}
	zip := stream.NewEncoder(1 << 10)
	if err := EncodeDeltaCheckpoint(zip, dc, StringPayloadCodec{}, true); err != nil {
		t.Fatal(err)
	}
	if zip.Len() >= raw.Len() {
		t.Fatalf("compressed %d bytes, raw %d", zip.Len(), raw.Len())
	}
	got, err := DecodeDeltaCheckpoint(stream.NewDecoder(zip.Bytes()), StringPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Delta.Changed) != 200 {
		t.Fatalf("changed %d want 200", len(got.Delta.Changed))
	}
}

func TestDeltaCheckpointBadMagic(t *testing.T) {
	e := stream.NewEncoder(16)
	e.Uint32(0xdeadbeef)
	e.Uint8(deltaRaw)
	e.BytesV(nil)
	_, err := DecodeDeltaCheckpoint(stream.NewDecoder(e.Bytes()), StringPayloadCodec{})
	if err == nil || !strings.Contains(err.Error(), "not a delta checkpoint") {
		t.Fatalf("want magic error, got %v", err)
	}
}

// FuzzDecodeDeltaCheckpoint hardens the delta frame decoder the same way
// FuzzJournalReplay hardens the control-plane journal: truncated,
// bit-flipped and garbage bodies must return errors, never panic or
// hang.
func FuzzDecodeDeltaCheckpoint(f *testing.F) {
	for _, compress := range []bool{false, true} {
		e := stream.NewEncoder(256)
		if err := EncodeDeltaCheckpoint(e, testDeltaCheckpoint(), StringPayloadCodec{}, compress); err != nil {
			f.Fatal(err)
		}
		full := e.Bytes()
		f.Add(append([]byte(nil), full...))
		f.Add(append([]byte(nil), full[:len(full)/2]...)) // truncated
		flipped := append([]byte(nil), full...)
		flipped[len(flipped)/2] ^= 0x40 // corrupt interior byte
		f.Add(flipped)
	}
	f.Add([]byte("SEPDgarbage-that-is-not-a-delta"))
	f.Add([]byte{0x44, 0x50, 0x45, 0x53, deltaFlate, 0xff, 0x01, 0x02}) // bogus flate stream
	f.Fuzz(func(t *testing.T, data []byte) {
		dc, err := DecodeDeltaCheckpoint(stream.NewDecoder(data), StringPayloadCodec{})
		if err == nil && (dc == nil || dc.Delta == nil) {
			t.Fatal("nil delta checkpoint without error")
		}
	})
}
