// Managed keyed state: the system-owned replacement for the deprecated
// SnapshotKV/RestoreKV operator contract. Operators declare typed state
// cells (Value[T], Map[T]) against a Store; the Store owns locking,
// serialisation, deep-copy snapshots, restore, and — because every
// mutation passes through it — the dirty-key tracking that makes
// incremental checkpoints (§3.2) possible without operator cooperation.
//
// State remains key/value pairs over the tuple key space on the wire, so
// the partition/merge primitives of Algorithm 2 keep working unchanged:
// a Store's snapshot can be split by key range, shipped, and restored
// into a fresh Store on another instance.
package state

import (
	"fmt"
	"sort"
	"sync"

	"seep/internal/stream"
)

// Store holds the managed keyed state of one operator instance. Cells are
// registered at operator construction (NewValue/NewMap); all access goes
// through cell methods, which serialise on the store's lock — operators
// built on a Store need no mutex of their own, on either substrate.
//
// Each cell method call is atomic. Mutations that must be atomic as a
// unit (read-modify-write) should use the cells' Update methods, whose
// callbacks run under the store lock; such callbacks must not call back
// into any cell of the same store.
type Store struct {
	mu     sync.Mutex
	cells  []storeCell
	byName map[string]storeCell
	// touched holds the keys written or deleted since the last
	// TakeCheckpoint/TakeDelta — the raw material of Delta checkpoints.
	touched map[stream.Key]struct{}
	// lastFullSize is the serialised footprint of the last full
	// checkpoint, the baseline for DeltaPolicy's size fallback.
	lastFullSize int
	// spill, when armed (EnableSpill), moves cold key ranges to disk
	// under a memory ceiling; nil when disarmed, so the steady-state
	// access path pays one atomic pointer load (spill_store.go).
	spill spillPtr
}

// NewStore returns an empty store ready for cell registration.
func NewStore() *Store {
	return &Store{
		byName:  make(map[string]storeCell),
		touched: make(map[stream.Key]struct{}),
	}
}

// storeCell is the store's view of one registered cell. All methods are
// called with the store lock held.
type storeCell interface {
	cellName() string
	// encodeLocked serialises the cell's fragment for key k; ok=false
	// when the cell holds nothing under k.
	encodeLocked(k stream.Key) (b []byte, ok bool, err error)
	// decodeLocked installs a fragment previously produced by
	// encodeLocked.
	decodeLocked(k stream.Key, b []byte) error
	// addKeysLocked inserts every key the cell holds into set.
	addKeysLocked(set map[stream.Key]struct{})
	// resetLocked drops all data.
	resetLocked()
	// lenLocked returns the number of keys the cell holds.
	lenLocked() int
	// deleteKeyLocked drops k without any dirty-key side effect (used by
	// spilling, which is not a semantic delete).
	deleteKeyLocked(k stream.Key)
	// compactLocked reallocates the cell's backing map so buckets freed
	// by a mass deletion (a spill pass) return to the allocator.
	compactLocked()
}

// register binds a cell to the store. Cell names must be unique and
// non-empty; violations are programming errors and panic.
func (s *Store) register(c storeCell) {
	s.mu.Lock()
	defer s.mu.Unlock()
	name := c.cellName()
	if name == "" {
		panic("state: cell with empty name")
	}
	if _, dup := s.byName[name]; dup {
		panic(fmt.Sprintf("state: duplicate cell %q", name))
	}
	s.byName[name] = c
	s.cells = append(s.cells, c)
}

// touchLocked records that the state under k changed (write or delete).
func (s *Store) touchLocked(k stream.Key) {
	s.touched[k] = struct{}{}
	s.spillNoteWriteLocked()
}

// unionKeysLocked returns the set of keys held by any cell.
func (s *Store) unionKeysLocked() map[stream.Key]struct{} {
	set := make(map[stream.Key]struct{})
	for _, c := range s.cells {
		c.addKeysLocked(set)
	}
	return set
}

// encodeKeyLocked serialises the per-key union of all cell fragments:
// a fragment count, then (cell name, fragment bytes) pairs in cell
// registration order. ok=false when no cell holds k.
func (s *Store) encodeKeyLocked(k stream.Key) ([]byte, bool, error) {
	type frag struct {
		name string
		b    []byte
	}
	var frags []frag
	for _, c := range s.cells {
		b, ok, err := c.encodeLocked(k)
		if err != nil {
			return nil, false, fmt.Errorf("state: cell %q: encode key %d: %w", c.cellName(), k, err)
		}
		if ok {
			frags = append(frags, frag{name: c.cellName(), b: b})
		}
	}
	if len(frags) == 0 {
		return nil, false, nil
	}
	e := stream.NewEncoder(16)
	e.Uint32(uint32(len(frags)))
	for _, f := range frags {
		e.String32(f.name)
		e.Bytes32(f.b)
	}
	return e.Bytes(), true, nil
}

// Snapshot returns a deep copy of the full state as key/value pairs —
// the get-processing-state function of §3.1, now implemented once by the
// system instead of by every operator. Snapshot is a pure observation:
// it does not reset dirty-key tracking (see TakeCheckpoint).
func (s *Store) Snapshot() (map[stream.Key][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() (map[stream.Key][]byte, error) {
	// Spilled ranges are transparent to checkpointing (§3.3): load them
	// back before observing. A recorded spill I/O error fails the
	// snapshot here rather than dropping state silently.
	if err := s.materializeAllLocked(); err != nil {
		return nil, err
	}
	keys := s.unionKeysLocked()
	out := make(map[stream.Key][]byte, len(keys))
	for k := range keys {
		b, ok, err := s.encodeKeyLocked(k)
		if err != nil {
			return nil, err
		}
		if ok {
			out[k] = b
		}
	}
	return out, nil
}

// TakeCheckpoint snapshots the full state for a checkpoint: like
// Snapshot, but it also resets dirty-key tracking (subsequent deltas are
// relative to this checkpoint) and records the snapshot's serialised
// size as the baseline for DeltaPolicy. On error the tracking state is
// untouched, so a failed checkpoint loses nothing.
func (s *Store) TakeCheckpoint() (map[stream.Key][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out, err := s.snapshotLocked()
	if err != nil {
		return nil, err
	}
	size := 0
	for _, v := range out {
		size += 8 + len(v)
	}
	s.lastFullSize = size
	s.touched = make(map[stream.Key]struct{})
	return out, nil
}

// TakeDelta extracts an incremental checkpoint: the serialised fragments
// of every key touched since the last TakeCheckpoint/TakeDelta, plus the
// touched keys no longer held by any cell (deletions). Base and seq are
// the checkpoint sequence numbers the delta chains between; ts is the
// operator's input timestamp vector at extraction time. On success the
// dirty-key tracking resets; on error it is untouched.
func (s *Store) TakeDelta(ts stream.TSVector, base, seq uint64) (*Delta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := &Delta{
		Base:    base,
		Seq:     seq,
		Changed: make(map[stream.Key][]byte, len(s.touched)),
		TS:      ts.Clone(),
	}
	for k := range s.touched {
		// A dirty key can have been spilled since it was written; deltas
		// encode exactly the dirty set, so make it resident first.
		s.residentLocked(k)
		b, ok, err := s.encodeKeyLocked(k)
		if err != nil {
			return nil, err
		}
		if ok {
			d.Changed[k] = b
		} else {
			d.Deleted = append(d.Deleted, k)
		}
	}
	sort.Slice(d.Deleted, func(i, j int) bool { return d.Deleted[i] < d.Deleted[j] })
	s.touched = make(map[stream.Key]struct{})
	return d, nil
}

// Restore replaces the entire store contents with a snapshot produced by
// Snapshot/TakeCheckpoint (set-processing-state, §3.1) — possibly one
// partitioned by key range or merged from siblings. Dirty-key tracking
// resets; a fragment naming an unregistered cell or failing to decode is
// an error (state must never be dropped silently), and leaves the store
// partially restored.
func (s *Store) Restore(kv map[stream.Key][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The restored snapshot replaces everything: spilled fragments of
	// the old state are discarded, never resurrected.
	if sp := s.spill.Load(); sp != nil {
		sp.discardLocked()
	}
	for _, c := range s.cells {
		c.resetLocked()
	}
	s.touched = make(map[stream.Key]struct{})
	s.lastFullSize = 0
	for k, v := range kv {
		if err := s.decodeKeyLocked(k, v); err != nil {
			return err
		}
	}
	return nil
}

// decodeKeyLocked installs one per-key fragment union produced by
// encodeKeyLocked, dispatching each fragment to its cell.
func (s *Store) decodeKeyLocked(k stream.Key, v []byte) error {
	d := stream.NewDecoder(v)
	n := int(d.Uint32())
	for i := 0; i < n; i++ {
		name := d.String32()
		frag := d.Bytes32()
		if err := d.Err(); err != nil {
			return fmt.Errorf("state: restore key %d: %w", k, err)
		}
		c, ok := s.byName[name]
		if !ok {
			return fmt.Errorf("state: restore key %d: unknown cell %q", k, name)
		}
		if err := c.decodeLocked(k, frag); err != nil {
			return fmt.Errorf("state: cell %q: decode key %d: %w", name, k, err)
		}
	}
	return nil
}

// DirtyCount returns the number of keys touched since the last
// TakeCheckpoint/TakeDelta.
func (s *Store) DirtyCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.touched)
}

// LastFullSize returns the serialised size of the last TakeCheckpoint
// (0 before the first, or after Restore).
func (s *Store) LastFullSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastFullSize
}

// Len returns the number of distinct keys held by any cell (including
// spilled keys, which are loaded back to be counted).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.materializeAllLocked()
	return len(s.unionKeysLocked())
}

// Keys returns every key held by any cell, ascending.
func (s *Store) Keys() []stream.Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.materializeAllLocked()
	set := s.unionKeysLocked()
	out := make([]stream.Key, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- typed cells ---

// Value is a keyed state cell holding one T per tuple key — the managed
// replacement for an operator's map[Key]V plus mutex plus codec.
type Value[T any] struct {
	s     *Store
	nm    string
	codec Codec[T]
	data  map[stream.Key]T
}

// NewValue registers a Value cell with the store. A nil codec defaults
// to gob. Cell names identify fragments in snapshots and must be unique
// within the store.
func NewValue[T any](s *Store, name string, codec Codec[T]) *Value[T] {
	if codec == nil {
		codec = GobCodec[T]{}
	}
	v := &Value[T]{s: s, nm: name, codec: codec, data: make(map[stream.Key]T)}
	s.register(v)
	return v
}

// Get returns the value under k (zero value, false when absent). For
// reference types the returned value aliases the stored one: treat it as
// read-only and mutate through Set/Update so changes are tracked.
func (v *Value[T]) Get(k stream.Key) (T, bool) {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	v.s.residentLocked(k)
	val, ok := v.data[k]
	return val, ok
}

// Set stores val under k.
func (v *Value[T]) Set(k stream.Key, val T) {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	v.s.residentLocked(k)
	v.data[k] = val
	v.s.touchLocked(k)
}

// Update atomically replaces the value under k with f(current), passing
// the zero value when absent, and returns the new value. f runs under
// the store lock and must not access any cell of the same store.
func (v *Value[T]) Update(k stream.Key, f func(T) T) T {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	v.s.residentLocked(k)
	nv := f(v.data[k])
	v.data[k] = nv
	v.s.touchLocked(k)
	return nv
}

// Transform atomically replaces the value under k with f(current),
// passing the zero value when absent; when f reports keep=false the key
// is deleted instead — an atomic update-or-expire. f runs under the
// store lock and must not access any cell of the same store.
func (v *Value[T]) Transform(k stream.Key, f func(T) (nv T, keep bool)) {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	v.s.residentLocked(k)
	cur, had := v.data[k]
	nv, keep := f(cur)
	switch {
	case keep:
		v.data[k] = nv
		v.s.touchLocked(k)
	case had:
		delete(v.data, k)
		v.s.touchLocked(k)
	}
}

// Delete removes the value under k.
func (v *Value[T]) Delete(k stream.Key) {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	v.s.residentLocked(k)
	if _, ok := v.data[k]; ok {
		delete(v.data, k)
		v.s.touchLocked(k)
	}
}

// Len returns the number of keys held.
func (v *Value[T]) Len() int {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	v.s.materializeAllLocked()
	return len(v.data)
}

// Keys returns the held keys, ascending.
func (v *Value[T]) Keys() []stream.Key {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	v.s.materializeAllLocked()
	return sortedKeys(v.data)
}

// ForEach visits every (key, value) pair in ascending key order. f must
// not access any cell of the same store.
func (v *Value[T]) ForEach(f func(k stream.Key, val T)) {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	v.s.materializeAllLocked()
	for _, k := range sortedKeys(v.data) {
		f(k, v.data[k])
	}
}

// Drain atomically removes and returns the whole cell contents — the
// tumbling-window flush primitive.
func (v *Value[T]) Drain() map[stream.Key]T {
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	v.s.materializeAllLocked()
	out := v.data
	v.data = make(map[stream.Key]T)
	for k := range out {
		v.s.touchLocked(k)
	}
	return out
}

func (v *Value[T]) cellName() string { return v.nm }

func (v *Value[T]) encodeLocked(k stream.Key) ([]byte, bool, error) {
	val, ok := v.data[k]
	if !ok {
		return nil, false, nil
	}
	b, err := v.codec.Encode(val)
	return b, true, err
}

func (v *Value[T]) decodeLocked(k stream.Key, b []byte) error {
	val, err := v.codec.Decode(b)
	if err != nil {
		return err
	}
	v.data[k] = val
	return nil
}

func (v *Value[T]) addKeysLocked(set map[stream.Key]struct{}) {
	for k := range v.data {
		set[k] = struct{}{}
	}
}

func (v *Value[T]) resetLocked() { v.data = make(map[stream.Key]T) }

func (v *Value[T]) lenLocked() int { return len(v.data) }

func (v *Value[T]) deleteKeyLocked(k stream.Key) { delete(v.data, k) }

func (v *Value[T]) compactLocked() {
	nd := make(map[stream.Key]T, len(v.data))
	for k, val := range v.data {
		nd[k] = val
	}
	v.data = nd
}

// Map is a keyed state cell holding a string-indexed map of T per tuple
// key — the managed replacement for the map[Key]map[string]V dictionaries
// of counting operators.
type Map[T any] struct {
	s     *Store
	nm    string
	codec Codec[T]
	data  map[stream.Key]map[string]T
}

// NewMap registers a Map cell with the store. A nil codec defaults to
// gob.
func NewMap[T any](s *Store, name string, codec Codec[T]) *Map[T] {
	if codec == nil {
		codec = GobCodec[T]{}
	}
	m := &Map[T]{s: s, nm: name, codec: codec, data: make(map[stream.Key]map[string]T)}
	s.register(m)
	return m
}

// Get returns the value under (k, field).
func (m *Map[T]) Get(k stream.Key, field string) (T, bool) {
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	m.s.residentLocked(k)
	val, ok := m.data[k][field]
	return val, ok
}

// Put stores val under (k, field).
func (m *Map[T]) Put(k stream.Key, field string, val T) {
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	m.s.residentLocked(k)
	inner := m.data[k]
	if inner == nil {
		inner = make(map[string]T)
		m.data[k] = inner
	}
	inner[field] = val
	m.s.touchLocked(k)
}

// Update atomically replaces the value under (k, field) with f(current),
// passing the zero value when absent, and returns the new value. f runs
// under the store lock and must not access any cell of the same store.
func (m *Map[T]) Update(k stream.Key, field string, f func(T) T) T {
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	m.s.residentLocked(k)
	inner := m.data[k]
	if inner == nil {
		inner = make(map[string]T)
		m.data[k] = inner
	}
	nv := f(inner[field])
	inner[field] = nv
	m.s.touchLocked(k)
	return nv
}

// Delete removes every field under k.
func (m *Map[T]) Delete(k stream.Key) {
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	m.s.residentLocked(k)
	if _, ok := m.data[k]; ok {
		delete(m.data, k)
		m.s.touchLocked(k)
	}
}

// Len returns the number of keys held.
func (m *Map[T]) Len() int {
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	m.s.materializeAllLocked()
	return len(m.data)
}

// FieldCount returns the total number of (key, field) entries.
func (m *Map[T]) FieldCount() int {
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	m.s.materializeAllLocked()
	n := 0
	for _, inner := range m.data {
		n += len(inner)
	}
	return n
}

// ForEach visits every (key, field, value) triple, keys ascending and
// fields sorted. f must not access any cell of the same store.
func (m *Map[T]) ForEach(f func(k stream.Key, field string, val T)) {
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	m.s.materializeAllLocked()
	for _, k := range sortedKeys(m.data) {
		inner := m.data[k]
		fields := make([]string, 0, len(inner))
		for field := range inner {
			fields = append(fields, field)
		}
		sort.Strings(fields)
		for _, field := range fields {
			f(k, field, inner[field])
		}
	}
}

// Drain atomically removes and returns the whole cell contents — the
// tumbling-window flush primitive.
func (m *Map[T]) Drain() map[stream.Key]map[string]T {
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	m.s.materializeAllLocked()
	out := m.data
	m.data = make(map[stream.Key]map[string]T)
	for k := range out {
		m.s.touchLocked(k)
	}
	return out
}

func (m *Map[T]) cellName() string { return m.nm }

func (m *Map[T]) encodeLocked(k stream.Key) ([]byte, bool, error) {
	inner, ok := m.data[k]
	if !ok {
		return nil, false, nil
	}
	fields := make([]string, 0, len(inner))
	for field := range inner {
		fields = append(fields, field)
	}
	sort.Strings(fields)
	e := stream.NewEncoder(16 * len(fields))
	e.Uint32(uint32(len(fields)))
	for _, field := range fields {
		b, err := m.codec.Encode(inner[field])
		if err != nil {
			return nil, false, err
		}
		e.String32(field)
		e.Bytes32(b)
	}
	return e.Bytes(), true, nil
}

func (m *Map[T]) decodeLocked(k stream.Key, b []byte) error {
	d := stream.NewDecoder(b)
	n := int(d.Uint32())
	inner := make(map[string]T, n)
	for i := 0; i < n; i++ {
		field := d.String32()
		frag := d.Bytes32()
		if err := d.Err(); err != nil {
			return err
		}
		val, err := m.codec.Decode(frag)
		if err != nil {
			return err
		}
		inner[field] = val
	}
	m.data[k] = inner
	return nil
}

func (m *Map[T]) addKeysLocked(set map[stream.Key]struct{}) {
	for k := range m.data {
		set[k] = struct{}{}
	}
}

func (m *Map[T]) resetLocked() { m.data = make(map[stream.Key]map[string]T) }

func (m *Map[T]) lenLocked() int { return len(m.data) }

func (m *Map[T]) deleteKeyLocked(k stream.Key) { delete(m.data, k) }

func (m *Map[T]) compactLocked() {
	nd := make(map[stream.Key]map[string]T, len(m.data))
	for k, inner := range m.data {
		nd[k] = inner
	}
	m.data = nd
}

func sortedKeys[V any](data map[stream.Key]V) []stream.Key {
	out := make([]stream.Key, 0, len(data))
	for k := range data {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
