package state

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"seep/internal/stream"
)

func mkProcessing(n int, seed int64) *Processing {
	rng := rand.New(rand.NewSource(seed))
	p := NewProcessing(2)
	for i := 0; i < n; i++ {
		k := stream.Key(rng.Uint64())
		v := make([]byte, 4+rng.Intn(24))
		rng.Read(v)
		p.KV[k] = v
	}
	p.TS = stream.TSVector{int64(n), int64(2 * n)}
	return p
}

func TestProcessingCloneIsolation(t *testing.T) {
	p := mkProcessing(10, 1)
	c := p.Clone()
	if !p.Equal(c) {
		t.Fatal("clone differs from original")
	}
	for k := range c.KV {
		c.KV[k][0] ^= 0xff
		break
	}
	c.TS[0] = 999
	if p.TS[0] == 999 {
		t.Error("clone shares TS vector")
	}
	if p.Equal(c) {
		t.Error("mutating clone should diverge from original")
	}
}

func TestProcessingSize(t *testing.T) {
	p := NewProcessing(1)
	if p.Size() != 8 {
		t.Errorf("empty state size = %d, want 8 (1 ts)", p.Size())
	}
	p.KV[1] = []byte{1, 2, 3, 4}
	if p.Size() != 8+8+4 {
		t.Errorf("size = %d, want 20", p.Size())
	}
	var nilP *Processing
	if nilP.Size() != 0 || nilP.Len() != 0 {
		t.Error("nil state should have zero size and length")
	}
}

func TestProcessingEncodeDecode(t *testing.T) {
	p := mkProcessing(50, 2)
	e := stream.NewEncoder(0)
	p.Encode(e)
	got, err := DecodeProcessing(stream.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !p.Equal(got) {
		t.Error("round trip changed processing state")
	}
}

func TestDecodeProcessingCorrupt(t *testing.T) {
	p := mkProcessing(5, 3)
	e := stream.NewEncoder(0)
	p.Encode(e)
	b := e.Bytes()
	if _, err := DecodeProcessing(stream.NewDecoder(b[:len(b)/2])); err == nil {
		t.Error("expected error decoding truncated state")
	}
}

// TestPartitionDisjointUnion is the central invariant of Algorithm 2:
// partitioning processing state over ranges that tile the key interval
// yields disjoint parts whose union is exactly the original state.
func TestPartitionDisjointUnion(t *testing.T) {
	for _, pi := range []int{1, 2, 3, 5, 8} {
		p := mkProcessing(200, int64(pi))
		ranges := FullRange.SplitEven(pi)
		parts := p.Partition(ranges)
		if len(parts) != pi {
			t.Fatalf("pi=%d: got %d parts", pi, len(parts))
		}
		total := 0
		for i, part := range parts {
			total += part.Len()
			if !part.TS.Equal(p.TS) {
				t.Errorf("pi=%d part=%d: TS = %v, want %v", pi, i, part.TS, p.TS)
			}
			for k := range part.KV {
				if !ranges[i].Contains(k) {
					t.Errorf("pi=%d part=%d: key %d outside range %v", pi, i, k, ranges[i])
				}
			}
		}
		if total != p.Len() {
			t.Errorf("pi=%d: parts hold %d keys, original %d", pi, total, p.Len())
		}
		merged, err := MergeProcessing(parts...)
		if err != nil {
			t.Fatalf("pi=%d: merge: %v", pi, err)
		}
		if !merged.Equal(p) {
			t.Errorf("pi=%d: merge(partition(p)) != p", pi)
		}
	}
}

func TestPartitionMergeQuick(t *testing.T) {
	f := func(seed int64, piRaw uint8) bool {
		pi := 1 + int(piRaw%7)
		p := mkProcessing(64, seed)
		parts := p.Partition(FullRange.SplitEven(pi))
		merged, err := MergeProcessing(parts...)
		if err != nil {
			return false
		}
		return merged.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMergeProcessingOverlapFails(t *testing.T) {
	a := NewProcessing(1)
	a.KV[7] = []byte{1}
	b := NewProcessing(1)
	b.KV[7] = []byte{2}
	if _, err := MergeProcessing(a, b); err == nil {
		t.Error("expected overlap error")
	}
}

func TestMergeProcessingNilInputs(t *testing.T) {
	a := NewProcessing(1)
	a.KV[1] = []byte{1}
	got, err := MergeProcessing(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("merge with nil input lost keys: %d", got.Len())
	}
}

func TestProcessingKeysSorted(t *testing.T) {
	p := mkProcessing(30, 9)
	keys := p.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys not strictly sorted at %d", i)
		}
	}
	if len(keys) != p.Len() {
		t.Errorf("Keys() returned %d, want %d", len(keys), p.Len())
	}
}

func TestProcessingEqualEdgeCases(t *testing.T) {
	var nilP *Processing
	empty := NewProcessing(0)
	if !nilP.Equal(empty) {
		t.Error("nil and empty processing state should be Equal")
	}
	a := NewProcessing(1)
	a.KV[1] = []byte{1}
	b := NewProcessing(1)
	b.KV[1] = []byte{2}
	if a.Equal(b) {
		t.Error("different values should not be Equal")
	}
	c := NewProcessing(2)
	c.KV[1] = []byte{1}
	if a.Equal(c) {
		t.Error("different TS lengths should not be Equal")
	}
}

func ExampleProcessing_Partition() {
	p := NewProcessing(1)
	p.KV[10] = []byte("a")
	p.KV[stream.MaxKey-5] = []byte("b")
	parts := p.Partition(FullRange.SplitEven(2))
	fmt.Println(parts[0].Len(), parts[1].Len())
	// Output: 1 1
}
