package state

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"seep/internal/plan"
	"seep/internal/stream"
)

// PayloadCodec serialises tuple payloads for durable checkpoints. Buffer
// state retains whole tuples, so persisting a checkpoint needs to encode
// their payloads; processing-state values are already bytes.
type PayloadCodec interface {
	EncodePayload(payload any) ([]byte, error)
	DecodePayload(b []byte) (any, error)
}

// StringPayloadCodec handles string payloads (e.g. the word frequency
// workloads).
type StringPayloadCodec struct{}

// EncodePayload implements PayloadCodec.
func (StringPayloadCodec) EncodePayload(p any) ([]byte, error) {
	s, ok := p.(string)
	if !ok {
		return nil, fmt.Errorf("state: payload %T is not a string", p)
	}
	return []byte(s), nil
}

// DecodePayload implements PayloadCodec.
func (StringPayloadCodec) DecodePayload(b []byte) (any, error) { return string(b), nil }

// GobPayloadCodec serialises arbitrary payloads with encoding/gob — the
// default codec of the distributed runtime, where tuples of any
// registered concrete type cross process boundaries. Every payload type
// other than gob's predeclared ones must be registered (gob.Register) in
// every participating binary; the operator library registers its own
// output types.
type GobPayloadCodec struct{}

// EncodePayload implements PayloadCodec.
func (GobPayloadCodec) EncodePayload(p any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
		return nil, fmt.Errorf("state: gob payload %T: %w", p, err)
	}
	return buf.Bytes(), nil
}

// DecodePayload implements PayloadCodec.
func (GobPayloadCodec) DecodePayload(b []byte) (any, error) {
	var p any
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&p); err != nil {
		return nil, fmt.Errorf("state: gob payload: %w", err)
	}
	return p, nil
}

// encodeInstanceID writes an instance identifier.
func encodeInstanceID(e *stream.Encoder, id plan.InstanceID) {
	e.String32(string(id.Op))
	e.Uint32(uint32(id.Part))
}

func decodeInstanceID(d *stream.Decoder) plan.InstanceID {
	op := d.String32()
	part := int(d.Uint32())
	return plan.InstanceID{Op: plan.OpID(op), Part: part}
}

// EncodeBuffer serialises buffer state with the given payload codec.
func EncodeBuffer(e *stream.Encoder, b *Buffer, codec PayloadCodec) error {
	targets := b.Targets()
	e.Uint32(uint32(len(targets)))
	for _, target := range targets {
		encodeInstanceID(e, target)
		tuples := b.Tuples(target)
		e.Uint32(uint32(len(tuples)))
		for _, t := range tuples {
			e.Int64(t.TS)
			e.Key(t.Key)
			e.Int64(t.Born)
			pb, err := codec.EncodePayload(t.Payload)
			if err != nil {
				return fmt.Errorf("state: encode buffered tuple: %w", err)
			}
			e.Bytes32(pb)
		}
	}
	return nil
}

// DecodeBuffer reads buffer state written by EncodeBuffer.
func DecodeBuffer(d *stream.Decoder, codec PayloadCodec) (*Buffer, error) {
	b := NewBuffer()
	nTargets := int(d.Uint32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	for i := 0; i < nTargets; i++ {
		target := decodeInstanceID(d)
		n := int(d.Uint32())
		if err := d.Err(); err != nil {
			return nil, err
		}
		for j := 0; j < n; j++ {
			ts := d.Int64()
			key := d.Key()
			born := d.Int64()
			pb := d.Bytes32()
			if err := d.Err(); err != nil {
				return nil, err
			}
			payload, err := codec.DecodePayload(pb)
			if err != nil {
				return nil, fmt.Errorf("state: decode buffered tuple: %w", err)
			}
			b.Append(target, stream.Tuple{TS: ts, Key: key, Born: born, Payload: payload})
		}
	}
	return b, nil
}

// checkpointMagic guards durable checkpoint files against foreign input.
const checkpointMagic = uint32(0x53454550) // "SEEP"

// EncodeCheckpoint serialises a full checkpoint — processing state,
// buffer state, output clock and acknowledgement map — so it can be
// persisted to external storage (§3.3's persist operation).
func EncodeCheckpoint(e *stream.Encoder, cp *Checkpoint, codec PayloadCodec) error {
	if err := cp.Validate(); err != nil {
		return err
	}
	e.Uint32(checkpointMagic)
	encodeInstanceID(e, cp.Instance)
	e.Uint64(cp.Seq)
	cp.Processing.Encode(e)
	buf := cp.Buffer
	if buf == nil {
		buf = NewBuffer()
	}
	if err := EncodeBuffer(e, buf, codec); err != nil {
		return err
	}
	e.Int64(cp.OutClock)
	e.Uint32(uint32(len(cp.Acks)))
	// Deterministic order.
	ids := make([]plan.InstanceID, 0, len(cp.Acks))
	for id := range cp.Acks {
		ids = append(ids, id)
	}
	SortInstanceIDs(ids)
	for _, id := range ids {
		encodeInstanceID(e, id)
		e.Int64(cp.Acks[id])
	}
	// Legacy buffers inherited through scale-in merges, keyed by the
	// original sender. Owners with no live tuples are elided.
	owners := make([]plan.InstanceID, 0, len(cp.Legacy))
	for owner, b := range cp.Legacy {
		if b != nil && b.Len() > 0 {
			owners = append(owners, owner)
		}
	}
	SortInstanceIDs(owners)
	e.Uint32(uint32(len(owners)))
	for _, owner := range owners {
		encodeInstanceID(e, owner)
		if err := EncodeBuffer(e, cp.Legacy[owner], codec); err != nil {
			return err
		}
	}
	return nil
}

// DecodeCheckpoint reads a checkpoint written by EncodeCheckpoint.
func DecodeCheckpoint(d *stream.Decoder, codec PayloadCodec) (*Checkpoint, error) {
	if magic := d.Uint32(); magic != checkpointMagic {
		return nil, fmt.Errorf("state: not a checkpoint (magic %x)", magic)
	}
	cp := &Checkpoint{}
	cp.Instance = decodeInstanceID(d)
	cp.Seq = d.Uint64()
	proc, err := DecodeProcessing(d)
	if err != nil {
		return nil, err
	}
	cp.Processing = proc
	buf, err := DecodeBuffer(d, codec)
	if err != nil {
		return nil, err
	}
	cp.Buffer = buf
	cp.OutClock = d.Int64()
	nAcks := int(d.Uint32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if nAcks > 0 {
		cp.Acks = make(map[plan.InstanceID]int64, nAcks)
		for i := 0; i < nAcks; i++ {
			id := decodeInstanceID(d)
			ts := d.Int64()
			if err := d.Err(); err != nil {
				return nil, err
			}
			cp.Acks[id] = ts
		}
	}
	nLegacy := int(d.Uint32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if nLegacy > 0 {
		cp.Legacy = make(map[plan.InstanceID]*Buffer, nLegacy)
		for i := 0; i < nLegacy; i++ {
			owner := decodeInstanceID(d)
			b, err := DecodeBuffer(d, codec)
			if err != nil {
				return nil, err
			}
			cp.Legacy[owner] = b
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return cp, cp.Validate()
}
