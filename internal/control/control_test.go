package control

import (
	"testing"

	"seep/internal/plan"
)

func inst(op string, part int) plan.InstanceID {
	return plan.InstanceID{Op: plan.OpID(op), Part: part}
}

func TestDetectorKConsecutive(t *testing.T) {
	d := NewDetector(Policy{Threshold: 0.7, ConsecutiveReports: 2})
	r := []Report{{Inst: inst("toll", 1), Util: 0.8}}
	if got := d.Observe(r); len(got) != 0 {
		t.Fatalf("fired after 1 report: %v", got)
	}
	if d.Streak(inst("toll", 1)) != 1 {
		t.Errorf("streak = %d", d.Streak(inst("toll", 1)))
	}
	got := d.Observe(r)
	if len(got) != 1 || got[0] != inst("toll", 1) {
		t.Fatalf("did not fire after 2 reports: %v", got)
	}
}

func TestDetectorResetBelowThreshold(t *testing.T) {
	d := NewDetector(Policy{Threshold: 0.7, ConsecutiveReports: 2})
	v := inst("toll", 1)
	d.Observe([]Report{{Inst: v, Util: 0.9}})
	d.Observe([]Report{{Inst: v, Util: 0.5}}) // resets streak
	if got := d.Observe([]Report{{Inst: v, Util: 0.9}}); len(got) != 0 {
		t.Errorf("fired without k consecutive: %v", got)
	}
}

func TestDetectorExactThresholdNotAbove(t *testing.T) {
	d := NewDetector(Policy{Threshold: 0.7, ConsecutiveReports: 1})
	if got := d.Observe([]Report{{Inst: inst("x", 1), Util: 0.7}}); len(got) != 0 {
		t.Errorf("fired at exactly the threshold: %v", got)
	}
}

func TestDetectorMutesAfterFiring(t *testing.T) {
	d := NewDetector(Policy{Threshold: 0.7, ConsecutiveReports: 1})
	v := inst("toll", 1)
	if got := d.Observe([]Report{{Inst: v, Util: 0.9}}); len(got) != 1 {
		t.Fatalf("did not fire: %v", got)
	}
	// While scale out is in progress the same instance must not fire
	// again.
	if got := d.Observe([]Report{{Inst: v, Util: 0.95}}); len(got) != 0 {
		t.Errorf("fired while muted: %v", got)
	}
	d.Unmute(v)
	if got := d.Observe([]Report{{Inst: v, Util: 0.95}}); len(got) != 1 {
		t.Errorf("did not fire after unmute: %v", got)
	}
}

func TestDetectorForget(t *testing.T) {
	d := NewDetector(Policy{Threshold: 0.7, ConsecutiveReports: 2})
	v := inst("toll", 1)
	d.Observe([]Report{{Inst: v, Util: 0.9}})
	d.Forget(v)
	if d.Streak(v) != 0 {
		t.Error("streak survived Forget")
	}
}

func TestDetectorMultipleInstancesDeterministicOrder(t *testing.T) {
	d := NewDetector(Policy{Threshold: 0.5, ConsecutiveReports: 1})
	got := d.Observe([]Report{
		{Inst: inst("b", 2), Util: 0.9},
		{Inst: inst("a", 1), Util: 0.9},
		{Inst: inst("b", 1), Util: 0.9},
	})
	if len(got) != 3 {
		t.Fatalf("fired %v", got)
	}
	if got[0] != inst("a", 1) || got[1] != inst("b", 1) || got[2] != inst("b", 2) {
		t.Errorf("order = %v", got)
	}
}

func TestDetectorZeroKDefaultsToOne(t *testing.T) {
	d := NewDetector(Policy{Threshold: 0.5})
	if got := d.Observe([]Report{{Inst: inst("x", 1), Util: 0.9}}); len(got) != 1 {
		t.Errorf("k=0 should behave as k=1: %v", got)
	}
}

func TestDefaultPolicy(t *testing.T) {
	p := DefaultPolicy()
	if p.Threshold != 0.70 || p.ConsecutiveReports != 2 || p.ReportEveryMillis != 5000 {
		t.Errorf("DefaultPolicy = %+v", p)
	}
}
