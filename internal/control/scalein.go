package control

import (
	"sort"

	"seep/internal/plan"
	"seep/internal/state"
)

// ScaleInPolicy decides when partitions of an operator should be merged
// back together. The paper lists scale in as future work ("we plan to
// extend our scale out policy with support for scale in to enable truly
// elastic deployments", §8); this implements the natural dual of the
// scale-out policy: when EVERY partition of an operator reports
// utilisation below a low watermark for k consecutive rounds, two of its
// partitions are merged. Requiring all partitions below the watermark
// (rather than any) prevents merging away capacity that a skewed sibling
// still needs, and the watermark must sit well below δ/2 so a merge does
// not immediately re-trigger scale out.
type ScaleInPolicy struct {
	// LowWatermark is the utilisation below which a partition counts as
	// under-used (default 0.25: a merged pair lands at ≤ 0.5 < δ=0.7).
	LowWatermark float64
	// ConsecutiveReports is k for scale in (default 3; more conservative
	// than scale out because merging under a rising load is costly).
	ConsecutiveReports int
	// MinPartitions stops merging at this parallelism (default 1).
	MinPartitions int
}

// DefaultScaleInPolicy returns conservative defaults.
func DefaultScaleInPolicy() ScaleInPolicy {
	return ScaleInPolicy{LowWatermark: 0.25, ConsecutiveReports: 3, MinPartitions: 1}
}

// ScaleInDetector tracks per-operator streaks of all-partitions-idle
// rounds and proposes merges.
type ScaleInDetector struct {
	policy ScaleInPolicy
	streak map[plan.OpID]int
	muted  map[plan.OpID]bool
}

// NewScaleInDetector returns a detector with the given policy.
func NewScaleInDetector(p ScaleInPolicy) *ScaleInDetector {
	if p.ConsecutiveReports <= 0 {
		p.ConsecutiveReports = 1
	}
	if p.MinPartitions <= 0 {
		p.MinPartitions = 1
	}
	return &ScaleInDetector{
		policy: p,
		streak: make(map[plan.OpID]int),
		muted:  make(map[plan.OpID]bool),
	}
}

// Observe ingests one round of reports and returns the operators whose
// partitions should shrink by one merge. The runtime chooses WHICH pair
// to merge: merge victims must own adjacent key ranges (a routing-level
// constraint the detector does not see).
func (d *ScaleInDetector) Observe(reports []Report) []plan.OpID {
	byOp := make(map[plan.OpID][]Report)
	for _, r := range reports {
		byOp[r.Inst.Op] = append(byOp[r.Inst.Op], r)
	}
	ops := make([]plan.OpID, 0, len(byOp))
	for op := range byOp {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })

	var out []plan.OpID
	for _, op := range ops {
		rs := byOp[op]
		if d.muted[op] || len(rs) <= d.policy.MinPartitions || len(rs) < 2 {
			d.streak[op] = 0
			continue
		}
		allIdle := true
		for _, r := range rs {
			if r.Util >= d.policy.LowWatermark {
				allIdle = false
				break
			}
		}
		if !allIdle {
			d.streak[op] = 0
			continue
		}
		d.streak[op]++
		if d.streak[op] < d.policy.ConsecutiveReports {
			continue
		}
		d.streak[op] = 0
		d.muted[op] = true
		out = append(out, op)
	}
	return out
}

// Unmute re-enables merging for an operator after a completed or aborted
// scale in.
func (d *ScaleInDetector) Unmute(op plan.OpID) { delete(d.muted, op) }

// AdjacentPair picks the pair of partitions owning adjacent key ranges
// with the lowest combined utilisation, or nil — the runtime-side merge
// victim selection shared by every substrate (merge victims must own
// adjacent ranges, a routing-level constraint the detector does not
// see). entries is the operator's routing state in range order; live
// filters candidates, since each runtime's notion of liveness differs.
func AdjacentPair(entries []state.RouteEntry, reports []Report, live func(plan.InstanceID) bool) []plan.InstanceID {
	util := make(map[plan.InstanceID]float64, len(reports))
	for _, r := range reports {
		util[r.Inst] = r.Util
	}
	var best []plan.InstanceID
	bestLoad := -1.0
	for i := 1; i < len(entries); i++ {
		a, b := entries[i-1].Target, entries[i].Target
		if a == b || !live(a) || !live(b) {
			continue
		}
		load := util[a] + util[b]
		if bestLoad < 0 || load < bestLoad {
			best = []plan.InstanceID{a, b}
			bestLoad = load
		}
	}
	return best
}
