// Package control implements the control plane of §5: the bottleneck
// detector and scaling policy that decide *when* to scale out, expressed
// as pure logic over utilisation reports so that both the live engine and
// the cluster simulator can drive it.
//
// The policy is the paper's: VMs submit CPU utilisation reports every r
// seconds; when k consecutive reports for an operator are above the
// threshold δ, the operator is scaled out. Empirically the paper uses
// r=5 s, k=2, δ=70%.
package control

import (
	"sort"
	"sync"

	"seep/internal/plan"
)

// Report is one CPU utilisation report for an operator instance.
type Report struct {
	Inst plan.InstanceID
	// Util is the fraction of the CPU time slice consumed (may exceed 1
	// when the instance's queue is growing).
	Util float64
}

// Policy holds the scaling policy parameters.
type Policy struct {
	// Threshold is δ, the utilisation above which a report counts toward
	// scale out (0.70 in the paper).
	Threshold float64
	// ConsecutiveReports is k, the number of consecutive above-threshold
	// reports required (2 in the paper).
	ConsecutiveReports int
	// ReportEveryMillis is r, the reporting period (5000 ms). Held here
	// for the runtime to schedule reports; the detector itself is
	// event-driven.
	ReportEveryMillis int64
}

// DefaultPolicy returns the empirically chosen parameters of §5.1.
func DefaultPolicy() Policy {
	return Policy{Threshold: 0.70, ConsecutiveReports: 2, ReportEveryMillis: 5000}
}

// Detector is the bottleneck detector: it consumes utilisation reports
// and emits the instances that crossed the policy threshold k consecutive
// times. Detector is safe for concurrent use (the live engine reports
// from node goroutines).
type Detector struct {
	mu     sync.Mutex
	policy Policy
	streak map[plan.InstanceID]int
	// muted suppresses re-triggering for instances already being scaled
	// out; the runtime unmutes (implicitly) because replacement
	// instances have fresh IDs.
	muted map[plan.InstanceID]bool
}

// NewDetector returns a detector with the given policy.
func NewDetector(p Policy) *Detector {
	if p.ConsecutiveReports <= 0 {
		p.ConsecutiveReports = 1
	}
	return &Detector{
		policy: p,
		streak: make(map[plan.InstanceID]int),
		muted:  make(map[plan.InstanceID]bool),
	}
}

// Policy returns the detector's policy.
func (d *Detector) Policy() Policy { return d.policy }

// Observe ingests one round of reports and returns the instances that
// should be scaled out, in deterministic order. Instances not present in
// a round keep their streak (missing reports are not evidence of
// recovery); instances below threshold reset to zero.
func (d *Detector) Observe(reports []Report) []plan.InstanceID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []plan.InstanceID
	for _, r := range reports {
		if d.muted[r.Inst] {
			continue
		}
		if r.Util > d.policy.Threshold {
			d.streak[r.Inst]++
			if d.streak[r.Inst] >= d.policy.ConsecutiveReports {
				out = append(out, r.Inst)
				d.streak[r.Inst] = 0
				d.muted[r.Inst] = true
			}
		} else {
			d.streak[r.Inst] = 0
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Part < out[j].Part
	})
	return out
}

// Forget clears all detector state for an instance (when it is replaced
// or removed). Replacement instances have fresh IDs and start clean.
func (d *Detector) Forget(inst plan.InstanceID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.streak, inst)
	delete(d.muted, inst)
}

// Unmute re-enables triggering for an instance (e.g. after an aborted
// scale out).
func (d *Detector) Unmute(inst plan.InstanceID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.muted, inst)
}

// Streak returns the current consecutive-above-threshold count for an
// instance (for tests and introspection).
func (d *Detector) Streak(inst plan.InstanceID) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.streak[inst]
}
