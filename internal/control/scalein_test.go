package control

import (
	"testing"

	"seep/internal/plan"
)

func reports(op string, utils ...float64) []Report {
	out := make([]Report, len(utils))
	for i, u := range utils {
		out[i] = Report{Inst: inst(op, i+1), Util: u}
	}
	return out
}

func TestScaleInAllPartitionsMustBeIdle(t *testing.T) {
	d := NewScaleInDetector(ScaleInPolicy{LowWatermark: 0.25, ConsecutiveReports: 1})
	// One hot partition blocks the merge.
	if got := d.Observe(reports("count", 0.1, 0.6)); len(got) != 0 {
		t.Errorf("merged with a hot sibling: %v", got)
	}
	if got := d.Observe(reports("count", 0.1, 0.2)); len(got) != 1 || got[0] != plan.OpID("count") {
		t.Errorf("idle operator not proposed: %v", got)
	}
}

func TestScaleInConsecutiveRounds(t *testing.T) {
	d := NewScaleInDetector(ScaleInPolicy{LowWatermark: 0.25, ConsecutiveReports: 3})
	idle := reports("count", 0.1, 0.1)
	if got := d.Observe(idle); len(got) != 0 {
		t.Fatal("fired after 1 round")
	}
	// A busy round resets the streak.
	d.Observe(reports("count", 0.1, 0.5))
	d.Observe(idle)
	d.Observe(idle)
	if got := d.Observe(idle); len(got) != 1 {
		t.Errorf("did not fire after 3 consecutive idle rounds: %v", got)
	}
}

func TestScaleInRespectsMinPartitions(t *testing.T) {
	d := NewScaleInDetector(ScaleInPolicy{LowWatermark: 0.25, ConsecutiveReports: 1, MinPartitions: 2})
	if got := d.Observe(reports("count", 0.0, 0.0)); len(got) != 0 {
		t.Errorf("merged below MinPartitions: %v", got)
	}
	d2 := NewScaleInDetector(ScaleInPolicy{LowWatermark: 0.25, ConsecutiveReports: 1})
	if got := d2.Observe(reports("count", 0.0)); len(got) != 0 {
		t.Errorf("single partition proposed for merge: %v", got)
	}
}

func TestScaleInMuting(t *testing.T) {
	d := NewScaleInDetector(ScaleInPolicy{LowWatermark: 0.25, ConsecutiveReports: 1})
	idle := reports("count", 0.1, 0.1, 0.1)
	if got := d.Observe(idle); len(got) != 1 {
		t.Fatal("did not fire")
	}
	if got := d.Observe(idle); len(got) != 0 {
		t.Error("fired while muted")
	}
	d.Unmute("count")
	if got := d.Observe(idle); len(got) != 1 {
		t.Error("did not fire after unmute")
	}
}

// TestPolicyHysteresisNoOscillation models the closed loop the two
// detectors form with the runtime — scale out halves per-partition
// load, scale in sums it — and proves that at ANY steady load the
// default watermarks (low = 0.25, δ = 0.70, with 2·low < δ) settle
// after at most one action instead of oscillating.
func TestPolicyHysteresisNoOscillation(t *testing.T) {
	for _, load := range []float64{0.10, 0.24, 0.26, 0.49, 0.51, 0.69, 0.71, 0.95, 1.4} {
		out := NewDetector(Policy{Threshold: 0.70, ConsecutiveReports: 2})
		in := NewScaleInDetector(ScaleInPolicy{LowWatermark: 0.25, ConsecutiveReports: 2})

		// The operator starts as one partition carrying `load`; the
		// loop redistributes it evenly across the current partitions.
		parts := []plan.InstanceID{inst("op", 1)}
		nextPart := 2
		actions := 0
		lastActionRound := 0
		for round := 1; round <= 50; round++ {
			reports := make([]Report, len(parts))
			for i, p := range parts {
				reports[i] = Report{Inst: p, Util: load / float64(len(parts))}
			}
			for _, victim := range out.Observe(reports) {
				// Scale out: the victim splits in two fresh instances.
				actions++
				lastActionRound = round
				var kept []plan.InstanceID
				for _, p := range parts {
					if p != victim {
						kept = append(kept, p)
					}
				}
				kept = append(kept, inst("op", nextPart), inst("op", nextPart+1))
				nextPart += 2
				parts = kept
				out.Forget(victim)
			}
			for _, op := range in.Observe(reports) {
				// Scale in: two partitions merge into one fresh instance.
				if len(parts) < 2 {
					in.Unmute(op)
					continue
				}
				actions++
				lastActionRound = round
				parts = append(parts[:len(parts)-2], inst("op", nextPart))
				nextPart++
				in.Unmute(op)
			}
		}
		if actions > 1 {
			t.Errorf("load %.2f: %d scaling actions, want at most 1 (oscillation)", load, actions)
		}
		if actions == 1 && lastActionRound > 10 {
			t.Errorf("load %.2f: action fired late (round %d) — streak logic broken", load, lastActionRound)
		}
	}
}

// TestHysteresisGapIsLoadBearing shows why the options layer enforces
// 2·low < δ: with the gap violated (low = 0.40 against δ = 0.70), a
// steady load between δ and 2·low oscillates out/in forever.
func TestHysteresisGapIsLoadBearing(t *testing.T) {
	load := 0.75 // above δ=0.70 as one partition; 0.375 < 0.40 as two
	out := NewDetector(Policy{Threshold: 0.70, ConsecutiveReports: 1})
	in := NewScaleInDetector(ScaleInPolicy{LowWatermark: 0.40, ConsecutiveReports: 1})
	parts := []plan.InstanceID{inst("op", 1)}
	nextPart := 2
	actions := 0
	for round := 0; round < 20; round++ {
		reports := make([]Report, len(parts))
		for i, p := range parts {
			reports[i] = Report{Inst: p, Util: load / float64(len(parts))}
		}
		for _, victim := range out.Observe(reports) {
			actions++
			parts = []plan.InstanceID{inst("op", nextPart), inst("op", nextPart+1)}
			nextPart += 2
			out.Forget(victim)
		}
		for _, op := range in.Observe(reports) {
			if len(parts) < 2 {
				in.Unmute(op)
				continue
			}
			actions++
			parts = []plan.InstanceID{inst("op", nextPart)}
			nextPart++
			in.Unmute(op)
		}
	}
	if actions < 10 {
		t.Errorf("expected a violated hysteresis gap to oscillate (got %d actions); if this stopped oscillating, the guard in the options layer may be removable", actions)
	}
}

func TestDefaultScaleInPolicy(t *testing.T) {
	p := DefaultScaleInPolicy()
	if p.LowWatermark >= DefaultPolicy().Threshold/2 {
		t.Errorf("low watermark %v must sit below δ/2 to avoid flapping", p.LowWatermark)
	}
}
