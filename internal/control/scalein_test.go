package control

import (
	"testing"

	"seep/internal/plan"
)

func reports(op string, utils ...float64) []Report {
	out := make([]Report, len(utils))
	for i, u := range utils {
		out[i] = Report{Inst: inst(op, i+1), Util: u}
	}
	return out
}

func TestScaleInAllPartitionsMustBeIdle(t *testing.T) {
	d := NewScaleInDetector(ScaleInPolicy{LowWatermark: 0.25, ConsecutiveReports: 1})
	// One hot partition blocks the merge.
	if got := d.Observe(reports("count", 0.1, 0.6)); len(got) != 0 {
		t.Errorf("merged with a hot sibling: %v", got)
	}
	if got := d.Observe(reports("count", 0.1, 0.2)); len(got) != 1 || got[0] != plan.OpID("count") {
		t.Errorf("idle operator not proposed: %v", got)
	}
}

func TestScaleInConsecutiveRounds(t *testing.T) {
	d := NewScaleInDetector(ScaleInPolicy{LowWatermark: 0.25, ConsecutiveReports: 3})
	idle := reports("count", 0.1, 0.1)
	if got := d.Observe(idle); len(got) != 0 {
		t.Fatal("fired after 1 round")
	}
	// A busy round resets the streak.
	d.Observe(reports("count", 0.1, 0.5))
	d.Observe(idle)
	d.Observe(idle)
	if got := d.Observe(idle); len(got) != 1 {
		t.Errorf("did not fire after 3 consecutive idle rounds: %v", got)
	}
}

func TestScaleInRespectsMinPartitions(t *testing.T) {
	d := NewScaleInDetector(ScaleInPolicy{LowWatermark: 0.25, ConsecutiveReports: 1, MinPartitions: 2})
	if got := d.Observe(reports("count", 0.0, 0.0)); len(got) != 0 {
		t.Errorf("merged below MinPartitions: %v", got)
	}
	d2 := NewScaleInDetector(ScaleInPolicy{LowWatermark: 0.25, ConsecutiveReports: 1})
	if got := d2.Observe(reports("count", 0.0)); len(got) != 0 {
		t.Errorf("single partition proposed for merge: %v", got)
	}
}

func TestScaleInMuting(t *testing.T) {
	d := NewScaleInDetector(ScaleInPolicy{LowWatermark: 0.25, ConsecutiveReports: 1})
	idle := reports("count", 0.1, 0.1, 0.1)
	if got := d.Observe(idle); len(got) != 1 {
		t.Fatal("did not fire")
	}
	if got := d.Observe(idle); len(got) != 0 {
		t.Error("fired while muted")
	}
	d.Unmute("count")
	if got := d.Observe(idle); len(got) != 1 {
		t.Error("did not fire after unmute")
	}
}

func TestDefaultScaleInPolicy(t *testing.T) {
	p := DefaultScaleInPolicy()
	if p.LowWatermark >= DefaultPolicy().Threshold/2 {
		t.Errorf("low watermark %v must sit below δ/2 to avoid flapping", p.LowWatermark)
	}
}
