package experiments

import (
	"fmt"
	"math/rand"

	"seep/internal/core"
	"seep/internal/plan"
	"seep/internal/sim"
	"seep/internal/state"
	"seep/internal/stream"
	"seep/internal/wordcount"
)

// AblationBackupPlacement isolates the hashed backup-operator choice of
// Algorithm 1 line 2: with many downstream partitions backing up to a
// set of upstream hosts, hashing spreads the backup load while the naive
// fixed choice concentrates it on one host (§3.2: "operators should
// balance the backup load across all of their partitioned upstream
// operators").
func AblationBackupPlacement() (*Table, error) {
	t := &Table{
		Name:    "ablation-backup-placement",
		Title:   "Backup placement: hashed (Algorithm 1) vs fixed upstream host",
		Columns: []string{"strategy", "hosts used", "max backups on one host", "total bytes on hottest host"},
		PaperResult: "§3.2: hash-based spreading balances the backup load across " +
			"partitioned upstream operators",
	}
	const downstreams = 24
	ups := make([]plan.InstanceID, 4)
	for i := range ups {
		ups[i] = plan.InstanceID{Op: "split", Part: i + 1}
	}
	mkcp := func(part int) *state.Checkpoint {
		p := state.NewProcessing(1)
		for k := 0; k < 64; k++ {
			p.KV[stream.Key(stream.Mix64(uint64(part*1000+k)))] = make([]byte, 128)
		}
		return &state.Checkpoint{
			Instance:   plan.InstanceID{Op: "count", Part: part},
			Seq:        1,
			Processing: p,
			Buffer:     state.NewBuffer(),
		}
	}
	run := func(hashed bool) (hosts, maxN, maxBytes int, err error) {
		store := core.NewBackupStore()
		for part := 1; part <= downstreams; part++ {
			owner := plan.InstanceID{Op: "count", Part: part}
			host := ups[0]
			if hashed {
				host, err = core.ChooseBackup(owner, ups)
				if err != nil {
					return 0, 0, 0, err
				}
			}
			if err := store.Store(host, mkcp(part)); err != nil {
				return 0, 0, 0, err
			}
		}
		for _, u := range ups {
			owned := store.HostedBy(u)
			if len(owned) > 0 {
				hosts++
			}
			if len(owned) > maxN {
				maxN = len(owned)
				b := 0
				for _, o := range owned {
					cp, _, _ := store.Latest(o)
					b += cp.Size()
				}
				maxBytes = b
			}
		}
		return hosts, maxN, maxBytes, nil
	}
	for _, hashed := range []bool{true, false} {
		label := "fixed-first-upstream"
		if hashed {
			label = "hashed (paper)"
		}
		hosts, maxN, maxBytes, err := run(hashed)
		if err != nil {
			return nil, err
		}
		t.AddRow(label, fmt.Sprintf("%d", hosts), fmt.Sprintf("%d", maxN), fmt.Sprintf("%d", maxBytes))
	}
	t.Observation = "hashing spreads 24 backups over all upstream hosts; the fixed choice puts all 24 on one VM"
	return t, nil
}

// AblationVMPool isolates the VM pool of §5.2: recovery latency with a
// pre-allocated pool (seconds) vs raw IaaS provisioning (≈90 s).
func AblationVMPool() (*Table, error) {
	t := &Table{
		Name:    "ablation-vm-pool",
		Title:   "VM pool vs raw provisioning: failure recovery time (word count, 500 t/s, c=5 s)",
		Columns: []string{"pool size", "recovery (s)"},
		PaperResult: "§5.2: IaaS provisioning takes minutes, making on-demand requests " +
			"impractical; a small pre-allocated pool hands VMs over in seconds",
	}
	opts := wordcount.DefaultOptions()
	opts.WindowMillis = 0
	var with, without int64
	for _, size := range []int{0, 1, 2, 4} {
		cfg := sim.Config{
			Seed:                     11,
			Mode:                     sim.FTRSM,
			CheckpointIntervalMillis: 5_000,
			Pool:                     sim.PoolConfig{Size: size, ProvisionDelayMillis: 90_000},
		}
		if size == 0 {
			// withDefaults would bump 0 to 2; force an empty pool by
			// setting size -1 → clamp... instead use size 0 semantics via
			// explicit handoff: Pool.Size 0 means every acquire waits for
			// raw provisioning (see sim.Pool), so bypass the default.
			cfg.Pool.Size = -1
		}
		c, err := sim.NewCluster(cfg, wordcount.Query(opts), wordcount.Factories(opts))
		if err != nil {
			return nil, err
		}
		if err := c.AddSource(plan.InstanceID{Op: "src", Part: 1}, sim.ConstantRate(500), wordcount.WordSource(1000, 1)); err != nil {
			return nil, err
		}
		c.Sim().At(20_000, func() { _ = c.FailInstance(plan.InstanceID{Op: "count", Part: 1}) })
		c.RunUntil(200_000)
		recs := c.Recoveries()
		if len(recs) != 1 {
			return nil, fmt.Errorf("experiments: pool ablation got %d recoveries", len(recs))
		}
		d := recs[0].Duration()
		if size == 0 {
			without = d
		} else if with == 0 {
			with = d
		}
		label := fmt.Sprintf("%d", size)
		if size == 0 {
			label = "0 (raw provisioning)"
		}
		t.AddRow(label, fmtSec(d))
	}
	t.Observation = fmt.Sprintf("pool cuts recovery from %.1f s to %.1f s by masking the 90 s provisioning delay",
		float64(without)/1000, float64(with)/1000)
	return t, nil
}

// AblationIncrementalCheckpoint isolates the incremental checkpointing
// extension (§3.2 mentions it as a size reduction): bytes shipped per
// checkpoint, full vs delta, as the fraction of dirtied keys varies.
func AblationIncrementalCheckpoint() (*Table, error) {
	t := &Table{
		Name:    "ablation-incremental-checkpoint",
		Title:   "Full vs incremental checkpoints: bytes shipped per interval (10^4 keys, 64 B values)",
		Columns: []string{"dirty keys per interval", "full (KB)", "delta (KB)", "reduction"},
		PaperResult: "§3.2: \"to reduce the size of checkpoints, it is also possible to use " +
			"incremental checkpointing techniques\"",
	}
	const keys = 10_000
	rng := rand.New(rand.NewSource(3))
	// The managed store is the system's one delta producer: dirtying
	// keys through a cell is exactly what operators do at runtime.
	st := state.NewStore()
	blobs := state.NewValue[[]byte](st, "blob", state.CodecFunc[[]byte]{
		Enc: func(b []byte) ([]byte, error) { return b, nil },
		Dec: func(b []byte) ([]byte, error) { return append([]byte(nil), b...), nil },
	})
	for i := 0; i < keys; i++ {
		v := make([]byte, 64)
		rng.Read(v)
		blobs.Set(stream.Key(stream.Mix64(uint64(i))), v)
	}
	if _, err := st.TakeCheckpoint(); err != nil {
		return nil, err
	}
	full := st.LastFullSize()
	allKeys := st.Keys()
	seq := uint64(1)
	for _, dirtyFrac := range []float64{0.01, 0.05, 0.25, 1.0} {
		dirty := int(dirtyFrac * keys)
		for i := 0; i < dirty; i++ {
			k := allKeys[rng.Intn(len(allKeys))]
			blobs.Update(k, func(b []byte) []byte { b[0]++; return b })
		}
		delta, err := st.TakeDelta(stream.NewTSVector(1), seq, seq+1)
		if err != nil {
			return nil, err
		}
		seq++
		t.AddRow(
			fmt.Sprintf("%.0f%%", dirtyFrac*100),
			fmt.Sprintf("%.0f", float64(full)/1024),
			fmt.Sprintf("%.0f", float64(delta.Size())/1024),
			fmt.Sprintf("%.1fx", float64(full)/float64(delta.Size())),
		)
	}
	t.Observation = "delta size tracks the dirtied fraction; sparse updates ship orders of magnitude less"
	return t, nil
}

// AblationKeySplit isolates the key-split strategy of Algorithm 2: even
// hash splitting vs frequency-guided splitting on a skewed key
// distribution, measured as post-split load imbalance.
func AblationKeySplit() (*Table, error) {
	t := &Table{
		Name:    "ablation-key-split",
		Title:   "Key split strategy under skew: even hash split vs frequency-guided (π=2)",
		Columns: []string{"strategy", "hot partition load", "cold partition load", "imbalance"},
		PaperResult: "§3.2: \"the key space can be distributed evenly using hash partitioning, " +
			"or the key distribution can be used to guide the split\"",
	}
	// Zipf-skewed workload over 1000 keys.
	rng := rand.New(rand.NewSource(5))
	zipf := rand.NewZipf(rng, 1.2, 1.0, 999)
	weights := make(map[stream.Key]float64)
	var keys []stream.Key
	for i := 0; i < 200_000; i++ {
		k := stream.Key(stream.Mix64(zipf.Uint64()))
		if _, ok := weights[k]; !ok {
			keys = append(keys, k)
		}
		weights[k]++
	}
	measure := func(ranges []state.KeyRange) (hot, cold float64) {
		loads := make([]float64, len(ranges))
		for k, w := range weights {
			for i, r := range ranges {
				if r.Contains(k) {
					loads[i] += w
					break
				}
			}
		}
		hot, cold = loads[0], loads[0]
		for _, l := range loads[1:] {
			if l > hot {
				hot = l
			}
			if l < cold {
				cold = l
			}
		}
		return hot, cold
	}
	even := state.FullRange.SplitEven(2)
	ks := make([]stream.Key, 0, len(weights))
	ws := make([]float64, 0, len(weights))
	for _, k := range keys {
		ks = append(ks, k)
		ws = append(ws, weights[k])
	}
	weighted := state.FullRange.SplitByWeight(2, ks, ws)
	for _, c := range []struct {
		label  string
		ranges []state.KeyRange
	}{{"even hash split", even}, {"frequency-guided", weighted}} {
		hot, cold := measure(c.ranges)
		imb := hot / cold
		t.AddRow(c.label, fmt.Sprintf("%.0f", hot), fmt.Sprintf("%.0f", cold), fmt.Sprintf("%.2fx", imb))
	}
	t.Observation = "frequency-guided splitting narrows the hot/cold partition gap under Zipf skew"
	return t, nil
}
