package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parse a table cell as float.
func cell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d)", tb.Name, row, col)
	}
	s := tb.Rows[row][col]
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", tb.Name, row, col, s)
	}
	return v
}

func TestFig6Shape(t *testing.T) {
	tb, err := Fig6(QuickLRBScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 5 {
		t.Fatalf("too few rows: %d", len(tb.Rows))
	}
	// Input rate grows; throughput tracks it within 20% at the end; VM
	// count is non-decreasing overall and grew beyond the initial 7.
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	if cell(t, tb, len(tb.Rows)-1, 1) <= cell(t, tb, 0, 1) {
		t.Errorf("input did not grow: %v -> %v", first[1], last[1])
	}
	in := cell(t, tb, len(tb.Rows)-1, 1)
	th := cell(t, tb, len(tb.Rows)-1, 2)
	if th < 0.8*in {
		t.Errorf("final throughput %v below 80%% of input %v", th, in)
	}
	if cell(t, tb, len(tb.Rows)-1, 3) <= cell(t, tb, 0, 3) {
		t.Errorf("VMs did not grow: %v -> %v", first[3], last[3])
	}
}

func TestFig7Shape(t *testing.T) {
	tb, err := Fig7(QuickLRBScale())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.Observation, "within the 5 s LRB bound") {
		t.Errorf("latency bound violated: %s", tb.Observation)
	}
}

func TestFig8Shape(t *testing.T) {
	tb, err := Fig8(QuickLRBScale())
	if err != nil {
		t.Fatal(err)
	}
	// Consumed rate climbs toward the input; the system starts
	// under-provisioned and drops tuples.
	first := cell(t, tb, 0, 1)
	last := cell(t, tb, len(tb.Rows)-1, 1)
	if last <= first {
		t.Errorf("consumed rate did not climb: %v -> %v", first, last)
	}
	if !strings.Contains(tb.Observation, "dropped") {
		t.Errorf("open loop should drop while under-provisioned: %s", tb.Observation)
	}
}

func TestFig9Shape(t *testing.T) {
	tb, err := Fig9(QuickLRBScale())
	if err != nil {
		t.Fatal(err)
	}
	// VMs monotonically decrease with δ (column 1).
	for i := 1; i < len(tb.Rows); i++ {
		if cell(t, tb, i, 1) > cell(t, tb, i-1, 1) {
			t.Errorf("VMs increased with δ between rows %d and %d", i-1, i)
		}
	}
	if cell(t, tb, 0, 1) <= cell(t, tb, len(tb.Rows)-1, 1) {
		t.Error("δ sweep shows no allocation spread")
	}
}

func TestFig10Shape(t *testing.T) {
	tb, err := Fig10(QuickLRBScale())
	if err != nil {
		t.Fatal(err)
	}
	// Manual rows: P95 falls (or stays flat) as the budget grows; the
	// last row is the dynamic policy.
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "dynamic" {
		t.Fatalf("last row = %v", last)
	}
	smallBudgetP95 := cell(t, tb, 0, 3)
	bigBudgetP95 := cell(t, tb, len(tb.Rows)-2, 3)
	if bigBudgetP95 > smallBudgetP95 {
		t.Errorf("more manual VMs should not raise P95: %v -> %v", smallBudgetP95, bigBudgetP95)
	}
	// The dynamic policy's latency is comparable to the generous manual
	// allocations (within 5x of the best).
	dynP95 := cell(t, tb, len(tb.Rows)-1, 3)
	if dynP95 > 5*bigBudgetP95+100 {
		t.Errorf("dynamic P95 %v far above manual %v", dynP95, bigBudgetP95)
	}
}

func TestFig11Shape(t *testing.T) {
	tb, err := Fig11(QuickRecoveryScale())
	if err != nil {
		t.Fatal(err)
	}
	// R+SM < SR and R+SM < UB at every rate; the gap grows with rate.
	var prevGap float64
	for i := range tb.Rows {
		rsm := cell(t, tb, i, 1)
		sr := cell(t, tb, i, 2)
		ub := cell(t, tb, i, 3)
		if rsm >= sr || rsm >= ub {
			t.Errorf("row %d: R+SM %v not fastest (SR %v, UB %v)", i, rsm, sr, ub)
		}
		gap := ub - rsm
		if gap < prevGap {
			t.Errorf("row %d: UB-R+SM gap shrank (%v after %v)", i, gap, prevGap)
		}
		prevGap = gap
	}
}

func TestFig12Shape(t *testing.T) {
	tb, err := Fig12(QuickRecoveryScale())
	if err != nil {
		t.Fatal(err)
	}
	// Recovery time is non-decreasing in the interval (per rate column)
	// and in the rate (per interval row).
	for col := 1; col <= 3; col++ {
		for i := 1; i < len(tb.Rows); i++ {
			if cell(t, tb, i, col)+0.11 < cell(t, tb, i-1, col) {
				t.Errorf("col %d: recovery fell between rows %d and %d", col, i-1, i)
			}
		}
	}
	for i := range tb.Rows {
		if cell(t, tb, i, 3)+0.11 < cell(t, tb, i, 1) {
			t.Errorf("row %d: higher rate recovered faster", i)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	tb, err := Fig13(QuickRecoveryScale())
	if err != nil {
		t.Fatal(err)
	}
	// Parallel loses at the shortest interval and the serial-parallel
	// difference shifts in parallel's favour as the interval grows.
	shortSerial, shortPar := cell(t, tb, 0, 1), cell(t, tb, 0, 2)
	if shortPar <= shortSerial {
		t.Errorf("parallel should lose at c=1 s: serial %v vs parallel %v", shortSerial, shortPar)
	}
	longSerial, longPar := cell(t, tb, len(tb.Rows)-1, 1), cell(t, tb, len(tb.Rows)-1, 2)
	if (longSerial - longPar) <= (shortSerial - shortPar) {
		t.Errorf("parallel advantage did not grow: short %v/%v, long %v/%v",
			shortSerial, shortPar, longSerial, longPar)
	}
}

func TestFig14Shape(t *testing.T) {
	tb, err := Fig14(QuickOverheadScale())
	if err != nil {
		t.Fatal(err)
	}
	// Large state P95 dominates small state; baseline is flat and low.
	for col := 1; col <= 3; col++ {
		small := cell(t, tb, 0, col)
		large := cell(t, tb, 2, col)
		base := cell(t, tb, 3, col)
		if large <= small {
			t.Errorf("col %d: large state P95 %v not above small %v", col, large, small)
		}
		if base > small+20 {
			t.Errorf("col %d: baseline %v above checkpointed small state %v", col, base, small)
		}
	}
}

func TestFig15Shape(t *testing.T) {
	tb, err := Fig15(QuickOverheadScale(), QuickRecoveryScale())
	if err != nil {
		t.Fatal(err)
	}
	// Latency falls with the interval; recovery time rises.
	firstLat := cell(t, tb, 0, 1)
	lastLat := cell(t, tb, len(tb.Rows)-1, 1)
	if lastLat >= firstLat {
		t.Errorf("P95 latency did not fall: %v -> %v", firstLat, lastLat)
	}
	firstRec := cell(t, tb, 0, 2)
	lastRec := cell(t, tb, len(tb.Rows)-1, 2)
	if lastRec <= firstRec {
		t.Errorf("recovery time did not rise: %v -> %v", firstRec, lastRec)
	}
}

func TestAblations(t *testing.T) {
	t.Run("backup-placement", func(t *testing.T) {
		tb, err := AblationBackupPlacement()
		if err != nil {
			t.Fatal(err)
		}
		hashedMax := cell(t, tb, 0, 2)
		fixedMax := cell(t, tb, 1, 2)
		if hashedMax >= fixedMax {
			t.Errorf("hashed max-per-host %v not below fixed %v", hashedMax, fixedMax)
		}
	})
	t.Run("vm-pool", func(t *testing.T) {
		tb, err := AblationVMPool()
		if err != nil {
			t.Fatal(err)
		}
		noPool := cell(t, tb, 0, 1)
		pooled := cell(t, tb, 1, 1)
		if pooled*5 > noPool {
			t.Errorf("pool should cut recovery many-fold: %v vs %v", pooled, noPool)
		}
	})
	t.Run("incremental-checkpoint", func(t *testing.T) {
		tb, err := AblationIncrementalCheckpoint()
		if err != nil {
			t.Fatal(err)
		}
		// Delta is never larger than full; at 1% dirty it is far
		// smaller.
		if cell(t, tb, 0, 2) >= cell(t, tb, 0, 1)/10 {
			t.Errorf("1%% dirty delta %v not ≪ full %v", tb.Rows[0][2], tb.Rows[0][1])
		}
	})
	t.Run("key-split", func(t *testing.T) {
		tb, err := AblationKeySplit()
		if err != nil {
			t.Fatal(err)
		}
		evenImb := cell(t, tb, 0, 3)
		guidedImb := cell(t, tb, 1, 3)
		if guidedImb >= evenImb {
			t.Errorf("guided imbalance %v not below even %v", guidedImb, evenImb)
		}
	})
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 15 {
		t.Errorf("registry has %d entries: %v", len(names), names)
	}
	if _, err := Run("nosuch", Scale{}); err == nil {
		t.Error("unknown experiment accepted")
	}
	tb, err := Run("ablation-incremental-checkpoint", Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if tb.String() == "" {
		t.Error("empty rendering")
	}
}
