package experiments

import (
	"fmt"

	"seep/internal/control"
	"seep/internal/flow"
	"seep/internal/lrb"
	"seep/internal/metrics"
	"seep/internal/plan"
	"seep/internal/sim"
	"seep/internal/topk"
)

// LRBScale shrinks the flow-level LRB experiments. Paper scale is L=350
// over 2000 s.
type LRBScale struct {
	// L is the number of express-ways.
	L int
	// DurationMillis is the run length.
	DurationMillis int64
	// Points is how many rows to print from the time series.
	Points int
}

// DefaultLRBScale is the paper's L=350 / 2000 s configuration.
func DefaultLRBScale() LRBScale {
	return LRBScale{L: 350, DurationMillis: 2_000_000, Points: 20}
}

// QuickLRBScale reduces the workload for benchmarks.
func QuickLRBScale() LRBScale {
	return LRBScale{L: 64, DurationMillis: 400_000, Points: 10}
}

func runLRBFlow(s LRBScale, policy control.Policy, poolSize int) (*flow.Runner, *flow.Result, error) {
	ops, edges := lrb.FlowOps()
	r, err := flow.NewRunner(flow.Config{
		Seed:           42,
		Ops:            ops,
		Edges:          edges,
		Rate:           lrb.RateProfile(s.L, s.DurationMillis),
		SourceCap:      600_000, // source/sink serialisation limit (§6.1)
		DurationMillis: s.DurationMillis,
		Policy:         policy,
		Pool:           sim.PoolConfig{Size: poolSize},
	})
	if err != nil {
		return nil, nil, err
	}
	res := r.Run()
	return r, res, nil
}

// Fig6 runs the closed-loop LRB scale-out experiment: input rate,
// achieved throughput and allocated VMs over time (§6.1, Fig. 6).
func Fig6(s LRBScale) (*Table, error) {
	t := &Table{
		Name:    "fig6",
		Title:   fmt.Sprintf("Dynamic scale out for the LRB workload, L=%d (closed loop)", s.L),
		Columns: []string{"time (s)", "input (t/s)", "throughput (t/s)", "VMs"},
		PaperResult: "throughput tracks the input rate from ≈12 k to 600 k tuples/s while VMs " +
			"grow on demand to 50; L=350 sustained with 50 VMs",
	}
	_, res, err := runLRBFlow(s, control.DefaultPolicy(), 3)
	if err != nil {
		return nil, err
	}
	in := res.InputRate.Downsample(s.Points)
	th := res.Throughput.Downsample(s.Points)
	vm := res.VMs.Downsample(s.Points)
	for i := range in {
		row := []string{fmt.Sprintf("%d", in[i].T/1000), fmtF(in[i].V)}
		if i < len(th) {
			row = append(row, fmtF(th[i].V))
		} else {
			row = append(row, "-")
		}
		if i < len(vm) {
			row = append(row, fmt.Sprintf("%.0f", vm[i].V))
		} else {
			row = append(row, "-")
		}
		t.AddRow(row...)
	}
	finalIn := in[len(in)-1].V
	finalTh := th[len(th)-1].V
	t.Observation = fmt.Sprintf("final input %s t/s, throughput %s t/s (%.0f%%), %d VMs allocated, %d scale-outs",
		fmtF(finalIn), fmtF(finalTh), 100*finalTh/finalIn, res.FinalVMs, res.ScaleOuts)
	return t, nil
}

// Fig7 reports the processing latency of the same closed-loop LRB run
// (§6.1, Fig. 7): the time series with scale-out spikes plus the summary
// percentiles the paper quotes (median 153 ms, P95 700 ms, P99 1459 ms,
// spikes up to 4 s after scale-out events).
func Fig7(s LRBScale) (*Table, error) {
	t := &Table{
		Name:    "fig7",
		Title:   fmt.Sprintf("Processing latency for the LRB workload, L=%d", s.L),
		Columns: []string{"time (s)", "latency (ms)", "VMs"},
		PaperResult: "median 153 ms, P95 700 ms, P99 1459 ms — all below the 5 s LRB bound; " +
			"transient spikes up to ≈4 s after scale-out events (buffering + replay)",
	}
	_, res, err := runLRBFlow(s, control.DefaultPolicy(), 3)
	if err != nil {
		return nil, err
	}
	lat := res.LatencyTS.Downsample(s.Points)
	vm := res.VMs.Downsample(s.Points)
	for i := range lat {
		row := []string{fmt.Sprintf("%d", lat[i].T/1000), fmtF(lat[i].V)}
		if i < len(vm) {
			row = append(row, fmt.Sprintf("%.0f", vm[i].V))
		} else {
			row = append(row, "-")
		}
		t.AddRow(row...)
	}
	sum := res.Latency.Summarize()
	maxSpike := res.LatencyTS.MaxV()
	bound := "within"
	if sum.P99 > 5000 {
		bound = "EXCEEDING"
	}
	t.Observation = fmt.Sprintf("P50 %d ms, P95 %d ms, P99 %d ms (%s the 5 s LRB bound); max transient %s ms",
		sum.P50, sum.P95, sum.P99, bound, fmtF(maxSpike))
	return t, nil
}

// Fig8 runs the open-loop map/reduce-style top-k workload: the system
// starts under-provisioned against a fixed 550 k tuples/s input and
// scales out until it sustains the rate (§6.1, Fig. 8).
func Fig8(s LRBScale) (*Table, error) {
	rate := 550_000.0
	duration := s.DurationMillis
	if duration > 600_000 {
		duration = 600_000 // the paper's run is 600 s
	}
	t := &Table{
		Name:    "fig8",
		Title:   "Dynamic scale out for a map/reduce-style workload (open loop)",
		Columns: []string{"time (s)", "consumed (t/s)", "VMs"},
		PaperResult: "consumed rate climbs in steps to the 550 k tuples/s input; scale out is " +
			"fastest early (stateless maps split faster than stateful reducers)",
	}
	ops, edges := topk.FlowOps()
	r, err := flow.NewRunner(flow.Config{
		Seed:           7,
		Ops:            ops,
		Edges:          edges,
		Rate:           func(int64) float64 { return rate * float64(s.L) / 350.0 },
		DurationMillis: duration,
		Policy:         control.DefaultPolicy(),
		Pool:           sim.PoolConfig{Size: 4},
		OpenLoop:       true,
	})
	if err != nil {
		return nil, err
	}
	res := r.Run()
	consumed := res.OpProcessed["map"].Downsample(s.Points)
	vms := res.VMs.Downsample(s.Points)
	for i := range consumed {
		row := []string{fmt.Sprintf("%d", consumed[i].T/1000), fmtF(consumed[i].V)}
		if i < len(vms) {
			row = append(row, fmt.Sprintf("%.0f", vms[i].V))
		} else {
			row = append(row, "-")
		}
		t.AddRow(row...)
	}
	target := rate * float64(s.L) / 350.0
	final := consumed[len(consumed)-1].V
	t.Observation = fmt.Sprintf("consumed rate reached %s of %s t/s (%.0f%%) with %d VMs; dropped %.0f tuples while under-provisioned; maps %d vs reduces %d instances",
		fmtF(final), fmtF(target), 100*final/target, res.FinalVMs, res.Dropped, r.Instances("map"), r.Instances("reduce"))
	return t, nil
}

// Fig9 sweeps the scale-out threshold δ from 10% to 90% on LRB and
// reports allocated VMs and latency (§6.1, Fig. 9): fewer VMs at high δ,
// concave median latency, high P95 at both extremes.
func Fig9(s LRBScale) (*Table, error) {
	t := &Table{
		Name:    "fig9",
		Title:   fmt.Sprintf("Impact of the scale-out threshold δ (LRB, L=%d)", max(1, s.L/5)),
		Columns: []string{"δ (%)", "VMs", "P50 (ms)", "P95 (ms)"},
		PaperResult: "VMs decrease as δ grows; median latency is concave (high at both ends); " +
			"δ=50-70% is the best trade-off",
	}
	small := s
	small.L = max(1, s.L/5) // the paper uses L=64 for this sweep
	type point struct {
		delta int
		vms   int
		p50   int64
		p95   int64
	}
	var pts []point
	for _, delta := range []int{10, 30, 50, 70, 90} {
		policy := control.Policy{
			Threshold:          float64(delta) / 100,
			ConsecutiveReports: 2,
			ReportEveryMillis:  5000,
		}
		_, res, err := runLRBFlow(small, policy, 3)
		if err != nil {
			return nil, err
		}
		sum := res.Latency.Summarize()
		pts = append(pts, point{delta, res.FinalVMs, sum.P50, sum.P95})
		t.AddRow(fmt.Sprintf("%d", delta), fmt.Sprintf("%d", res.FinalVMs), fmtMS(sum.P50), fmtMS(sum.P95))
	}
	first, last := pts[0], pts[len(pts)-1]
	t.Observation = fmt.Sprintf("VMs fall from %d (δ=10%%) to %d (δ=90%%); P95 at the extremes %d/%d ms vs mid-range",
		first.vms, last.vms, first.p95, last.p95)
	return t, nil
}

// Fig10 compares dynamic scale out against manual (oracle) allocations of
// a fixed VM budget on LRB L=115 (§6.1, Fig. 10): the best manual
// allocation uses 20 VMs; the dynamic policy lands within ≈25% of that
// optimum while matching its latency.
func Fig10(s LRBScale) (*Table, error) {
	small := s
	small.L = max(2, s.L/3) // the paper uses L=115 (≈350/3)
	t := &Table{
		Name:    "fig10",
		Title:   fmt.Sprintf("Dynamic vs manual scale out (LRB, L=%d)", small.L),
		Columns: []string{"allocation", "VMs", "P50 (ms)", "P95 (ms)"},
		PaperResult: "manual optimum ≈20 VMs (P95 grows sharply below it); dynamic policy " +
			"allocates ≈25 VMs (25% above optimum) with comparable latency (P50 101 ms, P95 714 ms)",
	}
	ops, edges := lrb.FlowOps()

	// Manual allocations: distribute a VM budget across operators
	// proportionally to their load, the strategy of the paper's human
	// expert.
	loadShare := map[string]float64{"forwarder": 0.33, "tollcalc": 0.50, "assessment": 0.09, "collector": 0.04, "balance": 0.04}
	manual := func(budget int) (*metrics.Summary, error) {
		r, err := flow.NewRunner(flow.Config{
			Seed: 42, Ops: ops, Edges: edges,
			Rate:           lrb.RateProfile(small.L, small.DurationMillis),
			SourceCap:      600_000,
			DurationMillis: small.DurationMillis,
		})
		if err != nil {
			return nil, err
		}
		assigned := 0
		for op, share := range loadShare {
			n := int(float64(budget)*share + 0.5)
			if n < 1 {
				n = 1
			}
			if err := r.SetAllocation(plan.OpID(op), n); err != nil {
				return nil, err
			}
			assigned += n
		}
		res := r.Run()
		sum := res.Latency.Summarize()
		return &sum, nil
	}
	budgets := []int{8, 12, 16, 20, 24, 28}
	for _, b := range budgets {
		sum, err := manual(b)
		if err != nil {
			return nil, err
		}
		t.AddRow("manual", fmt.Sprintf("%d", b), fmtMS(sum.P50), fmtMS(sum.P95))
	}
	_, res, err := runLRBFlow(small, control.DefaultPolicy(), 3)
	if err != nil {
		return nil, err
	}
	dyn := res.Latency.Summarize()
	t.AddRow("dynamic", fmt.Sprintf("%d", res.FinalVMs), fmtMS(dyn.P50), fmtMS(dyn.P95))
	t.Observation = fmt.Sprintf("dynamic policy used %d VMs with P50 %d ms / P95 %d ms", res.FinalVMs, dyn.P50, dyn.P95)
	return t, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
