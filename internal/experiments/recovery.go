package experiments

import (
	"fmt"

	"seep/internal/plan"
	"seep/internal/sim"
	"seep/internal/wordcount"
)

// RecoveryScale shrinks the recovery experiments for quick runs: 1.0 is
// paper scale (rates up to 1000 tuples/s, 3 repetitions), smaller values
// reduce rates and repetitions proportionally.
type RecoveryScale struct {
	// RateFactor scales the input rates (1.0 = 100/500/1000 tuples/s).
	RateFactor float64
	// Reps is the number of seeded repetitions averaged per point.
	Reps int
	// Vocabulary sets the word counter's state size (keys).
	Vocabulary int
}

// DefaultRecoveryScale is the paper-scale configuration.
func DefaultRecoveryScale() RecoveryScale {
	return RecoveryScale{RateFactor: 1.0, Reps: 3, Vocabulary: 10_000}
}

// QuickRecoveryScale is a reduced configuration for benchmarks.
func QuickRecoveryScale() RecoveryScale {
	return RecoveryScale{RateFactor: 0.2, Reps: 1, Vocabulary: 1_000}
}

// recoveryRun measures one failure recovery of the word counter.
type recoveryRun struct {
	mode       sim.FTMode
	rate       float64
	intervalMS int64
	pi         int
	seed       int64
	vocabulary int
}

// measureRecovery fails the word counter after the 30 s window has
// filled and returns the measured recovery time in milliseconds.
func measureRecovery(r recoveryRun) (int64, error) {
	opts := wordcount.DefaultOptions()
	opts.WindowMillis = 0 // continuous counts; UB/SR retention window below
	cfg := sim.Config{
		Seed:                     r.seed,
		Mode:                     r.mode,
		CheckpointIntervalMillis: r.intervalMS,
		WindowMillis:             30_000,
		RecoveryParallelism:      r.pi,
	}
	c, err := sim.NewCluster(cfg, wordcount.Query(opts), wordcount.Factories(opts))
	if err != nil {
		return 0, err
	}
	if err := c.AddSource(plan.InstanceID{Op: "src", Part: 1}, sim.ConstantRate(r.rate), wordcount.WordSource(r.vocabulary, r.seed)); err != nil {
		return 0, err
	}
	// Fail just before a checkpoint would have fired, after the 30 s
	// window has filled: the replayed window is then ≈ one full
	// checkpointing interval — the worst case the paper describes
	// ("in the worst case, it must replay 5 s worth of tuples", §6.2).
	failAt := (45_000/r.intervalMS+1)*r.intervalMS - 250
	c.Sim().At(failAt, func() {
		_ = c.FailInstance(plan.InstanceID{Op: "count", Part: 1})
	})
	// Run long enough for the slowest mechanism to finish replay.
	c.RunUntil(failAt + 150_000)
	recs := c.Recoveries()
	if len(recs) != 1 {
		return 0, fmt.Errorf("experiments: %d recoveries recorded (mode %v rate %v)", len(recs), r.mode, r.rate)
	}
	return recs[0].Duration(), nil
}

func avgRecovery(base recoveryRun, reps int) (int64, error) {
	if reps < 1 {
		reps = 1
	}
	var total int64
	for i := 0; i < reps; i++ {
		run := base
		run.seed = base.seed + int64(i)*101
		d, err := measureRecovery(run)
		if err != nil {
			return 0, err
		}
		total += d
	}
	return total / int64(reps), nil
}

// Fig11 compares recovery time of R+SM against source replay (SR) and
// upstream backup (UB) at input rates 100/500/1000 tuples/s with a 30 s
// window and c = 5 s (§6.2, Fig. 11).
func Fig11(s RecoveryScale) (*Table, error) {
	t := &Table{
		Name:    "fig11",
		Title:   "Recovery time for different fault tolerance mechanisms (word count, 30 s window, c=5 s)",
		Columns: []string{"rate (tuples/s)", "R+SM (s)", "SR (s)", "UB (s)"},
		PaperResult: "R+SM lowest at every rate (≈1-4 s); SR slightly faster than UB; " +
			"gap grows with input rate (UB/SR reach ≈8-13 s at 1000 tuples/s)",
	}
	rates := []float64{100, 500, 1000}
	var rsmMax, ubMax int64
	for _, rate := range rates {
		scaled := rate * s.RateFactor
		row := []string{fmt.Sprintf("%.0f", scaled)}
		var vals []int64
		for _, mode := range []sim.FTMode{sim.FTRSM, sim.FTSourceReplay, sim.FTUpstreamBackup} {
			d, err := avgRecovery(recoveryRun{
				mode: mode, rate: scaled, intervalMS: 5_000, pi: 1, seed: 1000, vocabulary: s.Vocabulary,
			}, s.Reps)
			if err != nil {
				return nil, err
			}
			vals = append(vals, d)
			row = append(row, fmtSec(d))
		}
		t.AddRow(row...)
		rsmMax, ubMax = vals[0], vals[2]
	}
	t.Observation = fmt.Sprintf("at the highest rate: R+SM %.1f s vs UB %.1f s (%.1fx)",
		float64(rsmMax)/1000, float64(ubMax)/1000, float64(ubMax)/float64(rsmMax))
	return t, nil
}

// Fig12 measures R+SM recovery time across checkpointing intervals
// 1-30 s for three input rates (§6.2, Fig. 12).
func Fig12(s RecoveryScale) (*Table, error) {
	t := &Table{
		Name:    "fig12",
		Title:   "Recovery time vs checkpointing interval (R+SM)",
		Columns: []string{"interval (s)", "100 t/s (s)", "500 t/s (s)", "1000 t/s (s)"},
		PaperResult: "recovery time grows with the checkpointing interval (more tuples " +
			"replayed) and with the input rate; ≈1-8 s over intervals 1-30 s",
	}
	intervals := []int64{1, 5, 10, 15, 20, 25, 30}
	var first, last int64
	for _, iv := range intervals {
		row := []string{fmt.Sprintf("%d", iv)}
		for _, rate := range []float64{100, 500, 1000} {
			d, err := avgRecovery(recoveryRun{
				mode: sim.FTRSM, rate: rate * s.RateFactor, intervalMS: iv * 1000, pi: 1,
				seed: 2000, vocabulary: s.Vocabulary,
			}, s.Reps)
			if err != nil {
				return nil, err
			}
			if iv == intervals[0] && rate == 1000 {
				first = d
			}
			if iv == intervals[len(intervals)-1] && rate == 1000 {
				last = d
			}
			row = append(row, fmtSec(d))
		}
		t.AddRow(row...)
	}
	t.Observation = fmt.Sprintf("at the highest rate, recovery grows from %.1f s (c=1 s) to %.1f s (c=30 s)",
		float64(first)/1000, float64(last)/1000)
	return t, nil
}

// Fig13 compares serial (π=1) and parallel (π=2) R+SM recovery across
// checkpointing intervals at 500 tuples/s (§6.2, Fig. 13).
func Fig13(s RecoveryScale) (*Table, error) {
	t := &Table{
		Name:    "fig13",
		Title:   "Serial vs parallel recovery (R+SM, 500 tuples/s)",
		Columns: []string{"interval (s)", "serial (s)", "parallel π=2 (s)"},
		PaperResult: "short intervals: parallel recovery loses (overhead of two partitioned " +
			"operators); long intervals: parallel wins by replaying halves concurrently",
	}
	rate := 500 * s.RateFactor
	var crossed bool
	for _, iv := range []int64{1, 5, 10, 15, 20, 25, 30} {
		serial, err := avgRecovery(recoveryRun{
			mode: sim.FTRSM, rate: rate, intervalMS: iv * 1000, pi: 1, seed: 3000, vocabulary: s.Vocabulary,
		}, s.Reps)
		if err != nil {
			return nil, err
		}
		par, err := avgRecovery(recoveryRun{
			mode: sim.FTRSM, rate: rate, intervalMS: iv * 1000, pi: 2, seed: 3000, vocabulary: s.Vocabulary,
		}, s.Reps)
		if err != nil {
			return nil, err
		}
		if par < serial {
			crossed = true
		}
		t.AddRow(fmt.Sprintf("%d", iv), fmtSec(serial), fmtSec(par))
	}
	if crossed {
		t.Observation = "parallel recovery overtakes serial as the interval (and replay volume) grows"
	} else {
		t.Observation = "parallel recovery did not overtake serial at this scale"
	}
	return t, nil
}
