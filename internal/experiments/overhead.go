package experiments

import (
	"fmt"

	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/sim"
	"seep/internal/stream"
	"seep/internal/wordcount"
)

// overheadRun measures sink-side tuple latency of the word frequency
// query under checkpointing.
type overheadRun struct {
	mode       sim.FTMode
	rate       float64
	intervalMS int64
	vocabulary int
	seed       int64
	durationMS int64
}

func measureLatencyP95(r overheadRun) (int64, error) {
	// Continuous counting (no window reset) so the pre-filled dictionary
	// keeps its size for the whole run — the paper "synthetically
	// var[ies] the dictionary size" (§6.3).
	opts := wordcount.DefaultOptions()
	opts.WindowMillis = 0
	cfg := sim.Config{
		Seed:                     r.seed,
		Mode:                     r.mode,
		CheckpointIntervalMillis: r.intervalMS,
		WindowMillis:             30_000,
	}
	c, err := sim.NewCluster(cfg, wordcount.Query(opts), wordcount.Factories(opts))
	if err != nil {
		return 0, err
	}
	prefillCounter(c, r.vocabulary)
	if err := c.AddSource(plan.InstanceID{Op: "src", Part: 1}, sim.ConstantRate(r.rate), wordcount.WordSource(r.vocabulary, r.seed)); err != nil {
		return 0, err
	}
	c.RunUntil(r.durationMS)
	return c.Latency.Percentile(0.95), nil
}

// prefillCounter installs a dictionary of the target size into the word
// counter so the checkpointed state has the intended footprint from the
// start (10² keys ≈ 2 KB ... 10⁵ keys ≈ 2 MB).
func prefillCounter(c *sim.Cluster, vocabulary int) {
	wc, ok := c.OperatorOf(plan.InstanceID{Op: "count", Part: 1}).(*operator.WordCounter)
	if !ok {
		return
	}
	drop := func(stream.Key, any) {}
	for i := 0; i < vocabulary; i++ {
		w := fmt.Sprintf("w%08d", i)
		wc.OnTuple(operator.Context{}, stream.Tuple{Key: stream.KeyOfString(w), Payload: w}, drop)
	}
}

// OverheadScale shrinks the overhead experiments.
type OverheadScale struct {
	// RateFactor scales the 100/500/1000 tuples/s rates.
	RateFactor float64
	// DurationMillis is the measured run length (default 120 s).
	DurationMillis int64
}

// DefaultOverheadScale is paper scale.
func DefaultOverheadScale() OverheadScale {
	return OverheadScale{RateFactor: 1.0, DurationMillis: 120_000}
}

// QuickOverheadScale reduces rates and duration for benchmarks.
func QuickOverheadScale() OverheadScale {
	return OverheadScale{RateFactor: 0.2, DurationMillis: 40_000}
}

// Fig14 measures the latency overhead of state checkpointing for
// different state sizes (10²/10⁴/10⁵ keys ≈ 2 KB/200 KB/2 MB) and input
// rates, against a no-checkpointing baseline (§6.3, Fig. 14). c = 5 s,
// window 30 s; the reported metric is the 95th percentile of tuple
// processing latency.
func Fig14(s OverheadScale) (*Table, error) {
	t := &Table{
		Name:    "fig14",
		Title:   "Overhead of state checkpointing: P95 latency (ms) by state size and input rate",
		Columns: []string{"state size", "100 t/s", "500 t/s", "1000 t/s"},
		PaperResult: "P95 latency grows with state size and input rate; large state at " +
			"1000 tuples/s spikes (overload); no-checkpointing baseline stays flat",
	}
	sizes := []struct {
		label string
		vocab int
	}{
		{"small (10^2)", 100},
		{"medium (10^4)", 10_000},
		{"large (10^5)", 100_000},
	}
	rates := []float64{100, 500, 1000}
	var largeP95, baseP95 int64
	for _, sz := range sizes {
		row := []string{sz.label}
		for _, rate := range rates {
			p95, err := measureLatencyP95(overheadRun{
				mode: sim.FTRSM, rate: rate * s.RateFactor, intervalMS: 5_000,
				vocabulary: sz.vocab, seed: 4000, durationMS: s.DurationMillis,
			})
			if err != nil {
				return nil, err
			}
			if sz.vocab == 100_000 && rate == 1000 {
				largeP95 = p95
			}
			row = append(row, fmtMS(p95))
		}
		t.AddRow(row...)
	}
	// No-checkpointing baseline (state size does not matter without
	// checkpoints; measured with the large vocabulary).
	row := []string{"no checkpointing"}
	for _, rate := range rates {
		p95, err := measureLatencyP95(overheadRun{
			mode: sim.FTNone, rate: rate * s.RateFactor, intervalMS: 5_000,
			vocabulary: 100_000, seed: 4000, durationMS: s.DurationMillis,
		})
		if err != nil {
			return nil, err
		}
		if rate == 1000 {
			baseP95 = p95
		}
		row = append(row, fmtMS(p95))
	}
	t.AddRow(row...)
	t.Observation = fmt.Sprintf("large state at the highest rate: P95 %d ms vs %d ms without checkpointing",
		largeP95, baseP95)
	return t, nil
}

// Fig15 exposes the trade-off between processing latency and recovery
// time across checkpointing intervals at 1000 tuples/s (§6.3, Fig. 15):
// longer intervals reduce the checkpointing overhead on latency but
// lengthen recovery.
func Fig15(s OverheadScale, rs RecoveryScale) (*Table, error) {
	t := &Table{
		Name:    "fig15",
		Title:   "Processing latency vs recovery time across checkpointing intervals (1000 tuples/s)",
		Columns: []string{"interval (s)", "P95 latency (ms)", "recovery (s)"},
		PaperResult: "P95 latency falls as the interval grows while recovery time rises — " +
			"the interval must be chosen per failure-rate/performance needs",
	}
	rate := 1000 * s.RateFactor
	var firstLat, lastLat int64
	intervals := []int64{1, 5, 10, 15, 20, 25, 30}
	for _, iv := range intervals {
		p95, err := measureLatencyP95(overheadRun{
			mode: sim.FTRSM, rate: rate, intervalMS: iv * 1000,
			vocabulary: 50_000, seed: 5000, durationMS: s.DurationMillis,
		})
		if err != nil {
			return nil, err
		}
		rec, err := avgRecovery(recoveryRun{
			mode: sim.FTRSM, rate: rate, intervalMS: iv * 1000, pi: 1,
			seed: 5000, vocabulary: rs.Vocabulary,
		}, rs.Reps)
		if err != nil {
			return nil, err
		}
		if iv == intervals[0] {
			firstLat = p95
		}
		if iv == intervals[len(intervals)-1] {
			lastLat = p95
		}
		t.AddRow(fmt.Sprintf("%d", iv), fmtMS(p95), fmtSec(rec))
	}
	t.Observation = fmt.Sprintf("P95 latency falls from %d ms (c=1 s) to %d ms (c=30 s) while recovery time rises",
		firstLat, lastLat)
	return t, nil
}
