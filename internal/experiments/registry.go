package experiments

import (
	"fmt"
	"sort"
)

// Scale selects paper-scale or reduced (quick) experiment parameters.
type Scale struct {
	Quick bool
}

func (s Scale) lrb() LRBScale {
	if s.Quick {
		return QuickLRBScale()
	}
	return DefaultLRBScale()
}

func (s Scale) recovery() RecoveryScale {
	if s.Quick {
		return QuickRecoveryScale()
	}
	return DefaultRecoveryScale()
}

func (s Scale) overhead() OverheadScale {
	if s.Quick {
		return QuickOverheadScale()
	}
	return DefaultOverheadScale()
}

// Runner is one registered experiment.
type Runner func(Scale) (*Table, error)

// Registry maps experiment names to runners — every figure of §6 plus
// the design-choice ablations.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig6":                            func(s Scale) (*Table, error) { return Fig6(s.lrb()) },
		"fig7":                            func(s Scale) (*Table, error) { return Fig7(s.lrb()) },
		"fig8":                            func(s Scale) (*Table, error) { return Fig8(s.lrb()) },
		"fig9":                            func(s Scale) (*Table, error) { return Fig9(s.lrb()) },
		"fig10":                           func(s Scale) (*Table, error) { return Fig10(s.lrb()) },
		"fig11":                           func(s Scale) (*Table, error) { return Fig11(s.recovery()) },
		"fig12":                           func(s Scale) (*Table, error) { return Fig12(s.recovery()) },
		"fig13":                           func(s Scale) (*Table, error) { return Fig13(s.recovery()) },
		"fig14":                           func(s Scale) (*Table, error) { return Fig14(s.overhead()) },
		"fig15":                           func(s Scale) (*Table, error) { return Fig15(s.overhead(), s.recovery()) },
		"ablation-backup-placement":       func(Scale) (*Table, error) { return AblationBackupPlacement() },
		"ablation-vm-pool":                func(Scale) (*Table, error) { return AblationVMPool() },
		"ablation-incremental-checkpoint": func(Scale) (*Table, error) { return AblationIncrementalCheckpoint() },
		"ablation-key-split":              func(Scale) (*Table, error) { return AblationKeySplit() },
		"ext-elastic":                     func(Scale) (*Table, error) { return ExtElastic() },
	}
}

// Names returns the registered experiment names in order.
func Names() []string {
	r := Registry()
	out := make([]string, 0, len(r))
	for name := range r {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by name.
func Run(name string, s Scale) (*Table, error) {
	r, ok := Registry()[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, Names())
	}
	return r(s)
}
