// Package experiments regenerates every figure of the paper's evaluation
// (§6): each FigN function runs the corresponding experiment on the
// appropriate simulator and returns a Table with the same rows/series the
// paper plots. Scale can be reduced for quick runs (benchmarks) without
// changing the experiment structure.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: a titled grid plus free-form notes
// recording the paper's reference result for comparison.
type Table struct {
	// Name is the experiment ID, e.g. "fig6".
	Name string
	// Title describes the experiment.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the data, already formatted.
	Rows [][]string
	// PaperResult summarises what the paper reports for this figure.
	PaperResult string
	// Observation summarises what this run produced (filled by the
	// experiment).
	Observation string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.Name, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	if t.PaperResult != "" {
		fmt.Fprintf(w, "  paper:    %s\n", t.PaperResult)
	}
	if t.Observation != "" {
		fmt.Fprintf(w, "  measured: %s\n", t.Observation)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// fmtF renders a float compactly.
func fmtF(v float64) string {
	if v >= 1000 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.1f", v)
}

// fmtMS renders milliseconds.
func fmtMS(v int64) string { return fmt.Sprintf("%d", v) }

// fmtSec renders milliseconds as seconds with one decimal.
func fmtSec(ms int64) string { return fmt.Sprintf("%.1f", float64(ms)/1000) }
