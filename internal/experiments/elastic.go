package experiments

import (
	"fmt"

	"seep/internal/control"
	"seep/internal/plan"
	"seep/internal/sim"
	"seep/internal/wordcount"
)

// ExtElastic demonstrates the scale-in extension (the paper's §8 future
// work: "support for scale in to enable truly elastic deployments"): a
// load pulse drives the stateful counter past one VM's capacity and back;
// the policy scales out during the pulse and merges partitions afterwards,
// with operator state preserved across both transitions.
func ExtElastic() (*Table, error) {
	t := &Table{
		Name:    "ext-elastic",
		Title:   "Elastic deployment: scale out under a load pulse, scale in after it",
		Columns: []string{"time (s)", "input (t/s)", "count partitions", "VMs in use"},
		PaperResult: "§8 (future work): \"we plan to extend our scale out policy with " +
			"support for scale in to enable truly elastic deployments\"",
	}
	opts := wordcount.DefaultOptions()
	opts.WindowMillis = 0
	c, err := sim.NewCluster(sim.Config{
		Seed: 97, Mode: sim.FTRSM,
		CheckpointIntervalMillis: 5_000,
		Pool:                     sim.PoolConfig{Size: 6},
	}, wordcount.Query(opts), wordcount.Factories(opts))
	if err != nil {
		return nil, err
	}
	rate := func(now sim.Millis) float64 {
		if now >= 30_000 && now < 150_000 {
			return 2500 // pulse: 1.5x one VM's counter capacity
		}
		return 400
	}
	if err := c.AddSource(plan.InstanceID{Op: "src", Part: 1}, rate, wordcount.WordSource(1_000, 1)); err != nil {
		return nil, err
	}
	c.EnablePolicy(control.DefaultPolicy())
	c.EnableElasticity(control.DefaultScaleInPolicy())

	peak, settled := 0, 0
	for _, at := range []sim.Millis{20_000, 80_000, 140_000, 260_000, 400_000} {
		c.RunUntil(at)
		parts := len(c.LiveInstances("count"))
		if parts > peak {
			peak = parts
		}
		settled = parts
		t.AddRow(
			fmt.Sprintf("%d", at/1000),
			fmt.Sprintf("%.0f", rate(at)),
			fmt.Sprintf("%d", parts),
			fmt.Sprintf("%.0f", c.VMsInUse.Last().V),
		)
	}
	t.Observation = fmt.Sprintf("partitions grew to %d during the pulse and settled back to %d after it; no state lost", peak, settled)
	return t, nil
}
