// Package metrics provides the measurement substrate used by the control
// plane and the experiment harness: an HDR-style latency histogram with
// percentile queries, append-only time series, and monotonic counters.
// Everything is allocation-light so metrics can be recorded per tuple.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Histogram records non-negative integer samples (typically latencies in
// milliseconds) into exponentially ranged buckets with 5 bits of
// sub-bucket precision, giving ≤ ~3% relative error on percentile
// queries — the standard HDR histogram construction. The zero value is
// ready to use. Histogram is safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64
	total  uint64
	sum    float64
	max    int64
	min    int64
	hasMin bool
}

const (
	subBucketBits  = 5
	subBucketCount = 1 << subBucketBits // 32 sub-buckets per power of two
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBucketCount {
		return int(v)
	}
	// Exponent of the highest set bit beyond the sub-bucket range.
	exp := 63 - leadingZeros(uint64(v))
	shift := exp - subBucketBits
	sub := int(v>>uint(shift)) & (subBucketCount - 1)
	return (shift+1)*subBucketCount + sub
}

// bucketLow returns the smallest value mapping to bucket i (the inverse
// of bucketIndex, used to reconstruct percentile values).
func bucketLow(i int) int64 {
	if i < subBucketCount {
		return int64(i)
	}
	shift := i/subBucketCount - 1
	sub := i % subBucketCount
	return (int64(subBucketCount) + int64(sub)) << uint(shift)
}

func leadingZeros(v uint64) int {
	n := 0
	if v == 0 {
		return 64
	}
	for v&(1<<63) == 0 {
		v <<= 1
		n++
	}
	return n
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	h.mu.Lock()
	if i >= len(h.counts) {
		grown := make([]uint64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	h.total++
	h.sum += float64(v)
	if v > h.max {
		h.max = v
	}
	if !h.hasMin || v < h.min {
		h.min = v
		h.hasMin = true
	}
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the arithmetic mean of the samples (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.hasMin {
		return 0
	}
	return h.min
}

// Percentile returns the value at quantile q in [0,1], e.g. 0.95 for the
// 95th percentile. Returns 0 when empty.
func (h *Histogram) Percentile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			lo := bucketLow(i)
			if lo > h.max {
				return h.max
			}
			return lo
		}
	}
	return h.max
}

// Reset clears all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts = h.counts[:0]
	h.total, h.sum, h.max, h.min, h.hasMin = 0, 0, 0, 0, false
}

// Summary is a snapshot of common statistics.
type Summary struct {
	Count                   uint64
	Mean                    float64
	Min, P50, P95, P99, Max int64
}

// Summarize returns a consistent snapshot of the histogram statistics.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		P50:   h.Percentile(0.50),
		P95:   h.Percentile(0.95),
		P99:   h.Percentile(0.99),
		Max:   h.Max(),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p95=%d p99=%d max=%d",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// Point is one sample of a time series.
type Point struct {
	// T is the sample time in milliseconds since run start.
	T int64
	// V is the sampled value.
	V float64
}

// TimeSeries is an append-only sequence of timestamped values, used to
// record experiment outputs (input rate, throughput, #VMs over time).
// It is safe for concurrent use.
type TimeSeries struct {
	mu     sync.Mutex
	points []Point
}

// Add appends a sample.
func (ts *TimeSeries) Add(t int64, v float64) {
	ts.mu.Lock()
	ts.points = append(ts.points, Point{T: t, V: v})
	ts.mu.Unlock()
}

// Points returns a copy of all samples in insertion order.
func (ts *TimeSeries) Points() []Point {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]Point, len(ts.points))
	copy(out, ts.points)
	return out
}

// Len returns the number of samples.
func (ts *TimeSeries) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.points)
}

// Last returns the most recent sample (zero Point when empty).
func (ts *TimeSeries) Last() Point {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if len(ts.points) == 0 {
		return Point{}
	}
	return ts.points[len(ts.points)-1]
}

// MaxV returns the maximum sampled value (0 when empty).
func (ts *TimeSeries) MaxV() float64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	m := 0.0
	for _, p := range ts.points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Downsample reduces the series to at most n points by averaging values
// in equal time windows, for compact experiment output.
func (ts *TimeSeries) Downsample(n int) []Point {
	pts := ts.Points()
	if n <= 0 || len(pts) <= n {
		return pts
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
	t0, t1 := pts[0].T, pts[len(pts)-1].T
	if t1 == t0 {
		return pts[:1]
	}
	span := float64(t1-t0) / float64(n)
	out := make([]Point, 0, n)
	i := 0
	for w := 0; w < n; w++ {
		hi := t0 + int64(span*float64(w+1))
		var sum float64
		var cnt int
		var lastT int64
		for i < len(pts) && (pts[i].T <= hi || w == n-1) {
			sum += pts[i].V
			cnt++
			lastT = pts[i].T
			i++
		}
		if cnt > 0 {
			out = append(out, Point{T: lastT, V: sum / float64(cnt)})
		}
	}
	return out
}

// Counter is a monotonically increasing concurrent counter. Lock-free,
// so per-tuple and per-batch hot paths can bump it without contention.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }
