package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(0.5) != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Error("empty histogram should report zeros")
	}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Mean(); got < 50 || got > 51 {
		t.Errorf("Mean = %v", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("Min/Max = %d/%d", h.Min(), h.Max())
	}
	p50 := h.Percentile(0.5)
	if p50 < 45 || p50 > 55 {
		t.Errorf("P50 = %d", p50)
	}
	p99 := h.Percentile(0.99)
	if p99 < 95 || p99 > 100 {
		t.Errorf("P99 = %d", p99)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Min() != 0 || h.Max() != 0 {
		t.Error("negative samples should clamp to 0")
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	// Against an exact reference on a heavy-tailed distribution.
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := int64(rng.ExpFloat64() * 500)
		h.Observe(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Percentile(q)
		// HDR with 5 sub-bucket bits: ≤ ~3.2% relative error, plus
		// slack for rank rounding on small exact values.
		tol := float64(exact)*0.05 + 2
		if d := float64(got - exact); d > tol || d < -tol {
			t.Errorf("q=%v: got %d, exact %d", q, got, exact)
		}
	}
}

func TestHistogramQuantileClamping(t *testing.T) {
	var h Histogram
	h.Observe(10)
	if h.Percentile(-1) != 10 || h.Percentile(2) != 10 {
		t.Error("out-of-range quantiles should clamp")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 1000; i++ {
				h.Observe(int64(rng.Intn(1000)))
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", h.Count())
	}
}

func TestBucketRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		v := int64(raw)
		i := bucketIndex(v)
		lo := bucketLow(i)
		if lo > v {
			return false
		}
		// The bucket width is at most v/32 + 1, so lo is within ~3.2%.
		return float64(v-lo) <= float64(v)/float64(subBucketCount)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummary(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 1000; i++ {
		h.Observe(i)
	}
	s := h.Summarize()
	if s.Count != 1000 || s.P50 == 0 || s.P95 <= s.P50 || s.P99 < s.P95 {
		t.Errorf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

func TestTimeSeries(t *testing.T) {
	var ts TimeSeries
	if ts.Len() != 0 || ts.Last() != (Point{}) || ts.MaxV() != 0 {
		t.Error("empty series should report zeros")
	}
	for i := int64(0); i < 10; i++ {
		ts.Add(i*100, float64(i))
	}
	if ts.Len() != 10 {
		t.Errorf("Len = %d", ts.Len())
	}
	if last := ts.Last(); last.T != 900 || last.V != 9 {
		t.Errorf("Last = %+v", last)
	}
	if ts.MaxV() != 9 {
		t.Errorf("MaxV = %v", ts.MaxV())
	}
	pts := ts.Points()
	pts[0].V = 999
	if ts.Points()[0].V == 999 {
		t.Error("Points returned aliased slice")
	}
}

func TestTimeSeriesDownsample(t *testing.T) {
	var ts TimeSeries
	for i := int64(0); i < 1000; i++ {
		ts.Add(i, 2.0)
	}
	got := ts.Downsample(10)
	if len(got) != 10 {
		t.Fatalf("downsampled to %d points", len(got))
	}
	for _, p := range got {
		if p.V != 2.0 {
			t.Errorf("averaged value = %v", p.V)
		}
	}
	// n larger than series: unchanged.
	if got := ts.Downsample(5000); len(got) != 1000 {
		t.Errorf("oversized downsample = %d points", len(got))
	}
	// Single-time series degenerates to one point.
	var flat TimeSeries
	flat.Add(5, 1)
	flat.Add(5, 3)
	if got := flat.Downsample(1); len(got) != 1 {
		t.Errorf("flat downsample = %v", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Errorf("Value = %d", c.Value())
	}
	c.Add(5)
	if c.Value() != 4005 {
		t.Errorf("Value = %d", c.Value())
	}
}
