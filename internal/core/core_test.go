package core

import (
	"strings"
	"testing"

	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

func inst(op string, part int) plan.InstanceID {
	return plan.InstanceID{Op: plan.OpID(op), Part: part}
}

func wordQuery() *plan.Query {
	q := plan.NewQuery()
	q.AddOp(plan.OpSpec{ID: "src", Role: plan.RoleSource})
	q.AddOp(plan.OpSpec{ID: "split", Role: plan.RoleStateless})
	q.AddOp(plan.OpSpec{ID: "count", Role: plan.RoleStateful})
	q.AddOp(plan.OpSpec{ID: "sink", Role: plan.RoleSink})
	q.Connect("src", "split")
	q.Connect("split", "count")
	q.Connect("count", "sink")
	return q
}

func mkCheckpoint(owner plan.InstanceID, nkeys int) *state.Checkpoint {
	p := state.NewProcessing(1)
	for i := 0; i < nkeys; i++ {
		// Spread keys over the space deterministically.
		k := stream.Key(uint64(i) * (^uint64(0) / uint64(nkeys)))
		p.KV[k] = []byte{byte(i)}
	}
	p.TS[0] = int64(nkeys)
	return &state.Checkpoint{
		Instance:   owner,
		Seq:        1,
		Processing: p,
		Buffer:     state.NewBuffer(),
		OutClock:   int64(nkeys),
	}
}

func TestChooseBackupDeterministicAndBalanced(t *testing.T) {
	ups := []plan.InstanceID{inst("split", 1), inst("split", 2), inst("split", 3)}
	got1, err := ChooseBackup(inst("count", 1), ups)
	if err != nil {
		t.Fatal(err)
	}
	// Stable under permutation of the upstream list.
	perm := []plan.InstanceID{ups[2], ups[0], ups[1]}
	got2, err := ChooseBackup(inst("count", 1), perm)
	if err != nil {
		t.Fatal(err)
	}
	if got1 != got2 {
		t.Errorf("backup choice depends on ordering: %v vs %v", got1, got2)
	}
	// Different owners spread across hosts (hash-based balancing).
	hosts := make(map[plan.InstanceID]int)
	for i := 1; i <= 50; i++ {
		h, err := ChooseBackup(inst("count", i), ups)
		if err != nil {
			t.Fatal(err)
		}
		hosts[h]++
	}
	if len(hosts) < 2 {
		t.Errorf("50 owners all backed up to one host: %v", hosts)
	}
	if _, err := ChooseBackup(inst("count", 1), nil); err == nil {
		t.Error("expected error with no upstreams")
	}
}

func TestBackupStoreLifecycle(t *testing.T) {
	s := NewBackupStore()
	owner := inst("count", 1)
	host := inst("split", 1)
	cp := mkCheckpoint(owner, 4)
	if err := s.Store(host, cp); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.Bytes() != cp.Size() {
		t.Errorf("Len=%d Bytes=%d", s.Len(), s.Bytes())
	}
	got, gotHost, ok := s.Latest(owner)
	if !ok || gotHost != host || got.Seq != 1 {
		t.Fatalf("Latest = %v %v %v", got, gotHost, ok)
	}

	// Newer checkpoint supersedes.
	cp2 := mkCheckpoint(owner, 8)
	cp2.Seq = 2
	if err := s.Store(host, cp2); err != nil {
		t.Fatal(err)
	}
	got, _, _ = s.Latest(owner)
	if got.Seq != 2 {
		t.Errorf("Seq after supersede = %d", got.Seq)
	}
	if s.Bytes() != cp2.Size() {
		t.Errorf("Bytes after supersede = %d, want %d", s.Bytes(), cp2.Size())
	}

	// Stale write at the same host is rejected.
	stale := mkCheckpoint(owner, 2)
	stale.Seq = 1
	if err := s.Store(host, stale); err == nil {
		t.Error("stale store should fail")
	}

	// Moving to a different host is allowed (backup operator changed).
	moved := mkCheckpoint(owner, 3)
	moved.Seq = 1
	if err := s.Store(inst("split", 2), moved); err != nil {
		t.Errorf("relocating backup: %v", err)
	}

	s.Delete(owner)
	if _, _, ok := s.Latest(owner); ok {
		t.Error("Latest after Delete")
	}
	if s.Bytes() != 0 {
		t.Errorf("Bytes after Delete = %d", s.Bytes())
	}
}

func TestBackupStoreDropHost(t *testing.T) {
	s := NewBackupStore()
	host1, host2 := inst("split", 1), inst("split", 2)
	if err := s.Store(host1, mkCheckpoint(inst("count", 1), 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(host1, mkCheckpoint(inst("count", 2), 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(host2, mkCheckpoint(inst("count", 3), 2)); err != nil {
		t.Fatal(err)
	}
	if got := s.HostedBy(host1); len(got) != 2 {
		t.Errorf("HostedBy = %v", got)
	}
	lost := s.DropHost(host1)
	if len(lost) != 2 {
		t.Fatalf("DropHost lost %v", lost)
	}
	if lost[0] != inst("count", 1) || lost[1] != inst("count", 2) {
		t.Errorf("lost order = %v", lost)
	}
	if s.Len() != 1 {
		t.Errorf("Len after drop = %d", s.Len())
	}
	if _, _, ok := s.Latest(inst("count", 3)); !ok {
		t.Error("unrelated backup dropped")
	}
}

func TestBackupStoreRejectsInvalid(t *testing.T) {
	s := NewBackupStore()
	if err := s.Store(inst("x", 1), &state.Checkpoint{}); err == nil {
		t.Error("invalid checkpoint stored")
	}
}

func TestManagerInitialRouting(t *testing.T) {
	q := wordQuery()
	q.Op("count").InitialParallelism = 2
	m, err := NewManager(q)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Routing("count")
	if len(r.Targets()) != 2 {
		t.Errorf("initial routing targets = %v", r.Targets())
	}
	// Every key routes to exactly one live instance.
	for _, k := range []stream.Key{0, 1 << 32, stream.MaxKey} {
		target := r.Lookup(k)
		if !m.Live(target) {
			t.Errorf("key %d routed to dead instance %v", k, target)
		}
	}
	if got := m.Parallelism("count"); got != 2 {
		t.Errorf("Parallelism = %d", got)
	}
}

func TestManagerRejectsInvalidQuery(t *testing.T) {
	if _, err := NewManager(plan.NewQuery()); err == nil {
		t.Error("empty query accepted")
	}
}

func TestManagerBackupTarget(t *testing.T) {
	m, err := NewManager(wordQuery())
	if err != nil {
		t.Fatal(err)
	}
	host, err := m.BackupTarget(inst("count", 1))
	if err != nil {
		t.Fatal(err)
	}
	if host.Op != "split" {
		t.Errorf("backup host = %v, want a split instance", host)
	}
}

func TestPlanReplaceScaleOut(t *testing.T) {
	m, err := NewManager(wordQuery())
	if err != nil {
		t.Fatal(err)
	}
	victim := inst("count", 1)
	host, _ := m.BackupTarget(victim)
	if err := m.Backups().Store(host, mkCheckpoint(victim, 10)); err != nil {
		t.Fatal(err)
	}

	p, err := m.PlanReplace(victim, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.NewInstances) != 2 || len(p.Checkpoints) != 2 || len(p.Ranges) != 2 {
		t.Fatalf("plan = %+v", p)
	}
	// Fresh partition numbers.
	if p.NewInstances[0].Part != 2 || p.NewInstances[1].Part != 3 {
		t.Errorf("new instances = %v", p.NewInstances)
	}
	// State split: all keys preserved.
	total := 0
	for i, cp := range p.Checkpoints {
		total += cp.Processing.Len()
		for k := range cp.Processing.KV {
			if !p.Ranges[i].Contains(k) {
				t.Errorf("key %d outside range %v", k, p.Ranges[i])
			}
		}
	}
	if total != 10 {
		t.Errorf("partitioned state holds %d keys, want 10", total)
	}
	// Victim is gone; new instances live; routing updated.
	if m.Live(victim) {
		t.Error("victim still live")
	}
	for _, ni := range p.NewInstances {
		if !m.Live(ni) {
			t.Errorf("new instance %v not live", ni)
		}
		if _, _, ok := m.Backups().Latest(ni); !ok {
			t.Errorf("no initial backup for %v", ni)
		}
	}
	if _, _, ok := m.Backups().Latest(victim); ok {
		t.Error("victim backup not released")
	}
	if got := m.Routing("count"); len(got.Targets()) != 2 {
		t.Errorf("routing targets = %v", got.Targets())
	}
}

func TestPlanReplaceRecoveryPi1(t *testing.T) {
	m, err := NewManager(wordQuery())
	if err != nil {
		t.Fatal(err)
	}
	victim := inst("count", 1)
	host, _ := m.BackupTarget(victim)
	if err := m.Backups().Store(host, mkCheckpoint(victim, 5)); err != nil {
		t.Fatal(err)
	}
	p, err := m.PlanReplace(victim, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.NewInstances) != 1 {
		t.Fatalf("recovery plan = %+v", p)
	}
	if p.Checkpoints[0].Processing.Len() != 5 {
		t.Errorf("recovered state = %d keys", p.Checkpoints[0].Processing.Len())
	}
	if r, ok := p.Routing.RangeOf(p.NewInstances[0]); !ok || r != state.FullRange {
		t.Errorf("recovered range = %v %v", r, ok)
	}
}

func TestPlanReplaceGuards(t *testing.T) {
	m, err := NewManager(wordQuery())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.PlanReplace(inst("count", 1), 0); err == nil {
		t.Error("pi=0 accepted")
	}
	if _, err := m.PlanReplace(inst("src", 1), 2); err == nil {
		t.Error("source replaced")
	}
	if _, err := m.PlanReplace(inst("sink", 1), 2); err == nil {
		t.Error("sink replaced")
	}
	if _, err := m.PlanReplace(inst("nosuch", 1), 2); err == nil {
		t.Error("unknown op replaced")
	}
	if _, err := m.PlanReplace(inst("count", 9), 2); err == nil {
		t.Error("dead instance replaced")
	}
	// Stateful operator without a backup cannot be replaced.
	_, err = m.PlanReplace(inst("count", 1), 2)
	if err == nil || !strings.Contains(err.Error(), "no checkpoint") {
		t.Errorf("missing-backup error = %v", err)
	}
}

func TestPlanReplaceStatelessNoBackupNeeded(t *testing.T) {
	m, err := NewManager(wordQuery())
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.PlanReplace(inst("split", 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.NewInstances) != 3 {
		t.Fatalf("plan = %+v", p)
	}
	for _, cp := range p.Checkpoints {
		if cp.Processing.Len() != 0 {
			t.Error("stateless replacement carries state")
		}
	}
}

func TestPlanReplaceMaxParallelism(t *testing.T) {
	q := wordQuery()
	q.Op("count").MaxParallelism = 2
	m, err := NewManager(q)
	if err != nil {
		t.Fatal(err)
	}
	victim := inst("count", 1)
	host, _ := m.BackupTarget(victim)
	if err := m.Backups().Store(host, mkCheckpoint(victim, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.PlanReplace(victim, 3); err == nil {
		t.Error("exceeding max parallelism accepted")
	}
	if _, err := m.PlanReplace(victim, 2); err != nil {
		t.Errorf("allowed scale out rejected: %v", err)
	}
}

func TestPlanMergeScaleIn(t *testing.T) {
	m, err := NewManager(wordQuery())
	if err != nil {
		t.Fatal(err)
	}
	victim := inst("count", 1)
	host, _ := m.BackupTarget(victim)
	if err := m.Backups().Store(host, mkCheckpoint(victim, 12)); err != nil {
		t.Fatal(err)
	}
	p, err := m.PlanReplace(victim, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Now merge the two partitions back.
	mp, err := m.PlanMerge(p.NewInstances)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Range != state.FullRange {
		t.Errorf("merged range = %v", mp.Range)
	}
	if mp.Checkpoint.Processing.Len() != 12 {
		t.Errorf("merged state = %d keys, want 12", mp.Checkpoint.Processing.Len())
	}
	if m.Parallelism("count") != 1 {
		t.Errorf("parallelism after merge = %d", m.Parallelism("count"))
	}
	r := m.Routing("count")
	if got := r.Lookup(0); got != mp.NewInstance {
		t.Errorf("routing after merge → %v", got)
	}
}

func TestPlanMergeGuards(t *testing.T) {
	m, err := NewManager(wordQuery())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.PlanMerge([]plan.InstanceID{inst("count", 1)}); err == nil {
		t.Error("single-victim merge accepted")
	}
	if _, err := m.PlanMerge([]plan.InstanceID{inst("count", 1), inst("split", 1)}); err == nil {
		t.Error("cross-operator merge accepted")
	}
}

func TestHandleHostFailure(t *testing.T) {
	m, err := NewManager(wordQuery())
	if err != nil {
		t.Fatal(err)
	}
	victim := inst("count", 1)
	host, _ := m.BackupTarget(victim)
	if err := m.Backups().Store(host, mkCheckpoint(victim, 3)); err != nil {
		t.Fatal(err)
	}
	lost := m.HandleHostFailure(host)
	if len(lost) != 1 || lost[0] != victim {
		t.Errorf("lost = %v", lost)
	}
	// Now the victim cannot be replaced until it re-checkpoints.
	if _, err := m.PlanReplace(victim, 1); err == nil {
		t.Error("replace succeeded with lost backup")
	}
}

// TestPlanRecoveryFallbackGating: the empty-checkpoint fallback engages
// only when planning failed specifically for lack of a checkpoint; other
// planning errors must neither store the always-newest sentinel (which
// would block every future real checkpoint of a live instance) nor leave
// one behind when the retry fails.
func TestPlanRecoveryFallbackGating(t *testing.T) {
	q := wordQuery()
	q.Op("count").MaxParallelism = 1
	m, err := NewManager(q)
	if err != nil {
		t.Fatal(err)
	}
	victim := inst("count", 1)

	// No backup exists and pi exceeds max parallelism: planning fails
	// on max parallelism, NOT on the missing checkpoint.
	if _, err := m.PlanRecovery(victim, 2); err == nil {
		t.Fatal("PlanRecovery beyond max parallelism accepted")
	}
	if _, _, ok := m.Backups().Latest(victim); ok {
		t.Fatal("fallback stored a sentinel checkpoint despite a non-checkpoint planning error")
	}

	// A later real checkpoint must be storable (no poisoned sentinel).
	host, err := m.BackupTarget(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Backups().Store(host, mkCheckpoint(victim, 4)); err != nil {
		t.Fatalf("real checkpoint rejected after failed recovery attempt: %v", err)
	}

	// With a checkpoint present, recovery for a missing-checkpoint-free
	// error path restores the REAL state.
	rp, err := m.PlanRecovery(victim, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rp.Checkpoints[0].Processing.KV); got != 4 {
		t.Errorf("recovered checkpoint has %d keys, want 4 (real state)", got)
	}
}

// TestPlanRecoveryEmptyFallback: a genuine pre-first-backup failure
// recovers from an empty checkpoint.
func TestPlanRecoveryEmptyFallback(t *testing.T) {
	m, err := NewManager(wordQuery())
	if err != nil {
		t.Fatal(err)
	}
	victim := inst("count", 1)
	rp, err := m.PlanRecovery(victim, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rp.Checkpoints[0].Processing.KV); got != 0 {
		t.Errorf("empty-state recovery has %d keys", got)
	}
}

// TestBackupStoreApplyDelta: deltas fold into the stored base exactly
// once per sequence step; any mismatch (no base, moved host, sequence
// gap) is ErrNoBase so the shipper falls back to a full checkpoint.
func TestBackupStoreApplyDelta(t *testing.T) {
	s := NewBackupStore()
	owner := inst("count", 1)
	host := inst("split", 1)
	base := mkCheckpoint(owner, 4)

	mkDelta := func(baseSeq, seq uint64) *state.DeltaCheckpoint {
		return &state.DeltaCheckpoint{
			Instance: owner,
			Delta: &state.Delta{
				Base:    baseSeq,
				Seq:     seq,
				Changed: map[stream.Key][]byte{7: {42}},
				Deleted: []stream.Key{0},
				TS:      stream.TSVector{int64(seq)},
			},
			Buffer:   state.NewBuffer(),
			OutClock: int64(10 * seq),
			Acks:     map[plan.InstanceID]int64{host: int64(10 * seq)},
		}
	}

	// No base stored yet.
	if err := s.ApplyDelta(host, mkDelta(1, 2)); err == nil || !strings.Contains(err.Error(), "no checkpoint stored") {
		t.Fatalf("apply without base: %v", err)
	}
	if err := s.Store(host, base); err != nil {
		t.Fatal(err)
	}
	// Sequence gap.
	if err := s.ApplyDelta(host, mkDelta(5, 6)); err == nil || !strings.Contains(err.Error(), "delta base") {
		t.Fatalf("apply with gap: %v", err)
	}
	// Wrong host.
	if err := s.ApplyDelta(inst("split", 2), mkDelta(1, 2)); err == nil || !strings.Contains(err.Error(), "lives at") {
		t.Fatalf("apply at wrong host: %v", err)
	}
	// Consecutive applies fold.
	if err := s.ApplyDelta(host, mkDelta(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyDelta(host, mkDelta(2, 3)); err != nil {
		t.Fatal(err)
	}
	cp, storedHost, ok := s.Latest(owner)
	if !ok || storedHost != host {
		t.Fatal("folded checkpoint missing")
	}
	if cp.Seq != 3 || cp.OutClock != 30 {
		t.Errorf("folded seq/clock = %d/%d", cp.Seq, cp.OutClock)
	}
	if v, ok := cp.Processing.KV[7]; !ok || v[0] != 42 {
		t.Error("changed key not folded")
	}
	if _, ok := cp.Processing.KV[0]; ok {
		t.Error("deleted key survived the fold")
	}
	// The original base was never mutated (planners may hold it).
	if _, ok := base.Processing.KV[0]; !ok || base.Seq != 1 {
		t.Error("stored base mutated in place")
	}
	ship := s.ShipStats()
	if ship.Fulls != 1 || ship.Deltas != 2 || ship.DeltaBytes == 0 {
		t.Errorf("ship stats = %+v", ship)
	}
}
