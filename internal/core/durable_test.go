package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

func mkBufferedCheckpoint(owner plan.InstanceID) *state.Checkpoint {
	cp := mkCheckpoint(owner, 20)
	cp.Buffer.Append(inst("sink", 1), stream.Tuple{TS: 5, Key: 9, Born: 100, Payload: "hello"})
	cp.Buffer.Append(inst("sink", 1), stream.Tuple{TS: 6, Key: 9, Born: 101, Payload: "world"})
	cp.OutClock = 77
	cp.Acks = map[plan.InstanceID]int64{inst("split", 1): 123}
	return cp
}

func TestEncodeDecodeCheckpoint(t *testing.T) {
	cp := mkBufferedCheckpoint(inst("count", 1))
	e := stream.NewEncoder(0)
	if err := state.EncodeCheckpoint(e, cp, state.StringPayloadCodec{}); err != nil {
		t.Fatal(err)
	}
	got, err := state.DecodeCheckpoint(stream.NewDecoder(e.Bytes()), state.StringPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Instance != cp.Instance || got.Seq != cp.Seq || got.OutClock != 77 {
		t.Errorf("header mismatch: %+v", got)
	}
	if !got.Processing.Equal(cp.Processing) {
		t.Error("processing state mismatch")
	}
	if got.Buffer.Len() != 2 {
		t.Errorf("buffer length = %d", got.Buffer.Len())
	}
	tuples := got.Buffer.Tuples(inst("sink", 1))
	if tuples[0].Payload != "hello" || tuples[1].Payload != "world" {
		t.Errorf("buffered payloads = %v", tuples)
	}
	if tuples[0].Born != 100 {
		t.Errorf("born lost: %v", tuples[0])
	}
	if got.Acks[inst("split", 1)] != 123 {
		t.Errorf("acks = %v", got.Acks)
	}
}

func TestDecodeCheckpointRejectsGarbage(t *testing.T) {
	if _, err := state.DecodeCheckpoint(stream.NewDecoder([]byte("not a checkpoint")), state.StringPayloadCodec{}); err == nil {
		t.Error("garbage accepted")
	}
}

func TestStringPayloadCodecRejectsNonStrings(t *testing.T) {
	if _, err := (state.StringPayloadCodec{}).EncodePayload(42); err == nil {
		t.Error("non-string payload accepted")
	}
}

func TestDurableStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDurableStore(dir, state.StringPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	owner := inst("count", 1)
	host := inst("split", 1)
	cp := mkBufferedCheckpoint(owner)
	if err := s.Store(host, cp); err != nil {
		t.Fatal(err)
	}
	// In-memory view works as usual.
	got, gotHost, ok := s.Latest(owner)
	if !ok || gotHost != host || got.Seq != cp.Seq {
		t.Fatalf("Latest = %v %v %v", got, gotHost, ok)
	}
	// And the checkpoint is on disk.
	if _, err := s.Load(owner); err != nil {
		t.Fatalf("Load: %v", err)
	}

	// Simulate a full process restart: a fresh store over the same dir.
	s2, err := NewDurableStore(dir, state.StringPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s2.Latest(owner); ok {
		t.Fatal("fresh store should start empty in memory")
	}
	recovered, skipped, err := s2.LoadAll(func(plan.InstanceID) (plan.InstanceID, error) { return host, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped = %v", skipped)
	}
	if len(recovered) != 1 || recovered[0] != owner {
		t.Fatalf("recovered = %v", recovered)
	}
	got2, _, ok := s2.Latest(owner)
	if !ok || !got2.Processing.Equal(cp.Processing) || got2.Buffer.Len() != 2 {
		t.Error("recovered checkpoint differs")
	}
}

func TestDurableStoreDeleteRemovesFile(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDurableStore(dir, state.StringPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	owner := inst("count", 1)
	if err := s.Store(inst("split", 1), mkBufferedCheckpoint(owner)); err != nil {
		t.Fatal(err)
	}
	s.Delete(owner)
	if _, err := s.Load(owner); err == nil {
		t.Error("file survived Delete")
	}
	entries, _ := os.ReadDir(dir)
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) == ".ckpt" {
			t.Errorf("stray checkpoint file %s", ent.Name())
		}
	}
}

func TestDurableStoreCorruptFile(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDurableStore(dir, state.StringPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bogus.ckpt"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	owners, skipped, err := s.LoadAll(func(plan.InstanceID) (plan.InstanceID, error) { return inst("u", 1), nil })
	if err != nil {
		t.Fatalf("corrupt checkpoint should skip, not fail: %v", err)
	}
	if len(owners) != 0 {
		t.Errorf("owners = %v", owners)
	}
	if len(skipped) != 1 || skipped[0].File != "bogus.ckpt" || skipped[0].Err == nil {
		t.Errorf("skipped = %v", skipped)
	}
}

// TestDurableStoreTruncatedFile proves a torn write — a crash mid-
// checkpoint — costs exactly that checkpoint: the rest of the directory
// still loads, and the torn file is reported with a typed error.
func TestDurableStoreTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDurableStore(dir, state.StringPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	host := inst("split", 1)
	good := inst("count", 1)
	torn := inst("count", 2)
	if err := s.Store(host, mkBufferedCheckpoint(good)); err != nil {
		t.Fatal(err)
	}
	cp := mkBufferedCheckpoint(torn)
	cp.Instance = torn
	if err := s.Store(host, cp); err != nil {
		t.Fatal(err)
	}
	// Truncate the second checkpoint mid-file.
	path := filepath.Join(dir, "count-2.ckpt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := NewDurableStore(dir, state.StringPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	owners, skipped, err := s2.LoadAll(func(plan.InstanceID) (plan.InstanceID, error) { return host, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) != 1 || owners[0] != good {
		t.Fatalf("owners = %v, want only %v", owners, good)
	}
	if len(skipped) != 1 || skipped[0].File != "count-2.ckpt" {
		t.Fatalf("skipped = %v", skipped)
	}
	var ce *CorruptCheckpointError
	if !errors.As(error(skipped[0]), &ce) {
		t.Fatalf("skipped entry is not a CorruptCheckpointError: %T", skipped[0])
	}
	if got, _, ok := s2.Latest(good); !ok || got.Buffer.Len() != 2 {
		t.Error("surviving checkpoint did not load intact")
	}
}

func TestDurableStoreSanitizesNames(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDurableStore(dir, state.StringPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	owner := plan.InstanceID{Op: "weird/op name", Part: 1}
	cp := mkBufferedCheckpoint(owner)
	cp.Instance = owner
	if err := s.Store(inst("split", 1), cp); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(owner); err != nil {
		t.Errorf("load with sanitised name: %v", err)
	}
}
