package core

import (
	"errors"
	"fmt"
	"sync"

	"seep/internal/plan"
	"seep/internal/state"
)

// ErrNoCheckpoint reports that replacement planning failed because the
// victim has no backed-up checkpoint. It is the only planning failure
// PlanRecovery may answer with the empty-state fallback.
var ErrNoCheckpoint = errors.New("no checkpoint available")

// Splitter chooses how a key interval is divided across π new partitions.
// The default is even hash partitioning; a frequency-guided splitter can
// be substituted (§3.2: "the key distribution can be used to guide the
// split").
type Splitter func(r state.KeyRange, pi int) []state.KeyRange

// EvenSplitter is the default hash-partitioning splitter.
func EvenSplitter(r state.KeyRange, pi int) []state.KeyRange { return r.SplitEven(pi) }

// ReplacePlan is the outcome of planning scale-out-operator(o, π)
// (Algorithm 3, lines 1-2 plus the Algorithm 2 state partitioning): the
// data needed by a runtime to deploy new instances, restore state, update
// routing and replay buffered tuples.
type ReplacePlan struct {
	// Victim is the instance being replaced (bottleneck or failed).
	Victim plan.InstanceID
	// NewInstances are the π replacement instances, freshly numbered.
	NewInstances []plan.InstanceID
	// Ranges[i] is the key interval owned by NewInstances[i].
	Ranges []state.KeyRange
	// Checkpoints[i] is the partitioned state for NewInstances[i],
	// already re-backed-up in the store (Algorithm 2 line 8).
	Checkpoints []*state.Checkpoint
	// Routing is the updated routing table for the victim's logical
	// operator, to be installed at every upstream instance.
	Routing *state.Routing
}

// MergePlan is the outcome of planning a scale-in: two or more sibling
// instances collapse into one (§3.3 merge primitive).
type MergePlan struct {
	Victims     []plan.InstanceID
	NewInstance plan.InstanceID
	Range       state.KeyRange
	Checkpoint  *state.Checkpoint
	Routing     *state.Routing
	// VictimCheckpoints are the per-victim checkpoints the merge was
	// planned from, aligned with Victims. Runtimes replay each victim's
	// buffered output under its original identity and trim upstream
	// buffers to each victim's own acknowledgement watermark before
	// repartitioning, which is what keeps the merge exactly-once.
	VictimCheckpoints []*state.Checkpoint
}

// Manager is the logically centralised query manager of §2.2/§5: it owns
// the execution graph, the routing state of every logical operator, and
// the backup store, and it plans scale-out/recovery/scale-in transitions.
// Runtimes execute the plans (deploy VMs, restore operators, replay).
// Manager is safe for concurrent use.
type Manager struct {
	mu      sync.Mutex
	query   *plan.Query
	graph   *plan.ExecGraph
	backups *BackupStore
	// routing maps each logical operator to the routing state its
	// upstream operators use to reach its partitions. Routing state is
	// "maintained by the query manager" and restored from here after
	// upstream failures (§3.2).
	routing map[plan.OpID]*state.Routing
	// Split is the key-split strategy (EvenSplitter by default).
	Split Splitter
}

// NewManager builds the manager for a validated query, materialising the
// initial execution graph and full-range routing for every operator with
// a single partition, or an even split for pre-parallelised operators.
func NewManager(q *plan.Query) (*Manager, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	m := &Manager{
		query:   q,
		graph:   plan.NewExecGraph(q),
		backups: NewBackupStore(),
		routing: make(map[plan.OpID]*state.Routing),
		Split:   EvenSplitter,
	}
	for _, id := range q.Ops() {
		insts := m.graph.Instances(id)
		ranges := state.FullRange.SplitEven(len(insts))
		entries := make([]state.RouteEntry, len(insts))
		for i, inst := range insts {
			entries[i] = state.RouteEntry{Target: inst, Range: ranges[i]}
		}
		r, err := state.NewRoutingFromEntries(entries)
		if err != nil {
			return nil, err
		}
		m.routing[id] = r
	}
	return m, nil
}

// RestoreTopology replaces the manager's execution graph and routing
// wholesale with journaled control-plane state — the restore half of a
// durable control plane. The partition counters must dominate the live
// instances' partition numbers (see plan.RestoreExecGraph); routing
// must cover exactly the live instances of each routed operator.
func (m *Manager) RestoreTopology(instances map[plan.OpID][]plan.InstanceID, nextPart map[plan.OpID]int, routing map[plan.OpID]*state.Routing) error {
	graph, err := plan.RestoreExecGraph(m.query, instances, nextPart)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.graph = graph
	m.routing = make(map[plan.OpID]*state.Routing, len(routing))
	for op, r := range routing {
		if m.query.Op(op) == nil {
			return fmt.Errorf("core: restore: unknown operator %q", op)
		}
		m.routing[op] = r.Clone()
	}
	return nil
}

// NextPart returns the next unused partition number of op (journaled by
// the durable control plane; see plan.ExecGraph.NextPart).
func (m *Manager) NextPart(op plan.OpID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.graph.NextPart(op)
}

// Query returns the logical query graph.
func (m *Manager) Query() *plan.Query { return m.query }

// Backups returns the backup store.
func (m *Manager) Backups() *BackupStore { return m.backups }

// Routing returns the current routing state for reaching op's partitions.
func (m *Manager) Routing(op plan.OpID) *state.Routing {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r := m.routing[op]; r != nil {
		return r.Clone()
	}
	return nil
}

// Instances returns the live instances of op.
func (m *Manager) Instances(op plan.OpID) []plan.InstanceID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.graph.Instances(op)
}

// AllInstances returns every live instance.
func (m *Manager) AllInstances() []plan.InstanceID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.graph.AllInstances()
}

// Parallelism returns the number of live partitions of op.
func (m *Manager) Parallelism(op plan.OpID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.graph.Parallelism(op)
}

// Live reports whether inst is part of the current execution graph.
func (m *Manager) Live(inst plan.InstanceID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.graph.Live(inst)
}

// UpstreamInstances returns the live instances of all logical upstream
// operators of op, the candidates for backup placement.
func (m *Manager) UpstreamInstances(op plan.OpID) []plan.InstanceID {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []plan.InstanceID
	for _, u := range m.query.Upstream(op) {
		out = append(out, m.graph.Instances(u)...)
	}
	return out
}

// BackupTarget returns the upstream instance that should store o's next
// checkpoint, per Algorithm 1 line 2.
func (m *Manager) BackupTarget(o plan.InstanceID) (plan.InstanceID, error) {
	return ChooseBackup(o, m.UpstreamInstances(o.Op))
}

// PlanReplace plans scale-out-operator(victim, π): it retrieves the
// victim's backed-up checkpoint, partitions it over π new instances with
// freshly numbered partitions, stores the partitioned checkpoints as
// initial backups, and computes the updated routing table. The victim is
// removed from the execution graph. π=1 is failure recovery; π≥2 is
// scale out (or parallel recovery). The caller must then execute the
// plan: deploy, restore, replay, and install routing upstream.
//
// If the victim has no backed-up checkpoint (its backup host failed
// first), planning fails and the caller must wait for a fresh backup
// (§4.3 discussion).
func (m *Manager) PlanReplace(victim plan.InstanceID, pi int) (*ReplacePlan, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if pi < 1 {
		return nil, fmt.Errorf("core: replace %s with pi=%d", victim, pi)
	}
	spec := m.query.Op(victim.Op)
	if spec == nil {
		return nil, fmt.Errorf("core: unknown operator %q", victim.Op)
	}
	if spec.Role == plan.RoleSource || spec.Role == plan.RoleSink {
		return nil, fmt.Errorf("core: cannot replace %s: sources and sinks are assumed reliable (§2.2)", victim)
	}
	if max := spec.MaxParallelism; max > 0 && m.graph.Parallelism(victim.Op)-1+pi > max {
		return nil, fmt.Errorf("core: scale out of %s to %d exceeds max parallelism %d", victim, pi, max)
	}
	if !m.graph.Live(victim) {
		return nil, fmt.Errorf("core: instance %s is not live", victim)
	}
	cp, _, ok := m.backups.Latest(victim)
	if !ok && spec.Role == plan.RoleStateful {
		return nil, fmt.Errorf("core: %w for %s; retry after next backup", ErrNoCheckpoint, victim)
	}
	routing := m.routing[victim.Op]
	kr, ok2 := routing.RangeOf(victim)
	if !ok2 {
		return nil, fmt.Errorf("core: %s has no routing entry", victim)
	}
	split := m.Split
	if split == nil {
		split = EvenSplitter
	}
	ranges := split(kr, pi)
	if len(ranges) != pi {
		return nil, fmt.Errorf("core: splitter returned %d ranges for pi=%d", len(ranges), pi)
	}
	newInsts, err := m.graph.Replace(victim.Op, []plan.InstanceID{victim}, pi)
	if err != nil {
		return nil, err
	}
	var parts []*state.Checkpoint
	if cp != nil {
		parts, err = state.PartitionCheckpoint(cp, newInsts, ranges)
	} else {
		// Stateless victim: empty checkpoints, fresh clocks.
		parts = make([]*state.Checkpoint, pi)
		for i := range parts {
			parts[i] = &state.Checkpoint{
				Instance:   newInsts[i],
				Seq:        1,
				Processing: state.NewProcessing(len(m.query.Upstream(victim.Op))),
				Buffer:     state.NewBuffer(),
			}
		}
	}
	if err != nil {
		// Roll back the graph change.
		_, _ = m.graph.Replace(victim.Op, newInsts, 1)
		return nil, err
	}
	newRouting, err := routing.ReplaceTarget(victim, newInsts, ranges)
	if err != nil {
		return nil, err
	}
	// Algorithm 2 line 8: the partitioned state is stored as the initial
	// backup of each new partition, then the old backup is released.
	for i, p := range parts {
		host, herr := ChooseBackup(newInsts[i], m.upstreamLocked(victim.Op))
		if herr != nil {
			return nil, herr
		}
		if serr := m.backups.Store(host, p); serr != nil {
			return nil, serr
		}
	}
	m.backups.Delete(victim)
	m.routing[victim.Op] = newRouting
	return &ReplacePlan{
		Victim:       victim,
		NewInstances: newInsts,
		Ranges:       ranges,
		Checkpoints:  parts,
		Routing:      newRouting.Clone(),
	}, nil
}

// PlanRecovery plans the replacement of a FAILED instance. It is
// PlanReplace with one extra rule: when planning fails solely because
// the victim has no backed-up checkpoint (it failed before its first
// backup — or runs under a baseline mode that never checkpoints), an
// empty checkpoint is stored at the backup host and planning retried,
// so the operator restarts from empty state and upstream-buffer replay
// rebuilds whatever is reconstructible. A victim that HAS a checkpoint
// never reaches the fallback: planning errors for other reasons (max
// parallelism, stale instance, ...) must not overwrite a real backup
// with empty state.
func (m *Manager) PlanRecovery(victim plan.InstanceID, pi int) (*ReplacePlan, error) {
	rp, err := m.PlanReplace(victim, pi)
	if err == nil {
		return rp, nil
	}
	if !errors.Is(err, ErrNoCheckpoint) {
		return nil, err
	}
	empty := &state.Checkpoint{
		Instance:   victim,
		Seq:        ^uint64(0), // always newest
		Processing: state.NewProcessing(len(m.Query().Upstream(victim.Op))),
		Buffer:     state.NewBuffer(),
	}
	host, herr := m.BackupTarget(victim)
	if herr != nil {
		return nil, err
	}
	if serr := m.backups.Store(host, empty); serr != nil {
		return nil, err
	}
	rp, rerr := m.PlanReplace(victim, pi)
	if rerr != nil {
		// Do not leave the always-newest sentinel behind: it would block
		// every future real checkpoint of a still-live instance.
		m.backups.Delete(victim)
		return nil, rerr
	}
	return rp, nil
}

func (m *Manager) upstreamLocked(op plan.OpID) []plan.InstanceID {
	var out []plan.InstanceID
	for _, u := range m.query.Upstream(op) {
		out = append(out, m.graph.Instances(u)...)
	}
	return out
}

// PlanMerge plans a scale-in: the victims (sibling partitions with
// adjacent key ranges) are merged into one new instance. All victims
// must have backed-up checkpoints.
func (m *Manager) PlanMerge(victims []plan.InstanceID) (*MergePlan, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(victims) < 2 {
		return nil, fmt.Errorf("core: merge needs at least two victims")
	}
	op := victims[0].Op
	routing := m.routing[op]
	var cps []*state.Checkpoint
	var union state.KeyRange
	for i, v := range victims {
		if v.Op != op {
			return nil, fmt.Errorf("core: merge across operators %q and %q", op, v.Op)
		}
		if !m.graph.Live(v) {
			return nil, fmt.Errorf("core: instance %s is not live", v)
		}
		cp, _, ok := m.backups.Latest(v)
		if !ok {
			return nil, fmt.Errorf("core: no checkpoint for %s", v)
		}
		cps = append(cps, cp)
		r, ok := routing.RangeOf(v)
		if !ok {
			return nil, fmt.Errorf("core: %s has no routing entry", v)
		}
		if i == 0 {
			union = r
		} else if r.Lo == union.Hi+1 {
			union.Hi = r.Hi
		} else if union.Lo == r.Hi+1 {
			union.Lo = r.Lo
		} else {
			return nil, fmt.Errorf("core: victims' key ranges are not adjacent: %v and %v", union, r)
		}
	}
	newInsts, err := m.graph.Replace(op, victims, 1)
	if err != nil {
		return nil, err
	}
	target := newInsts[0]
	merged, err := state.MergeCheckpoints(target, cps...)
	if err != nil {
		return nil, err
	}
	// Rebuild the routing table: drop every victim entry, add one entry
	// covering their united interval.
	var entries []state.RouteEntry
	for _, e := range routing.Entries() {
		isVictim := false
		for _, v := range victims {
			if e.Target == v {
				isVictim = true
				break
			}
		}
		if !isVictim {
			entries = append(entries, e)
		}
	}
	entries = append(entries, state.RouteEntry{Target: target, Range: union})
	newRouting, err := state.NewRoutingFromEntries(entries)
	if err != nil {
		return nil, err
	}
	host, err := ChooseBackup(target, m.upstreamLocked(op))
	if err != nil {
		return nil, err
	}
	if err := m.backups.Store(host, merged); err != nil {
		return nil, err
	}
	for _, v := range victims {
		m.backups.Delete(v)
	}
	m.routing[op] = newRouting
	return &MergePlan{
		Victims:           victims,
		NewInstance:       target,
		Range:             union,
		Checkpoint:        merged,
		Routing:           newRouting.Clone(),
		VictimCheckpoints: cps,
	}, nil
}

// HandleHostFailure records that a VM hosting inst failed: backups stored
// at that host are dropped (they lived in its memory). Returns the owners
// whose backups were lost.
func (m *Manager) HandleHostFailure(inst plan.InstanceID) []plan.InstanceID {
	return m.backups.DropHost(inst)
}
