// Package core implements the paper's primary contribution: explicit
// operator state management. It provides the backup store (the state kept
// "at upstream VMs"), backup-operator placement (Algorithm 1), and the
// query manager that owns the execution graph and routing state and plans
// the integrated fault-tolerant scale-out of Algorithm 3. The runtime
// layers (the live engine and the cluster simulator) execute these plans.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

// ErrNoBase reports that an incremental checkpoint cannot be applied —
// no stored base, a base at a different host, or a sequence gap. The
// caller must ship a full checkpoint instead.
var ErrNoBase = errors.New("core: no matching base checkpoint for delta")

// ChooseBackup selects the upstream instance that stores o's checkpoints:
// i = hash(id(o)) mod |up(o)| (Algorithm 1, line 2). Spreading backups by
// hash balances the backup load across upstream operators (§3.2). The
// upstream list must be non-empty and is sorted internally so the choice
// is stable regardless of caller ordering.
func ChooseBackup(o plan.InstanceID, upstreams []plan.InstanceID) (plan.InstanceID, error) {
	if len(upstreams) == 0 {
		return plan.InstanceID{}, fmt.Errorf("core: no upstream operator to back up %s", o)
	}
	ups := append([]plan.InstanceID(nil), upstreams...)
	sort.Slice(ups, func(i, j int) bool {
		if ups[i].Op != ups[j].Op {
			return ups[i].Op < ups[j].Op
		}
		return ups[i].Part < ups[j].Part
	})
	h := stream.KeyOfString(o.String())
	return ups[uint64(h)%uint64(len(ups))], nil
}

// backupKey identifies a stored backup by its owner.
type entry struct {
	host plan.InstanceID
	cp   *state.Checkpoint
}

// BackupStore holds the checkpointed state of operators, attributed to
// the upstream instance ("host") that physically stores it. Losing a
// host (VM failure) loses the backups it held — exactly the failure mode
// discussed in §4.3 — so the store supports dropping all state held by a
// host. BackupStore is safe for concurrent use.
type BackupStore struct {
	mu      sync.Mutex
	byOwner map[plan.InstanceID]entry
	// bytes tracks the total stored footprint for observability.
	bytes int
	// ship tallies what was shipped to the store, so the size win of
	// incremental checkpoints is observable on every substrate.
	ship ShipStats
}

// ShipStats tallies checkpoint traffic into a backup store: how many
// full checkpoints and deltas were accepted, and their serialised bytes.
// DeltaBytes versus the full-checkpoint bytes they replaced is the
// measurable win of incremental checkpointing (§3.2).
type ShipStats struct {
	Fulls      uint64
	Deltas     uint64
	FullBytes  uint64
	DeltaBytes uint64
}

// NewBackupStore returns an empty store.
func NewBackupStore() *BackupStore {
	return &BackupStore{byOwner: make(map[plan.InstanceID]entry)}
}

// Store saves a checkpoint for cp.Instance at the given host, replacing
// any older checkpoint (Algorithm 1 lines 3-7: if the backup operator
// changed, the old backup is released). Stale checkpoints (lower Seq for
// the same owner at the same host) are rejected.
func (s *BackupStore) Store(host plan.InstanceID, cp *state.Checkpoint) error {
	if err := cp.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.byOwner[cp.Instance]; ok {
		if old.host == host && old.cp.Seq > cp.Seq {
			return fmt.Errorf("core: stale checkpoint seq %d < %d for %s", cp.Seq, old.cp.Seq, cp.Instance)
		}
		s.bytes -= old.cp.Size()
	}
	s.byOwner[cp.Instance] = entry{host: host, cp: cp}
	s.bytes += cp.Size()
	s.ship.Fulls++
	s.ship.FullBytes += uint64(cp.Size())
	return nil
}

// ApplyDelta folds an incremental checkpoint into the stored base
// checkpoint of its owner — the backup-host side of §3.2's incremental
// checkpointing. The stored checkpoint must live at the given host and
// its Seq must equal the delta's Base (consecutive chain); otherwise
// ErrNoBase is returned and the caller falls back to a full checkpoint.
// On success the stored checkpoint is replaced by a fresh fold (the old
// one is never mutated: planners may hold references to it).
func (s *BackupStore) ApplyDelta(host plan.InstanceID, dc *state.DeltaCheckpoint) error {
	if dc == nil || dc.Delta == nil {
		return fmt.Errorf("core: nil delta checkpoint")
	}
	if dc.Instance.Op == "" {
		return fmt.Errorf("core: delta checkpoint with empty instance")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byOwner[dc.Instance]
	if !ok {
		return fmt.Errorf("%w: no checkpoint stored for %s", ErrNoBase, dc.Instance)
	}
	if e.host != host {
		return fmt.Errorf("%w: base for %s lives at %s, not %s", ErrNoBase, dc.Instance, e.host, host)
	}
	if e.cp.Seq != dc.Delta.Base {
		return fmt.Errorf("%w: stored seq %d, delta base %d for %s", ErrNoBase, e.cp.Seq, dc.Delta.Base, dc.Instance)
	}
	folded := &state.Checkpoint{
		Instance:   dc.Instance,
		Seq:        dc.Delta.Seq,
		Processing: e.cp.Processing.Clone(),
		Buffer:     dc.Buffer.Clone(),
		OutClock:   dc.OutClock,
		Acks:       state.CloneAcks(dc.Acks),
		// Deltas never re-ship legacy buffers: the base's copy stays
		// authoritative until downstream acknowledgements retire it.
		Legacy: state.CloneLegacy(e.cp.Legacy),
	}
	dc.Delta.Apply(folded.Processing)
	s.bytes += folded.Size() - e.cp.Size()
	s.byOwner[dc.Instance] = entry{host: host, cp: folded}
	s.ship.Deltas++
	s.ship.DeltaBytes += uint64(dc.Size())
	return nil
}

// ShipStats returns the checkpoint traffic tallies.
func (s *BackupStore) ShipStats() ShipStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ship
}

// Latest returns the most recent checkpoint for owner and the host
// storing it.
func (s *BackupStore) Latest(owner plan.InstanceID) (*state.Checkpoint, plan.InstanceID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byOwner[owner]
	if !ok {
		return nil, plan.InstanceID{}, false
	}
	return e.cp, e.host, true
}

// Delete removes the backup of owner (delete-backup in Algorithm 1).
func (s *BackupStore) Delete(owner plan.InstanceID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.byOwner[owner]; ok {
		s.bytes -= e.cp.Size()
		delete(s.byOwner, owner)
	}
}

// DropHost removes every backup physically stored at host, modelling the
// loss of the VM hosting it. It returns the owners whose backups were
// lost; those operators must re-checkpoint before they can be recovered
// or scaled out (§4.3 discussion).
func (s *BackupStore) DropHost(host plan.InstanceID) []plan.InstanceID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var lost []plan.InstanceID
	for owner, e := range s.byOwner {
		if e.host == host {
			s.bytes -= e.cp.Size()
			delete(s.byOwner, owner)
			lost = append(lost, owner)
		}
	}
	sort.Slice(lost, func(i, j int) bool {
		if lost[i].Op != lost[j].Op {
			return lost[i].Op < lost[j].Op
		}
		return lost[i].Part < lost[j].Part
	})
	return lost
}

// HostedBy returns the owners whose backups are stored at host.
func (s *BackupStore) HostedBy(host plan.InstanceID) []plan.InstanceID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []plan.InstanceID
	for owner, e := range s.byOwner {
		if e.host == host {
			out = append(out, owner)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Part < out[j].Part
	})
	return out
}

// Bytes returns the total stored checkpoint footprint.
func (s *BackupStore) Bytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Len returns the number of stored backups.
func (s *BackupStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byOwner)
}
