package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

// DurableStore persists checkpoints to a directory in addition to the
// in-memory backup store — the persist operation of §3.3 ("part of the
// operator state can be supported by external storage through a persist
// operation"). Backups survive a full process restart: a recovering
// deployment calls LoadAll to repopulate its backup store.
//
// Files are written atomically (temp file + rename) so a crash mid-write
// never corrupts the previous checkpoint.
type DurableStore struct {
	*BackupStore
	mu    sync.Mutex
	dir   string
	codec state.PayloadCodec
}

// NewDurableStore creates (or reuses) the directory and wraps a fresh
// in-memory backup store.
func NewDurableStore(dir string, codec state.PayloadCodec) (*DurableStore, error) {
	return NewDurableStoreOver(NewBackupStore(), dir, codec)
}

// NewDurableStoreOver layers disk persistence over an existing backup
// store. The coordinator uses this to make the manager's own store
// durable without doubling checkpoints in memory.
func NewDurableStoreOver(bs *BackupStore, dir string, codec state.PayloadCodec) (*DurableStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: create checkpoint dir: %w", err)
	}
	return &DurableStore{BackupStore: bs, dir: dir, codec: codec}, nil
}

// CorruptCheckpointError marks a checkpoint file LoadAll could not read
// or decode — a torn write from a crash, or disk rot. The file is
// skipped so the rest of the directory still recovers.
type CorruptCheckpointError struct {
	File string
	Err  error
}

func (e *CorruptCheckpointError) Error() string {
	return fmt.Sprintf("core: corrupt checkpoint %s: %v", e.File, e.Err)
}

func (e *CorruptCheckpointError) Unwrap() error { return e.Err }

func (s *DurableStore) fileFor(owner plan.InstanceID) string {
	name := fmt.Sprintf("%s-%d.ckpt", sanitize(string(owner.Op)), owner.Part)
	return filepath.Join(s.dir, name)
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, s)
}

// Store persists the checkpoint, then records it in memory. If the disk
// write fails the in-memory store is not updated, so Latest never claims
// durability it does not have.
func (s *DurableStore) Store(host plan.InstanceID, cp *state.Checkpoint) error {
	if err := s.Persist(cp); err != nil {
		return err
	}
	return s.BackupStore.Store(host, cp)
}

// Persist writes the checkpoint to disk without touching the in-memory
// store. The coordinator uses this for checkpoints the manager already
// holds in memory (plan-time victim state) so the durable-file ordering
// invariant — files on disk before the plan is journaled — holds.
func (s *DurableStore) Persist(cp *state.Checkpoint) error {
	if err := cp.Validate(); err != nil {
		return err
	}
	e := stream.NewEncoder(cp.Size() + 256)
	if err := state.EncodeCheckpoint(e, cp, s.codec); err != nil {
		return err
	}
	s.mu.Lock()
	path := s.fileFor(cp.Instance)
	tmp := path + ".tmp"
	err := os.WriteFile(tmp, e.Bytes(), 0o644)
	if err == nil {
		err = os.Rename(tmp, path)
	}
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("core: persist checkpoint: %w", err)
	}
	return nil
}

// Delete removes the backup from memory and disk.
func (s *DurableStore) Delete(owner plan.InstanceID) {
	s.BackupStore.Delete(owner)
	s.mu.Lock()
	_ = os.Remove(s.fileFor(owner))
	s.mu.Unlock()
}

// Load reads one persisted checkpoint from disk (without touching the
// in-memory store).
func (s *DurableStore) Load(owner plan.InstanceID) (*state.Checkpoint, error) {
	s.mu.Lock()
	b, err := os.ReadFile(s.fileFor(owner))
	s.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("core: load checkpoint: %w", err)
	}
	return state.DecodeCheckpoint(stream.NewDecoder(b), s.codec)
}

// LoadAll repopulates the in-memory store from every checkpoint file in
// the directory, attributing each to the given host chooser (typically
// Manager.BackupTarget). A file that cannot be read or decoded — torn
// by a crash mid-write, or rotted on disk — is skipped and reported in
// skipped rather than failing the whole recovery: losing one backup
// costs a replay from that instance's upstreams, losing the recovery
// costs the job. Only a directory scan failure is fatal.
func (s *DurableStore) LoadAll(hostFor func(owner plan.InstanceID) (plan.InstanceID, error)) (owners []plan.InstanceID, skipped []*CorruptCheckpointError, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("core: scan checkpoint dir: %w", err)
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".ckpt") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.dir, ent.Name()))
		if err != nil {
			skipped = append(skipped, &CorruptCheckpointError{File: ent.Name(), Err: err})
			continue
		}
		cp, err := state.DecodeCheckpoint(stream.NewDecoder(b), s.codec)
		if err != nil {
			skipped = append(skipped, &CorruptCheckpointError{File: ent.Name(), Err: err})
			continue
		}
		host, err := hostFor(cp.Instance)
		if err != nil {
			continue
		}
		if err := s.BackupStore.Store(host, cp); err != nil {
			return owners, skipped, err
		}
		owners = append(owners, cp.Instance)
	}
	return owners, skipped, nil
}
