// Package wordcount builds the windowed word frequency query of §6.2:
// a source of 140-byte sentence fragments, a stateless word splitter and
// a stateful word counter. It is the workload for the recovery (Figs.
// 11-13) and state-management-overhead (Figs. 14-15) experiments.
package wordcount

import (
	"fmt"
	"math/rand"
	"strings"

	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/sim"
	"seep/internal/stream"
)

// Options shape the query.
type Options struct {
	// WindowMillis is the counting window (30 s in the paper; 0 =
	// continuous counting).
	WindowMillis int64
	// SplitCost and CountCost are per-tuple CPU costs (cost units).
	SplitCost, CountCost float64
	// EmitOnUpdate makes windowed counters emit a running count per
	// update so every input tuple produces an observable output (needed
	// for latency measurements).
	EmitOnUpdate bool
}

// DefaultOptions mirror the §6.2 setup on capacity-1 VMs: the counter
// saturates around 1600 tuples/s, matching the paper's observation that
// the system becomes overloaded near 1000 tuples/s once checkpointing
// overhead is added.
func DefaultOptions() Options {
	return Options{
		WindowMillis: 30_000,
		SplitCost:    0.0001,
		CountCost:    0.0006,
		EmitOnUpdate: true,
	}
}

// Query returns the word frequency query graph.
func Query(o Options) *plan.Query {
	q := plan.NewQuery()
	q.AddOp(plan.OpSpec{ID: "src", Role: plan.RoleSource})
	q.AddOp(plan.OpSpec{ID: "split", Role: plan.RoleStateless, CostPerTuple: o.SplitCost})
	q.AddOp(plan.OpSpec{ID: "count", Role: plan.RoleStateful, CostPerTuple: o.CountCost})
	q.AddOp(plan.OpSpec{ID: "sink", Role: plan.RoleSink})
	q.Connect("src", "split")
	q.Connect("split", "count")
	q.Connect("count", "sink")
	return q
}

// Factories returns operator factories for Query.
func Factories(o Options) map[plan.OpID]operator.Factory {
	return map[plan.OpID]operator.Factory{
		"split": func() operator.Operator { return operator.WordSplitter() },
		"count": func() operator.Operator {
			w := operator.NewWordCounter(o.WindowMillis)
			w.EmitOnUpdate = o.EmitOnUpdate
			return w
		},
	}
}

// SentenceSource generates 140-byte sentence fragments drawn from a
// vocabulary of the given size (the paper's stream of "sentence
// fragments, each 140 bytes in size"). Vocabulary size controls the
// word counter's state size: 10² ≈ 2 KB, 10⁴ ≈ 200 KB, 10⁵ ≈ 2 MB
// (Fig. 14).
func SentenceSource(vocabulary int, seed int64) sim.Generator {
	rng := rand.New(rand.NewSource(seed))
	return func(i uint64) (stream.Key, any) {
		var sb strings.Builder
		// ~14 words of ~9 chars + space ≈ 140 bytes.
		for sb.Len() < 126 {
			fmt.Fprintf(&sb, "w%08d ", rng.Intn(vocabulary))
		}
		s := sb.String()
		return stream.KeyOf([]byte(s)), s
	}
}

// WordsPerSentence is the expansion factor of SentenceSource through the
// splitter (each 140-byte fragment holds ~14 words).
const WordsPerSentence = 14

// WordSource generates single-word fragments drawn uniformly from a
// vocabulary of the given size. The experiments use it so that the
// tuple rate on the x-axis of the paper's recovery figures equals the
// rate hitting the stateful counter, while vocabulary size still sets
// the counter's state footprint (10² keys ≈ 2 KB, 10⁴ ≈ 200 KB,
// 10⁵ ≈ 2 MB — Fig. 14's small/medium/large).
func WordSource(vocabulary int, seed int64) sim.Generator {
	rng := rand.New(rand.NewSource(seed))
	return func(i uint64) (stream.Key, any) {
		w := fmt.Sprintf("w%08d", rng.Intn(vocabulary))
		return stream.KeyOfString(w), w
	}
}
