package wordcount

import (
	"strings"
	"testing"

	"seep/internal/plan"
	"seep/internal/sim"
)

func TestQueryValidates(t *testing.T) {
	o := DefaultOptions()
	q := Query(o)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	f := Factories(o)
	if f["split"] == nil || f["count"] == nil {
		t.Fatal("missing factories")
	}
	if f["split"]() == nil || f["count"]() == nil {
		t.Fatal("factories returned nil")
	}
}

func TestSentenceSourceShape(t *testing.T) {
	gen := SentenceSource(1000, 1)
	seen := make(map[string]bool)
	for i := uint64(0); i < 200; i++ {
		_, p := gen(i)
		s, ok := p.(string)
		if !ok {
			t.Fatal("payload not a string")
		}
		// ~140 bytes per fragment.
		if len(s) < 120 || len(s) > 160 {
			t.Fatalf("fragment length %d", len(s))
		}
		words := strings.Fields(s)
		if len(words) < 10 || len(words) > 18 {
			t.Fatalf("fragment has %d words", len(words))
		}
		for _, w := range words {
			seen[w] = true
		}
	}
	if len(seen) < 500 {
		t.Errorf("vocabulary coverage too small: %d", len(seen))
	}
}

func TestWordSourceVocabularyBoundsStateSize(t *testing.T) {
	gen := WordSource(100, 2)
	seen := make(map[any]bool)
	for i := uint64(0); i < 5000; i++ {
		_, p := gen(i)
		seen[p] = true
	}
	if len(seen) > 100 {
		t.Errorf("vocabulary escaped its bound: %d distinct words", len(seen))
	}
	if len(seen) < 90 {
		t.Errorf("vocabulary under-covered: %d of 100", len(seen))
	}
}

func TestEndToEndOnSimulator(t *testing.T) {
	o := DefaultOptions()
	o.WindowMillis = 0
	c, err := sim.NewCluster(sim.Config{Seed: 1, Mode: sim.FTRSM}, Query(o), Factories(o))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddSource(plan.InstanceID{Op: "src", Part: 1}, sim.ConstantRate(500), WordSource(100, 1)); err != nil {
		t.Fatal(err)
	}
	c.RunUntil(20_000)
	if c.SinkCount.Value() == 0 {
		t.Error("no results at sink")
	}
	// 500 t/s at the default costs keeps P95 low.
	if p95 := c.Latency.Percentile(0.95); p95 > 100 {
		t.Errorf("P95 = %d ms at half load", p95)
	}
}
