package transport

import (
	"sync"
	"sync/atomic"
	"time"
)

// Link-level fault injection for the chaos harness (internal/scenario).
// Faults are keyed by destination address and applied at the single
// outbound choke point every frame crosses (Peer.writeLocked), so one
// armed entry affects data batches, acks, control frames AND heartbeat
// probes toward that host:
//
//   - a Slow fault delays each frame by the configured duration, which
//     models a degraded link — heartbeat replies still flow (the
//     listener's reply path is not a Peer), so as long as the delay is
//     below the detection horizon the host is slow, not dead;
//   - a Drop fault black-holes every frame toward the host, which models
//     a network partition: the sender's heartbeat probes never arrive,
//     replies never come back, and the failure detector declares the
//     host down exactly as it would for a crashed VM. Dropped data
//     batches are retained in upstream output buffers, so recovery
//     replays them — a partition costs detection time, never data.
//
// The table is process-global (the in-process loopback cluster is the
// test substrate) and nil when disarmed: the steady-state cost is one
// atomic pointer load per frame, nothing else.

// LinkFault describes one armed fault toward a destination address.
type LinkFault struct {
	// Delay is added before each frame toward the address is written.
	Delay time.Duration
	// Drop discards every frame toward the address instead of writing
	// it (reported to the sender as success — the bytes vanished on the
	// wire, exactly like a partition).
	Drop bool
}

var (
	faultMu    sync.Mutex
	linkFaults atomic.Pointer[map[string]LinkFault]
)

// SetLinkFault arms (or replaces) the fault toward addr.
func SetLinkFault(addr string, f LinkFault) {
	faultMu.Lock()
	defer faultMu.Unlock()
	next := make(map[string]LinkFault)
	if cur := linkFaults.Load(); cur != nil {
		for a, lf := range *cur {
			next[a] = lf
		}
	}
	next[addr] = f
	linkFaults.Store(&next)
}

// ClearLinkFault heals the link toward addr.
func ClearLinkFault(addr string) {
	faultMu.Lock()
	defer faultMu.Unlock()
	cur := linkFaults.Load()
	if cur == nil {
		return
	}
	if _, ok := (*cur)[addr]; !ok {
		return
	}
	if len(*cur) == 1 {
		linkFaults.Store(nil)
		return
	}
	next := make(map[string]LinkFault, len(*cur)-1)
	for a, lf := range *cur {
		if a != addr {
			next[a] = lf
		}
	}
	linkFaults.Store(&next)
}

// ClearLinkFaults heals every armed link fault.
func ClearLinkFaults() {
	faultMu.Lock()
	defer faultMu.Unlock()
	linkFaults.Store(nil)
}

// faultFor returns the armed fault toward addr, if any. The disarmed
// path is a single atomic load.
func faultFor(addr string) (LinkFault, bool) {
	m := linkFaults.Load()
	if m == nil {
		return LinkFault{}, false
	}
	f, ok := (*m)[addr]
	return f, ok
}
