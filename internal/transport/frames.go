package transport

import (
	"fmt"

	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
	"seep/internal/wirecodec"
)

// Envelope is one tuple in flight between hosts, carrying the routing
// metadata the receiving node needs.
type Envelope struct {
	// From is the emitting instance (duplicate detection is
	// per-upstream-instance).
	From plan.InstanceID
	// To is the destination instance.
	To plan.InstanceID
	// Input is the logical input-stream index at the receiver.
	Input int
	// Tuple is the payload-bearing tuple.
	Tuple stream.Tuple
}

// Batch is a micro-batch of tuples sharing one (from, to, input) route —
// the engine emits whole batches per downstream target, so shipping them
// as one frame amortises the header, the instance addressing and the
// syscall the same way the in-process channels amortise sends.
type Batch struct {
	From  plan.InstanceID
	To    plan.InstanceID
	Input int
	// Tuples are in emission order (monotone TS), as the receiver's
	// per-upstream duplicate detection expects.
	Tuples []stream.Tuple
}

// Ack is an acknowledgement watermark: Owner's checkpoint (covering
// tuples from upstream instance Up through TS) is safely stored, so the
// host running Up may trim its output buffer up to TS.
type Ack struct {
	// Owner is the instance whose checkpoint acknowledged the tuples.
	Owner plan.InstanceID
	// Up is the upstream instance whose retained output is trimmed.
	Up plan.InstanceID
	// TS is the acknowledged timestamp watermark.
	TS int64
}

func encodeInstanceID(e *stream.Encoder, id plan.InstanceID) {
	e.String32(string(id.Op))
	e.Uint32(uint32(id.Part))
}

func decodeInstanceID(d *stream.Decoder) plan.InstanceID {
	op := d.String32()
	return plan.InstanceID{Op: plan.OpID(op), Part: int(d.Uint32())}
}

func encodeTuple(e *stream.Encoder, t stream.Tuple, codec state.PayloadCodec) error {
	e.Int64(t.TS)
	e.Key(t.Key)
	e.Int64(t.Born)
	pb, err := codec.EncodePayload(t.Payload)
	if err != nil {
		return fmt.Errorf("transport: encode payload: %w", err)
	}
	e.Bytes32(pb)
	return nil
}

func decodeTuple(d *stream.Decoder, codec state.PayloadCodec) (stream.Tuple, error) {
	var t stream.Tuple
	t.TS = d.Int64()
	t.Key = d.Key()
	t.Born = d.Int64()
	pb := d.Bytes32()
	if err := d.Err(); err != nil {
		return t, err
	}
	payload, err := codec.DecodePayload(pb)
	if err != nil {
		return t, fmt.Errorf("transport: decode payload: %w", err)
	}
	t.Payload = payload
	return t, nil
}

// encodeEnvelope writes an envelope body (without the frame header).
func encodeEnvelope(e *stream.Encoder, env Envelope, codec state.PayloadCodec) error {
	encodeInstanceID(e, env.From)
	encodeInstanceID(e, env.To)
	e.Int32(int32(env.Input))
	return encodeTuple(e, env.Tuple, codec)
}

func decodeEnvelope(d *stream.Decoder, codec state.PayloadCodec) (Envelope, error) {
	var env Envelope
	env.From = decodeInstanceID(d)
	env.To = decodeInstanceID(d)
	env.Input = int(d.Int32())
	t, err := decodeTuple(d, codec)
	if err != nil {
		return env, err
	}
	env.Tuple = t
	return env, nil
}

func encodeBatch(e *stream.Encoder, b Batch, codec state.PayloadCodec) error {
	encodeInstanceID(e, b.From)
	encodeInstanceID(e, b.To)
	e.Int32(int32(b.Input))
	e.Uint32(uint32(len(b.Tuples)))
	for _, t := range b.Tuples {
		if err := encodeTuple(e, t, codec); err != nil {
			return err
		}
	}
	return nil
}

func decodeBatch(d *stream.Decoder, codec state.PayloadCodec) (Batch, error) {
	var b Batch
	b.From = decodeInstanceID(d)
	b.To = decodeInstanceID(d)
	b.Input = int(d.Int32())
	n := int(d.Uint32())
	if err := d.Err(); err != nil {
		return b, err
	}
	// Each tuple costs at least 24 fixed bytes plus a length prefix, so
	// a sane count is bounded by the remaining body.
	if n < 0 || n > d.Remaining()/24+1 {
		return b, fmt.Errorf("transport: batch of %d tuples exceeds frame body", n)
	}
	b.Tuples = make([]stream.Tuple, 0, n)
	for i := 0; i < n; i++ {
		t, err := decodeTuple(d, codec)
		if err != nil {
			return b, err
		}
		b.Tuples = append(b.Tuples, t)
	}
	return b, nil
}

// encodeBatchBin writes a batch in the compact binary layout: routing
// header as before, then a uvarint tuple count and per-tuple records of
// [varint ΔTS][key:8][varint ΔBorn][payload tag + body]. The timestamp
// and birth columns are delta-encoded against the previous tuple —
// batches are in emission order, so consecutive deltas are small and
// usually cost one byte instead of eight. Keys stay fixed-width: they
// are 64-bit hashes, so a varint would average nine-plus bytes AND a
// ten-iteration decode loop per tuple. Payloads dispatch through the
// wirecodec tag registry; codec is the tag-0 fallback for unregistered
// types.
func encodeBatchBin(e *stream.Encoder, b Batch, codec state.PayloadCodec) error {
	encodeInstanceID(e, b.From)
	encodeInstanceID(e, b.To)
	e.Int32(int32(b.Input))
	e.Uvarint(uint64(len(b.Tuples)))
	var prevTS, prevBorn int64
	for _, t := range b.Tuples {
		e.Varint(t.TS - prevTS)
		prevTS = t.TS
		e.Key(t.Key)
		e.Varint(t.Born - prevBorn)
		prevBorn = t.Born
		if err := wirecodec.EncodePayload(e, t.Payload, codec); err != nil {
			return fmt.Errorf("transport: encode payload: %w", err)
		}
	}
	return nil
}

func decodeBatchBin(d *stream.Decoder, codec state.PayloadCodec) (Batch, error) {
	var b Batch
	b.From = decodeInstanceID(d)
	b.To = decodeInstanceID(d)
	b.Input = int(d.Int32())
	n := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return b, err
	}
	// A binary tuple record costs at least 11 bytes (two varints, the
	// fixed-width key and a payload tag), so a sane count is bounded by
	// the remaining body.
	if n < 0 || n > d.Remaining()/11+1 {
		return b, fmt.Errorf("transport: batch of %d tuples exceeds frame body", n)
	}
	b.Tuples = make([]stream.Tuple, 0, n)
	var prevTS, prevBorn int64
	for i := 0; i < n; i++ {
		var t stream.Tuple
		t.TS = prevTS + d.Varint()
		prevTS = t.TS
		t.Key = d.Key()
		t.Born = prevBorn + d.Varint()
		prevBorn = t.Born
		payload, err := wirecodec.DecodePayload(d, codec)
		if err != nil {
			return b, fmt.Errorf("transport: decode payload: %w", err)
		}
		if err := d.Err(); err != nil {
			return b, err
		}
		t.Payload = payload
		b.Tuples = append(b.Tuples, t)
	}
	return b, nil
}

func encodeAck(e *stream.Encoder, a Ack) {
	encodeInstanceID(e, a.Owner)
	encodeInstanceID(e, a.Up)
	e.Int64(a.TS)
}

func decodeAck(d *stream.Decoder) (Ack, error) {
	var a Ack
	a.Owner = decodeInstanceID(d)
	a.Up = decodeInstanceID(d)
	a.TS = d.Int64()
	return a, d.Err()
}

// Credit grants the sender permission to ship more batches toward To:
// the receiving host drained Grants batch slots from To's bounded input
// queue. Credits flow on the reverse connection, piggybacked on the same
// stream as acks, and refill the sending host's per-link budget — the
// wire half of the engine's credit ledger.
type Credit struct {
	// To is the receiving instance whose input queue freed.
	To plan.InstanceID
	// Grants is the number of batch slots freed.
	Grants uint32
}

func encodeCredit(e *stream.Encoder, c Credit) {
	encodeInstanceID(e, c.To)
	e.Uint32(c.Grants)
}

func decodeCredit(d *stream.Decoder) (Credit, error) {
	var c Credit
	c.To = decodeInstanceID(d)
	c.Grants = d.Uint32()
	return c, d.Err()
}

func encodeBarrier(e *stream.Encoder, inst plan.InstanceID) {
	encodeInstanceID(e, inst)
}

func decodeBarrier(d *stream.Decoder) (plan.InstanceID, error) {
	inst := decodeInstanceID(d)
	return inst, d.Err()
}
