package transport

import (
	"sync"
	"testing"
	"time"

	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

func inst(op string, part int) plan.InstanceID {
	return plan.InstanceID{Op: plan.OpID(op), Part: part}
}

func env(ts int64, payload string) Envelope {
	return Envelope{
		From:  inst("split", 1),
		To:    inst("count", 1),
		Input: 0,
		Tuple: stream.Tuple{TS: ts, Key: stream.KeyOfString(payload), Born: ts * 10, Payload: payload},
	}
}

func TestTupleRoundTripOverTCP(t *testing.T) {
	var mu sync.Mutex
	var got []Envelope
	l, err := Listen("127.0.0.1:0", state.StringPayloadCodec{}, func(e Envelope) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	p, err := Dial(l.Addr(), state.StringPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 500
	for i := int64(1); i <= n; i++ {
		if err := p.Send(env(i, "hello")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		cnt := len(got)
		mu.Unlock()
		if cnt == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d", cnt, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	// FIFO per connection, fields intact.
	for i, e := range got {
		if e.Tuple.TS != int64(i+1) {
			t.Fatalf("out of order at %d: %v", i, e.Tuple)
		}
	}
	first := got[0]
	if first.From != inst("split", 1) || first.To != inst("count", 1) {
		t.Errorf("addressing lost: %+v", first)
	}
	if first.Tuple.Payload != "hello" || first.Tuple.Born != 10 {
		t.Errorf("tuple fields lost: %+v", first.Tuple)
	}
	if p.Sent() != n {
		t.Errorf("Sent = %d", p.Sent())
	}
}

func TestHeartbeatKeepsPeerAlive(t *testing.T) {
	l, err := Listen("127.0.0.1:0", state.StringPayloadCodec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	p, err := Dial(l.Addr(), state.StringPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.HeartbeatEvery = 20 * time.Millisecond
	p.MissLimit = 3
	downs := make(chan struct{}, 1)
	p.OnDown = func() { downs <- struct{}{} }
	p.StartHeartbeat()
	select {
	case <-downs:
		t.Fatal("healthy peer declared down")
	case <-time.After(400 * time.Millisecond):
	}
	if p.Down() {
		t.Fatal("Down() on healthy peer")
	}
}

func TestFailureDetectorFiresOnDeadPeer(t *testing.T) {
	l, err := Listen("127.0.0.1:0", state.StringPayloadCodec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Dial(l.Addr(), state.StringPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.HeartbeatEvery = 20 * time.Millisecond
	p.MissLimit = 3
	downs := make(chan struct{}, 1)
	p.OnDown = func() { downs <- struct{}{} }
	p.StartHeartbeat()

	// Crash-stop the remote VM.
	l.Close()

	select {
	case <-downs:
	case <-time.After(3 * time.Second):
		t.Fatal("failure detector never fired")
	}
	if !p.Down() {
		t.Error("Down() = false after detection")
	}
	if err := p.Send(env(1, "late")); err == nil {
		t.Error("send to downed peer succeeded")
	}
}

// TestPipelineOverTCP runs split → count across a real TCP hop: the
// receiving side hosts a WordCounter with per-upstream duplicate
// detection, and a retransmission of the same timestamped tuples (the
// replay path after recovery) does not double-count.
func TestPipelineOverTCP(t *testing.T) {
	counter := operator.NewWordCounter(0)
	acks := make(map[plan.InstanceID]int64)
	var mu sync.Mutex
	var processed int
	l, err := Listen("127.0.0.1:0", state.StringPayloadCodec{}, func(e Envelope) {
		mu.Lock()
		defer mu.Unlock()
		if e.Tuple.TS <= acks[e.From] {
			return // duplicate from replay
		}
		acks[e.From] = e.Tuple.TS
		counter.OnTuple(operator.Context{Input: e.Input}, e.Tuple, func(stream.Key, any) {})
		processed++
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	p, err := Dial(l.Addr(), state.StringPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	words := []string{"state", "stream", "state", "replay", "state"}
	send := func() {
		for i, w := range words {
			if err := p.Send(env(int64(i+1), w)); err != nil {
				t.Fatal(err)
			}
		}
	}
	send()
	send() // replay: identical timestamps must be deduplicated

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		done := processed
		mu.Unlock()
		if done == len(words) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("processed %d", done)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Drain any stragglers, then assert dedup held.
	time.Sleep(50 * time.Millisecond)
	if got := counter.Count("state"); got != 3 {
		t.Errorf("Count(state) = %d, want 3 (replay deduplicated)", got)
	}
	if got := counter.Count("replay"); got != 1 {
		t.Errorf("Count(replay) = %d, want 1", got)
	}
}

func TestListenerRejectsOversizeFrame(t *testing.T) {
	l, err := Listen("127.0.0.1:0", state.StringPayloadCodec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	p, err := Dial(l.Addr(), state.StringPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Hand-craft a frame with an absurd length; the listener must drop
	// the connection rather than allocate.
	p.mu.Lock()
	_ = writeFrame(p.w, nil, frameTuple, make([]byte, 16))
	// Corrupt: huge declared length with no body.
	_, _ = p.w.Write([]byte{ProtocolVersion, frameTuple, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	_ = p.w.Flush()
	p.mu.Unlock()
	// The listener should survive (no panic, no OOM); a fresh connection
	// still works.
	time.Sleep(50 * time.Millisecond)
	p2, err := Dial(l.Addr(), state.StringPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if err := p2.Send(env(1, "ok")); err != nil {
		t.Errorf("fresh connection send: %v", err)
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", state.StringPayloadCodec{}); err == nil {
		t.Error("dial to closed port succeeded")
	}
}
