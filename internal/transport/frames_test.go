package transport

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

func randInstance(r *rand.Rand) plan.InstanceID {
	ops := []plan.OpID{"src", "split", "count", "sink", "op-with-a-long-name"}
	return plan.InstanceID{Op: ops[r.Intn(len(ops))], Part: r.Intn(1000) + 1}
}

func randTuple(r *rand.Rand) stream.Tuple {
	payload := make([]byte, r.Intn(64))
	r.Read(payload)
	return stream.Tuple{
		TS:      r.Int63() - r.Int63(),
		Key:     stream.Key(r.Uint64()),
		Born:    r.Int63(),
		Payload: string(payload),
	}
}

// TestBatchFrameRoundTripProperty: 500 random batches survive
// encode → decode byte-exactly.
func TestBatchFrameRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	codec := state.StringPayloadCodec{}
	for i := 0; i < 500; i++ {
		in := Batch{
			From:  randInstance(r),
			To:    randInstance(r),
			Input: r.Intn(8),
		}
		n := r.Intn(50)
		for j := 0; j < n; j++ {
			in.Tuples = append(in.Tuples, randTuple(r))
		}
		e := stream.NewEncoder(64)
		if err := encodeBatch(e, in, codec); err != nil {
			t.Fatalf("encode #%d: %v", i, err)
		}
		out, err := decodeBatch(stream.NewDecoder(e.Bytes()), codec)
		if err != nil {
			t.Fatalf("decode #%d: %v", i, err)
		}
		if out.From != in.From || out.To != in.To || out.Input != in.Input {
			t.Fatalf("#%d header mismatch: %+v vs %+v", i, out, in)
		}
		if len(out.Tuples) != len(in.Tuples) {
			t.Fatalf("#%d tuple count %d vs %d", i, len(out.Tuples), len(in.Tuples))
		}
		for j := range in.Tuples {
			if !reflect.DeepEqual(out.Tuples[j], in.Tuples[j]) {
				t.Fatalf("#%d tuple %d: %+v vs %+v", i, j, out.Tuples[j], in.Tuples[j])
			}
		}
	}
}

// TestAckAndBarrierFrameRoundTripProperty covers the small control-plane
// frames the same way.
func TestAckAndBarrierFrameRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		a := Ack{Owner: randInstance(r), Up: randInstance(r), TS: r.Int63() - r.Int63()}
		e := stream.NewEncoder(32)
		encodeAck(e, a)
		got, err := decodeAck(stream.NewDecoder(e.Bytes()))
		if err != nil {
			t.Fatalf("ack decode #%d: %v", i, err)
		}
		if got != a {
			t.Fatalf("ack #%d: %+v vs %+v", i, got, a)
		}

		inst := randInstance(r)
		e2 := stream.NewEncoder(32)
		encodeBarrier(e2, inst)
		gi, err := decodeBarrier(stream.NewDecoder(e2.Bytes()))
		if err != nil {
			t.Fatalf("barrier decode #%d: %v", i, err)
		}
		if gi != inst {
			t.Fatalf("barrier #%d: %v vs %v", i, gi, inst)
		}
	}
}

// TestBatchDecodeNeverPanicsOnCorruptInput flips random bits and
// truncates encoded batches: decoding must fail cleanly, never panic or
// over-allocate.
func TestBatchDecodeNeverPanicsOnCorruptInput(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	codec := state.StringPayloadCodec{}
	for i := 0; i < 2000; i++ {
		in := Batch{From: randInstance(r), To: randInstance(r), Input: r.Intn(4)}
		for j := 0; j < r.Intn(8); j++ {
			in.Tuples = append(in.Tuples, randTuple(r))
		}
		e := stream.NewEncoder(64)
		if err := encodeBatch(e, in, codec); err != nil {
			t.Fatal(err)
		}
		body := append([]byte(nil), e.Bytes()...)
		switch r.Intn(3) {
		case 0: // bit flip
			if len(body) > 0 {
				body[r.Intn(len(body))] ^= 1 << uint(r.Intn(8))
			}
		case 1: // truncate
			body = body[:r.Intn(len(body)+1)]
		case 2: // garbage suffix swap
			for k := 0; k < 4 && len(body) > 4; k++ {
				body[len(body)-1-k] = byte(r.Intn(256))
			}
		}
		// Must not panic; errors are fine, and a "successful" decode of
		// corrupt bytes is acceptable here because the frame layer's CRC
		// rejects corruption before decodeBatch ever runs.
		_, _ = decodeBatch(stream.NewDecoder(body), codec)
	}
}

// FuzzDecodeBatchFrame is the go-native fuzz target for the batch codec
// (runs its seed corpus in normal `go test`; `go test -fuzz` explores).
func FuzzDecodeBatchFrame(f *testing.F) {
	codec := state.StringPayloadCodec{}
	e := stream.NewEncoder(64)
	_ = encodeBatch(e, Batch{
		From: plan.InstanceID{Op: "split", Part: 1},
		To:   plan.InstanceID{Op: "count", Part: 2},
		Tuples: []stream.Tuple{
			{TS: 1, Key: 42, Born: 7, Payload: "hello"},
			{TS: 2, Key: 43, Born: 8, Payload: "world"},
		},
	}, codec)
	f.Add(append([]byte(nil), e.Bytes()...))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, body []byte) {
		b, err := decodeBatch(stream.NewDecoder(body), codec)
		if err != nil {
			return
		}
		// A successful decode must round-trip.
		e := stream.NewEncoder(64)
		if err := encodeBatch(e, b, codec); err != nil {
			t.Fatalf("re-encode of decoded batch failed: %v", err)
		}
	})
}

// TestFrameChecksumRejected: a frame whose body was corrupted in flight
// fails with the typed ChecksumError, not a garbage decode.
func TestFrameChecksumRejected(t *testing.T) {
	var m Metrics
	e := stream.NewEncoder(64)
	_ = encodeEnvelope(e, env(1, "x"), state.StringPayloadCodec{})
	body := e.Bytes()

	frame := make([]byte, frameHeaderLen+len(body))
	frame[0] = ProtocolVersion
	frame[1] = frameTuple
	binary.LittleEndian.PutUint32(frame[2:6], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[6:10], crc32.ChecksumIEEE(body))
	copy(frame[frameHeaderLen:], body)

	// Pristine frame decodes.
	if ft, got, err := readFrame(newByteReader(frame), &m, nil); err != nil || ft != frameTuple || len(got) != len(body) {
		t.Fatalf("pristine frame: type=%d err=%v", ft, err)
	}
	// Corrupt one body byte: typed checksum error.
	bad := append([]byte(nil), frame...)
	bad[frameHeaderLen] ^= 0x40
	_, _, err := readFrame(newByteReader(bad), &m, nil)
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt body: err = %v, want *ChecksumError", err)
	}
	// Wrong protocol version: typed version error.
	badv := append([]byte(nil), frame...)
	badv[0] = ProtocolVersion + 1
	_, _, err = readFrame(newByteReader(badv), &m, nil)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("bad version: err = %v, want *VersionError", err)
	}
	if ve.Got != ProtocolVersion+1 || ve.Want != ProtocolVersion {
		t.Errorf("version error fields: %+v", ve)
	}
	// Oversize length: typed size error.
	bads := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(bads[2:6], maxFrameBytes+1)
	_, _, err = readFrame(newByteReader(bads), &m, nil)
	var se *FrameSizeError
	if !errors.As(err, &se) {
		t.Fatalf("oversize: err = %v, want *FrameSizeError", err)
	}
	if m.Snapshot().CorruptFrames != 3 {
		t.Errorf("CorruptFrames = %d, want 3", m.Snapshot().CorruptFrames)
	}
}

type byteReader struct {
	b   []byte
	off int
}

func newByteReader(b []byte) *byteReader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, errEOF
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}

var errEOF = errors.New("eof")

// TestTransportMetricsCounted: a short exchange moves the send/receive
// counters on both ends.
func TestTransportMetricsCounted(t *testing.T) {
	var lm, pm Metrics
	l, err := ListenWith("127.0.0.1:0", state.StringPayloadCodec{}, Handlers{OnBatch: func(Batch) {}}, &lm)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	p, err := DialWith(l.Addr(), state.StringPayloadCodec{}, &pm)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	b := Batch{From: inst("split", 1), To: inst("count", 1), Tuples: []stream.Tuple{{TS: 1, Payload: "x"}}}
	for i := 0; i < 10; i++ {
		if err := p.SendBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for lm.Snapshot().FramesReceived < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("listener received %d frames", lm.Snapshot().FramesReceived)
		}
		time.Sleep(2 * time.Millisecond)
	}
	ps, ls := pm.Snapshot(), lm.Snapshot()
	if ps.FramesSent != 10 || ps.BytesSent == 0 {
		t.Errorf("peer sent stats: %+v", ps)
	}
	if ls.BytesReceived == 0 || ls.CorruptFrames != 0 {
		t.Errorf("listener stats: %+v", ls)
	}
}
