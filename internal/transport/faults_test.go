package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

// A dropped (partitioned) link black-holes frames — the receiver sees
// nothing — and the sender's heartbeat failure detector declares the
// host down, exactly like a crashed VM.
func TestLinkFaultDropPartitionsAndTripsDetector(t *testing.T) {
	defer ClearLinkFaults()
	var got atomic.Uint64
	ln, err := ListenWith("127.0.0.1:0", state.GobPayloadCodec{}, Handlers{
		OnAck: func(Ack) { got.Add(1) },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	p, err := Dial(ln.Addr(), state.GobPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.SendAck(Ack{Up: plan.InstanceID{Op: "a"}, TS: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got.Load() != 1 {
		t.Fatalf("healthy link delivered %d acks, want 1", got.Load())
	}

	SetLinkFault(ln.Addr(), LinkFault{Drop: true})
	// Black-holed frames report success to the sender...
	if err := p.SendAck(Ack{Up: plan.InstanceID{Op: "a"}, TS: 2}); err != nil {
		t.Fatalf("partitioned send surfaced an error: %v", err)
	}
	time.Sleep(100 * time.Millisecond)
	if got.Load() != 1 {
		t.Fatalf("partitioned link delivered a frame (got %d acks)", got.Load())
	}

	// ...and the heartbeat detector declares the host down because the
	// probes never arrive.
	down := make(chan struct{})
	p.HeartbeatEvery = 20 * time.Millisecond
	p.MissLimit = 2
	p.OnDown = func() { close(down) }
	p.StartHeartbeat()
	select {
	case <-down:
	case <-time.After(3 * time.Second):
		t.Fatal("partitioned peer never declared down")
	}

	// Healing restores delivery for a fresh connection.
	ClearLinkFault(ln.Addr())
	p2, err := Dial(ln.Addr(), state.GobPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if err := p2.SendAck(Ack{Up: plan.InstanceID{Op: "a"}, TS: 3}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for got.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got.Load() != 2 {
		t.Fatalf("healed link delivered %d acks, want 2", got.Load())
	}
}

// A slow link delays frames but still delivers them, and heartbeat
// replies keep flowing, so the host is degraded — not declared down.
func TestLinkFaultDelayDelivers(t *testing.T) {
	defer ClearLinkFaults()
	batches := make(chan Batch, 1)
	ln, err := ListenWith("127.0.0.1:0", state.GobPayloadCodec{}, Handlers{
		OnBatch: func(b Batch) { batches <- b },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	SetLinkFault(ln.Addr(), LinkFault{Delay: 50 * time.Millisecond})
	p, err := Dial(ln.Addr(), state.GobPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	downed := make(chan struct{})
	p.HeartbeatEvery = 100 * time.Millisecond
	p.OnDown = func() { close(downed) }
	p.StartHeartbeat()

	start := time.Now()
	b := Batch{From: plan.InstanceID{Op: "a"}, To: plan.InstanceID{Op: "b"},
		Tuples: []stream.Tuple{{TS: 1, Key: 7, Payload: "x"}}}
	if err := p.SendBatch(b); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-batches:
		if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
			t.Errorf("slow link delivered in %v, want >= 50ms", elapsed)
		}
		if len(got.Tuples) != 1 || got.Tuples[0].Key != 7 {
			t.Errorf("batch corrupted across slow link: %+v", got)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("slow link never delivered the batch")
	}
	select {
	case <-downed:
		t.Fatal("slow link was declared down")
	case <-time.After(400 * time.Millisecond):
	}
}
