package transport

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

// TestCrossVersionBatchCompat: one listener, two senders — a
// binary-codec peer and a legacy gob peer (the negotiated fallback for
// an old worker). Both framings must deliver identical batches through
// the same connection handler with zero corrupt frames: the listener
// decodes whichever framing arrives, so a mixed-version fleet degrades
// to gob instead of corrupting the stream.
func TestCrossVersionBatchCompat(t *testing.T) {
	codec := state.GobPayloadCodec{}
	var mu sync.Mutex
	var got []Batch
	lm := &Metrics{}
	l, err := ListenWith("127.0.0.1:0", codec, Handlers{
		OnBatch: func(b Batch) {
			mu.Lock()
			got = append(got, b)
			mu.Unlock()
		},
	}, lm)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	batch := Batch{
		From:  plan.InstanceID{Op: "map", Part: 0},
		To:    plan.InstanceID{Op: "count", Part: 1},
		Input: 0,
		Tuples: []stream.Tuple{
			{TS: 1, Key: 10, Born: 1, Payload: "alpha"},
			{TS: 2, Key: 11, Born: 1, Payload: "beta"},
			{TS: 5, Key: 12, Born: 4, Payload: "gamma"},
		},
	}

	binPeer, err := Dial(l.Addr(), codec)
	if err != nil {
		t.Fatal(err)
	}
	defer binPeer.Close()
	gobPeer, err := Dial(l.Addr(), codec)
	if err != nil {
		t.Fatal(err)
	}
	defer gobPeer.Close()
	gobPeer.LegacyBatch = true

	if err := binPeer.SendBatch(batch); err != nil {
		t.Fatalf("binary send: %v", err)
	}
	if err := gobPeer.SendBatch(batch); err != nil {
		t.Fatalf("gob send: %v", err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d batches, want 2", n)
		}
		time.Sleep(5 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	for i, b := range got {
		if !reflect.DeepEqual(b, batch) {
			t.Fatalf("batch %d differs:\n got %+v\nwant %+v", i, b, batch)
		}
	}
	if c := lm.Snapshot().CorruptFrames; c != 0 {
		t.Fatalf("listener counted %d corrupt frames across mixed framings", c)
	}
}

// TestDeltaCheckpointFrameRoundTrip: a delta-checkpoint frame sent by a
// worker arrives intact at the listener's OnDeltaCheckpoint handler and
// decodes back to the same value.
func TestDeltaCheckpointFrameRoundTrip(t *testing.T) {
	codec := state.StringPayloadCodec{}
	bodyCh := make(chan []byte, 1)
	l, err := ListenWith("127.0.0.1:0", codec, Handlers{
		OnDeltaCheckpoint: func(body []byte) {
			select {
			case bodyCh <- body:
			default:
			}
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	dc := &state.DeltaCheckpoint{
		Instance: plan.InstanceID{Op: "count", Part: 0},
		Delta: &state.Delta{
			Base:    3,
			Seq:     4,
			Changed: map[stream.Key][]byte{7: []byte("seven")},
			Deleted: []stream.Key{9},
			TS:      stream.TSVector{12},
		},
		Buffer:   state.NewBuffer(),
		OutClock: 12,
		Acks:     map[plan.InstanceID]int64{{Op: "src", Part: 0}: 11},
	}
	e := stream.NewEncoder(256)
	if err := state.EncodeDeltaCheckpoint(e, dc, codec, true); err != nil {
		t.Fatal(err)
	}
	p, err := Dial(l.Addr(), codec)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.SendDeltaCheckpoint(e.Bytes()); err != nil {
		t.Fatal(err)
	}
	select {
	case body := <-bodyCh:
		got, err := state.DecodeDeltaCheckpoint(stream.NewDecoder(body), codec)
		if err != nil {
			t.Fatal(err)
		}
		if got.Instance != dc.Instance || got.Delta.Seq != dc.Delta.Seq ||
			string(got.Delta.Changed[7]) != "seven" || got.OutClock != dc.OutClock {
			t.Fatalf("delta roundtrip mismatch: %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delta frame never arrived")
	}
}
