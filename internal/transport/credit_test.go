package transport

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

// Credit frames carry the flow-control grants piggybacked on the ack
// path: cover the codec the same way as the other control frames.
func TestCreditFrameRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		c := Credit{To: randInstance(r), Grants: uint32(r.Intn(1 << 16))}
		e := stream.NewEncoder(32)
		encodeCredit(e, c)
		got, err := decodeCredit(stream.NewDecoder(e.Bytes()))
		if err != nil {
			t.Fatalf("credit decode #%d: %v", i, err)
		}
		if got != c {
			t.Fatalf("credit #%d: %+v vs %+v", i, got, c)
		}
	}
}

// Credits flow end to end over TCP and dispatch to OnCredit.
func TestCreditOverTCP(t *testing.T) {
	var got atomic.Uint64
	ln, err := ListenWith("127.0.0.1:0", state.GobPayloadCodec{}, Handlers{
		OnCredit: func(c Credit) {
			if c.To == (plan.InstanceID{Op: "count", Part: 2}) {
				got.Add(uint64(c.Grants))
			}
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	p, err := Dial(ln.Addr(), state.GobPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 10; i++ {
		if err := p.SendCredit(Credit{To: plan.InstanceID{Op: "count", Part: 2}, Grants: 3}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for got.Load() < 30 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got.Load() != 30 {
		t.Fatalf("received %d grants, want 30", got.Load())
	}
}

// A stalled write surfaces as a credit-stall tick instead of silently
// buffering: a link slower than writeStallAfter bumps the metric, a
// healthy link does not.
func TestWriteStallCountsAsCreditStall(t *testing.T) {
	defer ClearLinkFaults()
	ln, err := ListenWith("127.0.0.1:0", state.GobPayloadCodec{}, Handlers{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	m := &Metrics{}
	p, err := DialWith(ln.Addr(), state.GobPayloadCodec{}, m)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	b := Batch{From: plan.InstanceID{Op: "a"}, To: plan.InstanceID{Op: "b"},
		Tuples: []stream.Tuple{{TS: 1, Key: 7, Payload: "x"}}}
	if err := p.SendBatch(b); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().CreditStalls; got != 0 {
		t.Fatalf("healthy link recorded %d write stalls", got)
	}

	SetLinkFault(ln.Addr(), LinkFault{Delay: 2 * writeStallAfter})
	if err := p.SendBatch(b); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().CreditStalls; got == 0 {
		t.Fatal("stalled write did not surface as a credit stall")
	}
}

// The write deadline is anchored before the stall, so a link slower
// than the configured timeout fails the write rather than blocking the
// sender indefinitely.
func TestWriteDeadlineCoversStall(t *testing.T) {
	defer ClearLinkFaults()
	ln, err := ListenWith("127.0.0.1:0", state.GobPayloadCodec{}, Handlers{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	p, err := Dial(ln.Addr(), state.GobPayloadCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.WriteTimeout = 40 * time.Millisecond
	SetLinkFault(ln.Addr(), LinkFault{Delay: 150 * time.Millisecond})

	b := Batch{From: plan.InstanceID{Op: "a"}, To: plan.InstanceID{Op: "b"},
		Tuples: []stream.Tuple{{TS: 1, Key: 7, Payload: "x"}}}
	start := time.Now()
	err = p.SendBatch(b)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("write against a stalled-out link reported success")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("stalled write blocked %v before failing", elapsed)
	}
}
