// Package transport provides the network substrate for running operator
// nodes on separate machines: a length-prefixed binary wire format for
// tuples (using the state/stream codecs), persistent peer connections
// with automatic reconnection, and heartbeat-based failure detection —
// the mechanism behind the paper's failure detector (§5), which notifies
// the recovery coordinator when a VM stops responding.
//
// The in-process runtimes (internal/engine, internal/sim) do not need
// this package; it exists so a deployment can place instances on real
// hosts while reusing the same operator, state and control code.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

// Frame types on the wire.
const (
	frameTuple     = uint8(1)
	frameHeartbeat = uint8(2)
)

// maxFrameBytes bounds a single frame (16 MiB) so a corrupt length
// prefix cannot allocate unbounded memory.
const maxFrameBytes = 16 << 20

// Envelope is one tuple in flight between hosts, carrying the routing
// metadata the receiving node needs.
type Envelope struct {
	// From is the emitting instance (duplicate detection is
	// per-upstream-instance).
	From plan.InstanceID
	// To is the destination instance.
	To plan.InstanceID
	// Input is the logical input-stream index at the receiver.
	Input int
	// Tuple is the payload-bearing tuple.
	Tuple stream.Tuple
}

// encodeEnvelope writes an envelope body (without the frame header).
func encodeEnvelope(e *stream.Encoder, env Envelope, codec state.PayloadCodec) error {
	e.String32(string(env.From.Op))
	e.Uint32(uint32(env.From.Part))
	e.String32(string(env.To.Op))
	e.Uint32(uint32(env.To.Part))
	e.Int32(int32(env.Input))
	e.Int64(env.Tuple.TS)
	e.Key(env.Tuple.Key)
	e.Int64(env.Tuple.Born)
	pb, err := codec.EncodePayload(env.Tuple.Payload)
	if err != nil {
		return fmt.Errorf("transport: encode payload: %w", err)
	}
	e.Bytes32(pb)
	return nil
}

func decodeEnvelope(d *stream.Decoder, codec state.PayloadCodec) (Envelope, error) {
	var env Envelope
	env.From = plan.InstanceID{Op: plan.OpID(d.String32()), Part: int(d.Uint32())}
	env.To = plan.InstanceID{Op: plan.OpID(d.String32()), Part: int(d.Uint32())}
	env.Input = int(d.Int32())
	env.Tuple.TS = d.Int64()
	env.Tuple.Key = d.Key()
	env.Tuple.Born = d.Int64()
	pb := d.Bytes32()
	if err := d.Err(); err != nil {
		return env, err
	}
	payload, err := codec.DecodePayload(pb)
	if err != nil {
		return env, fmt.Errorf("transport: decode payload: %w", err)
	}
	env.Tuple.Payload = payload
	return env, nil
}

// writeFrame writes [type][len][body] to w.
func writeFrame(w io.Writer, frameType uint8, body []byte) error {
	var hdr [5]byte
	hdr[0] = frameType
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one frame from r.
func readFrame(r io.Reader) (uint8, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return hdr[0], body, nil
}

// Listener accepts tuple streams from peers and hands decoded envelopes
// to a handler. It also answers heartbeats, so a connected peer's
// failure detector sees this host as alive.
type Listener struct {
	ln      net.Listener
	codec   state.PayloadCodec
	handler func(Envelope)

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
	wg     sync.WaitGroup
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and dispatching
// envelopes to handler (called sequentially per connection).
func Listen(addr string, codec state.PayloadCodec, handler func(Envelope)) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	l := &Listener{ln: ln, codec: codec, handler: handler, conns: make(map[net.Conn]bool)}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.conns[conn] = true
		l.mu.Unlock()
		l.wg.Add(1)
		go l.serve(conn)
	}
}

func (l *Listener) serve(conn net.Conn) {
	defer l.wg.Done()
	defer func() {
		conn.Close()
		l.mu.Lock()
		delete(l.conns, conn)
		l.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	var wmu sync.Mutex
	for {
		frameType, body, err := readFrame(r)
		if err != nil {
			return
		}
		switch frameType {
		case frameHeartbeat:
			wmu.Lock()
			if err := writeFrame(w, frameHeartbeat, nil); err == nil {
				err = w.Flush()
			}
			wmu.Unlock()
			if err != nil {
				return
			}
		case frameTuple:
			env, err := decodeEnvelope(stream.NewDecoder(body), l.codec)
			if err != nil {
				// A malformed tuple poisons the stream framing; drop the
				// connection and let the peer reconnect.
				return
			}
			if l.handler != nil {
				l.handler(env)
			}
		default:
			return
		}
	}
}

// Close stops accepting and tears down all connections.
func (l *Listener) Close() error {
	l.mu.Lock()
	l.closed = true
	for c := range l.conns {
		c.Close()
	}
	l.mu.Unlock()
	err := l.ln.Close()
	l.wg.Wait()
	return err
}

// ErrPeerClosed reports sends on a closed peer.
var ErrPeerClosed = errors.New("transport: peer closed")

// Peer is an outbound connection to one host, with heartbeat-based
// failure detection: if the peer misses MissLimit consecutive heartbeat
// replies, OnDown fires — the signal the recovery coordinator consumes
// ("the SPS ... scales out an operator when it has become unresponsive",
// §4.2).
type Peer struct {
	addr  string
	codec state.PayloadCodec
	// HeartbeatEvery is the probe period (default 500 ms).
	HeartbeatEvery time.Duration
	// MissLimit is how many consecutive missed replies mark the peer
	// down (default 3).
	MissLimit int
	// OnDown is invoked once when the peer is declared failed.
	OnDown func()

	mu      sync.Mutex
	conn    net.Conn
	w       *bufio.Writer
	closed  bool
	downed  bool
	pending int // heartbeats sent without reply
	wg      sync.WaitGroup
	stop    chan struct{}
	sent    uint64
}

// Dial connects to a listener.
func Dial(addr string, codec state.PayloadCodec) (*Peer, error) {
	p := &Peer{
		addr:           addr,
		codec:          codec,
		HeartbeatEvery: 500 * time.Millisecond,
		MissLimit:      3,
		stop:           make(chan struct{}),
	}
	if err := p.connect(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Peer) connect() error {
	conn, err := net.DialTimeout("tcp", p.addr, 2*time.Second)
	if err != nil {
		return fmt.Errorf("transport: dial %s: %w", p.addr, err)
	}
	p.mu.Lock()
	p.conn = conn
	p.w = bufio.NewWriter(conn)
	p.mu.Unlock()
	p.wg.Add(1)
	go p.readLoop(conn)
	return nil
}

// StartHeartbeat begins probing; call once after Dial.
func (p *Peer) StartHeartbeat() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		tick := time.NewTicker(p.HeartbeatEvery)
		defer tick.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-tick.C:
				p.mu.Lock()
				p.pending++
				missed := p.pending
				w, closed := p.w, p.closed
				if !closed && w != nil {
					if err := writeFrame(w, frameHeartbeat, nil); err == nil {
						_ = w.Flush()
					}
				}
				p.mu.Unlock()
				if missed > p.MissLimit {
					p.declareDown()
					return
				}
			}
		}
	}()
}

func (p *Peer) readLoop(conn net.Conn) {
	defer p.wg.Done()
	r := bufio.NewReader(conn)
	for {
		frameType, _, err := readFrame(r)
		if err != nil {
			return
		}
		if frameType == frameHeartbeat {
			p.mu.Lock()
			p.pending = 0
			p.mu.Unlock()
		}
	}
}

func (p *Peer) declareDown() {
	p.mu.Lock()
	already := p.downed || p.closed
	p.downed = true
	p.mu.Unlock()
	if !already && p.OnDown != nil {
		p.OnDown()
	}
}

// Send transmits one envelope. Sends after Close or after the peer went
// down return an error; callers retain tuples in buffer state and replay
// them to the replacement instance, so a failed send is never data loss.
func (p *Peer) Send(env Envelope) error {
	e := stream.NewEncoder(64)
	if err := encodeEnvelope(e, env, p.codec); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.downed || p.w == nil {
		return ErrPeerClosed
	}
	if err := writeFrame(p.w, frameTuple, e.Bytes()); err != nil {
		return err
	}
	p.sent++
	// Flush per tuple keeps latency low; batching is the caller's choice
	// by sending multiple envelopes before the deadline.
	return p.w.Flush()
}

// Sent returns how many tuples were transmitted.
func (p *Peer) Sent() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent
}

// Down reports whether the failure detector declared the peer failed.
func (p *Peer) Down() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.downed
}

// Close tears the connection down.
func (p *Peer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conn := p.conn
	p.mu.Unlock()
	close(p.stop)
	var err error
	if conn != nil {
		err = conn.Close()
	}
	p.wg.Wait()
	return err
}
