// Package transport provides the network substrate for running operator
// nodes on separate machines: a length-prefixed, checksummed binary wire
// format for tuples, tuple batches, acknowledgement watermarks and
// control messages (using the state/stream codecs), persistent peer
// connections with automatic reconnection, and heartbeat-based failure
// detection — the mechanism behind the paper's failure detector (§5),
// which notifies the recovery coordinator when a VM stops responding.
//
// The in-process runtimes (internal/engine, internal/sim) do not need
// this package; the distributed runtime (internal/dist) builds its
// worker-to-worker data links and coordinator control channel on it, so
// a deployment can place instances on real hosts while reusing the same
// operator, state and control code.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"seep/internal/metrics"
	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

// ProtocolVersion is stamped into every frame header. A peer speaking a
// different version is rejected with a *VersionError rather than
// decoded as garbage.
const ProtocolVersion = uint8(2)

// Frame types on the wire.
const (
	frameTuple     = uint8(1)
	frameHeartbeat = uint8(2)
	// frameBatch carries a micro-batch of tuples sharing one
	// (from, to, input) route — the unit the engine's batched data path
	// ships between hosts.
	frameBatch = uint8(3)
	// frameAck carries an acknowledgement watermark: after a checkpoint
	// is safely stored, the upstream buffer retaining the acknowledged
	// tuples may trim them (Algorithm 1 line 4, over the wire).
	frameAck = uint8(4)
	// frameControl carries an opaque coordinator/worker control message
	// (plan assignment, checkpoint ship, reroute, deploy, ...).
	frameControl = uint8(5)
	// frameBarrier asks the receiving host to checkpoint one instance
	// now — the wire form of the §3.2 checkpoint barrier, used before a
	// coordinated scale out so the replayed window is small.
	frameBarrier = uint8(6)
	// frameCredit returns flow-control credits to a sender: the receiving
	// host drained batch slots from a bounded input queue, so the sender
	// may ship that many more batches toward the named instance.
	frameCredit = uint8(7)
	// frameBatchBin is a tuple batch in the compact binary layout:
	// varint-delta timestamps, uvarint keys and tag-dispatched payloads
	// (see internal/wirecodec) instead of per-tuple gob blobs. Listeners
	// decode both batch framings unconditionally; which one a sender
	// emits is negotiated through the job spec (Peer.LegacyBatch).
	frameBatchBin = uint8(8)
	// frameDeltaCheckpoint carries an incremental checkpoint — dirty
	// keys and deletions since the last acknowledged snapshot — to the
	// coordinator, which folds it into the authoritative backup store.
	// Body layout is defined by state.EncodeDeltaCheckpoint.
	frameDeltaCheckpoint = uint8(9)
)

// writeStallAfter is how long a single frame write (including any
// injected slow-link delay) may take before it is counted as a credit
// stall — the transport-level analogue of a sender waiting on an empty
// credit ledger.
const writeStallAfter = 50 * time.Millisecond

// maxFrameBytes bounds a single frame (16 MiB) so a corrupt length
// prefix cannot allocate unbounded memory.
const maxFrameBytes = 16 << 20

// frameHeaderLen is [version:1][type:1][len:4][crc32:4].
const frameHeaderLen = 10

// VersionError reports a frame whose protocol-version byte does not
// match this binary's ProtocolVersion.
type VersionError struct {
	Got, Want uint8
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("transport: protocol version %d, want %d", e.Got, e.Want)
}

// ChecksumError reports a frame whose body failed CRC32 validation —
// corruption on the wire or a desynchronised stream.
type ChecksumError struct {
	Got, Want uint32
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("transport: frame checksum %08x, want %08x", e.Got, e.Want)
}

// FrameSizeError reports a frame whose declared length exceeds
// maxFrameBytes.
type FrameSizeError struct {
	Size uint32
}

func (e *FrameSizeError) Error() string {
	return fmt.Sprintf("transport: frame of %d bytes exceeds %d-byte limit", e.Size, maxFrameBytes)
}

// Metrics tallies transport activity. All methods are safe on a nil
// receiver, so plumbing is optional. The counters surface through
// Job.Metrics() on the distributed runtime.
type Metrics struct {
	bytesSent       metrics.Counter
	bytesReceived   metrics.Counter
	framesSent      metrics.Counter
	framesReceived  metrics.Counter
	reconnects      metrics.Counter
	heartbeatMisses metrics.Counter
	corruptFrames   metrics.Counter
	creditStalls    metrics.Counter
}

func (m *Metrics) addSent(bytes int) {
	if m == nil {
		return
	}
	m.framesSent.Inc()
	m.bytesSent.Add(uint64(bytes))
}

func (m *Metrics) addReceived(bytes int) {
	if m == nil {
		return
	}
	m.framesReceived.Inc()
	m.bytesReceived.Add(uint64(bytes))
}

func (m *Metrics) addReconnect() {
	if m == nil {
		return
	}
	m.reconnects.Inc()
}

func (m *Metrics) addHeartbeatMiss() {
	if m == nil {
		return
	}
	m.heartbeatMisses.Inc()
}

func (m *Metrics) addCorrupt() {
	if m == nil {
		return
	}
	m.corruptFrames.Inc()
}

// AddCreditStall counts one flow-control stall: a frame write that
// exceeded writeStallAfter, or a sender that had to wait for credits
// before shipping a batch. Exported so the link layer above can fold its
// ledger waits into the same meter. Safe on nil.
func (m *Metrics) AddCreditStall() {
	if m == nil {
		return
	}
	m.creditStalls.Inc()
}

// Stats is a point-in-time snapshot of transport activity.
type Stats struct {
	// BytesSent and BytesReceived count frame bytes (headers + bodies).
	BytesSent, BytesReceived uint64
	// FramesSent and FramesReceived count whole frames, heartbeats
	// included.
	FramesSent, FramesReceived uint64
	// Reconnects counts re-dials of outbound peer connections.
	Reconnects uint64
	// HeartbeatMisses counts probe periods that elapsed without a reply
	// (each contributes toward a peer's MissLimit).
	HeartbeatMisses uint64
	// CorruptFrames counts inbound frames rejected for a bad checksum,
	// version or length.
	CorruptFrames uint64
	// CreditStalls counts flow-control stalls: frame writes that ran past
	// writeStallAfter (a slow or faulted link) and sender waits on an
	// exhausted credit budget.
	CreditStalls uint64
}

// Snapshot returns the current counter values (zero Stats on nil).
func (m *Metrics) Snapshot() Stats {
	if m == nil {
		return Stats{}
	}
	return Stats{
		BytesSent:       m.bytesSent.Value(),
		BytesReceived:   m.bytesReceived.Value(),
		FramesSent:      m.framesSent.Value(),
		FramesReceived:  m.framesReceived.Value(),
		Reconnects:      m.reconnects.Value(),
		HeartbeatMisses: m.heartbeatMisses.Value(),
		CorruptFrames:   m.corruptFrames.Value(),
		CreditStalls:    m.creditStalls.Value(),
	}
}

// Add folds another snapshot into this one (for aggregating a worker's
// listener and peer meters into one job-level view).
func (s Stats) Add(o Stats) Stats {
	s.BytesSent += o.BytesSent
	s.BytesReceived += o.BytesReceived
	s.FramesSent += o.FramesSent
	s.FramesReceived += o.FramesReceived
	s.Reconnects += o.Reconnects
	s.HeartbeatMisses += o.HeartbeatMisses
	s.CorruptFrames += o.CorruptFrames
	s.CreditStalls += o.CreditStalls
	return s
}

// writeFrame writes [version][type][len][crc32][body] to w.
func writeFrame(w io.Writer, m *Metrics, frameType uint8, body []byte) error {
	var hdr [frameHeaderLen]byte
	hdr[0] = ProtocolVersion
	hdr[1] = frameType
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[6:10], crc32.ChecksumIEEE(body))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	m.addSent(frameHeaderLen + len(body))
	return nil
}

// readFrame reads one frame from r, validating version, length and
// checksum before any body byte is interpreted. When scratch is
// non-nil the body is read into (and may grow) *scratch, so a
// long-lived connection loop pays zero steady-state allocation per
// frame; the returned slice then aliases *scratch and is only valid
// until the next call. Handlers that retain the body must copy it.
func readFrame(r io.Reader, m *Metrics, scratch *[]byte) (uint8, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0] != ProtocolVersion {
		m.addCorrupt()
		return 0, nil, &VersionError{Got: hdr[0], Want: ProtocolVersion}
	}
	n := binary.LittleEndian.Uint32(hdr[2:6])
	if n > maxFrameBytes {
		m.addCorrupt()
		return 0, nil, &FrameSizeError{Size: n}
	}
	want := binary.LittleEndian.Uint32(hdr[6:10])
	var body []byte
	if scratch != nil {
		if uint32(cap(*scratch)) < n {
			*scratch = make([]byte, n)
		}
		body = (*scratch)[:n]
	} else {
		body = make([]byte, n)
	}
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	if got := crc32.ChecksumIEEE(body); got != want {
		m.addCorrupt()
		return 0, nil, &ChecksumError{Got: got, Want: want}
	}
	m.addReceived(frameHeaderLen + int(n))
	return hdr[1], body, nil
}

// Handlers receives decoded inbound frames. Nil entries drop the
// corresponding frame type. Handlers are called sequentially per
// connection; blocking in a handler applies backpressure to that
// sender.
type Handlers struct {
	// OnEnvelope receives single-tuple frames.
	OnEnvelope func(Envelope)
	// OnBatch receives tuple-batch frames.
	OnBatch func(Batch)
	// OnAck receives acknowledgement-watermark frames.
	OnAck func(Ack)
	// OnControl receives opaque control-message bodies. The slice is
	// owned by the callee.
	OnControl func(body []byte)
	// OnBarrier receives checkpoint-barrier requests.
	OnBarrier func(inst plan.InstanceID)
	// OnCredit receives flow-control credit grants.
	OnCredit func(Credit)
	// OnDeltaCheckpoint receives incremental-checkpoint frame bodies
	// (state.EncodeDeltaCheckpoint layout). The slice is owned by the
	// callee.
	OnDeltaCheckpoint func(body []byte)
}

// Listener accepts frames from peers and hands decoded payloads to the
// registered handlers. It also answers heartbeats, so a connected
// peer's failure detector sees this host as alive.
type Listener struct {
	ln       net.Listener
	codec    state.PayloadCodec
	handlers Handlers
	metrics  *Metrics

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
	wg     sync.WaitGroup
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and dispatching
// single-tuple envelopes to handler. Kept for tuple-only deployments;
// ListenWith registers the full handler set.
func Listen(addr string, codec state.PayloadCodec, handler func(Envelope)) (*Listener, error) {
	return ListenWith(addr, codec, Handlers{OnEnvelope: handler}, nil)
}

// ListenWith starts accepting on addr with the full handler set and
// optional metrics.
func ListenWith(addr string, codec state.PayloadCodec, h Handlers, m *Metrics) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	l := &Listener{ln: ln, codec: codec, handlers: h, metrics: m, conns: make(map[net.Conn]bool)}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.conns[conn] = true
		l.mu.Unlock()
		l.wg.Add(1)
		go l.serve(conn)
	}
}

func (l *Listener) serve(conn net.Conn) {
	defer l.wg.Done()
	defer func() {
		conn.Close()
		l.mu.Lock()
		delete(l.conns, conn)
		l.mu.Unlock()
	}()
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriter(conn)
	var wmu sync.Mutex
	// Frame bodies are read into one per-connection scratch buffer;
	// decoded values copy what they keep, and the opaque-body handlers
	// (control, delta checkpoint) get an explicit copy because they own
	// the slice.
	var scratch []byte
	for {
		frameType, body, err := readFrame(r, l.metrics, &scratch)
		if err != nil {
			// Version, checksum and length violations poison the stream
			// framing; drop the connection and let the peer reconnect
			// rather than resynchronise heuristically.
			return
		}
		switch frameType {
		case frameHeartbeat:
			wmu.Lock()
			if err := writeFrame(w, l.metrics, frameHeartbeat, nil); err == nil {
				err = w.Flush()
			}
			wmu.Unlock()
			if err != nil {
				return
			}
		case frameTuple:
			env, err := decodeEnvelope(stream.NewDecoder(body), l.codec)
			if err != nil {
				return
			}
			if l.handlers.OnEnvelope != nil {
				l.handlers.OnEnvelope(env)
			}
		case frameBatch:
			b, err := decodeBatch(stream.NewDecoder(body), l.codec)
			if err != nil {
				return
			}
			if l.handlers.OnBatch != nil {
				l.handlers.OnBatch(b)
			}
		case frameBatchBin:
			b, err := decodeBatchBin(stream.NewDecoder(body), l.codec)
			if err != nil {
				return
			}
			if l.handlers.OnBatch != nil {
				l.handlers.OnBatch(b)
			}
		case frameAck:
			a, err := decodeAck(stream.NewDecoder(body))
			if err != nil {
				return
			}
			if l.handlers.OnAck != nil {
				l.handlers.OnAck(a)
			}
		case frameControl:
			if l.handlers.OnControl != nil {
				cp := make([]byte, len(body))
				copy(cp, body)
				l.handlers.OnControl(cp)
			}
		case frameDeltaCheckpoint:
			if l.handlers.OnDeltaCheckpoint != nil {
				cp := make([]byte, len(body))
				copy(cp, body)
				l.handlers.OnDeltaCheckpoint(cp)
			}
		case frameBarrier:
			inst, err := decodeBarrier(stream.NewDecoder(body))
			if err != nil {
				return
			}
			if l.handlers.OnBarrier != nil {
				l.handlers.OnBarrier(inst)
			}
		case frameCredit:
			c, err := decodeCredit(stream.NewDecoder(body))
			if err != nil {
				return
			}
			if l.handlers.OnCredit != nil {
				l.handlers.OnCredit(c)
			}
		default:
			return
		}
	}
}

// Close stops accepting and tears down all connections.
func (l *Listener) Close() error {
	l.mu.Lock()
	l.closed = true
	for c := range l.conns {
		c.Close()
	}
	l.mu.Unlock()
	err := l.ln.Close()
	l.wg.Wait()
	return err
}

// ErrPeerClosed reports sends on a closed peer.
var ErrPeerClosed = errors.New("transport: peer closed")

// ErrPeerDown reports sends on a peer the failure detector declared
// failed.
var ErrPeerDown = errors.New("transport: peer down")

// Peer is an outbound connection to one host, with heartbeat-based
// failure detection: if the peer misses MissLimit consecutive heartbeat
// replies, OnDown fires — the signal the recovery coordinator consumes
// ("the SPS ... scales out an operator when it has become unresponsive",
// §4.2). A failed write triggers one automatic re-dial before the send
// is failed, so transient connection loss does not require caller
// plumbing.
type Peer struct {
	addr  string
	codec state.PayloadCodec
	// HeartbeatEvery is the probe period (default 500 ms).
	HeartbeatEvery time.Duration
	// MissLimit is how many consecutive missed replies mark the peer
	// down (default 3).
	MissLimit int
	// WriteTimeout bounds each frame write+flush so a hung peer cannot
	// wedge senders forever (default 10 s).
	WriteTimeout time.Duration
	// OnDown is invoked once when the peer is declared failed.
	OnDown func()
	// Metrics, when set, tallies this peer's traffic.
	Metrics *Metrics
	// LegacyBatch, when true, makes SendBatch emit gob-payload batch
	// frames (frameBatch) instead of the compact binary layout — the
	// negotiated fallback when the job spec pins the gob wire codec.
	// Set it once after Dial, before the first SendBatch.
	LegacyBatch bool

	mu      sync.Mutex
	conn    net.Conn
	w       *bufio.Writer
	closed  bool
	downed  bool
	pending int // heartbeats sent without reply
	wg      sync.WaitGroup
	stop    chan struct{}
	sent    uint64
}

// Dial connects to a listener.
func Dial(addr string, codec state.PayloadCodec) (*Peer, error) {
	return DialWith(addr, codec, nil)
}

// DialWith connects to a listener with metrics attached before the read
// loop starts (assigning Peer.Metrics after Dial races it).
func DialWith(addr string, codec state.PayloadCodec, m *Metrics) (*Peer, error) {
	p := &Peer{
		addr:           addr,
		codec:          codec,
		HeartbeatEvery: 500 * time.Millisecond,
		MissLimit:      3,
		WriteTimeout:   10 * time.Second,
		Metrics:        m,
		stop:           make(chan struct{}),
	}
	if err := p.connect(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Peer) connect() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.connectLocked()
}

// connectLocked (re)establishes the connection.
//
// seep:locks p.mu
func (p *Peer) connectLocked() error {
	conn, err := net.DialTimeout("tcp", p.addr, 2*time.Second)
	if err != nil {
		return fmt.Errorf("transport: dial %s: %w", p.addr, err)
	}
	if p.conn != nil {
		p.conn.Close()
	}
	p.conn = conn
	p.w = bufio.NewWriterSize(conn, 32<<10)
	p.wg.Add(1)
	go p.readLoop(conn)
	return nil
}

// StartHeartbeat begins probing; call once after Dial.
func (p *Peer) StartHeartbeat() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		tick := time.NewTicker(p.HeartbeatEvery)
		defer tick.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-tick.C:
				p.mu.Lock()
				if p.pending > 0 {
					p.Metrics.addHeartbeatMiss()
				}
				p.pending++
				missed := p.pending
				if !p.closed && p.w != nil {
					_ = p.writeLocked(frameHeartbeat, nil)
				}
				p.mu.Unlock()
				if missed > p.MissLimit {
					p.declareDown()
					return
				}
			}
		}
	}()
}

func (p *Peer) readLoop(conn net.Conn) {
	defer p.wg.Done()
	r := bufio.NewReader(conn)
	var scratch []byte
	for {
		frameType, _, err := readFrame(r, p.Metrics, &scratch)
		if err != nil {
			return
		}
		if frameType == frameHeartbeat {
			p.mu.Lock()
			p.pending = 0
			p.mu.Unlock()
		}
	}
}

func (p *Peer) declareDown() {
	p.mu.Lock()
	already := p.downed || p.closed
	p.downed = true
	conn := p.conn
	p.mu.Unlock()
	if already {
		return
	}
	// Unblock any writer stuck in a send to the unresponsive host.
	if conn != nil {
		conn.Close()
	}
	if p.OnDown != nil {
		p.OnDown()
	}
}

// writeLocked writes one frame and flushes under a write deadline. The
// deadline is anchored before the injected slow-link delay, so a
// faulted link eats into the write budget instead of silently extending
// it, and any write that runs past writeStallAfter is counted as a
// credit stall — slow links surface in the metrics the same way an
// exhausted credit ledger does.
//
// seep:locks p.mu
func (p *Peer) writeLocked(frameType uint8, body []byte) error {
	start := time.Now()
	// Chaos-harness fault injection: the disarmed path is one atomic
	// pointer load (see faults.go).
	if f, ok := faultFor(p.addr); ok {
		if f.Drop {
			// Black-holed: the frame vanishes on the wire. Reported as
			// success so the sender neither re-dials nor errors — data
			// loss is covered by upstream retention and replay, and the
			// silence is what trips the heartbeat failure detector.
			return nil
		}
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
	}
	if p.conn != nil && p.WriteTimeout > 0 {
		_ = p.conn.SetWriteDeadline(start.Add(p.WriteTimeout))
	}
	err := writeFrame(p.w, p.Metrics, frameType, body)
	if err == nil {
		err = p.w.Flush()
	}
	if p.conn != nil {
		_ = p.conn.SetWriteDeadline(time.Time{})
	}
	if time.Since(start) >= writeStallAfter {
		p.Metrics.AddCreditStall()
	}
	return err
}

// sendFrame transmits one frame, re-dialling once on a failed write.
func (p *Peer) sendFrame(frameType uint8, body []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPeerClosed
	}
	if p.downed {
		return ErrPeerDown
	}
	if p.w != nil {
		if err := p.writeLocked(frameType, body); err == nil {
			p.sent++
			return nil
		}
	}
	// The connection is gone (or was never established): one reconnect
	// attempt, then fail the send to the caller.
	if err := p.connectLocked(); err != nil {
		return err
	}
	p.Metrics.addReconnect()
	if err := p.writeLocked(frameType, body); err != nil {
		return err
	}
	p.sent++
	return nil
}

// Send transmits one envelope. Sends after Close or after the peer went
// down return an error; callers retain tuples in buffer state and replay
// them to the replacement instance, so a failed send is never data loss.
func (p *Peer) Send(env Envelope) error {
	e := stream.NewEncoder(64)
	if err := encodeEnvelope(e, env, p.codec); err != nil {
		return err
	}
	return p.sendFrame(frameTuple, e.Bytes())
}

// encPool recycles batch encoders across sends. sendFrame copies the
// body into the connection's write buffer before returning, so the
// encoder can go straight back to the pool.
var encPool = sync.Pool{New: func() any { return stream.NewEncoder(4 << 10) }}

// SendBatch transmits one tuple batch — compact binary framing by
// default, gob framing when LegacyBatch pins the peer to the old wire
// codec.
func (p *Peer) SendBatch(b Batch) error {
	if p.LegacyBatch {
		e := stream.NewEncoder(64 * (1 + len(b.Tuples)))
		if err := encodeBatch(e, b, p.codec); err != nil {
			return err
		}
		return p.sendFrame(frameBatch, e.Bytes())
	}
	e := encPool.Get().(*stream.Encoder)
	e.Reset()
	err := encodeBatchBin(e, b, p.codec)
	if err == nil {
		err = p.sendFrame(frameBatchBin, e.Bytes())
	}
	encPool.Put(e)
	return err
}

// SendDeltaCheckpoint transmits one incremental-checkpoint body
// (state.EncodeDeltaCheckpoint layout) to the host this peer points at.
func (p *Peer) SendDeltaCheckpoint(body []byte) error {
	return p.sendFrame(frameDeltaCheckpoint, body)
}

// SendAck transmits one acknowledgement watermark.
func (p *Peer) SendAck(a Ack) error {
	e := stream.NewEncoder(64)
	encodeAck(e, a)
	return p.sendFrame(frameAck, e.Bytes())
}

// SendControl transmits one opaque control-message body.
func (p *Peer) SendControl(body []byte) error {
	return p.sendFrame(frameControl, body)
}

// SendBarrier asks the remote host to checkpoint inst now.
func (p *Peer) SendBarrier(inst plan.InstanceID) error {
	e := stream.NewEncoder(32)
	encodeBarrier(e, inst)
	return p.sendFrame(frameBarrier, e.Bytes())
}

// SendCredit returns flow-control credits to the host this peer points
// at: the local engine drained c.Grants batch slots destined for c.To,
// so the remote sender may ship that many more batches.
func (p *Peer) SendCredit(c Credit) error {
	e := stream.NewEncoder(32)
	encodeCredit(e, c)
	return p.sendFrame(frameCredit, e.Bytes())
}

// Sent returns how many non-heartbeat frames were transmitted.
func (p *Peer) Sent() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent
}

// Addr returns the dialled address.
func (p *Peer) Addr() string { return p.addr }

// Down reports whether the failure detector declared the peer failed.
func (p *Peer) Down() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.downed
}

// Close tears the connection down.
func (p *Peer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conn := p.conn
	p.mu.Unlock()
	close(p.stop)
	var err error
	if conn != nil {
		err = conn.Close()
	}
	p.wg.Wait()
	return err
}
