package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadFile parses one scenario file.
func LoadFile(path string) (*Scenario, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return s, nil
}

// LoadDir parses every *.yaml/*.yml file in a directory, sorted by
// file name.
func LoadDir(dir string) ([]*Scenario, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if ext := strings.ToLower(filepath.Ext(e.Name())); ext == ".yaml" || ext == ".yml" {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	out := make([]*Scenario, 0, len(paths))
	for _, p := range paths {
		s, err := LoadFile(p)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
