package scenario

import (
	"strings"
	"testing"
	"time"
)

// A minimal valid scenario to mutate in the lint tests.
const validScenario = `
name: valid
substrates: [sim]
seed: 1
duration: 3s
topology:
  ops:
    - {id: src, kind: source}
    - {id: split, kind: word-splitter}
    - {id: count, kind: word-counter}
    - {id: sink, kind: sink}
workload:
  source: src
  tuples: 100
  keys: 5
events:
  - {at: 1s, kind: kill-worker, op: count}
assertions:
  exact-counts: {op: count}
`

func TestParseValidScenario(t *testing.T) {
	s, err := Parse(validScenario)
	if err != nil {
		t.Fatal(err)
	}
	if errs := Validate(s); len(errs) != 0 {
		t.Fatalf("valid scenario flagged: %v", errs)
	}
	if s.Name != "valid" || s.Seed != 1 || s.Duration != 3*time.Second {
		t.Errorf("decoded header = %q/%d/%v", s.Name, s.Seed, s.Duration)
	}
	if len(s.Ops) != 4 || s.Ops[2].Kind != "word-counter" {
		t.Errorf("decoded ops = %+v", s.Ops)
	}
	if s.Workload == nil || s.Workload.Tuples != 100 || s.Workload.KeyPrefix != "w" {
		t.Errorf("decoded workload = %+v", s.Workload)
	}
	if len(s.Events) != 1 || s.Events[0].At != time.Second {
		t.Errorf("decoded events = %+v", s.Events)
	}
}

// Every lint rule surfaces as a typed SchemaError naming its location —
// one table entry per error kind the ISSUE requires, plus the rest of
// the lint pass.
func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*Scenario)
		wantKind ErrorKind
		wantPath string
	}{
		{
			name:     "unknown event kind",
			mutate:   func(s *Scenario) { s.Events[0].Kind = "explode-vm" },
			wantKind: ErrUnknownEventKind,
			wantPath: "events[0].kind",
		},
		{
			name: "assertion on undeclared sink",
			mutate: func(s *Scenario) {
				s.Assertions.SinkLatency = &SinkLatencyAssert{Sink: "count", Max: time.Second}
			},
			wantKind: ErrUndeclaredSink,
			wantPath: "assertions.sink-latency.sink",
		},
		{
			name:     "event after scenario end",
			mutate:   func(s *Scenario) { s.Events[0].At = 10 * time.Second },
			wantKind: ErrEventAfterEnd,
			wantPath: "events[0].at",
		},
		{
			name:     "event on undeclared operator",
			mutate:   func(s *Scenario) { s.Events[0].Op = "ghost" },
			wantKind: ErrUnknownOp,
			wantPath: "events[0].op",
		},
		{
			name:     "unknown factory kind",
			mutate:   func(s *Scenario) { s.Ops[1].Kind = "quantum-splitter" },
			wantKind: ErrUnknownFactory,
			wantPath: "topology.ops[1].kind",
		},
		{
			name: "partition-link outside Distributed",
			mutate: func(s *Scenario) {
				s.Events[0] = Event{At: time.Second, Kind: "partition-link", Op: "count"}
			},
			wantKind: ErrSubstrateRestricted,
			wantPath: "events[0].kind",
		},
		{
			name: "slow-link on the simulator",
			mutate: func(s *Scenario) {
				s.Events[0] = Event{At: time.Second, Kind: "slow-link", Op: "count", Delay: time.Millisecond}
			},
			wantKind: ErrSubstrateRestricted,
			wantPath: "events[0].kind",
		},
		{
			name:     "missing name",
			mutate:   func(s *Scenario) { s.Name = "" },
			wantKind: ErrMissingField,
			wantPath: "name",
		},
		{
			name:     "unknown substrate",
			mutate:   func(s *Scenario) { s.Substrates = []string{"cloud"} },
			wantKind: ErrBadValue,
			wantPath: "substrates[0]",
		},
		{
			name:     "workload source not a source",
			mutate:   func(s *Scenario) { s.Workload.Source = "count" },
			wantKind: ErrUnknownOp,
			wantPath: "workload.source",
		},
		{
			name:     "exact-counts on undeclared op",
			mutate:   func(s *Scenario) { s.Assertions.ExactCounts.Op = "ghost" },
			wantKind: ErrUnknownOp,
			wantPath: "assertions.exact-counts.op",
		},
		{
			name:     "unknown counter name",
			mutate:   func(s *Scenario) { s.Assertions.Counters = []CounterAssert{{Name: "cpu-cycles", Max: -1}} },
			wantKind: ErrBadValue,
			wantPath: "assertions.counters[0].name",
		},
		{
			name:     "negative duration",
			mutate:   func(s *Scenario) { s.Duration = 0 },
			wantKind: ErrBadValue,
			wantPath: "duration",
		},
		{
			name:     "scale-out pi below 2",
			mutate:   func(s *Scenario) { s.Events[0] = Event{At: time.Second, Kind: "scale-out", Op: "count", Pi: 1} },
			wantKind: ErrBadValue,
			wantPath: "events[0].pi",
		},
		{
			name: "max-latency ceiling not positive",
			mutate: func(s *Scenario) {
				s.Assertions.MaxLatency = &MaxLatencyAssert{Sink: "sink", Ceiling: 0}
			},
			wantKind: ErrBadBound,
			wantPath: "assertions.max-latency.ceiling",
		},
		{
			name: "sink-latency max looser than the hard ceiling",
			mutate: func(s *Scenario) {
				s.Assertions.MaxLatency = &MaxLatencyAssert{Sink: "sink", Ceiling: time.Second}
				s.Assertions.SinkLatency = &SinkLatencyAssert{Sink: "sink", Max: 2 * time.Second}
			},
			wantKind: ErrBadBound,
			wantPath: "assertions.sink-latency.max",
		},
		{
			name: "sink-latency p99 above the hard ceiling",
			mutate: func(s *Scenario) {
				s.Assertions.MaxLatency = &MaxLatencyAssert{Sink: "sink", Ceiling: time.Second}
				s.Assertions.SinkLatency = &SinkLatencyAssert{Sink: "sink", P99: 3 * time.Second}
			},
			wantKind: ErrBadBound,
			wantPath: "assertions.sink-latency.p99",
		},
		{
			name: "max-latency on undeclared sink",
			mutate: func(s *Scenario) {
				s.Assertions.MaxLatency = &MaxLatencyAssert{Sink: "count", Ceiling: time.Second}
			},
			wantKind: ErrUndeclaredSink,
			wantPath: "assertions.max-latency.sink",
		},
		{
			name: "kill-coordinator on the simulator",
			mutate: func(s *Scenario) {
				s.Events[0] = Event{At: time.Second, Kind: "kill-coordinator"}
				s.Events = append(s.Events, Event{At: 2 * time.Second, Kind: "restart-coordinator"})
			},
			wantKind: ErrSubstrateRestricted,
			wantPath: "events[0].kind",
		},
		{
			name: "restart-coordinator without a prior kill",
			mutate: func(s *Scenario) {
				s.Substrates = []string{"dist"}
				s.Events[0] = Event{At: time.Second, Kind: "restart-coordinator"}
			},
			wantKind: ErrBadValue,
			wantPath: "events[0].kind",
		},
		{
			name: "script ends with the coordinator dead",
			mutate: func(s *Scenario) {
				s.Substrates = []string{"dist"}
				s.Events[0] = Event{At: time.Second, Kind: "kill-coordinator"}
			},
			wantKind: ErrBadValue,
			wantPath: "events",
		},
		{
			name: "external scenario with workload",
			mutate: func(s *Scenario) {
				s.External = true
				s.Substrates = []string{"dist"}
				s.Assertions.ExactCounts = nil
			},
			wantKind: ErrBadValue,
			wantPath: "workload",
		},
		{
			name:     "negative sustained-overload",
			mutate:   func(s *Scenario) { s.Workload.SustainedOverload = -1 },
			wantKind: ErrBadValue,
			wantPath: "workload.sustained-overload",
		},
		{
			name:     "negative queue-bound",
			mutate:   func(s *Scenario) { s.Options.QueueBound = -8 },
			wantKind: ErrBadValue,
			wantPath: "options.queue-bound",
		},
		{
			name:     "negative memory limit",
			mutate:   func(s *Scenario) { s.Options.MemoryLimitBytes = -1 },
			wantKind: ErrBadValue,
			wantPath: "options.memory-limit-bytes",
		},
		{
			name: "queue-depth without a max",
			mutate: func(s *Scenario) {
				s.Substrates = []string{"live"}
				s.Assertions.QueueDepth = &QueueDepthAssert{Max: -1}
			},
			wantKind: ErrMissingField,
			wantPath: "assertions.queue-depth.max",
		},
		{
			name: "queue-depth bound not positive",
			mutate: func(s *Scenario) {
				s.Substrates = []string{"live"}
				s.Assertions.QueueDepth = &QueueDepthAssert{Max: 0}
			},
			wantKind: ErrBadBound,
			wantPath: "assertions.queue-depth.max",
		},
		{
			name: "queue-depth on the simulator",
			mutate: func(s *Scenario) {
				s.Assertions.QueueDepth = &QueueDepthAssert{Max: 8}
			},
			wantKind: ErrSubstrateRestricted,
			wantPath: "assertions.queue-depth",
		},
		{
			name: "spilled-keys max contradicts min",
			mutate: func(s *Scenario) {
				s.Substrates = []string{"live"}
				s.Options.MemoryLimitBytes = 1 << 20
				s.Assertions.SpilledKeys = &SpilledKeysAssert{Min: 100, Max: 10}
			},
			wantKind: ErrBadBound,
			wantPath: "assertions.spilled-keys.max",
		},
		{
			name: "spilled-keys minimum without a memory ceiling",
			mutate: func(s *Scenario) {
				s.Substrates = []string{"live"}
				s.Assertions.SpilledKeys = &SpilledKeysAssert{Min: 1, Max: -1}
			},
			wantKind: ErrBadValue,
			wantPath: "assertions.spilled-keys.min",
		},
		{
			name: "spilled-keys on the simulator",
			mutate: func(s *Scenario) {
				s.Options.MemoryLimitBytes = 1 << 20
				s.Assertions.SpilledKeys = &SpilledKeysAssert{Min: 1, Max: -1}
			},
			wantKind: ErrSubstrateRestricted,
			wantPath: "assertions.spilled-keys",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Parse(validScenario)
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(s)
			errs := Validate(s)
			if len(errs) == 0 {
				t.Fatalf("mutation not flagged")
			}
			for _, e := range errs {
				se, ok := e.(*SchemaError)
				if !ok {
					t.Fatalf("untyped validation error %T: %v", e, e)
				}
				if se.Kind == tc.wantKind && se.Path == tc.wantPath {
					return
				}
			}
			t.Fatalf("no %s at %s among %v", tc.wantKind, tc.wantPath, errs)
		})
	}
}

// The backpressure fields decode end to end: options knobs, the
// sustained-overload workload knob, and both assertion blocks.
func TestParseBackpressureFields(t *testing.T) {
	s, err := Parse(`
name: bp
substrates: [live]
seed: 7
duration: 2s
topology:
  ops:
    - {id: src, kind: source}
    - {id: count, kind: word-counter}
    - {id: sink, kind: sink}
options:
  queue-bound: 512
  memory-limit-bytes: 65536
workload:
  source: src
  tuples: 100
  keys: 50
  sustained-overload: 2
assertions:
  queue-depth: {max: 12}
  spilled-keys: {min: 10, max: 40}
`)
	if err != nil {
		t.Fatal(err)
	}
	if errs := Validate(s); len(errs) != 0 {
		t.Fatalf("valid backpressure scenario flagged: %v", errs)
	}
	if s.Options.QueueBound != 512 || s.Options.MemoryLimitBytes != 65536 {
		t.Errorf("decoded options = %+v", s.Options)
	}
	if s.Workload.SustainedOverload != 2 {
		t.Errorf("decoded sustained-overload = %d, want 2", s.Workload.SustainedOverload)
	}
	if qd := s.Assertions.QueueDepth; qd == nil || qd.Max != 12 {
		t.Errorf("decoded queue-depth = %+v", qd)
	}
	if sk := s.Assertions.SpilledKeys; sk == nil || sk.Min != 10 || sk.Max != 40 {
		t.Errorf("decoded spilled-keys = %+v", sk)
	}
	// An absent spilled-keys max is unbounded, not zero.
	s2, err := Parse(`
name: bp2
substrates: [live]
seed: 7
duration: 2s
topology:
  ops:
    - {id: src, kind: source}
    - {id: sink, kind: sink}
options:
  memory-limit-bytes: 65536
workload:
  source: src
  tuples: 100
  keys: 50
assertions:
  spilled-keys: {min: 1}
`)
	if err != nil {
		t.Fatal(err)
	}
	if sk := s2.Assertions.SpilledKeys; sk == nil || sk.Max != -1 {
		t.Errorf("absent max decoded as %+v, want Max=-1", sk)
	}
}

// Unknown fields in the document are decode errors, not silent drops.
func TestParseRejectsUnknownField(t *testing.T) {
	src := strings.Replace(validScenario, "seed: 1", "seed: 1\nturbo: true", 1)
	_, err := Parse(src)
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	se, ok := err.(*SchemaError)
	if !ok || se.Kind != ErrUnknownField {
		t.Fatalf("want ErrUnknownField, got %v", err)
	}
}

func TestYAMLSubset(t *testing.T) {
	v, err := parseYAML(`
a: 1            # comment
b: "x: y"       # quoted colon
c:
  - {k: v, n: 2}
  - plain
d:
  nested:
    deep: true
e: [1, 2.5, "s"]
f:
  - id: one
    extra: yes-string
  - id: two
`)
	if err != nil {
		t.Fatal(err)
	}
	m := v.(map[string]any)
	if m["a"] != int64(1) || m["b"] != "x: y" {
		t.Errorf("scalars: %#v", m)
	}
	c := m["c"].([]any)
	if c[0].(map[string]any)["n"] != int64(2) || c[1] != "plain" {
		t.Errorf("sequence: %#v", c)
	}
	if m["d"].(map[string]any)["nested"].(map[string]any)["deep"] != true {
		t.Errorf("nesting: %#v", m["d"])
	}
	e := m["e"].([]any)
	if e[0] != int64(1) || e[1] != 2.5 || e[2] != "s" {
		t.Errorf("flow seq: %#v", e)
	}
	f := m["f"].([]any)
	if f[0].(map[string]any)["extra"] != "yes-string" || f[1].(map[string]any)["id"] != "two" {
		t.Errorf("inline map items: %#v", f)
	}
}

func TestYAMLErrors(t *testing.T) {
	for _, src := range []string{
		"a: 1\n\tb: 2",     // tab indentation
		"a: &anchor",       // anchors outside the subset
		"a: [1, 2",         // unterminated flow
		"a: \"unclosed",    // unterminated quote
		"a: 1\na: 2",       // duplicate key
		"justastringalone", // no key
	} {
		if _, err := parseYAML(src); err == nil {
			t.Errorf("parseYAML(%q) accepted", src)
		}
	}
}

// The seeded workload is a pure function: same seed, same draw, and the
// oracle's total always matches the tuple count.
func TestWorkloadDeterminism(t *testing.T) {
	w := &Workload{Source: "src", Tuples: 1000, Keys: 10, KeyPrefix: "w", Skew: 1.2}
	a := w.expectedCounts(42, 1000)
	b := (&Workload{Source: "src", Tuples: 1000, Keys: 10, KeyPrefix: "w", Skew: 1.2}).expectedCounts(42, 1000)
	var total int64
	for k, v := range a {
		if b[k] != v {
			t.Errorf("draw diverged at %s: %d vs %d", k, v, b[k])
		}
		total += v
	}
	if total != 1000 {
		t.Errorf("oracle total = %d, want 1000", total)
	}
	// Skew concentrates mass on low-index words.
	if a["w00"] <= a["w09"] {
		t.Errorf("skew 1.2 but w00=%d <= w09=%d", a["w00"], a["w09"])
	}
	// A different seed draws a different workload.
	c := w.expectedCounts(43, 1000)
	same := true
	for k, v := range a {
		if c[k] != v {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 drew identical workloads")
	}
}

// The generator and the oracle agree — injecting gen output reproduces
// expectedCounts exactly, including across a burst boundary.
func TestGeneratorMatchesOracle(t *testing.T) {
	w := &Workload{Source: "src", Tuples: 300, Keys: 10, KeyPrefix: "w"}
	got := make(map[string]int64)
	gen := w.genFrom(7, 0)
	for i := uint64(0); i < 300; i++ {
		_, payload := gen(i)
		got[payload.(string)]++
	}
	burst := w.genFrom(7, 300)
	for i := uint64(0); i < 200; i++ {
		_, payload := burst(i)
		got[payload.(string)]++
	}
	want := w.expectedCounts(7, 500)
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s: generated %d, oracle %d", k, got[k], v)
		}
	}
}
