package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// A hand-written parser for the YAML subset scenario files use. The
// repo deliberately has zero dependencies, so rather than importing a
// YAML library this parses exactly what the scenario schema needs:
//
//   - block mappings (`key: value`, `key:` + indented block)
//   - block sequences (`- item`, including `- key: value` inline-map
//     starts whose remaining keys continue on the following lines)
//   - flow collections (`{a: 1, b: x}`, `[a, b]`), nestable
//   - single- and double-quoted strings, `#` comments, blank lines
//   - scalars typed as bool, int64, float64 or string (durations such
//     as `500ms` stay strings; the schema layer parses them)
//
// Anchors, aliases, multi-document streams, multi-line scalars and tabs
// are not YAML-subset features — they are parse errors, never silent
// misreads.

// parseYAML parses one document into map[string]any / []any / scalars.
func parseYAML(src string) (any, error) {
	var lines []yamlLine
	for n, raw := range strings.Split(src, "\n") {
		text, err := stripComment(raw)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", n+1, err)
		}
		if strings.TrimSpace(text) == "" {
			continue
		}
		indent := 0
		for indent < len(text) && text[indent] == ' ' {
			indent++
		}
		if strings.ContainsRune(text[:indent], '\t') || (indent < len(text) && text[indent] == '\t') {
			return nil, fmt.Errorf("line %d: tabs are not allowed for indentation", n+1)
		}
		lines = append(lines, yamlLine{num: n + 1, indent: indent, text: strings.TrimRight(text[indent:], " \t")})
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	p := &yamlParser{lines: lines}
	v, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("line %d: unexpected content %q (indentation does not match any open block)", l.num, l.text)
	}
	return v, nil
}

type yamlLine struct {
	num    int
	indent int
	text   string
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseBlock parses the run of lines at exactly the given indent as one
// mapping or sequence.
func (p *yamlParser) parseBlock(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, fmt.Errorf("unexpected end of document")
	}
	l := p.lines[p.pos]
	if l.indent != indent {
		return nil, fmt.Errorf("line %d: expected indent %d, got %d", l.num, indent, l.indent)
	}
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *yamlParser) parseMapping(indent int) (any, error) {
	m := make(map[string]any)
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indent %d inside a mapping at indent %d", l.num, l.indent, indent)
		}
		if l.text == "-" || strings.HasPrefix(l.text, "- ") {
			break // a sequence at the same indent belongs to the parent key
		}
		key, rest, err := splitKey(l.text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", l.num, err)
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", l.num, key)
		}
		p.pos++
		if rest != "" {
			v, err := parseScalar(rest)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", l.num, err)
			}
			m[key] = v
			continue
		}
		// `key:` — the value is the following nested block (or null).
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		m[key] = nil
	}
	return m, nil
}

func (p *yamlParser) parseSequence(indent int) (any, error) {
	var seq []any
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || (l.text != "-" && !strings.HasPrefix(l.text, "- ")) {
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		if rest == "" {
			// `-` alone: the item is the following nested block.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("line %d: empty sequence item", l.num)
			}
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		if k, _, err := splitKey(rest); err == nil && k != "" && !isFlow(rest) {
			// `- key: value`: an inline mapping start. Re-anchor the line
			// at the item body's column so the mapping parser consumes it
			// and any continuation keys on the following lines.
			itemIndent := indent + (len(l.text) - len(rest))
			p.lines[p.pos] = yamlLine{num: l.num, indent: itemIndent, text: rest}
			v, err := p.parseMapping(itemIndent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		v, err := parseScalar(rest)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", l.num, err)
		}
		seq = append(seq, v)
		p.pos++
	}
	return seq, nil
}

// splitKey splits `key: rest` at the first unquoted, un-nested colon
// followed by a space or end of line.
func splitKey(s string) (key, rest string, err error) {
	idx := -1
	depth := 0
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			quote = c
		case '{', '[':
			depth++
		case '}', ']':
			depth--
		case ':':
			if depth == 0 && (i+1 == len(s) || s[i+1] == ' ') {
				idx = i
			}
		}
		if idx >= 0 {
			break
		}
	}
	if idx < 0 {
		return "", "", fmt.Errorf("expected `key: value`, got %q", s)
	}
	key = strings.TrimSpace(s[:idx])
	if key == "" {
		return "", "", fmt.Errorf("empty key in %q", s)
	}
	if (key[0] == '"' || key[0] == '\'') && len(key) >= 2 && key[len(key)-1] == key[0] {
		key = key[1 : len(key)-1]
	}
	return key, strings.TrimSpace(s[idx+1:]), nil
}

func isFlow(s string) bool {
	return strings.HasPrefix(s, "{") || strings.HasPrefix(s, "[")
}

// parseScalar types one value: flow collection, quoted string, bool,
// null, number, or plain string.
func parseScalar(s string) (any, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return nil, nil
	case isFlow(s):
		return parseFlow(s)
	case s[0] == '"' || s[0] == '\'':
		if len(s) < 2 || s[len(s)-1] != s[0] {
			return nil, fmt.Errorf("unterminated quoted string %q", s)
		}
		return s[1 : len(s)-1], nil
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	case s == "null" || s == "~":
		return nil, nil
	case s == "&" || strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*") || strings.HasPrefix(s, "|") || strings.HasPrefix(s, ">"):
		return nil, fmt.Errorf("%q: anchors, aliases and block scalars are outside the supported YAML subset", s)
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

// parseFlow parses `{k: v, ...}` and `[v, ...]`, nestable.
func parseFlow(s string) (any, error) {
	open, close := s[0], byte('}')
	if open == '[' {
		close = ']'
	}
	if s[len(s)-1] != close {
		return nil, fmt.Errorf("unterminated flow collection %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	parts, err := splitFlow(inner)
	if err != nil {
		return nil, err
	}
	if open == '[' {
		seq := make([]any, 0, len(parts))
		for _, part := range parts {
			v, err := parseScalar(part)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
		}
		return seq, nil
	}
	m := make(map[string]any, len(parts))
	for _, part := range parts {
		key, rest, err := splitKey(part)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("duplicate key %q in %q", key, s)
		}
		v, err := parseScalar(rest)
		if err != nil {
			return nil, err
		}
		m[key] = v
	}
	return m, nil
}

// splitFlow splits flow-collection content on top-level commas.
func splitFlow(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var parts []string
	depth, start := 0, 0
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			quote = c
		case '{', '[':
			depth++
		case '}', ']':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced brackets in %q", s)
			}
		case ',':
			if depth == 0 {
				parts = append(parts, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if quote != 0 {
		return nil, fmt.Errorf("unterminated quote in %q", s)
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced brackets in %q", s)
	}
	parts = append(parts, strings.TrimSpace(s[start:]))
	return parts, nil
}

// stripComment removes a trailing `#` comment, respecting quotes.
func stripComment(s string) (string, error) {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			quote = c
		case '#':
			if i == 0 || s[i-1] == ' ' || s[i-1] == '\t' {
				return s[:i], nil
			}
		}
	}
	return s, nil
}
