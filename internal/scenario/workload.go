package scenario

import (
	"fmt"
	"math"

	"seep"
)

// The deterministic workload. Every tuple's word is a pure function of
// (seed, global tuple index): index i hashes through splitmix64 into a
// uniform fraction, which a zipf-like CDF over the vocabulary maps to a
// word. The executor threads a global index across the initial
// injection and every inject-burst, so the expected per-key counts are
// computable up front by replaying the same pure function — that is the
// oracle exact-counts assertions compare managed operator state
// against, on every substrate.

// splitmix64 is the SplitMix64 finalizer — a bijective hash with good
// avalanche, the standard seed-expansion step.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// wordAt returns the vocabulary index for global tuple i: a zipf-like
// draw with weight 1/(k+1)^skew (skew 0 = uniform).
func (w *Workload) wordAt(seed int64, i uint64) int {
	h := splitmix64(uint64(seed)*0x9e3779b97f4a7c15 + i)
	u := float64(h>>11) / float64(1<<53) // uniform in [0, 1)
	if w.Skew == 0 {
		k := int(u * float64(w.Keys))
		if k >= w.Keys {
			k = w.Keys - 1
		}
		return k
	}
	cdf := w.cdf()
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// cdf caches the skewed cumulative distribution over the vocabulary.
func (w *Workload) cdf() []float64 {
	if w.cdfCache != nil {
		return w.cdfCache
	}
	weights := make([]float64, w.Keys)
	var total float64
	for k := 0; k < w.Keys; k++ {
		weights[k] = 1 / math.Pow(float64(k+1), w.Skew)
		total += weights[k]
	}
	cdf := make([]float64, w.Keys)
	var acc float64
	for k := 0; k < w.Keys; k++ {
		acc += weights[k] / total
		cdf[k] = acc
	}
	cdf[w.Keys-1] = 1
	w.cdfCache = cdf
	return cdf
}

// word renders vocabulary index k as its key string.
func (w *Workload) word(k int) string {
	return fmt.Sprintf("%s%02d", w.KeyPrefix, k)
}

// genFrom returns a seep.Generator drawing tuples [base, base+n) of the
// global sequence. InjectBatch indexes each call from 0, so the base
// offset keeps bursts on the same global sequence as the initial
// injection.
func (w *Workload) genFrom(seed int64, base uint64) seep.Generator {
	return func(i uint64) (seep.Key, any) {
		word := w.word(w.wordAt(seed, base+i))
		return seep.KeyOfString(word), word
	}
}

// expectedCounts replays the pure draw for tuples [0, total) and
// returns the oracle per-word counts.
func (w *Workload) expectedCounts(seed int64, total int) map[string]int64 {
	out := make(map[string]int64, w.Keys)
	for i := 0; i < total; i++ {
		out[w.word(w.wordAt(seed, uint64(i)))]++
	}
	return out
}
